#!/bin/sh
# fleet-smoke: end-to-end fault-tolerance check for the distributed sweep
# fleet (sweepd + sweepworker).
#
# A coordinator distributes the full quick registry to two authenticated
# workers. One worker is SIGKILLed the moment it holds a lease, forcing the
# coordinator to reclaim the orphaned unit after the lease TTL and re-lease
# it to the survivor. The run must still:
#
#   1. resolve every unit with zero failures and at least one reclaim,
#   2. pass the checked-in quick-baseline gate inside sweepd, and
#   3. produce a store byte-identical, modulo line order, to a serial
#      single-process sweep of the same spec — the fleet determinism
#      contract under worker death.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	for p in $pids; do wait "$p" 2>/dev/null || true; done
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "fleet-smoke: building binaries" >&2
$GO build -o "$tmp/sweepd" ./cmd/sweepd
$GO build -o "$tmp/sweepworker" ./cmd/sweepworker
$GO build -o "$tmp/rtopex" ./cmd/rtopex

echo "fleet-smoke: serial reference sweep" >&2
"$tmp/rtopex" -all -quick -parallel -skip-measured \
	-out "$tmp/serial.jsonl" >/dev/null 2>>"$tmp/serial.log" || {
	echo "fleet-smoke: serial sweep failed" >&2
	cat "$tmp/serial.log" >&2
	exit 1
}

# The whole fleet shares a bearer token through the environment — this also
# smoke-tests the auth path on every lease/heartbeat/complete request.
RTOPEX_AUTH_TOKEN="fleet-smoke-$$"
export RTOPEX_AUTH_TOKEN

echo "fleet-smoke: starting coordinator" >&2
"$tmp/sweepd" -listen 127.0.0.1:0 -addr-file "$tmp/addr" \
	-out "$tmp/fleet.jsonl" -lease-ttl 2s \
	-all -quick -skip-measured \
	-baseline testdata/baselines/quick.jsonl 2>"$tmp/sweepd.log" &
coord=$!
pids="$pids $coord"
for _ in $(seq 1 100); do
	[ -s "$tmp/addr" ] && break
	sleep 0.05
done
[ -s "$tmp/addr" ] || { echo "fleet-smoke: coordinator did not bind" >&2; cat "$tmp/sweepd.log" >&2; exit 1; }
addr=$(cat "$tmp/addr")

fetch_state() {
	if command -v curl >/dev/null 2>&1; then
		curl -fsS -H "Authorization: Bearer $RTOPEX_AUTH_TOKEN" "http://$addr/state.json"
	else
		wget -qO- --header "Authorization: Bearer $RTOPEX_AUTH_TOKEN" "http://$addr/state.json"
	fi
}
probe() {
	if command -v curl >/dev/null 2>&1; then
		curl -fsS "http://$addr$1"
	else
		wget -qO- "http://$addr$1"
	fi
}

# Gate on the readiness probe before pointing any worker at the
# coordinator — the same contract an orchestrator would use. The probe is
# deliberately unauthenticated (no bearer header), which also asserts the
# health endpoints sit outside the auth gate.
ready=0
for _ in $(seq 1 100); do
	if probe /readyz 2>/dev/null | grep -q '^ok$'; then
		ready=1
		break
	fi
	sleep 0.05
done
[ "$ready" = 1 ] || {
	echo "fleet-smoke: FAIL — /readyz never reported ready" >&2
	cat "$tmp/sweepd.log" >&2
	exit 1
}

echo "fleet-smoke: starting workers (victim + survivor)" >&2
"$tmp/sweepworker" -coordinator "$addr" -name victim -workers 1 -quiet 2>"$tmp/victim.log" &
victim=$!
pids="$pids $victim"
"$tmp/sweepworker" -coordinator "$addr" -name survivor -workers 2 2>"$tmp/survivor.log" &
survivor=$!
pids="$pids $survivor"

# Kill the victim the moment the coordinator shows it holding a lease:
# its in-flight unit becomes an orphan the TTL must reclaim.
killed=0
for _ in $(seq 1 200); do
	kill -0 "$coord" 2>/dev/null || break
	if fetch_state 2>/dev/null | grep -Eq '"victim":[1-9]'; then
		kill -KILL "$victim" 2>/dev/null || true
		killed=1
		echo "fleet-smoke: SIGKILLed victim mid-unit" >&2
		break
	fi
	sleep 0.05
done
[ "$killed" = 1 ] || {
	echo "fleet-smoke: FAIL — victim never held a lease (sweep too fast?)" >&2
	cat "$tmp/sweepd.log" >&2
	exit 1
}

# The coordinator exits on its own once every unit resolves (and after its
# baseline gate); its exit code carries failures and baseline drift.
if ! wait "$coord"; then
	echo "fleet-smoke: FAIL — sweepd exited nonzero:" >&2
	cat "$tmp/sweepd.log" >&2
	exit 1
fi
if ! wait "$survivor"; then
	echo "fleet-smoke: FAIL — surviving worker exited nonzero:" >&2
	cat "$tmp/survivor.log" >&2
	exit 1
fi
wait "$victim" 2>/dev/null || true
pids=""

summary=$(grep 'sweep resolved:' "$tmp/sweepd.log" || true)
[ -n "$summary" ] || {
	echo "fleet-smoke: FAIL — no resolution summary in sweepd log:" >&2
	cat "$tmp/sweepd.log" >&2
	exit 1
}
reclaims=$(echo "$summary" | sed -n 's/.* \([0-9][0-9]*\) reclaims.*/\1/p')
if [ -z "$reclaims" ] || [ "$reclaims" -lt 1 ]; then
	echo "fleet-smoke: FAIL — expected >=1 lease reclaim after killing the victim, got: $summary" >&2
	exit 1
fi
grep -q 'matches baseline' "$tmp/sweepd.log" || {
	echo "fleet-smoke: FAIL — baseline gate did not pass:" >&2
	cat "$tmp/sweepd.log" >&2
	exit 1
}

# The determinism contract: fleet store == serial store, modulo line order.
sort "$tmp/serial.jsonl" >"$tmp/serial.sorted"
sort "$tmp/fleet.jsonl" >"$tmp/fleet.sorted"
if ! diff -u "$tmp/serial.sorted" "$tmp/fleet.sorted" >"$tmp/store.diff"; then
	echo "fleet-smoke: FAIL — fleet store differs from serial store:" >&2
	cat "$tmp/store.diff" >&2
	exit 1
fi
lines=$(wc -l <"$tmp/fleet.sorted")
[ "$lines" -gt 0 ] || { echo "fleet-smoke: FAIL — empty fleet store" >&2; exit 1; }

echo "fleet-smoke: PASS — $lines records byte-identical to serial after a worker kill ($reclaims reclaim(s)); $summary" >&2
