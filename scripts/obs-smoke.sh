#!/bin/sh
# obs-smoke: end-to-end determinism check for the distributed observability
# plane.
#
# Two collectors are started. Collector A receives pushes from TWO worker
# processes that split the deterministic experiment registry between them;
# collector B receives pushes from ONE process running the whole registry.
# Because per-experiment seeds derive from the experiment's position in the
# full registry (not from which process runs it), and registry merge is
# exact for counters and histogram buckets, the two merged /metrics
# expositions must be byte-identical once wall-clock series (the per-unit
# wall-time histogram) are filtered out.
#
# Finally collector A is sent SIGINT and must flush a valid merged-snapshot
# JSON archive.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	# Collectors flush their final snapshot on signal; reap them before
	# deleting the directory they write into.
	for p in $pids; do wait "$p" 2>/dev/null || true; done
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "obs-smoke: building binaries" >&2
$GO build -o "$tmp/obscollect" ./cmd/obscollect
$GO build -o "$tmp/rtopex" ./cmd/rtopex

# Split the registry: odd-position experiments to worker 1, even to
# worker 2. fig4 (measured) is excluded by -skip-measured either way.
ids=$("$tmp/rtopex" -list | awk '{print $1}')
exp1=$(echo "$ids" | awk 'NR % 2 == 1' | paste -sd, -)
exp2=$(echo "$ids" | awk 'NR % 2 == 0' | paste -sd, -)
all=$(echo "$ids" | paste -sd, -)

start_collector() { # $1=addr-file $2=final-json
	"$tmp/obscollect" -listen 127.0.0.1:0 -addr-file "$1" -final "$2" -quiet 2>>"$tmp/collect.log" &
	pid=$!
	pids="$pids $pid"
	for _ in $(seq 1 100); do
		[ -s "$1" ] && break
		sleep 0.05
	done
	[ -s "$1" ] || { echo "obs-smoke: collector did not bind" >&2; exit 1; }
}

start_collector "$tmp/addr_a" "$tmp/final_a.json"
addr_a=$(cat "$tmp/addr_a")
col_a=$pid
start_collector "$tmp/addr_b" "$tmp/final_b.json"
addr_b=$(cat "$tmp/addr_b")

sweep() { # $1=exps $2=collector-addr
	"$tmp/rtopex" -exp "$1" -quick -parallel -workers 2 -skip-measured \
		-push "$2" >/dev/null 2>>"$tmp/sweep.log"
}

echo "obs-smoke: two-worker push sweep -> collector A ($addr_a)" >&2
sweep "$exp1" "$addr_a" &
w1=$!
sweep "$exp2" "$addr_a" &
w2=$!
wait "$w1" || { echo "obs-smoke: worker 1 failed"; cat "$tmp/sweep.log"; exit 1; } >&2
wait "$w2" || { echo "obs-smoke: worker 2 failed"; cat "$tmp/sweep.log"; exit 1; } >&2

echo "obs-smoke: single-process push sweep -> collector B ($addr_b)" >&2
sweep "$all" "$addr_b" || { echo "obs-smoke: serial worker failed"; cat "$tmp/sweep.log"; exit 1; } >&2

# Scrape both merged views and drop the only wall-clock-dependent family
# (per-unit wall seconds); everything else must match byte-for-byte.
scrape() { # $1=addr $2=out
	if command -v curl >/dev/null 2>&1; then
		curl -fsS "http://$1/metrics" >"$2"
	else
		wget -qO- "http://$1/metrics" >"$2"
	fi
	grep -v 'rtopex_sweep_unit_seconds' "$2" >"$2.filtered"
}
scrape "$addr_a" "$tmp/metrics_a"
scrape "$addr_b" "$tmp/metrics_b"

if ! diff -u "$tmp/metrics_b.filtered" "$tmp/metrics_a.filtered" >"$tmp/metrics.diff"; then
	echo "obs-smoke: FAIL — merged two-worker /metrics differs from single-process:" >&2
	cat "$tmp/metrics.diff" >&2
	exit 1
fi
# Sanity: the comparison must be over real content, not two empty scrapes.
grep -q '^rtopex_sweep_units_done_total' "$tmp/metrics_a.filtered" || {
	echo "obs-smoke: FAIL — merged /metrics carries no sweep counters" >&2
	cat "$tmp/metrics_a" >&2
	exit 1
}

echo "obs-smoke: SIGINT collector A, expecting final snapshot flush" >&2
kill -INT "$col_a"
for _ in $(seq 1 100); do
	[ -s "$tmp/final_a.json" ] && break
	sleep 0.05
done
[ -s "$tmp/final_a.json" ] || { echo "obs-smoke: FAIL — no final snapshot written" >&2; exit 1; }
grep -q '"merged"' "$tmp/final_a.json" && grep -q 'rtopex_sweep_units_total' "$tmp/final_a.json" || {
	echo "obs-smoke: FAIL — final snapshot malformed" >&2
	cat "$tmp/final_a.json" >&2
	exit 1
}

lines=$(wc -l <"$tmp/metrics_a.filtered")
echo "obs-smoke: PASS — merged /metrics identical across 2-worker and serial pushes ($lines lines), final flush ok" >&2
