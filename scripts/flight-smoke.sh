#!/bin/sh
# flight-smoke: smoke-check the miss-forensics pipeline end-to-end.
#
# A seeded jittery-transport RT-OPEX run (RTT/2 = 650 µs, well past the
# paper's 600 µs miss threshold) with the flight recorder armed must:
#   1. spool at least one miss dossier (versioned JSON) into the spool dir;
#   2. have rtoptrace -dossier render that dossier as a post-mortem
#      containing the trigger classification, the stage timeline, and the
#      slack verdict ("overshot deadline").
# The stage-budget arithmetic itself (stage durations summing to the
# measured completion time) is asserted by the internal/flight unit tests;
# this script proves the binaries wire together.
set -eu

GO=${GO:-go}

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

$GO run ./cmd/rtoptrace -run -subframes 2000 -rtt2 650 -spread 160 -seed 7 \
	-out "$dir/trace.json" -flight "$dir/spool" >"$dir/run.log" 2>&1 \
	|| { echo "flight-smoke: FAIL — traced run errored" >&2; cat "$dir/run.log" >&2; exit 1; }

first=$(ls "$dir/spool" 2>/dev/null | head -n 1)
if [ -z "$first" ]; then
	echo "flight-smoke: FAIL — jittery run spooled no dossiers" >&2
	cat "$dir/run.log" >&2
	exit 1
fi
count=$(ls "$dir/spool" | wc -l | tr -d ' ')
grep -q '"flight_version"' "$dir/spool/$first" \
	|| { echo "flight-smoke: FAIL — $first is not versioned dossier JSON" >&2; exit 1; }

$GO run ./cmd/rtoptrace -dossier "$dir/spool/$first" >"$dir/postmortem.txt" 2>&1 \
	|| { echo "flight-smoke: FAIL — rtoptrace -dossier errored" >&2; cat "$dir/postmortem.txt" >&2; exit 1; }

for want in "miss dossier" "deadline-miss" "stage timeline" "overshot deadline"; do
	grep -q "$want" "$dir/postmortem.txt" \
		|| { echo "flight-smoke: FAIL — post-mortem missing \"$want\"" >&2; cat "$dir/postmortem.txt" >&2; exit 1; }
done

echo "flight-smoke: PASS — $count dossier(s) spooled, $first renders as a post-mortem" >&2
