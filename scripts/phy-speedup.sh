#!/bin/sh
# phy-speedup: smoke-check that the PHY fast paths actually pay off.
#
# Three assertions:
#   1. On multicore machines the end-to-end parallel benchmark at 8 workers
#      must beat the same benchmark at 1 worker by >1.5× — a loose floor
#      (the ≥3× headline is tracked by bench-check against BENCH_sweep.json)
#      so CI stays stable on small runners. A single-CPU machine cannot show
#      wall-clock parallelism at all; there the 1-worker fast path must
#      instead beat the pre-fast-path serial baseline (23181 µs/subframe,
#      the seed BenchmarkPHYEndToEnd) by the same 1.5× floor.
#   2. The int16 quantized turbo decode must beat the float64 reference
#      (BenchmarkPHYDecodeQuant vs BenchmarkPHYDecodeFloat) — this holds on
#      any machine; the quantized path exists to be faster.
#   3. On multicore machines the cross-subframe pipelined window at depth 2
#      must push more subframes/s than depth 1 (BenchmarkPHYPipelined).
#      Single-CPU machines skip this: the depths tie by construction.
#   4. The radix-4 fused trellis stepper must not lose to the radix-2
#      scalar reference (BenchmarkPHYDecodeRadix4 vs Radix2), and batched
#      code-block decode must not lose to single-block
#      (BenchmarkPHYDecodeBatched vs Radix4). Both hold on any machine: on
#      AVX2 hardware radix-4 wins outright, elsewhere the rows run the
#      same scalar code and tie — so the gate allows a 10% noise band
#      rather than demanding a strict win it cannot show there.
set -eu

GO=${GO:-go}
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

out=$(mktemp)
trap 'rm -f "$out"' EXIT INT TERM

$GO test -bench='BenchmarkPHYEndToEndParallel' -benchtime=10x -run='^$' . >"$out"

us_at() { # $1 = workers count; prints that row's us/subframe
	awk -v pat="/workers=$1(-[0-9]+)?$" '$1 ~ pat {
		for (i = 1; i < NF; i++) if ($(i+1) == "us/subframe") { print $i; exit }
	}' "$out"
}

t1=$(us_at 1)
[ -n "$t1" ] || { echo "phy-speedup: FAIL — no workers=1 sample in benchmark output" >&2; cat "$out" >&2; exit 1; }

if [ "$ncpu" -lt 2 ]; then
	base=23181 # seed BenchmarkPHYEndToEnd, pre fast path (µs/subframe)
	echo "phy-speedup: single CPU — comparing 1-worker fast path (${t1} µs) to pre-fast-path baseline (${base} µs)" >&2
	num=$base
	den=$t1
	label="serial fast path vs seed baseline"
else
	tn=$(us_at 8)
	[ -n "$tn" ] || { echo "phy-speedup: FAIL — no workers=8 sample in benchmark output" >&2; cat "$out" >&2; exit 1; }
	num=$t1
	den=$tn
	label="8 workers vs 1 worker"
fi

ratio=$(awk -v a="$num" -v b="$den" 'BEGIN { printf "%.2f", a / b }')
pass=$(awk -v a="$num" -v b="$den" 'BEGIN { print (a > 1.5 * b) ? 1 : 0 }')
if [ "$pass" -ne 1 ]; then
	echo "phy-speedup: FAIL — $label speedup ${ratio}x, need > 1.5x" >&2
	cat "$out" >&2
	exit 1
fi
echo "phy-speedup: PASS — $label speedup ${ratio}x (> 1.5x)" >&2

# 2. Quantized decode beats the float64 reference (any machine).
$GO test -bench='BenchmarkPHYDecode(Quant|Float|Radix4|Radix2|Batched)$' -benchtime=10x -run='^$' . >"$out"

stage_us() { # $1 = benchmark name suffix; prints that row's us/stage
	awk -v pat="^BenchmarkPHYDecode$1(-[0-9]+)?$" '$1 ~ pat {
		for (i = 1; i < NF; i++) if ($(i+1) == "us/stage") { print $i; exit }
	}' "$out"
}

tq=$(stage_us Quant)
tf=$(stage_us Float)
[ -n "$tq" ] && [ -n "$tf" ] || { echo "phy-speedup: FAIL — missing decode-path samples" >&2; cat "$out" >&2; exit 1; }
qratio=$(awk -v a="$tf" -v b="$tq" 'BEGIN { printf "%.2f", a / b }')
qpass=$(awk -v a="$tf" -v b="$tq" 'BEGIN { print (a > b) ? 1 : 0 }')
if [ "$qpass" -ne 1 ]; then
	echo "phy-speedup: FAIL — quantized decode (${tq} µs) not faster than float64 (${tf} µs)" >&2
	cat "$out" >&2
	exit 1
fi
echo "phy-speedup: PASS — quantized decode ${qratio}x faster than float64 (${tq} vs ${tf} µs)" >&2

# 4. Radix-4 fused stepping must not lose to the radix-2 scalar reference,
# and batched decode must not lose to single-block (10% noise band: on
# machines without the AVX2 kernels each pair runs identical code).
t4=$(stage_us Radix4)
t2=$(stage_us Radix2)
tb=$(stage_us Batched)
[ -n "$t4" ] && [ -n "$t2" ] && [ -n "$tb" ] || { echo "phy-speedup: FAIL — missing radix/batch decode samples" >&2; cat "$out" >&2; exit 1; }
rratio=$(awk -v a="$t2" -v b="$t4" 'BEGIN { printf "%.2f", a / b }')
rpass=$(awk -v a="$t4" -v b="$t2" 'BEGIN { print (a <= 1.10 * b) ? 1 : 0 }')
if [ "$rpass" -ne 1 ]; then
	echo "phy-speedup: FAIL — radix-4 decode (${t4} µs) slower than radix-2 (${t2} µs) beyond the 10% band" >&2
	cat "$out" >&2
	exit 1
fi
echo "phy-speedup: PASS — radix-4 decode ${rratio}x radix-2 (${t4} vs ${t2} µs)" >&2
bratio=$(awk -v a="$t4" -v b="$tb" 'BEGIN { printf "%.2f", a / b }')
bpass=$(awk -v a="$tb" -v b="$t4" 'BEGIN { print (a <= 1.10 * b) ? 1 : 0 }')
if [ "$bpass" -ne 1 ]; then
	echo "phy-speedup: FAIL — batched decode (${tb} µs) slower than single-block (${t4} µs) beyond the 10% band" >&2
	cat "$out" >&2
	exit 1
fi
echo "phy-speedup: PASS — batched decode ${bratio}x single-block (${tb} vs ${t4} µs)" >&2

# 3. Cross-subframe pipelining pays at depth 2 (multicore only).
if [ "$ncpu" -lt 2 ]; then
	echo "phy-speedup: single CPU — skipping pipelined depth-2 vs depth-1 check" >&2
	exit 0
fi
$GO test -bench='BenchmarkPHYPipelined' -benchtime=10x -run='^$' . >"$out"

sfs_at() { # $1 = depth; prints that row's subframes/s
	awk -v pat="/depth=$1(-[0-9]+)?$" '$1 ~ pat {
		for (i = 1; i < NF; i++) if ($(i+1) == "subframes/s") { print $i; exit }
	}' "$out"
}

s1=$(sfs_at 1)
s2=$(sfs_at 2)
[ -n "$s1" ] && [ -n "$s2" ] || { echo "phy-speedup: FAIL — missing pipelined samples" >&2; cat "$out" >&2; exit 1; }
pratio=$(awk -v a="$s2" -v b="$s1" 'BEGIN { printf "%.2f", a / b }')
ppass=$(awk -v a="$s2" -v b="$s1" 'BEGIN { print (a > b) ? 1 : 0 }')
if [ "$ppass" -ne 1 ]; then
	echo "phy-speedup: FAIL — depth-2 pipelining (${s2} sf/s) not above depth-1 (${s1} sf/s)" >&2
	cat "$out" >&2
	exit 1
fi
echo "phy-speedup: PASS — depth-2 pipelining ${pratio}x depth-1 throughput (${s2} vs ${s1} sf/s)" >&2
