#!/bin/sh
# phy-speedup: smoke-check that the parallel PHY fast path pays off.
#
# On multicore machines the end-to-end parallel benchmark at 8 workers must
# beat the same benchmark at 1 worker by >1.5× — a loose floor (the ≥3×
# headline is tracked by bench-check against BENCH_sweep.json) so CI stays
# stable on small runners. A single-CPU machine cannot show wall-clock
# parallelism at all; there the 1-worker fast path must instead beat the
# pre-fast-path serial baseline (23181 µs/subframe, the seed
# BenchmarkPHYEndToEnd) by the same 1.5× floor.
set -eu

GO=${GO:-go}
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

out=$(mktemp)
trap 'rm -f "$out"' EXIT INT TERM

$GO test -bench='BenchmarkPHYEndToEndParallel' -benchtime=10x -run='^$' . >"$out"

us_at() { # $1 = workers count; prints that row's us/subframe
	awk -v pat="/workers=$1(-[0-9]+)?$" '$1 ~ pat {
		for (i = 1; i < NF; i++) if ($(i+1) == "us/subframe") { print $i; exit }
	}' "$out"
}

t1=$(us_at 1)
[ -n "$t1" ] || { echo "phy-speedup: FAIL — no workers=1 sample in benchmark output" >&2; cat "$out" >&2; exit 1; }

if [ "$ncpu" -lt 2 ]; then
	base=23181 # seed BenchmarkPHYEndToEnd, pre fast path (µs/subframe)
	echo "phy-speedup: single CPU — comparing 1-worker fast path (${t1} µs) to pre-fast-path baseline (${base} µs)" >&2
	num=$base
	den=$t1
	label="serial fast path vs seed baseline"
else
	tn=$(us_at 8)
	[ -n "$tn" ] || { echo "phy-speedup: FAIL — no workers=8 sample in benchmark output" >&2; cat "$out" >&2; exit 1; }
	num=$t1
	den=$tn
	label="8 workers vs 1 worker"
fi

ratio=$(awk -v a="$num" -v b="$den" 'BEGIN { printf "%.2f", a / b }')
pass=$(awk -v a="$num" -v b="$den" 'BEGIN { print (a > 1.5 * b) ? 1 : 0 }')
if [ "$pass" -ne 1 ]; then
	echo "phy-speedup: FAIL — $label speedup ${ratio}x, need > 1.5x" >&2
	cat "$out" >&2
	exit 1
fi
echo "phy-speedup: PASS — $label speedup ${ratio}x (> 1.5x)" >&2
