#!/bin/sh
# slo-smoke: end-to-end check of the history plane + SLO engine.
#
# A seeded livebench run at MCS 27 with a 2 ms subframe budget (dilation
# 2, under the fast path's ~2.5 ms p50 decode) misses most deadlines. Under a deliberately tight SLO
# (0.1% miss budget, 1 s/2 s burn windows, no pending hold) that run must:
#   1. fire a burn-rate alert on livebench's own /api/alerts whose dossier
#      cross-links point at >=1 spooled flight dossier;
#   2. push its counters and ship its dossiers to an obscollect daemon
#      whose fleet-level SLO over the merged timeline must fire (or
#      resolve) an alert cross-linking >=1 ingested dossier.
# The alert state machine, burn arithmetic and link bookkeeping are
# asserted by the internal/obs unit tests; this script proves the binaries
# wire together: scraper -> TSDB -> SLO -> dossier sources -> /api/alerts,
# locally and fleet-side.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	for p in $pids; do wait "$p" 2>/dev/null || true; done
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fetch() { # $1=url $2=out
	if command -v curl >/dev/null 2>&1; then
		curl -fsS "$1" >"$2" 2>/dev/null
	else
		wget -qO- "$1" >"$2" 2>/dev/null
	fi
}

# An alert proves the pipeline once it has left inactive (firing while the
# burn persists, resolved after it drains) AND carries dossier links.
alert_ok() { # $1=alerts-json
	grep -Eq '"state": *"(firing|resolved)"' "$1" &&
		grep -Eq '"dossier_count": *[1-9]' "$1"
}

SLO='miss_rate: rtopex_live_missed_total+rtopex_live_dropped_total / rtopex_live_subframes_total <= 0.1% over 10s'

echo "slo-smoke: building binaries" >&2
$GO build -o "$tmp/obscollect" ./cmd/obscollect
$GO build -o "$tmp/livebench" ./cmd/livebench

echo "slo-smoke: starting obscollect with fleet SLO" >&2
"$tmp/obscollect" -listen 127.0.0.1:0 -addr-file "$tmp/addr" -quiet \
	-history-step 250ms -slo "$SLO" -slo-fast 1s -slo-slow 2s \
	2>"$tmp/collect.log" &
pids="$pids $!"
for _ in $(seq 1 100); do
	[ -s "$tmp/addr" ] && break
	sleep 0.05
done
[ -s "$tmp/addr" ] || { echo "slo-smoke: FAIL — obscollect did not bind" >&2; cat "$tmp/collect.log" >&2; exit 1; }
collect=$(cat "$tmp/addr")

echo "slo-smoke: livebench run at MCS 27, 2 ms budget, tight SLO" >&2
"$tmp/livebench" -bs 1 -cores-per-bs 2 -subframes 1500 -mcs 27 -dilation 2 \
	-seed 7 -http 127.0.0.1:0 -flight "$tmp/spool" \
	-push "$collect" -push-interval 250ms \
	-history-step 250ms -slo "$SLO" -slo-fast 1s -slo-slow 2s \
	-linger 15s >"$tmp/run.log" 2>&1 &
pids="$pids $!"

# The livebench endpoint binds an ephemeral port; its address shows up in
# the run log once serving.
live=""
for _ in $(seq 1 200); do
	live=$(grep -oh 'http://127\.0\.0\.1:[0-9]*' "$tmp/run.log" | head -n 1) || true
	[ -n "$live" ] && break
	sleep 0.05
done
[ -n "$live" ] || { echo "slo-smoke: FAIL — livebench endpoint never came up" >&2; cat "$tmp/run.log" >&2; exit 1; }

# Poll both /api/alerts surfaces until each shows a fired alert with
# dossier cross-links (the run takes ~3 s; the alert fires once the burn
# windows fill, and stays inspectable through -linger).
live_ok=""
fleet_ok=""
for _ in $(seq 1 240); do
	if [ -z "$live_ok" ] && fetch "$live/api/alerts" "$tmp/alerts_live.json" && alert_ok "$tmp/alerts_live.json"; then
		live_ok=1
		echo "slo-smoke: livebench alert fired with dossier links" >&2
	fi
	if [ -z "$fleet_ok" ] && fetch "http://$collect/api/alerts" "$tmp/alerts_fleet.json" && alert_ok "$tmp/alerts_fleet.json"; then
		fleet_ok=1
		echo "slo-smoke: obscollect fleet alert fired with dossier links" >&2
	fi
	[ -n "$live_ok" ] && [ -n "$fleet_ok" ] && break
	sleep 0.1
done
if [ -z "$live_ok" ] || [ -z "$fleet_ok" ]; then
	echo "slo-smoke: FAIL — no fired alert with dossier links (live=${live_ok:-no} fleet=${fleet_ok:-no})" >&2
	echo "--- livebench /api/alerts:" >&2
	cat "$tmp/alerts_live.json" 2>/dev/null >&2 || true
	echo "--- obscollect /api/alerts:" >&2
	cat "$tmp/alerts_fleet.json" 2>/dev/null >&2 || true
	echo "--- run log:" >&2
	tail -40 "$tmp/run.log" >&2
	exit 1
fi

# The cross-links must point at real dossiers: livebench's at the local
# spool, obscollect's at its ingested store.
spooled=$(ls "$tmp/spool" 2>/dev/null | wc -l | tr -d ' ')
[ "$spooled" -ge 1 ] || { echo "slo-smoke: FAIL — no dossiers spooled" >&2; exit 1; }
grep -Eq '"source": *"local"' "$tmp/alerts_live.json" || {
	echo "slo-smoke: FAIL — livebench alert links carry no local dossier refs" >&2
	cat "$tmp/alerts_live.json" >&2
	exit 1
}
fetch "http://$collect/dossiers" "$tmp/dossiers.json"
grep -q '"id"' "$tmp/dossiers.json" || {
	echo "slo-smoke: FAIL — obscollect ingested no dossiers" >&2
	cat "$tmp/dossiers.json" >&2
	exit 1
}

echo "slo-smoke: PASS — burn-rate alert fired on livebench and obscollect, cross-linking $spooled spooled dossier(s)" >&2
