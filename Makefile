GO ?= go

.PHONY: ci build test vet race fmt-check bench trace-demo

ci: vet build race fmt-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt-check fails when any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# trace-demo runs a traced 1000-subframe RT-OPEX simulation and renders the
# per-core timeline plus migration-state tallies.
trace-demo:
	$(GO) run ./cmd/rtoptrace -run -subframes 1000
