GO ?= go

# BENCHTIME is the iteration count for tracked benchmarks: multi-iteration
# runs are stable enough for bench-check to be a hard gate.
BENCHTIME ?= 10x
# BENCH_PHY matches the PHY fast-path benchmarks (end-to-end serial and
# parallel, per-stage sub-benchmarks, the quant/float decode pair, and the
# cross-subframe pipelined window).
BENCH_PHY = BenchmarkPHY(EndToEnd|FFT|Demod|Decode|Pipelined)
# The flight-recorder overhead pair runs more iterations than the rest:
# its armed/disabled gate is a median of per-iteration pairs, and 30 pairs
# keep that median stable enough to hold to ±5%.
FLIGHT_BENCHTIME ?= 30x
# The history plane's scrape+evaluate pair gates a much smaller ratio
# (~3% overhead at one tick per run), so its median needs 100 pairs to
# sit still inside the ±5% tolerance.
HISTORY_BENCHTIME ?= 100x

.PHONY: ci build test vet race fmt-check bench bench-all bench-check trace-demo sweep-check sweep-check-full baselines baselines-full obs-smoke fleet-smoke flight-smoke slo-smoke profile-phy phy-speedup

ci: vet build race fmt-check sweep-check bench-check phy-speedup obs-smoke fleet-smoke flight-smoke slo-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt-check fails when any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench tracks the perf-critical hot paths — the sweep worker pool
# (shards/s) and the PHY chain end-to-end, per-stage, and parallel
# (µs/subframe, µs/stage) — and archives the parsed results as
# BENCH_sweep.json so later PRs can diff them.
bench:
	{ $(GO) test -bench='BenchmarkSweepWorkerPool' -benchtime=$(BENCHTIME) -run='^$$' ./internal/sweep; \
	  $(GO) test -bench='$(BENCH_PHY)' -benchtime=$(BENCHTIME) -run='^$$' .; \
	  $(GO) test -bench='BenchmarkFlightRecorder' -benchtime=$(FLIGHT_BENCHTIME) -run='^$$' ./internal/harness; \
	  $(GO) test -bench='BenchmarkScrapeEvaluate' -benchtime=$(HISTORY_BENCHTIME) -run='^$$' ./internal/harness; } \
	| $(GO) run ./cmd/benchjson -out BENCH_sweep.json

# bench-all sweeps every benchmark once (no JSON artifact).
bench-all:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-check is the bench-regression gate: a fresh run of the tracked
# benchmarks diffed against the committed BENCH_sweep.json, failing the
# build on drift. Time-like metrics are held to ±35% (multi-iteration runs
# sit well inside that); allocs/op keeps its strict default — the PHY fast
# path is allocation-free, so any steady-state allocation drifts the zero
# baseline; B/op is exempted because the single-digit amortized bytes left
# over from one-time lazy growth jitter across runs. Regenerate the
# baseline with `make bench` after an intentional perf change.
bench-check:
	{ $(GO) test -bench='BenchmarkSweepWorkerPool' -benchtime=$(BENCHTIME) -run='^$$' ./internal/sweep; \
	  $(GO) test -bench='$(BENCH_PHY)' -benchtime=$(BENCHTIME) -run='^$$' .; \
	  $(GO) test -bench='BenchmarkFlightRecorder' -benchtime=$(FLIGHT_BENCHTIME) -run='^$$' ./internal/harness; \
	  $(GO) test -bench='BenchmarkScrapeEvaluate' -benchtime=$(HISTORY_BENCHTIME) -run='^$$' ./internal/harness; } \
	| $(GO) run ./cmd/benchjson -check BENCH_sweep.json \
		-tol ns/op=0.35 -tol us/subframe=0.35 -tol us/stage=0.35 \
		-tol shards/s=0.35 -tol subframes/s=0.35 -tol B/op=1.0 \
		-tol 'armed/disabled=0.05' -tol 'history/disabled=0.05'

# profile-phy captures a CPU profile of the end-to-end PHY benchmark — the
# workflow behind the fast-path optimizations (constituent fusion, twiddle
# tables, CRC bytewise lookup all came out of this profile).
profile-phy:
	$(GO) test -bench='BenchmarkPHYEndToEnd$$' -benchtime=50x -run='^$$' -benchmem \
		-cpuprofile /tmp/phy.cpu.prof .
	@echo "wrote /tmp/phy.cpu.prof — inspect with: $(GO) tool pprof -top /tmp/phy.cpu.prof"

# phy-speedup asserts the parallel fast path actually pays off (>1.5×,
# a loose floor so CI stays stable on small runners; single-CPU machines
# compare against the pre-fast-path serial baseline instead).
phy-speedup:
	sh scripts/phy-speedup.sh

# obs-smoke proves the distributed observability plane end-to-end: a
# two-worker push-enabled sweep's merged collector /metrics must be
# byte-identical to a single-process sweep's (modulo wall-clock series),
# and the collector must flush its final snapshot on SIGINT.
obs-smoke:
	sh scripts/obs-smoke.sh

# trace-demo runs a traced 1000-subframe RT-OPEX simulation and renders the
# per-core timeline plus migration-state tallies.
trace-demo:
	$(GO) run ./cmd/rtoptrace -run -subframes 1000

# sweep-check is the regression gate: a quick parallel sweep of every
# deterministic experiment, diffed cell-by-cell against the checked-in
# golden baselines. Any drift fails the build.
sweep-check:
	$(GO) run ./cmd/rtopex -all -quick -parallel -skip-measured \
		-out /tmp/rtopex-sweep-check.jsonl \
		-baseline testdata/baselines/quick.jsonl >/dev/null

# FULL_TOLS are the per-column tolerances for the full-scale gate: the
# full baseline is byte-exact on the platform that generated it, but its
# float-heavy columns (latency percentiles, fitted model weights, BLER
# curves) pass through libm transcendentals whose last-ulp rounding varies
# across platforms, so those columns get a small relative bound (plus an
# absolute floor for near-zero cells) while everything else — counts,
# configurations, labels — must match exactly.
FULL_TOLS = \
	-tol 'rtt2_us=0.02,0.5' -tol 'e[rtt2]_us=0.02,0.5' \
	-tol 'delta_us=0.02,0.5' -tol 'dispatch_us=0.02,0.5' \
	-tol 'gap_p50_us=0.02,0.5' -tol 'time_us=0.02,0.5' -tol 'time_ms=0.02,0.5' \
	-tol 'mean=0.02,0.5' -tol 'p10=0.02,0.5' -tol 'p25=0.02,0.5' \
	-tol 'p50=0.02,0.5' -tol 'p75=0.02,0.5' -tol 'p90=0.02,0.5' \
	-tol 'p99=0.02,0.5' -tol 'p99.99=0.05,1' -tol 'P(>250us)=0.05,0.001' \
	-tol 'local_p50=0.02,0.5' -tol 'migrated_p50=0.02,0.5' -tol 'overhead=0.05,0.1' \
	-tol 'mcs27_proc_p50=0.02,0.5' -tol 'mcs27_proc_p90=0.02,0.5' -tol 'mcs27_proc_p99=0.02,0.5' \
	-tol 'miss_rate=0.05,0.001' -tol 'ccdf=0.05,0.0001' -tol 'threshold_us=0.02,0.5' \
	-tol 'L=1=0.05,0.001' -tol 'L=2=0.05,0.001' -tol 'L=3=0.05,0.001' -tol 'L=4=0.05,0.001' \
	-tol 'snr10=0.05,0.001' -tol 'snr20=0.05,0.001' -tol 'snr30=0.05,0.001' \
	-tol 'w0=0.05,0.01' -tol 'w1=0.05,0.01' -tol 'w2=0.05,0.01' -tol 'w3=0.05,0.01' \
	-tol 'r2=0.02,0.01' -tol 'with_cache=0.02,0.5' -tol 'without_cache=0.02,0.5' \
	-tol '10MHz=0.02,0.5' -tol '5MHz=0.02,0.5' -tol 'savings=0.02,0.01'

# sweep-check-full is the paper-scale regression gate: every deterministic
# experiment at full scale (30000 subframes, 1e6 samples; ~10x quick's
# runtime), diffed against the full golden store under FULL_TOLS. Too slow
# for the default ci target — run it before cutting a release or after any
# change that touches experiment math.
sweep-check-full:
	$(GO) run ./cmd/rtopex -all -parallel -skip-measured \
		-out /tmp/rtopex-sweep-check-full.jsonl \
		-baseline testdata/baselines/full.jsonl $(FULL_TOLS) >/dev/null

# baselines regenerates the golden stores after an intentional behavior
# change. Review the diff before committing.
baselines:
	$(GO) run ./cmd/rtopex -all -quick -parallel -skip-measured \
		-out testdata/baselines/quick.jsonl >/dev/null

# baselines-full regenerates the paper-scale golden store (minutes, not
# seconds). Review the diff before committing.
baselines-full:
	$(GO) run ./cmd/rtopex -all -parallel -skip-measured \
		-out testdata/baselines/full.jsonl >/dev/null

# flight-smoke proves the miss-forensics pipeline end-to-end: a jittery
# RT-OPEX run with the flight recorder armed must spool at least one miss
# dossier, and rtoptrace -dossier must render its post-mortem.
flight-smoke:
	sh scripts/flight-smoke.sh

# slo-smoke proves the history plane + SLO engine end-to-end: a seeded
# jittery livebench run under a deliberately tight SLO must fire a
# burn-rate alert whose dossier cross-links point at spooled flight
# dossiers, on both the livebench /api/alerts surface and an obscollect
# the run pushes to.
slo-smoke:
	sh scripts/slo-smoke.sh

# fleet-smoke proves the distributed sweep fleet end-to-end: a coordinator
# plus two workers (one SIGKILLed mid-sweep, forcing a lease reclaim) must
# produce a store byte-identical, modulo line order, to a serial sweep of
# the same spec, and pass the quick-baseline gate.
fleet-smoke:
	sh scripts/fleet-smoke.sh
