GO ?= go

# BENCHTIME is the iteration count for tracked benchmarks: multi-iteration
# runs are stable enough for bench-check to be a hard gate.
BENCHTIME ?= 10x
# BENCH_PHY matches the PHY fast-path benchmarks (end-to-end serial and
# parallel, per-stage sub-benchmarks, the quant/float decode pair, and the
# cross-subframe pipelined window).
BENCH_PHY = BenchmarkPHY(EndToEnd|FFT|Demod|Decode|Pipelined)

.PHONY: ci build test vet race fmt-check bench bench-all bench-check trace-demo sweep-check baselines obs-smoke profile-phy phy-speedup

ci: vet build race fmt-check sweep-check bench-check phy-speedup obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt-check fails when any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench tracks the perf-critical hot paths — the sweep worker pool
# (shards/s) and the PHY chain end-to-end, per-stage, and parallel
# (µs/subframe, µs/stage) — and archives the parsed results as
# BENCH_sweep.json so later PRs can diff them.
bench:
	{ $(GO) test -bench='BenchmarkSweepWorkerPool' -benchtime=$(BENCHTIME) -run='^$$' ./internal/sweep; \
	  $(GO) test -bench='$(BENCH_PHY)' -benchtime=$(BENCHTIME) -run='^$$' .; } \
	| $(GO) run ./cmd/benchjson -out BENCH_sweep.json

# bench-all sweeps every benchmark once (no JSON artifact).
bench-all:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-check is the bench-regression gate: a fresh run of the tracked
# benchmarks diffed against the committed BENCH_sweep.json, failing the
# build on drift. Time-like metrics are held to ±35% (multi-iteration runs
# sit well inside that); allocs/op keeps its strict default — the PHY fast
# path is allocation-free, so any steady-state allocation drifts the zero
# baseline; B/op is exempted because the single-digit amortized bytes left
# over from one-time lazy growth jitter across runs. Regenerate the
# baseline with `make bench` after an intentional perf change.
bench-check:
	{ $(GO) test -bench='BenchmarkSweepWorkerPool' -benchtime=$(BENCHTIME) -run='^$$' ./internal/sweep; \
	  $(GO) test -bench='$(BENCH_PHY)' -benchtime=$(BENCHTIME) -run='^$$' .; } \
	| $(GO) run ./cmd/benchjson -check BENCH_sweep.json \
		-tol ns/op=0.35 -tol us/subframe=0.35 -tol us/stage=0.35 \
		-tol shards/s=0.35 -tol subframes/s=0.35 -tol B/op=1.0

# profile-phy captures a CPU profile of the end-to-end PHY benchmark — the
# workflow behind the fast-path optimizations (constituent fusion, twiddle
# tables, CRC bytewise lookup all came out of this profile).
profile-phy:
	$(GO) test -bench='BenchmarkPHYEndToEnd$$' -benchtime=50x -run='^$$' -benchmem \
		-cpuprofile /tmp/phy.cpu.prof .
	@echo "wrote /tmp/phy.cpu.prof — inspect with: $(GO) tool pprof -top /tmp/phy.cpu.prof"

# phy-speedup asserts the parallel fast path actually pays off (>1.5×,
# a loose floor so CI stays stable on small runners; single-CPU machines
# compare against the pre-fast-path serial baseline instead).
phy-speedup:
	sh scripts/phy-speedup.sh

# obs-smoke proves the distributed observability plane end-to-end: a
# two-worker push-enabled sweep's merged collector /metrics must be
# byte-identical to a single-process sweep's (modulo wall-clock series),
# and the collector must flush its final snapshot on SIGINT.
obs-smoke:
	sh scripts/obs-smoke.sh

# trace-demo runs a traced 1000-subframe RT-OPEX simulation and renders the
# per-core timeline plus migration-state tallies.
trace-demo:
	$(GO) run ./cmd/rtoptrace -run -subframes 1000

# sweep-check is the regression gate: a quick parallel sweep of every
# deterministic experiment, diffed cell-by-cell against the checked-in
# golden baselines. Any drift fails the build.
sweep-check:
	$(GO) run ./cmd/rtopex -all -quick -parallel -skip-measured \
		-out /tmp/rtopex-sweep-check.jsonl \
		-baseline testdata/baselines/quick.jsonl >/dev/null

# baselines regenerates the golden stores after an intentional behavior
# change. Review the diff before committing.
baselines:
	$(GO) run ./cmd/rtopex -all -quick -parallel -skip-measured \
		-out testdata/baselines/quick.jsonl >/dev/null
