GO ?= go

.PHONY: ci build test vet race fmt-check bench bench-all bench-check trace-demo sweep-check baselines obs-smoke

ci: vet build race fmt-check sweep-check bench-check obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt-check fails when any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench tracks the two perf-critical hot paths — the sweep worker pool
# (shards/s) and the PHY decode chain (µs/subframe) — and archives the
# parsed results as BENCH_sweep.json so later PRs can diff them.
bench:
	{ $(GO) test -bench='BenchmarkSweepWorkerPool' -benchtime=1x -run='^$$' ./internal/sweep; \
	  $(GO) test -bench='BenchmarkPHYEndToEnd' -benchtime=1x -run='^$$' .; } \
	| $(GO) run ./cmd/benchjson -out BENCH_sweep.json

# bench-all sweeps every benchmark once (no JSON artifact).
bench-all:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-check is the bench-regression gate: a fresh run of the tracked
# benchmarks diffed against the committed BENCH_sweep.json under per-metric
# relative tolerances, with a PASS/DRIFT report. Advisory in ci (single
# 1x-iteration timings are noisy); drop -advisory to enforce, and
# regenerate the baseline with `make bench` after intentional perf changes.
bench-check:
	{ $(GO) test -bench='BenchmarkSweepWorkerPool' -benchtime=1x -run='^$$' ./internal/sweep; \
	  $(GO) test -bench='BenchmarkPHYEndToEnd' -benchtime=1x -run='^$$' .; } \
	| $(GO) run ./cmd/benchjson -check BENCH_sweep.json -advisory

# obs-smoke proves the distributed observability plane end-to-end: a
# two-worker push-enabled sweep's merged collector /metrics must be
# byte-identical to a single-process sweep's (modulo wall-clock series),
# and the collector must flush its final snapshot on SIGINT.
obs-smoke:
	sh scripts/obs-smoke.sh

# trace-demo runs a traced 1000-subframe RT-OPEX simulation and renders the
# per-core timeline plus migration-state tallies.
trace-demo:
	$(GO) run ./cmd/rtoptrace -run -subframes 1000

# sweep-check is the regression gate: a quick parallel sweep of every
# deterministic experiment, diffed cell-by-cell against the checked-in
# golden baselines. Any drift fails the build.
sweep-check:
	$(GO) run ./cmd/rtopex -all -quick -parallel -skip-measured \
		-out /tmp/rtopex-sweep-check.jsonl \
		-baseline testdata/baselines/quick.jsonl >/dev/null

# baselines regenerates the golden stores after an intentional behavior
# change. Review the diff before committing.
baselines:
	$(GO) run ./cmd/rtopex -all -quick -parallel -skip-measured \
		-out testdata/baselines/quick.jsonl >/dev/null
