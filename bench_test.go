package rtopex

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment at a reduced-but-meaningful scale per
// iteration, so `go test -bench=. -benchmem` both exercises every
// reproduction path and reports the cost of regenerating each artifact.
// The full-scale outputs are produced by `go run ./cmd/rtopex -all`.

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/phy"
	"rtopex/internal/stats"
	"rtopex/internal/turbo"
)

// benchOpts keeps per-iteration work bounded while preserving each
// experiment's structure (full sweeps, reduced sample counts).
var benchOpts = ExperimentOptions{Quick: true, Subframes: 1500, Samples: 30_000}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := RunExperiment(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig01LoadTrace(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkTable1ModelFit(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkFig03aProcVsIterations(b *testing.B)  { benchExperiment(b, "fig3a") }
func BenchmarkFig03bProcVsSNR(b *testing.B)         { benchExperiment(b, "fig3b") }
func BenchmarkFig03cProcVsAntennas(b *testing.B)    { benchExperiment(b, "fig3c") }
func BenchmarkFig03dErrorDistribution(b *testing.B) { benchExperiment(b, "fig3d") }
func BenchmarkFig04TaskParallelism(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig06CloudDelay(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig07TransportVsAntennas(b *testing.B) {
	benchExperiment(b, "fig7")
}
func BenchmarkFig14LoadCDF(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15DeadlineMiss(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkFig16GapsMigrations(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17MissVsLoad(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkFig18MigrationOverhead(b *testing.B) {
	benchExperiment(b, "fig18")
}
func BenchmarkFig19GlobalCores(b *testing.B) { benchExperiment(b, "fig19") }

func BenchmarkTable2Comparison(b *testing.B) { benchExperiment(b, "table2") }

func BenchmarkAblationAlg1(b *testing.B)        { benchExperiment(b, "ablation-alg1") }
func BenchmarkAblationDelta(b *testing.B)       { benchExperiment(b, "ablation-delta") }
func BenchmarkAblationGranularity(b *testing.B) { benchExperiment(b, "ablation-granularity") }
func BenchmarkAblationCache(b *testing.B)       { benchExperiment(b, "ablation-cache") }
func BenchmarkAblationDispatch(b *testing.B)    { benchExperiment(b, "ablation-dispatch") }
func BenchmarkAblationTaskMigration(b *testing.B) {
	benchExperiment(b, "ablation-task-migration")
}

func BenchmarkExtParallel(b *testing.B)  { benchExperiment(b, "ext-parallel") }
func BenchmarkExtHetero(b *testing.B)    { benchExperiment(b, "ext-hetero") }
func BenchmarkExtTransport(b *testing.B) { benchExperiment(b, "ext-transport") }
func BenchmarkExtPooling(b *testing.B)   { benchExperiment(b, "ext-pooling") }

// BenchmarkSchedulerThroughput measures raw simulation speed: subframes
// scheduled per second under each scheduler.
func BenchmarkSchedulerThroughput(b *testing.B) {
	w, err := BuildWorkload(WorkloadConfig{
		Basestations: 4, Subframes: 5000, Antennas: 2, Bandwidth: BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: PaperGPP, Jitter: DefaultJitter, IterLaw: DefaultIterationLaw,
		Profiles: DefaultTraceProfiles, FixedMCS: -1,
		Transport: FixedTransport{OneWay: 500}, ExpectedRTT2US: 500, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mk := range []struct {
		name string
		new  func() Scheduler
	}{
		{"partitioned", func() Scheduler { return NewPartitioned(2) }},
		{"global", func() Scheduler { return NewGlobal() }},
		{"rt-opex", func() Scheduler { return NewRTOPEX(2) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(w, mk.new(), 8); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(20000*b.N)/b.Elapsed().Seconds(), "subframes/s")
		})
	}
}

// benchSubframe builds the canonical MCS-27, 2-antenna, 30 dB subframe the
// PHY benchmarks decode (same seeds as the original BenchmarkPHYEndToEnd).
func benchSubframe(b *testing.B) (*phy.Receiver, [][]complex128, float64) {
	return benchSubframeAt(b, turbo.PathQuantized, 30)
}

// benchSubframeAt is benchSubframe with the decode arithmetic and SNR under
// the caller's control (the decode-path benchmarks run at a moderate SNR so
// the CRC check doesn't trivially pass before the trellis works).
func benchSubframeAt(b *testing.B, path turbo.Path, snrDB float64) (*phy.Receiver, [][]complex128, float64) {
	return benchSubframeCfg(b, snrDB, func(cfg *PHYConfig) { cfg.DecoderPath = path })
}

// benchSubframeCfg builds the canonical subframe with arbitrary receiver
// decode knobs applied (the transmitter ignores them, so every variant
// decodes the same IQ).
func benchSubframeCfg(b *testing.B, snrDB float64, tweak func(*PHYConfig)) (*phy.Receiver, [][]complex128, float64) {
	b.Helper()
	cfg := PHYConfig{Bandwidth: BW10MHz, MCS: 27, Antennas: 2, RNTI: 1, CellID: 1}
	tweak(&cfg)
	tx, err := NewTransmitter(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(1)
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)
	wave, err := tx.Transmit(payload)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := channel.New(snrDB, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	iq, _ := ch.Apply(wave)
	rx, err := phy.NewReceiver(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rx, iq, ch.N0()
}

// BenchmarkPHYEndToEnd measures the real Go chain: one full MCS-27
// subframe decode per iteration.
func BenchmarkPHYEndToEnd(b *testing.B) {
	rx, iq, n0 := benchSubframe(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rx.Process(iq, n0)
		if err != nil || !res.OK {
			b.Fatal("decode failed")
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(b.N), "us/subframe")
}

// benchStage isolates one pipeline stage: earlier stages run once to feed
// it, then each iteration re-executes only the target stage's subtasks
// (every stage rewrites its scratch from its inputs, so repeats are exact).
func benchStage(b *testing.B, name phy.TaskName) {
	b.Helper()
	rx, iq, n0 := benchSubframe(b)
	benchStageOn(b, rx, iq, n0, name)
}

func benchStageOn(b *testing.B, rx *phy.Receiver, iq [][]complex128, n0 float64, name phy.TaskName) {
	b.Helper()
	stages, err := rx.Pipeline(iq, n0)
	if err != nil {
		b.Fatal(err)
	}
	var target []func()
	for _, st := range stages {
		if st.Name == name {
			target = st.Subtasks
			break
		}
		for _, sub := range st.Subtasks {
			sub()
		}
	}
	if target == nil {
		b.Fatalf("stage %q not in pipeline", name)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sub := range target {
			sub()
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(b.N), "us/stage")
}

func BenchmarkPHYFFT(b *testing.B)    { benchStage(b, phy.TaskFFT) }
func BenchmarkPHYDemod(b *testing.B)  { benchStage(b, phy.TaskDemod) }
func BenchmarkPHYDecode(b *testing.B) { benchStage(b, phy.TaskDecode) }

// BenchmarkPHYDecodeQuant / BenchmarkPHYDecodeFloat isolate the turbo decode
// stage under the two arithmetics at a moderate 24 dB SNR, where the CRC
// check can't accept the raw hard decisions and the trellis must run. The
// int16 quantized path (the default) must beat the float64 reference — the
// phy-speedup gate asserts the ratio.
func BenchmarkPHYDecodeQuant(b *testing.B) {
	rx, iq, n0 := benchSubframeAt(b, turbo.PathQuantized, 24)
	benchStageOn(b, rx, iq, n0, phy.TaskDecode)
}

func BenchmarkPHYDecodeFloat(b *testing.B) {
	rx, iq, n0 := benchSubframeAt(b, turbo.PathFloat64, 24)
	benchStageOn(b, rx, iq, n0, phy.TaskDecode)
}

// BenchmarkPHYDecodeRadix4 / BenchmarkPHYDecodeRadix2 pin the fused-stepper
// gain at the same 24 dB operating point: the radix-4 row steps the int16
// trellis two stages per sweep through the AVX2 kernels (the default), the
// radix-2 row forces the scalar single-stage reference. Outputs are
// bit-identical; only the stepping differs. phy-speedup asserts radix-4 is
// never slower — on hardware without the kernels both rows run the same
// scalar code and tie.
func BenchmarkPHYDecodeRadix4(b *testing.B) {
	rx, iq, n0 := benchSubframeCfg(b, 24, func(cfg *PHYConfig) {})
	benchStageOn(b, rx, iq, n0, phy.TaskDecode)
}

func BenchmarkPHYDecodeRadix2(b *testing.B) {
	rx, iq, n0 := benchSubframeCfg(b, 24, func(cfg *PHYConfig) { cfg.DecoderRadix = turbo.Radix2 })
	benchStageOn(b, rx, iq, n0, phy.TaskDecode)
}

// BenchmarkPHYDecodeBatched decodes the six MCS-27 code blocks as one
// turbo.Batch (DecodeBatch ≥ C collapses the decode stage to a single
// batched subtask) — the paired single-block baseline is
// BenchmarkPHYDecodeRadix4, which runs the identical trellis work one block
// at a time. phy-speedup asserts batching is never slower than single-block.
func BenchmarkPHYDecodeBatched(b *testing.B) {
	rx, iq, n0 := benchSubframeCfg(b, 24, func(cfg *PHYConfig) { cfg.DecodeBatch = 64 })
	benchStageOn(b, rx, iq, n0, phy.TaskDecode)
}

// BenchmarkPHYPipelined measures cross-subframe pipelining throughput (the
// paper's Fig. 5 overlap): a depth-D window keeps D subframes in flight, so
// on multicore hosts depth=2 must raise subframes/s over depth=1. On a
// single-CPU machine the depths tie (the gate only asserts the ratio when
// parallelism is physically possible).
func BenchmarkPHYPipelined(b *testing.B) {
	for _, depth := range []int{1, 2} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cfg := PHYConfig{Bandwidth: BW10MHz, MCS: 27, Antennas: 2, RNTI: 1, CellID: 1}
			tx, err := NewTransmitter(cfg)
			if err != nil {
				b.Fatal(err)
			}
			r := stats.NewRNG(1)
			payload := make([]byte, tx.TBS())
			bits.RandomBits(payload, r.Uint64)
			wave, err := tx.Transmit(payload)
			if err != nil {
				b.Fatal(err)
			}
			ch, err := channel.New(30, 2, 2)
			if err != nil {
				b.Fatal(err)
			}
			iq, _ := ch.Apply(wave)

			// Prewarm the arena with the steady-state receiver set: the
			// window holds at most `depth` subframes in flight, and a warm-up
			// round of submits cannot guarantee every worker runs (one can
			// drain them all), so borrow-and-return the receivers directly.
			arena := phy.NewArena()
			warmRx := make([]*phy.Receiver, depth)
			for i := range warmRx {
				rx, err := arena.Get(cfg)
				if err != nil {
					b.Fatal(err)
				}
				warmRx[i] = rx
			}
			for _, rx := range warmRx {
				arena.Put(rx)
			}

			var done atomic.Int64
			var bad atomic.Bool
			pl, err := phy.NewPipeliner(phy.PipelinerConfig{
				Arena: arena,
				Depth: depth,
				OnDone: func(tag uint64, res phy.Result, err error) {
					if err != nil || !res.OK {
						bad.Store(true)
					}
					done.Add(1)
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pl.Close()
			// The arena is sync.Pool-backed, so a GC between warm-up and
			// the timed region would drop the warmed receivers and charge a
			// multi-megabyte rebuild to one arbitrary iteration; park the
			// collector for a deterministic allocation count.
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			// Warm-up: back-to-back submits saturate the window, so the
			// arena allocates its steady-state receiver set before the timer
			// starts and the timed region stays allocation-free.
			const warm = 4
			for i := 0; i < warm; i++ {
				if err := pl.Submit(uint64(i), cfg, iq, ch.N0()); err != nil {
					b.Fatal(err)
				}
			}
			for done.Load() < warm {
				time.Sleep(time.Millisecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pl.Submit(uint64(warm+i), cfg, iq, ch.N0()); err != nil {
					b.Fatal(err)
				}
			}
			for done.Load() < int64(warm+b.N) {
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			if bad.Load() {
				b.Fatal("pipelined decode failed")
			}
			b.ReportMetric(float64(depth), "depth")
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "subframes/s")
		})
	}
}

// BenchmarkPHYEndToEndParallel is the parallel fast path: the same subframe
// decoded via a phy.Pool at increasing subtask fan-out. On a single-CPU
// machine the workers>1 rows only add pool overhead; the speedup shows on
// multicore hosts.
func BenchmarkPHYEndToEndParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rx, iq, n0 := benchSubframe(b)
			pool := phy.NewPool(workers)
			defer pool.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := pool.ProcessParallel(rx, iq, n0)
				if err != nil || !res.OK {
					b.Fatal("decode failed")
				}
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(b.N), "us/subframe")
		})
	}
}
