package rtopex

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment at a reduced-but-meaningful scale per
// iteration, so `go test -bench=. -benchmem` both exercises every
// reproduction path and reports the cost of regenerating each artifact.
// The full-scale outputs are produced by `go run ./cmd/rtopex -all`.

import (
	"fmt"
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/phy"
	"rtopex/internal/stats"
)

// benchOpts keeps per-iteration work bounded while preserving each
// experiment's structure (full sweeps, reduced sample counts).
var benchOpts = ExperimentOptions{Quick: true, Subframes: 1500, Samples: 30_000}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := RunExperiment(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig01LoadTrace(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkTable1ModelFit(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkFig03aProcVsIterations(b *testing.B)  { benchExperiment(b, "fig3a") }
func BenchmarkFig03bProcVsSNR(b *testing.B)         { benchExperiment(b, "fig3b") }
func BenchmarkFig03cProcVsAntennas(b *testing.B)    { benchExperiment(b, "fig3c") }
func BenchmarkFig03dErrorDistribution(b *testing.B) { benchExperiment(b, "fig3d") }
func BenchmarkFig04TaskParallelism(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig06CloudDelay(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig07TransportVsAntennas(b *testing.B) {
	benchExperiment(b, "fig7")
}
func BenchmarkFig14LoadCDF(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15DeadlineMiss(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkFig16GapsMigrations(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17MissVsLoad(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkFig18MigrationOverhead(b *testing.B) {
	benchExperiment(b, "fig18")
}
func BenchmarkFig19GlobalCores(b *testing.B) { benchExperiment(b, "fig19") }

func BenchmarkTable2Comparison(b *testing.B) { benchExperiment(b, "table2") }

func BenchmarkAblationAlg1(b *testing.B)        { benchExperiment(b, "ablation-alg1") }
func BenchmarkAblationDelta(b *testing.B)       { benchExperiment(b, "ablation-delta") }
func BenchmarkAblationGranularity(b *testing.B) { benchExperiment(b, "ablation-granularity") }
func BenchmarkAblationCache(b *testing.B)       { benchExperiment(b, "ablation-cache") }
func BenchmarkAblationDispatch(b *testing.B)    { benchExperiment(b, "ablation-dispatch") }
func BenchmarkAblationTaskMigration(b *testing.B) {
	benchExperiment(b, "ablation-task-migration")
}

func BenchmarkExtParallel(b *testing.B)  { benchExperiment(b, "ext-parallel") }
func BenchmarkExtHetero(b *testing.B)    { benchExperiment(b, "ext-hetero") }
func BenchmarkExtTransport(b *testing.B) { benchExperiment(b, "ext-transport") }
func BenchmarkExtPooling(b *testing.B)   { benchExperiment(b, "ext-pooling") }

// BenchmarkSchedulerThroughput measures raw simulation speed: subframes
// scheduled per second under each scheduler.
func BenchmarkSchedulerThroughput(b *testing.B) {
	w, err := BuildWorkload(WorkloadConfig{
		Basestations: 4, Subframes: 5000, Antennas: 2, Bandwidth: BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: PaperGPP, Jitter: DefaultJitter, IterLaw: DefaultIterationLaw,
		Profiles: DefaultTraceProfiles, FixedMCS: -1,
		Transport: FixedTransport{OneWay: 500}, ExpectedRTT2US: 500, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mk := range []struct {
		name string
		new  func() Scheduler
	}{
		{"partitioned", func() Scheduler { return NewPartitioned(2) }},
		{"global", func() Scheduler { return NewGlobal() }},
		{"rt-opex", func() Scheduler { return NewRTOPEX(2) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(w, mk.new(), 8); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(20000*b.N)/b.Elapsed().Seconds(), "subframes/s")
		})
	}
}

// benchSubframe builds the canonical MCS-27, 2-antenna, 30 dB subframe the
// PHY benchmarks decode (same seeds as the original BenchmarkPHYEndToEnd).
func benchSubframe(b *testing.B) (*phy.Receiver, [][]complex128, float64) {
	b.Helper()
	cfg := PHYConfig{Bandwidth: BW10MHz, MCS: 27, Antennas: 2, RNTI: 1, CellID: 1}
	tx, err := NewTransmitter(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(1)
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)
	wave, err := tx.Transmit(payload)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := channel.New(30, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	iq, _ := ch.Apply(wave)
	rx, err := phy.NewReceiver(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rx, iq, ch.N0()
}

// BenchmarkPHYEndToEnd measures the real Go chain: one full MCS-27
// subframe decode per iteration.
func BenchmarkPHYEndToEnd(b *testing.B) {
	rx, iq, n0 := benchSubframe(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rx.Process(iq, n0)
		if err != nil || !res.OK {
			b.Fatal("decode failed")
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(b.N), "us/subframe")
}

// benchStage isolates one pipeline stage: earlier stages run once to feed
// it, then each iteration re-executes only the target stage's subtasks
// (every stage rewrites its scratch from its inputs, so repeats are exact).
func benchStage(b *testing.B, name phy.TaskName) {
	b.Helper()
	rx, iq, n0 := benchSubframe(b)
	stages, err := rx.Pipeline(iq, n0)
	if err != nil {
		b.Fatal(err)
	}
	var target []func()
	for _, st := range stages {
		if st.Name == name {
			target = st.Subtasks
			break
		}
		for _, sub := range st.Subtasks {
			sub()
		}
	}
	if target == nil {
		b.Fatalf("stage %q not in pipeline", name)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sub := range target {
			sub()
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(b.N), "us/stage")
}

func BenchmarkPHYFFT(b *testing.B)    { benchStage(b, phy.TaskFFT) }
func BenchmarkPHYDemod(b *testing.B)  { benchStage(b, phy.TaskDemod) }
func BenchmarkPHYDecode(b *testing.B) { benchStage(b, phy.TaskDecode) }

// BenchmarkPHYEndToEndParallel is the parallel fast path: the same subframe
// decoded via a phy.Pool at increasing subtask fan-out. On a single-CPU
// machine the workers>1 rows only add pool overhead; the speedup shows on
// multicore hosts.
func BenchmarkPHYEndToEndParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rx, iq, n0 := benchSubframe(b)
			pool := phy.NewPool(workers)
			defer pool.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := pool.ProcessParallel(rx, iq, n0)
				if err != nil || !res.OK {
					b.Fatal("decode failed")
				}
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(b.N), "us/subframe")
		})
	}
}
