module rtopex

go 1.22
