package rtopex

import (
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/stats"
)

func TestPublicLinkRoundTrip(t *testing.T) {
	cfg := PHYConfig{Bandwidth: BW10MHz, MCS: 13, Antennas: 2, RNTI: 0x10, CellID: 3}
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(1)
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)
	wave, err := tx.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(30, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	iq, _ := ch.Apply(wave)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Process(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("decode failed through the public API")
	}
}

func TestPublicSimulation(t *testing.T) {
	w, err := BuildWorkload(WorkloadConfig{
		Basestations: 4, Subframes: 2000, Antennas: 2, Bandwidth: BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: PaperGPP, Jitter: DefaultJitter, IterLaw: DefaultIterationLaw,
		Profiles: DefaultTraceProfiles, FixedMCS: -1,
		Transport: FixedTransport{OneWay: 550}, ExpectedRTT2US: 550, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Simulate(w, NewPartitioned(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(w, NewRTOPEX(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Simulate(w, NewGlobal(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Jobs() != 8000 || r.Jobs() != 8000 || g.Jobs() != 8000 {
		t.Fatal("jobs not accounted through public API")
	}
	if r.MissRate() > p.MissRate() {
		t.Fatalf("RT-OPEX (%v) worse than partitioned (%v)", r.MissRate(), p.MissRate())
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	tb, err := RunExperiment("fig3a", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 28 {
		t.Fatalf("fig3a rows = %d", len(tb.Rows))
	}
	if _, err := RunExperiment("missing", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPublicComparators(t *testing.T) {
	w, err := BuildWorkload(WorkloadConfig{
		Basestations: 4, Subframes: 1500, Antennas: 2, Bandwidth: BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: PaperGPP, Jitter: DefaultJitter, IterLaw: DefaultIterationLaw,
		Profiles: DefaultTraceProfiles, FixedMCS: -1,
		Transport: FixedTransport{OneWay: 550}, ExpectedRTT2US: 550, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{
		NewStaticParallel(2),
		NewPRAN(),
		NewSemiPartitioned(2),
	} {
		m, err := Simulate(w, s, 8)
		if err != nil {
			t.Fatal(err)
		}
		if m.Jobs() != 6000 {
			t.Fatalf("%s: jobs %d", m.Scheduler, m.Jobs())
		}
	}
}

func TestPublicHARQ(t *testing.T) {
	cfg := PHYConfig{Bandwidth: BW10MHz, MCS: 10, Antennas: 2, RNTI: 0x77, CellID: 5}
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(11)
	p := make([]byte, tx.TBS())
	bits.RandomBits(p, r.Uint64)
	h, err := NewHARQReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := NewChannel(30, 2, 12)
	rv := HARQRVSequence[0]
	wave, err := tx.TransmitRV(p, rv)
	if err != nil {
		t.Fatal(err)
	}
	iq, _ := ch.Apply(wave)
	res, err := h.Receive(iq, ch.N0(), rv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("public HARQ decode failed at 30 dB")
	}
}

func TestPublicDuplexWorkload(t *testing.T) {
	w, err := BuildWorkload(WorkloadConfig{
		Basestations: 2, Subframes: 1000, Antennas: 2, Bandwidth: BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: PaperGPP, Jitter: DefaultJitter, IterLaw: DefaultIterationLaw,
		Profiles: DefaultTraceProfiles, FixedMCS: -1,
		Transport: FixedTransport{OneWay: 500}, ExpectedRTT2US: 500, Seed: 13,
		IncludeDownlink: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Simulate(w, NewRTOPEX(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.TxJobs == 0 {
		t.Fatal("no downlink jobs through the public API")
	}
	if m.TxMissRate() < 0 || m.TxMissRate() > 1 {
		t.Fatal("nonsensical tx miss rate")
	}
}
