package channel

import (
	"math"
	"testing"
)

func TestMultipathValidation(t *testing.T) {
	if _, err := NewMultipath(10, 0, EPA, 1); err == nil {
		t.Error("0 antennas accepted")
	}
	if _, err := NewMultipath(10, 1, nil, 1); err == nil {
		t.Error("no taps accepted")
	}
	if _, err := NewMultipath(10, 1, []Tap{{-1, 0}}, 1); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestMultipathUnitAveragePower(t *testing.T) {
	// The normalized impulse responses must average unit power so the
	// configured SNR is honored.
	m, err := NewMultipath(20, 1, EVA, 2)
	if err != nil {
		t.Fatal(err)
	}
	var power float64
	const draws = 5000
	for i := 0; i < draws; i++ {
		for _, g := range m.impulse() {
			power += real(g)*real(g) + imag(g)*imag(g)
		}
	}
	power /= draws
	if math.Abs(power-1) > 0.05 {
		t.Fatalf("mean impulse power %v, want ~1", power)
	}
}

func TestMultipathDelaySpread(t *testing.T) {
	m, _ := NewMultipath(20, 1, EPA, 3)
	h := m.impulse()
	if len(h) != 27 { // EPA's longest tap is 26 samples
		t.Fatalf("impulse length %d", len(h))
	}
	if h[0] == 0 {
		t.Fatal("first tap empty")
	}
}

func TestMultipathOutputShape(t *testing.T) {
	m, _ := NewMultipath(20, 3, EPA, 4)
	tx := make([]complex128, 500)
	tx[0] = 1
	rx, hs := m.Apply(tx)
	if len(rx) != 3 || len(hs) != 3 {
		t.Fatal("wrong antenna count")
	}
	for a := range rx {
		if len(rx[a]) != 500 {
			t.Fatal("wrong sample count")
		}
	}
}

func TestMultipathIsFrequencySelective(t *testing.T) {
	// A pure impulse through the channel spreads across the delay line:
	// energy must appear at more than one delay for a multi-tap profile.
	m, _ := NewMultipath(60, 1, EVA, 5) // essentially noiseless
	tx := make([]complex128, 100)
	tx[0] = 1
	rx, hs := m.Apply(tx)
	nonzero := 0
	for d := 0; d < len(hs[0]); d++ {
		if mag2(rx[0][d]) > 1e-6 {
			nonzero++
		}
	}
	if nonzero < 3 {
		t.Fatalf("only %d significant echoes — channel not dispersive", nonzero)
	}
}

func mag2(x complex128) float64 { return real(x)*real(x) + imag(x)*imag(x) }

func TestMultipathDeterminism(t *testing.T) {
	a, _ := NewMultipath(20, 2, EPA, 7)
	b, _ := NewMultipath(20, 2, EPA, 7)
	tx := make([]complex128, 64)
	tx[5] = 1
	ra, _ := a.Apply(tx)
	rb, _ := b.Apply(tx)
	for ant := range ra {
		for i := range ra[ant] {
			if ra[ant][i] != rb[ant][i] {
				t.Fatal("same seed diverged")
			}
		}
	}
}
