package channel

import (
	"fmt"
	"math"

	"rtopex/internal/stats"
)

// Tap is one path of a tapped-delay-line channel.
type Tap struct {
	DelaySamples int
	// PowerDB is the average tap power relative to the strongest tap.
	PowerDB float64
}

// Standard 3GPP delay profiles, quantized to the 15.36 Msps (10 MHz)
// sample grid. EPA is gentle (≤26 samples ≈ 410 ns); ETU is hard
// (up to 77 samples ≈ 5 µs), exceeding the cyclic prefix of higher-order
// numerologies and stressing the equalizer.
var (
	// EPA is the Extended Pedestrian A profile.
	EPA = []Tap{{0, 0}, {1, -1}, {2, -2}, {3, -3}, {6, -8}, {10, -17.2}, {26, -20.8}}
	// EVA is the Extended Vehicular A profile.
	EVA = []Tap{{0, 0}, {1, -1.5}, {4, -1.4}, {5, -3.6}, {7, -0.6}, {11, -9.1}, {17, -7}, {34, -12}, {39, -16.9}}
)

// Multipath is a frequency-selective block-fading channel: per antenna, an
// independent tapped delay line whose tap gains are complex Gaussian,
// constant over a subframe. AWGN is added at the configured SNR.
type Multipath struct {
	SNRdB    float64
	Antennas int
	Taps     []Tap

	rng *stats.RNG
}

// NewMultipath creates a frequency-selective channel model.
func NewMultipath(snrDB float64, antennas int, taps []Tap, seed uint64) (*Multipath, error) {
	if antennas < 1 {
		return nil, fmt.Errorf("channel: need at least one antenna, got %d", antennas)
	}
	if len(taps) == 0 {
		return nil, fmt.Errorf("channel: need at least one tap")
	}
	for _, tp := range taps {
		if tp.DelaySamples < 0 {
			return nil, fmt.Errorf("channel: negative tap delay")
		}
	}
	return &Multipath{SNRdB: snrDB, Antennas: antennas, Taps: taps, rng: stats.NewRNG(seed)}, nil
}

// N0 returns the complex noise power for unit-power transmit signals.
func (m *Multipath) N0() float64 { return math.Pow(10, -m.SNRdB/10) }

// impulse draws one normalized channel impulse response: tap powers follow
// the profile and the total power is one, so the average receive SNR is
// preserved.
func (m *Multipath) impulse() []complex128 {
	maxDelay := 0
	var totalLin float64
	for _, tp := range m.Taps {
		if tp.DelaySamples > maxDelay {
			maxDelay = tp.DelaySamples
		}
		totalLin += math.Pow(10, tp.PowerDB/10)
	}
	h := make([]complex128, maxDelay+1)
	for _, tp := range m.Taps {
		p := math.Pow(10, tp.PowerDB/10) / totalLin
		sigma := math.Sqrt(p / 2)
		h[tp.DelaySamples] += complex(sigma*m.rng.NormFloat64(), sigma*m.rng.NormFloat64())
	}
	return h
}

// Apply convolves tx with an independent impulse response per antenna
// (linear convolution — each OFDM symbol's cyclic prefix turns it into the
// per-symbol circular convolution the equalizer assumes, as long as the
// delay spread stays under the CP, which holds for EPA/EVA at 10 MHz) and
// adds AWGN.
func (m *Multipath) Apply(tx []complex128) (rx [][]complex128, impulses [][]complex128) {
	sigma := math.Sqrt(m.N0() / 2)
	rx = make([][]complex128, m.Antennas)
	impulses = make([][]complex128, m.Antennas)
	n := len(tx)
	for a := 0; a < m.Antennas; a++ {
		h := m.impulse()
		impulses[a] = h
		out := make([]complex128, n)
		for i := 0; i < n; i++ {
			var acc complex128
			for d, g := range h {
				if g == 0 || i-d < 0 {
					continue
				}
				acc += g * tx[i-d]
			}
			out[i] = acc + complex(sigma*m.rng.NormFloat64(), sigma*m.rng.NormFloat64())
		}
		rx[a] = out
	}
	return rx, impulses
}
