// Package channel provides the wireless channel models used to exercise the
// uplink chain: complex AWGN at a configurable SNR and a flat (frequency
// non-selective) per-antenna gain, which is the model the paper's evaluation
// uses ("an AWGN channel model with a fixed SNR of 30 dB", §4.2).
package channel

import (
	"fmt"
	"math"

	"rtopex/internal/stats"
)

// Model generates per-antenna received signals from one transmitted signal.
type Model struct {
	// SNRdB is the per-antenna average signal-to-noise ratio.
	SNRdB float64
	// Antennas is the number of receive antennas (the paper's N).
	Antennas int
	// Rayleigh, when true, draws each antenna gain from a complex normal
	// distribution (|h| Rayleigh); otherwise gains have unit magnitude and
	// a uniform random phase.
	Rayleigh bool

	rng *stats.RNG
}

// New creates a channel model with a deterministic seed.
func New(snrDB float64, antennas int, seed uint64) (*Model, error) {
	if antennas < 1 {
		return nil, fmt.Errorf("channel: need at least one antenna, got %d", antennas)
	}
	return &Model{SNRdB: snrDB, Antennas: antennas, rng: stats.NewRNG(seed)}, nil
}

// N0 returns the complex noise power corresponding to SNRdB for unit-power
// transmit signals.
func (m *Model) N0() float64 { return math.Pow(10, -m.SNRdB/10) }

// Gains draws one flat gain per antenna for a subframe.
func (m *Model) Gains() []complex128 {
	h := make([]complex128, m.Antennas)
	for a := range h {
		if m.Rayleigh {
			h[a] = complex(m.rng.NormFloat64()/math.Sqrt2, m.rng.NormFloat64()/math.Sqrt2)
		} else {
			ang := 2 * math.Pi * m.rng.Float64()
			h[a] = complex(math.Cos(ang), math.Sin(ang))
		}
	}
	return h
}

// Apply produces the per-antenna received samples for the transmitted
// baseband signal tx: rx[a][n] = h[a]·tx[n] + w[a][n], with w complex
// Gaussian of power N0.
func (m *Model) Apply(tx []complex128) (rx [][]complex128, gains []complex128) {
	gains = m.Gains()
	return m.ApplyWithGains(tx, gains), gains
}

// ApplyWithGains is Apply with caller-provided gains (len must equal
// Antennas), for reproducing a specific channel realization.
func (m *Model) ApplyWithGains(tx []complex128, gains []complex128) [][]complex128 {
	if len(gains) != m.Antennas {
		panic(fmt.Sprintf("channel: %d gains for %d antennas", len(gains), m.Antennas))
	}
	sigma := math.Sqrt(m.N0() / 2)
	rx := make([][]complex128, m.Antennas)
	for a := 0; a < m.Antennas; a++ {
		out := make([]complex128, len(tx))
		h := gains[a]
		for n, x := range tx {
			noise := complex(sigma*m.rng.NormFloat64(), sigma*m.rng.NormFloat64())
			out[n] = h*x + noise
		}
		rx[a] = out
	}
	return rx
}
