package channel

import (
	"math"
	"testing"
)

func TestN0(t *testing.T) {
	m, _ := New(10, 1, 1)
	if math.Abs(m.N0()-0.1) > 1e-12 {
		t.Fatalf("N0(10 dB) = %v, want 0.1", m.N0())
	}
	m, _ = New(0, 1, 1)
	if math.Abs(m.N0()-1) > 1e-12 {
		t.Fatalf("N0(0 dB) = %v, want 1", m.N0())
	}
}

func TestGainsUnitMagnitude(t *testing.T) {
	m, _ := New(20, 4, 2)
	h := m.Gains()
	if len(h) != 4 {
		t.Fatalf("%d gains", len(h))
	}
	for _, g := range h {
		mag := math.Hypot(real(g), imag(g))
		if math.Abs(mag-1) > 1e-12 {
			t.Fatalf("non-unit gain magnitude %v", mag)
		}
	}
}

func TestRayleighGainStatistics(t *testing.T) {
	m, _ := New(20, 1, 3)
	m.Rayleigh = true
	var power float64
	const draws = 20000
	for i := 0; i < draws; i++ {
		g := m.Gains()[0]
		power += real(g)*real(g) + imag(g)*imag(g)
	}
	power /= draws
	if math.Abs(power-1) > 0.05 {
		t.Fatalf("Rayleigh mean power %v, want ~1", power)
	}
}

func TestApplyNoisePower(t *testing.T) {
	m, _ := New(10, 2, 4)
	tx := make([]complex128, 20000) // silence: output is pure noise
	rx, gains := m.Apply(tx)
	if len(rx) != 2 || len(gains) != 2 {
		t.Fatal("wrong output shape")
	}
	for a := range rx {
		var p float64
		for _, y := range rx[a] {
			p += real(y)*real(y) + imag(y)*imag(y)
		}
		p /= float64(len(rx[a]))
		if math.Abs(p-m.N0()) > 0.01*m.N0()+0.005 {
			t.Fatalf("antenna %d noise power %v, want %v", a, p, m.N0())
		}
	}
}

func TestApplySignalScaling(t *testing.T) {
	m, _ := New(60, 1, 5) // essentially noiseless
	tx := []complex128{1, 1i, -1, -1i}
	rx := m.ApplyWithGains(tx, []complex128{2})
	for i, y := range rx[0] {
		want := 2 * tx[i]
		if math.Hypot(real(y-want), imag(y-want)) > 0.01 {
			t.Fatalf("sample %d = %v, want ~%v", i, y, want)
		}
	}
}

func TestApplyWithGainsPanicsOnMismatch(t *testing.T) {
	m, _ := New(10, 2, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on gain count mismatch")
		}
	}()
	m.ApplyWithGains(make([]complex128, 4), []complex128{1})
}

func TestDeterminism(t *testing.T) {
	a, _ := New(10, 2, 7)
	b, _ := New(10, 2, 7)
	tx := make([]complex128, 100)
	tx[0] = 1
	ra, _ := a.Apply(tx)
	rb, _ := b.Apply(tx)
	for ant := range ra {
		for i := range ra[ant] {
			if ra[ant][i] != rb[ant][i] {
				t.Fatal("same seed produced different channels")
			}
		}
	}
}
