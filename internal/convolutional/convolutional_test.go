package convolutional

import (
	"math"
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/stats"
)

func randomMsg(r *stats.RNG, n int) []byte {
	m := make([]byte, n)
	bits.RandomBits(m, r.Uint64)
	return m
}

// toLLR converts coded bits to noisy LLRs at the given Es/N0.
func toLLR(r *stats.RNG, coded []byte, snrDB float64) []float64 {
	n0 := math.Pow(10, -snrDB/10)
	sigma := math.Sqrt(n0 / 2)
	out := make([]float64, len(coded))
	for i, b := range coded {
		s := 1.0
		if b == 1 {
			s = -1
		}
		out[i] = 4 * (s + sigma*r.NormFloat64()) / n0
	}
	return out
}

func TestEncodeShape(t *testing.T) {
	r := stats.NewRNG(1)
	msg := randomMsg(r, 40)
	coded, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(coded) != 120 {
		t.Fatalf("coded length %d, want 120 (rate 1/3, no tail)", len(coded))
	}
}

func TestEncodeRejectsShort(t *testing.T) {
	if _, err := Encode(make([]byte, 5)); err == nil {
		t.Fatal("sub-memory message accepted")
	}
}

func TestTailBitingCircularity(t *testing.T) {
	// Rotating the message rotates each output stream identically — the
	// defining property of a tail-biting code.
	r := stats.NewRNG(2)
	n := 48
	msg := randomMsg(r, n)
	rot := append(append([]byte(nil), msg[1:]...), msg[0])
	a, _ := Encode(msg)
	b, _ := Encode(rot)
	for stream := 0; stream < 3; stream++ {
		for i := 0; i < n; i++ {
			if a[stream*n+(i+1)%n] != b[stream*n+i] {
				t.Fatalf("stream %d not circular at %d", stream, i)
			}
		}
	}
}

func TestDecodeNoiseless(t *testing.T) {
	r := stats.NewRNG(3)
	for _, n := range []int{8, 24, 40, 72, 128} {
		msg := randomMsg(r, n)
		coded, _ := Encode(msg)
		llrs := make([]float64, len(coded))
		for i, b := range coded {
			llrs[i] = 8 * (1 - 2*float64(b))
		}
		got, err := Decode(llrs)
		if err != nil {
			t.Fatal(err)
		}
		if bits.HammingDistance(got, msg) != 0 {
			t.Fatalf("n=%d: noiseless decode failed", n)
		}
	}
}

func TestDecodeUnderNoise(t *testing.T) {
	// Rate-1/3 K=7 at 2 dB Es/N0 should decode essentially always for
	// short control payloads.
	r := stats.NewRNG(4)
	errs := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		msg := randomMsg(r, 44) // typical DCI size + CRC
		coded, _ := Encode(msg)
		got, err := Decode(toLLR(r, coded, 2))
		if err != nil {
			t.Fatal(err)
		}
		if bits.HammingDistance(got, msg) != 0 {
			errs++
		}
	}
	if errs > 2 {
		t.Fatalf("%d/%d blocks failed at 2 dB", errs, trials)
	}
}

func TestDecodeValidation(t *testing.T) {
	if _, err := Decode(make([]float64, 10)); err == nil {
		t.Fatal("non-multiple-of-3 accepted")
	}
	if _, err := Decode(make([]float64, 9)); err == nil {
		t.Fatal("sub-memory length accepted")
	}
}

func TestDCIRoundTrip(t *testing.T) {
	r := stats.NewRNG(5)
	payload := randomMsg(r, 28)
	const rnti = 0x1234
	coded, err := EncodeDCI(payload, rnti)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := DecodeDCI(toLLR(r, coded, 4), rnti, 28)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("CRC failed for the addressed RNTI")
	}
	if bits.HammingDistance(got, payload) != 0 {
		t.Fatal("payload corrupted")
	}
}

func TestDCIBlindDecodingRejectsWrongRNTI(t *testing.T) {
	// The RNTI mask is what makes blind decoding selective: the same
	// candidate must fail the CRC under any other RNTI.
	r := stats.NewRNG(6)
	payload := randomMsg(r, 28)
	coded, _ := EncodeDCI(payload, 0x0042)
	llrs := toLLR(r, coded, 6)
	if _, ok, _ := DecodeDCI(llrs, 0x0042, 28); !ok {
		t.Fatal("addressed RNTI rejected")
	}
	for _, wrong := range []uint16{0x0041, 0x4242, 0xFFFF} {
		if _, ok, _ := DecodeDCI(llrs, wrong, 28); ok {
			t.Fatalf("RNTI %#x accepted a foreign grant", wrong)
		}
	}
}

func TestDCISizeValidation(t *testing.T) {
	r := stats.NewRNG(7)
	coded, _ := EncodeDCI(randomMsg(r, 28), 1)
	if _, _, err := DecodeDCI(toLLR(r, coded, 6), 1, 99); err == nil {
		t.Fatal("wrong payload size accepted")
	}
}

func BenchmarkViterbiDecode44(b *testing.B) {
	r := stats.NewRNG(8)
	msg := randomMsg(r, 44)
	coded, _ := Encode(msg)
	llrs := toLLR(r, coded, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Decode(llrs)
	}
}
