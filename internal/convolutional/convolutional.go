// Package convolutional implements the LTE control-channel code of
// TS 36.212 §5.1.3.1: the rate-1/3, constraint-length-7 tail-biting
// convolutional code (generators 133, 171, 165 octal) with a wrap-around
// Viterbi decoder, plus the DCI-style CRC16 attachment masked by the
// addressee's RNTI. The data channels use the turbo code (package turbo);
// this code carries the grants and control information that tell a
// basestation what to decode in the first place.
package convolutional

import (
	"fmt"
	"math"

	"rtopex/internal/bits"
)

// Generator polynomials, constraint length 7 (64 states).
const (
	g0 = 0o133
	g1 = 0o171
	g2 = 0o165

	numStates      = 64
	memory         = 6
	outputsPerStep = 3
)

// outputBits computes the three coded bits for state s (the six previous
// input bits, most recent in the LSB) and input u.
func outputBits(s int, u byte) (byte, byte, byte) {
	reg := (s << 1) | int(u&1) // 7-bit window, newest bit in LSB
	return parity7(reg & g0), parity7(reg & g1), parity7(reg & g2)
}

func parity7(x int) byte {
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// nextState advances the shift register.
func nextState(s int, u byte) int {
	return ((s << 1) | int(u&1)) & (numStates - 1)
}

// Encode tail-biting encodes a 0/1 bit message: the shift register is
// initialized with the message's last six bits, so the trellis starts and
// ends in the same state and no tail bits are transmitted. The output is
// the three streams concatenated d0 | d1 | d2, each len(msg) long.
func Encode(msg []byte) ([]byte, error) {
	if len(msg) < memory {
		return nil, fmt.Errorf("convolutional: message of %d bits shorter than memory %d", len(msg), memory)
	}
	n := len(msg)
	// Initial state: the last 6 input bits, newest in the LSB.
	s := 0
	for i := n - memory; i < n; i++ {
		s = nextState(s, msg[i])
	}
	d0 := make([]byte, n)
	d1 := make([]byte, n)
	d2 := make([]byte, n)
	for i, u := range msg {
		d0[i], d1[i], d2[i] = outputBits(s, u)
		s = nextState(s, u)
	}
	out := make([]byte, 0, 3*n)
	out = append(out, d0...)
	out = append(out, d1...)
	out = append(out, d2...)
	return out, nil
}

// Decode runs a wrap-around Viterbi decoder over soft bits (positive LLR ⇒
// bit 0), laid out as Encode produces them (three concatenated streams).
// Tail-biting is handled by decoding the sequence twice in a circle and
// taking the middle pass, which converges to the circular maximum-
// likelihood path for practical lengths.
func Decode(llrs []float64) ([]byte, error) {
	if len(llrs)%outputsPerStep != 0 {
		return nil, fmt.Errorf("convolutional: %d LLRs not a multiple of 3", len(llrs))
	}
	n := len(llrs) / outputsPerStep
	if n < memory {
		return nil, fmt.Errorf("convolutional: %d steps shorter than memory %d", n, memory)
	}
	s0 := llrs[0:n]
	s1 := llrs[n : 2*n]
	s2 := llrs[2*n : 3*n]

	// Branch metric for (state, input) at step i: correlation of expected
	// symbols (±1) with the received LLRs.
	branch := func(i, s int, u byte) float64 {
		b0, b1, b2 := outputBits(s, u)
		m := 0.0
		m += corr(s0[i%n], b0)
		m += corr(s1[i%n], b1)
		m += corr(s2[i%n], b2)
		return m
	}

	// Two circular passes; decisions recorded for the second.
	total := 2 * n
	metric := make([]float64, numStates) // all-zero start: equal priors
	next := make([]float64, numStates)
	decisions := make([][numStates]byte, total)
	for i := 0; i < total; i++ {
		for s := range next {
			next[s] = math.Inf(-1)
		}
		for s := 0; s < numStates; s++ {
			ms := metric[s]
			if math.IsInf(ms, -1) {
				continue
			}
			for u := byte(0); u <= 1; u++ {
				ns := nextState(s, u)
				m := ms + branch(i, s, u)
				if m > next[ns] {
					next[ns] = m
					decisions[i][ns] = byte(s>>5) | u<<1 // MSB of s + input, see traceback
				}
			}
		}
		copy(metric, next)
		// Normalize to avoid drift.
		best := metric[0]
		for _, v := range metric[1:] {
			if v > best {
				best = v
			}
		}
		for s := range metric {
			metric[s] -= best
		}
	}

	// Traceback from the best final state through both passes; emit the
	// middle window [n/2, n/2+n) which sits away from both edges.
	bestState := 0
	for s := 1; s < numStates; s++ {
		if metric[s] > metric[bestState] {
			bestState = s
		}
	}
	decoded := make([]byte, total)
	s := bestState
	for i := total - 1; i >= 0; i-- {
		d := decisions[i][s]
		u := (d >> 1) & 1
		msb := d & 1
		decoded[i] = u
		// Previous state: shift right, restoring the dropped MSB.
		s = (s >> 1) | int(msb)<<5
	}
	out := make([]byte, n)
	start := n / 2
	for i := 0; i < n; i++ {
		out[(start+i)%n] = decoded[start+i]
	}
	return out, nil
}

func corr(llr float64, b byte) float64 {
	if b == 1 {
		return -llr
	}
	return llr
}

// EncodeDCI attaches an RNTI-masked CRC16 to a control payload and
// convolutionally encodes it, per the PDCCH construction: the CRC is XORed
// with the 16-bit RNTI so only the addressed terminal's check passes.
func EncodeDCI(payload []byte, rnti uint16) ([]byte, error) {
	msg := append([]byte(nil), payload...)
	crc := bits.CRC16(msg) ^ uint32(rnti)
	msg = bits.AppendCRC(msg, crc, 16)
	return Encode(msg)
}

// DecodeDCI Viterbi-decodes a DCI candidate and verifies its CRC16 against
// the given RNTI. It returns the payload and whether the check passed —
// the blind-decoding primitive of the control channel.
func DecodeDCI(llrs []float64, rnti uint16, payloadBits int) ([]byte, bool, error) {
	msg, err := Decode(llrs)
	if err != nil {
		return nil, false, err
	}
	if len(msg) != payloadBits+16 {
		return nil, false, fmt.Errorf("convolutional: decoded %d bits, want %d", len(msg), payloadBits+16)
	}
	payload := msg[:payloadBits]
	var got uint32
	for _, b := range msg[payloadBits:] {
		got = got<<1 | uint32(b&1)
	}
	want := bits.CRC16(payload) ^ uint32(rnti)
	return payload, got == want, nil
}
