package trace

// This file is the run-level event-tracing layer (the load-trace generator
// lives in trace.go). A simulation run, when tracing is enabled, emits one
// Event per scheduler decision — job arrival, start, phase transitions,
// drops, finishes, and the full migration-batch lifecycle of Fig. 12 — into
// a Tracer sink. The ring sink bounds memory on long runs; the JSON/CSV
// exporters make a run's decisions diffable and renderable (cmd/rtoptrace).
//
// See README.md in this directory for the schema.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Kind identifies one traced event type.
type Kind uint8

// Event kinds. The mig-* kinds follow the migration-batch lifecycle of the
// paper's Fig. 12: a batch is planned onto an idle host (state 1 → 2), runs
// until it completes or the host's own subframe preempts it (state 2 → 3),
// and is finally consumed, awaited, recomputed, or abandoned by its owner.
const (
	// EvArrive: a subframe reached the compute node (Core is -1: no core
	// has been chosen yet).
	EvArrive Kind = iota
	// EvStart: a job began executing on Core.
	EvStart
	// EvPhase: a job entered a pipeline phase (Detail: fft/demod/decode).
	EvPhase
	// EvDrop: the slack check dropped the job (Detail: failing phase).
	EvDrop
	// EvFinish: the job ran to completion (Detail: ack/late/decodefail).
	EvFinish
	// EvMigPlan: a migration batch was installed on idle host Core
	// (Detail: "fft n=…" or "decode n=…").
	EvMigPlan
	// EvMigComplete: the host ran the batch to natural completion.
	EvMigComplete
	// EvMigPreempt: the host's own subframe preempted the batch.
	EvMigPreempt
	// EvMigConsume: the owner consumed the batch's ready results.
	EvMigConsume
	// EvMigWait: the owner waited for an in-flight batch (cheaper than
	// recomputing; Detail: wait time in µs).
	EvMigWait
	// EvMigRecompute: the owner recomputed unfinished subtasks locally
	// (Detail: subtask count and recompute time).
	EvMigRecompute
	// EvMigAbandon: the owner dropped its job and released the batch.
	EvMigAbandon

	numKinds
)

var kindNames = [numKinds]string{
	EvArrive:       "arrive",
	EvStart:        "start",
	EvPhase:        "phase",
	EvDrop:         "drop",
	EvFinish:       "finish",
	EvMigPlan:      "mig-plan",
	EvMigComplete:  "mig-complete",
	EvMigPreempt:   "mig-preempt",
	EvMigConsume:   "mig-consume",
	EvMigWait:      "mig-wait",
	EvMigRecompute: "mig-recompute",
	EvMigAbandon:   "mig-abandon",
}

// String returns the kind's schema name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalText serializes the kind as its schema name.
func (k Kind) MarshalText() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("trace: unknown event kind %d", int(k))
	}
	return []byte(kindNames[k]), nil
}

// UnmarshalText parses a schema name back into a kind.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one traced scheduler decision. Time is absolute simulation
// microseconds; Core is the core the event concerns (-1 when none applies);
// BS/Subframe identify the job the event belongs to. For migration events
// the job is the batch's *owner* while Core is the *host* executing it.
type Event struct {
	Time     float64 `json:"t"`
	Core     int     `json:"core"`
	BS       int     `json:"bs"`
	Subframe int     `json:"sf"`
	Event    Kind    `json:"ev"`
	Detail   string  `json:"detail,omitempty"`
}

// Tracer is an event sink a simulation run emits into. Implementations must
// tolerate events arriving in emission order, which is nondecreasing in
// engine time but may interleave cores. A nil Tracer (the normal case)
// disables tracing entirely: emit sites guard with a single nil check, so a
// disabled run pays no allocation or call overhead.
type Tracer interface {
	// Enabled reports whether events should be constructed at all.
	Enabled() bool
	// Emit records one event.
	Emit(e Event)
}

// Ring is a Tracer retaining the most recent events in a fixed-capacity
// ring buffer, so tracing arbitrarily long runs has bounded memory. A
// capacity ≤ 0 retains everything.
type Ring struct {
	cap     int
	buf     []Event
	head    int // index of the oldest event once the buffer is full
	dropped int64
}

// NewRing creates a ring sink. capacity ≤ 0 means unbounded.
func NewRing(capacity int) *Ring { return &Ring{cap: capacity} }

// Enabled implements Tracer.
func (r *Ring) Enabled() bool { return true }

// Emit implements Tracer, overwriting the oldest event when full.
func (r *Ring) Emit(e Event) {
	if r.cap <= 0 || len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % r.cap
	r.dropped++
}

// Len reports the number of retained events.
func (r *Ring) Len() int { return len(r.buf) }

// Dropped reports how many events were overwritten by newer ones.
func (r *Ring) Dropped() int64 { return r.dropped }

// Events returns the retained events in emission order (a copy).
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Reset discards all retained events and the drop count.
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.head = 0
	r.dropped = 0
}

var _ Tracer = (*Ring)(nil)

// locked serializes access to an underlying sink.
type locked struct {
	mu sync.Mutex
	t  Tracer
}

// Locked wraps a Tracer so concurrent goroutines may Emit into it safely.
// The discrete-event simulation emits from a single goroutine and needs no
// wrapping; the realtime layer's worker threads emit concurrently and must
// wrap their sink.
func Locked(t Tracer) Tracer { return &locked{t: t} }

// Enabled implements Tracer.
func (l *locked) Enabled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Enabled()
}

// Emit implements Tracer.
func (l *locked) Emit(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.t.Emit(e)
}

type tee struct{ sinks []Tracer }

// Tee fans each event out to every sink, in order. It is Enabled when any
// sink is, and sinks that report disabled are skipped on Emit. Nil sinks are
// dropped; a tee of zero or one live sinks collapses to the obvious thing.
// Nested tees are spliced flat, so composing an existing tee with one more
// sink (arming a flight recorder over a run's ring+accountant pair) costs a
// single dispatch per sink per event, not a dispatch per nesting level.
// The typical use is recording a run into a Ring while a CoreAccountant
// tallies utilization from the same stream.
func Tee(sinks ...Tracer) Tracer {
	live := make([]Tracer, 0, len(sinks))
	for _, s := range sinks {
		switch s := s.(type) {
		case nil:
		case *tee:
			live = append(live, s.sinks...)
		default:
			live = append(live, s)
		}
	}
	if len(live) == 1 {
		return live[0]
	}
	return &tee{sinks: live}
}

// Enabled implements Tracer.
func (t *tee) Enabled() bool {
	for _, s := range t.sinks {
		if s.Enabled() {
			return true
		}
	}
	return false
}

// Emit implements Tracer.
func (t *tee) Emit(e Event) {
	for _, s := range t.sinks {
		if s.Enabled() {
			s.Emit(e)
		}
	}
}

// EventLog is the exportable form of one run's trace.
type EventLog struct {
	// Scheduler names the scheduler that produced the trace.
	Scheduler string `json:"scheduler,omitempty"`
	// Cores is the core count of the run (0 when unknown).
	Cores int `json:"cores,omitempty"`
	// Dropped counts events the sink overwrote (ring overflow): the log is
	// the *tail* of the run when nonzero.
	Dropped int64 `json:"dropped,omitempty"`
	// Events are in emission order.
	Events []Event `json:"events"`
}

// eventsHeader tags the CSV event-trace format (the load-trace CSV format
// uses its own header).
const eventsHeader = "# rtopex-events v1"

// WriteJSON serializes the log as a single JSON document. The output is
// deterministic: identical logs produce byte-identical documents.
func (l *EventLog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(l)
}

// ReadEventLog parses a JSON event log.
func ReadEventLog(r io.Reader) (*EventLog, error) {
	var l EventLog
	dec := json.NewDecoder(r)
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("trace: bad event log: %v", err)
	}
	return &l, nil
}

// WriteCSV serializes the events as CSV: a header comment, a column row,
// then one row per event. Detail fields containing commas are quoted.
func (l *EventLog) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, eventsHeader)
	fmt.Fprintln(bw, "t_us,core,bs,sf,event,detail")
	for _, e := range l.Events {
		detail := e.Detail
		if strings.ContainsAny(detail, ",\"\n") {
			detail = `"` + strings.ReplaceAll(detail, `"`, `""`) + `"`
		}
		fmt.Fprintf(bw, "%s,%d,%d,%d,%s,%s\n",
			strconv.FormatFloat(e.Time, 'g', -1, 64), e.Core, e.BS, e.Subframe, e.Event, detail)
	}
	return bw.Flush()
}
