package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func ev(t float64, kind Kind) Event {
	return Event{Time: t, Core: int(t) % 4, BS: 1, Subframe: int(t), Event: kind, Detail: "d"}
}

func TestRingUnbounded(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 100; i++ {
		r.Emit(ev(float64(i), EvStart))
	}
	if r.Len() != 100 || r.Dropped() != 0 {
		t.Fatalf("len %d dropped %d", r.Len(), r.Dropped())
	}
	if got := r.Events(); got[0].Time != 0 || got[99].Time != 99 {
		t.Fatalf("order broken: %v .. %v", got[0], got[99])
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(ev(float64(i), EvPhase))
	}
	if r.Len() != 4 {
		t.Fatalf("len %d", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped %d", r.Dropped())
	}
	got := r.Events()
	for i, e := range got {
		if e.Time != float64(6+i) {
			t.Fatalf("event %d is t=%v, want %v", i, e.Time, 6+i)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestKindTextRoundTrip(t *testing.T) {
	for k := EvArrive; k <= EvMigAbandon; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("%v -> %s -> %v", k, b, back)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("no-such-event")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func testLog() *EventLog {
	return &EventLog{
		Scheduler: "rt-opex",
		Cores:     4,
		Dropped:   2,
		Events: []Event{
			{Time: 0, Core: -1, BS: 0, Subframe: 0, Event: EvArrive},
			{Time: 550.25, Core: 1, BS: 0, Subframe: 0, Event: EvStart},
			{Time: 560.5, Core: 2, BS: 0, Subframe: 0, Event: EvMigPlan, Detail: "fft n=3"},
			{Time: 600, Core: 2, BS: 0, Subframe: 0, Event: EvMigPreempt},
			{Time: 700.125, Core: 2, BS: 0, Subframe: 0, Event: EvMigRecompute, Detail: "n=2 preempted"},
			{Time: 900, Core: 1, BS: 0, Subframe: 0, Event: EvFinish, Detail: "ack"},
		},
	}
}

func TestEventLogJSONRoundTrip(t *testing.T) {
	log := testLog()
	var buf bytes.Buffer
	if err := log.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEventLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", log, back)
	}
	// Determinism: serializing the same log twice is byte-identical.
	var buf2 bytes.Buffer
	if err := log.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSON export not deterministic")
	}
}

func TestEventLogCSV(t *testing.T) {
	log := testLog()
	var buf bytes.Buffer
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	// Header comment + column line + one row per event.
	if want := 2 + len(log.Events); len(lines) != want {
		t.Fatalf("%d lines, want %d:\n%s", len(lines), want, buf.String())
	}
	if !bytes.HasPrefix(lines[0], []byte("# rtopex-events")) {
		t.Fatalf("missing header: %s", lines[0])
	}
	if got, want := string(lines[4]), "560.5,2,0,0,mig-plan,fft n=3"; got != want {
		t.Fatalf("row %q, want %q", got, want)
	}
}
