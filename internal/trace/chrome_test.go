package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// chromeLog is a small hand-built trace exercising every export path: a
// full job with phases, a drop, a hosted batch that gets preempted, the
// owner-side resolution instants, and a job left open at the end of the
// trace (truncated run).
func chromeLog() *EventLog {
	return &EventLog{
		Scheduler: "rt-opex",
		Cores:     3,
		Events: []Event{
			{Time: 0, Core: -1, BS: 0, Subframe: 0, Event: EvArrive},
			{Time: 10, Core: 0, BS: 0, Subframe: 0, Event: EvStart},
			{Time: 10, Core: 0, BS: 0, Subframe: 0, Event: EvPhase, Detail: "fft"},
			{Time: 40, Core: 0, BS: 0, Subframe: 0, Event: EvPhase, Detail: "decode"},
			{Time: 55, Core: 2, BS: 0, Subframe: 0, Event: EvMigPlan, Detail: "decode n=3"},
			{Time: 80, Core: 2, BS: 0, Subframe: 0, Event: EvMigPreempt},
			{Time: 90, Core: 0, BS: 0, Subframe: 0, Event: EvMigRecompute, Detail: "n=2 t=12"},
			{Time: 120, Core: 0, BS: 0, Subframe: 0, Event: EvFinish, Detail: "ack"},
			{Time: 1000, Core: -1, BS: 1, Subframe: 1, Event: EvArrive},
			{Time: 1005, Core: 1, BS: 1, Subframe: 1, Event: EvStart},
			{Time: 1020, Core: 1, BS: 1, Subframe: 1, Event: EvDrop, Detail: "decode"},
			{Time: 2000, Core: 2, BS: 0, Subframe: 2, Event: EvStart},
			{Time: 2001, Core: 2, BS: 0, Subframe: 2, Event: EvPhase, Detail: "fft"},
		},
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := chromeLog().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file:\n%s", buf.String())
	}
}

func TestWriteChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := chromeLog().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	// Every B on a lane must be closed by a matching E: viewers reject
	// unbalanced stacks.
	depth := map[int]int{}
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "B":
			depth[e.TID]++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("unbalanced E on tid %d at %v", e.TID, e.TS)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %d left %d slices open", tid, d)
		}
	}
	// The truncated-run job (core 2, started at t=2000 with no finish) must
	// have been closed at the trace end.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "sf 0:2" && e.Phase == "E" {
			found = true
		}
	}
	if !found {
		t.Fatal("truncated job was not closed")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&EventLog{}).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty export invalid: %s", buf.String())
	}
}
