// Package trace generates and stores cellular load traces.
//
// Substitution note (see DESIGN.md): the paper logs RF energy of four live
// LTE downlink towers (Band 13/17) with USRPs and normalizes it to a per-
// millisecond load. Those captures are not available, so this package
// synthesizes per-subframe load processes with the two properties the
// schedulers actually consume: strong subframe-to-subframe variation
// (Fig. 1) and diverse per-basestation marginal distributions (Fig. 14).
// The generator is a bounded AR(1) process with a superimposed burst state;
// externally captured traces can be loaded from the CSV format instead.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"rtopex/internal/lte"
	"rtopex/internal/stats"
)

// Trace is a normalized load sequence, one value in [0,1] per 1 ms subframe.
type Trace []float64

// Profile parameterizes one basestation's load process.
type Profile struct {
	Name  string
	Base  float64 // long-run mean load outside bursts
	Rho   float64 // AR(1) memory in [0,1); low values give fast variation
	Sigma float64 // innovation standard deviation
	// Bursts model user arrivals that pin the cell near full buffer.
	BurstProb float64 // per-subframe probability of entering a burst
	BurstMean float64 // mean burst duration in subframes (geometric)
	BurstLoad float64 // load level during a burst
}

// DefaultProfiles are four basestations with distinct load distributions,
// shaped to span Fig. 14's CDF diversity: a lightly loaded cell, two
// mid-load cells with different burstiness, and a heavily loaded cell.
var DefaultProfiles = []Profile{
	{Name: "BS1", Base: 0.25, Rho: 0.35, Sigma: 0.12, BurstProb: 0.01, BurstMean: 12, BurstLoad: 0.85},
	{Name: "BS2", Base: 0.45, Rho: 0.40, Sigma: 0.15, BurstProb: 0.02, BurstMean: 20, BurstLoad: 0.95},
	{Name: "BS3", Base: 0.60, Rho: 0.30, Sigma: 0.18, BurstProb: 0.03, BurstMean: 15, BurstLoad: 1.0},
	{Name: "BS4", Base: 0.75, Rho: 0.45, Sigma: 0.15, BurstProb: 0.05, BurstMean: 25, BurstLoad: 1.0},
}

// Generator produces one basestation's load sequence.
type Generator struct {
	prof      Profile
	rng       *stats.RNG
	state     float64
	burstLeft int
}

// NewGenerator seeds a generator for profile p.
func NewGenerator(p Profile, seed uint64) *Generator {
	return &Generator{prof: p, rng: stats.NewRNG(seed), state: p.Base}
}

// Next returns the load of the next subframe.
func (g *Generator) Next() float64 {
	p := g.prof
	if g.burstLeft > 0 {
		g.burstLeft--
	} else if p.BurstProb > 0 && g.rng.Float64() < p.BurstProb {
		// Geometric duration with the configured mean.
		g.burstLeft = 1 + int(g.rng.ExpFloat64()*math.Max(p.BurstMean-1, 0))
	}
	g.state = p.Rho*g.state + (1-p.Rho)*p.Base + p.Sigma*g.rng.NormFloat64()
	load := g.state
	if g.burstLeft > 0 {
		// Bursts dominate the AR level but keep millisecond texture.
		load = p.BurstLoad + 0.1*p.Sigma*g.rng.NormFloat64()
	}
	return clamp01(load)
}

// Generate produces n subframes of load.
func (g *Generator) Generate(n int) Trace {
	tr := make(Trace, n)
	for i := range tr {
		tr[i] = g.Next()
	}
	return tr
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// MCS quantizes a normalized load to an MCS index 0..MaxMCS: this is the
// paper's emulation of traffic load through MCS variation (§4.2).
func MCS(load float64) int {
	m := int(math.Round(clamp01(load) * float64(lte.MaxMCS)))
	if m > lte.MaxMCS {
		m = lte.MaxMCS
	}
	return m
}

// MCSSeries converts a trace to its per-subframe MCS sequence.
func (t Trace) MCSSeries() []int {
	out := make([]int, len(t))
	for i, l := range t {
		out[i] = MCS(l)
	}
	return out
}

// Mean returns the average load.
func (t Trace) Mean() float64 {
	if len(t) == 0 {
		return 0
	}
	var s float64
	for _, v := range t {
		s += v
	}
	return s / float64(len(t))
}

// StepVariation returns the mean absolute load change between consecutive
// subframes — the Fig. 1 "variation" the schedulers must absorb.
func (t Trace) StepVariation() float64 {
	if len(t) < 2 {
		return 0
	}
	var s float64
	for i := 1; i < len(t); i++ {
		s += math.Abs(t[i] - t[i-1])
	}
	return s / float64(len(t)-1)
}

// header tags the CSV trace format.
const header = "# rtopex-trace v1"

// Write stores a set of named traces as CSV: a header line, a name row and
// one row per subframe. All traces must have equal length.
func Write(w io.Writer, names []string, traces []Trace) error {
	if len(names) != len(traces) || len(traces) == 0 {
		return fmt.Errorf("trace: %d names for %d traces", len(names), len(traces))
	}
	n := len(traces[0])
	for i, tr := range traces {
		if len(tr) != n {
			return fmt.Errorf("trace: trace %d has %d subframes, want %d", i, len(tr), n)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, header)
	fmt.Fprintln(bw, strings.Join(names, ","))
	for i := 0; i < n; i++ {
		for j := range traces {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%.6f", traces[j][i])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Read parses the CSV trace format.
func Read(r io.Reader) (names []string, traces []Trace, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != header {
		return nil, nil, fmt.Errorf("trace: missing %q header", header)
	}
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("trace: missing name row")
	}
	names = strings.Split(strings.TrimSpace(sc.Text()), ",")
	traces = make([]Trace, len(names))
	line := 2
	for sc.Scan() {
		line++
		fields := strings.Split(strings.TrimSpace(sc.Text()), ",")
		if len(fields) != len(names) {
			return nil, nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(fields), len(names))
		}
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: line %d field %d: %v", line, j, err)
			}
			if v < 0 || v > 1 {
				return nil, nil, fmt.Errorf("trace: line %d field %d: load %v outside [0,1]", line, j, v)
			}
			traces[j] = append(traces[j], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(traces[0]) == 0 {
		return nil, nil, fmt.Errorf("trace: no data rows")
	}
	return names, traces, nil
}
