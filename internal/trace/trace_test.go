package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rtopex/internal/lte"
	"rtopex/internal/stats"
)

func TestGeneratorBounds(t *testing.T) {
	for _, p := range DefaultProfiles {
		g := NewGenerator(p, 1)
		for i := 0; i < 50000; i++ {
			l := g.Next()
			if l < 0 || l > 1 {
				t.Fatalf("%s: load %v outside [0,1]", p.Name, l)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(DefaultProfiles[0], 7).Generate(1000)
	b := NewGenerator(DefaultProfiles[0], 7).Generate(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestProfilesHaveDistinctDistributions(t *testing.T) {
	// Fig. 14 shows clearly separated CDFs; the default profiles must keep
	// increasing mean loads with meaningful gaps.
	var means []float64
	for i, p := range DefaultProfiles {
		tr := NewGenerator(p, uint64(i)).Generate(30000)
		means = append(means, tr.Mean())
	}
	for i := 1; i < len(means); i++ {
		if means[i] <= means[i-1]+0.05 {
			t.Fatalf("profile %d mean %v not clearly above profile %d mean %v",
				i, means[i], i-1, means[i-1])
		}
	}
}

func TestMillisecondVariation(t *testing.T) {
	// Fig. 1: consecutive subframes differ substantially. Require mean
	// absolute step of at least a few percent of full scale.
	for i, p := range DefaultProfiles {
		tr := NewGenerator(p, uint64(10+i)).Generate(30000)
		if v := tr.StepVariation(); v < 0.03 {
			t.Fatalf("%s: step variation %v too smooth for Fig. 1", p.Name, v)
		}
	}
}

func TestBurstsReachHighLoad(t *testing.T) {
	tr := NewGenerator(DefaultProfiles[3], 20).Generate(30000)
	high := 0
	for _, l := range tr {
		if l > 0.9 {
			high++
		}
	}
	if high < 1000 {
		t.Fatalf("heavy profile reached >0.9 load only %d/30000 subframes", high)
	}
}

func TestMCSQuantization(t *testing.T) {
	if MCS(0) != 0 || MCS(1) != lte.MaxMCS {
		t.Fatal("MCS endpoints wrong")
	}
	if MCS(-0.5) != 0 || MCS(2) != lte.MaxMCS {
		t.Fatal("MCS clamp wrong")
	}
	if MCS(0.5) != 14 && MCS(0.5) != 13 {
		t.Fatalf("MCS(0.5) = %d", MCS(0.5))
	}
	// Monotone in load.
	prev := -1
	for l := 0.0; l <= 1.0; l += 0.01 {
		m := MCS(l)
		if m < prev {
			t.Fatal("MCS not monotone in load")
		}
		prev = m
	}
}

func TestMCSSeries(t *testing.T) {
	tr := Trace{0, 0.5, 1}
	s := tr.MCSSeries()
	if len(s) != 3 || s[0] != 0 || s[2] != 27 {
		t.Fatalf("series %v", s)
	}
}

func TestTraceStats(t *testing.T) {
	tr := Trace{0.2, 0.4, 0.6}
	if math.Abs(tr.Mean()-0.4) > 1e-12 {
		t.Fatalf("mean %v", tr.Mean())
	}
	if math.Abs(tr.StepVariation()-0.2) > 1e-12 {
		t.Fatalf("step variation %v", tr.StepVariation())
	}
	if (Trace{}).Mean() != 0 || (Trace{0.1}).StepVariation() != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	names := []string{"BS1", "BS2"}
	traces := []Trace{{0.1, 0.2, 0.3}, {0.9, 0.8, 0.7}}
	var buf bytes.Buffer
	if err := Write(&buf, names, traces); err != nil {
		t.Fatal(err)
	}
	gotNames, gotTraces, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != 2 || gotNames[0] != "BS1" || gotNames[1] != "BS2" {
		t.Fatalf("names %v", gotNames)
	}
	for j := range traces {
		for i := range traces[j] {
			if math.Abs(gotTraces[j][i]-traces[j][i]) > 1e-6 {
				t.Fatalf("trace %d[%d] = %v, want %v", j, i, gotTraces[j][i], traces[j][i])
			}
		}
	}
}

func TestWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []string{"a"}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := Write(&buf, []string{"a", "b"}, []Trace{{0.1}, {0.1, 0.2}}); err == nil {
		t.Error("ragged traces accepted")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong header\nBS1\n0.5\n",
		"# rtopex-trace v1\n",
		"# rtopex-trace v1\nBS1\n",
		"# rtopex-trace v1\nBS1,BS2\n0.5\n",
		"# rtopex-trace v1\nBS1\nnot-a-number\n",
		"# rtopex-trace v1\nBS1\n1.5\n",
	}
	for i, c := range cases {
		if _, _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGeneratedTraceSurvivesRoundTrip(t *testing.T) {
	var names []string
	var traces []Trace
	for i, p := range DefaultProfiles {
		names = append(names, p.Name)
		traces = append(traces, NewGenerator(p, uint64(30+i)).Generate(5000))
	}
	var buf bytes.Buffer
	if err := Write(&buf, names, traces); err != nil {
		t.Fatal(err)
	}
	_, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for j := range traces {
		if len(got[j]) != len(traces[j]) {
			t.Fatal("length changed in round trip")
		}
		if math.Abs(got[j].Mean()-traces[j].Mean()) > 1e-4 {
			t.Fatal("mean drifted in round trip")
		}
	}
}

func TestLoadCDFShape(t *testing.T) {
	// The lightest profile should concentrate mass at low load; the
	// heaviest at high load (Fig. 14's qualitative shape).
	light := NewGenerator(DefaultProfiles[0], 40).Generate(30000)
	heavy := NewGenerator(DefaultProfiles[3], 41).Generate(30000)
	lc := stats.NewCDF([]float64(light))
	hc := stats.NewCDF([]float64(heavy))
	if lc.At(0.5) < 0.7 {
		t.Fatalf("light profile below 0.5 load only %v of the time", lc.At(0.5))
	}
	if hc.At(0.5) > 0.45 {
		t.Fatalf("heavy profile below 0.5 load %v of the time", hc.At(0.5))
	}
}
