package trace

// Chrome trace_event export: renders an EventLog in the JSON format the
// chrome://tracing and Perfetto UIs load, so a run's per-core schedule can
// be inspected interactively instead of through the ASCII timeline. Each
// core becomes one thread lane carrying B/E duration slices for jobs, their
// pipeline phases nested inside, and hosted migration batches; arrivals and
// the owner-side batch resolutions render as instant events. Times are
// already microseconds, the trace_event native unit.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one trace_event record. Field order fixes the JSON key
// order, so the export is deterministic.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTID maps a core to its thread lane. Core −1 (no core chosen yet:
// arrivals) gets the dedicated transport lane 0; core c is lane c+1.
func chromeTID(core int) int {
	if core < 0 {
		return 0
	}
	return core + 1
}

// WriteChromeTrace serializes the log for chrome://tracing / Perfetto
// ("Trace Event Format", JSON object form). The output is deterministic:
// identical logs produce byte-identical documents.
func (l *EventLog) WriteChromeTrace(w io.Writer) error {
	evs := make([]Event, len(l.Events))
	copy(evs, l.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })

	var out []chromeEvent
	emit := func(e chromeEvent) { out = append(out, e) }
	instant := func(ev Event, name string, args map[string]string) {
		emit(chromeEvent{Name: name, Phase: "i", TS: ev.Time,
			PID: 1, TID: chromeTID(ev.Core), Scope: "t", Args: args})
	}
	jobName := func(ev Event) string { return fmt.Sprintf("sf %d:%d", ev.BS, ev.Subframe) }

	// Replay state per core: the open job slice and its open phase slice.
	type open struct {
		job   string
		phase bool
	}
	jobs := map[int]*open{}
	batches := map[int]string{} // host core → open batch slice name
	maxCore := -1
	closePhase := func(core int, t float64) {
		if o := jobs[core]; o != nil && o.phase {
			emit(chromeEvent{Name: "phase", Phase: "E", TS: t, PID: 1, TID: chromeTID(core)})
			o.phase = false
		}
	}
	closeJob := func(core int, t float64, outcome string) {
		o := jobs[core]
		if o == nil {
			return
		}
		closePhase(core, t)
		var args map[string]string
		if outcome != "" {
			args = map[string]string{"outcome": outcome}
		}
		emit(chromeEvent{Name: o.job, Phase: "E", TS: t, PID: 1, TID: chromeTID(core), Args: args})
		delete(jobs, core)
	}
	for _, ev := range evs {
		if ev.Core > maxCore {
			maxCore = ev.Core
		}
		switch ev.Event {
		case EvArrive:
			instant(ev, "arrive "+jobName(ev), nil)
		case EvStart:
			// A start on a core with a still-open job means the trace lost
			// that job's terminal event (ring overflow); close it first so
			// the B/E nesting stays balanced.
			closeJob(ev.Core, ev.Time, "")
			jobs[ev.Core] = &open{job: jobName(ev)}
			emit(chromeEvent{Name: jobName(ev), Phase: "B", TS: ev.Time, PID: 1, TID: chromeTID(ev.Core)})
		case EvPhase:
			if o := jobs[ev.Core]; o != nil {
				closePhase(ev.Core, ev.Time)
				emit(chromeEvent{Name: ev.Detail, Phase: "B", TS: ev.Time, PID: 1, TID: chromeTID(ev.Core)})
				o.phase = true
			}
		case EvDrop:
			if jobs[ev.Core] != nil {
				closeJob(ev.Core, ev.Time, "drop")
			}
			instant(ev, "drop "+jobName(ev), map[string]string{"at": ev.Detail})
		case EvFinish:
			closeJob(ev.Core, ev.Time, ev.Detail)
		case EvMigPlan:
			name := "batch " + jobName(ev)
			batches[ev.Core] = name
			emit(chromeEvent{Name: name, Phase: "B", TS: ev.Time, PID: 1, TID: chromeTID(ev.Core),
				Args: map[string]string{"what": ev.Detail}})
		case EvMigComplete, EvMigPreempt, EvMigAbandon:
			if name, ok := batches[ev.Core]; ok {
				emit(chromeEvent{Name: name, Phase: "E", TS: ev.Time, PID: 1, TID: chromeTID(ev.Core),
					Args: map[string]string{"end": ev.Event.String()}})
				delete(batches, ev.Core)
			} else {
				instant(ev, ev.Event.String()+" "+jobName(ev), nil)
			}
		case EvMigConsume, EvMigWait, EvMigRecompute:
			var args map[string]string
			if ev.Detail != "" {
				args = map[string]string{"detail": ev.Detail}
			}
			instant(ev, ev.Event.String()+" "+jobName(ev), args)
		}
	}
	// Slices still open at the end of the trace never got their terminal
	// event (truncated run): close them at the last timestamp so viewers
	// don't discard them.
	last := 0.0
	if len(evs) > 0 {
		last = evs[len(evs)-1].Time
	}
	for core := 0; core <= maxCore; core++ {
		closeJob(core, last, "")
		if name, ok := batches[core]; ok {
			emit(chromeEvent{Name: name, Phase: "E", TS: last, PID: 1, TID: chromeTID(core)})
		}
	}

	// Metadata names the process and lanes. Chrome sorts lanes by tid, so
	// the transport lane leads and cores follow in order.
	nCores := l.Cores
	if maxCore+1 > nCores {
		nCores = maxCore + 1
	}
	proc := "rtopex"
	if l.Scheduler != "" {
		proc = "rtopex " + l.Scheduler
	}
	meta := []chromeEvent{{Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]string{"name": proc}}}
	meta = append(meta, chromeEvent{Name: "thread_name", Phase: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": "transport"}})
	for c := 0; c < nCores; c++ {
		meta = append(meta, chromeEvent{Name: "thread_name", Phase: "M", PID: 1, TID: chromeTID(c),
			Args: map[string]string{"name": fmt.Sprintf("core %d", c)}})
	}
	all := append(meta, out...)

	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, `{"displayTimeUnit":"ms","traceEvents":[`)
	for i, e := range all {
		if i > 0 {
			bw.WriteString(",\n")
		}
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("trace: chrome export: %v", err)
		}
		bw.Write(b)
	}
	fmt.Fprintln(bw, "]}")
	return bw.Flush()
}
