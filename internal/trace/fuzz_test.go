package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the trace parser against malformed inputs: it must
// either return an error or a well-formed result, never panic, and any
// successfully parsed trace must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("# rtopex-trace v1\nBS1,BS2\n0.5,0.25\n0.75,1.0\n")
	f.Add("# rtopex-trace v1\nBS1\n0.0\n")
	f.Add("")
	f.Add("# rtopex-trace v1\n\n\n")
	f.Add("# rtopex-trace v1\nBS1\nnope\n")
	f.Add("# rtopex-trace v1\nBS1,BS2\n0.5\n")
	f.Fuzz(func(t *testing.T, input string) {
		names, traces, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(names) != len(traces) || len(traces) == 0 {
			t.Fatalf("accepted malformed result: %d names, %d traces", len(names), len(traces))
		}
		for _, tr := range traces {
			for _, v := range tr {
				if v < 0 || v > 1 {
					t.Fatalf("accepted out-of-range load %v", v)
				}
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, names, traces); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		if _, _, err := Read(&buf); err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
	})
}
