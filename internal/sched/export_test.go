package sched

import (
	"bytes"
	"reflect"
	"testing"
)

// exportCases are table-driven round-trip inputs: empty, hand-built, and a
// real simulation run's metrics.
func exportCases(t *testing.T) map[string]*Metrics {
	t.Helper()
	hand := NewMetrics("hand", 2)
	hand.PerBS[0] = BSMetrics{Jobs: 10, ACK: 7, Dropped: 1, Late: 1, DecodeFail: 1}
	hand.PerBS[1] = BSMetrics{Jobs: 3, ACK: 3}
	hand.Gaps = []float64{0, 12.5, 433.0625, 1.0 / 3.0}
	hand.Overruns = []float64{48.25, 1.0 / 7.0, 2000}
	hand.ProcTimes = []float64{812.0312500001, 900}
	hand.FFTSubtasksTotal, hand.FFTSubtasksMigrated = 1200, 480
	hand.DecodeSubtasksTotal, hand.DecodeSubtasksMigrated = 800, 410
	hand.FFTBatches, hand.DecodeBatches, hand.MigrationBatches = 100, 120, 220
	hand.Preemptions, hand.Recoveries = 17, 13
	hand.TxJobs, hand.TxMisses = 40, 2

	run, err := Run(testWorkload(t, 200, 550, 3), NewRTOPEX(2), 8)
	if err != nil {
		t.Fatal(err)
	}

	return map[string]*Metrics{
		"empty": NewMetrics("empty", 1),
		"hand":  hand,
		"run":   run,
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	for name, m := range exportCases(t) {
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadMetricsJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("%s: JSON round trip mismatch:\n%+v\n%+v", name, m, back)
		}
		var buf2 bytes.Buffer
		if err := m.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: JSON export not deterministic", name)
		}
	}
}

func TestMetricsCSVRoundTrip(t *testing.T) {
	for name, m := range exportCases(t) {
		var buf bytes.Buffer
		if err := m.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadMetricsCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// CSV re-serialization must reproduce the bytes exactly; the parsed
		// struct matches up to nil-vs-empty slices.
		var buf2 bytes.Buffer
		if err := back.WriteCSV(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: CSV round trip not byte-identical:\n%s\nvs\n%s", name, buf.String(), buf2.String())
		}
	}
}

func TestMetricsCSVRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"",
		"gap,12\n",
		"# rtopex-metrics v2\nwhat,1\n",
		"# rtopex-metrics v2\ncounter,NoSuchCounter,3\n",
		"# rtopex-metrics v2\nbs,1,1,1,0,0,0\n", // index 1 without index 0
		"# rtopex-metrics v2\ngap,notanumber\n",
		"# rtopex-metrics v2\noverrun,notanumber\n",
		"# rtopex-metrics v1\noverrun,3\n", // overrun rows postdate v1
		"# rtopex-metrics v3\nscheduler,x\n",
	} {
		if _, err := ReadMetricsCSV(bytes.NewReader([]byte(doc))); err == nil {
			t.Fatalf("accepted %q", doc)
		}
	}
}

// TestMetricsCSVReadsV1 pins backward compatibility: documents written by
// the v1 exporter (no overrun rows) still parse.
func TestMetricsCSVReadsV1(t *testing.T) {
	doc := "# rtopex-metrics v1\n" +
		"scheduler,partitioned\n" +
		"bs,0,10,8,1,1,0\n" +
		"counter,RecordProcMCS,-1\n" +
		"gap,125.5\n" +
		"proctime,812\n"
	m, err := ReadMetricsCSV(bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduler != "partitioned" || len(m.Gaps) != 1 || m.Gaps[0] != 125.5 ||
		len(m.ProcTimes) != 1 || len(m.Overruns) != 0 {
		t.Fatalf("v1 parse: %+v", m)
	}
	// Re-exporting upgrades the document to the current version.
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("# rtopex-metrics v2\n")) {
		t.Fatalf("re-export kept old header:\n%s", buf.String())
	}
}

// TestOverrunsRecorded pins that every gap-recording scheduler books
// exactly one positive Overrun per late completion, without polluting Gaps.
func TestOverrunsRecorded(t *testing.T) {
	// High fixed transport delay produces lates for the partitioned-family
	// schedulers; the jittery transport exercises RT-OPEX's recovery paths.
	fixed := testWorkload(t, 2000, 700, 2)
	jittery := jitteryWorkload(t, 2000, 1)
	totalLate := 0
	for _, tc := range []struct {
		name string
		w    *Workload
		s    Scheduler
	}{
		{"partitioned", fixed, NewPartitioned(2)},
		{"global", fixed, NewGlobal()},
		{"rt-opex", jittery, NewRTOPEX(2)},
		{"semi-partitioned", fixed, NewSemiPartitioned(2)},
	} {
		m, err := Run(tc.w, tc.s, 8)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		late := m.totalLate()
		totalLate += late
		if len(m.Overruns) != late {
			t.Fatalf("%s: %d overruns for %d late completions", tc.name, len(m.Overruns), late)
		}
		for _, v := range m.Overruns {
			// The global scheduler terminates lates exactly at the deadline,
			// so zero overshoot is legitimate there; negative never is.
			if v < 0 || (v == 0 && tc.name != "global") {
				t.Fatalf("%s: bad overrun %v", tc.name, v)
			}
		}
		for _, g := range m.Gaps {
			if g < 0 {
				t.Fatalf("%s: negative gap %v leaked into Gaps", tc.name, g)
			}
		}
	}
	if totalLate == 0 {
		t.Fatal("no scheduler produced a late completion; overrun path untested")
	}
}
