package sched

import (
	"bytes"
	"reflect"
	"testing"
)

// exportCases are table-driven round-trip inputs: empty, hand-built, and a
// real simulation run's metrics.
func exportCases(t *testing.T) map[string]*Metrics {
	t.Helper()
	hand := NewMetrics("hand", 2)
	hand.PerBS[0] = BSMetrics{Jobs: 10, ACK: 7, Dropped: 1, Late: 1, DecodeFail: 1}
	hand.PerBS[1] = BSMetrics{Jobs: 3, ACK: 3}
	hand.Gaps = []float64{0, 12.5, 433.0625, 1.0 / 3.0}
	hand.ProcTimes = []float64{812.0312500001, 900}
	hand.FFTSubtasksTotal, hand.FFTSubtasksMigrated = 1200, 480
	hand.DecodeSubtasksTotal, hand.DecodeSubtasksMigrated = 800, 410
	hand.FFTBatches, hand.DecodeBatches, hand.MigrationBatches = 100, 120, 220
	hand.Preemptions, hand.Recoveries = 17, 13
	hand.TxJobs, hand.TxMisses = 40, 2

	run, err := Run(testWorkload(t, 200, 550, 3), NewRTOPEX(2), 8)
	if err != nil {
		t.Fatal(err)
	}

	return map[string]*Metrics{
		"empty": NewMetrics("empty", 1),
		"hand":  hand,
		"run":   run,
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	for name, m := range exportCases(t) {
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadMetricsJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("%s: JSON round trip mismatch:\n%+v\n%+v", name, m, back)
		}
		var buf2 bytes.Buffer
		if err := m.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: JSON export not deterministic", name)
		}
	}
}

func TestMetricsCSVRoundTrip(t *testing.T) {
	for name, m := range exportCases(t) {
		var buf bytes.Buffer
		if err := m.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadMetricsCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// CSV re-serialization must reproduce the bytes exactly; the parsed
		// struct matches up to nil-vs-empty slices.
		var buf2 bytes.Buffer
		if err := back.WriteCSV(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: CSV round trip not byte-identical:\n%s\nvs\n%s", name, buf.String(), buf2.String())
		}
	}
}

func TestMetricsCSVRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"",
		"gap,12\n",
		"# rtopex-metrics v1\nwhat,1\n",
		"# rtopex-metrics v1\ncounter,NoSuchCounter,3\n",
		"# rtopex-metrics v1\nbs,1,1,1,0,0,0\n", // index 1 without index 0
		"# rtopex-metrics v1\ngap,notanumber\n",
	} {
		if _, err := ReadMetricsCSV(bytes.NewReader([]byte(doc))); err == nil {
			t.Fatalf("accepted %q", doc)
		}
	}
}
