// Package sched implements the C-RAN subframe schedulers the paper
// evaluates — partitioned (§3.1.1), global EDF (§3.1.2) and RT-OPEX (§3.2)
// — on top of the discrete-event platform engine. Task durations come from
// the calibrated processing-time model (Eq. 1); arrivals come from cellular
// load traces and a transport-latency model, so a simulation run reproduces
// the end-to-end deadline arithmetic of Eq. (2):
//
//	Trxproc + RTT/2 ≤ 2 ms
//
// A Job is one subframe decoding task; a scheduler decides which core runs
// it (and, for RT-OPEX, which idle cores execute migrated subtasks). All
// times are absolute simulation microseconds.
package sched

import (
	"fmt"

	"rtopex/internal/flight"
	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/obs"
	"rtopex/internal/platform"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
	"rtopex/internal/transport"
)

// RxBudgetUS is the receive-processing budget of §2.4: of the 3 ms HARQ
// loop, 1 ms is reserved for Tx processing, so Trxproc + RTT/2 ≤ 2 ms.
const RxBudgetUS = 2000

// Job is one subframe decoding task as seen by the compute node.
type Job struct {
	BS    int // basestation id
	Index int // subframe index j

	// Tx marks a downlink (transmit-processing) job: per the paper's
	// Fig. 8 timeline it is released 1 ms before its over-the-air
	// transmission, is serial (no parallelizable subtasks), and competes
	// for the same cores as the uplink decoding jobs.
	Tx bool

	MCS       int
	L         int  // turbo iterations the decode will take (≤ Lm)
	Decodable bool // whether the CRC would pass after L iterations

	Gen      float64 // over-the-air reception time at the radio (µs)
	Arrival  float64 // arrival at the compute node: Gen + RTT/2
	Deadline float64 // Gen + RxBudgetUS

	Tasks model.TaskTimes // serial task durations from the model

	FFTSubtasks     int     // N × 14
	FFTSubtaskUS    float64 // FFT task time / FFTSubtasks
	DecodeSubtasks  int     // turbo code blocks C
	DecodeSubtaskUS float64 // decode task time / C

	JitterUS float64 // platform error E for this subframe
}

// Tmax returns the processing budget this job has on arrival (Eq. 3).
func (j *Job) Tmax() float64 { return j.Deadline - j.Arrival }

// WorkloadConfig describes one experiment's workload.
type WorkloadConfig struct {
	Basestations int
	Subframes    int // per basestation
	Antennas     int
	Bandwidth    lte.Bandwidth
	SNRdB        float64
	Lm           int // turbo iteration cap (paper: 4)

	Params  model.Params
	Jitter  model.Jitter
	IterLaw model.IterationLaw

	// Profiles drive per-BS MCS variation; FixedMCS >= 0 overrides them
	// with a constant MCS (the Fig. 17 load sweep).
	Profiles []trace.Profile
	FixedMCS int

	// PerBSAntennas optionally overrides Antennas per basestation — the
	// heterogeneous-deployment scenario of §5.D (e.g. a cellular-IoT cell
	// next to a macro cell). Entries of 0 fall back to Antennas.
	PerBSAntennas []int

	// IncludeDownlink adds the Tx-processing jobs of the Fig. 8 timeline:
	// each downlink subframe must be encoded in the 1 ms before its
	// transmission, on the same partitioned cores. TxScale sets the
	// downlink encoding cost as a fraction of the single-iteration uplink
	// model prediction (default 0.4 — the paper notes downlink processing
	// is significantly cheaper and less variable than uplink).
	IncludeDownlink bool
	TxScale         float64

	Transport transport.Sampler
	// ExpectedRTT2US is the transport latency the schedulers assume when
	// predicting core idle windows (RT-OPEX's fck). With a FixedPath it
	// equals the fixed delay.
	ExpectedRTT2US float64

	Seed uint64
}

func (c WorkloadConfig) validate() error {
	if c.Basestations < 1 || c.Subframes < 1 {
		return fmt.Errorf("sched: need ≥1 basestation and subframe, got %d×%d", c.Basestations, c.Subframes)
	}
	if c.Antennas < 1 {
		return fmt.Errorf("sched: need ≥1 antenna")
	}
	if c.Lm < 1 {
		return fmt.Errorf("sched: Lm must be ≥1")
	}
	if c.Transport == nil {
		return fmt.Errorf("sched: no transport sampler")
	}
	if c.FixedMCS < 0 && len(c.Profiles) < c.Basestations {
		return fmt.Errorf("sched: %d profiles for %d basestations", len(c.Profiles), c.Basestations)
	}
	if c.FixedMCS > lte.MaxMCS {
		return fmt.Errorf("sched: fixed MCS %d out of range", c.FixedMCS)
	}
	if len(c.PerBSAntennas) > 0 && len(c.PerBSAntennas) < c.Basestations {
		return fmt.Errorf("sched: %d per-BS antenna entries for %d basestations",
			len(c.PerBSAntennas), c.Basestations)
	}
	for _, n := range c.PerBSAntennas {
		if n < 0 {
			return fmt.Errorf("sched: negative antenna count")
		}
	}
	return nil
}

// antennasFor resolves the antenna count of one basestation.
func (c WorkloadConfig) antennasFor(bs int) int {
	if bs < len(c.PerBSAntennas) && c.PerBSAntennas[bs] > 0 {
		return c.PerBSAntennas[bs]
	}
	return c.Antennas
}

// Workload is the fully materialized job set of one run: identical inputs
// are handed to every scheduler under comparison, so differences in
// outcomes are attributable to scheduling alone.
type Workload struct {
	Cfg  WorkloadConfig
	Jobs [][]Job // [bs][subframe]
}

// BuildWorkload samples traces, iteration counts, jitter and transport
// latencies for every subframe of every basestation.
func BuildWorkload(cfg WorkloadConfig) (*Workload, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := stats.NewRNG(cfg.Seed)
	w := &Workload{Cfg: cfg, Jobs: make([][]Job, cfg.Basestations)}
	for bs := 0; bs < cfg.Basestations; bs++ {
		bsRNG := root.Split()
		ants := cfg.antennasFor(bs)
		var loads trace.Trace
		if cfg.FixedMCS < 0 {
			loads = trace.NewGenerator(cfg.Profiles[bs], bsRNG.Uint64()).Generate(cfg.Subframes)
		}
		jobs := make([]Job, cfg.Subframes)
		for j := 0; j < cfg.Subframes; j++ {
			mcs := cfg.FixedMCS
			if mcs < 0 {
				mcs = trace.MCS(loads[j])
			}
			info, err := lte.MCSTable(mcs)
			if err != nil {
				return nil, err
			}
			d, err := lte.SubcarrierLoad(mcs, cfg.Bandwidth)
			if err != nil {
				return nil, err
			}
			tbs, _, err := lte.TransportBlockSize(mcs, cfg.Bandwidth.PRB)
			if err != nil {
				return nil, err
			}
			c := codeBlocks(tbs)
			l := cfg.IterLaw.Sample(bsRNG, mcs, cfg.SNRdB, cfg.Lm)
			tasks := cfg.Params.Tasks(ants, info.Scheme.Order(), d, l)
			gen := float64(j) * lte.SubframeDurationUS
			rtt2 := cfg.Transport.Sample(bsRNG)
			jobs[j] = Job{
				BS:              bs,
				Index:           j,
				MCS:             mcs,
				L:               l,
				Decodable:       cfg.IterLaw.Decodable(bsRNG, mcs, cfg.SNRdB, cfg.Lm, l),
				Gen:             gen,
				Arrival:         gen + rtt2,
				Deadline:        gen + RxBudgetUS,
				Tasks:           tasks,
				FFTSubtasks:     model.FFTSubtaskCount(ants),
				FFTSubtaskUS:    tasks.FFT / float64(model.FFTSubtaskCount(ants)),
				DecodeSubtasks:  c,
				DecodeSubtaskUS: tasks.Decode / float64(c),
				JitterUS:        cfg.Jitter.Sample(bsRNG),
			}
		}
		if cfg.IncludeDownlink {
			jobs = append(jobs, buildTxJobs(cfg, bs, ants, bsRNG)...)
		}
		w.Jobs[bs] = jobs
	}
	return w, nil
}

// buildTxJobs creates the downlink encoding jobs of one basestation:
// subframe j's encoding runs in [ (j-1)·1 ms, j·1 ms ] and must finish by
// the transmission instant. Downlink load follows its own trace.
func buildTxJobs(cfg WorkloadConfig, bs, ants int, rng *stats.RNG) []Job {
	scale := cfg.TxScale
	if scale <= 0 {
		scale = 0.4
	}
	var loads trace.Trace
	if cfg.FixedMCS < 0 {
		loads = trace.NewGenerator(cfg.Profiles[bs], rng.Uint64()).Generate(cfg.Subframes)
	}
	var jobs []Job
	for j := 1; j < cfg.Subframes; j++ {
		mcs := cfg.FixedMCS
		if mcs < 0 {
			mcs = trace.MCS(loads[j])
		}
		info, err := lte.MCSTable(mcs)
		if err != nil {
			continue
		}
		d, err := lte.SubcarrierLoad(mcs, cfg.Bandwidth)
		if err != nil {
			continue
		}
		txTime := scale * cfg.Params.Predict(ants, info.Scheme.Order(), d, 1)
		txAt := float64(j) * lte.SubframeDurationUS
		jobs = append(jobs, Job{
			BS: bs, Index: j, Tx: true,
			MCS: mcs, L: 1, Decodable: true,
			Gen:     txAt - lte.SubframeDurationUS,
			Arrival: txAt - lte.SubframeDurationUS,
			// The deadline is the transmission instant itself.
			Deadline: txAt,
			Tasks:    model.TaskTimes{Demod: txTime},
			// Serial: a single unit per task, so no migration applies.
			FFTSubtasks: 1, FFTSubtaskUS: 0,
			DecodeSubtasks: 1, DecodeSubtaskUS: 0,
			JitterUS: cfg.Jitter.Sample(rng),
		})
	}
	return jobs
}

// codeBlocks mirrors TS 36.212 segmentation arithmetic without building the
// full segmentation (B = TBS + 24 CRC bits; 6120 payload bits per block).
func codeBlocks(tbs int) int {
	b := tbs + 24
	if b <= 6144 {
		return 1
	}
	return (b + 6119) / 6120
}

// Env is what a scheduler gets to work with.
type Env struct {
	Eng   *platform.Engine
	M     *Metrics
	Cores int
	RNG   *stats.RNG
	// ExpectedRTT2 lets schedulers predict future arrivals (gen times are
	// deterministic; transport is estimated by its expectation).
	ExpectedRTT2 float64
	// SubframesPerBS bounds arrival prediction.
	SubframesPerBS int
	// Trace, when non-nil, receives one event per scheduler decision.
	// Emit sites guard on the nil check so a disabled run builds no events.
	Trace trace.Tracer
}

// emit records one trace event at the current engine time.
func (e *Env) emit(core int, j *Job, kind trace.Kind, detail string) {
	e.emitAt(e.Eng.Now(), core, j, kind, detail)
}

// emitAt records one trace event at an explicit time (used for events whose
// effective time is computed rather than the current clock).
func (e *Env) emitAt(t float64, core int, j *Job, kind trace.Kind, detail string) {
	if e.Trace == nil {
		return
	}
	e.Trace.Emit(trace.Event{Time: t, Core: core, BS: j.BS, Subframe: j.Index, Event: kind, Detail: detail})
}

// Scheduler is a C-RAN subframe scheduler under simulation.
type Scheduler interface {
	Name() string
	// Attach binds the scheduler to a simulation environment. It is called
	// exactly once, before any arrival.
	Attach(env *Env)
	// OnArrival delivers a subframe to the compute node.
	OnArrival(j *Job)
	// Finalize flushes trailing metrics after the last event.
	Finalize()
}

// Run simulates one workload under one scheduler on the given core count
// and returns the collected metrics.
func Run(w *Workload, s Scheduler, cores int) (*Metrics, error) {
	return RunConfigured(w, s, RunConfig{Cores: cores})
}

// RunWithMetricsSetup is Run with a hook that configures the metrics
// collector (e.g. RecordProcMCS) before any event fires.
func RunWithMetricsSetup(w *Workload, s Scheduler, cores int, setup func(*Metrics)) (*Metrics, error) {
	return RunConfigured(w, s, RunConfig{Cores: cores, Setup: setup})
}

// RunTraced is Run with an event tracer attached: every scheduler decision
// (arrivals, starts, phases, drops, finishes, migration-batch lifecycle) is
// emitted into tr.
func RunTraced(w *Workload, s Scheduler, cores int, tr trace.Tracer) (*Metrics, error) {
	return RunConfigured(w, s, RunConfig{Cores: cores, Tracer: tr})
}

// RunConfig bundles the optional knobs of a simulation run.
type RunConfig struct {
	Cores int
	// Setup configures the metrics collector before any event fires.
	Setup func(*Metrics)
	// Tracer, when non-nil, receives scheduler decision events.
	Tracer trace.Tracer
	// EngineHook, when non-nil, observes the discrete-event engine itself
	// (event scheduling and execution).
	EngineHook platform.Hook
	// Flight, when non-nil, arms the deadline-miss flight recorder for this
	// run (overriding any process-wide ArmFlight recorder): a tap is teed
	// into the event stream and misses/drops freeze dossiers.
	Flight *flight.Recorder
	// FlightReports, when non-nil, supplies per-core utilization for
	// dossiers from an accountant the caller already runs on this stream
	// (harness.TracedRunObserved), so the tap does not keep a second one.
	FlightReports func(endUS float64) []obs.CoreReport
}

// RunConfigured is the fully general run entry point.
func RunConfigured(w *Workload, s Scheduler, rc RunConfig) (*Metrics, error) {
	if rc.Cores < 1 {
		return nil, fmt.Errorf("sched: need at least one core")
	}
	eng := platform.New()
	eng.SetHook(rc.EngineHook)
	m := NewMetrics(s.Name(), w.Cfg.Basestations)
	if rc.Setup != nil {
		rc.Setup(m)
	}
	env := &Env{
		Eng:            eng,
		M:              m,
		Cores:          rc.Cores,
		RNG:            stats.NewRNG(w.Cfg.Seed ^ 0x5eed5eed5eed5eed),
		ExpectedRTT2:   w.Cfg.ExpectedRTT2US,
		SubframesPerBS: w.Cfg.Subframes,
		Trace:          rc.Tracer,
	}
	rec := rc.Flight
	if rec == nil {
		rec = ArmedFlight()
	}
	var tap *flight.Tap
	if rec != nil {
		// Arming the recorder turns event emission on even for otherwise
		// untraced runs: the tap needs the stream to ring. rc.Tracer first in
		// the tee, so a caller-shared accountant sees each event before the
		// tap snapshots its reports.
		tap = flightTap(rec, w, s, rc, env)
		env.Trace = trace.Tee(rc.Tracer, tap)
	}
	s.Attach(env)
	for bs := range w.Jobs {
		for j := range w.Jobs[bs] {
			job := &w.Jobs[bs][j]
			if env.Trace == nil {
				// Keep the untraced arrival closure minimal: this loop body
				// allocates once per job and dominates run setup.
				eng.At(job.Arrival, func() { s.OnArrival(job) })
				continue
			}
			eng.At(job.Arrival, func() {
				detail := ""
				if job.Tx {
					detail = "tx"
				}
				env.emit(-1, job, trace.EvArrive, detail)
				s.OnArrival(job)
			})
		}
	}
	eng.Run()
	s.Finalize()
	if tap != nil {
		tap.Close()
	}
	return m, nil
}
