package sched

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file serializes Metrics for offline analysis: JSON for tooling and
// a flat, line-oriented CSV for spreadsheets and plotting scripts. Both
// formats round-trip (ReadMetricsJSON / ReadMetricsCSV), and both are
// deterministic: identical metrics produce byte-identical output.

// WriteJSON serializes the metrics as one JSON document.
func (m *Metrics) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(m)
}

// ReadMetricsJSON parses a document written by WriteJSON.
func ReadMetricsJSON(r io.Reader) (*Metrics, error) {
	var m Metrics
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("sched: bad metrics JSON: %v", err)
	}
	return &m, nil
}

// metricsCSVHeader tags the CSV metrics format.
const metricsCSVHeader = "# rtopex-metrics v1"

// counterOrder fixes the export order of the scalar counters.
var counterOrder = []string{
	"RecordProcMCS",
	"FFTSubtasksTotal", "FFTSubtasksMigrated",
	"DecodeSubtasksTotal", "DecodeSubtasksMigrated",
	"FFTBatches", "DecodeBatches", "MigrationBatches",
	"Preemptions", "Recoveries",
	"TxJobs", "TxMisses",
}

func (m *Metrics) counters() map[string]*int {
	return map[string]*int{
		"RecordProcMCS":          &m.RecordProcMCS,
		"FFTSubtasksTotal":       &m.FFTSubtasksTotal,
		"FFTSubtasksMigrated":    &m.FFTSubtasksMigrated,
		"DecodeSubtasksTotal":    &m.DecodeSubtasksTotal,
		"DecodeSubtasksMigrated": &m.DecodeSubtasksMigrated,
		"FFTBatches":             &m.FFTBatches,
		"DecodeBatches":          &m.DecodeBatches,
		"MigrationBatches":       &m.MigrationBatches,
		"Preemptions":            &m.Preemptions,
		"Recoveries":             &m.Recoveries,
		"TxJobs":                 &m.TxJobs,
		"TxMisses":               &m.TxMisses,
	}
}

// WriteCSV serializes the metrics as a flat CSV of tagged rows:
//
//	scheduler,<name>
//	bs,<idx>,<jobs>,<ack>,<dropped>,<late>,<decodefail>
//	counter,<name>,<value>
//	gap,<µs>         (one row per recorded gap)
//	proctime,<µs>    (one row per recorded processing time)
//
// Floats use Go's shortest round-trippable formatting.
func (m *Metrics) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, metricsCSVHeader)
	fmt.Fprintf(bw, "scheduler,%s\n", m.Scheduler)
	for i, b := range m.PerBS {
		fmt.Fprintf(bw, "bs,%d,%d,%d,%d,%d,%d\n", i, b.Jobs, b.ACK, b.Dropped, b.Late, b.DecodeFail)
	}
	counters := m.counters()
	for _, name := range counterOrder {
		fmt.Fprintf(bw, "counter,%s,%d\n", name, *counters[name])
	}
	for _, g := range m.Gaps {
		fmt.Fprintf(bw, "gap,%s\n", strconv.FormatFloat(g, 'g', -1, 64))
	}
	for _, p := range m.ProcTimes {
		fmt.Fprintf(bw, "proctime,%s\n", strconv.FormatFloat(p, 'g', -1, 64))
	}
	return bw.Flush()
}

// ReadMetricsCSV parses a document written by WriteCSV.
func ReadMetricsCSV(r io.Reader) (*Metrics, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != metricsCSVHeader {
		return nil, fmt.Errorf("sched: missing %q header", metricsCSVHeader)
	}
	m := &Metrics{}
	counters := m.counters()
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(strings.TrimSpace(sc.Text()), ",")
		bad := func() error { return fmt.Errorf("sched: metrics CSV line %d malformed", line) }
		switch fields[0] {
		case "scheduler":
			if len(fields) != 2 {
				return nil, bad()
			}
			m.Scheduler = fields[1]
		case "bs":
			if len(fields) != 7 {
				return nil, bad()
			}
			vals := make([]int, 6)
			for i := range vals {
				v, err := strconv.Atoi(fields[i+1])
				if err != nil {
					return nil, bad()
				}
				vals[i] = v
			}
			if vals[0] != len(m.PerBS) {
				return nil, fmt.Errorf("sched: metrics CSV line %d: bs index %d out of order", line, vals[0])
			}
			m.PerBS = append(m.PerBS, BSMetrics{
				Jobs: vals[1], ACK: vals[2], Dropped: vals[3], Late: vals[4], DecodeFail: vals[5],
			})
		case "counter":
			if len(fields) != 3 {
				return nil, bad()
			}
			p, ok := counters[fields[1]]
			if !ok {
				return nil, fmt.Errorf("sched: metrics CSV line %d: unknown counter %q", line, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, bad()
			}
			*p = v
		case "gap", "proctime":
			if len(fields) != 2 {
				return nil, bad()
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, bad()
			}
			if fields[0] == "gap" {
				m.Gaps = append(m.Gaps, v)
			} else {
				m.ProcTimes = append(m.ProcTimes, v)
			}
		default:
			return nil, fmt.Errorf("sched: metrics CSV line %d: unknown row tag %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
