package sched

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file serializes Metrics for offline analysis: JSON for tooling and
// a flat, line-oriented CSV for spreadsheets and plotting scripts. Both
// formats round-trip (ReadMetricsJSON / ReadMetricsCSV), and both are
// deterministic: identical metrics produce byte-identical output.

// WriteJSON serializes the metrics as one JSON document.
func (m *Metrics) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(m)
}

// ReadMetricsJSON parses a document written by WriteJSON.
func ReadMetricsJSON(r io.Reader) (*Metrics, error) {
	var m Metrics
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("sched: bad metrics JSON: %v", err)
	}
	return &m, nil
}

// The CSV metrics format is versioned by its header line. v2 added the
// `overrun` rows (Metrics.Overruns); WriteCSV always emits the current
// version, ReadMetricsCSV accepts every version listed here.
const (
	metricsCSVHeaderV1 = "# rtopex-metrics v1"
	metricsCSVHeaderV2 = "# rtopex-metrics v2"
	metricsCSVHeader   = metricsCSVHeaderV2
)

// counterOrder fixes the export order of the scalar counters.
var counterOrder = []string{
	"RecordProcMCS",
	"FFTSubtasksTotal", "FFTSubtasksMigrated",
	"DecodeSubtasksTotal", "DecodeSubtasksMigrated",
	"FFTBatches", "DecodeBatches", "MigrationBatches",
	"Preemptions", "Recoveries",
	"TxJobs", "TxMisses",
}

func (m *Metrics) counters() map[string]*int {
	return map[string]*int{
		"RecordProcMCS":          &m.RecordProcMCS,
		"FFTSubtasksTotal":       &m.FFTSubtasksTotal,
		"FFTSubtasksMigrated":    &m.FFTSubtasksMigrated,
		"DecodeSubtasksTotal":    &m.DecodeSubtasksTotal,
		"DecodeSubtasksMigrated": &m.DecodeSubtasksMigrated,
		"FFTBatches":             &m.FFTBatches,
		"DecodeBatches":          &m.DecodeBatches,
		"MigrationBatches":       &m.MigrationBatches,
		"Preemptions":            &m.Preemptions,
		"Recoveries":             &m.Recoveries,
		"TxJobs":                 &m.TxJobs,
		"TxMisses":               &m.TxMisses,
	}
}

// WriteCSV serializes the metrics as a flat CSV of tagged rows:
//
//	scheduler,<name>
//	bs,<idx>,<jobs>,<ack>,<dropped>,<late>,<decodefail>
//	counter,<name>,<value>
//	gap,<µs>         (one row per recorded gap)
//	overrun,<µs>     (one row per recorded late overshoot; v2+)
//	proctime,<µs>    (one row per recorded processing time)
//
// Floats use Go's shortest round-trippable formatting.
func (m *Metrics) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, metricsCSVHeader)
	fmt.Fprintf(bw, "scheduler,%s\n", m.Scheduler)
	for i, b := range m.PerBS {
		fmt.Fprintf(bw, "bs,%d,%d,%d,%d,%d,%d\n", i, b.Jobs, b.ACK, b.Dropped, b.Late, b.DecodeFail)
	}
	counters := m.counters()
	for _, name := range counterOrder {
		fmt.Fprintf(bw, "counter,%s,%d\n", name, *counters[name])
	}
	for _, g := range m.Gaps {
		fmt.Fprintf(bw, "gap,%s\n", strconv.FormatFloat(g, 'g', -1, 64))
	}
	for _, v := range m.Overruns {
		fmt.Fprintf(bw, "overrun,%s\n", strconv.FormatFloat(v, 'g', -1, 64))
	}
	for _, p := range m.ProcTimes {
		fmt.Fprintf(bw, "proctime,%s\n", strconv.FormatFloat(p, 'g', -1, 64))
	}
	return bw.Flush()
}

// ReadMetricsCSV parses a document written by WriteCSV, current or any
// prior version (v1 documents simply have no overrun rows).
func ReadMetricsCSV(r io.Reader) (*Metrics, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var version int
	if sc.Scan() {
		switch strings.TrimSpace(sc.Text()) {
		case metricsCSVHeaderV1:
			version = 1
		case metricsCSVHeaderV2:
			version = 2
		}
	}
	if version == 0 {
		return nil, fmt.Errorf("sched: missing %q header", metricsCSVHeader)
	}
	m := &Metrics{}
	counters := m.counters()
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(strings.TrimSpace(sc.Text()), ",")
		bad := func() error { return fmt.Errorf("sched: metrics CSV line %d malformed", line) }
		switch fields[0] {
		case "scheduler":
			if len(fields) != 2 {
				return nil, bad()
			}
			m.Scheduler = fields[1]
		case "bs":
			if len(fields) != 7 {
				return nil, bad()
			}
			vals := make([]int, 6)
			for i := range vals {
				v, err := strconv.Atoi(fields[i+1])
				if err != nil {
					return nil, bad()
				}
				vals[i] = v
			}
			if vals[0] != len(m.PerBS) {
				return nil, fmt.Errorf("sched: metrics CSV line %d: bs index %d out of order", line, vals[0])
			}
			m.PerBS = append(m.PerBS, BSMetrics{
				Jobs: vals[1], ACK: vals[2], Dropped: vals[3], Late: vals[4], DecodeFail: vals[5],
			})
		case "counter":
			if len(fields) != 3 {
				return nil, bad()
			}
			p, ok := counters[fields[1]]
			if !ok {
				return nil, fmt.Errorf("sched: metrics CSV line %d: unknown counter %q", line, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, bad()
			}
			*p = v
		case "gap", "overrun", "proctime":
			if fields[0] == "overrun" && version < 2 {
				return nil, fmt.Errorf("sched: metrics CSV line %d: overrun rows need v2, header says v%d", line, version)
			}
			if len(fields) != 2 {
				return nil, bad()
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, bad()
			}
			switch fields[0] {
			case "gap":
				m.Gaps = append(m.Gaps, v)
			case "overrun":
				m.Overruns = append(m.Overruns, v)
			default:
				m.ProcTimes = append(m.ProcTimes, v)
			}
		default:
			return nil, fmt.Errorf("sched: metrics CSV line %d: unknown row tag %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
