package sched

import (
	"math"
	"testing"

	"rtopex/internal/model"
	"rtopex/internal/platform"
	"rtopex/internal/stats"
)

// execJob runs serialExec on a fresh engine and returns the outcome.
func execJob(t *testing.T, j *Job, extra float64, terminate bool) (Outcome, float64, float64) {
	t.Helper()
	eng := platform.New()
	env := &Env{Eng: eng, M: NewMetrics("test", 1)}
	var out Outcome
	var proc float64
	done := false
	serialExec(env, 0, j, extra, terminate, func(o Outcome, p float64) {
		out, proc, done = o, p, true
	})
	eng.Run()
	if !done {
		t.Fatal("serialExec never completed")
	}
	return out, proc, eng.Now()
}

func makeJob(tasks model.TaskTimes, l int, budget float64, jitter float64) *Job {
	return &Job{
		BS: 0, Index: 1, // Index 1 strikes the demod phase for 2+L ≥ 3
		L:         l,
		Decodable: true,
		Gen:       0, Arrival: 0, Deadline: budget,
		Tasks:    tasks,
		JitterUS: jitter,
	}
}

func TestSerialExecHappyPath(t *testing.T) {
	tasks := model.TaskTimes{FFT: 100, Demod: 200, Decode: 600}
	j := makeJob(tasks, 3, 2000, 0)
	out, proc, at := execJob(t, j, 0, false)
	if out != OutcomeACK {
		t.Fatalf("outcome %v", out)
	}
	if math.Abs(proc-900) > 1e-9 || math.Abs(at-900) > 1e-9 {
		t.Fatalf("proc %v at %v, want 900", proc, at)
	}
}

func TestSerialExecDecodeFail(t *testing.T) {
	j := makeJob(model.TaskTimes{FFT: 10, Demod: 10, Decode: 10}, 1, 2000, 0)
	j.Decodable = false
	out, _, _ := execJob(t, j, 0, false)
	if out != OutcomeDecodeFail {
		t.Fatalf("outcome %v, want decode-fail", out)
	}
}

func TestSerialExecDropsWhenFFTDoesNotFit(t *testing.T) {
	j := makeJob(model.TaskTimes{FFT: 500, Demod: 10, Decode: 10}, 1, 400, 0)
	out, proc, at := execJob(t, j, 0, false)
	if out != OutcomeDropped || proc >= 0 {
		t.Fatalf("outcome %v proc %v", out, proc)
	}
	if at != 0 {
		t.Fatalf("drop fired at %v, want immediately", at)
	}
}

func TestSerialExecDropsMidDecode(t *testing.T) {
	// Budget covers FFT+demod+2 of 3 iterations: the third check drops.
	tasks := model.TaskTimes{FFT: 100, Demod: 100, Decode: 900} // 300/iter
	j := makeJob(tasks, 3, 850, 0)
	out, _, at := execJob(t, j, 0, false)
	if out != OutcomeDropped {
		t.Fatalf("outcome %v", out)
	}
	if math.Abs(at-800) > 1e-9 { // dropped at the third iteration boundary
		t.Fatalf("dropped at %v, want 800", at)
	}
}

func TestSerialExecJitterMakesLate(t *testing.T) {
	// Jitter striking the final phase (decode, Index 2 of 3) escapes every
	// slack check and surfaces as a late completion.
	tasks := model.TaskTimes{FFT: 100, Demod: 100, Decode: 300}
	j := makeJob(tasks, 1, 520, 50)
	j.Index = 2
	out, proc, _ := execJob(t, j, 0, false)
	if out != OutcomeLate {
		t.Fatalf("outcome %v, want late", out)
	}
	if math.Abs(proc-550) > 1e-9 {
		t.Fatalf("proc %v", proc)
	}
}

func TestSerialExecNegativeJitterClamp(t *testing.T) {
	tasks := model.TaskTimes{FFT: 100, Demod: 50, Decode: 300}
	j := makeJob(tasks, 1, 2000, -500) // more negative than the phase
	out, proc, _ := execJob(t, j, 0, false)
	if out != OutcomeACK {
		t.Fatalf("outcome %v", out)
	}
	// Demod phase clamps to zero: total = 100 + 0 + 300.
	if math.Abs(proc-400) > 1e-9 {
		t.Fatalf("proc %v, want 400", proc)
	}
}

func TestSerialExecTerminateAtDeadline(t *testing.T) {
	// Global semantics: the overrunning task is cut at the deadline. Put
	// the jitter strike on the decode phase (Index 2 of 3 phases) so the
	// slack check passes and the overrun happens mid-execution.
	tasks := model.TaskTimes{FFT: 100, Demod: 100, Decode: 300}
	j := makeJob(tasks, 1, 520, 100)
	j.Index = 2
	out, proc, at := execJob(t, j, 0, true)
	if out != OutcomeLate {
		t.Fatalf("outcome %v", out)
	}
	if at != 520 || proc != 520 {
		t.Fatalf("terminated at %v (proc %v), want deadline 520", at, proc)
	}
}

func TestSerialExecExtraDelaysChain(t *testing.T) {
	tasks := model.TaskTimes{FFT: 100, Demod: 100, Decode: 100}
	j := makeJob(tasks, 1, 350, 0)
	// extra = 100 means the fft check happens at t=100 and decode cannot
	// fit: 100+100+100+100 > 350 → dropped at the decode boundary.
	out, _, at := execJob(t, j, 100, false)
	if out != OutcomeDropped {
		t.Fatalf("outcome %v", out)
	}
	if math.Abs(at-300) > 1e-9 {
		t.Fatalf("dropped at %v, want 300", at)
	}
}

func TestSerialExecJitterStrikeRotates(t *testing.T) {
	// The strike phase is Index mod (2+L): verify different indices place
	// the same jitter in different phases (observable via drop vs late).
	tasks := model.TaskTimes{FFT: 100, Demod: 100, Decode: 100}
	outcomes := map[Outcome]int{}
	for idx := 0; idx < 3; idx++ {
		j := makeJob(tasks, 1, 320, 60)
		j.Index = idx
		out, _, _ := execJob(t, j, 0, false)
		outcomes[out]++
	}
	// With 300 µs of nominal work and a 60 µs strike against a 320 µs
	// budget, at least one phase placement must miss and outcomes must
	// not all be identical misses of the same kind.
	if outcomes[OutcomeACK] == 3 {
		t.Fatal("no placement missed")
	}
	if len(outcomes) < 2 {
		t.Fatalf("strike placement had no observable effect: %v", outcomes)
	}
}

func TestGlobalQueueingUnderOverload(t *testing.T) {
	// 4 basestations on 2 cores: heavy queueing; every job must still be
	// accounted exactly once, mostly as drops.
	w := testWorkload(t, 1000, 500, 50)
	m, err := Run(w, NewGlobal(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs() != 4000 {
		t.Fatalf("jobs %d", m.Jobs())
	}
	if m.MissRate() < 0.3 {
		t.Fatalf("overloaded global missing only %v", m.MissRate())
	}
}

func TestGlobalEDFOrder(t *testing.T) {
	// Two queued jobs: the earlier deadline must dispatch first. Drive the
	// scheduler directly on a crafted engine.
	eng := platform.New()
	m := NewMetrics("global", 1)
	g := NewGlobal()
	g.DispatchOverheadUS = 0
	g.Cache.Enabled = false
	env := &Env{Eng: eng, M: m, Cores: 1, RNG: stats.NewRNG(1), ExpectedRTT2: 0, SubframesPerBS: 10}
	g.Attach(env)

	mk := func(idx int, arrival, deadline, work float64) *Job {
		return &Job{
			BS: 0, Index: idx, L: 1, Decodable: true,
			Arrival: arrival, Deadline: deadline,
			Tasks: model.TaskTimes{FFT: work / 3, Demod: work / 3, Decode: work / 3},
		}
	}
	// Busy job occupies the single core until t = 600.
	j0 := mk(0, 0, 5000, 600)
	// j2 arrives before j1 but has a later deadline; j1's deadline (820)
	// only holds if EDF dispatches it first when the core frees at 600.
	j2 := mk(2, 10, 4000, 100)
	j1 := mk(1, 20, 820, 100)
	eng.At(0, func() { g.OnArrival(j0) })
	eng.At(10, func() { g.OnArrival(j2) })
	eng.At(20, func() { g.OnArrival(j1) })
	eng.Run()
	g.Finalize()
	if m.Jobs() != 3 {
		t.Fatalf("jobs %d", m.Jobs())
	}
	if m.Misses() != 0 {
		t.Fatalf("%d misses — FIFO would have dropped the tight-deadline job", m.Misses())
	}
}
