package sched

import "testing"

func TestPRANBasics(t *testing.T) {
	w := testWorkload(t, 3000, 550, 60)
	m, err := Run(w, NewPRAN(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs() != 12000 {
		t.Fatalf("jobs %d", m.Jobs())
	}
	if m.Scheduler != "pran" {
		t.Fatalf("name %q", m.Scheduler)
	}
}

func TestPRANBeatsPartitionedButLosesToRTOPEX(t *testing.T) {
	// PRAN's planned parallelism beats serial partitioned processing, but
	// its inability to adapt to iteration-count surprises keeps it behind
	// RT-OPEX — the Table 2 story, quantified.
	var pran, part, rt float64
	for seed := uint64(61); seed < 64; seed++ {
		w := testWorkload(t, 8000, 675, seed)
		a, _ := Run(w, NewPRAN(), 8)
		b, _ := Run(w, NewPartitioned(2), 8)
		c, _ := Run(w, NewRTOPEX(2), 8)
		pran += a.MissRate()
		part += b.MissRate()
		rt += c.MissRate()
	}
	if pran >= part {
		t.Fatalf("PRAN (%v) not below partitioned (%v)", pran/3, part/3)
	}
	if rt >= pran {
		t.Fatalf("RT-OPEX (%v) not below PRAN (%v)", rt/3, pran/3)
	}
}

func TestPRANMispredictionHurts(t *testing.T) {
	// Planning at L=1 under-provisions every multi-iteration subframe;
	// planning at Lm over-claims cores and queues. The default (2) must
	// beat the L=1 planner.
	w := testWorkload(t, 8000, 675, 65)
	def, _ := Run(w, NewPRAN(), 8)
	optimist := NewPRAN()
	optimist.PredictL = 1
	opt, _ := Run(w, optimist, 8)
	if opt.Misses() <= def.Misses() {
		t.Fatalf("optimistic planner (%d misses) not worse than default (%d)",
			opt.Misses(), def.Misses())
	}
}

func TestPRANQueuesUnderPressure(t *testing.T) {
	w := testWorkload(t, 1000, 500, 66)
	m, err := Run(w, NewPRAN(), 2) // heavy contention
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs() != 4000 {
		t.Fatalf("jobs %d", m.Jobs())
	}
	if m.MissRate() < 0.2 {
		t.Fatalf("under-provisioned PRAN missing only %v", m.MissRate())
	}
}

func TestSemiPartitionedBasics(t *testing.T) {
	w := testWorkload(t, 3000, 550, 70)
	m, err := Run(w, NewSemiPartitioned(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs() != 12000 {
		t.Fatalf("jobs %d", m.Jobs())
	}
}

func TestTaskLevelMigrationIsUselessWhenProvisioned(t *testing.T) {
	// The paper's design argument, quantified: under ⌈Tmax⌉-per-BS
	// provisioning the binding constraint is each job's own deadline, so
	// whole-job migration (semi-partitioned) gains exactly nothing over
	// plain partitioned — only subtask migration (RT-OPEX) shortens the
	// critical path.
	for seed := uint64(71); seed < 74; seed++ {
		w := testWorkload(t, 8000, 650, seed)
		a, _ := Run(w, NewPartitioned(2), 8)
		b, _ := Run(w, NewSemiPartitioned(2), 8)
		c, _ := Run(w, NewRTOPEX(2), 8)
		if b.Misses() != a.Misses() {
			t.Fatalf("seed %d: semi-partitioned %d misses vs partitioned %d — expected identical",
				seed, b.Misses(), a.Misses())
		}
		if c.Misses() >= b.Misses() {
			t.Fatalf("seed %d: RT-OPEX (%d) not below semi-partitioned (%d)",
				seed, c.Misses(), b.Misses())
		}
	}
}

func TestTaskLevelMigrationHelpsWhenUnderProvisioned(t *testing.T) {
	// With one core per basestation (half the required ⌈Tmax⌉=2), jobs
	// collide on their home cores; pushing whole jobs to the spare cores
	// is exactly the semi-partitioned use case.
	w := testWorkload(t, 8000, 550, 76)
	p, _ := Run(w, NewPartitioned(1), 8)     // uses only cores 0..3
	s, _ := Run(w, NewSemiPartitioned(1), 8) // can push onto cores 4..7
	if s.Misses() >= p.Misses() {
		t.Fatalf("semi-partitioned (%d) not below under-provisioned partitioned (%d)",
			s.Misses(), p.Misses())
	}
}

func TestSemiPartitionedInsufficientCores(t *testing.T) {
	w := testWorkload(t, 500, 500, 75)
	m, err := Run(w, NewSemiPartitioned(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs() != 2000 {
		t.Fatalf("jobs %d", m.Jobs())
	}
}

func TestDownlinkJobsCompeteForCores(t *testing.T) {
	base := testWorkload(t, 1, 550, 80).Cfg
	base.Subframes = 6000
	base.IncludeDownlink = true
	w, err := BuildWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	// Per BS: 6000 rx + 5999 tx jobs.
	if len(w.Jobs[0]) != 6000+5999 {
		t.Fatalf("jobs per BS = %d", len(w.Jobs[0]))
	}
	for _, s := range []Scheduler{NewPartitioned(2), NewRTOPEX(2), NewGlobal()} {
		m, err := Run(w, s, 8)
		if err != nil {
			t.Fatal(err)
		}
		if m.Jobs() != 24000 {
			t.Fatalf("%s: rx jobs %d, want 24000", m.Scheduler, m.Jobs())
		}
		if m.TxJobs != 4*5999 {
			t.Fatalf("%s: tx jobs %d, want %d", m.Scheduler, m.TxJobs, 4*5999)
		}
	}
}

func TestDownlinkLoadRaisesUplinkMisses(t *testing.T) {
	base := testWorkload(t, 1, 600, 81).Cfg
	base.Subframes = 8000
	uplinkOnly, _ := BuildWorkload(base)
	base.IncludeDownlink = true
	duplex, _ := BuildWorkload(base)

	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewPartitioned(2) },
		func() Scheduler { return NewRTOPEX(2) },
	} {
		a, _ := Run(uplinkOnly, mk(), 8)
		b, _ := Run(duplex, mk(), 8)
		if b.MissRate() < a.MissRate() {
			t.Fatalf("%s: downlink load reduced uplink misses (%v -> %v)",
				a.Scheduler, a.MissRate(), b.MissRate())
		}
	}
	// RT-OPEX must still beat partitioned under duplex load.
	p, _ := Run(duplex, NewPartitioned(2), 8)
	r, _ := Run(duplex, NewRTOPEX(2), 8)
	if r.MissRate() >= p.MissRate() {
		t.Fatalf("RT-OPEX (%v) not below partitioned (%v) under duplex load",
			r.MissRate(), p.MissRate())
	}
	if r.TxJobs == 0 || p.TxJobs == 0 {
		t.Fatal("tx jobs not accounted")
	}
}
