package sched

import (
	"fmt"
	"math"

	"rtopex/internal/trace"
)

// RTOPEX is the paper's contribution (§3.2): a partitioned schedule
// underneath, plus opportunistic migration of parallelizable subtasks (FFT
// and turbo decode) into the idle gaps of other cores at runtime.
//
// A processing thread reaching a parallelizable task queries the shared CPU
// state, predicts each idle core's free window fck from the deterministic
// subframe arrival pattern, and applies Algorithm 1 to choose how many
// subtasks to offload. Migrated batches execute on the host core until they
// finish or the host's own subframe arrives (preemption). When the local
// thread finishes its share, it consumes ready results; results that are
// not ready are either awaited (when that is provably cheaper) or
// recomputed locally — the recovery path that makes RT-OPEX never worse
// than the serial baseline.
type RTOPEX struct {
	// CoresPerBS is the underlying partitioned schedule's ⌈Tmax⌉.
	CoresPerBS int
	// DeltaUS is the migration overhead δ (§4.4 measures ≈18–20 µs per
	// migrated task). By default it is charged once per migrated batch,
	// matching the measurement ("the cost of migration is fixed across the
	// subtasks" — one OAI context fetch per migration); set PerSubtaskDelta
	// for Algorithm 1's literal ⌊fck/(tp+δ)⌋ accounting.
	DeltaUS         float64
	PerSubtaskDelta bool
	// MigrateFFT / MigrateDecode enable migration per task type.
	MigrateFFT    bool
	MigrateDecode bool
	// GreedyAll is an ablation that drops requirements R2/R3 and offloads
	// as much as the free windows allow.
	GreedyAll bool
	// NoWait is an ablation forcing the paper-literal recovery: the local
	// thread never waits for an unfinished batch, always recomputing,
	// even when the batch is within microseconds of completion.
	NoWait bool

	env   *Env
	cores []*rcore
}

type rcore struct {
	id   int
	bs   int // owning basestation under the partitioned schedule
	slot int // subframe phase: handles indices ≡ slot (mod CoresPerBS)

	running  bool
	batch    *migBatch // non-nil while hosting a migrated batch
	pending  []*Job
	lastFree float64
	everUsed bool
}

// migBatch is a set of subtasks executing on a host core on behalf of a
// job running elsewhere.
type migBatch struct {
	host        *rcore
	owner       *Job // the job whose subtasks the batch carries
	decode      bool // decode batch (else FFT)
	count       int
	tp          float64
	start       float64
	preemptedAt float64 // < 0 when not preempted
	released    bool    // owner consumed or abandoned the batch
}

// debugLate, when set, observes late decode completions (test hook).
var debugLate func(j *Job, decodeStart, localTime, finish float64)

// DebugLate installs a test/diagnostic hook observing late decode
// completions under RT-OPEX.
func DebugLate(fn func(j *Job, decodeStart, localTime, finish float64)) { debugLate = fn }

// NewRTOPEX creates an RT-OPEX scheduler with the paper's defaults.
func NewRTOPEX(coresPerBS int) *RTOPEX {
	if coresPerBS < 1 {
		coresPerBS = 1
	}
	return &RTOPEX{
		CoresPerBS:    coresPerBS,
		DeltaUS:       20,
		MigrateFFT:    true,
		MigrateDecode: true,
	}
}

// Name implements Scheduler.
func (r *RTOPEX) Name() string { return "rt-opex" }

// Attach implements Scheduler.
func (r *RTOPEX) Attach(env *Env) {
	r.env = env
	r.cores = make([]*rcore, env.Cores)
	for i := range r.cores {
		r.cores[i] = &rcore{id: i, bs: i / r.CoresPerBS, slot: i % r.CoresPerBS}
	}
}

// OnArrival implements Scheduler.
func (r *RTOPEX) OnArrival(j *Job) {
	idx := j.BS*r.CoresPerBS + j.Index%r.CoresPerBS
	if idx >= len(r.cores) {
		r.env.M.Record(j, OutcomeDropped, -1)
		return
	}
	c := r.cores[idx]
	if c.running {
		c.pending = append(c.pending, j)
		return
	}
	if c.batch != nil && c.batch.preemptedAt < 0 {
		// The host's own subframe preempts the migrated batch (state 2 →
		// state 3 in Fig. 12).
		c.batch.preemptedAt = r.env.Eng.Now()
		r.env.M.Preemptions++
		r.env.emit(c.id, c.batch.owner, trace.EvMigPreempt, "")
		c.batch = nil
	}
	r.startJob(c, j)
}

func (r *RTOPEX) startJob(c *rcore, j *Job) {
	c.running = true
	c.everUsed = true
	now := r.env.Eng.Now()
	r.env.emit(c.id, j, trace.EvStart, "")

	// Jitter strike phase: same per-job placement rule as serialExec so
	// workloads are comparable across schedulers.
	strike := j.Index % (2 + j.L)

	r.phaseFFT(c, j, now, now, strike)
}

// phaseFFT runs the FFT task, migrating subtasks if enabled.
func (r *RTOPEX) phaseFFT(c *rcore, j *Job, start, now float64, strike int) {
	r.env.emit(c.id, j, trace.EvPhase, "fft")
	r.env.M.FFTSubtasksTotal += j.FFTSubtasks
	local, batches := r.planTask(c, j, now, j.FFTSubtasks, j.FFTSubtaskUS, r.MigrateFFT, false)
	localTime := float64(local) * j.FFTSubtaskUS
	if now+localTime > j.Deadline {
		r.abandon(batches, now)
		r.env.emit(c.id, j, trace.EvDrop, "fft")
		r.finishJob(c, j, OutcomeDropped, -1, now)
		return
	}
	r.env.M.FFTSubtasksMigrated += migratedCount(batches)
	if strike == 0 {
		localTime = math.Max(0, localTime+j.JitterUS)
	}
	r.env.Eng.At(now+localTime, func() {
		joinAt := r.join(now+localTime, j.FFTSubtaskUS, batches)
		r.env.Eng.At(joinAt, func() { r.phaseDemod(c, j, start, joinAt, strike) })
	})
}

// phaseDemod runs the (serial) demod task.
func (r *RTOPEX) phaseDemod(c *rcore, j *Job, start, now float64, strike int) {
	if now+j.Tasks.Demod > j.Deadline {
		r.env.emit(c.id, j, trace.EvDrop, "demod")
		r.finishJob(c, j, OutcomeDropped, -1, now)
		return
	}
	r.env.emit(c.id, j, trace.EvPhase, "demod")
	actual := j.Tasks.Demod
	if strike == 1 {
		actual = math.Max(0, actual+j.JitterUS)
	}
	r.env.Eng.At(now+actual, func() { r.phaseDecode(c, j, start, now+actual, strike) })
}

// phaseDecode runs the decode task, migrating code blocks if enabled.
func (r *RTOPEX) phaseDecode(c *rcore, j *Job, start, now float64, strike int) {
	r.env.emit(c.id, j, trace.EvPhase, "decode")
	r.env.M.DecodeSubtasksTotal += j.DecodeSubtasks
	local, batches := r.planTask(c, j, now, j.DecodeSubtasks, j.DecodeSubtaskUS, r.MigrateDecode, true)
	localTime := float64(local) * j.DecodeSubtaskUS
	if now+localTime > j.Deadline {
		r.abandon(batches, now)
		r.env.emit(c.id, j, trace.EvDrop, "decode")
		r.finishJob(c, j, OutcomeDropped, -1, now)
		return
	}
	r.env.M.DecodeSubtasksMigrated += migratedCount(batches)
	if strike >= 2 {
		localTime = math.Max(0, localTime+j.JitterUS)
	}
	r.env.Eng.At(now+localTime, func() {
		finish := r.join(now+localTime, j.DecodeSubtaskUS, batches)
		r.env.Eng.At(finish, func() {
			out := OutcomeACK
			switch {
			case finish > j.Deadline:
				out = OutcomeLate
				if debugLate != nil {
					debugLate(j, now, localTime, finish)
				}
			case !j.Decodable:
				out = OutcomeDecodeFail
			}
			r.finishJob(c, j, out, finish-start, finish)
		})
	})
}

func (r *RTOPEX) finishJob(c *rcore, j *Job, out Outcome, proc float64, at float64) {
	r.env.M.Record(j, out, proc)
	r.env.M.RecordGap(j, out, at)
	if out != OutcomeDropped {
		// Drops already emitted EvDrop with the failing phase.
		r.env.emitAt(at, c.id, j, trace.EvFinish, outcomeDetail(out))
	}
	c.running = false
	c.lastFree = at
	if len(c.pending) > 0 {
		next := c.pending[0]
		c.pending = c.pending[1:]
		r.startJob(c, next)
	}
}

// planTask applies Algorithm 1 across currently idle cores and installs the
// migrated batches. It returns the number of subtasks kept local.
func (r *RTOPEX) planTask(c *rcore, j *Job, now float64, subtasks int, tp float64, enabled bool, decode bool) (int, []*migBatch) {
	if !enabled || subtasks <= 1 || tp <= 0 {
		return subtasks, nil
	}
	var hosts []*rcore
	var free []float64
	for _, k := range r.cores {
		if k == c || k.running || k.batch != nil {
			continue
		}
		// The usable window is bounded both by the host's next own
		// subframe and by the migrating job's deadline: a batch completing
		// past the deadline cannot save the subframe.
		fck := math.Min(r.predictedNextPreemption(k, now), j.Deadline) - now
		if fck <= 0 {
			continue
		}
		hosts = append(hosts, k)
		free = append(free, fck)
	}
	if len(hosts) == 0 {
		return subtasks, nil
	}
	counts := Algorithm1(subtasks, tp, r.DeltaUS, r.PerSubtaskDelta, r.GreedyAll, free)
	local := subtasks
	var batches []*migBatch
	for i, n := range counts {
		if n <= 0 {
			continue
		}
		b := &migBatch{host: hosts[i], owner: j, decode: decode, count: n, tp: tp, start: now, preemptedAt: -1}
		hosts[i].batch = b
		local -= n
		batches = append(batches, b)
		r.env.M.MigrationBatches++
		if decode {
			r.env.M.DecodeBatches++
		} else {
			r.env.M.FFTBatches++
		}
		if r.env.Trace != nil {
			r.env.emit(b.host.id, j, trace.EvMigPlan, fmt.Sprintf("%s n=%d", taskName(decode), n))
		}
		// Natural completion releases the host (state 2 → state 1).
		end := r.batchEnd(b)
		r.env.Eng.At(end, func() {
			if b.host.batch == b && b.preemptedAt < 0 {
				b.host.batch = nil
				b.host.lastFree = r.env.Eng.Now()
				r.env.emit(b.host.id, b.owner, trace.EvMigComplete, "")
			}
		})
	}
	return local, batches
}

// batchEnd is the natural completion time of a batch on its host.
func (r *RTOPEX) batchEnd(b *migBatch) float64 {
	if r.PerSubtaskDelta {
		return b.start + float64(b.count)*(b.tp+r.DeltaUS)
	}
	return b.start + r.DeltaUS + float64(b.count)*b.tp
}

// completedBy returns how many of the batch's subtasks finished by time t.
func (r *RTOPEX) completedBy(b *migBatch, t float64) int {
	var done float64
	if r.PerSubtaskDelta {
		done = (t - b.start) / (b.tp + r.DeltaUS)
	} else {
		done = (t - b.start - r.DeltaUS) / b.tp
	}
	n := int(math.Floor(done))
	if n < 0 {
		n = 0
	}
	if n > b.count {
		n = b.count
	}
	return n
}

// join resolves all migrated batches when the local share completes at
// localFinish: ready results are consumed; preempted or slow batches are
// recovered by local recomputation (or awaited when provably cheaper and
// NoWait is unset). It returns the task completion time.
func (r *RTOPEX) join(localFinish, tp float64, batches []*migBatch) float64 {
	finish := localFinish
	var recovery float64
	for _, b := range batches {
		b.released = true
		switch {
		case b.preemptedAt >= 0:
			// Result not ready: host was preempted (state 6 recovery).
			unfinished := b.count - r.completedBy(b, b.preemptedAt)
			if unfinished > 0 {
				recovery += float64(unfinished) * tp
				r.env.M.Recoveries++
				if r.env.Trace != nil {
					r.env.emitAt(localFinish, b.host.id, b.owner, trace.EvMigRecompute,
						fmt.Sprintf("n=%d preempted", unfinished))
				}
			} else {
				// Preempted after every subtask finished: results usable.
				r.env.emitAt(localFinish, b.host.id, b.owner, trace.EvMigConsume, "")
			}
		default:
			end := r.batchEnd(b)
			if end <= localFinish {
				r.env.emitAt(localFinish, b.host.id, b.owner, trace.EvMigConsume, "")
				break // result ready
			}
			// Batch still running: recompute or wait, whichever is
			// cheaper (recompute-only when NoWait).
			unfinished := b.count - r.completedBy(b, localFinish)
			recompute := float64(unfinished) * tp
			wait := end - localFinish
			if r.NoWait || recompute < wait {
				recovery += recompute
				r.env.M.Recoveries++
				if r.env.Trace != nil {
					r.env.emitAt(localFinish, b.host.id, b.owner, trace.EvMigRecompute,
						fmt.Sprintf("n=%d slow", unfinished))
				}
				// Host abandons the rest of the batch immediately.
				if b.host.batch == b {
					b.host.batch = nil
					b.host.lastFree = localFinish
				}
			} else {
				if r.env.Trace != nil {
					r.env.emitAt(localFinish, b.host.id, b.owner, trace.EvMigWait,
						fmt.Sprintf("%.3gus", wait))
				}
				if end > finish {
					finish = end
				}
			}
		}
	}
	return finish + recovery
}

// abandon cancels planned batches when the owner drops the job, reversing
// the migration counters planTask booked: an abandoned batch never ran on
// behalf of a completed subframe, so counting it would inflate the
// migration fractions of Fig. 16 with work that was thrown away.
func (r *RTOPEX) abandon(batches []*migBatch, now float64) {
	for _, b := range batches {
		b.released = true
		r.env.M.MigrationBatches--
		if b.decode {
			r.env.M.DecodeBatches--
		} else {
			r.env.M.FFTBatches--
		}
		r.env.emitAt(now, b.host.id, b.owner, trace.EvMigAbandon, "")
		if b.host.batch == b && b.preemptedAt < 0 {
			b.host.batch = nil
			b.host.lastFree = now
		}
	}
}

// predictedNextPreemption estimates when core k must next be surrendered to
// its own subframe: the scheduler knows the deterministic 1 ms frame clock
// (the watchdog's global reference time) and the expected transport
// latency, so the next preemption is the earliest expected arrival
// gen + E[RTT/2] after now. This correctly accounts for in-flight
// subframes — ones already generated but still crossing the transport —
// which would otherwise preempt a freshly placed batch almost immediately.
// Past the end of the trace it returns +Inf.
func (r *RTOPEX) predictedNextPreemption(k *rcore, now float64) float64 {
	c := float64(r.CoresPerBS)
	// Expected arrivals for this core: (slot + m·c)·1000 + E[RTT/2].
	first := float64(k.slot)*1000 + r.env.ExpectedRTT2
	t := first
	if now >= first {
		m := math.Ceil((now - first) / (1000 * c))
		t = first + m*1000*c
		if t <= now {
			t += 1000 * c
		}
	}
	// Index bound: no arrivals after the last subframe.
	idx := k.slot + int((t-first)/1000+0.5)
	if idx >= r.env.SubframesPerBS {
		return math.Inf(1)
	}
	return t
}

// taskName labels a batch's task type for the trace.
func taskName(decode bool) string {
	if decode {
		return "decode"
	}
	return "fft"
}

func migratedCount(batches []*migBatch) int {
	n := 0
	for _, b := range batches {
		n += b.count
	}
	return n
}

// Finalize implements Scheduler.
func (r *RTOPEX) Finalize() {}

// Algorithm1 is the migration allocation of the paper's Alg. 1: given P
// subtasks of duration tp, the migration overhead δ, and the free time
// windows of candidate idle cores, it returns how many subtasks to offload
// to each core. The three requirements:
//
//	R1: noff ≤ limoff — the batch must fit the core's free window;
//	R2: S − noff ≥ maxoff — keep at least as many local subtasks as the
//	    largest batch already offloaded, so the local thread finishes last;
//	R3: noff ≤ ⌊S/2⌋ — never offload more than remain.
//
// greedy drops R2/R3 (ablation). perSubtaskDelta charges δ per subtask in
// limoff (the listing's ⌊fck/(tp+δ)⌋); otherwise δ is charged once per
// batch.
func Algorithm1(p int, tp, delta float64, perSubtaskDelta, greedy bool, free []float64) []int {
	counts := make([]int, len(free))
	if p <= 1 || tp <= 0 {
		return counts
	}
	s := p
	maxoff := 0
	for k := range free {
		if s <= 1 {
			break
		}
		var limoff int
		if perSubtaskDelta {
			limoff = int(math.Floor(free[k] / (tp + delta)))
		} else {
			if free[k] <= delta {
				continue
			}
			limoff = int(math.Floor((free[k] - delta) / tp))
		}
		noff := limoff
		if !greedy {
			noff = min3(s-maxoff, limoff, s/2)
		} else if noff > s-1 {
			noff = s - 1
		}
		if noff <= 0 {
			continue
		}
		if noff > maxoff {
			maxoff = noff
		}
		counts[k] = noff
		s -= noff
	}
	return counts
}

func min3(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

var _ Scheduler = (*RTOPEX)(nil)
var _ Scheduler = (*Partitioned)(nil)
var _ Scheduler = (*Global)(nil)
