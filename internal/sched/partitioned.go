package sched

import "fmt"

// Partitioned is the offline-partitioned scheduler of §3.1.1: basestation i
// owns cores [i·c, (i+1)·c) where c = ⌈Tmax⌉ (in milliseconds), and
// subframe j of basestation i runs on core i·c + (j mod c). Each subframe
// therefore has its core to itself for c milliseconds — longer than its
// processing budget — so partitioned never queues; all its misses come from
// processing-time variation.
type Partitioned struct {
	// CoresPerBS is the paper's ⌈Tmax⌉; 2 in the evaluation setup.
	CoresPerBS int

	env   *Env
	cores []*pcore
}

type pcore struct {
	id      int
	busy    bool
	pending []*Job // overflow queue; only populated under pathological overrun
}

// NewPartitioned creates a partitioned scheduler with c cores per BS.
func NewPartitioned(coresPerBS int) *Partitioned {
	if coresPerBS < 1 {
		coresPerBS = 1
	}
	return &Partitioned{CoresPerBS: coresPerBS}
}

// Name implements Scheduler.
func (p *Partitioned) Name() string { return fmt.Sprintf("partitioned-%d", p.CoresPerBS) }

// Attach implements Scheduler.
func (p *Partitioned) Attach(env *Env) {
	p.env = env
	p.cores = make([]*pcore, env.Cores)
	for i := range p.cores {
		p.cores[i] = &pcore{id: i}
	}
}

// coreFor returns the core assigned to a job by the offline schedule.
func (p *Partitioned) coreFor(j *Job) (*pcore, error) {
	idx := j.BS*p.CoresPerBS + j.Index%p.CoresPerBS
	if idx >= len(p.cores) {
		return nil, fmt.Errorf("sched: partitioned schedule needs core %d but only %d exist", idx, len(p.cores))
	}
	return p.cores[idx], nil
}

// OnArrival implements Scheduler.
func (p *Partitioned) OnArrival(j *Job) {
	c, err := p.coreFor(j)
	if err != nil {
		// Misconfigured run: count as drop rather than crash the sim.
		p.env.M.Record(j, OutcomeDropped, -1)
		return
	}
	if c.busy {
		// A prior job overran past this arrival (rare platform spike).
		c.pending = append(c.pending, j)
		return
	}
	p.start(c, j)
}

func (p *Partitioned) start(c *pcore, j *Job) {
	c.busy = true
	serialExec(p.env, c.id, j, 0, false, func(o Outcome, proc float64) {
		p.env.M.Record(j, o, proc)
		p.env.M.RecordGap(j, o, p.env.Eng.Now())
		c.busy = false
		if len(c.pending) > 0 {
			next := c.pending[0]
			c.pending = c.pending[1:]
			p.start(c, next)
		}
	})
}

// Finalize implements Scheduler.
func (p *Partitioned) Finalize() {}
