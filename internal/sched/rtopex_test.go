package sched

import (
	"testing"

	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
	"rtopex/internal/transport"
)

// jitteryTransport exposes early arrivals: the sampler draws below the
// expectation half of the time, so migrated batches planned against the
// expected arrival can be preempted by real ones.
type jitteryTransport struct {
	mean, spread float64
}

func (j jitteryTransport) Sample(r *stats.RNG) float64 {
	return j.mean + (r.Float64()-0.5)*2*j.spread
}

func jitteryWorkload(t *testing.T, subframes int, seed uint64) *Workload {
	t.Helper()
	w, err := BuildWorkload(WorkloadConfig{
		Basestations: 4, Subframes: subframes, Antennas: 2, Bandwidth: lte.BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: model.PaperGPP, Jitter: model.DefaultJitter, IterLaw: model.DefaultIterationLaw,
		Profiles: trace.DefaultProfiles, FixedMCS: -1,
		Transport:      jitteryTransport{mean: 550, spread: 120},
		ExpectedRTT2US: 550,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRTOPEXPreemptionUnderJitteryTransport(t *testing.T) {
	// Early actual arrivals must preempt hosted batches and trigger the
	// recovery path — the inaccurate-migration-decision scenario of §3.2.
	w := jitteryWorkload(t, 8000, 1)
	r, err := Run(w, NewRTOPEX(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions == 0 {
		t.Fatal("no preemptions despite transport jitter")
	}
	if r.Recoveries == 0 {
		t.Fatal("no recoveries despite preemptions")
	}
	if r.Jobs() != 32000 {
		t.Fatalf("jobs %d", r.Jobs())
	}
}

func TestRTOPEXStillWinsUnderJitteryTransport(t *testing.T) {
	w := jitteryWorkload(t, 8000, 2)
	p, _ := Run(w, NewPartitioned(2), 8)
	r, _ := Run(w, NewRTOPEX(2), 8)
	if r.MissRate() >= p.MissRate() {
		t.Fatalf("RT-OPEX %v not below partitioned %v with jittery transport",
			r.MissRate(), p.MissRate())
	}
}

func TestRTOPEXNoWaitVariant(t *testing.T) {
	// NoWait forces recomputation instead of short waits; it must still be
	// correct (all jobs accounted) and not better than the default.
	w := testWorkload(t, 5000, 550, 3)
	def, _ := Run(w, NewRTOPEX(2), 8)
	nw := NewRTOPEX(2)
	nw.NoWait = true
	m, err := Run(w, nw, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs() != def.Jobs() {
		t.Fatal("jobs differ")
	}
	if m.Misses() < def.Misses() {
		t.Fatalf("no-wait (%d misses) beat wait-if-cheaper (%d)", m.Misses(), def.Misses())
	}
	if m.Recoveries <= def.Recoveries {
		t.Fatalf("no-wait should recover more often: %d vs %d", m.Recoveries, def.Recoveries)
	}
}

func TestRTOPEXPerSubtaskDelta(t *testing.T) {
	// The listing-literal δ-per-subtask accounting migrates fewer subtasks
	// into the same windows.
	w := testWorkload(t, 5000, 550, 4)
	def, _ := Run(w, NewRTOPEX(2), 8)
	ps := NewRTOPEX(2)
	ps.PerSubtaskDelta = true
	m, _ := Run(w, ps, 8)
	if m.FFTSubtasksMigrated >= def.FFTSubtasksMigrated {
		t.Fatalf("per-subtask δ migrated %d FFT subtasks, default %d",
			m.FFTSubtasksMigrated, def.FFTSubtasksMigrated)
	}
	// It must remain a functioning scheduler.
	if m.MissRate() > 10*def.MissRate()+1e-3 {
		t.Fatalf("per-subtask δ miss rate %v implausibly high vs %v", m.MissRate(), def.MissRate())
	}
}

func TestRTOPEXGreedyNotBetter(t *testing.T) {
	w := testWorkload(t, 5000, 550, 5)
	def, _ := Run(w, NewRTOPEX(2), 8)
	g := NewRTOPEX(2)
	g.GreedyAll = true
	m, _ := Run(w, g, 8)
	if m.Jobs() != def.Jobs() {
		t.Fatal("jobs differ")
	}
	// Greedy over-offloads; it must not beat the balanced default.
	if m.Misses() < def.Misses() {
		t.Fatalf("greedy (%d) beat balanced (%d)", m.Misses(), def.Misses())
	}
}

func TestRTOPEXMigrationDisabledEqualsPartitioned(t *testing.T) {
	// With both task types disabled, RT-OPEX is its underlying partitioned
	// schedule: identical outcome counts on the same workload.
	w := testWorkload(t, 4000, 550, 6)
	p, _ := Run(w, NewPartitioned(2), 8)
	r := NewRTOPEX(2)
	r.MigrateFFT = false
	r.MigrateDecode = false
	m, _ := Run(w, r, 8)
	// Drop granularity differs slightly (partitioned checks slack per
	// decode iteration; RT-OPEX checks the planned decode lump), so allow
	// a hair of divergence but no systematic gap.
	if diff := m.Misses() - p.Misses(); diff < -3 || diff > 3 {
		t.Fatalf("disabled RT-OPEX missed %d, partitioned %d", m.Misses(), p.Misses())
	}
	if m.MigrationBatches != 0 || m.FFTSubtasksMigrated != 0 || m.DecodeSubtasksMigrated != 0 {
		t.Fatal("migrations occurred while disabled")
	}
}

func TestRTOPEXDecodeOnlyCarriesMostGain(t *testing.T) {
	// The decode task dominates Trxproc, so decode-only migration should
	// recover most of RT-OPEX's advantage while FFT-only recovers little.
	w := testWorkload(t, 8000, 600, 7)
	p, _ := Run(w, NewPartitioned(2), 8)
	full, _ := Run(w, NewRTOPEX(2), 8)
	dec := NewRTOPEX(2)
	dec.MigrateFFT = false
	donly, _ := Run(w, dec, 8)
	fft := NewRTOPEX(2)
	fft.MigrateDecode = false
	fonly, _ := Run(w, fft, 8)

	gain := func(m *Metrics) float64 {
		return float64(p.Misses() - m.Misses())
	}
	if gain(full) <= 0 {
		t.Skip("no headroom at this seed")
	}
	if gain(donly) < 0.7*gain(full) {
		t.Fatalf("decode-only gain %v < 70%% of full gain %v", gain(donly), gain(full))
	}
	if gain(fonly) > gain(donly) {
		t.Fatalf("fft-only gain %v exceeds decode-only %v", gain(fonly), gain(donly))
	}
}

func TestRTOPEXDeltaSweepMonotoneMigration(t *testing.T) {
	w := testWorkload(t, 3000, 600, 8)
	prevMigrated := 1 << 30
	for _, delta := range []float64{0, 20, 80, 320} {
		r := NewRTOPEX(2)
		r.DeltaUS = delta
		m, err := Run(w, r, 8)
		if err != nil {
			t.Fatal(err)
		}
		total := m.FFTSubtasksMigrated + m.DecodeSubtasksMigrated
		if total > prevMigrated {
			t.Fatalf("migrated subtasks rose from %d to %d as δ grew to %v",
				prevMigrated, total, delta)
		}
		prevMigrated = total
	}
}

func TestRTOPEXSingleCorePerBS(t *testing.T) {
	// ⌈Tmax⌉ = 1 leaves each basestation a single core; migration targets
	// are other basestations' cores. The scheduler must stay correct.
	w := testWorkload(t, 3000, 450, 9)
	r, err := Run(w, NewRTOPEX(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs() != 12000 {
		t.Fatalf("jobs %d", r.Jobs())
	}
	p, _ := Run(w, NewPartitioned(1), 4)
	if r.Misses() > p.Misses() {
		t.Fatalf("RT-OPEX (%d) worse than partitioned (%d) at 1 core/BS", r.Misses(), p.Misses())
	}
}

func TestRTOPEXInsufficientCores(t *testing.T) {
	w := testWorkload(t, 500, 500, 10)
	m, err := Run(w, NewRTOPEX(2), 4) // needs 8
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs() != 2000 {
		t.Fatalf("jobs %d", m.Jobs())
	}
	if m.Misses() < 900 {
		t.Fatalf("expected ~half dropped, got %d", m.Misses())
	}
}

func TestAlgorithm1NeverLeavesZeroLocal(t *testing.T) {
	// Whatever the windows, at least one subtask must stay local (the
	// processing thread combines results).
	r := stats.NewRNG(11)
	for trial := 0; trial < 2000; trial++ {
		p := 2 + r.Intn(27)
		tp := 1 + r.Float64()*250
		free := make([]float64, 1+r.Intn(7))
		for i := range free {
			free[i] = r.Float64() * 3000
		}
		greedy := r.Intn(2) == 0
		counts := Algorithm1(p, tp, 20, false, greedy, free)
		total := 0
		for _, n := range counts {
			total += n
		}
		if total >= p {
			t.Fatalf("all %d subtasks migrated (greedy=%v)", p, greedy)
		}
	}
}

func TestPredictedPreemptionAccountsInFlight(t *testing.T) {
	// Regression test for the in-flight blindness bug: a subframe
	// generated before `now` but still in transit must bound the window.
	r := NewRTOPEX(2)
	env := &Env{ExpectedRTT2: 400, SubframesPerBS: 100}
	r.env = env
	k := &rcore{id: 0, bs: 0, slot: 0}
	// At t = 2067 µs, core 0's subframe idx 2 (gen 2000) is in flight and
	// expected at 2400 — not at the next tick 4000.
	if got := r.predictedNextPreemption(k, 2067); got != 2400 {
		t.Fatalf("predicted %v, want 2400 (in-flight subframe)", got)
	}
	// After it arrives, the next one is idx 4 at 4400.
	if got := r.predictedNextPreemption(k, 2500); got != 4400 {
		t.Fatalf("predicted %v, want 4400", got)
	}
	// Odd-slot core: first arrival at 1000 + 400.
	k1 := &rcore{id: 1, bs: 0, slot: 1}
	if got := r.predictedNextPreemption(k1, 0); got != 1400 {
		t.Fatalf("predicted %v, want 1400", got)
	}
	// Past the end of the trace: +Inf.
	env.SubframesPerBS = 3
	if got := r.predictedNextPreemption(k, 2500); !isInf(got) {
		t.Fatalf("predicted %v past trace end, want +Inf", got)
	}
}

func isInf(x float64) bool { return x > 1e30 }

func TestFixedMCSHighLoadSweep(t *testing.T) {
	// At fixed MCS 27 and RTT/2 = 500, partitioned must exceed the 1e-2
	// threshold while RT-OPEX stays under it (Fig. 17's +15% claim).
	w, err := BuildWorkload(WorkloadConfig{
		Basestations: 4, Subframes: 8000, Antennas: 2, Bandwidth: lte.BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: model.PaperGPP, Jitter: model.DefaultJitter, IterLaw: model.DefaultIterationLaw,
		FixedMCS:  27,
		Transport: transport.FixedPath{OneWay: 500}, ExpectedRTT2US: 500, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Run(w, NewPartitioned(2), 8)
	r, _ := Run(w, NewRTOPEX(2), 8)
	if p.MissRate() < 1e-2 {
		t.Fatalf("partitioned at MCS 27: %v, want > 1e-2", p.MissRate())
	}
	if r.MissRate() > 1e-2 {
		t.Fatalf("rt-opex at MCS 27: %v, want < 1e-2", r.MissRate())
	}
}
