package sched

import (
	"testing"
	"testing/quick"

	"rtopex/internal/stats"
)

func TestAlgorithm1Requirements(t *testing.T) {
	// Property check of R1–R3 across random inputs.
	r := stats.NewRNG(1)
	f := func(raw uint32) bool {
		p := int(raw%28) + 2
		tp := 1 + r.Float64()*200
		delta := r.Float64() * 40
		free := make([]float64, 1+r.Intn(6))
		for i := range free {
			free[i] = r.Float64() * 1500
		}
		counts := Algorithm1(p, tp, delta, false, false, free)
		s := p
		maxoff := 0
		for k, n := range counts {
			if n < 0 {
				return false
			}
			if n == 0 {
				continue
			}
			// R1: batch fits the free window.
			if delta+float64(n)*tp > free[k]+1e-9 {
				return false
			}
			// R3 was applied against the S at allocation time; verify the
			// global invariant instead: local remainder ≥ every batch (R2).
			if n > maxoff {
				maxoff = n
			}
			s -= n
		}
		// Local share must remain at least the largest batch and ≥ 1.
		return s >= maxoff && s >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1HalvesOnOneIdleCore(t *testing.T) {
	// Plenty of free time: exactly ⌊S/2⌋ should migrate.
	counts := Algorithm1(28, 4, 20, false, false, []float64{10000})
	if counts[0] != 14 {
		t.Fatalf("migrated %d of 28, want 14", counts[0])
	}
	counts = Algorithm1(6, 175, 20, false, false, []float64{10000})
	if counts[0] != 3 {
		t.Fatalf("migrated %d of 6, want 3", counts[0])
	}
}

func TestAlgorithm1LimitedWindow(t *testing.T) {
	// Window fits only 2 subtasks after δ.
	counts := Algorithm1(6, 175, 20, false, false, []float64{400})
	if counts[0] != 2 {
		t.Fatalf("migrated %d, want 2 (window 400 = δ20 + 2×175)", counts[0])
	}
	// Window smaller than δ: nothing migrates.
	counts = Algorithm1(6, 175, 20, false, false, []float64{15})
	if counts[0] != 0 {
		t.Fatalf("migrated %d into a 15 µs window", counts[0])
	}
}

func TestAlgorithm1PerSubtaskDelta(t *testing.T) {
	// The listing's limoff = ⌊fck/(tp+δ)⌋.
	counts := Algorithm1(6, 175, 20, true, false, []float64{400})
	if counts[0] != 2 { // ⌊400/195⌋ = 2
		t.Fatalf("per-subtask δ migrated %d, want 2", counts[0])
	}
	counts = Algorithm1(28, 4, 20, true, false, []float64{100})
	if counts[0] != 4 { // ⌊100/24⌋ = 4
		t.Fatalf("per-subtask δ migrated %d, want 4", counts[0])
	}
}

func TestAlgorithm1MultiCoreBalance(t *testing.T) {
	// R2 keeps the local thread the last to finish: after allocating to
	// core 1, allocations to core 2 are bounded by S - maxoff.
	counts := Algorithm1(12, 100, 0, false, false, []float64{10000, 10000})
	// Core 1 gets ⌊12/2⌋ = 6; then S=6, maxoff=6 ⇒ core 2 gets min(0,...,3) = 0.
	if counts[0] != 6 || counts[1] != 0 {
		t.Fatalf("allocation %v, want [6 0]", counts)
	}
	// With a smaller first window both cores contribute.
	counts = Algorithm1(12, 100, 0, false, false, []float64{320, 10000})
	// Core 1: min(12, 3, 6) = 3; core 2: min(12-3-... S=9, maxoff=3): min(9-3, big, 4) = 4.
	if counts[0] != 3 || counts[1] != 4 {
		t.Fatalf("allocation %v, want [3 4]", counts)
	}
}

func TestAlgorithm1Greedy(t *testing.T) {
	counts := Algorithm1(12, 100, 0, false, true, []float64{10000})
	if counts[0] != 11 { // greedy keeps only one local subtask
		t.Fatalf("greedy migrated %d, want 11", counts[0])
	}
}

func TestAlgorithm1Degenerate(t *testing.T) {
	if c := Algorithm1(1, 100, 20, false, false, []float64{1000}); c[0] != 0 {
		t.Fatal("single subtask must not migrate")
	}
	if c := Algorithm1(0, 100, 20, false, false, []float64{1000}); c[0] != 0 {
		t.Fatal("zero subtasks must not migrate")
	}
	if c := Algorithm1(10, 0, 20, false, false, []float64{1000}); c[0] != 0 {
		t.Fatal("zero tp must not migrate")
	}
	if c := Algorithm1(10, 100, 20, false, false, nil); len(c) != 0 {
		t.Fatal("no cores must return empty")
	}
}

func TestAlgorithm1StopsWhenExhausted(t *testing.T) {
	// S drains to 1 before all cores are used.
	counts := Algorithm1(4, 10, 0, false, false, []float64{1000, 1000, 1000, 1000})
	total := 0
	for _, n := range counts {
		total += n
	}
	if total > 3 {
		t.Fatalf("migrated %d of 4 subtasks", total)
	}
}
