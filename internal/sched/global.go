package sched

import (
	"math"
	"sort"
)

// CacheModel captures the global scheduler's cache-thrashing overhead
// (§4.4, Fig. 19): when a core picks up a subframe of a different
// basestation than it last processed, its working set (OAI-style per-BS
// state, subframe buffers) must be refetched, adding a heavy-tailed refill
// penalty. Partitioned cores never switch basestations and never pay it.
type CacheModel struct {
	Enabled bool
	// MeanUS and Sigma parameterize the lognormal refill penalty. The
	// defaults put the bulk around 40–60 µs with a tail reaching ~150 µs,
	// which reproduces Fig. 19's ~80 µs inflation for the slowest decile.
	MedianUS float64
	Sigma    float64
}

// DefaultCacheModel is the Fig. 19 calibration.
var DefaultCacheModel = CacheModel{Enabled: true, MedianUS: 45, Sigma: 0.5}

// Global is the shared-queue scheduler of §3.1.2: arrivals enter one queue;
// a dispatcher hands the earliest-deadline job to an idle core (EDF equals
// FIFO when all basestations share a transport delay). A job still running
// at its deadline is terminated. Its overheads — per-dispatch locking and
// cache refills on basestation switches — are what make it underperform
// partitioned in the paper despite its flexibility.
type Global struct {
	// DispatchOverheadUS models the shared-queue locking and semaphore
	// wakeup cost per dispatch.
	DispatchOverheadUS float64
	Cache              CacheModel

	env       *Env
	cores     []*gcore
	queue     []*Job   // kept sorted by deadline (EDF)
	idleCores []*gcore // scratch to avoid per-arrival allocation
}

type gcore struct {
	id     int
	busy   bool
	lastBS int
}

// NewGlobal creates a global scheduler with the paper's default overheads.
func NewGlobal() *Global {
	return &Global{DispatchOverheadUS: 15, Cache: DefaultCacheModel}
}

// Name implements Scheduler.
func (g *Global) Name() string { return "global" }

// Attach implements Scheduler.
func (g *Global) Attach(env *Env) {
	g.env = env
	g.cores = make([]*gcore, env.Cores)
	for i := range g.cores {
		g.cores[i] = &gcore{id: i, lastBS: -1}
	}
}

// OnArrival implements Scheduler.
func (g *Global) OnArrival(j *Job) {
	if c := g.idleCore(); c != nil {
		g.dispatch(c, j)
		return
	}
	g.enqueue(j)
}

// idleCore picks uniformly among idle cores: the semaphore wakeup order of
// the real implementation is effectively arbitrary, and random choice is
// what makes cache reuse degrade as the core count grows.
func (g *Global) idleCore() *gcore {
	idle := g.idleCores[:0]
	for _, c := range g.cores {
		if !c.busy {
			idle = append(idle, c)
		}
	}
	g.idleCores = idle
	if len(idle) == 0 {
		return nil
	}
	return idle[g.env.RNG.Intn(len(idle))]
}

func (g *Global) enqueue(j *Job) {
	i := sort.Search(len(g.queue), func(i int) bool { return g.queue[i].Deadline > j.Deadline })
	g.queue = append(g.queue, nil)
	copy(g.queue[i+1:], g.queue[i:])
	g.queue[i] = j
}

func (g *Global) dispatch(c *gcore, j *Job) {
	extra := g.DispatchOverheadUS
	if g.Cache.Enabled && c.lastBS != j.BS {
		extra += g.env.RNG.LogNormal(math.Log(g.Cache.MedianUS), g.Cache.Sigma)
	}
	c.busy = true
	c.lastBS = j.BS
	serialExec(g.env, c.id, j, extra, true, func(o Outcome, proc float64) {
		g.env.M.Record(j, o, proc)
		g.env.M.RecordGap(j, o, g.env.Eng.Now())
		c.busy = false
		g.drain(c)
	})
}

// drain hands the next feasible queued job to a freed core, dropping jobs
// whose deadlines already passed.
func (g *Global) drain(c *gcore) {
	now := g.env.Eng.Now()
	for len(g.queue) > 0 {
		j := g.queue[0]
		g.queue = g.queue[1:]
		if j.Deadline <= now {
			g.env.M.Record(j, OutcomeDropped, -1)
			continue
		}
		g.dispatch(c, j)
		return
	}
}

// Finalize implements Scheduler: queued jobs that never got a core are
// misses.
func (g *Global) Finalize() {
	for _, j := range g.queue {
		g.env.M.Record(j, OutcomeDropped, -1)
	}
	g.queue = nil
}
