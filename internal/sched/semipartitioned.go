package sched

// SemiPartitioned is the task-level-migration baseline from the
// semi-partitioned literature the paper cites (§1, Bastoni et al.): jobs
// are partitioned as usual, but a job may be pushed — whole, not split —
// to another idle core when its home core cannot serve it.
//
// Contrasting it with RT-OPEX isolates the value of *subtask* granularity,
// and the contrast is stark: under the paper's provisioning (⌈Tmax⌉ cores
// per basestation) the home core is free at every arrival, so the binding
// constraint is the job's own deadline — which whole-job migration cannot
// relax. Semi-partitioned therefore collapses to plain partitioned there
// (verified by tests), while RT-OPEX still wins by shortening the critical
// path. Task-level migration only pays off when cores are under-
// provisioned and jobs queue behind their home core.
type SemiPartitioned struct {
	// CoresPerBS is the underlying partitioned width.
	CoresPerBS int
	// PushOverheadUS is charged when a job migrates to a foreign core
	// (full state transfer: IQ buffers plus context, strictly more data
	// than RT-OPEX's per-batch fetch).
	PushOverheadUS float64

	env   *Env
	cores []*spcore
}

type spcore struct {
	id      int
	bs      int
	slot    int
	busy    bool
	pending []*Job
}

// NewSemiPartitioned creates the task-level-migration baseline.
func NewSemiPartitioned(coresPerBS int) *SemiPartitioned {
	if coresPerBS < 1 {
		coresPerBS = 1
	}
	return &SemiPartitioned{CoresPerBS: coresPerBS, PushOverheadUS: 40}
}

// Name implements Scheduler.
func (s *SemiPartitioned) Name() string { return "semi-partitioned" }

// Attach implements Scheduler.
func (s *SemiPartitioned) Attach(env *Env) {
	s.env = env
	s.cores = make([]*spcore, env.Cores)
	for i := range s.cores {
		s.cores[i] = &spcore{id: i, bs: i / s.CoresPerBS, slot: i % s.CoresPerBS}
	}
}

// OnArrival implements Scheduler.
func (s *SemiPartitioned) OnArrival(j *Job) {
	idx := j.BS*s.CoresPerBS + j.Index%s.CoresPerBS
	if idx >= len(s.cores) {
		s.env.M.Record(j, OutcomeDropped, -1)
		return
	}
	home := s.cores[idx]
	now := s.env.Eng.Now()

	// If the whole job fits neither its home core's schedule nor the
	// serial budget, try pushing it to a foreign idle core whose window
	// admits the entire job plus the push overhead.
	serial := j.Tasks.Total()
	fitsHome := !home.busy && now+serial <= j.Deadline
	if fitsHome {
		s.start(home, j, 0)
		return
	}
	if host := s.findHost(j, now, serial); host != nil {
		s.start(host, j, s.PushOverheadUS)
		return
	}
	if home.busy {
		home.pending = append(home.pending, j)
		return
	}
	// Run at home anyway; per-task slack checks will drop what cannot
	// finish, matching the partitioned behavior.
	s.start(home, j, 0)
}

// findHost returns an idle foreign core whose window to its own next
// subframe admits the whole job, or nil.
func (s *SemiPartitioned) findHost(j *Job, now, serial float64) *spcore {
	need := serial + s.PushOverheadUS
	if now+need > j.Deadline {
		return nil
	}
	var best *spcore
	bestWindow := 0.0
	for _, k := range s.cores {
		if k.busy || len(k.pending) > 0 {
			continue
		}
		if k.bs == j.BS && k.slot == j.Index%s.CoresPerBS {
			continue // home core, handled separately
		}
		window := s.nextOwnArrival(k, now) - now
		if window >= need && window > bestWindow {
			best, bestWindow = k, window
		}
	}
	return best
}

// nextOwnArrival mirrors RT-OPEX's prediction: the frame clock plus the
// expected transport latency.
func (s *SemiPartitioned) nextOwnArrival(k *spcore, now float64) float64 {
	// Spare cores beyond the provisioned basestations never receive own
	// subframes: their window is unbounded.
	if k.bs >= len(s.env.M.PerBS) {
		return 1e18
	}
	c := float64(s.CoresPerBS)
	first := float64(k.slot)*1000 + s.env.ExpectedRTT2
	t := first
	if now >= first {
		m := int((now-first)/(1000*c)) + 1
		t = first + float64(m)*1000*c
	}
	idx := k.slot + int((t-first)/1000+0.5)
	if idx >= s.env.SubframesPerBS {
		return 1e18
	}
	return t
}

func (s *SemiPartitioned) start(c *spcore, j *Job, extra float64) {
	c.busy = true
	serialExec(s.env, c.id, j, extra, false, func(o Outcome, proc float64) {
		s.env.M.Record(j, o, proc)
		s.env.M.RecordGap(j, o, s.env.Eng.Now())
		c.busy = false
		if len(c.pending) > 0 {
			next := c.pending[0]
			c.pending = c.pending[1:]
			s.OnArrival(next)
		}
	})
}

// Finalize implements Scheduler.
func (s *SemiPartitioned) Finalize() {}

var _ Scheduler = (*SemiPartitioned)(nil)
