package sched

import (
	"testing"

	"rtopex/internal/trace"
)

func TestOverrideLoadsRewritesJobs(t *testing.T) {
	w := testWorkload(t, 200, 500, 90)
	// Force every subframe of BS 0 to full load and BS 1..3 to silence.
	traces := make([]trace.Trace, 4)
	for bs := range traces {
		tr := make(trace.Trace, 200)
		if bs == 0 {
			for i := range tr {
				tr[i] = 1
			}
		}
		traces[bs] = tr
	}
	if err := OverrideLoads(w, traces); err != nil {
		t.Fatal(err)
	}
	for j := range w.Jobs[0] {
		if w.Jobs[0][j].MCS != 27 || w.Jobs[0][j].DecodeSubtasks != 6 {
			t.Fatalf("BS0 job %d not MCS 27 after override", j)
		}
	}
	for j := range w.Jobs[1] {
		if w.Jobs[1][j].MCS != 0 || w.Jobs[1][j].DecodeSubtasks != 1 {
			t.Fatalf("BS1 job %d not MCS 0 after override", j)
		}
	}
	// Arrival times and deadlines must be untouched.
	if w.Jobs[0][5].Arrival != 5000+500 || w.Jobs[0][5].Deadline != 5000+2000 {
		t.Fatal("override disturbed timing fields")
	}
	// The overridden workload must still simulate cleanly.
	m, err := Run(w, NewRTOPEX(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs() != 800 {
		t.Fatalf("jobs %d", m.Jobs())
	}
}

func TestOverrideLoadsValidation(t *testing.T) {
	w := testWorkload(t, 50, 500, 91)
	if err := OverrideLoads(w, make([]trace.Trace, 2)); err == nil {
		t.Fatal("wrong trace count accepted")
	}
	bad := make([]trace.Trace, 4)
	for i := range bad {
		bad[i] = make(trace.Trace, 49) // wrong length
	}
	if err := OverrideLoads(w, bad); err == nil {
		t.Fatal("wrong trace length accepted")
	}
}

func TestOverrideLoadsDeterministic(t *testing.T) {
	mk := func() *Workload {
		w := testWorkload(t, 100, 500, 92)
		traces := make([]trace.Trace, 4)
		for bs := range traces {
			traces[bs] = trace.NewGenerator(trace.DefaultProfiles[bs], 77).Generate(100)
		}
		if err := OverrideLoads(w, traces); err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := mk(), mk()
	for bs := range a.Jobs {
		for j := range a.Jobs[bs] {
			if a.Jobs[bs][j] != b.Jobs[bs][j] {
				t.Fatal("override not deterministic")
			}
		}
	}
}
