package sched

import (
	"sync/atomic"

	"rtopex/internal/flight"
)

// Flight-recorder integration: a simulation run with a recorder armed —
// per-run via RunConfig.Flight or process-wide via ArmFlight — tees a
// flight.Tap into its event stream, so deadline misses, drops and overruns
// freeze miss dossiers without the caller asking for tracing. A run with
// no recorder armed is untouched: env.Trace stays nil and the emit sites'
// nil check keeps the fast path event-free.

// armedFlight is the process-wide recorder (ArmFlight). RunConfig.Flight
// overrides it per run.
var armedFlight atomic.Pointer[flight.Recorder]

// ArmFlight arms rec for every subsequent run in the process that does not
// carry its own RunConfig.Flight — how the sweep engine's workers record
// misses without threading a recorder through every experiment config.
// The returned disarm restores the previous recorder.
func ArmFlight(rec *flight.Recorder) (disarm func()) {
	prev := armedFlight.Swap(rec)
	return func() { armedFlight.Store(prev) }
}

// ArmedFlight returns the process-wide recorder, nil when disarmed.
func ArmedFlight() *flight.Recorder { return armedFlight.Load() }

// flightTap builds the run's tap: job deadlines resolve from the workload,
// scheduler state from the scheduler's own StateProvider (when it is one)
// plus the engine clock and queue depth.
func flightTap(rec *flight.Recorder, w *Workload, s Scheduler, rc RunConfig, env *Env) *flight.Tap {
	return rec.NewTap(flight.TapConfig{
		Label:    s.Name(),
		BudgetUS: RxBudgetUS,
		Job: func(bs, sf int) (float64, float64, bool) {
			if bs < 0 || bs >= len(w.Jobs) || sf < 0 || sf >= len(w.Jobs[bs]) {
				return 0, 0, false
			}
			j := &w.Jobs[bs][sf]
			return j.Arrival, j.Deadline, true
		},
		Reports: rc.FlightReports,
		State: func() flight.SchedState {
			st := flight.SchedState{
				Scheduler:           s.Name(),
				NowUS:               env.Eng.Now(),
				PendingEngineEvents: env.Eng.Pending(),
			}
			if sp, ok := s.(flight.StateProvider); ok {
				ps := sp.FlightState()
				st.QueueDepths = ps.QueueDepths
				st.RunningJobs = ps.RunningJobs
				st.InFlightBatches = ps.InFlightBatches
			}
			return st
		},
	})
}

// FlightState implements flight.StateProvider: per-core backlog, cores
// mid-subframe, and cores hosting an in-flight migration batch (Fig. 12
// state 2).
func (s *RTOPEX) FlightState() flight.SchedState {
	st := flight.SchedState{QueueDepths: make([]int, len(s.cores))}
	for i, c := range s.cores {
		st.QueueDepths[i] = len(c.pending)
		if c.running {
			st.RunningJobs++
		}
		if c.batch != nil {
			st.InFlightBatches++
		}
	}
	return st
}

// FlightState implements flight.StateProvider.
func (p *Partitioned) FlightState() flight.SchedState {
	st := flight.SchedState{QueueDepths: make([]int, len(p.cores))}
	for i, c := range p.cores {
		st.QueueDepths[i] = len(c.pending)
		if c.busy {
			st.RunningJobs++
		}
	}
	return st
}

// FlightState implements flight.StateProvider. Global has one shared EDF
// queue, reported as a single depth.
func (g *Global) FlightState() flight.SchedState {
	st := flight.SchedState{QueueDepths: []int{len(g.queue)}}
	for _, c := range g.cores {
		if c.busy {
			st.RunningJobs++
		}
	}
	return st
}

var (
	_ flight.StateProvider = (*RTOPEX)(nil)
	_ flight.StateProvider = (*Partitioned)(nil)
	_ flight.StateProvider = (*Global)(nil)
)
