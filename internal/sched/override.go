package sched

import (
	"fmt"

	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

// OverrideLoads replaces every job's load-derived fields (MCS, iteration
// count, task times, subtask decomposition) with values computed from the
// provided per-basestation traces — the replay path for externally captured
// traffic. Arrival times and platform jitter are preserved from the
// original workload; iteration counts and decodability are resampled
// deterministically from the workload seed.
func OverrideLoads(w *Workload, traces []trace.Trace) error {
	if len(traces) != len(w.Jobs) {
		return fmt.Errorf("sched: %d traces for %d basestations", len(traces), len(w.Jobs))
	}
	cfg := w.Cfg
	for bs := range w.Jobs {
		if len(traces[bs]) != len(w.Jobs[bs]) {
			return fmt.Errorf("sched: trace %d has %d subframes, workload has %d",
				bs, len(traces[bs]), len(w.Jobs[bs]))
		}
		rng := stats.NewRNG(cfg.Seed ^ (0x0eed + uint64(bs)*0x9e37))
		ants := cfg.antennasFor(bs)
		for j := range w.Jobs[bs] {
			mcs := trace.MCS(traces[bs][j])
			info, err := lte.MCSTable(mcs)
			if err != nil {
				return err
			}
			d, err := lte.SubcarrierLoad(mcs, cfg.Bandwidth)
			if err != nil {
				return err
			}
			tbs, _, err := lte.TransportBlockSize(mcs, cfg.Bandwidth.PRB)
			if err != nil {
				return err
			}
			c := codeBlocks(tbs)
			l := cfg.IterLaw.Sample(rng, mcs, cfg.SNRdB, cfg.Lm)
			tasks := cfg.Params.Tasks(ants, info.Scheme.Order(), d, l)
			job := &w.Jobs[bs][j]
			job.MCS = mcs
			job.L = l
			job.Decodable = cfg.IterLaw.Decodable(rng, mcs, cfg.SNRdB, cfg.Lm, l)
			job.Tasks = tasks
			job.FFTSubtasks = model.FFTSubtaskCount(ants)
			job.FFTSubtaskUS = tasks.FFT / float64(model.FFTSubtaskCount(ants))
			job.DecodeSubtasks = c
			job.DecodeSubtaskUS = tasks.Decode / float64(c)
		}
	}
	return nil
}
