package sched

import (
	"bytes"
	"testing"

	"rtopex/internal/model"
	"rtopex/internal/platform"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

// TestRTOPEXAbandonedBatchCountersReversed is the regression test for the
// migration-accounting bug: planTask booked MigrationBatches/FFTBatches/
// DecodeBatches *before* the owner's drop check, so batches abandoned by an
// immediate drop still inflated the Fig. 16 migration denominators. The
// fix decrements the counters in abandon().
func TestRTOPEXAbandonedBatchCountersReversed(t *testing.T) {
	eng := platform.New()
	m := NewMetrics("rt-opex", 2)
	r := NewRTOPEX(2)
	ring := trace.NewRing(0)
	env := &Env{
		Eng: eng, M: m, Cores: 4, RNG: stats.NewRNG(1),
		ExpectedRTT2: 0, SubframesPerBS: 10, Trace: ring,
	}
	r.Attach(env)

	// 50 FFT subtasks of 100 µs against a 350 µs deadline: Algorithm 1
	// offloads a batch to each of the three idle cores (limoff =
	// ⌊(350−δ)/100⌋ = 3 each), but the 41 local subtasks still blow the
	// deadline, so the job drops at the FFT slack check and every batch
	// must be abandoned.
	j := &Job{
		BS: 0, Index: 0, L: 1, Decodable: true,
		Arrival: 0, Deadline: 350,
		Tasks:       model.TaskTimes{FFT: 5000, Demod: 10, Decode: 10},
		FFTSubtasks: 50, FFTSubtaskUS: 100,
		DecodeSubtasks: 1, DecodeSubtaskUS: 10,
	}
	eng.At(0, func() { r.OnArrival(j) })
	eng.Run()

	if got := m.PerBS[0].Dropped; got != 1 {
		t.Fatalf("dropped %d, want 1 (scenario did not trigger the drop path)", got)
	}
	var planned, abandoned int
	for _, e := range ring.Events() {
		switch e.Event {
		case trace.EvMigPlan:
			planned++
		case trace.EvMigAbandon:
			abandoned++
		}
	}
	if planned == 0 {
		t.Fatal("no batches planned (scenario did not trigger migration)")
	}
	if abandoned != planned {
		t.Fatalf("planned %d batches but abandoned %d", planned, abandoned)
	}
	// The bug: these stayed at `planned` after the drop.
	if m.MigrationBatches != 0 || m.FFTBatches != 0 || m.DecodeBatches != 0 {
		t.Fatalf("abandoned batches left counters inflated: mig=%d fft=%d decode=%d",
			m.MigrationBatches, m.FFTBatches, m.DecodeBatches)
	}
	if m.FFTSubtasksMigrated != 0 {
		t.Fatalf("abandoned batches counted as migrated subtasks: %d", m.FFTSubtasksMigrated)
	}
}

// TestRTOPEXBatchCountersMatchTrace cross-checks the counter bookkeeping on
// a full jittery run: the batches counted by Metrics must equal the planned
// batches minus the abandoned ones seen in the trace.
func TestRTOPEXBatchCountersMatchTrace(t *testing.T) {
	w := jitteryWorkload(t, 2000, 1)
	ring := trace.NewRing(0)
	m, err := RunConfigured(w, NewRTOPEX(2), RunConfig{Cores: 8, Tracer: ring})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.Kind]int{}
	for _, e := range ring.Events() {
		counts[e.Event]++
	}
	planned, abandoned := counts[trace.EvMigPlan], counts[trace.EvMigAbandon]
	if m.MigrationBatches != planned-abandoned {
		t.Fatalf("MigrationBatches %d != planned %d - abandoned %d",
			m.MigrationBatches, planned, abandoned)
	}
	if m.FFTBatches+m.DecodeBatches != m.MigrationBatches {
		t.Fatalf("fft %d + decode %d != total %d", m.FFTBatches, m.DecodeBatches, m.MigrationBatches)
	}
	if m.Preemptions != counts[trace.EvMigPreempt] {
		t.Fatalf("Preemptions %d != trace preempts %d", m.Preemptions, counts[trace.EvMigPreempt])
	}
	if m.Recoveries != counts[trace.EvMigRecompute] {
		t.Fatalf("Recoveries %d != trace recomputes %d", m.Recoveries, counts[trace.EvMigRecompute])
	}
}

// TestPartitionedGapsExcludeMisses pins the Fig. 16 gap histogram fix: only
// subframes that completed within the deadline (ACK or DecodeFail) record a
// gap. The old code also booked Late completions as zero-clamped gaps,
// deflating the distribution.
func TestPartitionedGapsExcludeMisses(t *testing.T) {
	w := testWorkload(t, 2000, 700, 2)
	m, err := Run(w, NewPartitioned(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	var ack, late, decodeFail int
	for _, b := range m.PerBS {
		ack += b.ACK
		late += b.Late
		decodeFail += b.DecodeFail
	}
	if late == 0 {
		t.Fatal("workload produced no late completions; the test does not exercise the fix")
	}
	if len(m.Gaps) != ack+decodeFail {
		t.Fatalf("gap count %d, want ack %d + decodefail %d (late=%d must not record)",
			len(m.Gaps), ack, decodeFail, late)
	}
	for _, g := range m.Gaps {
		if g < 0 {
			t.Fatalf("negative gap %v recorded", g)
		}
	}
}

// TestSchedulersPopulateGaps pins the other half of the gap fix: RT-OPEX,
// Global and SemiPartitioned used to leave Metrics.Gaps empty.
func TestSchedulersPopulateGaps(t *testing.T) {
	for _, s := range []Scheduler{NewRTOPEX(2), NewGlobal(), NewSemiPartitioned(2)} {
		w := testWorkload(t, 500, 550, 4)
		m, err := Run(w, s, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Gaps) == 0 {
			t.Fatalf("%s recorded no gaps", s.Name())
		}
	}
}

// TestTraceDeterminism runs the same workload twice and requires
// byte-identical trace exports: the simulation and the trace layer must be
// fully reproducible.
func TestTraceDeterminism(t *testing.T) {
	export := func() []byte {
		w := jitteryWorkload(t, 500, 9)
		ring := trace.NewRing(0)
		m, err := RunConfigured(w, NewRTOPEX(2), RunConfig{Cores: 8, Tracer: ring})
		if err != nil {
			t.Fatal(err)
		}
		log := &trace.EventLog{Scheduler: m.Scheduler, Cores: 8, Events: ring.Events()}
		var buf bytes.Buffer
		if err := log.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 {
		t.Fatal("empty export")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs exported different traces")
	}
}

// TestTracingDoesNotChangeMetrics: attaching a tracer must not perturb the
// simulation — metrics with and without tracing must serialize identically.
func TestTracingDoesNotChangeMetrics(t *testing.T) {
	run := func(tr trace.Tracer) []byte {
		w := jitteryWorkload(t, 500, 11)
		m, err := RunConfigured(w, NewRTOPEX(2), RunConfig{Cores: 8, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(nil), run(trace.NewRing(0))) {
		t.Fatal("tracing changed the simulation's metrics")
	}
}
