package sched

import (
	"fmt"
	"sort"

	"rtopex/internal/trace"
)

// PRAN is the comparator modeled on PRAN (Wu et al., HotNets 2014, Table 2
// row 1): compute resources are a *dynamic* shared pool and processing is
// split at subtask granularity, but — unlike RT-OPEX — the split is decided
// *before* the subframe is processed, from load information alone. The
// planner sizes each subframe's fan-out so that the *predicted* processing
// time fits the budget, predicting the turbo decoder at PredictL
// iterations; when the channel demands more iterations than predicted, the
// plan is wrong and the subframe runs long. That inability to "account for
// processing time variations due to channel conditions" is exactly the
// paper's criticism (§6).
type PRAN struct {
	// PredictL is the iteration count the planner assumes (default 2, the
	// typical value at the evaluation SNR).
	PredictL int
	// MaxFanout bounds how many cores one subframe may claim (default 4).
	MaxFanout int
	// ForkOverheadUS is charged once per parallelized task.
	ForkOverheadUS float64

	env   *Env
	busy  []bool
	queue []*Job // EDF-ordered
}

// NewPRAN creates the planner-based comparator with its defaults.
func NewPRAN() *PRAN {
	return &PRAN{PredictL: 2, MaxFanout: 4, ForkOverheadUS: 20}
}

// Name implements Scheduler.
func (p *PRAN) Name() string { return "pran" }

// Attach implements Scheduler.
func (p *PRAN) Attach(env *Env) {
	p.env = env
	p.busy = make([]bool, env.Cores)
}

// OnArrival implements Scheduler.
func (p *PRAN) OnArrival(j *Job) {
	if !p.tryStart(j) {
		p.enqueue(j)
	}
}

func (p *PRAN) freeCores() int {
	n := 0
	for _, b := range p.busy {
		if !b {
			n++
		}
	}
	return n
}

// plannedWidth returns the smallest fan-out whose predicted span fits the
// remaining budget, or 0 if even MaxFanout does not fit.
func (p *PRAN) plannedWidth(j *Job, now float64) int {
	for w := 1; w <= p.MaxFanout; w++ {
		if now+p.span(j, w, p.predictedDecode(j)) <= j.Deadline {
			return w
		}
	}
	return 0
}

// predictedDecode is the planner's decode-time estimate: actual per-
// iteration work, assumed PredictL iterations.
func (p *PRAN) predictedDecode(j *Job) float64 {
	perIter := j.Tasks.Decode / float64(j.L)
	return perIter * float64(p.PredictL)
}

// span computes a subframe's processing time when fanned over w cores.
func (p *PRAN) span(j *Job, w int, decode float64) float64 {
	part := func(serial float64, subtasks int) float64 {
		width := w
		if subtasks < width {
			width = subtasks
		}
		if width < 1 {
			width = 1
		}
		t := serial / float64(width)
		if width > 1 {
			t += p.ForkOverheadUS
		}
		return t
	}
	return part(j.Tasks.FFT, j.FFTSubtasks) + j.Tasks.Demod + part(decode, j.DecodeSubtasks)
}

// tryStart claims cores for j if the plan admits it right now.
func (p *PRAN) tryStart(j *Job) bool {
	now := p.env.Eng.Now()
	w := p.plannedWidth(j, now)
	if w == 0 {
		// The plan says it cannot fit at any width: drop up front.
		p.env.emit(-1, j, trace.EvDrop, "plan")
		p.env.M.Record(j, OutcomeDropped, -1)
		return true
	}
	if p.freeCores() < w {
		return false
	}
	claimed := make([]int, 0, w)
	for i := range p.busy {
		if !p.busy[i] {
			p.busy[i] = true
			claimed = append(claimed, i)
			if len(claimed) == w {
				break
			}
		}
	}
	if p.env.Trace != nil {
		p.env.emit(claimed[0], j, trace.EvStart, fmt.Sprintf("w=%d", w))
	}
	// Execute with the ACTUAL decode time over the planned width; the
	// plan is never revised at runtime.
	actual := p.span(j, w, p.actualDecodeWithJitter(j))
	finish := now + actual
	out := OutcomeACK
	switch {
	case finish > j.Deadline:
		out = OutcomeLate
	case !j.Decodable:
		out = OutcomeDecodeFail
	}
	p.env.emitAt(finish, claimed[0], j, trace.EvFinish, outcomeDetail(out))
	p.env.Eng.At(finish, func() {
		p.env.M.Record(j, out, actual)
		for _, c := range claimed {
			p.busy[c] = false
		}
		p.drain()
	})
	return true
}

// actualDecodeWithJitter folds the platform-error strike into the decode
// task (parity with the other schedulers' per-job error budget).
func (p *PRAN) actualDecodeWithJitter(j *Job) float64 {
	d := j.Tasks.Decode
	if j.Index%(2+j.L) >= 2 {
		d += j.JitterUS
		if d < 0 {
			d = 0
		}
	}
	return d
}

func (p *PRAN) enqueue(j *Job) {
	i := sort.Search(len(p.queue), func(i int) bool { return p.queue[i].Deadline > j.Deadline })
	p.queue = append(p.queue, nil)
	copy(p.queue[i+1:], p.queue[i:])
	p.queue[i] = j
}

// drain admits queued subframes as cores free up, dropping expired ones.
func (p *PRAN) drain() {
	now := p.env.Eng.Now()
	for len(p.queue) > 0 {
		j := p.queue[0]
		if j.Deadline <= now {
			p.queue = p.queue[1:]
			p.env.M.Record(j, OutcomeDropped, -1)
			continue
		}
		if !p.tryStart(j) {
			return
		}
		p.queue = p.queue[1:]
	}
}

// Finalize implements Scheduler.
func (p *PRAN) Finalize() {
	for _, j := range p.queue {
		p.env.M.Record(j, OutcomeDropped, -1)
	}
	p.queue = nil
}

var _ Scheduler = (*PRAN)(nil)
