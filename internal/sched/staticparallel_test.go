package sched

import (
	"strings"
	"testing"
)

func TestStaticParallelBasics(t *testing.T) {
	w := testWorkload(t, 3000, 550, 30)
	m, err := Run(w, NewStaticParallel(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs() != 12000 {
		t.Fatalf("jobs %d", m.Jobs())
	}
	if !strings.HasPrefix(m.Scheduler, "static-parallel") {
		t.Fatalf("name %q", m.Scheduler)
	}
}

func TestStaticParallelBeatsSerialPartitionedOnMisses(t *testing.T) {
	// With the same 8 cores, the static split shortens every critical
	// path, so it must miss less than plain partitioned.
	w := testWorkload(t, 8000, 650, 31)
	p, _ := Run(w, NewPartitioned(2), 8)
	s, _ := Run(w, NewStaticParallel(2), 8)
	if s.Misses() >= p.Misses() {
		t.Fatalf("static-parallel (%d) not below partitioned (%d)", s.Misses(), p.Misses())
	}
}

func TestStaticParallelWiderFanoutNeedsMoreCores(t *testing.T) {
	// 4 BSs at fan-out 4 need 16 cores; with only 8, half the
	// basestations have no group and everything they send drops.
	w := testWorkload(t, 500, 550, 32)
	m, err := Run(w, NewStaticParallel(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Misses() < 900 {
		t.Fatalf("expected ~half dropped with insufficient groups, got %d", m.Misses())
	}
	// With 16 cores everything is hosted.
	m16, _ := Run(w, NewStaticParallel(4), 16)
	if m16.MissRate() > 0.05 {
		t.Fatalf("fan-out 4 on 16 cores missing %v", m16.MissRate())
	}
}

func TestStaticParallelFanoutBoundedBySubtasks(t *testing.T) {
	// A single code block cannot be split: low-MCS jobs see no decode
	// speedup, which shows up as a decode span equal to the serial time
	// plus no fork overhead. Verify indirectly: at MCS 0 (1 code block),
	// fan-out 4 and fan-out 1 give identical miss counts.
	w4 := fixedMCSWorkload(t, 0, 600, 33)
	a, _ := Run(w4, NewStaticParallel(1), 4)
	b, _ := Run(w4, NewStaticParallel(4), 16)
	// Decode dominates at... MCS 0 decode is tiny; both should be ~0.
	if a.MissRate() > 0.01 || b.MissRate() > 0.01 {
		t.Fatalf("MCS 0 should not miss: %v / %v", a.MissRate(), b.MissRate())
	}
}

func fixedMCSWorkload(t *testing.T, mcs int, rtt2 float64, seed uint64) *Workload {
	t.Helper()
	base := testWorkload(t, 1, rtt2, seed).Cfg
	base.Subframes = 2000
	base.FixedMCS = mcs
	base.Profiles = nil
	w, err := BuildWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPerBSAntennasHeterogeneous(t *testing.T) {
	base := testWorkload(t, 1, 500, 40).Cfg
	base.Basestations = 2
	base.Subframes = 100
	base.PerBSAntennas = []int{4, 1}
	base.FixedMCS = 13
	base.Profiles = nil
	w, err := BuildWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	if w.Jobs[0][0].FFTSubtasks != 4*14 || w.Jobs[1][0].FFTSubtasks != 14 {
		t.Fatalf("per-BS FFT subtasks: %d / %d", w.Jobs[0][0].FFTSubtasks, w.Jobs[1][0].FFTSubtasks)
	}
	if w.Jobs[0][0].Tasks.FFT <= w.Jobs[1][0].Tasks.FFT {
		t.Fatal("macro cell FFT task not larger")
	}
}

func TestPerBSAntennasValidation(t *testing.T) {
	base := testWorkload(t, 1, 500, 41).Cfg
	base.PerBSAntennas = []int{2} // 4 basestations
	if _, err := BuildWorkload(base); err == nil {
		t.Fatal("short PerBSAntennas accepted")
	}
	base.PerBSAntennas = []int{2, 2, 2, -1}
	if _, err := BuildWorkload(base); err == nil {
		t.Fatal("negative antenna count accepted")
	}
}
