package sched

import (
	"fmt"

	"rtopex/internal/trace"
)

// serialExec runs one job's task sequence (FFT → demod → L decode
// iterations) on a single core, with the slack-based deadline enforcement
// of §4.1: before each task (and before each decode iteration — the finest
// granularity at which the receiver can abandon work), the executor checks
// whether the step's estimated time fits the remaining budget and drops the
// subframe otherwise.
//
// extra is time consumed before the chain starts (dispatch overhead, cache
// refill). The job's platform-error term strikes one phase, chosen
// deterministically per job, so both drop-on-slack and late-completion
// outcomes occur, as on the real platform.
//
// If terminateAtDeadline is set (the global scheduler's behavior), a job
// still running at its deadline is cut off there and the core freed at the
// deadline; otherwise the job runs to natural completion and is late.
//
// done fires on the engine at the moment the core becomes free.
func serialExec(env *Env, core int, j *Job, extra float64, terminateAtDeadline bool, done func(Outcome, float64)) {
	eng := env.Eng
	start := eng.Now()
	t := start + extra
	if env.Trace != nil {
		env.emit(core, j, trace.EvStart, "")
	}

	// Phase actual durations: estimates plus the jitter strike.
	phases := make([]float64, 0, 2+j.L)
	ests := make([]float64, 0, 2+j.L)
	perIter := j.Tasks.Decode / float64(j.L)
	ests = append(ests, j.Tasks.FFT, j.Tasks.Demod)
	for i := 0; i < j.L; i++ {
		ests = append(ests, perIter)
	}
	strike := j.Index % len(ests)
	for i, e := range ests {
		a := e
		if i == strike {
			a += j.JitterUS
			if a < 0 {
				a = 0
			}
		}
		phases = append(phases, a)
	}

	for i := range ests {
		if t+ests[i] > j.Deadline {
			// Slack insufficient: drop now and free the core.
			at := t
			if at < start {
				at = start
			}
			if env.Trace != nil {
				env.emitAt(at, core, j, trace.EvDrop, serialPhaseName(i))
			}
			eng.At(at, func() { done(OutcomeDropped, -1) })
			return
		}
		if env.Trace != nil {
			env.emitAt(t, core, j, trace.EvPhase, serialPhaseName(i))
		}
		t += phases[i]
		if terminateAtDeadline && t > j.Deadline {
			if env.Trace != nil {
				env.emitAt(j.Deadline, core, j, trace.EvFinish, outcomeDetail(OutcomeLate))
			}
			eng.At(j.Deadline, func() { done(OutcomeLate, j.Deadline-start) })
			return
		}
	}

	finish := t
	proc := finish - start
	out := OutcomeACK
	switch {
	case finish > j.Deadline:
		out = OutcomeLate
	case !j.Decodable:
		out = OutcomeDecodeFail
	}
	if env.Trace != nil {
		env.emitAt(finish, core, j, trace.EvFinish, outcomeDetail(out))
	}
	eng.At(finish, func() { done(out, proc) })
}

// serialPhaseName labels serialExec's phase i for the trace.
func serialPhaseName(i int) string {
	switch i {
	case 0:
		return "fft"
	case 1:
		return "demod"
	default:
		return fmt.Sprintf("decode%d", i-2)
	}
}

// outcomeDetail is the trace detail string of a terminal outcome.
func outcomeDetail(o Outcome) string {
	switch o {
	case OutcomeACK:
		return "ack"
	case OutcomeDropped:
		return "drop"
	case OutcomeLate:
		return "late"
	case OutcomeDecodeFail:
		return "decodefail"
	}
	return "unknown"
}
