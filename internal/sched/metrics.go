package sched

import (
	"fmt"
	"math"
)

// Outcome classifies how a subframe left the system.
type Outcome int

// Subframe outcomes.
const (
	// OutcomeACK: decoded successfully within the deadline.
	OutcomeACK Outcome = iota
	// OutcomeDropped: the scheduler's slack check dropped the subframe
	// before or during processing — a deadline miss.
	OutcomeDropped
	// OutcomeLate: processing finished after the deadline — a miss.
	OutcomeLate
	// OutcomeDecodeFail: processing met the deadline but the channel code
	// did not converge within Lm iterations (a NACK caused by the radio
	// link, not the scheduler). Not counted as a deadline miss.
	OutcomeDecodeFail
)

// BSMetrics aggregates per-basestation counters.
type BSMetrics struct {
	Jobs, ACK, Dropped, Late, DecodeFail int
}

// MissRate is the deadline-miss fraction (dropped + late).
func (b BSMetrics) MissRate() float64 {
	if b.Jobs == 0 {
		return 0
	}
	return float64(b.Dropped+b.Late) / float64(b.Jobs)
}

// Metrics collects everything the evaluation figures need from one run.
type Metrics struct {
	Scheduler string
	PerBS     []BSMetrics

	// Gaps record, for every subframe processed to completion, the unused
	// budget Deadline − finish. This is the scheduling gap of Fig. 16: the
	// idle window a partitioned core exposes for migration, which narrows
	// as RTT/2 eats into Tmax.
	Gaps []float64

	// Overruns record, for every subframe that completed *after* its
	// deadline (Late), the overshoot finish − Deadline — the
	// late-completion distribution, kept separate from Gaps (which would
	// otherwise need zero-clamping; see the ROADMAP note). Schedulers that
	// terminate late jobs exactly at the deadline (global) record a zero
	// overshoot. Drops record nothing (they never finish) and downlink (Tx)
	// jobs are excluded, as with Gaps.
	Overruns []float64

	// ProcTimes are realized processing durations (start → completion) of
	// jobs that ran to completion.
	ProcTimes []float64
	// RecordProcMCS, when ≥ 0, restricts ProcTimes to that MCS (Fig. 19's
	// MCS-27 distribution). Set before the run.
	RecordProcMCS int

	// Migration accounting (RT-OPEX only).
	FFTSubtasksTotal       int
	FFTSubtasksMigrated    int
	DecodeSubtasksTotal    int
	DecodeSubtasksMigrated int
	FFTBatches             int
	DecodeBatches          int
	MigrationBatches       int
	Preemptions            int // migrated batches preempted by the host core's own job
	Recoveries             int // batches whose results were recomputed locally

	// Downlink (Tx-processing) jobs, tallied separately from the uplink
	// deadline-miss metric.
	TxJobs   int
	TxMisses int
}

// TxMissRate is the downlink-encoding deadline-miss fraction.
func (m *Metrics) TxMissRate() float64 {
	if m.TxJobs == 0 {
		return 0
	}
	return float64(m.TxMisses) / float64(m.TxJobs)
}

// NewMetrics creates metrics for nBS basestations.
func NewMetrics(scheduler string, nBS int) *Metrics {
	return &Metrics{Scheduler: scheduler, PerBS: make([]BSMetrics, nBS), RecordProcMCS: -1}
}

// Record books one job outcome. procTime is the realized processing
// duration for jobs that ran to completion (ACK/Late/DecodeFail); pass a
// negative value for drops. Downlink (Tx) jobs are tallied separately so
// the headline deadline-miss rate remains the paper's uplink metric.
func (m *Metrics) Record(j *Job, o Outcome, procTime float64) {
	if j.Tx {
		m.TxJobs++
		if o == OutcomeDropped || o == OutcomeLate {
			m.TxMisses++
		}
		return
	}
	b := &m.PerBS[j.BS]
	b.Jobs++
	switch o {
	case OutcomeACK:
		b.ACK++
	case OutcomeDropped:
		b.Dropped++
	case OutcomeLate:
		b.Late++
	case OutcomeDecodeFail:
		b.DecodeFail++
	}
	if procTime >= 0 && (m.RecordProcMCS < 0 || m.RecordProcMCS == j.MCS) {
		m.ProcTimes = append(m.ProcTimes, procTime)
	}
}

// RecordGap books a subframe's completion against the deadline. ACK and
// DecodeFail completions record their unused budget Deadline − finish into
// Gaps — the usable migration window of Fig. 16. Late completions record
// their overshoot finish − Deadline into Overruns. Drops record nothing
// (no finish exists), and downlink (Tx) jobs are excluded: both series are
// uplink metrics.
func (m *Metrics) RecordGap(j *Job, o Outcome, finish float64) {
	if j.Tx {
		return
	}
	switch o {
	case OutcomeACK, OutcomeDecodeFail:
		m.Gaps = append(m.Gaps, j.Deadline-finish)
	case OutcomeLate:
		m.Overruns = append(m.Overruns, finish-j.Deadline)
	}
}

// Jobs returns the total number of completed-or-dropped subframes.
func (m *Metrics) Jobs() int {
	n := 0
	for _, b := range m.PerBS {
		n += b.Jobs
	}
	return n
}

// Misses returns the total deadline misses.
func (m *Metrics) Misses() int {
	n := 0
	for _, b := range m.PerBS {
		n += b.Dropped + b.Late
	}
	return n
}

// MissRate is the overall deadline-miss fraction.
func (m *Metrics) MissRate() float64 {
	j := m.Jobs()
	if j == 0 {
		return 0
	}
	return float64(m.Misses()) / float64(j)
}

// MigratedFFTFraction is the fraction of FFT subtasks that were migrated.
func (m *Metrics) MigratedFFTFraction() float64 {
	if m.FFTSubtasksTotal == 0 {
		return 0
	}
	return float64(m.FFTSubtasksMigrated) / float64(m.FFTSubtasksTotal)
}

// MigratedDecodeFraction is the fraction of decode subtasks migrated.
func (m *Metrics) MigratedDecodeFraction() float64 {
	if m.DecodeSubtasksTotal == 0 {
		return 0
	}
	return float64(m.DecodeSubtasksMigrated) / float64(m.DecodeSubtasksTotal)
}

// MeanDecodeBatchSize is the average number of decode subtasks per
// migration batch — the per-opportunity migration depth that shrinks as
// transport latency narrows the usable gaps (Fig. 16 right).
func (m *Metrics) MeanDecodeBatchSize() float64 {
	if m.DecodeBatches == 0 {
		return 0
	}
	return float64(m.DecodeSubtasksMigrated) / float64(m.DecodeBatches)
}

// GapFractionAbove returns the fraction of recorded gaps exceeding x µs
// (Fig. 16 left).
func (m *Metrics) GapFractionAbove(x float64) float64 {
	if len(m.Gaps) == 0 {
		return 0
	}
	n := 0
	for _, g := range m.Gaps {
		if g > x {
			n++
		}
	}
	return float64(n) / float64(len(m.Gaps))
}

func (m *Metrics) String() string {
	return fmt.Sprintf("%s: jobs=%d missRate=%.3g (dropped=%d late=%d) decodeFail=%d",
		m.Scheduler, m.Jobs(), m.MissRate(), m.totalDropped(), m.totalLate(), m.totalDecodeFail())
}

func (m *Metrics) totalDropped() int {
	n := 0
	for _, b := range m.PerBS {
		n += b.Dropped
	}
	return n
}

func (m *Metrics) totalLate() int {
	n := 0
	for _, b := range m.PerBS {
		n += b.Late
	}
	return n
}

func (m *Metrics) totalDecodeFail() int {
	n := 0
	for _, b := range m.PerBS {
		n += b.DecodeFail
	}
	return n
}

// Log10MissRate is a display helper: log10 of the miss rate, with a floor
// for zero-miss runs so tables stay finite.
func (m *Metrics) Log10MissRate() float64 {
	r := m.MissRate()
	if r <= 0 {
		j := m.Jobs()
		if j == 0 {
			return math.Inf(-1)
		}
		return math.Log10(1 / (10 * float64(j))) // below measurement floor
	}
	return math.Log10(r)
}
