package sched

import "rtopex/internal/obs"

// PublishMetrics writes one run's Metrics into an observability registry,
// labeled by scheduler name: job/miss counters, the gap/overrun/processing
// distributions as mergeable histograms, and the migration accounting. A
// nil registry or nil metrics is a no-op, so call sites can pass an optional
// registry straight through.
func PublishMetrics(reg *obs.Registry, m *Metrics) {
	if reg == nil || m == nil {
		return
	}
	l := obs.L("sched", m.Scheduler)

	reg.SetHelp("rtopex_jobs_total", "Uplink subframes completed or dropped.")
	reg.SetHelp("rtopex_misses_total", "Uplink deadline misses (dropped + late).")
	reg.SetHelp("rtopex_miss_rate", "Uplink deadline-miss fraction.")
	reg.Counter("rtopex_jobs_total", l).Add(int64(m.Jobs()))
	reg.Counter("rtopex_misses_total", l).Add(int64(m.Misses()))
	reg.Gauge("rtopex_miss_rate", l).Set(m.MissRate())
	reg.Counter("rtopex_dropped_total", l).Add(int64(m.totalDropped()))
	reg.Counter("rtopex_late_total", l).Add(int64(m.totalLate()))
	reg.Counter("rtopex_decode_fail_total", l).Add(int64(m.totalDecodeFail()))
	if m.TxJobs > 0 {
		reg.Counter("rtopex_tx_jobs_total", l).Add(int64(m.TxJobs))
		reg.Counter("rtopex_tx_misses_total", l).Add(int64(m.TxMisses))
	}

	reg.SetHelp("rtopex_gap_us", "Unused budget (deadline − finish) per completed subframe.")
	reg.SetHelp("rtopex_overrun_us", "Overshoot (finish − deadline) per late subframe.")
	reg.SetHelp("rtopex_proc_us", "Realized processing duration per completed subframe.")
	observeAll(reg.Histogram("rtopex_gap_us", l), m.Gaps)
	observeAll(reg.Histogram("rtopex_overrun_us", l), m.Overruns)
	observeAll(reg.Histogram("rtopex_proc_us", l), m.ProcTimes)

	if m.MigrationBatches > 0 || m.FFTSubtasksMigrated > 0 || m.DecodeSubtasksMigrated > 0 {
		reg.SetHelp("rtopex_migration_batches_total", "Migration batches planned onto idle hosts.")
		reg.Counter("rtopex_migration_batches_total", l).Add(int64(m.MigrationBatches))
		reg.Counter("rtopex_migration_preemptions_total", l).Add(int64(m.Preemptions))
		reg.Counter("rtopex_migration_recoveries_total", l).Add(int64(m.Recoveries))
		reg.Counter("rtopex_fft_subtasks_migrated_total", l).Add(int64(m.FFTSubtasksMigrated))
		reg.Counter("rtopex_decode_subtasks_migrated_total", l).Add(int64(m.DecodeSubtasksMigrated))
		reg.Gauge("rtopex_fft_migrated_fraction", l).Set(m.MigratedFFTFraction())
		reg.Gauge("rtopex_decode_migrated_fraction", l).Set(m.MigratedDecodeFraction())
	}
}

func observeAll(h *obs.Histogram, xs []float64) {
	for _, x := range xs {
		h.Observe(x)
	}
}
