package sched

import (
	"fmt"

	"rtopex/internal/trace"
)

// StaticParallel is the BigStation/WiBench-style comparator of Table 2: the
// baseband chain is statically parallelized, with every subframe's
// parallelizable subtasks fanned across the basestation's fixed core set at
// design time. There is no runtime migration and no adaptation to load —
// the split is the same whether the subframe is MCS 0 or MCS 27.
//
// The contrast with RT-OPEX: static parallelism buys a shorter critical
// path (decode/k instead of decode), but it reserves k cores per
// basestation full-time, so it needs k/⌈Tmax⌉ times the resources of a
// partitioned schedule to host the same basestations. The ext-parallel
// experiment quantifies both sides.
type StaticParallel struct {
	// CoresPerBS is the fixed fan-out width per basestation.
	CoresPerBS int
	// ForkOverheadUS is charged once per parallelized task (thread wakeup
	// and result combination), analogous to RT-OPEX's δ.
	ForkOverheadUS float64

	env   *Env
	cores []*spGroup
}

// spGroup tracks one basestation's core set; the whole set processes one
// subframe at a time (the static split gives every core a share of each
// task, so the group is busy or idle as a unit).
type spGroup struct {
	busyUntil float64
	pending   []*Job
	busy      bool
}

// NewStaticParallel creates the comparator with k cores per basestation.
func NewStaticParallel(coresPerBS int) *StaticParallel {
	if coresPerBS < 1 {
		coresPerBS = 1
	}
	return &StaticParallel{CoresPerBS: coresPerBS, ForkOverheadUS: 20}
}

// Name implements Scheduler.
func (s *StaticParallel) Name() string { return fmt.Sprintf("static-parallel-%d", s.CoresPerBS) }

// Attach implements Scheduler.
func (s *StaticParallel) Attach(env *Env) {
	s.env = env
	groups := env.Cores / s.CoresPerBS
	s.cores = make([]*spGroup, groups)
	for i := range s.cores {
		s.cores[i] = &spGroup{}
	}
}

// OnArrival implements Scheduler.
func (s *StaticParallel) OnArrival(j *Job) {
	if j.BS >= len(s.cores) {
		s.env.M.Record(j, OutcomeDropped, -1)
		return
	}
	g := s.cores[j.BS]
	if g.busy {
		g.pending = append(g.pending, j)
		return
	}
	s.start(g, j)
}

// start executes the job with the static split: each parallelizable task's
// time divides by the fan-out (bounded by its subtask count), plus a fork
// overhead; demod runs on one core while the others idle.
func (s *StaticParallel) start(g *spGroup, j *Job) {
	g.busy = true
	now := s.env.Eng.Now()
	k := s.CoresPerBS
	// The group's lead core stands in for the whole fan-out in the trace.
	lead := j.BS * k
	s.env.emit(lead, j, trace.EvStart, "")

	span := func(serial float64, subtasks int) float64 {
		width := k
		if subtasks < width {
			width = subtasks
		}
		if width < 1 {
			width = 1
		}
		t := serial / float64(width)
		if width > 1 {
			t += s.ForkOverheadUS
		}
		return t
	}

	fft := span(j.Tasks.FFT, j.FFTSubtasks)
	demod := j.Tasks.Demod
	decode := span(j.Tasks.Decode, j.DecodeSubtasks)

	// Jitter strikes the demod phase (a single-core section) for parity
	// with the other schedulers' per-job error budget.
	demod += j.JitterUS
	if demod < 0 {
		demod = 0
	}

	t := now
	out := OutcomeACK
	var proc float64 = -1
	dropPhase := ""
	for i, step := range []float64{fft, demod, decode} {
		if t+step > j.Deadline {
			out = OutcomeDropped
			dropPhase = [...]string{"fft", "demod", "decode"}[i]
			break
		}
		if s.env.Trace != nil {
			s.env.emitAt(t, lead, j, trace.EvPhase, [...]string{"fft", "demod", "decode"}[i])
		}
		t += step
	}
	if out == OutcomeACK {
		proc = t - now
		switch {
		case t > j.Deadline:
			out = OutcomeLate
		case !j.Decodable:
			out = OutcomeDecodeFail
		}
	}
	end := t
	if out == OutcomeDropped {
		end = t // dropped at the failing boundary
		s.env.emitAt(end, lead, j, trace.EvDrop, dropPhase)
	} else {
		s.env.emitAt(end, lead, j, trace.EvFinish, outcomeDetail(out))
	}
	s.env.Eng.At(end, func() {
		s.env.M.Record(j, out, proc)
		g.busy = false
		if len(g.pending) > 0 {
			next := g.pending[0]
			g.pending = g.pending[1:]
			s.start(g, next)
		}
	})
}

// Finalize implements Scheduler.
func (s *StaticParallel) Finalize() {}

var _ Scheduler = (*StaticParallel)(nil)
