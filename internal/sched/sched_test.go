package sched

import (
	"math"
	"testing"

	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/trace"
	"rtopex/internal/transport"
	"rtopex/internal/turbo"
)

// testWorkload builds the paper's evaluation setup: 4 BSs, 2 antennas,
// 10 MHz, 30 dB SNR, Lm=4, fixed transport delay.
func testWorkload(t *testing.T, subframes int, rtt2 float64, seed uint64) *Workload {
	t.Helper()
	w, err := BuildWorkload(WorkloadConfig{
		Basestations:   4,
		Subframes:      subframes,
		Antennas:       2,
		Bandwidth:      lte.BW10MHz,
		SNRdB:          30,
		Lm:             4,
		Params:         model.PaperGPP,
		Jitter:         model.DefaultJitter,
		IterLaw:        model.DefaultIterationLaw,
		Profiles:       trace.DefaultProfiles,
		FixedMCS:       -1,
		Transport:      transport.FixedPath{OneWay: rtt2},
		ExpectedRTT2US: rtt2,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorkloadShape(t *testing.T) {
	w := testWorkload(t, 100, 500, 1)
	if len(w.Jobs) != 4 {
		t.Fatalf("%d basestations", len(w.Jobs))
	}
	for bs, jobs := range w.Jobs {
		if len(jobs) != 100 {
			t.Fatalf("BS %d has %d jobs", bs, len(jobs))
		}
		for i, j := range jobs {
			if j.Gen != float64(i)*1000 {
				t.Fatalf("gen time wrong at %d", i)
			}
			if j.Arrival != j.Gen+500 {
				t.Fatalf("arrival wrong at %d", i)
			}
			if j.Deadline != j.Gen+2000 {
				t.Fatalf("deadline wrong at %d", i)
			}
			if j.Tmax() != 1500 {
				t.Fatalf("Tmax = %v", j.Tmax())
			}
			if j.MCS < 0 || j.MCS > 27 || j.L < 1 || j.L > 4 {
				t.Fatalf("invalid MCS/L %d/%d", j.MCS, j.L)
			}
			if j.FFTSubtasks != 28 {
				t.Fatalf("FFT subtasks %d", j.FFTSubtasks)
			}
			if j.DecodeSubtasks < 1 || j.DecodeSubtasks > 6 {
				t.Fatalf("decode subtasks %d", j.DecodeSubtasks)
			}
			if math.Abs(j.Tasks.Total()-model.PaperGPP.Predict(2, mcsOrder(j.MCS), loadOf(j.MCS), j.L)) > 1e-9 {
				t.Fatal("task times inconsistent with model")
			}
		}
	}
}

func mcsOrder(mcs int) int {
	info, _ := lte.MCSTable(mcs)
	return info.Scheme.Order()
}

func loadOf(mcs int) float64 {
	d, _ := lte.SubcarrierLoad(mcs, lte.BW10MHz)
	return d
}

func TestWorkloadValidation(t *testing.T) {
	bad := []WorkloadConfig{
		{},
		{Basestations: 1, Subframes: 1, Antennas: 0, Lm: 4, Transport: transport.FixedPath{}},
		{Basestations: 1, Subframes: 1, Antennas: 1, Lm: 0, Transport: transport.FixedPath{}},
		{Basestations: 1, Subframes: 1, Antennas: 1, Lm: 4},
		{Basestations: 5, Subframes: 1, Antennas: 1, Lm: 4, Transport: transport.FixedPath{}, FixedMCS: -1, Profiles: trace.DefaultProfiles},
		{Basestations: 1, Subframes: 1, Antennas: 1, Lm: 4, Transport: transport.FixedPath{}, FixedMCS: 99},
	}
	for i, cfg := range bad {
		if _, err := BuildWorkload(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestWorkloadFixedMCS(t *testing.T) {
	w, err := BuildWorkload(WorkloadConfig{
		Basestations: 2, Subframes: 50, Antennas: 2, Bandwidth: lte.BW10MHz,
		SNRdB: 30, Lm: 4, Params: model.PaperGPP, IterLaw: model.DefaultIterationLaw,
		FixedMCS: 27, Transport: transport.FixedPath{OneWay: 400}, ExpectedRTT2US: 400, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range w.Jobs {
		for _, j := range jobs {
			if j.MCS != 27 || j.DecodeSubtasks != 6 {
				t.Fatalf("fixed MCS job %+v", j)
			}
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := testWorkload(t, 200, 500, 42)
	b := testWorkload(t, 200, 500, 42)
	for bs := range a.Jobs {
		for i := range a.Jobs[bs] {
			if a.Jobs[bs][i] != b.Jobs[bs][i] {
				t.Fatal("workloads with same seed differ")
			}
		}
	}
}

func runAll(t *testing.T, w *Workload) (part, glob, rtopex *Metrics) {
	t.Helper()
	var err error
	part, err = Run(w, NewPartitioned(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	glob, err = Run(w, NewGlobal(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rtopex, err = Run(w, NewRTOPEX(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	return part, glob, rtopex
}

func TestAllJobsAccounted(t *testing.T) {
	w := testWorkload(t, 2000, 500, 3)
	part, glob, rtopex := runAll(t, w)
	want := 4 * 2000
	for _, m := range []*Metrics{part, glob, rtopex} {
		if m.Jobs() != want {
			t.Fatalf("%s accounted %d jobs, want %d", m.Scheduler, m.Jobs(), want)
		}
	}
}

func TestSimulationDeterminism(t *testing.T) {
	w := testWorkload(t, 1000, 500, 4)
	a, _ := Run(w, NewRTOPEX(2), 8)
	b, _ := Run(w, NewRTOPEX(2), 8)
	if a.MissRate() != b.MissRate() || a.FFTSubtasksMigrated != b.FFTSubtasksMigrated ||
		a.Preemptions != b.Preemptions {
		t.Fatal("RT-OPEX simulation not deterministic")
	}
	ga, _ := Run(w, NewGlobal(), 8)
	gb, _ := Run(w, NewGlobal(), 8)
	if ga.MissRate() != gb.MissRate() {
		t.Fatal("global simulation not deterministic")
	}
}

func TestPartitionedNeverQueues(t *testing.T) {
	// With ⌈Tmax⌉=2 cores per BS, each subframe has its core to itself:
	// no pending overflow should ever accumulate beyond the rare overrun.
	w := testWorkload(t, 5000, 500, 5)
	m, _ := Run(w, NewPartitioned(2), 8)
	if m.Jobs() != 20000 {
		t.Fatalf("jobs %d", m.Jobs())
	}
	// Gaps must be plentiful: about one per job minus the first per core.
	if len(m.Gaps) < 19000 {
		t.Fatalf("only %d gaps recorded", len(m.Gaps))
	}
}

func TestPartitionedGapsMatchFig16(t *testing.T) {
	// Fig. 16: at RTT/2 = 500 µs, >60% of gaps exceed 500 µs.
	w := testWorkload(t, 10000, 500, 6)
	m, _ := Run(w, NewPartitioned(2), 8)
	if f := m.GapFractionAbove(500); f < 0.5 {
		t.Fatalf("gap fraction above 500 µs = %v, want > 0.5", f)
	}
	// And gaps shrink as RTT grows.
	w7 := testWorkload(t, 10000, 700, 6)
	m7, _ := Run(w7, NewPartitioned(2), 8)
	if m7.GapFractionAbove(500) >= m.GapFractionAbove(500) {
		t.Fatal("gaps did not shrink with larger RTT")
	}
}

func TestMissRateIncreasesWithRTT(t *testing.T) {
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewPartitioned(2) },
		func() Scheduler { return NewGlobal() },
		func() Scheduler { return NewRTOPEX(2) },
	} {
		w4 := testWorkload(t, 5000, 400, 7)
		w7 := testWorkload(t, 5000, 700, 7)
		m4, _ := Run(w4, mk(), 8)
		m7, _ := Run(w7, mk(), 8)
		if m7.MissRate() < m4.MissRate() {
			t.Fatalf("%s: miss rate fell with RTT (%v -> %v)", m4.Scheduler, m4.MissRate(), m7.MissRate())
		}
	}
}

func TestRTOPEXBeatsPartitioned(t *testing.T) {
	// The headline claim: RT-OPEX reduces misses by an order of magnitude.
	for _, rtt2 := range []float64{500, 600, 700} {
		w := testWorkload(t, 10000, rtt2, 8)
		p, _ := Run(w, NewPartitioned(2), 8)
		r, _ := Run(w, NewRTOPEX(2), 8)
		if p.MissRate() == 0 {
			continue
		}
		if r.MissRate() > p.MissRate()/2 {
			t.Fatalf("RTT/2=%v: RT-OPEX %v not well below partitioned %v",
				rtt2, r.MissRate(), p.MissRate())
		}
	}
}

func TestRTOPEXNearZeroAtLowRTT(t *testing.T) {
	// Fig. 15: virtually zero misses below RTT/2 = 500 µs.
	w := testWorkload(t, 10000, 400, 9)
	r, _ := Run(w, NewRTOPEX(2), 8)
	if r.MissRate() > 5e-4 {
		t.Fatalf("RT-OPEX miss rate %v at RTT/2=400, want ~0", r.MissRate())
	}
}

func TestRTOPEXMigratesBothTaskTypes(t *testing.T) {
	w := testWorkload(t, 5000, 500, 10)
	r, _ := Run(w, NewRTOPEX(2), 8)
	if r.FFTSubtasksMigrated == 0 {
		t.Fatal("no FFT subtasks migrated")
	}
	if r.DecodeSubtasksMigrated == 0 {
		t.Fatal("no decode subtasks migrated")
	}
	if r.MigrationBatches == 0 {
		t.Fatal("no migration batches")
	}
	// Fig. 16 right: roughly 20% of decode subtasks migrate at 500 µs —
	// accept a broad band around it.
	f := r.MigratedDecodeFraction()
	if f < 0.05 || f > 0.8 {
		t.Fatalf("decode migration fraction %v implausible", f)
	}
}

func TestRTOPEXMigrationShrinksWithRTT(t *testing.T) {
	// Fig. 16: narrower gaps at higher RTT leave less room for the large
	// decode subtasks, so each migration opportunity carries fewer of them
	// (the total count may rise as Algorithm 1 spreads small batches over
	// more cores — the per-batch depth is what the gaps bound).
	w5 := testWorkload(t, 5000, 450, 11)
	w7 := testWorkload(t, 5000, 700, 11)
	r5, _ := Run(w5, NewRTOPEX(2), 8)
	r7, _ := Run(w7, NewRTOPEX(2), 8)
	// The effect is weak in simulation (only the largest code-block
	// subtasks hit the deadline-capped windows), and correcting the
	// abandoned-batch accounting removed a spurious deflation of the
	// high-RTT depth (abandoned batches used to inflate the denominator),
	// so assert near-monotonicity with a small tolerance rather than a
	// strict direction.
	if r7.MeanDecodeBatchSize() > r5.MeanDecodeBatchSize()*1.01 {
		t.Fatalf("decode batch depth grew with RTT: %v -> %v",
			r5.MeanDecodeBatchSize(), r7.MeanDecodeBatchSize())
	}
	// FFT subtasks are small enough to keep migrating at high RTT.
	if r7.MigratedFFTFraction() < 0.8*r5.MigratedFFTFraction() {
		t.Fatalf("FFT migration collapsed at high RTT: %v -> %v",
			r5.MigratedFFTFraction(), r7.MigratedFFTFraction())
	}
}

func TestRTOPEXNoWorseThanPartitionedPerSeed(t *testing.T) {
	// The design requirement: on the same sample path, RT-OPEX must not
	// miss more than partitioned.
	for seed := uint64(20); seed < 30; seed++ {
		w := testWorkload(t, 3000, 600, seed)
		p, _ := Run(w, NewPartitioned(2), 8)
		r, _ := Run(w, NewRTOPEX(2), 8)
		if r.Misses() > p.Misses() {
			t.Fatalf("seed %d: RT-OPEX missed %d > partitioned %d", seed, r.Misses(), p.Misses())
		}
	}
}

func TestGlobalWorseOrEqualToPartitioned(t *testing.T) {
	// Fig. 15's surprise: global performs slightly worse than partitioned.
	var gm, pm float64
	for seed := uint64(40); seed < 44; seed++ {
		w := testWorkload(t, 10000, 550, seed)
		p, _ := Run(w, NewPartitioned(2), 8)
		g, _ := Run(w, NewGlobal(), 8)
		pm += p.MissRate()
		gm += g.MissRate()
	}
	if gm < pm {
		t.Fatalf("global (%v) outperformed partitioned (%v) on average", gm/4, pm/4)
	}
}

func TestGlobalDoesNotImproveWithMoreCores(t *testing.T) {
	// Fig. 19: doubling cores from 8 to 16 does not help.
	var m8, m16 float64
	for seed := uint64(50); seed < 54; seed++ {
		w := testWorkload(t, 10000, 550, seed)
		g8, _ := Run(w, NewGlobal(), 8)
		g16, _ := Run(w, NewGlobal(), 16)
		m8 += g8.MissRate()
		m16 += g16.MissRate()
	}
	if m16 < m8*0.8 {
		t.Fatalf("global-16 (%v) substantially better than global-8 (%v)", m16/4, m8/4)
	}
}

func TestGlobalCacheModelMatters(t *testing.T) {
	// Ablation: disabling the cache model must reduce processing times.
	w := testWorkload(t, 5000, 550, 60)
	withCache, _ := Run(w, NewGlobal(), 8)
	noCache := NewGlobal()
	noCache.Cache.Enabled = false
	without, _ := Run(w, noCache, 8)
	mw := meanOf(withCache.ProcTimes)
	mo := meanOf(without.ProcTimes)
	if mw <= mo {
		t.Fatalf("cache model did not inflate processing times: %v vs %v", mw, mo)
	}
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestRunRejectsZeroCores(t *testing.T) {
	w := testWorkload(t, 10, 500, 70)
	if _, err := Run(w, NewPartitioned(2), 0); err == nil {
		t.Fatal("0 cores accepted")
	}
}

func TestPartitionedInsufficientCoresDrops(t *testing.T) {
	// 4 BSs × 2 cores needs 8; with 4 cores half the subframes have no
	// core and must be recorded as drops, not lost.
	w := testWorkload(t, 100, 500, 71)
	m, _ := Run(w, NewPartitioned(2), 4)
	if m.Jobs() != 400 {
		t.Fatalf("jobs %d", m.Jobs())
	}
	if m.Misses() < 190 {
		t.Fatalf("expected ~half the jobs dropped, got %d", m.Misses())
	}
}

func TestMetricsAccessors(t *testing.T) {
	m := NewMetrics("x", 2)
	j := &Job{BS: 0, Index: 0, MCS: 27}
	m.Record(j, OutcomeACK, 100)
	m.Record(j, OutcomeDropped, -1)
	m.Record(&Job{BS: 1}, OutcomeLate, 2100)
	m.Record(&Job{BS: 1}, OutcomeDecodeFail, 900)
	if m.Jobs() != 4 || m.Misses() != 2 {
		t.Fatalf("jobs %d misses %d", m.Jobs(), m.Misses())
	}
	if math.Abs(m.MissRate()-0.5) > 1e-12 {
		t.Fatalf("miss rate %v", m.MissRate())
	}
	if len(m.ProcTimes) != 3 {
		t.Fatalf("%d proc samples", len(m.ProcTimes))
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMetricsMCSFilter(t *testing.T) {
	m := NewMetrics("x", 1)
	m.RecordProcMCS = 27
	m.Record(&Job{MCS: 27}, OutcomeACK, 100)
	m.Record(&Job{MCS: 5}, OutcomeACK, 50)
	if len(m.ProcTimes) != 1 || m.ProcTimes[0] != 100 {
		t.Fatalf("MCS filter broken: %v", m.ProcTimes)
	}
}

func TestLog10MissRate(t *testing.T) {
	m := NewMetrics("x", 1)
	if !math.IsInf(m.Log10MissRate(), -1) {
		t.Fatal("empty metrics should be -inf")
	}
	for i := 0; i < 100; i++ {
		m.Record(&Job{}, OutcomeACK, 1)
	}
	if m.Log10MissRate() != math.Log10(1.0/1000) {
		t.Fatalf("zero-miss floor %v", m.Log10MissRate())
	}
	m.Record(&Job{}, OutcomeDropped, -1)
	if math.Abs(m.Log10MissRate()-math.Log10(1.0/101)) > 1e-12 {
		t.Fatal("log rate wrong")
	}
}

func TestCodeBlocksMatchesTurboSegmentation(t *testing.T) {
	// The workload builder's fast code-block arithmetic must agree with
	// the real segmentation for every MCS the experiments use.
	for mcs := 0; mcs <= lte.MaxMCS; mcs++ {
		tbs, _, err := lte.TransportBlockSize(mcs, lte.BW10MHz.PRB)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := turbo.Segment(tbs + 24)
		if err != nil {
			t.Fatal(err)
		}
		if got := codeBlocks(tbs); got != seg.C {
			t.Fatalf("MCS %d: codeBlocks=%d, turbo segmentation C=%d", mcs, got, seg.C)
		}
	}
}
