// Package transport models the C-RAN transport path of §2.3: the fixed-
// delay optical fronthaul, the jittery cloud (datacenter) network segment,
// and the testbed's radio→GPP IQ-sample path whose serialization arithmetic
// reproduces Fig. 7.
//
// The Fig. 7 shape falls out of the testbed topology: each WARP radio feeds
// a 1 GbE port (per-radio serialization of a whole subframe of IQ samples),
// and a switch aggregates all radios into the GPP's 10 GbE port (per-radio
// aggregation serialization). At 10 MHz one subframe is 15360 samples ×
// 4 B = 61440 B: ≈491 µs on the radio link plus ≈49 µs per antenna on the
// aggregate — hence ≈0.9 ms at 8 antennas and >1 ms at 16, which is why the
// paper's testbed supports at most 8 antennas at 10 MHz.
//
// All times are microseconds.
package transport

import (
	"fmt"
	"math"

	"rtopex/internal/lte"
	"rtopex/internal/stats"
)

// Fronthaul is the optical segment: propagation at ~5 µs/km plus a fixed
// optical-switching overhead. The paper treats its jitter as negligible.
type Fronthaul struct {
	DistanceKm float64
	SwitchUS   float64
}

// OneWayUS returns the fixed one-way fronthaul latency.
func (f Fronthaul) OneWayUS() float64 {
	return 5*f.DistanceKm + f.SwitchUS
}

// CloudNetwork is the datacenter segment between the optical switch and the
// GPP: NIC/kernel base cost, packet serialization at the link rate, and a
// lognormal jitter whose tail matches Fig. 6 (mean ≈0.15 ms; about 1 in 10⁴
// packets above 0.25 ms on both 1 GbE and 10 GbE).
type CloudNetwork struct {
	RateGbps    float64
	BaseUS      float64 // switch + NIC + kernel fixed cost
	PacketBytes int     // transfer unit
	JitterMuLn  float64 // lognormal location (of µs)
	JitterSigma float64 // lognormal shape
}

// NewCloud returns the Fig. 6 calibration for a link rate.
func NewCloud(rateGbps float64) CloudNetwork {
	return CloudNetwork{
		RateGbps:    rateGbps,
		BaseUS:      120,
		PacketBytes: 1500,
		JitterMuLn:  math.Log(15),
		JitterSigma: 0.56,
	}
}

// SerializationUS returns the deterministic component.
func (c CloudNetwork) SerializationUS() float64 {
	return float64(c.PacketBytes) * 8 / (c.RateGbps * 1000)
}

// Sample draws one one-way cloud latency.
func (c CloudNetwork) Sample(r *stats.RNG) float64 {
	return c.BaseUS + c.SerializationUS() + r.LogNormal(c.JitterMuLn, c.JitterSigma)
}

// Mean returns the analytic mean one-way latency.
func (c CloudNetwork) Mean() float64 {
	return c.BaseUS + c.SerializationUS() +
		math.Exp(c.JitterMuLn+c.JitterSigma*c.JitterSigma/2)
}

// Path is the full radio→GPP transport: fixed fronthaul plus sampled cloud
// latency. Its samples are the RTT/2 of Eq. (2).
type Path struct {
	Fronthaul Fronthaul
	Cloud     CloudNetwork
}

// Sample draws one one-way (RTT/2) transport latency.
func (p Path) Sample(r *stats.RNG) float64 {
	return p.Fronthaul.OneWayUS() + p.Cloud.Sample(r)
}

// FixedPath is a degenerate transport with a constant RTT/2, matching the
// evaluation setup in §4.2 where the WARP transport is replaced by fixed
// delays of 400–700 µs to emulate deployment distances.
type FixedPath struct{ OneWay float64 }

// Sample returns the constant latency.
func (f FixedPath) Sample(*stats.RNG) float64 { return f.OneWay }

// Sampler abstracts the transport latency source handed to the simulator.
type Sampler interface {
	Sample(*stats.RNG) float64
}

// IQTransport is the testbed's radio→GPP IQ path (Fig. 7).
type IQTransport struct {
	RadioLinkGbps  float64 // per-radio link (testbed: 1 GbE)
	AggLinkGbps    float64 // aggregated link into the GPP (testbed: 10 GbE)
	BytesPerSample int     // IQ sample width (16-bit I + 16-bit Q = 4)
	OverheadUS     float64 // WARP read/write + packetization fixed cost
	MaxJitterUS    float64 // worst-case switch/NIC jitter headroom
}

// DefaultIQTransport is the testbed configuration of §2.3.
var DefaultIQTransport = IQTransport{
	RadioLinkGbps:  1,
	AggLinkGbps:    10,
	BytesPerSample: 4,
	OverheadUS:     30,
	MaxJitterUS:    60,
}

// SubframeBytes is the per-antenna payload of one 1 ms subframe.
func (t IQTransport) SubframeBytes(bw lte.Bandwidth) int {
	return bw.SamplesPerSubframe() * t.BytesPerSample
}

// OneWayUS returns the one-way latency for n antennas: the per-radio
// serialization happens in parallel across radios, then the aggregate link
// serializes all n payloads.
func (t IQTransport) OneWayUS(bw lte.Bandwidth, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("transport: need at least one antenna, got %d", n)
	}
	bits := float64(t.SubframeBytes(bw)) * 8
	radio := bits / (t.RadioLinkGbps * 1000)
	agg := float64(n) * bits / (t.AggLinkGbps * 1000)
	return t.OverheadUS + radio + agg, nil
}

// MaxAntennas returns the largest antenna count whose worst-case one-way
// latency (mean plus jitter headroom, since Fig. 7 plots the maximum
// observed latency) stays within budgetUS. The paper uses a 1000 µs budget:
// one subframe period, beyond which queueing builds up — giving 8 antennas
// at 10 MHz on the default testbed.
func (t IQTransport) MaxAntennas(bw lte.Bandwidth, budgetUS float64) int {
	maxN := 0
	for n := 1; n <= 64; n++ {
		l, err := t.OneWayUS(bw, n)
		if err != nil || l+t.MaxJitterUS > budgetUS {
			break
		}
		maxN = n
	}
	return maxN
}
