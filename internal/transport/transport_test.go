package transport

import (
	"math"
	"testing"

	"rtopex/internal/lte"
	"rtopex/internal/stats"
)

func TestFronthaulArithmetic(t *testing.T) {
	f := Fronthaul{DistanceKm: 20, SwitchUS: 10}
	if got := f.OneWayUS(); got != 110 {
		t.Fatalf("one-way %v, want 110", got)
	}
	// §2.3: 20–40 km gives 0.1–0.2 ms of propagation alone.
	if p := (Fronthaul{DistanceKm: 40}).OneWayUS(); p != 200 {
		t.Fatalf("40 km = %v µs", p)
	}
}

func TestCloudMeanMatchesFig6(t *testing.T) {
	for _, rate := range []float64{1, 10} {
		c := NewCloud(rate)
		r := stats.NewRNG(uint64(rate))
		w := stats.Welford{}
		for i := 0; i < 200000; i++ {
			w.Add(c.Sample(r))
		}
		// Paper: mean transport latency around 0.15 ms.
		if w.Mean() < 120 || w.Mean() > 180 {
			t.Fatalf("%v GbE mean %v µs, want ~150", rate, w.Mean())
		}
		if math.Abs(w.Mean()-c.Mean()) > 2 {
			t.Fatalf("analytic mean %v vs empirical %v", c.Mean(), w.Mean())
		}
	}
}

func TestCloudTailMatchesFig6(t *testing.T) {
	// About 1 in 10⁴ packets above 0.25 ms for both rates.
	for _, rate := range []float64{1, 10} {
		c := NewCloud(rate)
		r := stats.NewRNG(uint64(100 + rate))
		const n = 1_000_000
		over := 0
		for i := 0; i < n; i++ {
			if c.Sample(r) > 250 {
				over++
			}
		}
		frac := float64(over) / n
		if frac < 1e-5 || frac > 1e-3 {
			t.Fatalf("%v GbE P(>250µs) = %v, want ~1e-4", rate, frac)
		}
	}
}

func TestCloudSerialization(t *testing.T) {
	c := NewCloud(1)
	if got := c.SerializationUS(); math.Abs(got-12) > 1e-9 {
		t.Fatalf("1 GbE 1500 B serialization %v µs, want 12", got)
	}
	c10 := NewCloud(10)
	if got := c10.SerializationUS(); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("10 GbE serialization %v µs, want 1.2", got)
	}
}

func TestIQSubframeBytes(t *testing.T) {
	if got := DefaultIQTransport.SubframeBytes(lte.BW10MHz); got != 61440 {
		t.Fatalf("10 MHz subframe bytes %d, want 61440", got)
	}
	if got := DefaultIQTransport.SubframeBytes(lte.BW5MHz); got != 30720 {
		t.Fatalf("5 MHz subframe bytes %d", got)
	}
}

func TestIQLatencyMatchesFig7(t *testing.T) {
	tr := DefaultIQTransport
	// 10 MHz, 8 antennas ≈ 0.9 ms ("one-way latency ... as high as 0.9ms").
	l8, err := tr.OneWayUS(lte.BW10MHz, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l8 < 850 || l8 > 1000 {
		t.Fatalf("10 MHz × 8 antennas = %v µs, want ~900", l8)
	}
	// 10 MHz, 16 antennas exceeds 1 ms.
	l16, _ := tr.OneWayUS(lte.BW10MHz, 16)
	if l16 <= 1000 {
		t.Fatalf("10 MHz × 16 antennas = %v µs, want > 1000", l16)
	}
	// 5 MHz, 16 antennas ≈ 620 µs maximum in Fig. 7.
	l5, _ := tr.OneWayUS(lte.BW5MHz, 16)
	if l5 < 550 || l5 > 700 {
		t.Fatalf("5 MHz × 16 antennas = %v µs, want ~620", l5)
	}
}

func TestIQLatencyMonotoneInAntennas(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 16; n++ {
		l, err := DefaultIQTransport.OneWayUS(lte.BW10MHz, n)
		if err != nil {
			t.Fatal(err)
		}
		if l <= prev {
			t.Fatalf("latency not increasing at n=%d", n)
		}
		prev = l
	}
}

func TestIQErrors(t *testing.T) {
	if _, err := DefaultIQTransport.OneWayUS(lte.BW10MHz, 0); err == nil {
		t.Fatal("0 antennas accepted")
	}
}

func TestMaxAntennas(t *testing.T) {
	// "at most 8 antennas at 10 MHz can be supported on the GPP" (§2.3).
	if got := DefaultIQTransport.MaxAntennas(lte.BW10MHz, 1000); got != 8 {
		t.Fatalf("max antennas at 10 MHz = %d, want 8", got)
	}
	if got := DefaultIQTransport.MaxAntennas(lte.BW5MHz, 1000); got < 16 {
		t.Fatalf("max antennas at 5 MHz = %d, want >= 16", got)
	}
	if got := DefaultIQTransport.MaxAntennas(lte.BW10MHz, 1); got != 0 {
		t.Fatalf("impossible budget gave %d", got)
	}
}

func TestPathCombines(t *testing.T) {
	p := Path{
		Fronthaul: Fronthaul{DistanceKm: 20, SwitchUS: 10},
		Cloud:     NewCloud(10),
	}
	r := stats.NewRNG(5)
	for i := 0; i < 1000; i++ {
		s := p.Sample(r)
		if s <= p.Fronthaul.OneWayUS()+p.Cloud.BaseUS {
			t.Fatal("sample below deterministic floor")
		}
	}
}

func TestFixedPath(t *testing.T) {
	f := FixedPath{OneWay: 500}
	r := stats.NewRNG(6)
	for i := 0; i < 10; i++ {
		if f.Sample(r) != 500 {
			t.Fatal("FixedPath not constant")
		}
	}
	// FixedPath and Path must both satisfy Sampler.
	var _ Sampler = f
	var _ Sampler = Path{}
}
