package turbo

import "fmt"

// LLR convention throughout: positive ⇒ bit 0 more likely (matching
// internal/modulation's demappers). Branch symbols map bit b to ±1 via
// (1 - 2b), so a branch's metric contribution is ½·symbol·LLR.

const negInf = -1e30

// Path selects the arithmetic the iterative decoder runs on.
type Path uint8

const (
	// PathQuantized (the zero value, so the default) is the int16
	// fixed-point max-log-MAP path: input LLRs are quantized to the
	// modulation package's Q9.6 format at the Decode boundary and the
	// constituent recursions run on saturating int16 metrics — the standard
	// SIMD-decoder layout, and considerably faster than float64 on the hot
	// path. See quant.go for the metric conventions.
	PathQuantized Path = iota
	// PathFloat64 forces the float64 reference path — the oracle the
	// quantized path is property-tested against.
	PathFloat64
)

func (p Path) String() string {
	switch p {
	case PathQuantized:
		return "quantized"
	case PathFloat64:
		return "float64"
	default:
		return fmt.Sprintf("Path(%d)", uint8(p))
	}
}

// Valid reports whether p names an implemented decode path.
func (p Path) Valid() bool { return p == PathQuantized || p == PathFloat64 }

// Decoder is an iterative max-log-MAP turbo decoder for one block size K.
// A Decoder holds scratch buffers and is not safe for concurrent use; the
// PHY chain allocates one per worker.
type Decoder struct {
	K  int
	il *Interleaver

	// MaxIterations bounds the full decoder iterations (the paper's Lm,
	// default 4; each full iteration runs both constituent decoders).
	MaxIterations int

	// Path selects the decode arithmetic: the int16 quantized fast path
	// (default) or the float64 reference oracle. Both consume the same
	// float64 soft streams; quantization happens inside Decode.
	Path Path

	// CheckCadence is the quantized path's early-termination schedule: the
	// code-block CRC is evaluated after every CheckCadence-th constituent
	// pass (half-iteration), and always after the final pass. 0 or 1 —
	// the default — checks after every pass: on the int16 path a
	// constituent pass costs ~100× a CRC sweep, so checking at every
	// half-iteration is the measured optimum across the SNR sweep (a
	// sparser cadence saves only the check itself but pays a whole extra
	// pass whenever the skipped check would have terminated). The knob
	// exists so that relationship can be re-measured as the kernels get
	// faster; the float path keeps its fixed every-pass schedule.
	CheckCadence int

	// Radix selects the trellis stepping of the quantized constituent
	// passes: fused two-stage SIMD sweeps (Radix4, the default) or the
	// scalar single-stage reference (Radix2). Outputs are bit-identical;
	// see radix4.go.
	Radix Radix

	// PrecheckRaw enables the iteration-0 check of the raw systematic hard
	// decisions before any constituent pass (default on). It is always
	// correct — it accepts only on a passing check — but is a wasted O(K)
	// sweep when rate-matching punctured systematic positions that only
	// iterations can recover; receivers disable it per block via
	// RateMatcher.CoversSystematic.
	PrecheckRaw bool

	// scratch (float64 path)
	sysI   []float64 // interleaved systematic LLRs
	la     []float64 // a-priori for decoder 1
	la2    []float64 // a-priori for decoder 2
	le     []float64 // extrinsic out
	le1    []float64 // decoder 1 extrinsic, kept for the final total
	alpha  []float64 // (K+1) × numStates
	gamma0 []float64 // branch metric for u=0, per step
	gamma1 []float64
	total  []float64
	hard   []byte

	// scratch (quantized path; see quant.go for the Q-format conventions)
	q0, q1, q2 []int16 // quantized input streams, K+4 each
	qsysI      []int16 // interleaved quantized systematic LLRs
	qla        []int16 // a-priori for decoder 1
	qla2       []int16 // a-priori for decoder 2
	qle        []int16 // extrinsic out
	qle1       []int16 // decoder 1 extrinsic, kept for the final total
	qalpha     []int16 // (K+1) × numStates forward metrics
	qg0        []int16 // per-step systematic+a-priori metric (lsys+la)
	qg1        []int16 // per-step parity metric
	qhardI     []byte  // decoder-2 hard decisions, interleaved domain
	qhardTmp   []byte  // kernel scratch when decisions are not wanted
}

// NewDecoder builds a decoder for block size k.
func NewDecoder(k int) (*Decoder, error) {
	il, err := NewInterleaver(k)
	if err != nil {
		return nil, err
	}
	return &Decoder{
		K:             k,
		il:            il,
		MaxIterations: 4,
		PrecheckRaw:   true,
		sysI:          make([]float64, k),
		la:            make([]float64, k),
		la2:           make([]float64, k),
		le:            make([]float64, k),
		le1:           make([]float64, k),
		alpha:         make([]float64, (k+1)*numStates),
		gamma0:        make([]float64, k),
		gamma1:        make([]float64, k),
		total:         make([]float64, k),
		hard:          make([]byte, k),
		q0:            make([]int16, k+4),
		q1:            make([]int16, k+4),
		q2:            make([]int16, k+4),
		qsysI:         make([]int16, k),
		qla:           make([]int16, k),
		qla2:          make([]int16, k),
		qle:           make([]int16, k),
		qle1:          make([]int16, k),
		qalpha:        make([]int16, (k+1)*numStates),
		qg0:           make([]int16, k),
		qg1:           make([]int16, k),
		qhardI:        make([]byte, k),
		qhardTmp:      make([]byte, k),
	}, nil
}

// Result reports the outcome of a Decode call.
type Result struct {
	Bits       []byte // K hard-decision bits (aliases decoder scratch; copy to retain)
	Iterations int    // full iterations executed (0..MaxIterations; 0 ⇒ raw hard decisions passed check)
	OK         bool   // check function accepted the bits
}

// Decode runs iterative decoding over the three soft streams (each K+4 LLRs,
// as produced by rate dematching). check, if non-nil, is evaluated on the
// hard decisions after each constituent pass (every half-iteration) and
// decoding stops early when it returns true — the LTE receiver uses the
// code-block CRC here, and the returned iteration count (rounded up to full
// iterations) is the paper's L. Before the first constituent pass, the raw
// systematic hard decisions are checked directly (Iterations 0 on success):
// at high SNR the uncoded decisions are already CRC-clean and the trellis
// never has to run, which is where most subframes land in a healthy cell.
// Decode does not allocate: all intermediate state lives in the Decoder's
// scratch buffers.
//
// The arithmetic is selected by d.Path: the int16 quantized fast path
// (default) or the float64 reference. Both take the same float64 streams.
func (d *Decoder) Decode(s0, s1, s2 []float64, check func([]byte) bool) Result {
	k := d.K
	if len(s0) != k+4 || len(s1) != k+4 || len(s2) != k+4 {
		panic(fmt.Sprintf("turbo: stream lengths (%d,%d,%d), want %d", len(s0), len(s1), len(s2), k+4))
	}
	if check != nil && d.PrecheckRaw {
		hard := d.hard
		for i, v := range s0[:k] {
			if v < 0 {
				hard[i] = 1
			} else {
				hard[i] = 0
			}
		}
		if check(hard) {
			return Result{Bits: hard, Iterations: 0, OK: true}
		}
	}
	if d.Path == PathFloat64 {
		return d.decodeFloat(s0, s1, s2, check)
	}
	return d.decodeQuant(s0, s1, s2, check)
}

// decodeFloat is the float64 reference pipeline — the oracle the quantized
// path is tested against.
func (d *Decoder) decodeFloat(s0, s1, s2 []float64, check func([]byte) bool) Result {
	k := d.K
	sys := s0[:k]
	par1 := s1[:k]
	par2 := s2[:k]
	x1, z1, x2, z2 := demuxTails(s0, s1, s2, k)
	d.il.PermuteF(sys, d.sysI)
	for i := range d.la {
		d.la[i] = 0
	}

	res := Result{Bits: d.hard}
	for it := 1; it <= d.MaxIterations; it++ {
		res.Iterations = it
		// Decoder 1 on natural order. Its a-posteriori is already
		// sys + la + le1, so the CRC can rule mid-iteration.
		d.constituent(sys, par1, d.la, x1, z1, d.le1)
		if check != nil && check(d.hardDecide(sys)) {
			res.OK = true
			return res
		}
		// Interleave extrinsic -> a-priori of decoder 2.
		d.il.PermuteF(d.le1, d.la2)
		// Decoder 2 on interleaved order.
		d.constituent(d.sysI, par2, d.la2, x2, z2, d.le)
		// Deinterleave extrinsic -> a-priori of decoder 1.
		d.il.InverseF(d.le, d.la)

		if check != nil && check(d.hardDecide(sys)) {
			res.OK = true
			return res
		}
	}
	if check == nil {
		d.hardDecide(sys)
		res.OK = true
	}
	return res
}

// hardDecide slices the current a-posteriori total into d.hard and returns
// it. The total after decoder 1 is sys + la + le1 with la the freshest
// deinterleaved extrinsic of decoder 2 (zero before the first iteration).
func (d *Decoder) hardDecide(sys []float64) []byte {
	total, la, le1, hard := d.total, d.la, d.le1, d.hard
	for i := range total {
		total[i] = sys[i] + la[i] + le1[i]
		if total[i] < 0 {
			hard[i] = 1
		} else {
			hard[i] = 0
		}
	}
	return hard
}

// constituent runs one max-log-MAP pass: systematic LLRs lsys, parity LLRs
// lpar, a-priori la (all length K), plus 3 termination systematic/parity
// LLRs. It writes the extrinsic output into le.
//
// The three recursions below are fully unrolled over the 8-state LTE trellis
// (see trellis.go; TestConstituentWiring verifies the hardcoded wiring
// against the canonical tables). Every branch metric is one of the four sign
// combinations ±gs ± gp, computed once per step; unreachable states carry
// exactly negInf, which survives the additions unchanged (|metric| is far
// below the ulp of 1e30), so the explicit reachability guards of the
// straightforward implementation are unnecessary and the arithmetic stays
// bit-identical to it.
func (d *Decoder) constituent(lsys, lpar, la []float64, xTail, zTail [3]float64, le []float64) {
	k := d.K
	alpha := d.alpha

	// Branch metrics: gamma(u) = ½(1-2u)(lsys+la) + ½(1-2z)lpar, with the
	// parity term folded in per-state below (z depends on the state).
	gamma0, gamma1 := d.gamma0, d.gamma1
	for i := 0; i < k; i++ {
		gamma0[i] = 0.5 * (lsys[i] + la[i])
		gamma1[i] = 0.5 * lpar[i]
	}

	// Forward recursion. alpha[0] = {0, -inf...}.
	alpha[0] = 0
	for s := 1; s < numStates; s++ {
		alpha[s] = negInf
	}
	for i := 0; i < k; i++ {
		cur := (*[numStates]float64)(alpha[i*numStates:])
		next := (*[numStates]float64)(alpha[(i+1)*numStates:])
		gs, gp := gamma0[i], gamma1[i]
		ngs := -gs
		c0 := gs + gp  // u=0, z=0
		c1 := gs - gp  // u=0, z=1
		c2 := ngs + gp // u=1, z=0
		c3 := ngs - gp // u=1, z=1

		b0, b1, b2, b3 := cur[0], cur[1], cur[2], cur[3]
		b4, b5, b6, b7 := cur[4], cur[5], cur[6], cur[7]
		n0 := b0 + c0
		if v := b4 + c3; v > n0 {
			n0 = v
		}
		n1 := b0 + c3
		if v := b4 + c0; v > n1 {
			n1 = v
		}
		n2 := b1 + c1
		if v := b5 + c2; v > n2 {
			n2 = v
		}
		n3 := b1 + c2
		if v := b5 + c1; v > n3 {
			n3 = v
		}
		n4 := b2 + c2
		if v := b6 + c1; v > n4 {
			n4 = v
		}
		n5 := b2 + c1
		if v := b6 + c2; v > n5 {
			n5 = v
		}
		n6 := b3 + c3
		if v := b7 + c0; v > n6 {
			n6 = v
		}
		n7 := b3 + c0
		if v := b7 + c3; v > n7 {
			n7 = v
		}

		// Normalize in the same pass to keep metrics bounded over long
		// blocks: subtract the row maximum, leaving unreachable states at
		// exactly negInf (identical to normalize()).
		m := n0
		if n1 > m {
			m = n1
		}
		if n2 > m {
			m = n2
		}
		if n3 > m {
			m = n3
		}
		if n4 > m {
			m = n4
		}
		if n5 > m {
			m = n5
		}
		if n6 > m {
			m = n6
		}
		if n7 > m {
			m = n7
		}
		if m > negInf {
			if n0 > negInf {
				n0 -= m
			}
			if n1 > negInf {
				n1 -= m
			}
			if n2 > negInf {
				n2 -= m
			}
			if n3 > negInf {
				n3 -= m
			}
			if n4 > negInf {
				n4 -= m
			}
			if n5 > negInf {
				n5 -= m
			}
			if n6 > negInf {
				n6 -= m
			}
			if n7 > negInf {
				n7 -= m
			}
		}
		next[0], next[1], next[2], next[3] = n0, n1, n2, n3
		next[4], next[5], next[6], next[7] = n4, n5, n6, n7
	}

	// Tail: compute beta[K] by backward recursion over the three forced
	// termination steps starting from state 0 at the (virtual) step K+3.
	var tb [numStates]float64
	for s := range tb {
		tb[s] = negInf
	}
	tb[0] = 0
	for t := 2; t >= 0; t-- {
		var nb [numStates]float64
		for s := 0; s < numStates; s++ {
			u := feedback[s]
			ns := nextState[s][u]
			if tb[ns] <= negInf {
				nb[s] = negInf
				continue
			}
			gs := 0.5 * xTail[t]
			gp := 0.5 * zTail[t]
			nb[s] = tb[ns] + branchMetric(int(u), parityBit[s][u], gs, gp)
		}
		tb = nb
	}

	// Backward recursion fused with LLR extraction. The beta row for step
	// i+1 lives in b0..b7 while le[i] is computed (m_u = max over states of
	// alpha[i][s] + gamma(s,u) + beta[i+1][nextState[s][u]]), then the row
	// for step i replaces it in the same registers — beta never touches
	// memory, and the separate LLR sweep over the trellis disappears.
	b0, b1, b2, b3 := tb[0], tb[1], tb[2], tb[3]
	b4, b5, b6, b7 := tb[4], tb[5], tb[6], tb[7]
	for i := k - 1; i >= 0; i-- {
		curA := (*[numStates]float64)(alpha[i*numStates:])
		gs, gp := gamma0[i], gamma1[i]
		ngs := -gs
		c0 := gs + gp
		c1 := gs - gp
		c2 := ngs + gp
		c3 := ngs - gp

		a0, a1, a2, a3 := curA[0], curA[1], curA[2], curA[3]
		a4, a5, a6, a7 := curA[4], curA[5], curA[6], curA[7]

		m0 := a0 + c0 + b0
		if v := a1 + c1 + b2; v > m0 {
			m0 = v
		}
		if v := a2 + c1 + b5; v > m0 {
			m0 = v
		}
		if v := a3 + c0 + b7; v > m0 {
			m0 = v
		}
		if v := a4 + c0 + b1; v > m0 {
			m0 = v
		}
		if v := a5 + c1 + b3; v > m0 {
			m0 = v
		}
		if v := a6 + c1 + b4; v > m0 {
			m0 = v
		}
		if v := a7 + c0 + b6; v > m0 {
			m0 = v
		}

		m1 := a0 + c3 + b1
		if v := a1 + c2 + b3; v > m1 {
			m1 = v
		}
		if v := a2 + c2 + b4; v > m1 {
			m1 = v
		}
		if v := a3 + c3 + b6; v > m1 {
			m1 = v
		}
		if v := a4 + c3 + b0; v > m1 {
			m1 = v
		}
		if v := a5 + c2 + b2; v > m1 {
			m1 = v
		}
		if v := a6 + c2 + b5; v > m1 {
			m1 = v
		}
		if v := a7 + c3 + b7; v > m1 {
			m1 = v
		}

		le[i] = (m0 - m1) - lsys[i] - la[i]

		n0 := b0 + c0
		if v := b1 + c3; v > n0 {
			n0 = v
		}
		n1 := b2 + c1
		if v := b3 + c2; v > n1 {
			n1 = v
		}
		n2 := b5 + c1
		if v := b4 + c2; v > n2 {
			n2 = v
		}
		n3 := b7 + c0
		if v := b6 + c3; v > n3 {
			n3 = v
		}
		n4 := b1 + c0
		if v := b0 + c3; v > n4 {
			n4 = v
		}
		n5 := b3 + c1
		if v := b2 + c2; v > n5 {
			n5 = v
		}
		n6 := b4 + c1
		if v := b5 + c2; v > n6 {
			n6 = v
		}
		n7 := b6 + c0
		if v := b7 + c3; v > n7 {
			n7 = v
		}

		m := n0
		if n1 > m {
			m = n1
		}
		if n2 > m {
			m = n2
		}
		if n3 > m {
			m = n3
		}
		if n4 > m {
			m = n4
		}
		if n5 > m {
			m = n5
		}
		if n6 > m {
			m = n6
		}
		if n7 > m {
			m = n7
		}
		if m > negInf {
			if n0 > negInf {
				n0 -= m
			}
			if n1 > negInf {
				n1 -= m
			}
			if n2 > negInf {
				n2 -= m
			}
			if n3 > negInf {
				n3 -= m
			}
			if n4 > negInf {
				n4 -= m
			}
			if n5 > negInf {
				n5 -= m
			}
			if n6 > negInf {
				n6 -= m
			}
			if n7 > negInf {
				n7 -= m
			}
		}
		b0, b1, b2, b3 = n0, n1, n2, n3
		b4, b5, b6, b7 = n4, n5, n6, n7
	}
}

// branchMetric evaluates ½·u_sym·(lsys+la) + ½·z_sym·lpar where gs and gp
// already carry the ½·LLR factors and u_sym, z_sym = ±1 for bits 0/1.
func branchMetric(u int, z byte, gs, gp float64) float64 {
	m := gs
	if u == 1 {
		m = -gs
	}
	if z == 1 {
		m -= gp
	} else {
		m += gp
	}
	return m
}

func normalize(v []float64) {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	if m <= negInf {
		return
	}
	for i := range v {
		if v[i] > negInf {
			v[i] -= m
		}
	}
}
