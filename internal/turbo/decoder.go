package turbo

import "fmt"

// LLR convention throughout: positive ⇒ bit 0 more likely (matching
// internal/modulation's demappers). Branch symbols map bit b to ±1 via
// (1 - 2b), so a branch's metric contribution is ½·symbol·LLR.

const negInf = -1e30

// Decoder is an iterative max-log-MAP turbo decoder for one block size K.
// A Decoder holds scratch buffers and is not safe for concurrent use; the
// PHY chain allocates one per worker.
type Decoder struct {
	K  int
	il *Interleaver

	// MaxIterations bounds the full decoder iterations (the paper's Lm,
	// default 4; each full iteration runs both constituent decoders).
	MaxIterations int

	// scratch
	sysI   []float64 // interleaved systematic LLRs
	la     []float64 // a-priori for decoder 1
	la2    []float64 // a-priori for decoder 2
	le     []float64 // extrinsic out
	alpha  []float64 // (K+1) × numStates
	beta   []float64
	gamma0 []float64 // branch metric for u=0, per step
	gamma1 []float64
	total  []float64
	hard   []byte
}

// NewDecoder builds a decoder for block size k.
func NewDecoder(k int) (*Decoder, error) {
	il, err := NewInterleaver(k)
	if err != nil {
		return nil, err
	}
	return &Decoder{
		K:             k,
		il:            il,
		MaxIterations: 4,
		sysI:          make([]float64, k),
		la:            make([]float64, k),
		la2:           make([]float64, k),
		le:            make([]float64, k),
		alpha:         make([]float64, (k+1)*numStates),
		beta:          make([]float64, (k+1)*numStates),
		gamma0:        make([]float64, k),
		gamma1:        make([]float64, k),
		total:         make([]float64, k),
		hard:          make([]byte, k),
	}, nil
}

// Result reports the outcome of a Decode call.
type Result struct {
	Bits       []byte // K hard-decision bits (aliases decoder scratch; copy to retain)
	Iterations int    // full iterations executed (1..MaxIterations)
	OK         bool   // check function accepted the bits
}

// Decode runs iterative decoding over the three soft streams (each K+4 LLRs,
// as produced by rate dematching). check, if non-nil, is evaluated on the
// hard decisions after each full iteration and decoding stops early when it
// returns true — the LTE receiver uses the code-block CRC here, and the
// returned iteration count is the paper's L.
func (d *Decoder) Decode(s0, s1, s2 []float64, check func([]byte) bool) Result {
	k := d.K
	if len(s0) != k+4 || len(s1) != k+4 || len(s2) != k+4 {
		panic(fmt.Sprintf("turbo: stream lengths (%d,%d,%d), want %d", len(s0), len(s1), len(s2), k+4))
	}
	sys := s0[:k]
	par1 := s1[:k]
	par2 := s2[:k]
	x1, z1, x2, z2 := demuxTails(s0, s1, s2, k)
	d.il.PermuteF(sys, d.sysI)
	for i := range d.la {
		d.la[i] = 0
	}

	res := Result{Bits: d.hard}
	for it := 1; it <= d.MaxIterations; it++ {
		res.Iterations = it
		// Decoder 1 on natural order.
		d.constituent(sys, par1, d.la, x1, z1, d.le)
		// Interleave extrinsic -> a-priori of decoder 2.
		d.il.PermuteF(d.le, d.la2)
		le1 := append([]float64(nil), d.le...) // keep for the final total
		// Decoder 2 on interleaved order.
		d.constituent(d.sysI, par2, d.la2, x2, z2, d.le)
		// Deinterleave extrinsic -> a-priori of decoder 1.
		d.il.InverseF(d.le, d.la)

		for i := 0; i < k; i++ {
			d.total[i] = sys[i] + d.la[i] + le1[i]
			if d.total[i] < 0 {
				d.hard[i] = 1
			} else {
				d.hard[i] = 0
			}
		}
		if check != nil && check(d.hard) {
			res.OK = true
			return res
		}
	}
	res.OK = check == nil
	return res
}

// constituent runs one max-log-MAP pass: systematic LLRs lsys, parity LLRs
// lpar, a-priori la (all length K), plus 3 termination systematic/parity
// LLRs. It writes the extrinsic output into le.
func (d *Decoder) constituent(lsys, lpar, la []float64, xTail, zTail [3]float64, le []float64) {
	k := d.K
	alpha, beta := d.alpha, d.beta

	// Branch metrics: gamma(u) = ½(1-2u)(lsys+la) + ½(1-2z)lpar, with the
	// parity term folded in per-state below (z depends on the state).
	for i := 0; i < k; i++ {
		d.gamma0[i] = 0.5 * (lsys[i] + la[i])
		d.gamma1[i] = 0.5 * lpar[i]
	}

	// Forward recursion. alpha[0] = {0, -inf...}.
	alpha[0] = 0
	for s := 1; s < numStates; s++ {
		alpha[s] = negInf
	}
	for i := 0; i < k; i++ {
		cur := alpha[i*numStates : (i+1)*numStates]
		next := alpha[(i+1)*numStates : (i+2)*numStates]
		for s := range next {
			next[s] = negInf
		}
		gs, gp := d.gamma0[i], d.gamma1[i]
		for s := 0; s < numStates; s++ {
			as := cur[s]
			if as <= negInf {
				continue
			}
			for u := 0; u <= 1; u++ {
				m := as + branchMetric(u, parityBit[s][u], gs, gp)
				ns := nextState[s][u]
				if m > next[ns] {
					next[ns] = m
				}
			}
		}
		// Normalize to keep metrics bounded over long blocks.
		normalize(next)
	}

	// Tail: compute beta[K] by backward recursion over the three forced
	// termination steps starting from state 0 at the (virtual) step K+3.
	var tb [numStates]float64
	for s := range tb {
		tb[s] = negInf
	}
	tb[0] = 0
	for t := 2; t >= 0; t-- {
		var nb [numStates]float64
		for s := 0; s < numStates; s++ {
			u := feedback[s]
			ns := nextState[s][u]
			if tb[ns] <= negInf {
				nb[s] = negInf
				continue
			}
			gs := 0.5 * xTail[t]
			gp := 0.5 * zTail[t]
			nb[s] = tb[ns] + branchMetric(int(u), parityBit[s][u], gs, gp)
		}
		tb = nb
	}
	bk := beta[k*numStates : (k+1)*numStates]
	copy(bk, tb[:])

	// Backward recursion.
	for i := k - 1; i >= 0; i-- {
		nextB := beta[(i+1)*numStates : (i+2)*numStates]
		curB := beta[i*numStates : (i+1)*numStates]
		gs, gp := d.gamma0[i], d.gamma1[i]
		for s := 0; s < numStates; s++ {
			best := negInf
			for u := 0; u <= 1; u++ {
				ns := nextState[s][u]
				if nextB[ns] <= negInf {
					continue
				}
				m := nextB[ns] + branchMetric(u, parityBit[s][u], gs, gp)
				if m > best {
					best = m
				}
			}
			curB[s] = best
		}
		normalize(curB)
	}

	// Per-bit LLR and extrinsic.
	for i := 0; i < k; i++ {
		curA := alpha[i*numStates : (i+1)*numStates]
		nextB := beta[(i+1)*numStates : (i+2)*numStates]
		gs, gp := d.gamma0[i], d.gamma1[i]
		m0, m1 := negInf, negInf
		for s := 0; s < numStates; s++ {
			as := curA[s]
			if as <= negInf {
				continue
			}
			if b := nextB[nextState[s][0]]; b > negInf {
				if m := as + branchMetric(0, parityBit[s][0], gs, gp) + b; m > m0 {
					m0 = m
				}
			}
			if b := nextB[nextState[s][1]]; b > negInf {
				if m := as + branchMetric(1, parityBit[s][1], gs, gp) + b; m > m1 {
					m1 = m
				}
			}
		}
		llr := m0 - m1
		le[i] = llr - lsys[i] - la[i]
	}
}

// branchMetric evaluates ½·u_sym·(lsys+la) + ½·z_sym·lpar where gs and gp
// already carry the ½·LLR factors and u_sym, z_sym = ±1 for bits 0/1.
func branchMetric(u int, z byte, gs, gp float64) float64 {
	m := gs
	if u == 1 {
		m = -gs
	}
	if z == 1 {
		m -= gp
	} else {
		m += gp
	}
	return m
}

func normalize(v []float64) {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	if m <= negInf {
		return
	}
	for i := range v {
		if v[i] > negInf {
			v[i] -= m
		}
	}
}
