package turbo

import (
	"fmt"

	"rtopex/internal/bits"
)

// Segmentation implements code-block segmentation per TS 36.212 §5.1.2:
// a transport block (with its CRC24A already attached) larger than 6144 bits
// is split into C code blocks, each carrying its own CRC24B, with F filler
// bits prepended to the first block.
type Segmentation struct {
	B      int   // input length (TB + CRC24A)
	C      int   // number of code blocks
	F      int   // filler bits in block 0
	Sizes  []int // per-block K values (C entries)
	crcLen int   // 24 when C > 1, else 0
}

// Segment computes the segmentation of a B-bit input.
func Segment(b int) (*Segmentation, error) {
	const z = MaxBlockSize
	if b <= 0 {
		return nil, fmt.Errorf("turbo: cannot segment %d bits", b)
	}
	s := &Segmentation{B: b}
	var bPrime int
	if b <= z {
		s.C = 1
		bPrime = b
	} else {
		s.crcLen = 24
		s.C = (b + (z - 24) - 1) / (z - 24)
		bPrime = b + s.C*24
	}
	kPlus, err := NextBlockSize((bPrime + s.C - 1) / s.C)
	if err != nil {
		return nil, err
	}
	if s.C == 1 {
		s.Sizes = []int{kPlus}
		s.F = kPlus - bPrime
		return s, nil
	}
	kMinus := prevBlockSize(kPlus)
	var cMinus int
	if kMinus > 0 {
		deltaK := kPlus - kMinus
		cMinus = (s.C*kPlus - bPrime) / deltaK
	}
	cPlus := s.C - cMinus
	s.F = cPlus*kPlus + cMinus*kMinus - bPrime
	s.Sizes = make([]int, s.C)
	for i := 0; i < cMinus; i++ {
		s.Sizes[i] = kMinus
	}
	for i := cMinus; i < s.C; i++ {
		s.Sizes[i] = kPlus
	}
	return s, nil
}

func prevBlockSize(k int) int {
	prev := 0
	for _, e := range qppTable {
		if e.k >= k {
			break
		}
		prev = e.k
	}
	return prev
}

// Split partitions the input bit sequence (length B) into the code blocks,
// inserting F zero filler bits at the head of block 0 and appending CRC24B
// to every block when C > 1. Each returned block has length Sizes[i].
func (s *Segmentation) Split(in []byte) ([][]byte, error) {
	if len(in) != s.B {
		return nil, fmt.Errorf("turbo: Split input length %d, want %d", len(in), s.B)
	}
	out := make([][]byte, s.C)
	pos := 0
	for r := 0; r < s.C; r++ {
		k := s.Sizes[r]
		payload := k - s.crcLen
		blk := make([]byte, 0, k)
		if r == 0 {
			blk = append(blk, make([]byte, s.F)...) // filler zeros
			take := payload - s.F
			blk = append(blk, in[pos:pos+take]...)
			pos += take
		} else {
			blk = append(blk, in[pos:pos+payload]...)
			pos += payload
		}
		if s.crcLen > 0 {
			blk = bits.AppendCRC(blk, bits.CRC24B(blk), 24)
		}
		out[r] = blk
	}
	if pos != s.B {
		return nil, fmt.Errorf("turbo: Split consumed %d of %d bits", pos, s.B)
	}
	return out, nil
}

// Join reassembles decoded code blocks into the original B-bit sequence,
// stripping fillers and per-block CRCs. It does not verify the CRCs — the
// decoder already used them for early termination; callers that need a
// trustworthy answer verify the transport-block CRC24A over the result.
func (s *Segmentation) Join(blocks [][]byte) ([]byte, error) {
	return s.JoinInto(make([]byte, s.B), blocks)
}

// JoinInto is Join into a caller-provided buffer of exactly B bytes — the
// allocation-free path of the receive chain. It returns dst for convenience.
func (s *Segmentation) JoinInto(dst []byte, blocks [][]byte) ([]byte, error) {
	if len(blocks) != s.C {
		return nil, fmt.Errorf("turbo: Join got %d blocks, want %d", len(blocks), s.C)
	}
	if len(dst) != s.B {
		return nil, fmt.Errorf("turbo: Join buffer length %d, want %d", len(dst), s.B)
	}
	pos := 0
	for r, blk := range blocks {
		if len(blk) != s.Sizes[r] {
			return nil, fmt.Errorf("turbo: block %d length %d, want %d", r, len(blk), s.Sizes[r])
		}
		payload := blk[:len(blk)-s.crcLen]
		if r == 0 {
			payload = payload[s.F:]
		}
		pos += copy(dst[pos:], payload)
	}
	return dst, nil
}

// CheckBlockCRC verifies the CRC24B of one decoded code block. For C == 1
// there is no per-block CRC and it always returns true; the caller should
// check the transport-block CRC24A instead.
func (s *Segmentation) CheckBlockCRC(block []byte) bool {
	if s.crcLen == 0 {
		return true
	}
	return bits.CheckCRC24B(block)
}

// PerBlockE computes the rate-matching output size E_r for each code block
// given the total number of codeword bits g (= data REs × modulation order)
// per TS 36.212 §5.1.4.1.2 with a single layer.
func PerBlockE(g, c, qm int) ([]int, error) {
	if c <= 0 || qm <= 0 || g <= 0 {
		return nil, fmt.Errorf("turbo: invalid PerBlockE(%d,%d,%d)", g, c, qm)
	}
	if g%qm != 0 {
		return nil, fmt.Errorf("turbo: G=%d not a multiple of Qm=%d", g, qm)
	}
	gPrime := g / qm
	gamma := gPrime % c
	es := make([]int, c)
	for r := 0; r < c; r++ {
		if r <= c-gamma-1 {
			es[r] = qm * (gPrime / c)
		} else {
			es[r] = qm * ((gPrime + c - 1) / c)
		}
	}
	return es, nil
}
