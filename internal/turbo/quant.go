package turbo

import "rtopex/internal/modulation"

// Quantized max-log-MAP path.
//
// Input LLRs are quantized once, at the Decode boundary, to the Q9.6 format
// fixed in internal/modulation (LLRQScale = 64, rail ±LLRQMax = ±8191).
// Extrinsics are clamped back to the same rail after every constituent pass,
// so every soft quantity the decoder circulates — systematic, parity,
// a-priori, extrinsic — honours one invariant: |value| ≤ LLRQMax.
//
// Metric conventions, chosen so everything provably fits the integer widths:
//
//   - Branch metrics are DOUBLED relative to the float64 path: a branch with
//     symbols (u, z) contributes ±gs ± gp with gs = lsys+la and gp = lpar,
//     not ½ of that. Doubling every path metric by the same factor leaves
//     every max decision unchanged and drops the halving from the hot loop;
//     the a-posteriori LLR is recovered as (m0−m1)>>1. With the rail
//     invariant, |gs| ≤ 2·LLRQMax and |c| = |±gs±gp| ≤ 3·LLRQMax = 24573 —
//     comfortably int16, and int32 accumulators never come near overflow.
//
//   - State metrics are renormalized every trellis step by subtracting the
//     running row maximum (the standard SIMD-decoder layout), then saturated
//     at qFloor. The winning state sits at exactly 0, so stored rows live in
//     [qFloor, 0] and fit int16. Saturating the floor is harmless: a state
//     whose metric trails the winner by 32767 (512 LLR units) never competes.
//
//   - Unreachable states exist only near the trellis edges. The forward
//     recursion starts from state 0 and reaches all 8 states after 3 steps;
//     the backward recursion is seeded through the termination tail, from
//     which every step-K state reaches state 0, so beta is finite
//     everywhere. Guards therefore run only in a 3-step forward prologue and
//     a 3-step LLR epilogue (cold, table-driven); the hot loops are entirely
//     guard-free. Stored sentinel is qSent = -32768 — distinguishable from
//     real metrics, which saturate at qFloor = -32767 — and the prologue
//     computes in int32 with qSentI32 = −2²⁸ so sentinels cannot creep back
//     into contention through additions (|c| ≤ 24573 ≪ 2²⁸).
//
// constituentQ below is the radix-2 scalar reference for these
// conventions. radix4.go dispatches the same recursions to fused two-stage
// AVX2 kernels (quant_avx2_amd64.s, lane layout documented there) with
// renormalization kept per stage, so both steppers clamp identically and
// produce identical bits; batch.go interleaves several blocks' passes over
// either stepper through the quantRun half-iteration machine below.
const (
	// qSent marks an unreachable state in stored int16 alpha rows. It is
	// int16 minimum, one below the qFloor saturation rail, so a stored
	// value equals qSent if and only if the state was unreachable.
	qSent = -32768
	// qFloor is the saturation floor for normalized state metrics.
	qFloor int32 = -32767
	// qSentI32 is the in-register sentinel for the guarded edge passes.
	// Large enough in magnitude that sentinel+branch never beats a genuine
	// path, small enough that int32 sums cannot wrap.
	qSentI32 int32 = -1 << 28
)

// demuxTailsI16 mirrors demuxTails for the quantized streams.
func demuxTailsI16(s0, s1, s2 []int16, k int) (x1, z1, x2, z2 [3]int16) {
	x1 = [3]int16{s0[k], s2[k], s1[k+1]}
	z1 = [3]int16{s1[k], s0[k+1], s2[k+1]}
	x2 = [3]int16{s0[k+2], s2[k+2], s1[k+3]}
	z2 = [3]int16{s1[k+2], s0[k+3], s2[k+3]}
	return
}

// quantRun is the per-block state of the int16 iteration pipeline,
// factored into explicit half-iteration steps so a Batch (batch.go) can
// interleave several blocks' passes under one schedule. decodeQuant drives
// the same steps for a single block, so single and batched decodes execute
// the identical per-block operation sequence — bit-identity between them
// is structural, not coincidental.
type quantRun struct {
	d     *Decoder
	check func([]byte) bool
	// s2 is the decoder-2 parity stream in float form: its K-element body
	// is quantized lazily on the first decoder-2 pass (see half2), because
	// at operating SNR most blocks terminate after the first decoder-1
	// pass and never need it. The 4 tail elements are quantized eagerly in
	// begin — the termination tails straddle all three streams.
	s2              []float64
	sys, par1, par2 []int16
	x1, z1, x2, z2  [3]int16
	hard1           []byte
	it              int // current full iteration, 1-based
	d2Ready         bool
	done            bool
	res             Result
}

// begin quantizes the decoder-1-side inputs and arms the run. Decoder-2
// input preparation (quantizing the second parity body, interleaving the
// systematic) is deferred to the first half2 call.
func (r *quantRun) begin(d *Decoder, s0, s1, s2 []float64, check func([]byte) bool) {
	k := d.K
	modulation.QuantizeLLRsInto(d.q0, s0)
	modulation.QuantizeLLRsInto(d.q1, s1)
	for j := k; j < k+4; j++ {
		d.q2[j] = modulation.QuantizeLLR(s2[j])
	}
	r.d = d
	r.check = check
	r.s2 = s2
	r.sys = d.q0[:k]
	r.par1 = d.q1[:k]
	r.par2 = d.q2[:k]
	r.x1, r.z1, r.x2, r.z2 = demuxTailsI16(d.q0, d.q1, d.q2, k)
	// Hard decisions fall out of the constituent passes for free: the
	// backward loop already computes the unclamped a-posteriori m0−m1 per
	// bit, so each pass writes sign bits as it goes (decoder 2's in the
	// interleaved domain, deinterleaved before the CRC). When check is nil
	// only the final pass needs decisions.
	r.hard1 = nil
	if check != nil {
		r.hard1 = d.hard
	}
	r.it = 0
	r.d2Ready = false
	r.done = false
	r.res = Result{Bits: d.hard}
}

// shouldCheck applies the CRC-check cadence: pass is the 1-based
// constituent-pass index (2 per full iteration); the final decoder-2 pass
// is always checked so a cadence can never suppress the only verdict.
func (r *quantRun) shouldCheck(pass int, final bool) bool {
	if r.check == nil {
		return false
	}
	if final {
		return true
	}
	c := r.d.CheckCadence
	if c <= 1 {
		return true
	}
	return pass%c == 0
}

// half1 runs one decoder-1 pass and its cadenced CRC check. Reports (and
// records) whether the run is finished.
func (r *quantRun) half1() bool {
	d := r.d
	r.it++
	r.res.Iterations = r.it
	la := d.qla
	if r.it == 1 {
		// The a-priori is identically zero before the first pass; nil la
		// lets the constituent pass skip the add entirely (and the
		// pipeline never has to clear d.qla — every later iteration
		// rewrites it in full via InverseI16).
		la = nil
	}
	d.constituentPass(r.sys, r.par1, la, r.x1, r.z1, d.qle1, r.hard1)
	if r.shouldCheck(2*r.it-1, false) && r.check(d.hard) {
		r.res.OK = true
		r.done = true
	}
	return r.done
}

// half2 runs one decoder-2 pass (preparing its inputs on first use), the
// extrinsic deinterleave, and the cadenced CRC check. Reports (and
// records) whether the run is finished.
func (r *quantRun) half2() bool {
	d := r.d
	k := d.K
	if !r.d2Ready {
		modulation.QuantizeLLRsInto(r.par2, r.s2[:k])
		d.il.PermuteI16(r.sys, d.qsysI)
		r.d2Ready = true
	}
	hard2 := []byte(nil)
	if r.check != nil || r.it == d.MaxIterations {
		hard2 = d.qhardI
	}
	d.il.PermuteI16(d.qle1, d.qla2)
	d.constituentPass(d.qsysI, r.par2, d.qla2, r.x2, r.z2, d.qle, hard2)
	d.il.InverseI16(d.qle, d.qla)
	if r.shouldCheck(2*r.it, r.it == d.MaxIterations) {
		d.il.Inverse(d.qhardI, d.hard)
		if r.check(d.hard) {
			r.res.OK = true
			r.done = true
			return true
		}
	}
	if r.it == d.MaxIterations {
		r.done = true
		if r.check == nil {
			d.il.Inverse(d.qhardI, d.hard)
			r.res.OK = true
		}
	}
	return r.done
}

// decodeQuant is the int16 iteration pipeline. It mirrors decodeFloat
// half-iteration for half-iteration; only the constituent arithmetic, the
// buffer types, and the (configurable) check cadence differ.
func (d *Decoder) decodeQuant(s0, s1, s2 []float64, check func([]byte) bool) Result {
	if d.MaxIterations < 1 {
		if check == nil {
			d.il.Inverse(d.qhardI, d.hard)
			return Result{Bits: d.hard, OK: true}
		}
		return Result{Bits: d.hard}
	}
	var r quantRun
	r.begin(d, s0, s1, s2, check)
	for {
		if r.half1() {
			return r.res
		}
		if r.half2() {
			return r.res
		}
	}
}

// constituentQ is one fixed-point max-log-MAP pass: the int16 counterpart of
// constituent, with doubled branch metrics and per-step renormalization as
// described in the header comment. The state wiring in the unrolled loops is
// identical to the float64 path's (and so covered by TestConstituentWiring);
// the table-driven prologue/epilogue are cross-checked against the unrolled
// wiring by the quantized tests.
//
// When hard is non-nil it receives this pass's hard decisions, in this
// pass's bit order: hard[i] is the sign bit of the unclamped a-posteriori
// m0−m1, taken before the extrinsic is clamped to the rail — the true
// max-log decision, at zero extra cost.
func (d *Decoder) constituentQ(lsys, lpar, la []int16, xTail, zTail [3]int16, le []int16, hard []byte) {
	k := d.K
	alpha := d.qalpha

	// Per-step metric halves: qg0 = lsys+la (systematic+a-priori), qg1 =
	// parity. Both int16-exact under the rail invariant. A nil la means
	// "identically zero" (the first decoder-1 pass), making qg0 a plain
	// copy of the systematic stream.
	qg0, qg1 := d.qg0, d.qg1
	copy(qg1[:k], lpar[:k])
	if la == nil {
		copy(qg0[:k], lsys[:k])
	} else {
		for i := 0; i < k; i++ {
			qg0[i] = lsys[i] + la[i]
		}
	}

	// Forward prologue: steps 0..2 still have unreachable states, handled
	// in int32 with explicit sentinels, table-driven (cold path).
	var av [numStates]int32
	av[0] = 0
	alpha[0] = 0
	for s := 1; s < numStates; s++ {
		av[s] = qSentI32
		alpha[s] = qSent
	}
	pro := 3
	if k < pro {
		pro = k
	}
	for i := 0; i < pro; i++ {
		gs, gp := int32(qg0[i]), int32(qg1[i])
		c := [4]int32{gs + gp, gs - gp, -gs + gp, -gs - gp} // indexed 2u+z
		var nv [numStates]int32
		for s := range nv {
			nv[s] = qSentI32
		}
		for s := 0; s < numStates; s++ {
			if av[s] <= qSentI32 {
				continue
			}
			for u := byte(0); u < 2; u++ {
				ns := nextState[s][u]
				if v := av[s] + c[2*u+parityBit[s][u]]; v > nv[ns] {
					nv[ns] = v
				}
			}
		}
		m := nv[0]
		for s := 1; s < numStates; s++ {
			m = max(m, nv[s])
		}
		next := (*[numStates]int16)(alpha[(i+1)*numStates:])
		for s := 0; s < numStates; s++ {
			if nv[s] <= qSentI32 {
				av[s] = qSentI32
				next[s] = qSent
			} else {
				av[s] = max(nv[s]-m, qFloor)
				next[s] = int16(av[s])
			}
		}
	}

	// Forward main loop: every state reachable, no guards. Metrics live in
	// int32 registers — the row computed at step i is both stored (int16,
	// for the backward pass) and carried directly into step i+1, so the hot
	// loop never reloads alpha. Rows are renormalized against the running
	// max and saturated at qFloor before the store.
	{
		b0, b1, b2, b3 := av[0], av[1], av[2], av[3]
		b4, b5, b6, b7 := av[4], av[5], av[6], av[7]
		for i := pro; i < k; i++ {
			next := (*[numStates]int16)(alpha[(i+1)*numStates:])
			gs, gp := int32(qg0[i]), int32(qg1[i])
			c0 := gs + gp // u=0, z=0
			c1 := gs - gp // u=0, z=1
			c2 := -c1     // u=1, z=0
			c3 := -c0     // u=1, z=1

			n0 := max(b0+c0, b4+c3)
			n1 := max(b0+c3, b4+c0)
			n2 := max(b1+c1, b5+c2)
			n3 := max(b1+c2, b5+c1)
			n4 := max(b2+c2, b6+c1)
			n5 := max(b2+c1, b6+c2)
			n6 := max(b3+c3, b7+c0)
			n7 := max(b3+c0, b7+c3)

			m := max(max(max(n0, n1), max(n2, n3)), max(max(n4, n5), max(n6, n7)))
			b0 = max(n0-m, qFloor)
			b1 = max(n1-m, qFloor)
			b2 = max(n2-m, qFloor)
			b3 = max(n3-m, qFloor)
			b4 = max(n4-m, qFloor)
			b5 = max(n5-m, qFloor)
			b6 = max(n6-m, qFloor)
			b7 = max(n7-m, qFloor)
			next[0], next[1], next[2], next[3] = int16(b0), int16(b1), int16(b2), int16(b3)
			next[4], next[5], next[6], next[7] = int16(b4), int16(b5), int16(b6), int16(b7)
		}
	}

	// Tail: beta[K] by backward recursion over the three forced termination
	// steps from state 0 at virtual step K+3. Doubled metrics, guarded.
	var tb [numStates]int32
	for s := range tb {
		tb[s] = qSentI32
	}
	tb[0] = 0
	for t := 2; t >= 0; t-- {
		gs, gp := int32(xTail[t]), int32(zTail[t])
		var nb [numStates]int32
		for s := 0; s < numStates; s++ {
			u := feedback[s]
			ns := nextState[s][u]
			if tb[ns] <= qSentI32 {
				nb[s] = qSentI32
				continue
			}
			m := gs
			if u == 1 {
				m = -gs
			}
			if parityBit[s][u] == 1 {
				m -= gp
			} else {
				m += gp
			}
			nb[s] = tb[ns] + m
		}
		tb = nb
	}

	// Backward recursion fused with LLR extraction, mirroring the float64
	// path. After the termination tail every state is reachable, so beta
	// needs no guards anywhere; only the alpha reads at i < 3 do, and those
	// drop to the table-driven epilogue.
	//
	// Beta lives in int32 registers and is never stored, so unlike alpha it
	// needs no per-row renormalization: each step moves the row by at most
	// max|c| ≤ 3·LLRQMax ≈ 24.6k, so over K ≤ 6144 steps the absolute drift
	// stays under 1.6e8 — far inside int32 — and every m0/m1 sum below is a
	// row-relative difference where the drift cancels exactly.
	b0, b1, b2, b3 := tb[0], tb[1], tb[2], tb[3]
	b4, b5, b6, b7 := tb[4], tb[5], tb[6], tb[7]
	for i := k - 1; i >= 0; i-- {
		curA := (*[numStates]int16)(alpha[i*numStates:])
		gs, gp := int32(qg0[i]), int32(qg1[i])
		c0 := gs + gp
		c1 := gs - gp
		c2 := -c1
		c3 := -c0

		var m0, m1 int32
		if i >= pro {
			a0, a1, a2, a3 := int32(curA[0]), int32(curA[1]), int32(curA[2]), int32(curA[3])
			a4, a5, a6, a7 := int32(curA[4]), int32(curA[5]), int32(curA[6]), int32(curA[7])

			m0 = a0 + c0 + b0
			m0 = max(m0, a1+c1+b2)
			m0 = max(m0, a2+c1+b5)
			m0 = max(m0, a3+c0+b7)
			m0 = max(m0, a4+c0+b1)
			m0 = max(m0, a5+c1+b3)
			m0 = max(m0, a6+c1+b4)
			m0 = max(m0, a7+c0+b6)

			m1 = a0 + c3 + b1
			m1 = max(m1, a1+c2+b3)
			m1 = max(m1, a2+c2+b4)
			m1 = max(m1, a3+c3+b6)
			m1 = max(m1, a4+c3+b0)
			m1 = max(m1, a5+c2+b2)
			m1 = max(m1, a6+c2+b5)
			m1 = max(m1, a7+c3+b7)
		} else {
			// Epilogue: some alpha entries are sentinels; skip their
			// branches, table-driven (cold path: at most 3 steps).
			bv := [numStates]int32{b0, b1, b2, b3, b4, b5, b6, b7}
			c := [4]int32{c0, c1, c2, c3}
			m0, m1 = qSentI32, qSentI32
			for s := 0; s < numStates; s++ {
				if curA[s] == qSent {
					continue
				}
				a := int32(curA[s])
				if v := a + c[parityBit[s][0]] + bv[nextState[s][0]]; v > m0 {
					m0 = v
				}
				if v := a + c[2+int(parityBit[s][1])] + bv[nextState[s][1]]; v > m1 {
					m1 = v
				}
			}
		}

		// Doubled metrics halve back here; the shift's floor bias on odd
		// differences is half a quantization step, below decision
		// resolution. Clamping to the rail maintains the invariant that
		// feeds the next pass's a-priori.
		if hard != nil {
			hard[i] = byte(uint32(m0-m1) >> 31)
		}
		le[i] = int16(min(max((m0-m1)>>1-gs, -modulation.LLRQMax), modulation.LLRQMax))

		n0 := max(b0+c0, b1+c3)
		n1 := max(b2+c1, b3+c2)
		n2 := max(b5+c1, b4+c2)
		n3 := max(b7+c0, b6+c3)
		n4 := max(b1+c0, b0+c3)
		n5 := max(b3+c1, b2+c2)
		n6 := max(b4+c1, b5+c2)
		n7 := max(b6+c0, b7+c3)
		b0, b1, b2, b3 = n0, n1, n2, n3
		b4, b5, b6, b7 = n4, n5, n6, n7
	}
}
