package turbo

import "fmt"

// Batch decodes several code blocks through the quantized pipeline under a
// shared half-iteration schedule: each sweep walks every still-active
// block's constituent pass back-to-back before any block advances to the
// next half-iteration, so the trellis kernels, permutation tables and
// branch-metric constants stay hot across blocks instead of each block
// running its full iteration loop cold. The per-block operation sequence
// is exactly the one Decode executes (the blocks are independent; only the
// interleaving across blocks differs), so batched results are bit-identical
// to per-block Decode calls by construction — TestBatchMatchesSingle pins
// this on the differential grid.
//
// Early termination is per block: a block leaves the schedule the moment
// its CRC passes — including at iteration 0 via the raw-systematic
// precheck, which Run evaluates for each block individually before any
// trellis work, so a clean block never pays a constituent pass just
// because its batch-mates are dirty.
//
// A Batch is reusable scratch and allocates only when its capacity grows:
// Reset, Add each block, Run, then read Result(i). Not safe for concurrent
// use; the PHY receiver holds one per worker. Blocks whose Decoder selects
// the float64 path fall back to a plain Decode call at Run time.
type Batch struct {
	items []batchItem
}

type batchItem struct {
	d          *Decoder
	s0, s1, s2 []float64
	check      func([]byte) bool
	run        quantRun
	active     bool
	res        Result
}

// NewBatch returns a Batch with capacity for n blocks (it grows beyond n
// if needed, at the cost of an allocation).
func NewBatch(n int) *Batch {
	return &Batch{items: make([]batchItem, 0, n)}
}

// Reset empties the batch for reuse. Retained capacity keeps Add
// allocation-free up to the previous block count.
func (b *Batch) Reset() { b.items = b.items[:0] }

// Len reports the number of blocks added since the last Reset.
func (b *Batch) Len() int { return len(b.items) }

// Add enqueues one block: the three soft streams (each K+4 LLRs, matching
// d.K) and an optional CRC check, with the same contract as d.Decode.
// Returns the block's index for Result. Every block needs its own Decoder —
// the interleaved schedule keeps all blocks' trellis scratch live at once,
// so a shared Decoder would corrupt both blocks (Add panics on one).
func (b *Batch) Add(d *Decoder, s0, s1, s2 []float64, check func([]byte) bool) int {
	k := d.K
	if len(s0) != k+4 || len(s1) != k+4 || len(s2) != k+4 {
		panic(fmt.Sprintf("turbo: batch stream lengths (%d,%d,%d), want %d", len(s0), len(s1), len(s2), k+4))
	}
	for i := range b.items {
		if b.items[i].d == d {
			panic("turbo: decoder added to batch twice")
		}
	}
	b.items = append(b.items, batchItem{d: d, s0: s0, s1: s1, s2: s2, check: check})
	return len(b.items) - 1
}

// Run decodes every added block. Results are available via Result until
// the next Reset.
func (b *Batch) Run() {
	// Phase 0, per block: float-path fallback, raw-systematic precheck,
	// and decoder-1 input quantization for the blocks that stay.
	nActive := 0
	for i := range b.items {
		it := &b.items[i]
		d := it.d
		if d.Path == PathFloat64 || d.MaxIterations < 1 {
			it.res = d.Decode(it.s0, it.s1, it.s2, it.check)
			it.active = false
			continue
		}
		if it.check != nil && d.PrecheckRaw {
			hard := d.hard
			for j, v := range it.s0[:d.K] {
				if v < 0 {
					hard[j] = 1
				} else {
					hard[j] = 0
				}
			}
			if it.check(hard) {
				it.res = Result{Bits: hard, Iterations: 0, OK: true}
				it.active = false
				continue
			}
		}
		it.run.begin(d, it.s0, it.s1, it.s2, it.check)
		it.active = true
		nActive++
	}

	// Half-iteration sweeps: all active blocks run decoder 1, then all
	// survivors run decoder 2. Blocks terminate individually.
	for nActive > 0 {
		for i := range b.items {
			it := &b.items[i]
			if it.active && it.run.half1() {
				it.res = it.run.res
				it.active = false
				nActive--
			}
		}
		for i := range b.items {
			it := &b.items[i]
			if it.active && it.run.half2() {
				it.res = it.run.res
				it.active = false
				nActive--
			}
		}
	}
}

// Result returns block i's decode result (valid after Run, until Reset).
func (b *Batch) Result(i int) Result { return b.items[i].res }
