package turbo

import "fmt"

// encodeWith turbo-encodes one code block of a valid size K using a prebuilt
// interleaver, producing the three output streams d0 (systematic), d1
// (parity 1) and d2 (parity 2), each of length K+4. The final four positions
// of each stream carry the multiplexed trellis-termination bits per
// TS 36.212 §5.1.3.2.2.
func encodeWith(block []byte, il *Interleaver) [][]byte {
	k := len(block)
	interleaved := il.Permute(block, nil)

	p1, x1, z1 := rscEncode(block)
	p2, x2, z2 := rscEncode(interleaved)

	d0 := make([]byte, k+4)
	d1 := make([]byte, k+4)
	d2 := make([]byte, k+4)
	copy(d0, block)
	copy(d1, p1)
	copy(d2, p2)

	// Termination multiplexing (x = systematic tail, z = parity tail;
	// unprimed from encoder 1, primed from encoder 2):
	//   d0: x_K,   z_{K+1}, x'_K,   z'_{K+1}
	//   d1: z_K,   x_{K+2}, z'_K,   x'_{K+2}
	//   d2: x_{K+1}, z_{K+2}, x'_{K+1}, z'_{K+2}
	d0[k], d0[k+1], d0[k+2], d0[k+3] = x1[0], z1[1], x2[0], z2[1]
	d1[k], d1[k+1], d1[k+2], d1[k+3] = z1[0], x1[2], z2[0], x2[2]
	d2[k], d2[k+1], d2[k+2], d2[k+3] = x1[1], z1[2], x2[1], z2[2]
	return [][]byte{d0, d1, d2}
}

// EncodeStreams is the allocating convenience wrapper used by the
// transmitter: it validates K and returns the three K+4 streams.
func EncodeStreams(block []byte) (streams [][]byte, err error) {
	il, err := NewInterleaver(len(block))
	if err != nil {
		return nil, err
	}
	return encodeWith(block, il), nil
}

// demuxTails splits the last four entries of the three soft streams back
// into per-encoder tail LLRs, inverting the multiplexing above.
func demuxTails(s0, s1, s2 []float64, k int) (x1, z1, x2, z2 [3]float64) {
	x1 = [3]float64{s0[k], s2[k], s1[k+1]}
	z1 = [3]float64{s1[k], s0[k+1], s2[k+1]}
	x2 = [3]float64{s0[k+2], s2[k+2], s1[k+3]}
	z2 = [3]float64{s1[k+2], s0[k+3], s2[k+3]}
	return
}

func validateBlockLen(k int) error {
	if _, _, err := qppParams(k); err != nil {
		return fmt.Errorf("turbo: invalid block length %d", k)
	}
	return nil
}
