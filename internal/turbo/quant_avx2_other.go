//go:build !amd64

package turbo

// Non-amd64 builds have no fused-kernel support; Radix4 decoders fall back
// to the radix-2 scalar stepper (bit-identical outputs, see radix4.go).
const radix4HW = false

func forwardStepsAVX2(rows *int16, qg0 *int16, qg1 *int16, n int, av *[8]int32) {
	panic("turbo: forwardStepsAVX2 without hardware support")
}

func backwardLLRAVX2(rows *int16, qg0 *int16, qg1 *int16, n int, bv *[8]int32, le *int16, hard *byte) {
	panic("turbo: backwardLLRAVX2 without hardware support")
}
