package turbo

// Kernel bindings for the AVX2 radix-4 stepper (quant_avx2_amd64.s).

// forwardStepsAVX2 runs n unguarded forward trellis stages: stage j reads
// qg0[j]/qg1[j], renormalizes and clamps exactly like the scalar loop, and
// stores the int16 row at rows[j*8:]. The int32 state vector is carried in
// *av across the call.
//
//go:noescape
func forwardStepsAVX2(rows *int16, qg0 *int16, qg1 *int16, n int, av *[8]int32)

// backwardLLRAVX2 runs stages j = n−1 … 0 of the fused backward/LLR
// recursion over stored alpha rows, updating beta in *bv and writing le[j]
// and the hard sign bit hard[j] per stage. hard must be a valid slice (the
// caller substitutes scratch when decisions are not wanted).
//
//go:noescape
func backwardLLRAVX2(rows *int16, qg0 *int16, qg1 *int16, n int, bv *[8]int32, le *int16, hard *byte)

// cpuSupportsAVX2 probes CPUID (including OS XSAVE state) for AVX2.
func cpuSupportsAVX2() bool

// radix4HW reports hardware support for the fused kernels. Split from
// radix4Enabled so tests can force the scalar fallback.
var radix4HW = cpuSupportsAVX2()
