package turbo

import "fmt"

// Sub-block interleaver column permutation (TS 36.212 Table 5.1.4-1).
var colPerm = [32]int{
	0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30,
	1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31,
}

// RateMatcher performs circular-buffer rate matching for one turbo code
// block of size K: sub-block interleaving of the three D = K+4 streams,
// bit collection into the length-3·KΠ circular buffer, and bit selection /
// soft combining. The uplink soft-buffer is unrestricted, so Ncb = 3·KΠ.
type RateMatcher struct {
	K   int // info block size
	D   int // per-stream length, K+4
	R   int // sub-block rows
	KPi int // padded per-stream length, R·32
	Ncb int // circular buffer length, 3·KPi

	// wStream/wIndex map circular-buffer position -> (stream, in-stream
	// index), with stream = -1 marking <NULL> padding positions.
	wStream []int8
	wIndex  []int32
}

// NewRateMatcher builds the interleaving maps for block size k (validated
// against the QPP table, since rate matching always follows encoding).
func NewRateMatcher(k int) (*RateMatcher, error) {
	if err := validateBlockLen(k); err != nil {
		return nil, err
	}
	d := k + 4
	r := (d + 31) / 32
	kpi := 32 * r
	nd := kpi - d // leading <NULL> count
	rm := &RateMatcher{
		K: k, D: d, R: r, KPi: kpi, Ncb: 3 * kpi,
		wStream: make([]int8, 3*kpi),
		wIndex:  make([]int32, 3*kpi),
	}

	// Streams 0 and 1: write row-wise (with nd NULLs first), permute
	// columns, read column-wise. Position n = c·R + row reads matrix cell
	// (row, colPerm[c]) = original index row·32 + colPerm[c] - nd.
	sub01 := make([]int32, kpi)
	for c := 0; c < 32; c++ {
		for row := 0; row < r; row++ {
			orig := row*32 + colPerm[c] - nd
			if orig < 0 {
				sub01[c*r+row] = -1
			} else {
				sub01[c*r+row] = int32(orig)
			}
		}
	}
	// Stream 2 uses the shifted permutation
	// π(n) = (colPerm[⌊n/R⌋] + 32·(n mod R) + 1) mod KΠ.
	sub2 := make([]int32, kpi)
	for n := 0; n < kpi; n++ {
		pi := (colPerm[n/r] + 32*(n%r) + 1) % kpi
		orig := pi - nd
		if orig < 0 {
			sub2[n] = -1
		} else {
			sub2[n] = int32(orig)
		}
	}

	// Circular buffer: w[0..KΠ) = v0; then v1 and v2 interlaced.
	for n := 0; n < kpi; n++ {
		rm.place(n, 0, sub01[n])
		rm.place(kpi+2*n, 1, sub01[n])
		rm.place(kpi+2*n+1, 2, sub2[n])
	}
	return rm, nil
}

func (rm *RateMatcher) place(pos int, stream int8, orig int32) {
	if orig < 0 {
		rm.wStream[pos] = -1
		return
	}
	rm.wStream[pos] = stream
	rm.wIndex[pos] = orig
}

// k0 returns the bit-selection start for redundancy version rv.
func (rm *RateMatcher) k0(rv int) int {
	// k0 = R·(2·⌈Ncb/(8R)⌉·rv + 2); with Ncb = 96R the ceil term is 12.
	return rm.R * (2*((rm.Ncb+8*rm.R-1)/(8*rm.R))*rv + 2)
}

// Match selects e output bits for redundancy version rv from the encoded
// streams (each of length K+4). Selection wraps the circular buffer,
// skipping NULLs, so e may exceed the mother-code length (repetition).
func (rm *RateMatcher) Match(streams [][]byte, e, rv int) ([]byte, error) {
	if len(streams) != 3 {
		return nil, fmt.Errorf("turbo: Match needs 3 streams, got %d", len(streams))
	}
	for i, s := range streams {
		if len(s) != rm.D {
			return nil, fmt.Errorf("turbo: stream %d length %d, want %d", i, len(s), rm.D)
		}
	}
	if e <= 0 {
		return nil, fmt.Errorf("turbo: non-positive output length %d", e)
	}
	out := make([]byte, 0, e)
	pos := rm.k0(rv) % rm.Ncb
	for len(out) < e {
		if s := rm.wStream[pos]; s >= 0 {
			out = append(out, streams[s][rm.wIndex[pos]])
		}
		pos++
		if pos == rm.Ncb {
			pos = 0
		}
	}
	return out, nil
}

// CoversSystematic reports whether bit selection at (e, rv) observes every
// systematic information position (stream-0 indices below K). When it does
// not — e.g. rv 0 starts the circular buffer 2R positions in, puncturing the
// first ~2R systematic bits at high code rates — raw hard decisions can
// never pass a CRC and the decoder's iteration-0 pre-check is futile; the
// receiver uses this to decide whether to enable it. O(Ncb); call at setup,
// not per subframe.
func (rm *RateMatcher) CoversSystematic(e, rv int) bool {
	if e <= 0 {
		return false
	}
	seen := make([]bool, rm.K)
	covered := 0
	pos := rm.k0(rv) % rm.Ncb
	for i := 0; i < e; {
		if s := rm.wStream[pos]; s >= 0 {
			if s == 0 {
				if idx := int(rm.wIndex[pos]); idx < rm.K && !seen[idx] {
					seen[idx] = true
					covered++
					if covered == rm.K {
						return true
					}
				}
			}
			i++
		}
		pos++
		if pos == rm.Ncb {
			pos = 0
		}
	}
	return false
}

// Dematch distributes e received LLRs back into per-stream soft values,
// soft-combining repeated positions by addition. Unobserved (punctured)
// positions are zero. The returned slices have length K+4 each.
func (rm *RateMatcher) Dematch(llrs []float64, rv int) (s0, s1, s2 []float64, err error) {
	s0 = make([]float64, rm.D)
	s1 = make([]float64, rm.D)
	s2 = make([]float64, rm.D)
	if err := rm.DematchInto(s0, s1, s2, llrs, rv); err != nil {
		return nil, nil, nil, err
	}
	return s0, s1, s2, nil
}

// DematchInto accumulates e received LLRs into existing per-stream soft
// buffers (each of length K+4) — the HARQ soft-combining path: successive
// transmissions at different redundancy versions add their evidence into
// the same buffers (incremental redundancy), and repeats of the same rv
// chase-combine.
func (rm *RateMatcher) DematchInto(s0, s1, s2, llrs []float64, rv int) error {
	if len(llrs) == 0 {
		return fmt.Errorf("turbo: Dematch of empty input")
	}
	if len(s0) != rm.D || len(s1) != rm.D || len(s2) != rm.D {
		return fmt.Errorf("turbo: soft buffers (%d,%d,%d), want %d each", len(s0), len(s1), len(s2), rm.D)
	}
	streams := [3][]float64{s0, s1, s2}
	pos := rm.k0(rv) % rm.Ncb
	for i := 0; i < len(llrs); {
		if s := rm.wStream[pos]; s >= 0 {
			streams[s][rm.wIndex[pos]] += llrs[i]
			i++
		}
		pos++
		if pos == rm.Ncb {
			pos = 0
		}
	}
	return nil
}
