package turbo

import (
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/stats"
)

// batchBlock is one prepared test block: encoded streams plus the oracle
// result of a plain per-block Decode with an identically-configured decoder.
type batchBlock struct {
	k     int
	s     [][]float64
	check func([]byte) bool
	want  Result
}

func makeBatchBlocks(t *testing.T, specs []struct {
	k   int
	snr float64
}) []*batchBlock {
	t.Helper()
	r := stats.NewRNG(90)
	blocks := make([]*batchBlock, len(specs))
	for i, sp := range specs {
		in := randomBlock(r, sp.k)
		streams, _ := EncodeStreams(in)
		s := noisyStreams(r, streams, sp.snr)
		want := append([]byte(nil), in...)
		check := func(b []byte) bool { return bits.HammingDistance(b, want) == 0 }
		dec, err := NewDecoder(sp.k)
		if err != nil {
			t.Fatal(err)
		}
		dec.PrecheckRaw = false
		res := dec.Decode(s[0], s[1], s[2], check)
		res.Bits = append([]byte(nil), res.Bits...)
		blocks[i] = &batchBlock{k: sp.k, s: s, check: check, want: res}
	}
	return blocks
}

// TestBatchMatchesSingle is the bit-identity contract named in the Batch
// docs: mixed block sizes and SNRs (clean early-terminators next to blocks
// that run to the iteration cap) decoded under the shared lockstep schedule
// must reproduce per-block Decode exactly — bits, iteration counts and OK
// verdicts.
func TestBatchMatchesSingle(t *testing.T) {
	blocks := makeBatchBlocks(t, []struct {
		k   int
		snr float64
	}{
		{512, 8},   // terminates after one iteration
		{1056, -2}, // a few iterations
		{5312, -6}, // runs to the cap, CRC never passes
		{5312, 0},  // bench-shaped block
		{40, 8},    // minimum K
	})
	b := NewBatch(len(blocks))
	for _, blk := range blocks {
		dec, err := NewDecoder(blk.k)
		if err != nil {
			t.Fatal(err)
		}
		dec.PrecheckRaw = false
		b.Add(dec, blk.s[0], blk.s[1], blk.s[2], blk.check)
	}
	b.Run()
	for i, blk := range blocks {
		got := b.Result(i)
		if d := bits.HammingDistance(got.Bits, blk.want.Bits); d != 0 {
			t.Errorf("block %d (K=%d): batched decode differs from single in %d bits", i, blk.k, d)
		}
		if got.Iterations != blk.want.Iterations || got.OK != blk.want.OK {
			t.Errorf("block %d (K=%d): batched (it=%d ok=%v) vs single (it=%d ok=%v)",
				i, blk.k, got.Iterations, got.OK, blk.want.Iterations, blk.want.OK)
		}
	}
}

// TestBatchFloatPathFallback: a float64-path decoder inside a batch takes
// the plain Decode fallback and still yields the per-block result.
func TestBatchFloatPathFallback(t *testing.T) {
	blocks := makeBatchBlocks(t, []struct {
		k   int
		snr float64
	}{{512, 8}, {512, 0}})
	b := NewBatch(2)
	for _, blk := range blocks {
		dec, err := NewDecoder(blk.k)
		if err != nil {
			t.Fatal(err)
		}
		dec.Path = PathFloat64
		dec.PrecheckRaw = false
		b.Add(dec, blk.s[0], blk.s[1], blk.s[2], blk.check)
	}
	b.Run()
	for i, blk := range blocks {
		got := b.Result(i)
		// The float oracle may disagree with the quantized single-decode
		// oracle in principle; at these SNRs both recover the block.
		if !got.OK || !blk.want.OK {
			t.Errorf("block %d: float fallback OK=%v, single OK=%v", i, got.OK, blk.want.OK)
		}
	}
}

// TestBatchPrecheckShortCircuit pins the per-block raw-systematic precheck
// inside a batch: a noiseless block whose raw hard decisions already pass
// the CRC must report Iterations == 0 — meaning it left the schedule before
// any constituent pass — even when every batch-mate is noise-dominated and
// runs to the iteration cap.
func TestBatchPrecheckShortCircuit(t *testing.T) {
	r := stats.NewRNG(91)
	const k = 1056

	// Clean block: noiseless BPSK, so raw signs are exact.
	in := randomBlock(r, k)
	streams, _ := EncodeStreams(in)
	clean := make([][]float64, 3)
	for j := range streams {
		clean[j] = make([]float64, len(streams[j]))
		for i, bit := range streams[j] {
			clean[j][i] = 8 * (1 - 2*float64(bit))
		}
	}
	wantClean := append([]byte(nil), in...)
	cleanCheck := func(b []byte) bool { return bits.HammingDistance(b, wantClean) == 0 }

	// Dirty mates: noise-dominated, their CRC never passes.
	dirty := makeBatchBlocks(t, []struct {
		k   int
		snr float64
	}{{5312, -8}, {5312, -8}})

	b := NewBatch(3)
	cleanDec, err := NewDecoder(k)
	if err != nil {
		t.Fatal(err)
	}
	cleanDec.PrecheckRaw = true
	ci := b.Add(cleanDec, clean[0], clean[1], clean[2], cleanCheck)
	for _, blk := range dirty {
		dec, err := NewDecoder(blk.k)
		if err != nil {
			t.Fatal(err)
		}
		dec.PrecheckRaw = false
		b.Add(dec, blk.s[0], blk.s[1], blk.s[2], blk.check)
	}
	b.Run()

	got := b.Result(ci)
	if !got.OK || got.Iterations != 0 {
		t.Fatalf("clean block: OK=%v Iterations=%d, want precheck hit (OK, 0 iterations)", got.OK, got.Iterations)
	}
	if d := bits.HammingDistance(got.Bits, wantClean); d != 0 {
		t.Fatalf("clean block: precheck bits differ from payload in %d positions", d)
	}
	for i, blk := range dirty {
		if got := b.Result(i + 1); got.OK || got.Iterations != blk.want.Iterations {
			t.Errorf("dirty mate %d: OK=%v it=%d, want failed at the cap like single decode (it=%d)",
				i, got.OK, got.Iterations, blk.want.Iterations)
		}
	}
}

// TestBatchRejectsSharedDecoder: the lockstep schedule keeps every block's
// trellis scratch live simultaneously, so one Decoder cannot serve two
// blocks of a batch.
func TestBatchRejectsSharedDecoder(t *testing.T) {
	blocks := makeBatchBlocks(t, []struct {
		k   int
		snr float64
	}{{512, 8}, {512, 8}})
	dec, err := NewDecoder(512)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(2)
	b.Add(dec, blocks[0].s[0], blocks[0].s[1], blocks[0].s[2], nil)
	defer func() {
		if recover() == nil {
			t.Fatal("adding one decoder twice did not panic")
		}
	}()
	b.Add(dec, blocks[1].s[0], blocks[1].s[1], blocks[1].s[2], nil)
}

// TestBatchRunAllocFree: the steady-state Reset/Add/Run cycle on a warmed
// batch must not allocate — the receiver runs it per subframe.
func TestBatchRunAllocFree(t *testing.T) {
	blocks := makeBatchBlocks(t, []struct {
		k   int
		snr float64
	}{{1056, 8}, {1056, 0}, {1056, -4}})
	decs := make([]*Decoder, len(blocks))
	for i, blk := range blocks {
		dec, err := NewDecoder(blk.k)
		if err != nil {
			t.Fatal(err)
		}
		dec.PrecheckRaw = false
		decs[i] = dec
	}
	cycle := func() {
		b := NewBatch(len(blocks)) // hoisted below; this warms decoder scratch
		for i, blk := range blocks {
			b.Add(decs[i], blk.s[0], blk.s[1], blk.s[2], blk.check)
		}
		b.Run()
	}
	cycle()
	b := NewBatch(len(blocks))
	allocs := testing.AllocsPerRun(5, func() {
		b.Reset()
		for i, blk := range blocks {
			b.Add(decs[i], blk.s[0], blk.s[1], blk.s[2], blk.check)
		}
		b.Run()
	})
	if allocs != 0 {
		t.Fatalf("batched decode allocates %.1f objects per cycle, want 0", allocs)
	}
}
