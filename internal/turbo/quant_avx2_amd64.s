// AVX2 kernels for the quantized max-log-MAP hot loops (see quant.go for
// the metric conventions and radix4.go for the dispatch). The 8 trellis
// state metrics live as 8×int32 lanes of one YMM register; every operation
// below (add, subtract, signed max, permute, saturating pack) is the exact
// vector counterpart of the scalar int32 arithmetic in constituentQ, so the
// kernels are bit-identical to the scalar path by construction — there is
// no floating point and no reassociation that could change a max.
//
// Both kernels step radix-4: each loop iteration fuses two trellis stages,
// with the second stage's branch-metric vector built while the first
// stage's row settles. Renormalization (rowmax subtract + qFloor clamp)
// happens per stage, exactly as in the scalar path — deferring it across
// the fused pair would change which states saturate and break bit-identity.
//
// Lane layouts (state s = lane s):
//
//	forward butterfly   n_s = max(b[idxA_s] + cA_s, b[idxB_s] - cA_s)
//	  idxA = 0 0 1 1 2 2 3 3, idxB = 4 4 5 5 6 6 7 7
//	  cA_s = sGs_s·gs + sGp_s·gp with sGs = + - + - - + - +,
//	         sGp = + - - + + - - +   (lanes of c0 c3 c1 c2 c2 c1 c3 c0)
//	backward shared sums u_even_s = beta[idxE_s] + cE_s (branch u=0),
//	                     u_odd_s  = beta[idxO_s] - cE_s (branch u=1)
//	  idxE = 0 2 5 7 1 3 4 6, idxO = 1 3 4 6 0 2 5 7
//	  cE_s = gs + sGp_s·gp    (same sGp pattern as the forward kernel)
//	then beta'_s = max(u_even_s, u_odd_s) and
//	m0 = hmax(alpha + u_even), m1 = hmax(alpha + u_odd).

#include "textflag.h"

DATA fwdIdxA<>+0x00(SB)/4, $0
DATA fwdIdxA<>+0x04(SB)/4, $0
DATA fwdIdxA<>+0x08(SB)/4, $1
DATA fwdIdxA<>+0x0c(SB)/4, $1
DATA fwdIdxA<>+0x10(SB)/4, $2
DATA fwdIdxA<>+0x14(SB)/4, $2
DATA fwdIdxA<>+0x18(SB)/4, $3
DATA fwdIdxA<>+0x1c(SB)/4, $3
GLOBL fwdIdxA<>(SB), RODATA|NOPTR, $32

DATA fwdIdxB<>+0x00(SB)/4, $4
DATA fwdIdxB<>+0x04(SB)/4, $4
DATA fwdIdxB<>+0x08(SB)/4, $5
DATA fwdIdxB<>+0x0c(SB)/4, $5
DATA fwdIdxB<>+0x10(SB)/4, $6
DATA fwdIdxB<>+0x14(SB)/4, $6
DATA fwdIdxB<>+0x18(SB)/4, $7
DATA fwdIdxB<>+0x1c(SB)/4, $7
GLOBL fwdIdxB<>(SB), RODATA|NOPTR, $32

DATA signGs<>+0x00(SB)/4, $1
DATA signGs<>+0x04(SB)/4, $-1
DATA signGs<>+0x08(SB)/4, $1
DATA signGs<>+0x0c(SB)/4, $-1
DATA signGs<>+0x10(SB)/4, $-1
DATA signGs<>+0x14(SB)/4, $1
DATA signGs<>+0x18(SB)/4, $-1
DATA signGs<>+0x1c(SB)/4, $1
GLOBL signGs<>(SB), RODATA|NOPTR, $32

DATA signGp<>+0x00(SB)/4, $1
DATA signGp<>+0x04(SB)/4, $-1
DATA signGp<>+0x08(SB)/4, $-1
DATA signGp<>+0x0c(SB)/4, $1
DATA signGp<>+0x10(SB)/4, $1
DATA signGp<>+0x14(SB)/4, $-1
DATA signGp<>+0x18(SB)/4, $-1
DATA signGp<>+0x1c(SB)/4, $1
GLOBL signGp<>(SB), RODATA|NOPTR, $32

DATA qFloorV<>+0x00(SB)/4, $-32767
DATA qFloorV<>+0x04(SB)/4, $-32767
DATA qFloorV<>+0x08(SB)/4, $-32767
DATA qFloorV<>+0x0c(SB)/4, $-32767
DATA qFloorV<>+0x10(SB)/4, $-32767
DATA qFloorV<>+0x14(SB)/4, $-32767
DATA qFloorV<>+0x18(SB)/4, $-32767
DATA qFloorV<>+0x1c(SB)/4, $-32767
GLOBL qFloorV<>(SB), RODATA|NOPTR, $32

DATA bwdIdxE<>+0x00(SB)/4, $0
DATA bwdIdxE<>+0x04(SB)/4, $2
DATA bwdIdxE<>+0x08(SB)/4, $5
DATA bwdIdxE<>+0x0c(SB)/4, $7
DATA bwdIdxE<>+0x10(SB)/4, $1
DATA bwdIdxE<>+0x14(SB)/4, $3
DATA bwdIdxE<>+0x18(SB)/4, $4
DATA bwdIdxE<>+0x1c(SB)/4, $6
GLOBL bwdIdxE<>(SB), RODATA|NOPTR, $32

DATA bwdIdxO<>+0x00(SB)/4, $1
DATA bwdIdxO<>+0x04(SB)/4, $3
DATA bwdIdxO<>+0x08(SB)/4, $4
DATA bwdIdxO<>+0x0c(SB)/4, $6
DATA bwdIdxO<>+0x10(SB)/4, $0
DATA bwdIdxO<>+0x14(SB)/4, $2
DATA bwdIdxO<>+0x18(SB)/4, $5
DATA bwdIdxO<>+0x1c(SB)/4, $7
GLOBL bwdIdxO<>(SB), RODATA|NOPTR, $32

// One forward trellis stage. Reads gs/gp at offset off from SI/DX, evolves
// the state row in Y0, stores the renormalized int16 row at off*8 from DI.
// Clobbers AX BX X1-X8 Y1-Y8.
#define FWDSTAGE(off) \
	MOVWLSX off(SI), AX    \
	MOVWLSX off(DX), BX    \
	VMOVD   AX, X1         \
	VPBROADCASTD X1, Y1    \
	VMOVD   BX, X2         \
	VPBROADCASTD X2, Y2    \
	VPSIGND Y12, Y1, Y3    \ // gs·sGs
	VPSIGND Y13, Y2, Y4    \ // gp·sGp
	VPADDD  Y4, Y3, Y3     \ // cA
	VPERMD  Y0, Y10, Y5    \ // b[idxA]
	VPERMD  Y0, Y11, Y6    \ // b[idxB]
	VPADDD  Y3, Y5, Y5     \
	VPSUBD  Y3, Y6, Y6     \
	VPMAXSD Y6, Y5, Y5     \ // n
	VPERMQ  $0x4e, Y5, Y7  \ // rowmax: swap 128 halves
	VPMAXSD Y7, Y5, Y7     \
	VPSHUFD $0x4e, Y7, Y8  \
	VPMAXSD Y8, Y7, Y7     \
	VPSHUFD $0xb1, Y7, Y8  \
	VPMAXSD Y8, Y7, Y7     \ // m in all lanes
	VPSUBD  Y7, Y5, Y5     \ // n − m
	VPMAXSD Y14, Y5, Y0    \ // clamp at qFloor → new row
	VPACKSSDW Y0, Y0, Y8   \ // int32→int16 (exact: rows ∈ [qFloor, 0])
	VPERMQ  $0x08, Y8, Y8  \
	VMOVDQU X8, (off*8)(DI)

// func forwardStepsAVX2(rows *int16, qg0 *int16, qg1 *int16, n int, av *[8]int32)
// Runs n trellis stages: stage j reads qg0[j]/qg1[j], stores the int16 row
// at rows[j*8:], carrying the int32 state vector in av across the call.
TEXT ·forwardStepsAVX2(SB), NOSPLIT, $0-40
	MOVQ rows+0(FP), DI
	MOVQ qg0+8(FP), SI
	MOVQ qg1+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ av+32(FP), R8
	VMOVDQU (R8), Y0
	VMOVDQU fwdIdxA<>(SB), Y10
	VMOVDQU fwdIdxB<>(SB), Y11
	VMOVDQU signGs<>(SB), Y12
	VMOVDQU signGp<>(SB), Y13
	VMOVDQU qFloorV<>(SB), Y14

fwdPair:
	CMPQ CX, $2
	JLT  fwdTail
	FWDSTAGE(0)
	FWDSTAGE(2)
	ADDQ $4, SI
	ADDQ $4, DX
	ADDQ $32, DI
	SUBQ $2, CX
	JMP  fwdPair

fwdTail:
	TESTQ CX, CX
	JZ    fwdDone
	FWDSTAGE(0)

fwdDone:
	VMOVDQU Y0, (R8)
	VZEROUPPER
	RET

// One backward stage at offsets off (int16 streams), offR (alpha row),
// offH (hard byte). Evolves beta in Y0; writes hard/le.
// Clobbers AX BX R10 R11 R12 X1-X9 Y1-Y9.
#define BWDSTAGE(off, offR, offH) \
	MOVWLSX off(SI), AX      \ // gs
	MOVWLSX off(DX), BX      \ // gp
	VMOVD   AX, X1           \
	VPBROADCASTD X1, Y1      \
	VMOVD   BX, X2           \
	VPBROADCASTD X2, Y2      \
	VPSIGND Y12, Y2, Y3      \ // gp·sGp
	VPADDD  Y3, Y1, Y3       \ // cE
	VPERMD  Y0, Y10, Y5      \ // beta[idxE]
	VPERMD  Y0, Y11, Y6      \ // beta[idxO]
	VPADDD  Y3, Y5, Y5       \ // u_even
	VPSUBD  Y3, Y6, Y6       \ // u_odd
	VPMAXSD Y6, Y5, Y9       \ // new beta row
	VPMOVSXWD offR(DI), Y7   \ // alpha row i
	VPADDD  Y7, Y5, Y5       \ // t0 = alpha + u_even
	VPADDD  Y7, Y6, Y6       \ // t1 = alpha + u_odd
	VPERM2I128 $0x20, Y6, Y5, Y7 \ // [t0.lo | t1.lo]
	VPERM2I128 $0x31, Y6, Y5, Y8 \ // [t0.hi | t1.hi]
	VPMAXSD Y8, Y7, Y7       \ // dual 8→4 reduction
	VPSHUFD $0x4e, Y7, Y8    \
	VPMAXSD Y8, Y7, Y7       \
	VPSHUFD $0xb1, Y7, Y8    \
	VPMAXSD Y8, Y7, Y7       \ // lane0 = m0, lane4 = m1
	VMOVD   X7, R10          \
	VEXTRACTI128 $1, Y7, X8  \
	VMOVD   X8, R11          \
	VMOVDQA Y9, Y0           \
	SUBL    R11, R10         \ // d = m0 − m1
	MOVL    R10, R12         \
	SHRL    $31, R12         \
	MOVB    R12, offH(R9)    \ // hard = sign bit of d
	SARL    $1, R10          \
	SUBL    AX, R10          \ // (d>>1) − gs
	MOVL    $8191, R12       \
	CMPL    R10, R12         \
	CMOVLGT R12, R10         \
	MOVL    $-8191, R12      \
	CMPL    R10, R12         \
	CMOVLLT R12, R10         \
	MOVW    R10, off(R15)

// func backwardLLRAVX2(rows *int16, qg0 *int16, qg1 *int16, n int, bv *[8]int32, le *int16, hard *byte)
// Runs stages j = n−1 … 0 of the fused backward/LLR recursion: stage j
// reads qg0[j]/qg1[j] and the stored alpha row rows[j*8:], updates beta in
// bv, and writes le[j] plus the hard sign bit hard[j].
TEXT ·backwardLLRAVX2(SB), NOSPLIT, $0-56
	MOVQ rows+0(FP), DI
	MOVQ qg0+8(FP), SI
	MOVQ qg1+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ bv+32(FP), R8
	MOVQ le+40(FP), R15
	MOVQ hard+48(FP), R9
	VMOVDQU (R8), Y0
	VMOVDQU bwdIdxE<>(SB), Y10
	VMOVDQU bwdIdxO<>(SB), Y11
	VMOVDQU signGp<>(SB), Y12

	// Point everything at the last stage (j = n−1).
	MOVQ CX, R13
	DECQ R13
	LEAQ (SI)(R13*2), SI
	LEAQ (DX)(R13*2), DX
	LEAQ (R15)(R13*2), R15
	LEAQ (R9)(R13*1), R9
	SHLQ $4, R13
	LEAQ (DI)(R13*1), DI

bwdPair:
	CMPQ CX, $2
	JLT  bwdTail
	BWDSTAGE(0, 0, 0)
	BWDSTAGE(-2, -16, -1)
	SUBQ $4, SI
	SUBQ $4, DX
	SUBQ $4, R15
	SUBQ $2, R9
	SUBQ $32, DI
	SUBQ $2, CX
	JMP  bwdPair

bwdTail:
	TESTQ CX, CX
	JZ    bwdDone
	BWDSTAGE(0, 0, 0)

bwdDone:
	VMOVDQU Y0, (R8)
	VZEROUPPER
	RET

// func cpuSupportsAVX2() bool
// CPUID feature probe: AVX2 requires OSXSAVE+AVX (leaf 1 ECX bits 27/28),
// OS-enabled XMM+YMM state (XCR0 bits 1/2), and leaf 7 EBX bit 5.
TEXT ·cpuSupportsAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8
	CMPL R8, $(1<<27 | 1<<28)
	JNE  noAVX2
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noAVX2
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   noAVX2
	MOVB $1, ret+0(FP)
	RET

noAVX2:
	MOVB $0, ret+0(FP)
	RET
