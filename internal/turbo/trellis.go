package turbo

// The LTE constituent code is the 8-state recursive systematic convolutional
// (RSC) encoder with transfer function G(D) = [1, g1(D)/g0(D)],
// g0 = 1 + D² + D³ (13 octal, feedback) and g1 = 1 + D + D³ (15 octal).
//
// State encoding: bit 0 is the most recent register, bit 2 the oldest.

const numStates = 8

// trellis tables, indexed [state][inputBit].
var (
	nextState [numStates][2]int
	parityBit [numStates][2]byte
	// feedback[s] is the input that keeps the feedback sum zero; feeding it
	// during termination drives the register chain toward state 0.
	feedback [numStates]byte
)

func init() {
	for s := 0; s < numStates; s++ {
		r0 := byte(s & 1)
		r1 := byte((s >> 1) & 1)
		r2 := byte((s >> 2) & 1)
		fb := r1 ^ r2 // taps of g0 at D² and D³
		feedback[s] = fb
		for u := byte(0); u <= 1; u++ {
			t := u ^ fb                            // value entering the register chain
			z := t ^ r0 ^ r2                       // taps of g1 at 1 (via t), D, D³
			ns := int(t) | int(r0)<<1 | int(r1)<<2 // shift in t
			nextState[s][u] = ns
			parityBit[s][u] = z
		}
	}
}

// rscEncode runs the constituent encoder over input bits starting from state
// 0, returning the parity stream and performing trellis termination: the
// returned xTail and zTail are the 3 systematic and 3 parity termination
// bits (TS 36.212 §5.1.3.2.2).
func rscEncode(input []byte) (parity, xTail, zTail []byte) {
	parity = make([]byte, len(input))
	s := 0
	for i, u := range input {
		u &= 1
		parity[i] = parityBit[s][u]
		s = nextState[s][u]
	}
	xTail = make([]byte, 3)
	zTail = make([]byte, 3)
	for i := 0; i < 3; i++ {
		u := feedback[s] // forced input: zero into the register chain
		xTail[i] = u
		zTail[i] = parityBit[s][u]
		s = nextState[s][u]
	}
	if s != 0 {
		panic("turbo: trellis termination did not reach state 0")
	}
	return parity, xTail, zTail
}
