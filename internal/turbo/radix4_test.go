package turbo

import (
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/stats"
)

// decodeWithRadix runs one quantized decode with the chosen trellis stepping
// and deep-copies the result, so grid comparisons survive decoder reuse.
func decodeWithRadix(t *testing.T, k int, radix Radix, maxIter int, s [][]float64, check func([]byte) bool) Result {
	t.Helper()
	dec, err := NewDecoder(k)
	if err != nil {
		t.Fatal(err)
	}
	dec.Radix = radix
	dec.MaxIterations = maxIter
	dec.PrecheckRaw = false // force the trellis, not the raw shortcut
	res := dec.Decode(s[0], s[1], s[2], check)
	res.Bits = append([]byte(nil), res.Bits...)
	return res
}

// TestRadix4DifferentialGrid is the bit-identity contract of the tentpole:
// across block lengths (spanning both QPP table regimes and the kernel's
// odd/even interior-length cases), SNRs from railed-clean through the
// waterfall to noise-dominated, seeds, and both check modes, the radix-4
// fused stepper must reproduce the radix-2 scalar reference exactly — same
// hard decisions, same iteration count, same OK verdict. Run under -race in
// CI like every test; the decoders here are independent, so the value of
// -race is catching kernel stores that stray outside their scratch.
func TestRadix4DifferentialGrid(t *testing.T) {
	for _, k := range []int{40, 104, 512, 1056, 2048, 5312, 6144} {
		for _, snr := range []float64{-5, -2, 8} {
			for seed := uint64(0); seed < 3; seed++ {
				r := stats.NewRNG(100*seed + uint64(k))
				in := randomBlock(r, k)
				streams, _ := EncodeStreams(in)
				s := noisyStreams(r, streams, snr)
				want := append([]byte(nil), in...)
				check := func(b []byte) bool { return bits.HammingDistance(b, want) == 0 }
				for _, chk := range []func([]byte) bool{nil, check} {
					r2 := decodeWithRadix(t, k, Radix2, 6, s, chk)
					r4 := decodeWithRadix(t, k, Radix4, 6, s, chk)
					if d := bits.HammingDistance(r2.Bits, r4.Bits); d != 0 {
						t.Fatalf("K=%d SNR=%v seed=%d check=%v: radix-4 differs from radix-2 in %d bits",
							k, snr, seed, chk != nil, d)
					}
					if r2.Iterations != r4.Iterations || r2.OK != r4.OK {
						t.Fatalf("K=%d SNR=%v seed=%d check=%v: (it=%d ok=%v) radix-4 vs (it=%d ok=%v) radix-2",
							k, snr, seed, chk != nil, r4.Iterations, r4.OK, r2.Iterations, r2.OK)
					}
				}
			}
		}
	}
}

// TestRadix4ScalarFallbackIdentical covers the dispatch arm hardware tests
// can't reach on AVX2 machines: with the kernels disabled, a Radix4 decoder
// must silently produce the same bits through the scalar stepper.
func TestRadix4ScalarFallbackIdentical(t *testing.T) {
	const k = 1056
	r := stats.NewRNG(81)
	in := randomBlock(r, k)
	streams, _ := EncodeStreams(in)
	s := noisyStreams(r, streams, 0)
	hw := decodeWithRadix(t, k, Radix4, 4, s, nil)
	old := radix4Enabled
	radix4Enabled = false
	sw := decodeWithRadix(t, k, Radix4, 4, s, nil)
	radix4Enabled = old
	if d := bits.HammingDistance(hw.Bits, sw.Bits); d != 0 || hw.Iterations != sw.Iterations {
		t.Fatalf("scalar fallback differs: %d bits, it %d vs %d", d, sw.Iterations, hw.Iterations)
	}
}

// TestRadix4AllocFree: the fused path must stay allocation-free like the
// scalar one — the kernels work entirely in preallocated decoder scratch.
func TestRadix4AllocFree(t *testing.T) {
	const k = 5312
	d, err := NewDecoder(k)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(82)
	s0 := randLLRs(r, k+4, 0)
	s1 := randLLRs(r, k+4, 1)
	s2 := randLLRs(r, k+4, 2)
	d.Decode(s0, s1, s2, nil) // warm up
	allocs := testing.AllocsPerRun(5, func() {
		d.Decode(s0, s1, s2, nil)
	})
	if allocs != 0 {
		t.Fatalf("radix-4 Decode allocates %.1f objects per call, want 0", allocs)
	}
}

// TestCheckCadenceSameBitsFewerChecks: thinning the CRC cadence must change
// only *when* the check runs, never the trellis arithmetic — identical hard
// decisions, strictly fewer check invocations, and the final pass always
// checked. On a block the check accepts, a cadence-c decoder may run up to
// c−1 half-iterations longer before it notices.
func TestCheckCadenceSameBitsFewerChecks(t *testing.T) {
	const k = 512
	r := stats.NewRNG(83)
	in := randomBlock(r, k)
	streams, _ := EncodeStreams(in)
	s := noisyStreams(r, streams, -4) // needs a few iterations
	run := func(cadence int, accept bool) (Result, int) {
		dec, err := NewDecoder(k)
		if err != nil {
			t.Fatal(err)
		}
		dec.MaxIterations = 6
		dec.PrecheckRaw = false
		dec.CheckCadence = cadence
		calls := 0
		want := append([]byte(nil), in...)
		res := dec.Decode(s[0], s[1], s[2], func(b []byte) bool {
			calls++
			return accept && bits.HammingDistance(b, want) == 0
		})
		res.Bits = append([]byte(nil), res.Bits...)
		return res, calls
	}
	// Rejecting check: full iteration run either way, same bits, fewer calls.
	r1, c1 := run(1, false)
	r3, c3 := run(3, false)
	if d := bits.HammingDistance(r1.Bits, r3.Bits); d != 0 {
		t.Fatalf("cadence changed %d hard decisions with a rejecting check", d)
	}
	if c3 >= c1 {
		t.Fatalf("cadence 3 ran %d checks, cadence 1 ran %d — no thinning", c3, c1)
	}
	// Accepting check: both terminate OK; cadence can only delay, not miss.
	a1, _ := run(1, true)
	a3, _ := run(3, true)
	if !a1.OK || !a3.OK {
		t.Fatalf("early termination lost under cadence: OK %v vs %v", a1.OK, a3.OK)
	}
	if a3.Iterations < a1.Iterations {
		t.Fatalf("cadence 3 terminated earlier (%d) than every-pass (%d)", a3.Iterations, a1.Iterations)
	}
	if d := bits.HammingDistance(a1.Bits, a3.Bits); d != 0 {
		t.Fatalf("cadence changed %d decoded bits with an accepting check", d)
	}
}
