package turbo

import (
	"testing"

	"rtopex/internal/stats"
)

// referenceConstituent is the straightforward max-log-MAP pass the unrolled
// implementation in decoder.go replaced: table-driven recursions with
// explicit reachability guards and a separate normalize sweep. The unrolled
// version must be bit-identical to it.
func referenceConstituent(d *Decoder, lsys, lpar, la []float64, xTail, zTail [3]float64, le []float64) {
	k := d.K
	alpha := d.alpha
	beta := make([]float64, (k+1)*numStates)

	for i := 0; i < k; i++ {
		d.gamma0[i] = 0.5 * (lsys[i] + la[i])
		d.gamma1[i] = 0.5 * lpar[i]
	}

	alpha[0] = 0
	for s := 1; s < numStates; s++ {
		alpha[s] = negInf
	}
	for i := 0; i < k; i++ {
		cur := alpha[i*numStates : (i+1)*numStates]
		next := alpha[(i+1)*numStates : (i+2)*numStates]
		for s := range next {
			next[s] = negInf
		}
		gs, gp := d.gamma0[i], d.gamma1[i]
		for s := 0; s < numStates; s++ {
			as := cur[s]
			if as <= negInf {
				continue
			}
			for u := 0; u <= 1; u++ {
				m := as + branchMetric(u, parityBit[s][u], gs, gp)
				ns := nextState[s][u]
				if m > next[ns] {
					next[ns] = m
				}
			}
		}
		normalize(next)
	}

	var tb [numStates]float64
	for s := range tb {
		tb[s] = negInf
	}
	tb[0] = 0
	for t := 2; t >= 0; t-- {
		var nb [numStates]float64
		for s := 0; s < numStates; s++ {
			u := feedback[s]
			ns := nextState[s][u]
			if tb[ns] <= negInf {
				nb[s] = negInf
				continue
			}
			gs := 0.5 * xTail[t]
			gp := 0.5 * zTail[t]
			nb[s] = tb[ns] + branchMetric(int(u), parityBit[s][u], gs, gp)
		}
		tb = nb
	}
	bk := beta[k*numStates : (k+1)*numStates]
	copy(bk, tb[:])

	for i := k - 1; i >= 0; i-- {
		nextB := beta[(i+1)*numStates : (i+2)*numStates]
		curB := beta[i*numStates : (i+1)*numStates]
		gs, gp := d.gamma0[i], d.gamma1[i]
		for s := 0; s < numStates; s++ {
			best := negInf
			for u := 0; u <= 1; u++ {
				ns := nextState[s][u]
				if nextB[ns] <= negInf {
					continue
				}
				m := nextB[ns] + branchMetric(u, parityBit[s][u], gs, gp)
				if m > best {
					best = m
				}
			}
			curB[s] = best
		}
		normalize(curB)
	}

	for i := 0; i < k; i++ {
		curA := alpha[i*numStates : (i+1)*numStates]
		nextB := beta[(i+1)*numStates : (i+2)*numStates]
		gs, gp := d.gamma0[i], d.gamma1[i]
		m0, m1 := negInf, negInf
		for s := 0; s < numStates; s++ {
			as := curA[s]
			if as <= negInf {
				continue
			}
			if b := nextB[nextState[s][0]]; b > negInf {
				if m := as + branchMetric(0, parityBit[s][0], gs, gp) + b; m > m0 {
					m0 = m
				}
			}
			if b := nextB[nextState[s][1]]; b > negInf {
				if m := as + branchMetric(1, parityBit[s][1], gs, gp) + b; m > m1 {
					m1 = m
				}
			}
		}
		llr := m0 - m1
		le[i] = llr - lsys[i] - la[i]
	}
}

// TestConstituentWiring checks the hardcoded butterfly wiring in
// constituent against the canonical trellis tables: every (state, input)
// branch must land where nextState says with the parity parityBit says.
// The expected wiring below is exactly what decoder.go's unrolled
// recursions encode (metric index = u·2 + z).
func TestConstituentWiring(t *testing.T) {
	// forward[ns] lists the two incoming (prevState, u) branches in the
	// order the unrolled code evaluates them.
	forward := [numStates][2][2]int{
		{{0, 0}, {4, 1}}, {{0, 1}, {4, 0}}, {{1, 0}, {5, 1}}, {{1, 1}, {5, 0}},
		{{2, 1}, {6, 0}}, {{2, 0}, {6, 1}}, {{3, 1}, {7, 0}}, {{3, 0}, {7, 1}},
	}
	// metricIdx[ns] gives the c-index (u·2+z) for each incoming branch.
	metricIdx := [numStates][2]int{
		{0, 3}, {3, 0}, {1, 2}, {2, 1}, {2, 1}, {1, 2}, {3, 0}, {0, 3},
	}
	for ns := 0; ns < numStates; ns++ {
		for b := 0; b < 2; b++ {
			s, u := forward[ns][b][0], forward[ns][b][1]
			if nextState[s][u] != ns {
				t.Errorf("forward wiring: (%d,u=%d) -> %d, want %d", s, u, nextState[s][u], ns)
			}
			z := int(parityBit[s][u])
			if got := u*2 + z; got != metricIdx[ns][b] {
				t.Errorf("forward metric: (%d,u=%d) has index %d, hardcoded %d", s, u, got, metricIdx[ns][b])
			}
		}
	}
	// Backward and LLR wiring reuse nextState/parityBit directly per source
	// state; verify the (ns, metric) pairs the unrolled code hardcodes.
	backward := [numStates][2][2]int{ // [s][u] = {nextState, metricIdx}
		{{0, 0}, {1, 3}}, {{2, 1}, {3, 2}}, {{5, 1}, {4, 2}}, {{7, 0}, {6, 3}},
		{{1, 0}, {0, 3}}, {{3, 1}, {2, 2}}, {{4, 1}, {5, 2}}, {{6, 0}, {7, 3}},
	}
	for s := 0; s < numStates; s++ {
		for u := 0; u < 2; u++ {
			wantNS := nextState[s][u]
			wantIdx := u*2 + int(parityBit[s][u])
			if backward[s][u][0] != wantNS || backward[s][u][1] != wantIdx {
				t.Errorf("backward wiring: (%d,u=%d) hardcoded (%d,%d), want (%d,%d)",
					s, u, backward[s][u][0], backward[s][u][1], wantNS, wantIdx)
			}
		}
	}
}

// TestConstituentMatchesReference: the unrolled pass must be bit-identical
// to the straightforward implementation across random LLR mixes, including
// punctured (zero) and extreme positions.
func TestConstituentMatchesReference(t *testing.T) {
	r := stats.NewRNG(99)
	for _, k := range []int{40, 136, 1056, 6144} {
		fast, err := NewDecoder(k)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewDecoder(k)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			lsys := randLLRs(r, k, trial)
			lpar := randLLRs(r, k, trial)
			la := randLLRs(r, k, trial)
			var xT, zT [3]float64
			for i := range xT {
				xT[i] = (r.Float64() - 0.5) * 20
				zT[i] = (r.Float64() - 0.5) * 20
			}
			leFast := make([]float64, k)
			leRef := make([]float64, k)
			fast.constituent(lsys, lpar, la, xT, zT, leFast)
			referenceConstituent(ref, lsys, lpar, la, xT, zT, leRef)
			for i := range leFast {
				if leFast[i] != leRef[i] {
					t.Fatalf("K=%d trial %d: le[%d] = %v, reference %v", k, trial, i, leFast[i], leRef[i])
				}
			}
			for i := range fast.alpha {
				if fast.alpha[i] != ref.alpha[i] {
					t.Fatalf("K=%d trial %d: alpha[%d] = %v, reference %v", k, trial, i, fast.alpha[i], ref.alpha[i])
				}
			}
		}
	}
}

// randLLRs mixes magnitudes: mostly moderate values, some zeros (punctured
// positions) and some huge ones (saturated demapper output at high SNR).
func randLLRs(r *stats.RNG, k, trial int) []float64 {
	out := make([]float64, k)
	for i := range out {
		switch {
		case i%17 == trial:
			out[i] = 0
		case i%31 == trial:
			out[i] = (r.Float64() - 0.5) * 2e6
		default:
			out[i] = (r.Float64() - 0.5) * 200
		}
	}
	return out
}

// TestDecodeAllocFree: steady-state Decode must not allocate.
func TestDecodeAllocFree(t *testing.T) {
	const k = 1056
	d, err := NewDecoder(k)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(7)
	s0 := randLLRs(r, k+4, 0)
	s1 := randLLRs(r, k+4, 1)
	s2 := randLLRs(r, k+4, 2)
	d.Decode(s0, s1, s2, nil) // warm up
	allocs := testing.AllocsPerRun(5, func() {
		d.Decode(s0, s1, s2, nil)
	})
	if allocs != 0 {
		t.Fatalf("Decode allocates %.1f objects per call, want 0", allocs)
	}
}
