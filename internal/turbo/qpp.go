// Package turbo implements the LTE transport-channel coding chain of
// 3GPP TS 36.212 §5.1.3: the rate-1/3 parallel-concatenated convolutional
// (turbo) code with QPP interleaving, trellis termination, sub-block
// interleaving with circular-buffer rate matching, and code-block
// segmentation. The decoder is an iterative max-log-MAP (BCJR) pair with
// early termination on CRC pass — the iteration count it reports is the L
// regressor of the paper's processing-time model (Eq. 1).
package turbo

import "fmt"

// qppEntry holds one row of TS 36.212 Table 5.1.3-3.
type qppEntry struct {
	k, f1, f2 int
}

// qppTable is the complete interleaver parameter table (188 block sizes).
var qppTable = []qppEntry{
	{40, 3, 10}, {48, 7, 12}, {56, 19, 42}, {64, 7, 16}, {72, 7, 18},
	{80, 11, 20}, {88, 5, 22}, {96, 11, 24}, {104, 7, 26}, {112, 41, 84},
	{120, 103, 90}, {128, 15, 32}, {136, 9, 34}, {144, 17, 108}, {152, 9, 38},
	{160, 21, 120}, {168, 101, 84}, {176, 21, 44}, {184, 57, 46}, {192, 23, 48},
	{200, 13, 50}, {208, 27, 52}, {216, 11, 36}, {224, 27, 56}, {232, 85, 58},
	{240, 29, 60}, {248, 33, 62}, {256, 15, 32}, {264, 17, 198}, {272, 33, 68},
	{280, 103, 210}, {288, 19, 36}, {296, 19, 74}, {304, 37, 76}, {312, 19, 78},
	{320, 21, 120}, {328, 21, 82}, {336, 115, 84}, {344, 193, 86}, {352, 21, 44},
	{360, 133, 90}, {368, 81, 46}, {376, 45, 94}, {384, 23, 48}, {392, 243, 98},
	{400, 151, 40}, {408, 155, 102}, {416, 25, 52}, {424, 51, 106}, {432, 47, 72},
	{440, 91, 110}, {448, 29, 168}, {456, 29, 114}, {464, 247, 58}, {472, 29, 118},
	{480, 89, 180}, {488, 91, 122}, {496, 157, 62}, {504, 55, 84}, {512, 31, 64},
	{528, 17, 66}, {544, 35, 68}, {560, 227, 420}, {576, 65, 96}, {592, 19, 74},
	{608, 37, 76}, {624, 41, 234}, {640, 39, 80}, {656, 185, 82}, {672, 43, 252},
	{688, 21, 86}, {704, 155, 44}, {720, 79, 120}, {736, 139, 92}, {752, 23, 94},
	{768, 217, 48}, {784, 25, 98}, {800, 17, 80}, {816, 127, 102}, {832, 25, 52},
	{848, 239, 106}, {864, 17, 48}, {880, 137, 110}, {896, 215, 112}, {912, 29, 114},
	{928, 15, 58}, {944, 147, 118}, {960, 29, 60}, {976, 59, 122}, {992, 65, 124},
	{1008, 55, 84}, {1024, 31, 64}, {1056, 17, 66}, {1088, 171, 204}, {1120, 67, 140},
	{1152, 35, 72}, {1184, 19, 74}, {1216, 39, 76}, {1248, 19, 78}, {1280, 199, 240},
	{1312, 21, 82}, {1344, 211, 252}, {1376, 21, 86}, {1408, 43, 88}, {1440, 149, 60},
	{1472, 45, 92}, {1504, 49, 846}, {1536, 71, 48}, {1568, 13, 28}, {1600, 17, 80},
	{1632, 25, 102}, {1664, 183, 104}, {1696, 55, 954}, {1728, 127, 96}, {1760, 27, 110},
	{1792, 29, 112}, {1824, 29, 114}, {1856, 57, 116}, {1888, 45, 354}, {1920, 31, 120},
	{1952, 59, 610}, {1984, 185, 124}, {2016, 113, 420}, {2048, 31, 64}, {2112, 17, 66},
	{2176, 171, 136}, {2240, 209, 420}, {2304, 253, 216}, {2368, 367, 444}, {2432, 265, 456},
	{2496, 181, 468}, {2560, 39, 80}, {2624, 27, 164}, {2688, 127, 504}, {2752, 143, 172},
	{2816, 43, 88}, {2880, 29, 300}, {2944, 45, 92}, {3008, 157, 188}, {3072, 47, 96},
	{3136, 13, 28}, {3200, 111, 240}, {3264, 443, 204}, {3328, 51, 104}, {3392, 51, 212},
	{3456, 451, 192}, {3520, 257, 220}, {3584, 57, 336}, {3648, 313, 228}, {3712, 271, 232},
	{3776, 179, 236}, {3840, 331, 120}, {3904, 363, 244}, {3968, 375, 248}, {4032, 127, 168},
	{4096, 31, 64}, {4160, 33, 130}, {4224, 43, 264}, {4288, 33, 134}, {4352, 477, 408},
	{4416, 35, 138}, {4480, 233, 280}, {4544, 357, 142}, {4608, 337, 480}, {4672, 37, 146},
	{4736, 71, 444}, {4800, 71, 120}, {4864, 37, 152}, {4928, 39, 462}, {4992, 127, 234},
	{5056, 39, 158}, {5120, 39, 80}, {5184, 31, 96}, {5248, 113, 902}, {5312, 41, 166},
	{5376, 251, 336}, {5440, 43, 170}, {5504, 21, 86}, {5568, 43, 174}, {5632, 45, 176},
	{5696, 45, 178}, {5760, 161, 120}, {5824, 89, 182}, {5888, 323, 184}, {5952, 47, 186},
	{6016, 23, 94}, {6080, 47, 190}, {6144, 263, 480},
}

// MinBlockSize and MaxBlockSize bound the valid turbo block sizes.
const (
	MinBlockSize = 40
	MaxBlockSize = 6144
)

// ValidBlockSizes returns all 188 supported K values in increasing order.
func ValidBlockSizes() []int {
	ks := make([]int, len(qppTable))
	for i, e := range qppTable {
		ks[i] = e.k
	}
	return ks
}

// NextBlockSize returns the smallest valid K >= n, used by code-block
// segmentation. It returns an error if n exceeds MaxBlockSize.
func NextBlockSize(n int) (int, error) {
	if n > MaxBlockSize {
		return 0, fmt.Errorf("turbo: no block size >= %d", n)
	}
	// The table is sorted; binary search would work, but linear over 188
	// entries is immaterial and simpler to verify.
	for _, e := range qppTable {
		if e.k >= n {
			return e.k, nil
		}
	}
	return 0, fmt.Errorf("turbo: no block size >= %d", n)
}

// qppParams returns (f1, f2) for a valid K.
func qppParams(k int) (f1, f2 int, err error) {
	for _, e := range qppTable {
		if e.k == k {
			return e.f1, e.f2, nil
		}
	}
	return 0, 0, fmt.Errorf("turbo: %d is not a valid block size", k)
}

// Interleaver is the quadratic permutation polynomial interleaver
// Π(i) = (f1·i + f2·i²) mod K together with its inverse.
type Interleaver struct {
	K    int
	perm []int // perm[i] = Π(i): output position i reads input position Π(i)
	inv  []int
}

// NewInterleaver builds the QPP interleaver for block size k (must be one of
// the 188 valid sizes).
func NewInterleaver(k int) (*Interleaver, error) {
	f1, f2, err := qppParams(k)
	if err != nil {
		return nil, err
	}
	il := &Interleaver{K: k, perm: make([]int, k), inv: make([]int, k)}
	for i := 0; i < k; i++ {
		p := (int64(f1)*int64(i) + int64(f2)*int64(i)*int64(i)) % int64(k)
		il.perm[i] = int(p)
	}
	for i, p := range il.perm {
		il.inv[p] = i
	}
	return il, nil
}

// Permute writes interleaved bits: out[i] = in[Π(i)]. It allocates if out is
// nil or of the wrong length, and returns the slice used.
func (il *Interleaver) Permute(in, out []byte) []byte {
	if len(in) != il.K {
		panic(fmt.Sprintf("turbo: interleaver input length %d, want %d", len(in), il.K))
	}
	if len(out) != il.K {
		out = make([]byte, il.K)
	}
	for i, p := range il.perm {
		out[i] = in[p]
	}
	return out
}

// Inverse applies the inverse permutation to bits: out[Π(i)] = in[i].
func (il *Interleaver) Inverse(in, out []byte) []byte {
	if len(in) != il.K {
		panic(fmt.Sprintf("turbo: interleaver input length %d, want %d", len(in), il.K))
	}
	if len(out) != il.K {
		out = make([]byte, il.K)
	}
	for i, p := range il.inv {
		out[i] = in[p]
	}
	return out
}

// PermuteF is Permute for float64 soft values.
func (il *Interleaver) PermuteF(in, out []float64) []float64 {
	if len(in) != il.K {
		panic(fmt.Sprintf("turbo: interleaver input length %d, want %d", len(in), il.K))
	}
	if len(out) != il.K {
		out = make([]float64, il.K)
	}
	for i, p := range il.perm {
		out[i] = in[p]
	}
	return out
}

// PermuteI16 is Permute for quantized int16 soft values.
func (il *Interleaver) PermuteI16(in, out []int16) []int16 {
	if len(in) != il.K {
		panic(fmt.Sprintf("turbo: interleaver input length %d, want %d", len(in), il.K))
	}
	if len(out) != il.K {
		out = make([]int16, il.K)
	}
	for i, p := range il.perm {
		out[i] = in[p]
	}
	return out
}

// InverseI16 applies the inverse permutation to quantized int16 soft values.
func (il *Interleaver) InverseI16(in, out []int16) []int16 {
	if len(in) != il.K {
		panic(fmt.Sprintf("turbo: interleaver input length %d, want %d", len(in), il.K))
	}
	if len(out) != il.K {
		out = make([]int16, il.K)
	}
	for i, p := range il.inv {
		out[i] = in[p]
	}
	return out
}

// InverseF applies the inverse permutation to soft values: out[Π(i)] = in[i].
func (il *Interleaver) InverseF(in, out []float64) []float64 {
	if len(in) != il.K {
		panic(fmt.Sprintf("turbo: interleaver input length %d, want %d", len(in), il.K))
	}
	if len(out) != il.K {
		out = make([]float64, il.K)
	}
	for i, p := range il.inv {
		out[i] = in[p]
	}
	return out
}

// Index returns Π(i).
func (il *Interleaver) Index(i int) int { return il.perm[i] }
