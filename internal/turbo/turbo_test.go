package turbo

import (
	"math"
	"testing"
	"testing/quick"

	"rtopex/internal/bits"
	"rtopex/internal/stats"
)

func randomBlock(r *stats.RNG, k int) []byte {
	b := make([]byte, k)
	bits.RandomBits(b, r.Uint64)
	return b
}

// bpskLLR converts bits to noisy channel LLRs at the given Es/N0 (dB).
func bpskLLR(r *stats.RNG, in []byte, snrDB float64) []float64 {
	n0 := math.Pow(10, -snrDB/10)
	sigma := math.Sqrt(n0 / 2)
	out := make([]float64, len(in))
	for i, b := range in {
		s := 1.0
		if b == 1 {
			s = -1
		}
		y := s + sigma*r.NormFloat64()
		out[i] = 4 * y / n0
	}
	return out
}

func TestQPPTableComplete(t *testing.T) {
	ks := ValidBlockSizes()
	if len(ks) != 188 {
		t.Fatalf("table has %d entries, want 188", len(ks))
	}
	if ks[0] != 40 || ks[len(ks)-1] != 6144 {
		t.Fatalf("table range [%d, %d]", ks[0], ks[len(ks)-1])
	}
	// Spacing structure: step 8 to 512, 16 to 1024, 32 to 2048, 64 to 6144.
	for i := 1; i < len(ks); i++ {
		step := ks[i] - ks[i-1]
		var want int
		switch {
		case ks[i] <= 512:
			want = 8
		case ks[i] <= 1024:
			want = 16
		case ks[i] <= 2048:
			want = 32
		default:
			want = 64
		}
		if step != want {
			t.Fatalf("step %d before K=%d, want %d", step, ks[i], want)
		}
	}
}

func TestInterleaverIsPermutation(t *testing.T) {
	for _, k := range ValidBlockSizes() {
		il, err := NewInterleaver(k)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, k)
		for i := 0; i < k; i++ {
			p := il.Index(i)
			if p < 0 || p >= k || seen[p] {
				t.Fatalf("K=%d: invalid permutation at %d", k, i)
			}
			seen[p] = true
		}
	}
}

func TestInterleaverInverse(t *testing.T) {
	r := stats.NewRNG(1)
	for _, k := range []int{40, 104, 512, 1696, 6144} {
		il, _ := NewInterleaver(k)
		x := make([]float64, k)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		y := il.PermuteF(x, nil)
		z := il.InverseF(y, nil)
		for i := range x {
			if x[i] != z[i] {
				t.Fatalf("K=%d: inverse failed at %d", k, i)
			}
		}
	}
}

func TestInterleaverRejectsInvalidK(t *testing.T) {
	for _, k := range []int{0, 39, 41, 6145, 520} {
		if _, err := NewInterleaver(k); err == nil {
			t.Errorf("K=%d accepted", k)
		}
	}
}

func TestNextBlockSize(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 40}, {40, 40}, {41, 48}, {512, 512}, {513, 528}, {6144, 6144},
	}
	for _, c := range cases {
		got, err := NextBlockSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("NextBlockSize(%d) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	if _, err := NextBlockSize(6145); err == nil {
		t.Error("NextBlockSize(6145) accepted")
	}
}

func TestRSCTermination(t *testing.T) {
	r := stats.NewRNG(2)
	// rscEncode must terminate in state 0 for random inputs (it panics
	// internally otherwise) and produce 3 tail bits each.
	for trial := 0; trial < 50; trial++ {
		in := randomBlock(r, 40+8*r.Intn(20))
		p, x, z := rscEncode(in)
		if len(p) != len(in) || len(x) != 3 || len(z) != 3 {
			t.Fatal("rscEncode output sizes wrong")
		}
	}
}

func TestEncodeStreamSizes(t *testing.T) {
	r := stats.NewRNG(3)
	for _, k := range []int{40, 208, 6144} {
		streams, err := EncodeStreams(randomBlock(r, k))
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range streams {
			if len(s) != k+4 {
				t.Fatalf("K=%d stream %d length %d", k, i, len(s))
			}
		}
	}
	if _, err := EncodeStreams(make([]byte, 39)); err == nil {
		t.Fatal("invalid K accepted")
	}
}

func TestEncodeSystematic(t *testing.T) {
	r := stats.NewRNG(4)
	in := randomBlock(r, 96)
	streams, _ := EncodeStreams(in)
	for i, b := range in {
		if streams[0][i] != b {
			t.Fatalf("systematic stream differs at %d", i)
		}
	}
}

func TestDecodeNoiselessAllSizesSample(t *testing.T) {
	r := stats.NewRNG(5)
	// A sample of sizes spanning the table, plus the segmentation-critical
	// boundary sizes.
	for _, k := range []int{40, 64, 104, 512, 528, 1024, 1056, 2048, 2112, 6144} {
		in := randomBlock(r, k)
		streams, _ := EncodeStreams(in)
		s := make([][]float64, 3)
		for j := range streams {
			s[j] = bpskLLR(r, streams[j], 10) // high SNR
		}
		dec, err := NewDecoder(k)
		if err != nil {
			t.Fatal(err)
		}
		res := dec.Decode(s[0], s[1], s[2], nil)
		if bits.HammingDistance(res.Bits, in) != 0 {
			t.Fatalf("K=%d: decode errors at 10 dB", k)
		}
	}
}

func TestDecodeEveryTableSizeNoiseless(t *testing.T) {
	if testing.Short() {
		t.Skip("full-table sweep in -short mode")
	}
	r := stats.NewRNG(6)
	for _, k := range ValidBlockSizes() {
		in := randomBlock(r, k)
		streams, _ := EncodeStreams(in)
		s := make([][]float64, 3)
		for j := range streams {
			s[j] = make([]float64, len(streams[j]))
			for i, b := range streams[j] {
				if b == 1 {
					s[j][i] = -8
				} else {
					s[j][i] = 8
				}
			}
		}
		dec, _ := NewDecoder(k)
		res := dec.Decode(s[0], s[1], s[2], nil)
		if bits.HammingDistance(res.Bits, in) != 0 {
			t.Fatalf("K=%d: noiseless decode failed", k)
		}
	}
}

func TestDecodeEarlyTermination(t *testing.T) {
	r := stats.NewRNG(7)
	k := 512
	in := randomBlock(r, k)
	streams, _ := EncodeStreams(in)
	s := make([][]float64, 3)
	for j := range streams {
		s[j] = bpskLLR(r, streams[j], 8)
	}
	dec, _ := NewDecoder(k)
	dec.MaxIterations = 8
	want := append([]byte(nil), in...)
	res := dec.Decode(s[0], s[1], s[2], func(b []byte) bool {
		return bits.HammingDistance(b, want) == 0
	})
	if !res.OK {
		t.Fatal("check never passed at 8 dB")
	}
	if res.Iterations >= 8 {
		t.Fatalf("no early termination: %d iterations", res.Iterations)
	}
}

func TestDecodeIterationCountGrowsWithNoise(t *testing.T) {
	// At lower SNR the decoder needs more iterations on average — this is
	// the paper's L(SNR) behavior feeding the timing model.
	r := stats.NewRNG(8)
	k := 1024
	avgIters := func(snrDB float64) float64 {
		sum := 0
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			in := randomBlock(r, k)
			streams, _ := EncodeStreams(in)
			s := make([][]float64, 3)
			for j := range streams {
				s[j] = bpskLLR(r, streams[j], snrDB)
			}
			dec, _ := NewDecoder(k)
			dec.MaxIterations = 8
			want := append([]byte(nil), in...)
			res := dec.Decode(s[0], s[1], s[2], func(b []byte) bool {
				return bits.HammingDistance(b, want) == 0
			})
			sum += res.Iterations
		}
		return float64(sum) / trials
	}
	hi := avgIters(2)
	lo := avgIters(-3.5)
	if lo <= hi {
		t.Fatalf("iterations at low SNR (%v) not above high SNR (%v)", lo, hi)
	}
}

func TestDecoderCorrectsErrorsThatHardDecisionCannot(t *testing.T) {
	// At ~1.5 dB a rate-1/3 hard decision has many bit errors but turbo
	// decoding should still converge most of the time for moderate K.
	r := stats.NewRNG(9)
	k := 1024
	success := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		in := randomBlock(r, k)
		streams, _ := EncodeStreams(in)
		s := make([][]float64, 3)
		rawErrs := 0
		for j := range streams {
			s[j] = bpskLLR(r, streams[j], 1.5)
			for i := range s[j] {
				var hard byte
				if s[j][i] < 0 {
					hard = 1
				}
				if hard != streams[j][i] {
					rawErrs++
				}
			}
		}
		if rawErrs == 0 {
			t.Fatal("test SNR too high: no raw channel errors")
		}
		dec, _ := NewDecoder(k)
		dec.MaxIterations = 8
		res := dec.Decode(s[0], s[1], s[2], nil)
		if bits.HammingDistance(res.Bits, in) == 0 {
			success++
		}
	}
	if success < trials*8/10 {
		t.Fatalf("decoded %d/%d blocks at 1.5 dB", success, trials)
	}
}

func TestDecodePanicsOnBadLengths(t *testing.T) {
	dec, _ := NewDecoder(40)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short streams")
		}
	}()
	dec.Decode(make([]float64, 40), make([]float64, 44), make([]float64, 44), nil)
}

func TestRateMatchFullMotherCode(t *testing.T) {
	// With E = total non-NULL bits, matching then dematching must recover
	// every stream position exactly once.
	r := stats.NewRNG(10)
	k := 104
	rm, err := NewRateMatcher(k)
	if err != nil {
		t.Fatal(err)
	}
	streams, _ := EncodeStreams(randomBlock(r, k))
	e := 3 * (k + 4)
	out, err := rm.Match(streams, e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != e {
		t.Fatalf("output length %d, want %d", len(out), e)
	}
	// Soft-dematch the hard bits as ±1 and verify all positions filled once.
	llrs := make([]float64, e)
	for i, b := range out {
		if b == 1 {
			llrs[i] = -1
		} else {
			llrs[i] = 1
		}
	}
	s0, s1, s2, err := rm.Dematch(llrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range [][]float64{s0, s1, s2} {
		for i, v := range s {
			if math.Abs(v) != 1 {
				t.Fatalf("stream %d position %d combined weight %v, want ±1", j, i, v)
			}
			var hard byte
			if v < 0 {
				hard = 1
			}
			if hard != streams[j][i] {
				t.Fatalf("stream %d position %d value mismatch", j, i)
			}
		}
	}
}

func TestRateMatchPuncturing(t *testing.T) {
	// E < mother code: dematch leaves exactly (3(K+4) - E) zeros.
	r := stats.NewRNG(11)
	k := 208
	rm, _ := NewRateMatcher(k)
	streams, _ := EncodeStreams(randomBlock(r, k))
	e := 2 * (k + 4)
	out, _ := rm.Match(streams, e, 0)
	llrs := make([]float64, e)
	for i, b := range out {
		llrs[i] = 1 - 2*float64(b)
	}
	s0, s1, s2, _ := rm.Dematch(llrs, 0)
	zeros := 0
	for _, s := range [][]float64{s0, s1, s2} {
		for _, v := range s {
			if v == 0 {
				zeros++
			}
		}
	}
	if zeros != 3*(k+4)-e {
		t.Fatalf("%d unobserved positions, want %d", zeros, 3*(k+4)-e)
	}
}

func TestRateMatchRepetitionCombines(t *testing.T) {
	// E > mother code: wrapped positions accumulate weight 2.
	r := stats.NewRNG(12)
	k := 40
	rm, _ := NewRateMatcher(k)
	streams, _ := EncodeStreams(randomBlock(r, k))
	mother := 3 * (k + 4)
	e := mother + 60
	out, _ := rm.Match(streams, e, 0)
	llrs := make([]float64, e)
	for i, b := range out {
		llrs[i] = 1 - 2*float64(b)
	}
	s0, s1, s2, _ := rm.Dematch(llrs, 0)
	twos := 0
	for _, s := range [][]float64{s0, s1, s2} {
		for _, v := range s {
			if math.Abs(v) == 2 {
				twos++
			}
		}
	}
	if twos != 60 {
		t.Fatalf("%d doubled positions, want 60", twos)
	}
}

func TestRateMatchSystematicPriority(t *testing.T) {
	// rv=0 starts 2R into the systematic section, so for moderate E the
	// selected bits should be dominated by stream 0 (this is the circular
	// buffer's design intent).
	k := 1024
	rm, _ := NewRateMatcher(k)
	streams := [][]byte{make([]byte, k+4), make([]byte, k+4), make([]byte, k+4)}
	for i := range streams[0] {
		streams[0][i] = 1 // mark systematic bits
	}
	e := k // fewer than one full stream
	out, _ := rm.Match(streams, e, 0)
	sys := 0
	for _, b := range out {
		sys += int(b)
	}
	// k0 = 2R skips the head of the systematic section and the tail spills
	// into the parity region, so ~94% (not 100%) is the expected share.
	if float64(sys)/float64(e) < 0.90 {
		t.Fatalf("only %d/%d selected bits systematic at rv=0", sys, e)
	}
}

func TestRateMatchRVShiftsStart(t *testing.T) {
	k := 512
	rm, _ := NewRateMatcher(k)
	if rm.k0(0) >= rm.k0(1) || rm.k0(1) >= rm.k0(2) {
		t.Fatal("k0 not increasing in rv")
	}
}

func TestRateMatcherErrors(t *testing.T) {
	rm, _ := NewRateMatcher(40)
	if _, err := rm.Match([][]byte{nil, nil}, 10, 0); err == nil {
		t.Error("2 streams accepted")
	}
	if _, err := rm.Match([][]byte{make([]byte, 44), make([]byte, 44), make([]byte, 43)}, 10, 0); err == nil {
		t.Error("short stream accepted")
	}
	if _, err := rm.Match([][]byte{make([]byte, 44), make([]byte, 44), make([]byte, 44)}, 0, 0); err == nil {
		t.Error("E=0 accepted")
	}
	if _, _, _, err := rm.Dematch(nil, 0); err == nil {
		t.Error("empty dematch accepted")
	}
	if _, err := NewRateMatcher(39); err == nil {
		t.Error("invalid K accepted")
	}
}

func TestEndToEndCodedRoundTripWithRateMatching(t *testing.T) {
	// encode -> rate match -> BPSK+AWGN -> dematch -> decode for several
	// code rates.
	r := stats.NewRNG(13)
	k := 1024
	for _, e := range []int{(k + 4) * 3, 2 * k, 3 * k / 2} {
		in := randomBlock(r, k)
		streams, _ := EncodeStreams(in)
		rm, _ := NewRateMatcher(k)
		tx, err := rm.Match(streams, e, 0)
		if err != nil {
			t.Fatal(err)
		}
		llrs := bpskLLR(r, tx, 7)
		s0, s1, s2, _ := rm.Dematch(llrs, 0)
		dec, _ := NewDecoder(k)
		dec.MaxIterations = 8
		res := dec.Decode(s0, s1, s2, nil)
		if bits.HammingDistance(res.Bits, in) != 0 {
			t.Fatalf("E=%d: decode failed at 7 dB", e)
		}
	}
}

func TestSegmentationSingleBlock(t *testing.T) {
	s, err := Segment(6144)
	if err != nil {
		t.Fatal(err)
	}
	if s.C != 1 || s.Sizes[0] != 6144 || s.F != 0 {
		t.Fatalf("unexpected segmentation %+v", s)
	}
	s, _ = Segment(100)
	if s.C != 1 || s.Sizes[0] != 104 || s.F != 4 {
		t.Fatalf("unexpected segmentation %+v", s)
	}
}

func TestSegmentationMultiBlock(t *testing.T) {
	s, err := Segment(6145)
	if err != nil {
		t.Fatal(err)
	}
	if s.C != 2 {
		t.Fatalf("C = %d, want 2", s.C)
	}
	total := 0
	for _, k := range s.Sizes {
		total += k
	}
	// Sum of block sizes = B + C·24 (CRCs) + F (fillers).
	if total != s.B+s.C*24+s.F {
		t.Fatalf("size accounting: %d != %d", total, s.B+s.C*24+s.F)
	}
}

func TestSegmentationSplitJoinRoundTrip(t *testing.T) {
	r := stats.NewRNG(14)
	for _, b := range []int{40, 100, 6144, 6145, 10000, 20000, 75376} {
		in := randomBlock(r, b)
		s, err := Segment(b)
		if err != nil {
			t.Fatal(err)
		}
		blocks, err := s.Split(in)
		if err != nil {
			t.Fatal(err)
		}
		for i, blk := range blocks {
			if len(blk) != s.Sizes[i] {
				t.Fatalf("B=%d block %d size %d, want %d", b, i, len(blk), s.Sizes[i])
			}
			if !s.CheckBlockCRC(blk) {
				t.Fatalf("B=%d block %d CRC failed directly after Split", b, i)
			}
		}
		out, err := s.Join(blocks)
		if err != nil {
			t.Fatal(err)
		}
		if bits.HammingDistance(in, out) != 0 {
			t.Fatalf("B=%d: round trip corrupted data", b)
		}
	}
}

func TestSegmentationProperty(t *testing.T) {
	f := func(raw uint16) bool {
		b := int(raw)%70000 + 40
		s, err := Segment(b)
		if err != nil {
			return false
		}
		for _, k := range s.Sizes {
			if err := validateBlockLen(k); err != nil {
				return false
			}
		}
		// Every block payload must be positive.
		crc := 0
		if s.C > 1 {
			crc = 24
		}
		if s.Sizes[0]-s.F-crc <= 0 {
			return false
		}
		total := 0
		for _, k := range s.Sizes {
			total += k
		}
		return total == b+s.C*crc+s.F
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentErrors(t *testing.T) {
	if _, err := Segment(0); err == nil {
		t.Error("Segment(0) accepted")
	}
	s, _ := Segment(100)
	if _, err := s.Split(make([]byte, 99)); err == nil {
		t.Error("short Split input accepted")
	}
	if _, err := s.Join(nil); err == nil {
		t.Error("empty Join accepted")
	}
	if _, err := s.Join([][]byte{make([]byte, 3)}); err == nil {
		t.Error("wrong block size accepted")
	}
}

func TestPerBlockE(t *testing.T) {
	es, err := PerBlockE(43200, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 6 {
		t.Fatalf("%d entries", len(es))
	}
	sum := 0
	for _, e := range es {
		sum += e
		if e%6 != 0 {
			t.Fatalf("E=%d not a multiple of Qm", e)
		}
	}
	if sum != 43200 {
		t.Fatalf("sum(E) = %d, want 43200", sum)
	}
	if _, err := PerBlockE(100, 3, 6); err == nil {
		t.Error("G not multiple of Qm accepted")
	}
	if _, err := PerBlockE(0, 1, 2); err == nil {
		t.Error("G=0 accepted")
	}
}

func TestPerBlockEUneven(t *testing.T) {
	// G' = 101, C = 2: blocks get 50·Qm and 51·Qm.
	es, err := PerBlockE(202, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if es[0] != 100 || es[1] != 102 {
		t.Fatalf("es = %v", es)
	}
}

func BenchmarkEncode6144(b *testing.B) {
	r := stats.NewRNG(15)
	in := randomBlock(r, 6144)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = EncodeStreams(in)
	}
}

func BenchmarkDecode6144Iter1(b *testing.B) {
	benchDecode(b, 6144, 1)
}

func BenchmarkDecode6144Iter4(b *testing.B) {
	benchDecode(b, 6144, 4)
}

func BenchmarkDecode1024Iter4(b *testing.B) {
	benchDecode(b, 1024, 4)
}

func benchDecode(b *testing.B, k, iters int) {
	r := stats.NewRNG(16)
	in := randomBlock(r, k)
	streams, _ := EncodeStreams(in)
	s := make([][]float64, 3)
	for j := range streams {
		s[j] = bpskLLR(r, streams[j], 5)
	}
	dec, _ := NewDecoder(k)
	dec.MaxIterations = iters
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dec.Decode(s[0], s[1], s[2], nil)
	}
}

func TestTurboWaterfall(t *testing.T) {
	// The block error rate must fall off a cliff across the turbo
	// threshold: near-certain failure at -2.5 dB Es/N0 (Eb/N0 ≈ 2.3 dB is
	// fine, -2.5 dB Es/N0 means Eb/N0 ≈ 2.3... rate 1/3 ⇒ +4.77 dB), and
	// near-certain success 3 dB higher.
	r := stats.NewRNG(40)
	k := 1024
	bler := func(snrDB float64) float64 {
		fails := 0
		const trials = 25
		for i := 0; i < trials; i++ {
			in := randomBlock(r, k)
			streams, _ := EncodeStreams(in)
			s := make([][]float64, 3)
			for j := range streams {
				s[j] = bpskLLR(r, streams[j], snrDB)
			}
			dec, _ := NewDecoder(k)
			dec.MaxIterations = 8
			res := dec.Decode(s[0], s[1], s[2], nil)
			if bits.HammingDistance(res.Bits, in) != 0 {
				fails++
			}
		}
		return float64(fails) / trials
	}
	low := bler(-5.5)
	high := bler(-2.5)
	if low < 0.9 {
		t.Fatalf("BLER at -5.5 dB = %v, want ~1 (below the waterfall)", low)
	}
	if high > 0.1 {
		t.Fatalf("BLER at -2.5 dB = %v, want ~0 (above the waterfall)", high)
	}
}

func TestDecoderScratchReuseIsClean(t *testing.T) {
	// A decoder instance must give identical results whether fresh or
	// reused after decoding unrelated data.
	r := stats.NewRNG(41)
	k := 512
	in := randomBlock(r, k)
	streams, _ := EncodeStreams(in)
	s := make([][]float64, 3)
	for j := range streams {
		s[j] = bpskLLR(r, streams[j], 3)
	}
	fresh, _ := NewDecoder(k)
	want := fresh.Decode(s[0], s[1], s[2], nil)
	wantBits := append([]byte(nil), want.Bits...)

	reused, _ := NewDecoder(k)
	// Pollute the scratch with a different block first.
	other := randomBlock(r, k)
	os, _ := EncodeStreams(other)
	o := make([][]float64, 3)
	for j := range os {
		o[j] = bpskLLR(r, os[j], 3)
	}
	reused.Decode(o[0], o[1], o[2], nil)
	got := reused.Decode(s[0], s[1], s[2], nil)
	if bits.HammingDistance(got.Bits, wantBits) != 0 {
		t.Fatal("reused decoder produced different bits")
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("reused decoder iterations %d vs %d", got.Iterations, want.Iterations)
	}
}
