package turbo

import (
	"math"
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/stats"
)

// decodeWithPath runs one decode over the given soft streams with the chosen
// arithmetic. check=nil forces the full iteration count on the trellis, so
// the comparison exercises the recursions rather than the raw pre-check.
func decodeWithPath(t *testing.T, k int, path Path, maxIter int, s [][]float64) []byte {
	t.Helper()
	dec, err := NewDecoder(k)
	if err != nil {
		t.Fatal(err)
	}
	dec.Path = path
	dec.MaxIterations = maxIter
	res := dec.Decode(s[0], s[1], s[2], nil)
	return append([]byte(nil), res.Bits...)
}

func noisyStreams(r *stats.RNG, streams [][]byte, snrDB float64) [][]float64 {
	s := make([][]float64, 3)
	for j := range streams {
		s[j] = bpskLLR(r, streams[j], snrDB)
	}
	return s
}

// TestQuantMatchesFloatAtModerateSNR: across a K × SNR grid where the code
// operates comfortably above the waterfall, the int16 path's hard decisions
// must be bit-identical to the float64 oracle's (and both must recover the
// transmitted block). Q9.6 keeps ~2 decimal digits of LLR precision, far
// more than max-log-MAP needs when the channel is this clean.
func TestQuantMatchesFloatAtModerateSNR(t *testing.T) {
	r := stats.NewRNG(70)
	for _, k := range []int{40, 512, 1056, 6144} {
		for _, snr := range []float64{3, 5, 8} {
			for trial := 0; trial < 2; trial++ {
				in := randomBlock(r, k)
				streams, _ := EncodeStreams(in)
				s := noisyStreams(r, streams, snr)
				q := decodeWithPath(t, k, PathQuantized, 4, s)
				f := decodeWithPath(t, k, PathFloat64, 4, s)
				if d := bits.HammingDistance(q, f); d != 0 {
					t.Fatalf("K=%d SNR=%v trial %d: quant and float disagree in %d bits", k, snr, trial, d)
				}
				if bits.HammingDistance(q, in) != 0 {
					t.Fatalf("K=%d SNR=%v trial %d: decode failed above the waterfall", k, snr, trial)
				}
			}
		}
	}
}

// TestQuantFloatBLERDeltaBounded sweeps the waterfall region, where
// quantization noise actually matters, and bounds both the block-error-rate
// gap and the per-trial disagreement between the two arithmetics. The two
// paths see identical noise realizations, so disagreements isolate the
// quantization itself.
func TestQuantFloatBLERDeltaBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("BLER sweep in -short mode")
	}
	r := stats.NewRNG(71)
	const k = 512
	const trials = 30
	for _, snr := range []float64{-5.5, -4.5, -3.5} {
		failQ, failF, disagree := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			in := randomBlock(r, k)
			streams, _ := EncodeStreams(in)
			s := noisyStreams(r, streams, snr)
			q := decodeWithPath(t, k, PathQuantized, 8, s)
			f := decodeWithPath(t, k, PathFloat64, 8, s)
			qOK := bits.HammingDistance(q, in) == 0
			fOK := bits.HammingDistance(f, in) == 0
			if !qOK {
				failQ++
			}
			if !fOK {
				failF++
			}
			if qOK != fOK {
				disagree++
			}
		}
		blerGap := math.Abs(float64(failQ)-float64(failF)) / trials
		if blerGap > 0.2 {
			t.Fatalf("SNR=%v: BLER gap %.2f (quant %d/%d vs float %d/%d fails)",
				snr, blerGap, failQ, trials, failF, trials)
		}
		if float64(disagree)/trials > 0.2 {
			t.Fatalf("SNR=%v: paths disagree on %d/%d blocks", snr, disagree, trials)
		}
	}
}

// TestQuantDecodeSaturatedInputs: LLRs far beyond the ±LLRQMax rail — the
// saturated-demapper regime, including ±Inf from a degenerate noise estimate —
// must still decode noiseless codewords exactly. This is the saturation edge
// of the Q-format: every branch metric sits at the rail and the doubled-metric
// prologue arithmetic must not wrap.
func TestQuantDecodeSaturatedInputs(t *testing.T) {
	r := stats.NewRNG(72)
	for _, k := range []int{40, 104, 512} {
		in := randomBlock(r, k)
		streams, _ := EncodeStreams(in)
		for _, mag := range []float64{1e6, math.Inf(1)} {
			s := make([][]float64, 3)
			for j := range streams {
				s[j] = make([]float64, len(streams[j]))
				for i, b := range streams[j] {
					s[j][i] = mag * (1 - 2*float64(b))
				}
			}
			q := decodeWithPath(t, k, PathQuantized, 4, s)
			if bits.HammingDistance(q, in) != 0 {
				t.Fatalf("K=%d |LLR|=%v: quantized decode failed on railed inputs", k, mag)
			}
		}
	}
}

// TestQuantSentinelPuncturedHead attacks the unreachable-state sentinels: in
// the first trellis steps most states carry the "impossible" marker, and a
// punctured (all-zero LLR) head combined with railed values right after it is
// the adversarial input for the guarded prologue. The quantized path must
// agree with the float oracle bit for bit and still recover the block.
func TestQuantSentinelPuncturedHead(t *testing.T) {
	r := stats.NewRNG(73)
	for _, k := range []int{40, 48, 64} {
		in := randomBlock(r, k)
		streams, _ := EncodeStreams(in)
		s := make([][]float64, 3)
		for j := range streams {
			s[j] = make([]float64, len(streams[j]))
			for i, b := range streams[j] {
				switch {
				case i < 6:
					s[j][i] = 0 // punctured head: sentinel states meet zero metrics
				case i < 12:
					s[j][i] = 1e5 * (1 - 2*float64(b)) // railed right after
				default:
					s[j][i] = 8 * (1 - 2*float64(b))
				}
			}
		}
		q := decodeWithPath(t, k, PathQuantized, 4, s)
		f := decodeWithPath(t, k, PathFloat64, 4, s)
		if d := bits.HammingDistance(q, f); d != 0 {
			t.Fatalf("K=%d: quant and float disagree in %d bits on punctured head", k, d)
		}
		if bits.HammingDistance(q, in) != 0 {
			t.Fatalf("K=%d: decode failed with punctured head", k)
		}
	}
}

// TestQuantEarlyTerminationParity: with a CRC-style check, both paths must
// terminate early on the same clean block and report OK.
func TestQuantEarlyTerminationParity(t *testing.T) {
	r := stats.NewRNG(74)
	const k = 512
	in := randomBlock(r, k)
	streams, _ := EncodeStreams(in)
	s := noisyStreams(r, streams, 8)
	want := append([]byte(nil), in...)
	check := func(b []byte) bool { return bits.HammingDistance(b, want) == 0 }
	for _, path := range []Path{PathQuantized, PathFloat64} {
		dec, _ := NewDecoder(k)
		dec.Path = path
		dec.PrecheckRaw = false // force at least one constituent pass
		dec.MaxIterations = 8
		res := dec.Decode(s[0], s[1], s[2], check)
		if !res.OK {
			t.Fatalf("%v: check never passed at 8 dB", path)
		}
		if res.Iterations >= 8 {
			t.Fatalf("%v: no early termination (%d iterations)", path, res.Iterations)
		}
	}
}

// TestDecodeFloatAllocFree mirrors TestDecodeAllocFree for the reference
// path: forcing Path=PathFloat64 must also run allocation-free.
func TestDecodeFloatAllocFree(t *testing.T) {
	const k = 1056
	d, err := NewDecoder(k)
	if err != nil {
		t.Fatal(err)
	}
	d.Path = PathFloat64
	r := stats.NewRNG(75)
	s0 := randLLRs(r, k+4, 0)
	s1 := randLLRs(r, k+4, 1)
	s2 := randLLRs(r, k+4, 2)
	d.Decode(s0, s1, s2, nil) // warm up
	allocs := testing.AllocsPerRun(5, func() {
		d.Decode(s0, s1, s2, nil)
	})
	if allocs != 0 {
		t.Fatalf("float64 Decode allocates %.1f objects per call, want 0", allocs)
	}
}
