package turbo

import "rtopex/internal/modulation"

// Radix selects the trellis stepping of the quantized constituent passes.
//
// Radix4 fuses two trellis stages per sweep iteration using the AVX2
// kernels in quant_avx2_amd64.s, with renormalization kept per stage so the
// arithmetic — and therefore every output bit — matches the radix-2 scalar
// stepper exactly. The radix-2 path stays selectable for differential
// testing (TestRadix4DifferentialGrid) and as the fallback on hardware
// without AVX2, where Radix4 silently decodes through the scalar stepper:
// outputs are identical either way, only the stepping speed differs.
type Radix uint8

const (
	// Radix4 (the zero value, so the default) steps the quantized trellis
	// two stages per fused sweep via the SIMD kernels when the CPU
	// supports them.
	Radix4 Radix = iota
	// Radix2 forces the scalar single-stage reference stepper.
	Radix2
)

func (r Radix) String() string {
	if r == Radix2 {
		return "radix2"
	}
	return "radix4"
}

// radix4Enabled gates kernel dispatch; tests flip it to cover the scalar
// fallback on AVX2 hardware.
var radix4Enabled = radix4HW

// constituentQR4 is the radix-4 constituent pass: identical contract to
// constituentQ, stepped two trellis stages per fused sweep on the AVX2
// kernels. The guarded edges (3-step forward prologue, termination tail,
// 3-step LLR epilogue) stay scalar — they are cold and carry the sentinel
// logic — while the guard-free interior runs vectorized. Unlike the scalar
// pass it reads the parity stream in place instead of staging it through
// d.qg1 (same values, one copy less).
func (d *Decoder) constituentQR4(lsys, lpar, la []int16, xTail, zTail [3]int16, le []int16, hard []byte) {
	k := d.K
	if !radix4Enabled || k <= numStates {
		d.constituentQ(lsys, lpar, la, xTail, zTail, le, hard)
		return
	}
	alpha := d.qalpha
	qg0 := d.qg0
	if la == nil {
		// First decoder-1 pass of a batch schedule: the a-priori is
		// identically zero, so qg0 is just the systematic stream.
		copy(qg0[:k], lsys[:k])
	} else {
		for i := 0; i < k; i++ {
			qg0[i] = lsys[i] + la[i]
		}
	}

	av := forwardPrologueQ(alpha, qg0, lpar, k)
	const pro = 3 // k > numStates ⇒ the full prologue ran
	n := k - pro
	forwardStepsAVX2(&alpha[(pro+1)*numStates], &qg0[pro], &lpar[pro], n, &av)

	tb := tailBetaQ(xTail, zTail)
	hardp := hard
	if hardp == nil {
		hardp = d.qhardTmp
	}
	backwardLLRAVX2(&alpha[pro*numStates], &qg0[pro], &lpar[pro], n, &tb, &le[pro], &hardp[pro])

	// Scalar LLR epilogue over the guarded rows (i < pro), continuing the
	// beta recursion left in tb by the kernel. Mirrors constituentQ's
	// epilogue branch exactly.
	for i := pro - 1; i >= 0; i-- {
		curA := (*[numStates]int16)(alpha[i*numStates:])
		gs, gp := int32(qg0[i]), int32(lpar[i])
		c := [4]int32{gs + gp, gs - gp, -gs + gp, -gs - gp}
		m0, m1 := int32(qSentI32), int32(qSentI32)
		for s := 0; s < numStates; s++ {
			if curA[s] == qSent {
				continue
			}
			a := int32(curA[s])
			if v := a + c[parityBit[s][0]] + tb[nextState[s][0]]; v > m0 {
				m0 = v
			}
			if v := a + c[2+int(parityBit[s][1])] + tb[nextState[s][1]]; v > m1 {
				m1 = v
			}
		}
		hardp[i] = byte(uint32(m0-m1) >> 31)
		le[i] = int16(min(max((m0-m1)>>1-gs, -modulation.LLRQMax), modulation.LLRQMax))

		n0 := max(tb[0]+c[0], tb[1]+c[3])
		n1 := max(tb[2]+c[1], tb[3]+c[2])
		n2 := max(tb[5]+c[1], tb[4]+c[2])
		n3 := max(tb[7]+c[0], tb[6]+c[3])
		n4 := max(tb[1]+c[0], tb[0]+c[3])
		n5 := max(tb[3]+c[1], tb[2]+c[2])
		n6 := max(tb[4]+c[1], tb[5]+c[2])
		n7 := max(tb[6]+c[0], tb[7]+c[3])
		tb = [numStates]int32{n0, n1, n2, n3, n4, n5, n6, n7}
	}
}

// constituentPass dispatches one quantized constituent pass by d.Radix.
func (d *Decoder) constituentPass(lsys, lpar, la []int16, xTail, zTail [3]int16, le []int16, hard []byte) {
	if d.Radix == Radix2 {
		d.constituentQ(lsys, lpar, la, xTail, zTail, le, hard)
		return
	}
	d.constituentQR4(lsys, lpar, la, xTail, zTail, le, hard)
}

// forwardPrologueQ runs the guarded 3-step forward prologue from state 0,
// storing int16 rows 1..3 and returning the int32 state vector after the
// last guarded step. Shared verbatim between the radix-2 and radix-4 paths.
func forwardPrologueQ(alpha, qg0, qg1 []int16, k int) [numStates]int32 {
	var av [numStates]int32
	av[0] = 0
	alpha[0] = 0
	for s := 1; s < numStates; s++ {
		av[s] = qSentI32
		alpha[s] = qSent
	}
	pro := 3
	if k < pro {
		pro = k
	}
	for i := 0; i < pro; i++ {
		gs, gp := int32(qg0[i]), int32(qg1[i])
		c := [4]int32{gs + gp, gs - gp, -gs + gp, -gs - gp} // indexed 2u+z
		var nv [numStates]int32
		for s := range nv {
			nv[s] = qSentI32
		}
		for s := 0; s < numStates; s++ {
			if av[s] <= qSentI32 {
				continue
			}
			for u := byte(0); u < 2; u++ {
				ns := nextState[s][u]
				if v := av[s] + c[2*u+parityBit[s][u]]; v > nv[ns] {
					nv[ns] = v
				}
			}
		}
		m := nv[0]
		for s := 1; s < numStates; s++ {
			m = max(m, nv[s])
		}
		next := (*[numStates]int16)(alpha[(i+1)*numStates:])
		for s := 0; s < numStates; s++ {
			if nv[s] <= qSentI32 {
				av[s] = qSentI32
				next[s] = qSent
			} else {
				av[s] = max(nv[s]-m, qFloor)
				next[s] = int16(av[s])
			}
		}
	}
	return av
}

// tailBetaQ seeds the backward recursion through the three forced
// termination steps from state 0 at virtual step K+3. Doubled metrics,
// guarded; shared between the radix-2 and radix-4 paths.
func tailBetaQ(xTail, zTail [3]int16) [numStates]int32 {
	var tb [numStates]int32
	for s := range tb {
		tb[s] = qSentI32
	}
	tb[0] = 0
	for t := 2; t >= 0; t-- {
		gs, gp := int32(xTail[t]), int32(zTail[t])
		var nb [numStates]int32
		for s := 0; s < numStates; s++ {
			u := feedback[s]
			ns := nextState[s][u]
			if tb[ns] <= qSentI32 {
				nb[s] = qSentI32
				continue
			}
			m := gs
			if u == 1 {
				m = -gs
			}
			if parityBit[s][u] == 1 {
				m -= gp
			} else {
				m += gp
			}
			nb[s] = tb[ns] + m
		}
		tb = nb
	}
	return tb
}
