package lte

import (
	"math"
	"testing"

	"rtopex/internal/modulation"
)

func TestBandwidthNumerology(t *testing.T) {
	if BW10MHz.SamplesPerSubframe() != 15360 {
		t.Fatalf("10 MHz samples/subframe = %d, want 15360 (paper §4.2)", BW10MHz.SamplesPerSubframe())
	}
	if BW5MHz.SamplesPerSubframe() != 7680 {
		t.Fatal("5 MHz samples wrong")
	}
	if BW10MHz.Subcarriers() != 600 || BW10MHz.TotalREs() != 8400 {
		t.Fatalf("10 MHz REs = %d, want 8400 (paper §2.1)", BW10MHz.TotalREs())
	}
	if BW10MHz.DataREs() != 7200 {
		t.Fatalf("10 MHz data REs = %d, want 7200", BW10MHz.DataREs())
	}
}

func TestCPLengths(t *testing.T) {
	// 1024-point numerology: 80 for slot-leading symbols, 72 otherwise;
	// total samples per subframe must be exactly 15360.
	if BW10MHz.CPLen(0) != 80 || BW10MHz.CPLen(7) != 80 {
		t.Fatal("slot-leading CP wrong")
	}
	if BW10MHz.CPLen(1) != 72 || BW10MHz.CPLen(13) != 72 {
		t.Fatal("regular CP wrong")
	}
	total := 0
	for l := 0; l < SymbolsPerSubframe; l++ {
		total += BW10MHz.CPLen(l) + BW10MHz.FFTSize
	}
	if total != BW10MHz.SamplesPerSubframe() {
		t.Fatalf("CP accounting: %d samples, want %d", total, BW10MHz.SamplesPerSubframe())
	}
	total = 0
	for l := 0; l < SymbolsPerSubframe; l++ {
		total += BW5MHz.CPLen(l) + BW5MHz.FFTSize
	}
	if total != BW5MHz.SamplesPerSubframe() {
		t.Fatalf("5 MHz CP accounting: %d", total)
	}
}

func TestMCSTableBoundaries(t *testing.T) {
	cases := []struct {
		mcs    int
		scheme modulation.Scheme
		itbs   int
	}{
		{0, modulation.QPSK, 0}, {10, modulation.QPSK, 10},
		{11, modulation.QAM16, 10}, {20, modulation.QAM16, 19},
		{21, modulation.QAM64, 19}, {27, modulation.QAM64, 25}, {28, modulation.QAM64, 26},
	}
	for _, c := range cases {
		info, err := MCSTable(c.mcs)
		if err != nil {
			t.Fatal(err)
		}
		if info.Scheme != c.scheme || info.ITBS != c.itbs {
			t.Errorf("MCS %d -> %v/I_TBS %d, want %v/%d", c.mcs, info.Scheme, info.ITBS, c.scheme, c.itbs)
		}
	}
	for _, bad := range []int{-1, 29, 100} {
		if _, err := MCSTable(bad); err == nil {
			t.Errorf("MCS %d accepted", bad)
		}
	}
}

func TestTBSMonotone(t *testing.T) {
	for _, prb := range []int{25, 50, 100} {
		prev := 0
		for itbs := 0; itbs <= 26; itbs++ {
			tbs, err := TBS(itbs, prb)
			if err != nil {
				t.Fatal(err)
			}
			if tbs <= prev {
				t.Fatalf("TBS not increasing at I_TBS %d, PRB %d", itbs, prb)
			}
			prev = tbs
		}
	}
}

func TestTBSPaperAnchors(t *testing.T) {
	// The paper quotes 1.3 and 31.7 Mbps as the nominal throughput range
	// for 10 MHz, and D from 0.16 to 3.7 bits/RE.
	lo, err := ThroughputMbps(0, BW10MHz)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := ThroughputMbps(27, BW10MHz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-1.384) > 1e-9 || math.Abs(hi-31.704) > 1e-9 {
		t.Fatalf("throughput range [%v, %v], want [1.384, 31.704]", lo, hi)
	}
	dLo, _ := SubcarrierLoad(0, BW10MHz)
	dHi, _ := SubcarrierLoad(27, BW10MHz)
	if math.Abs(dLo-0.1648) > 1e-3 || math.Abs(dHi-3.774) > 1e-3 {
		t.Fatalf("D range [%v, %v], want ~[0.16, 3.7]", dLo, dHi)
	}
}

func TestTBSErrors(t *testing.T) {
	if _, err := TBS(0, 7); err == nil {
		t.Error("unsupported PRB accepted")
	}
	if _, err := TBS(27, 50); err == nil {
		t.Error("I_TBS 27 accepted")
	}
	if _, err := TBS(-1, 50); err == nil {
		t.Error("negative I_TBS accepted")
	}
	if _, _, err := TransportBlockSize(99, 50); err == nil {
		t.Error("bad MCS accepted")
	}
	if _, err := SubcarrierLoad(0, Bandwidth{PRB: 7}); err == nil {
		t.Error("bad bandwidth accepted")
	}
	if _, err := ThroughputMbps(99, BW10MHz); err == nil {
		t.Error("bad MCS accepted in throughput")
	}
	if _, err := CodewordBits(99, BW10MHz); err == nil {
		t.Error("bad MCS accepted in codeword bits")
	}
}

func TestCodewordBits(t *testing.T) {
	g, err := CodewordBits(27, BW10MHz)
	if err != nil {
		t.Fatal(err)
	}
	if g != 7200*6 {
		t.Fatalf("G = %d, want 43200", g)
	}
	g, _ = CodewordBits(5, BW10MHz)
	if g != 7200*2 {
		t.Fatalf("QPSK G = %d", g)
	}
}

func TestCodeRateFeasible(t *testing.T) {
	// Every MCS must fit its transport block (plus CRCs) into the codeword
	// at a code rate <= 0.93 (the standard's practical ceiling).
	for _, bw := range []Bandwidth{BW5MHz, BW10MHz, BW20MHz} {
		for mcs := 0; mcs <= MaxMCS; mcs++ {
			tbs, _, err := TransportBlockSize(mcs, bw.PRB)
			if err != nil {
				t.Fatal(err)
			}
			g, _ := CodewordBits(mcs, bw)
			rate := float64(tbs+24) / float64(g)
			if rate > 0.93 {
				t.Errorf("MCS %d @ %v MHz: code rate %.3f too high", mcs, bw.MHz, rate)
			}
			if rate < 0.05 {
				t.Errorf("MCS %d @ %v MHz: code rate %.3f suspiciously low", mcs, bw.MHz, rate)
			}
		}
	}
}

func TestSubcarrierLoadScalesAcrossBandwidth(t *testing.T) {
	// D should be roughly bandwidth-independent at the same MCS (TBS scales
	// with PRBs).
	for _, mcs := range []int{0, 13, 27} {
		d10, _ := SubcarrierLoad(mcs, BW10MHz)
		d20, _ := SubcarrierLoad(mcs, BW20MHz)
		if math.Abs(d10-d20)/d10 > 0.15 {
			t.Errorf("MCS %d: D(10MHz)=%v vs D(20MHz)=%v", mcs, d10, d20)
		}
	}
}
