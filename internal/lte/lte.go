// Package lte holds the LTE numerology, MCS and transport-block-size tables
// used by the uplink chain and the workload models: bandwidth configurations
// (FFT size, sampling rate, PRB count), the PUSCH MCS→(modulation, I_TBS)
// mapping of TS 36.213 Table 8.6.1-1, and the TBS columns of Table
// 7.1.7.2.1-1 for the PRB counts this reproduction uses.
//
// The paper's subcarrier load D is TBS divided by the subframe's RE budget
// (8400 for 10 MHz); with 50 PRBs it spans 0.16 (MCS 0) to 3.7 bits/RE
// (MCS 27), exactly the range §2.1 quotes.
package lte

import (
	"fmt"

	"rtopex/internal/modulation"
)

// Timing constants.
const (
	// SubframeDuration is 1 ms expressed in microseconds, the unit the
	// platform simulator uses throughout.
	SubframeDurationUS = 1000
	// SymbolsPerSubframe under normal cyclic prefix.
	SymbolsPerSubframe = 14
	// SubcarriersPerPRB in frequency.
	SubcarriersPerPRB = 12
	// DMRSSymbolsPerSubframe: one demodulation reference symbol per slot.
	DMRSSymbolsPerSubframe = 2
	// MaxMCS supported for PUSCH data in this reproduction (the paper
	// sweeps 0–27).
	MaxMCS = 27
	// HARQDeadlineSubframes: an uplink subframe N is acknowledged in
	// downlink subframe N+4, giving the 3 ms budget of §2.4.
	HARQDeadlineSubframes = 4
)

// Bandwidth describes one LTE channel bandwidth configuration.
type Bandwidth struct {
	MHz          float64
	PRB          int // resource blocks across frequency
	FFTSize      int
	SampleRateHz int
}

// Standard bandwidth configurations.
var (
	BW5MHz  = Bandwidth{MHz: 5, PRB: 25, FFTSize: 512, SampleRateHz: 7_680_000}
	BW10MHz = Bandwidth{MHz: 10, PRB: 50, FFTSize: 1024, SampleRateHz: 15_360_000}
	BW20MHz = Bandwidth{MHz: 20, PRB: 100, FFTSize: 2048, SampleRateHz: 30_720_000}
)

// SamplesPerSubframe is the number of complex baseband samples in 1 ms.
func (b Bandwidth) SamplesPerSubframe() int { return b.SampleRateHz / 1000 }

// Subcarriers is the number of occupied data subcarriers.
func (b Bandwidth) Subcarriers() int { return b.PRB * SubcarriersPerPRB }

// TotalREs is the full RE budget of a subframe (all 14 symbols), the
// denominator of the paper's subcarrier load D.
func (b Bandwidth) TotalREs() int { return b.Subcarriers() * SymbolsPerSubframe }

// DataREs is the PUSCH data RE count: 14 symbols minus the 2 DM-RS symbols.
func (b Bandwidth) DataREs() int {
	return b.Subcarriers() * (SymbolsPerSubframe - DMRSSymbolsPerSubframe)
}

// CPLen returns the cyclic-prefix length in samples for symbol l (0..13),
// scaled from the 2048-point reference numerology.
func (b Bandwidth) CPLen(l int) int {
	scale := b.FFTSize
	if l%7 == 0 { // first symbol of each slot
		return 160 * scale / 2048
	}
	return 144 * scale / 2048
}

// MCSInfo is the PUSCH modulation and TBS index for one MCS.
type MCSInfo struct {
	MCS    int
	Scheme modulation.Scheme
	ITBS   int
}

// MCSTable maps MCS 0..28 per TS 36.213 Table 8.6.1-1.
func MCSTable(mcs int) (MCSInfo, error) {
	switch {
	case mcs >= 0 && mcs <= 10:
		return MCSInfo{MCS: mcs, Scheme: modulation.QPSK, ITBS: mcs}, nil
	case mcs >= 11 && mcs <= 20:
		return MCSInfo{MCS: mcs, Scheme: modulation.QAM16, ITBS: mcs - 1}, nil
	case mcs >= 21 && mcs <= 28:
		return MCSInfo{MCS: mcs, Scheme: modulation.QAM64, ITBS: mcs - 2}, nil
	default:
		return MCSInfo{}, fmt.Errorf("lte: MCS %d out of range", mcs)
	}
}

// tbsColumns holds the TS 36.213 Table 7.1.7.2.1-1 columns for the PRB
// widths exercised by this reproduction (25 = 5 MHz, 50 = 10 MHz,
// 100 = 20 MHz), indexed by I_TBS 0..26.
var tbsColumns = map[int][27]int{
	25: {
		680, 904, 1096, 1416, 1800, 2216, 2600, 3112, 3496, 4008,
		4392, 4968, 5736, 6456, 7224, 7736, 7992, 9144, 9912, 10680,
		11832, 12576, 13536, 14112, 15264, 15840, 18336,
	},
	50: {
		1384, 1800, 2216, 2856, 3624, 4392, 5160, 6200, 6968, 7992,
		8760, 9912, 11448, 12960, 14112, 15264, 16416, 18336, 19848, 21384,
		23688, 25456, 27376, 28336, 30576, 31704, 36696,
	},
	100: {
		2792, 3624, 4584, 5736, 7224, 8760, 10296, 12216, 14112, 15840,
		17568, 19848, 22920, 25456, 28336, 30576, 32856, 36696, 39232, 43816,
		46888, 51024, 55056, 57336, 61664, 63776, 75376,
	},
}

// TBS returns the transport block size in bits for an I_TBS index and PRB
// allocation. Only the PRB widths in tbsColumns are supported; the paper's
// experiments use full-band allocations (100% PRB utilization).
func TBS(itbs, nPRB int) (int, error) {
	col, ok := tbsColumns[nPRB]
	if !ok {
		return 0, fmt.Errorf("lte: no TBS column for %d PRBs (supported: 25, 50, 100)", nPRB)
	}
	if itbs < 0 || itbs >= len(col) {
		return 0, fmt.Errorf("lte: I_TBS %d out of range", itbs)
	}
	return col[itbs], nil
}

// TransportBlockSize resolves an MCS directly to (TBS bits, scheme).
func TransportBlockSize(mcs, nPRB int) (tbs int, scheme modulation.Scheme, err error) {
	info, err := MCSTable(mcs)
	if err != nil {
		return 0, 0, err
	}
	tbs, err = TBS(info.ITBS, nPRB)
	return tbs, info.Scheme, err
}

// SubcarrierLoad computes the paper's D: transport-block bits per subframe
// RE for a given MCS and bandwidth.
func SubcarrierLoad(mcs int, bw Bandwidth) (float64, error) {
	tbs, _, err := TransportBlockSize(mcs, bw.PRB)
	if err != nil {
		return 0, err
	}
	return float64(tbs) / float64(bw.TotalREs()), nil
}

// ThroughputMbps is the nominal PHY throughput for an MCS: one transport
// block per 1 ms subframe.
func ThroughputMbps(mcs int, bw Bandwidth) (float64, error) {
	tbs, _, err := TransportBlockSize(mcs, bw.PRB)
	if err != nil {
		return 0, err
	}
	return float64(tbs) / 1000, nil
}

// CodewordBits returns G, the number of channel bits available to the PUSCH
// codeword: data REs × modulation order.
func CodewordBits(mcs int, bw Bandwidth) (int, error) {
	info, err := MCSTable(mcs)
	if err != nil {
		return 0, err
	}
	return bw.DataREs() * info.Scheme.Order(), nil
}
