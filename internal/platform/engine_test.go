package platform

import (
	"testing"

	"rtopex/internal/stats"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("final time %v", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var trace []float64
	e.At(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace %v", trace)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for past event")
		}
	}()
	e.At(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := map[float64]bool{}
	for _, at := range []float64{10, 20, 30} {
		at := at
		e.At(at, func() { fired[at] = true })
	}
	e.RunUntil(20)
	if !fired[10] || !fired[20] || fired[30] {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("now %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.RunUntil(100)
	if !fired[30] || e.Now() != 100 {
		t.Fatal("RunUntil did not advance")
	}
}

func TestStepAndPending(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	e.At(1, func() {})
	if e.Pending() != 1 {
		t.Fatal("pending wrong")
	}
	if !e.Step() || e.Pending() != 0 {
		t.Fatal("step accounting wrong")
	}
}

func TestDeterminismUnderRandomInsertion(t *testing.T) {
	run := func(seed uint64) []float64 {
		r := stats.NewRNG(seed)
		e := New()
		var log []float64
		var insert func(depth int)
		insert = func(depth int) {
			if depth > 3 {
				return
			}
			n := 1 + r.Intn(3)
			for i := 0; i < n; i++ {
				d := r.Float64() * 100
				e.After(d, func() {
					log = append(log, e.Now())
					insert(depth + 1)
				})
			}
		}
		insert(0)
		e.Run()
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("runs diverged")
		}
	}
	// Log must be nondecreasing (causality).
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("time went backwards")
		}
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			e.After(1, fn)
		}
	}
	e.After(1, fn)
	b.ResetTimer()
	e.Run()
}
