// Package platform provides the deterministic discrete-event engine the
// C-RAN scheduler simulations run on. Time is a float64 microsecond clock;
// events fire in nondecreasing time order with FIFO tie-breaking, so a run
// is exactly reproducible from its inputs.
//
// The engine deliberately has no concept of goroutines or wall-clock time:
// scheduler experiments need tens of thousands of 1 ms subframes with
// microsecond-resolution timing, and running them against Go's runtime
// would measure the Go scheduler and garbage collector rather than the
// paper's design (see DESIGN.md §1).
package platform

import "container/heap"

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now  float64
	seq  int64
	pq   eventHeap
	hook Hook
}

// Hook observes engine activity for tracing and diagnostics: OnAt fires
// when an event is scheduled (with its target time and the current clock),
// OnStep after an event executes. Both are synchronous; a hook must not
// mutate engine state. A nil hook (the default) costs one branch per call.
type Hook interface {
	OnAt(at, now float64)
	OnStep(now float64)
}

// SetHook installs (or with nil removes) the engine's observer.
func (e *Engine) SetHook(h Hook) { e.hook = h }

type multiHook struct{ hooks []Hook }

func (m *multiHook) OnAt(at, now float64) {
	for _, h := range m.hooks {
		h.OnAt(at, now)
	}
}

func (m *multiHook) OnStep(now float64) {
	for _, h := range m.hooks {
		h.OnStep(now)
	}
}

// Hooks combines several hooks into one, invoking them in order. Nil hooks
// are dropped; zero live hooks yields nil (the engine's "no observer" fast
// path), one yields that hook unwrapped.
func Hooks(hooks ...Hook) Hook {
	live := make([]Hook, 0, len(hooks))
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multiHook{hooks: live}
}

type event struct {
	at  float64
	seq int64
	do  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New creates an engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time in microseconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a simulation bug, and silently clamping would corrupt
// causality.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic("platform: event scheduled in the past")
	}
	if e.hook != nil {
		e.hook.OnAt(t, e.now)
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, do: fn})
}

// After schedules fn to run d microseconds from now.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		panic("platform: negative delay")
	}
	e.At(e.now+d, fn)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.pq.Len() }

// Step executes the next event and reports whether one existed.
func (e *Engine) Step() bool {
	if e.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	ev.do()
	if e.hook != nil {
		e.hook.OnStep(e.now)
	}
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled after t remain queued.
func (e *Engine) RunUntil(t float64) {
	for e.pq.Len() > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
