package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"sort"
	"sync"
	"time"

	"rtopex/internal/obs"
	"rtopex/internal/sweep"
)

// Config describes one coordinated fleet sweep.
type Config struct {
	// Spec is the sweep being distributed: IDs, Options (whose resolved
	// seed is the root seed units derive from), Replicas, SkipMeasured,
	// StorePath, Resume, and Timeout (the per-unit compute budget handed
	// to workers). Spec.Workers/Progress/Obs/Push are ignored — worker
	// parallelism lives in the worker processes.
	Spec sweep.Config
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// before its unit is reclaimed and re-leased (default 30s).
	LeaseTTL time.Duration
	// MaxAttempts bounds lease grants per unit: a unit whose leases keep
	// expiring or timing out is failed permanently on the MaxAttempts-th
	// loss (default 3), so one poisonous unit cannot spin the fleet
	// forever.
	MaxAttempts int
	// RetryHint is the client backoff suggested when no unit is leasable
	// (default 200ms).
	RetryHint time.Duration
	// Obs, when non-nil, receives the rtopex_fleet_* lease/reclaim/worker
	// metrics; nil creates a private registry (still served at /metrics).
	Obs *obs.Registry
	// Logf, when non-nil, receives coordinator log lines.
	Logf func(format string, args ...any)
	// Now substitutes the clock (tests); nil means time.Now.
	Now func() time.Time
}

type unitPhase int

const (
	phasePending unitPhase = iota
	phaseLeased
	phaseDone
	phaseFailed
)

type unitTracker struct {
	unit     sweep.Unit
	phase    unitPhase
	leaseID  string
	worker   string
	expiry   time.Time
	attempts int
	failure  *sweep.Failure
}

type workerState struct {
	lastSeen    time.Time
	leased      int
	completions int64
}

// Coordinator owns a fleet sweep's unit ledger: it grants leases, reclaims
// the silent, ingests completions through the deduping store, and resolves
// when every unit is done or failed. All methods are safe for concurrent
// use; the HTTP surface in Handler is a thin JSON shim over them, so tests
// can drive the protocol directly.
type Coordinator struct {
	cfg  Config
	now  func() time.Time
	logf func(format string, args ...any)
	ttl  time.Duration

	mu          sync.Mutex
	units       []*unitTracker
	byKey       map[string]*unitTracker
	leases      map[string]*unitTracker
	workers     map[string]*workerState
	store       *sweep.Store
	ingest      *sweep.Ingest
	records     []*sweep.Record
	reused      int
	outstanding int
	leaseSeq    uint64
	closed      bool
	doneCh      chan struct{}

	reg         *obs.Registry
	cLeases     *obs.Counter
	cReclaims   *obs.Counter
	cReleases   *obs.Counter
	cDuplicates *obs.Counter
	cHeartbeats *obs.Counter
	cDone       *obs.Counter
	cFailed     *obs.Counter
	gPending    *obs.Gauge
	gLeased     *obs.Gauge
	gWorkers    *obs.Gauge
}

// NewCoordinator expands the spec into units, primes the store (honoring
// Spec.Resume exactly like sweep.Run: surviving records are rewritten and
// their units marked done), and is immediately ready to serve leases.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	units, err := sweep.Units(cfg.Spec)
	if err != nil {
		return nil, err
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryHint <= 0 {
		cfg.RetryHint = 200 * time.Millisecond
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}

	c := &Coordinator{
		cfg:     cfg,
		now:     now,
		logf:    cfg.Logf,
		ttl:     cfg.LeaseTTL,
		byKey:   make(map[string]*unitTracker, len(units)),
		leases:  map[string]*unitTracker{},
		workers: map[string]*workerState{},
		doneCh:  make(chan struct{}),
		reg:     reg,
	}
	c.initMetrics(len(units))

	var prior []*sweep.Record
	existing := map[string]*sweep.Record{}
	if cfg.Spec.StorePath != "" {
		if cfg.Spec.Resume {
			recs, rerr := sweep.ReadStore(cfg.Spec.StorePath)
			if rerr != nil && !errors.Is(rerr, fs.ErrNotExist) {
				return nil, rerr
			}
			existing = sweep.IndexByKey(recs)
			for _, r := range recs {
				if existing[r.Key] == r {
					prior = append(prior, r)
				}
			}
		}
		store, err := sweep.CreateStore(cfg.Spec.StorePath)
		if err != nil {
			return nil, err
		}
		c.store = store
	}
	// The ingest always exists — with no store it still provides the
	// content-hash dedup completions rely on.
	c.ingest, err = sweep.NewIngest(c.store, prior)
	if err != nil {
		return nil, err
	}

	for _, u := range units {
		ut := &unitTracker{unit: u}
		if rec, ok := existing[u.Key]; ok && cfg.Spec.Resume {
			ut.phase = phaseDone
			c.records = append(c.records, rec)
			c.reused++
		} else {
			c.outstanding++
		}
		c.units = append(c.units, ut)
		c.byKey[u.Key] = ut
	}
	c.reg.Counter("rtopex_fleet_units_total").Add(int64(len(units)))
	c.reg.Counter("rtopex_fleet_units_reused_total").Add(int64(c.reused))
	c.updateGaugesLocked()
	if c.outstanding == 0 {
		close(c.doneCh)
	}
	return c, nil
}

func (c *Coordinator) initMetrics(total int) {
	r := c.reg
	r.SetHelp("rtopex_fleet_units_total", "Units in this fleet sweep (experiments × replicas).")
	r.SetHelp("rtopex_fleet_units_reused_total", "Units satisfied from the resumed store without leasing.")
	r.SetHelp("rtopex_fleet_units_done_total", "Units completed with an ingested record.")
	r.SetHelp("rtopex_fleet_units_failed_total", "Units failed permanently (error or attempt cap).")
	r.SetHelp("rtopex_fleet_leases_total", "Leases granted.")
	r.SetHelp("rtopex_fleet_reclaims_total", "Leases reclaimed after TTL expiry (dead or silent worker).")
	r.SetHelp("rtopex_fleet_releases_total", "Leases released by worker-reported unit timeouts.")
	r.SetHelp("rtopex_fleet_duplicate_completions_total", "Completions dropped as byte-identical duplicates (zombie workers).")
	r.SetHelp("rtopex_fleet_heartbeats_total", "Heartbeat requests processed.")
	r.SetHelp("rtopex_fleet_units_pending", "Units waiting for a lease.")
	r.SetHelp("rtopex_fleet_units_leased", "Units currently leased out.")
	r.SetHelp("rtopex_fleet_workers_live", "Workers seen within the last two lease TTLs.")
	c.cLeases = r.Counter("rtopex_fleet_leases_total")
	c.cReclaims = r.Counter("rtopex_fleet_reclaims_total")
	c.cReleases = r.Counter("rtopex_fleet_releases_total")
	c.cDuplicates = r.Counter("rtopex_fleet_duplicate_completions_total")
	c.cHeartbeats = r.Counter("rtopex_fleet_heartbeats_total")
	c.cDone = r.Counter("rtopex_fleet_units_done_total")
	c.cFailed = r.Counter("rtopex_fleet_units_failed_total")
	c.gPending = r.Gauge("rtopex_fleet_units_pending")
	c.gLeased = r.Gauge("rtopex_fleet_units_leased")
	c.gWorkers = r.Gauge("rtopex_fleet_workers_live")
}

// Registry exposes the coordinator's metrics registry (for -http serving
// or embedding).
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

func (c *Coordinator) logfSafe(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

func (c *Coordinator) updateGaugesLocked() {
	var pending, leased int
	for _, ut := range c.units {
		switch ut.phase {
		case phasePending:
			pending++
		case phaseLeased:
			leased++
		}
	}
	c.gPending.Set(float64(pending))
	c.gLeased.Set(float64(leased))
	live := 0
	cutoff := c.now().Add(-2 * c.ttl)
	for _, w := range c.workers {
		if !w.lastSeen.Before(cutoff) {
			live++
		}
	}
	c.gWorkers.Set(float64(live))
}

// reclaimLocked returns every expired lease's unit to the pending queue.
// Called lazily on every request, so a coordinator nobody polls still
// converges the moment the next worker shows up.
func (c *Coordinator) reclaimLocked() {
	now := c.now()
	for id, ut := range c.leases {
		if ut.expiry.After(now) {
			continue
		}
		delete(c.leases, id)
		c.logfSafe("fleet: lease %s (%s, worker %s) expired, reclaiming unit", id, ut.unit.Spec.ID, ut.worker)
		c.cReclaims.Inc()
		if w := c.workers[ut.worker]; w != nil && w.leased > 0 {
			w.leased--
		}
		c.releaseUnitLocked(ut, fmt.Sprintf("lease expired after %s", c.ttl))
	}
}

// releaseUnitLocked puts a leased unit back in the queue, or fails it
// permanently once its attempt budget is spent.
func (c *Coordinator) releaseUnitLocked(ut *unitTracker, reason string) {
	ut.leaseID, ut.worker = "", ""
	if ut.attempts >= c.cfg.MaxAttempts {
		ut.phase = phaseFailed
		ut.failure = &sweep.Failure{
			Unit:     ut.unit,
			Err:      fmt.Sprintf("%s; attempt cap (%d) reached", reason, c.cfg.MaxAttempts),
			TimedOut: true,
		}
		c.cFailed.Inc()
		c.resolveOneLocked()
		return
	}
	ut.phase = phasePending
}

// resolveOneLocked marks one outstanding unit resolved and closes the done
// channel on the last one.
func (c *Coordinator) resolveOneLocked() {
	c.outstanding--
	if c.outstanding == 0 {
		close(c.doneCh)
	}
}

func (c *Coordinator) touchWorkerLocked(name string) *workerState {
	w := c.workers[name]
	if w == nil {
		w = &workerState{}
		c.workers[name] = w
		c.logfSafe("fleet: new worker %s", name)
	}
	w.lastSeen = c.now()
	return w
}

func checkProtocol(p int) error {
	if p != ProtocolVersion {
		return fmt.Errorf("fleet: protocol %d not supported (this coordinator speaks %d)", p, ProtocolVersion)
	}
	return nil
}

// Lease grants the first pending unit, or reports wait/done.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if err := checkProtocol(req.Protocol); err != nil {
		return LeaseResponse{}, err
	}
	if req.Worker == "" {
		return LeaseResponse{}, errors.New("fleet: lease request without worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	w := c.touchWorkerLocked(req.Worker)
	defer c.updateGaugesLocked()
	if c.outstanding == 0 {
		return LeaseResponse{Status: StatusDone}, nil
	}
	for _, ut := range c.units {
		if ut.phase != phasePending {
			continue
		}
		c.leaseSeq++
		ut.phase = phaseLeased
		ut.leaseID = fmt.Sprintf("L%06d", c.leaseSeq)
		ut.worker = req.Worker
		ut.expiry = c.now().Add(c.ttl)
		ut.attempts++
		c.leases[ut.leaseID] = ut
		w.leased++
		c.cLeases.Inc()
		c.logfSafe("fleet: lease %s: %s shard %d replica %d → %s (attempt %d)",
			ut.leaseID, ut.unit.Spec.ID, ut.unit.Shard, ut.unit.Replica, req.Worker, ut.attempts)
		return LeaseResponse{Status: StatusLease, Lease: &WireLease{
			ID:            ut.leaseID,
			Key:           ut.unit.Key,
			Experiment:    ut.unit.Spec.ID,
			Shard:         ut.unit.Shard,
			Replica:       ut.unit.Replica,
			Config:        ut.unit.Options.Resolve(),
			TTLMillis:     c.ttl.Milliseconds(),
			TimeoutMillis: c.cfg.Spec.Timeout.Milliseconds(),
		}}, nil
	}
	// Everything outstanding is leased out; the caller should ask again
	// shortly (sooner than the TTL, so reclaims find a taker fast).
	return LeaseResponse{Status: StatusWait, RetryMillis: c.cfg.RetryHint.Milliseconds()}, nil
}

// Heartbeat renews the listed leases; ids no longer honored come back
// rejected so the worker stops renewing them.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	if err := checkProtocol(req.Protocol); err != nil {
		return HeartbeatResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	c.touchWorkerLocked(req.Worker)
	c.cHeartbeats.Inc()
	defer c.updateGaugesLocked()
	var resp HeartbeatResponse
	for _, id := range req.LeaseIDs {
		ut, ok := c.leases[id]
		if !ok || ut.worker != req.Worker {
			resp.Rejected = append(resp.Rejected, id)
			continue
		}
		ut.expiry = c.now().Add(c.ttl)
	}
	return resp, nil
}

// Complete ingests one finished unit's record. Any valid record for a
// not-yet-done unit is accepted — including one from a stale lease (a
// zombie that finished after being reclaimed): records are deterministic,
// so whoever delivers first wins and later byte-identical copies are
// counted as duplicates.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	if err := checkProtocol(req.Protocol); err != nil {
		return CompleteResponse{}, err
	}
	var rec sweep.Record
	if err := json.Unmarshal(req.Record, &rec); err != nil {
		return CompleteResponse{}, fmt.Errorf("fleet: completion record: %v", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return CompleteResponse{}, errors.New("fleet: coordinator is shut down")
	}
	c.reclaimLocked()
	w := c.touchWorkerLocked(req.Worker)
	defer c.updateGaugesLocked()
	ut, ok := c.byKey[rec.Key]
	if !ok {
		return CompleteResponse{}, fmt.Errorf("fleet: completion for unknown unit key %s", rec.Key)
	}
	added, err := c.ingest.Add(&rec)
	if err != nil {
		return CompleteResponse{}, err
	}
	if ut.phase == phaseLeased {
		if cur, ok := c.leases[ut.leaseID]; ok && cur == ut {
			delete(c.leases, ut.leaseID)
		}
		if ow := c.workers[ut.worker]; ow != nil && ow.leased > 0 {
			ow.leased--
		}
	}
	switch ut.phase {
	case phaseDone:
		// Re-delivery of a resolved unit: the ingest already counted the
		// byte-identical duplicate (or errored on a conflict above).
		c.cDuplicates.Inc()
		return CompleteResponse{Status: StatusDuplicate}, nil
	case phaseFailed:
		// A straggler beat the attempt cap's verdict: take the record —
		// the store should be as complete as possible — and clear the
		// failure. (The cumulative failed counter keeps its tick; the
		// summary recounts live phases from the trackers.)
		ut.phase = phaseDone
		ut.failure = nil
	default:
		ut.phase = phaseDone
		c.resolveOneLocked()
	}
	ut.leaseID, ut.worker = "", ""
	w.completions++
	c.cDone.Inc()
	if added {
		c.records = append(c.records, &rec)
	} else {
		c.cDuplicates.Inc()
	}
	c.logfSafe("fleet: unit %s (%s) completed by %s", rec.Key, rec.Experiment, req.Worker)
	return CompleteResponse{Status: StatusOK}, nil
}

// Fail records a worker-reported unit failure. Timeouts release the unit
// for re-lease (until the attempt cap); other errors are permanent — the
// experiments are deterministic, so retrying an error burns time for the
// same answer.
func (c *Coordinator) Fail(req FailRequest) (FailResponse, error) {
	if err := checkProtocol(req.Protocol); err != nil {
		return FailResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	c.touchWorkerLocked(req.Worker)
	defer c.updateGaugesLocked()
	ut, ok := c.byKey[req.Key]
	if !ok {
		return FailResponse{}, fmt.Errorf("fleet: failure for unknown unit key %s", req.Key)
	}
	if ut.phase == phaseDone || ut.phase == phaseFailed {
		return FailResponse{Status: StatusIgnored}, nil
	}
	if ut.phase == phaseLeased && ut.leaseID != req.LeaseID {
		// A stale holder's opinion; the current lease decides the unit.
		return FailResponse{Status: StatusIgnored}, nil
	}
	if ut.phase == phaseLeased {
		delete(c.leases, ut.leaseID)
		if w := c.workers[ut.worker]; w != nil && w.leased > 0 {
			w.leased--
		}
	}
	if req.TimedOut {
		c.cReleases.Inc()
		c.logfSafe("fleet: unit %s (%s) timed out on %s, releasing for re-lease", req.Key, ut.unit.Spec.ID, req.Worker)
		c.releaseUnitLocked(ut, fmt.Sprintf("timed out on %s: %s", req.Worker, req.Err))
		if ut.phase == phaseFailed {
			return FailResponse{Status: StatusFailed}, nil
		}
		return FailResponse{Status: StatusReleased}, nil
	}
	ut.phase = phaseFailed
	ut.leaseID, ut.worker = "", ""
	ut.failure = &sweep.Failure{Unit: ut.unit, Err: fmt.Sprintf("worker %s: %s", req.Worker, req.Err)}
	c.cFailed.Inc()
	c.resolveOneLocked()
	c.logfSafe("fleet: unit %s (%s) failed permanently: %s", req.Key, ut.unit.Spec.ID, req.Err)
	return FailResponse{Status: StatusFailed}, nil
}

// Done is closed once every unit is resolved (done or permanently failed).
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Wait blocks until the sweep resolves or the timeout elapses (≤ 0 waits
// forever).
func (c *Coordinator) Wait(timeout time.Duration) error {
	if timeout <= 0 {
		<-c.doneCh
		return nil
	}
	select {
	case <-c.doneCh:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("fleet: sweep did not resolve within %s", timeout)
	}
}

// Summary is the end-of-sweep ledger.
type Summary struct {
	Total      int
	Reused     int
	Done       int
	Failed     int
	Leases     int64
	Reclaims   int64
	Releases   int64
	Duplicates int64
	Failures   []sweep.Failure
}

// Summary snapshots the ledger (valid mid-sweep too).
func (c *Coordinator) Summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Summary{
		Total:      len(c.units),
		Reused:     c.reused,
		Leases:     c.cLeases.Value(),
		Reclaims:   c.cReclaims.Value(),
		Releases:   c.cReleases.Value(),
		Duplicates: c.cDuplicates.Value(),
	}
	for _, ut := range c.units {
		switch ut.phase {
		case phaseDone:
			s.Done++
		case phaseFailed:
			s.Failed++
			if ut.failure != nil {
				s.Failures = append(s.Failures, *ut.failure)
			}
		}
	}
	return s
}

// Records returns every artifact the sweep holds (reused plus completed),
// in deterministic (shard, replica) order.
func (c *Coordinator) Records() []*sweep.Record {
	c.mu.Lock()
	out := append([]*sweep.Record(nil), c.records...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Replica < out[j].Replica
	})
	return out
}

// Close flushes and closes the store. Further completions are rejected.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.store != nil {
		return c.store.Close()
	}
	return nil
}

// Handler returns the coordinator's HTTP surface:
//
//	POST /lease      LeaseRequest → LeaseResponse
//	POST /heartbeat  HeartbeatRequest → HeartbeatResponse
//	POST /complete   CompleteRequest → CompleteResponse
//	POST /fail       FailRequest → FailResponse
//	GET  /metrics    Prometheus text of the rtopex_fleet_* registry
//	GET  /state.json machine-readable summary
//	GET  /           text status page (units, workers, leases, failures)
//
// Wrap it in obs.BearerAuth to require a fleet token.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	post := func(path string, serve func(body []byte) (any, error)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			body, err := readBody(r)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			resp, err := serve(body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(resp)
		})
	}
	post(LeasePath, func(body []byte) (any, error) {
		var req LeaseRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return c.Lease(req)
	})
	post(HeartbeatPath, func(body []byte) (any, error) {
		var req HeartbeatRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return c.Heartbeat(req)
	})
	post(CompletePath, func(body []byte) (any, error) {
		var req CompleteRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return c.Complete(req)
	})
	post(FailPath, func(body []byte) (any, error) {
		var req FailRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return c.Fail(req)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		_ = c.reg.WriteProm(w)
	})
	mux.HandleFunc(StatePath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.state())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		c.writeStatus(w)
	})
	return mux
}

// readBody drains a request under the same 64 MiB bound the obs wire codec
// enforces, so a stray client cannot balloon the coordinator.
func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	const limit = 64 << 20
	b, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if len(b) > limit {
		return nil, fmt.Errorf("fleet: request body exceeds %d bytes", limit)
	}
	return b, nil
}

// state is the machine-readable status document /state.json serves; the
// smoke script polls it to decide when to kill a worker.
type state struct {
	Protocol    int               `json:"protocol"`
	Total       int               `json:"total"`
	Pending     int               `json:"pending"`
	Leased      int               `json:"leased"`
	Done        int               `json:"done"`
	Failed      int               `json:"failed"`
	Reused      int               `json:"reused"`
	Reclaims    int64             `json:"reclaims"`
	Duplicates  int64             `json:"duplicates"`
	WorkerUnits map[string]int    `json:"worker_units"` // worker → currently leased units
	Workers     map[string]string `json:"workers"`      // worker → last-seen age
}

func (c *Coordinator) state() state {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	st := state{
		Protocol:    ProtocolVersion,
		Total:       len(c.units),
		Reused:      c.reused,
		Reclaims:    c.cReclaims.Value(),
		Duplicates:  c.cDuplicates.Value(),
		WorkerUnits: map[string]int{},
		Workers:     map[string]string{},
	}
	for _, ut := range c.units {
		switch ut.phase {
		case phasePending:
			st.Pending++
		case phaseLeased:
			st.Leased++
		case phaseDone:
			st.Done++
		case phaseFailed:
			st.Failed++
		}
	}
	now := c.now()
	for name, w := range c.workers {
		st.WorkerUnits[name] = w.leased
		st.Workers[name] = now.Sub(w.lastSeen).Truncate(time.Millisecond).String()
	}
	return st
}

func (c *Coordinator) writeStatus(w http.ResponseWriter) {
	st := c.state()
	c.mu.Lock()
	var leaseLines, failLines []string
	now := c.now()
	for _, ut := range c.units {
		switch ut.phase {
		case phaseLeased:
			leaseLines = append(leaseLines, fmt.Sprintf("  %-10s %-18s shard %-3d → %-20s expires in %s",
				ut.leaseID, ut.unit.Spec.ID, ut.unit.Shard, ut.worker, ut.expiry.Sub(now).Truncate(time.Millisecond)))
		case phaseFailed:
			msg := ""
			if ut.failure != nil {
				msg = ut.failure.Err
			}
			failLines = append(failLines, fmt.Sprintf("  %-18s %s", ut.unit.Spec.ID, msg))
		}
	}
	workers := make([]string, 0, len(c.workers))
	for name := range c.workers {
		workers = append(workers, name)
	}
	sort.Strings(workers)
	var workerLines []string
	for _, name := range workers {
		ws := c.workers[name]
		workerLines = append(workerLines, fmt.Sprintf("  %-24s leased %-3d completed %-4d last seen %s ago",
			name, ws.leased, ws.completions, now.Sub(ws.lastSeen).Truncate(time.Millisecond)))
	}
	c.mu.Unlock()

	fmt.Fprintf(w, "rtopex sweepd — %d units: %d done, %d failed, %d leased, %d pending (%d reused)\n",
		st.Total, st.Done, st.Failed, st.Leased, st.Pending, st.Reused)
	fmt.Fprintf(w, "leases: %d granted, %d reclaimed, %d released, %d duplicate completions\n\n",
		c.cLeases.Value(), st.Reclaims, c.cReleases.Value(), st.Duplicates)
	fmt.Fprintf(w, "workers (%d):\n", len(workerLines))
	for _, l := range workerLines {
		fmt.Fprintln(w, l)
	}
	if len(leaseLines) > 0 {
		fmt.Fprintf(w, "\nactive leases:\n")
		for _, l := range leaseLines {
			fmt.Fprintln(w, l)
		}
	}
	if len(failLines) > 0 {
		fmt.Fprintf(w, "\nfailed units:\n")
		for _, l := range failLines {
			fmt.Fprintln(w, l)
		}
	}
}
