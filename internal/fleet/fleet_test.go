package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"rtopex/internal/harness"
	"rtopex/internal/obs"
	"rtopex/internal/sweep"
)

// tinyOptions keeps fake units cheap while exercising seed derivation.
var tinyOptions = harness.Options{Subframes: 120, Samples: 3000, Seed: 11, Quick: true}

// tinyIDs is a small real-registry subset (the coordinator expands units
// from harness.Specs, so the ids must exist even under a fake runner).
var tinyIDs = []string{"fig1", "fig15", "table1"}

// fakeRun is a deterministic RunFunc: the table is a pure function of
// (id, options), so fleet and serial execution must emit identical bytes.
func fakeRun(id string, o harness.Options) (*harness.Table, error) {
	r := o.Resolve()
	tb := &harness.Table{ID: id, Title: "fake " + id, Columns: []string{"k", "v"}}
	tb.AddRow("seed", fmt.Sprintf("%d", r.Seed))
	tb.AddRow("subframes", fmt.Sprintf("%d", r.Subframes))
	return tb, nil
}

// fakeClock is an injectable coordinator clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// executeLease reproduces a lease's unit the way a worker would and returns
// its record's store line (no trailing newline).
func executeLease(t *testing.T, lease *WireLease) json.RawMessage {
	t.Helper()
	var spec harness.Spec
	for _, s := range harness.Specs() {
		if s.ID == lease.Experiment {
			spec = s
		}
	}
	if spec.ID == "" {
		t.Fatalf("lease for unknown experiment %q", lease.Experiment)
	}
	opts := lease.Config.Options()
	u := sweep.Unit{Spec: spec, Shard: lease.Shard, Replica: lease.Replica, Options: opts, Key: sweep.Key(lease.Experiment, opts.Resolve())}
	if u.Key != lease.Key {
		t.Fatalf("key mismatch: lease %s, local %s", lease.Key, u.Key)
	}
	rec, fail := sweep.ExecuteUnit(u, 0, fakeRun)
	if fail != nil {
		t.Fatalf("fake unit failed: %s", fail.Err)
	}
	line, err := rec.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	return json.RawMessage(bytes.TrimSuffix(line, []byte("\n")))
}

// serialLines computes what a serial sweep.Run of the spec would store:
// every unit executed in-process through the same ExecuteUnit path.
func serialLines(t *testing.T, spec sweep.Config) []string {
	t.Helper()
	spec.StorePath = ""
	units, err := sweep.Units(spec)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, u := range units {
		rec, fail := sweep.ExecuteUnit(u, 0, fakeRun)
		if fail != nil {
			t.Fatalf("unit %s failed: %s", u.Spec.ID, fail.Err)
		}
		line, err := rec.MarshalLine()
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, strings.TrimSuffix(string(line), "\n"))
	}
	sort.Strings(lines)
	return lines
}

func sortedStoreLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	sort.Strings(lines)
	return lines
}

// TestFleetStoreMatchesSerial is the tentpole guarantee at unit-test
// scale: a RunLocal fleet (several workers racing over loopback HTTP)
// writes a store byte-identical, modulo line order, to serial execution.
func TestFleetStoreMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "fleet.jsonl")
	spec := sweep.Config{IDs: tinyIDs, Options: tinyOptions, Replicas: 2, StorePath: storePath}

	res, err := RunLocal(Config{Spec: spec}, 3, WorkerConfig{Parallel: 2, RunFn: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Failed != 0 || res.Summary.Done != res.Summary.Total {
		t.Fatalf("summary %+v, want all done", res.Summary)
	}
	want := serialLines(t, spec)
	got := sortedStoreLines(t, storePath)
	if len(got) != len(want) {
		t.Fatalf("store has %d lines, serial produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("store line %d differs:\nfleet:  %s\nserial: %s", i, got[i], want[i])
		}
	}
	var completed int
	for _, w := range res.Workers {
		completed += w.Completed
	}
	if completed != res.Summary.Total {
		t.Fatalf("workers completed %d units, want %d", completed, res.Summary.Total)
	}
	if len(res.Records) != res.Summary.Total {
		t.Fatalf("Records holds %d, want %d", len(res.Records), res.Summary.Total)
	}
}

// TestDeadWorkerReleased covers the crash path: a worker takes a lease and
// dies; after the TTL the unit is reclaimed and re-leased; the replacement
// completes it; the zombie's late byte-identical delivery is deduped. The
// unit ends with exactly one record.
func TestDeadWorkerReleased(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{
		Spec:     sweep.Config{IDs: []string{"fig15"}, Options: tinyOptions},
		LeaseTTL: time.Second,
		Now:      clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r1, err := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "dead"})
	if err != nil || r1.Status != StatusLease {
		t.Fatalf("first lease: %v %+v", err, r1)
	}
	// "dead" never heartbeats. Before expiry, the unit is not re-leasable.
	clock.Advance(500 * time.Millisecond)
	if r, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "live"}); r.Status != StatusWait {
		t.Fatalf("pre-expiry lease got %q, want wait", r.Status)
	}
	clock.Advance(600 * time.Millisecond)
	r2, err := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "live"})
	if err != nil || r2.Status != StatusLease {
		t.Fatalf("post-expiry lease: %v %+v", err, r2)
	}
	if r2.Lease.Key != r1.Lease.Key || r2.Lease.ID == r1.Lease.ID {
		t.Fatalf("re-lease should cover the same unit under a new id: %+v vs %+v", r1.Lease, r2.Lease)
	}

	line := executeLease(t, r2.Lease)
	cr, err := c.Complete(CompleteRequest{Protocol: ProtocolVersion, Worker: "live", LeaseID: r2.Lease.ID, Record: line})
	if err != nil || cr.Status != StatusOK {
		t.Fatalf("completion: %v %+v", err, cr)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("sweep should be resolved")
	}

	// The zombie finishes too and delivers the identical bytes.
	zr, err := c.Complete(CompleteRequest{Protocol: ProtocolVersion, Worker: "dead", LeaseID: r1.Lease.ID, Record: line})
	if err != nil || zr.Status != StatusDuplicate {
		t.Fatalf("zombie completion: %v %+v, want duplicate", err, zr)
	}

	s := c.Summary()
	if s.Done != 1 || s.Failed != 0 || s.Reclaims != 1 || s.Duplicates != 1 || s.Leases != 2 {
		t.Fatalf("summary %+v", s)
	}
	if len(c.Records()) != 1 {
		t.Fatalf("%d records after crash+re-lease, want exactly 1", len(c.Records()))
	}
}

// TestZombieConflictingRecord pins the safety rail behind the dedup: a
// zombie delivering different bytes for an already-recorded key is an
// error, never a silent overwrite.
func TestZombieConflictingRecord(t *testing.T) {
	c, err := NewCoordinator(Config{Spec: sweep.Config{IDs: []string{"fig15"}, Options: tinyOptions}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "w"})
	if err != nil || r.Status != StatusLease {
		t.Fatalf("lease: %v %+v", err, r)
	}
	line := executeLease(t, r.Lease)
	if cr, err := c.Complete(CompleteRequest{Protocol: ProtocolVersion, Worker: "w", LeaseID: r.Lease.ID, Record: line}); err != nil || cr.Status != StatusOK {
		t.Fatalf("completion: %v %+v", err, cr)
	}
	// Same key, different table bytes.
	var rec sweep.Record
	if err := json.Unmarshal(line, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Table.Title = "tampered"
	forged, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(CompleteRequest{Protocol: ProtocolVersion, Worker: "zombie", LeaseID: r.Lease.ID, Record: forged}); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting zombie record accepted: %v", err)
	}
}

// TestHeartbeatExtendsLease: heartbeats within the TTL keep a slow unit
// leased; silence past the TTL reclaims it and later heartbeats for the
// stale id come back rejected.
func TestHeartbeatExtendsLease(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{
		Spec:     sweep.Config{IDs: []string{"fig15"}, Options: tinyOptions},
		LeaseTTL: time.Second,
		Now:      clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "slow"})
	if r.Status != StatusLease {
		t.Fatalf("lease status %q", r.Status)
	}
	id := r.Lease.ID
	// Two renewal cycles, each inside the TTL but past the original expiry.
	for i := 0; i < 2; i++ {
		clock.Advance(700 * time.Millisecond)
		hb, err := c.Heartbeat(HeartbeatRequest{Protocol: ProtocolVersion, Worker: "slow", LeaseIDs: []string{id}})
		if err != nil || len(hb.Rejected) != 0 {
			t.Fatalf("heartbeat %d: %v %+v", i, err, hb)
		}
		if lr, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "other"}); lr.Status != StatusWait {
			t.Fatalf("heartbeat did not hold the lease: poacher got %q", lr.Status)
		}
	}
	if s := c.Summary(); s.Reclaims != 0 {
		t.Fatalf("%d reclaims despite heartbeats", s.Reclaims)
	}
	// Now go silent past the TTL: the unit is reclaimed, and the stale
	// lease id is rejected on the next renewal attempt.
	clock.Advance(1100 * time.Millisecond)
	if lr, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "other"}); lr.Status != StatusLease {
		t.Fatalf("expired unit not re-leased: %q", lr.Status)
	}
	hb, err := c.Heartbeat(HeartbeatRequest{Protocol: ProtocolVersion, Worker: "slow", LeaseIDs: []string{id}})
	if err != nil || len(hb.Rejected) != 1 || hb.Rejected[0] != id {
		t.Fatalf("stale heartbeat: %v %+v, want %s rejected", err, hb, id)
	}
}

// TestAttemptCapFailsUnit: a unit whose leases keep expiring fails
// permanently on the MaxAttempts-th loss, resolving the sweep instead of
// spinning it forever.
func TestAttemptCapFailsUnit(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{
		Spec:        sweep.Config{IDs: []string{"fig15"}, Options: tinyOptions},
		LeaseTTL:    time.Second,
		MaxAttempts: 2,
		Now:         clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		r, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "flaky"})
		if r.Status != StatusLease {
			t.Fatalf("attempt %d: status %q", i+1, r.Status)
		}
		clock.Advance(1100 * time.Millisecond)
	}
	// The second expiry is observed by this request, which must see the
	// sweep resolved (unit failed at the cap), not grant a third lease.
	if r, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "flaky"}); r.Status != StatusDone {
		t.Fatalf("post-cap lease got %q, want done", r.Status)
	}
	if err := c.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Failed != 1 || len(s.Failures) != 1 || !s.Failures[0].TimedOut {
		t.Fatalf("summary %+v, want one timed-out failure", s)
	}
	if !strings.Contains(s.Failures[0].Err, "attempt cap") {
		t.Fatalf("failure %q does not mention the attempt cap", s.Failures[0].Err)
	}
}

// TestWorkerTimeoutReleasesThenCaps: a worker-reported unit timeout
// releases the unit for re-lease; once the attempt budget is spent the
// same report fails it permanently.
func TestWorkerTimeoutReleasesThenCaps(t *testing.T) {
	c, err := NewCoordinator(Config{
		Spec:        sweep.Config{IDs: []string{"fig15"}, Options: tinyOptions, Timeout: time.Minute},
		MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r1, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "w"})
	if r1.Lease.TimeoutMillis != time.Minute.Milliseconds() {
		t.Fatalf("lease timeout %dms, want the spec's", r1.Lease.TimeoutMillis)
	}
	fr, err := c.Fail(FailRequest{Protocol: ProtocolVersion, Worker: "w", LeaseID: r1.Lease.ID, Key: r1.Lease.Key, Err: "no result within 1m0s", TimedOut: true})
	if err != nil || fr.Status != StatusReleased {
		t.Fatalf("first timeout: %v %+v, want released", err, fr)
	}
	r2, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "w"})
	if r2.Status != StatusLease || r2.Lease.Key != r1.Lease.Key {
		t.Fatalf("released unit not re-leased: %+v", r2)
	}
	fr, err = c.Fail(FailRequest{Protocol: ProtocolVersion, Worker: "w", LeaseID: r2.Lease.ID, Key: r2.Lease.Key, Err: "no result within 1m0s", TimedOut: true})
	if err != nil || fr.Status != StatusFailed {
		t.Fatalf("capped timeout: %v %+v, want failed", err, fr)
	}
	if err := c.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	if s := c.Summary(); s.Releases != 2 || s.Failed != 1 {
		t.Fatalf("summary %+v, want 2 releases and 1 failure", s)
	}
}

// TestStaleFailIgnored: after a reclaim, the original holder's failure
// report must not clobber the current lease.
func TestStaleFailIgnored(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{
		Spec:     sweep.Config{IDs: []string{"fig15"}, Options: tinyOptions},
		LeaseTTL: time.Second,
		Now:      clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r1, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "old"})
	clock.Advance(1100 * time.Millisecond)
	r2, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "new"})
	if r2.Status != StatusLease {
		t.Fatalf("re-lease status %q", r2.Status)
	}
	fr, err := c.Fail(FailRequest{Protocol: ProtocolVersion, Worker: "old", LeaseID: r1.Lease.ID, Key: r1.Lease.Key, Err: "boom"})
	if err != nil || fr.Status != StatusIgnored {
		t.Fatalf("stale fail: %v %+v, want ignored", err, fr)
	}
	line := executeLease(t, r2.Lease)
	if cr, err := c.Complete(CompleteRequest{Protocol: ProtocolVersion, Worker: "new", LeaseID: r2.Lease.ID, Record: line}); err != nil || cr.Status != StatusOK {
		t.Fatalf("current holder's completion: %v %+v", err, cr)
	}
}

// TestPermanentFailure: non-timeout errors are terminal (the experiments
// are deterministic; retrying buys the same answer).
func TestPermanentFailure(t *testing.T) {
	c, err := NewCoordinator(Config{Spec: sweep.Config{IDs: []string{"fig15"}, Options: tinyOptions}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "w"})
	fr, err := c.Fail(FailRequest{Protocol: ProtocolVersion, Worker: "w", LeaseID: r.Lease.ID, Key: r.Lease.Key, Err: "panic: boom"})
	if err != nil || fr.Status != StatusFailed {
		t.Fatalf("fail: %v %+v", err, fr)
	}
	if err := c.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Failed != 1 || len(s.Failures) != 1 || s.Failures[0].TimedOut {
		t.Fatalf("summary %+v", s)
	}
	if !strings.Contains(s.Failures[0].Err, "panic: boom") || !strings.Contains(s.Failures[0].Err, "worker w") {
		t.Fatalf("failure %q lost the worker's error", s.Failures[0].Err)
	}
}

// TestProtocolVersionRejected: a version-skewed client is refused before
// any state changes.
func TestProtocolVersionRejected(t *testing.T) {
	c, err := NewCoordinator(Config{Spec: sweep.Config{IDs: []string{"fig15"}, Options: tinyOptions}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Lease(LeaseRequest{Protocol: ProtocolVersion + 1, Worker: "w"}); err == nil {
		t.Fatal("wrong protocol version accepted")
	}
	if s := c.Summary(); s.Leases != 0 {
		t.Fatalf("rejected request granted a lease: %+v", s)
	}
}

// TestCoordinatorResume: a second coordinator over the finished store
// reuses every record without leasing, and its store is unchanged — the
// same restart semantics sweep.Run's -resume has.
func TestCoordinatorResume(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "fleet.jsonl")
	spec := sweep.Config{IDs: tinyIDs, Options: tinyOptions, StorePath: storePath}

	res, err := RunLocal(Config{Spec: spec}, 2, WorkerConfig{RunFn: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	first := sortedStoreLines(t, storePath)
	if len(first) != res.Summary.Total {
		t.Fatalf("first pass stored %d lines for %d units", len(first), res.Summary.Total)
	}

	spec.Resume = true
	c, err := NewCoordinator(Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Reused != s.Total || s.Done != s.Total {
		t.Fatalf("resume summary %+v, want everything reused", s)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("fully-resumed sweep should be born resolved")
	}
	if r, _ := c.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "w"}); r.Status != StatusDone {
		t.Fatalf("resumed coordinator leased a unit: %+v", r)
	}
	if len(c.Records()) != s.Total {
		t.Fatalf("resumed coordinator holds %d records, want %d", len(c.Records()), s.Total)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if second := sortedStoreLines(t, storePath); len(second) != len(first) {
		t.Fatalf("resume rewrite changed the store: %d lines vs %d", len(second), len(first))
	} else {
		for i := range first {
			if second[i] != first[i] {
				t.Fatalf("resume rewrite changed line %d", i)
			}
		}
	}
}

// TestCoordinatorRestartMidSweep: a coordinator killed mid-sweep restarts
// with -resume, reuses the finished units and leases only the remainder;
// the merged store still matches serial execution.
func TestCoordinatorRestartMidSweep(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "fleet.jsonl")
	spec := sweep.Config{IDs: tinyIDs, Options: tinyOptions, StorePath: storePath}

	c1, err := NewCoordinator(Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	// Complete exactly one unit, then "crash" (close without resolving).
	r, _ := c1.Lease(LeaseRequest{Protocol: ProtocolVersion, Worker: "w"})
	if r.Status != StatusLease {
		t.Fatalf("lease status %q", r.Status)
	}
	if cr, err := c1.Complete(CompleteRequest{Protocol: ProtocolVersion, Worker: "w", LeaseID: r.Lease.ID, Record: executeLease(t, r.Lease)}); err != nil || cr.Status != StatusOK {
		t.Fatalf("completion: %v %+v", err, cr)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	spec.Resume = true
	res, err := RunLocal(Config{Spec: spec}, 2, WorkerConfig{RunFn: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Reused != 1 || res.Summary.Done != res.Summary.Total || res.Summary.Leases != int64(res.Summary.Total-1) {
		t.Fatalf("restart summary %+v, want 1 reused and the rest leased", res.Summary)
	}
	want := serialLines(t, spec)
	got := sortedStoreLines(t, storePath)
	if len(got) != len(want) {
		t.Fatalf("restarted store has %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restarted store line %d differs", i)
		}
	}
}

// TestRunLocalWithFaultyUnits drives the full worker loop (real loopback
// HTTP, bearer auth, heartbeats) against a runner that times out on one
// experiment: the unit is released, retried on fresh leases, and failed at
// the attempt cap while every other unit completes.
func TestRunLocalWithFaultyUnits(t *testing.T) {
	slowRun := func(id string, o harness.Options) (*harness.Table, error) {
		if id == "fig15" {
			time.Sleep(200 * time.Millisecond)
		}
		return fakeRun(id, o)
	}
	res, err := RunLocal(Config{
		Spec:        sweep.Config{IDs: tinyIDs, Options: tinyOptions, Timeout: 20 * time.Millisecond},
		MaxAttempts: 2,
	}, 2, WorkerConfig{
		AuthToken: "fleet-secret",
		RunFn:     slowRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Failed != 1 || s.Done != s.Total-1 {
		t.Fatalf("summary %+v, want exactly fig15 failed", s)
	}
	if len(s.Failures) != 1 || s.Failures[0].Unit.Spec.ID != "fig15" || !s.Failures[0].TimedOut {
		t.Fatalf("failures %+v", s.Failures)
	}
	if s.Releases != 1 {
		// First timeout releases; the second hits the cap (counted in
		// Releases too, by the Fail path's release counter).
		if s.Releases != 2 {
			t.Fatalf("releases %d, want the timeout re-lease cycle", s.Releases)
		}
	}
	var failed int
	for _, w := range res.Workers {
		failed += w.Failed
	}
	if failed != 2 {
		t.Fatalf("workers reported %d failures, want 2 (one per attempt)", failed)
	}
}

// TestWorkerRejectsWrongToken: a worker with the wrong bearer token is
// refused permanently (401 is a 4xx), without burning the retry budget.
func TestWorkerRejectsWrongToken(t *testing.T) {
	c, err := NewCoordinator(Config{Spec: sweep.Config{IDs: []string{"fig15"}, Options: tinyOptions}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: obs.BearerAuth("right-token", c.Handler())}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	attempts := 0
	_, err = RunWorker(WorkerConfig{
		Coordinator: ln.Addr().String(),
		Name:        "intruder",
		AuthToken:   "wrong-token",
		RunFn:       fakeRun,
		Retry: obs.RetryPolicy{
			Attempts: 5,
			Backoff:  time.Millisecond,
			Sleep:    func(time.Duration) { attempts++ },
		},
	})
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("wrong token: %v, want a 401 rejection", err)
	}
	if attempts != 0 {
		t.Fatalf("client retried a 401 %d times; 4xx must be permanent", attempts)
	}
	if s := c.Summary(); s.Leases != 0 {
		t.Fatalf("unauthenticated request reached the coordinator: %+v", s)
	}
}

// TestWorkerRefusesKeyMismatch: a lease whose key the local build cannot
// reproduce (version skew) is failed permanently, not executed.
func TestWorkerRefusesKeyMismatch(t *testing.T) {
	w := &worker{cfg: WorkerConfig{}, name: "w"}
	lease := &WireLease{
		ID:         "L1",
		Key:        "not-the-real-key",
		Experiment: "fig15",
		Config:     tinyOptions.Resolve(),
	}
	if _, err := w.unitFromLease(lease); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("key mismatch accepted: %v", err)
	}
	lease.Experiment = "no-such-experiment"
	if _, err := w.unitFromLease(lease); err == nil || !strings.Contains(err.Error(), "registry") {
		t.Fatalf("unknown experiment accepted: %v", err)
	}
}
