package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"rtopex/internal/harness"
	"rtopex/internal/obs"
	"rtopex/internal/sweep"
)

// WorkerConfig configures one worker process (or one in-process worker in
// RunLocal and tests).
type WorkerConfig struct {
	// Coordinator is the coordinator's address ("host:port" or a full
	// http:// URL).
	Coordinator string
	// Name identifies this worker in leases and on the status page; empty
	// derives a hostname-pid id (suffixed per in-process worker).
	Name string
	// Parallel is how many units run concurrently (≤ 0 means 1).
	Parallel int
	// AuthToken, when non-empty, is sent as a bearer Authorization header
	// with every request (the coordinator's -auth-token).
	AuthToken string
	// Retry is the request retry schedule — the same policy the obs push
	// client uses. The zero value means 5 attempts from 100ms backoff.
	Retry obs.RetryPolicy
	// Client substitutes the HTTP client (tests); nil uses a 10s-timeout
	// client.
	Client *http.Client
	// Logf, when non-nil, receives worker log lines.
	Logf func(format string, args ...any)
	// RunFn substitutes the experiment runner (tests); nil means
	// harness.Run.
	RunFn sweep.RunFunc
	// Obs, when non-nil, receives per-worker unit counters; Push, when
	// non-nil (requires Obs), streams that registry to an obscollect
	// collector after every unit, with a final push at exit — the same
	// passthrough sweep.Run offers.
	Obs  *obs.Registry
	Push *obs.Pusher

	// heartbeatEvery overrides the TTL/3 heartbeat cadence (tests).
	heartbeatEvery time.Duration
}

// WorkerResult summarizes one worker's sweep participation.
type WorkerResult struct {
	Completed  int // units finished and accepted
	Duplicates int // completions the coordinator already had
	Failed     int // units reported failed (incl. timeouts)
}

// worker is the runtime state behind RunWorker.
type worker struct {
	cfg    WorkerConfig
	base   string
	client *http.Client
	name   string

	mu     sync.Mutex
	held   map[string]bool // lease ids to heartbeat
	done   bool            // some slot saw StatusDone
	result WorkerResult
	err    error
}

// RunWorker participates in a fleet sweep until the coordinator reports
// done: lease, execute, complete (or fail), repeat, with Parallel units in
// flight and a background heartbeat keeping every held lease alive. It
// returns when the sweep is resolved or a request fails permanently
// (auth rejection, protocol skew, coordinator gone past the retry budget).
func RunWorker(cfg WorkerConfig) (*WorkerResult, error) {
	base := cfg.Coordinator
	if base == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator address")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	name := cfg.Name
	if name == "" {
		name = obs.DefaultSource().ID
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	if cfg.Retry.Attempts == 0 {
		cfg.Retry.Attempts = 5
	}
	if cfg.Retry.Logf == nil {
		cfg.Retry.Logf = cfg.Logf
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Push != nil && cfg.Obs == nil {
		return nil, fmt.Errorf("fleet: WorkerConfig.Push requires Obs (the registry being pushed)")
	}

	w := &worker{cfg: cfg, base: base, client: client, name: name, held: map[string]bool{}}

	stopHB := make(chan struct{})
	var hbWG sync.WaitGroup

	var slotWG sync.WaitGroup
	for i := 0; i < cfg.Parallel; i++ {
		slotWG.Add(1)
		go func() {
			defer slotWG.Done()
			w.slotLoop(stopHB, &hbWG)
		}()
	}
	slotWG.Wait()
	close(stopHB)
	hbWG.Wait()

	if w.cfg.Push != nil {
		if err := w.cfg.Push.PushFinal(w.cfg.Obs); err != nil && w.err == nil {
			w.err = err
		}
	}
	if w.err != nil {
		return &w.result, w.err
	}
	return &w.result, nil
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

func (w *worker) failed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err != nil
}

func (w *worker) isDone() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.done
}

func (w *worker) setErr(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// slotLoop is one unit-execution slot: lease, run, report, until done.
func (w *worker) slotLoop(stopHB chan struct{}, hbWG *sync.WaitGroup) {
	hbStarted := false
	for !w.failed() {
		var resp LeaseResponse
		if err := w.post(LeasePath, LeaseRequest{Protocol: ProtocolVersion, Worker: w.name}, &resp); err != nil {
			// Once any slot has seen the sweep resolve, a vanishing
			// coordinator is a normal shutdown, not a failure.
			if w.isDone() {
				return
			}
			w.setErr(err)
			return
		}
		switch resp.Status {
		case StatusDone:
			w.mu.Lock()
			w.done = true
			w.mu.Unlock()
			return
		case StatusWait:
			retry := time.Duration(resp.RetryMillis) * time.Millisecond
			if retry <= 0 {
				retry = 200 * time.Millisecond
			}
			time.Sleep(retry)
			continue
		case StatusLease:
			// Fall through.
		default:
			w.setErr(fmt.Errorf("fleet: coordinator returned unknown lease status %q", resp.Status))
			return
		}
		lease := resp.Lease
		if lease == nil {
			w.setErr(fmt.Errorf("fleet: lease response without lease"))
			return
		}
		if !hbStarted {
			// The heartbeat cadence comes from the first lease's TTL; the
			// coordinator uses one TTL for the whole sweep.
			every := w.cfg.heartbeatEvery
			if every <= 0 {
				every = time.Duration(lease.TTLMillis) * time.Millisecond / 3
			}
			if every <= 0 {
				every = time.Second
			}
			hbWG.Add(1)
			go w.heartbeatLoop(every, stopHB, hbWG)
			hbStarted = true
		}
		w.runLease(lease)
	}
}

// runLease executes one leased unit and reports the outcome.
func (w *worker) runLease(lease *WireLease) {
	unit, err := w.unitFromLease(lease)
	if err != nil {
		// Version skew (unknown experiment or key mismatch): permanent.
		w.logf("fleet: refusing lease %s: %v", lease.ID, err)
		w.reportFail(lease, err.Error(), false)
		return
	}
	w.mu.Lock()
	w.held[lease.ID] = true
	w.mu.Unlock()
	timeout := time.Duration(lease.TimeoutMillis) * time.Millisecond
	rec, fail := sweep.ExecuteUnit(unit, timeout, w.cfg.RunFn)
	w.mu.Lock()
	delete(w.held, lease.ID)
	w.mu.Unlock()

	if fail != nil {
		w.logf("fleet: unit %s (%s) failed: %s", unit.Key, unit.Spec.ID, fail.Err)
		w.reportFail(lease, fail.Err, fail.TimedOut)
	} else {
		w.reportComplete(lease, rec)
	}
	if rec != nil && w.cfg.Obs != nil {
		w.cfg.Obs.Counter("rtopex_fleet_worker_units_total").Inc()
		harness.PublishTable(w.cfg.Obs, rec.Table)
	}
	// Per-unit pushes are best-effort, exactly like sweep.Run's: the next
	// push carries a superset of this one's state.
	if w.cfg.Push != nil {
		_ = w.cfg.Push.Push(w.cfg.Obs)
	}
}

// unitFromLease rebuilds the sweep.Unit a lease names, verifying the local
// build derives the same artifact key the coordinator holds.
func (w *worker) unitFromLease(lease *WireLease) (sweep.Unit, error) {
	var spec harness.Spec
	found := false
	for _, s := range harness.Specs() {
		if s.ID == lease.Experiment {
			spec, found = s, true
			break
		}
	}
	if !found {
		return sweep.Unit{}, fmt.Errorf("experiment %q not in this worker's registry (version skew?)", lease.Experiment)
	}
	opts := lease.Config.Options()
	key := sweep.Key(lease.Experiment, opts.Resolve())
	if key != lease.Key {
		return sweep.Unit{}, fmt.Errorf("unit key mismatch: coordinator %s, local %s (version skew)", lease.Key, key)
	}
	return sweep.Unit{
		Spec:    spec,
		Shard:   lease.Shard,
		Replica: lease.Replica,
		Options: opts,
		Key:     key,
	}, nil
}

func (w *worker) reportComplete(lease *WireLease, rec *sweep.Record) {
	line, err := rec.MarshalLine()
	if err != nil {
		w.setErr(err)
		return
	}
	var resp CompleteResponse
	err = w.post(CompletePath, CompleteRequest{
		Protocol: ProtocolVersion,
		Worker:   w.name,
		LeaseID:  lease.ID,
		Record:   json.RawMessage(bytes.TrimSuffix(line, []byte("\n"))),
	}, &resp)
	if err != nil {
		// An undeliverable result is this worker's fatal error: the unit
		// will be re-leased after TTL, but this process has nothing left
		// to contribute if the coordinator won't talk to it.
		w.setErr(err)
		return
	}
	w.mu.Lock()
	if resp.Status == StatusDuplicate {
		w.result.Duplicates++
	} else {
		w.result.Completed++
	}
	w.mu.Unlock()
}

func (w *worker) reportFail(lease *WireLease, msg string, timedOut bool) {
	var resp FailResponse
	err := w.post(FailPath, FailRequest{
		Protocol: ProtocolVersion,
		Worker:   w.name,
		LeaseID:  lease.ID,
		Key:      lease.Key,
		Err:      msg,
		TimedOut: timedOut,
	}, &resp)
	if err != nil {
		w.setErr(err)
		return
	}
	w.mu.Lock()
	w.result.Failed++
	w.mu.Unlock()
}

// heartbeatLoop renews every held lease until the worker stops. Rejected
// ids (reclaimed or completed elsewhere) are dropped from the set; the
// in-flight computation continues — its completion is deduped centrally.
func (w *worker) heartbeatLoop(every time.Duration, stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.mu.Lock()
			ids := make([]string, 0, len(w.held))
			for id := range w.held {
				ids = append(ids, id)
			}
			w.mu.Unlock()
			if len(ids) == 0 {
				continue
			}
			var resp HeartbeatResponse
			if err := w.post(HeartbeatPath, HeartbeatRequest{
				Protocol: ProtocolVersion, Worker: w.name, LeaseIDs: ids,
			}, &resp); err != nil {
				w.logf("fleet: heartbeat failed: %v", err)
				continue
			}
			if len(resp.Rejected) > 0 {
				w.logf("fleet: %d lease(s) no longer held (%v)", len(resp.Rejected), resp.Rejected)
				w.mu.Lock()
				for _, id := range resp.Rejected {
					delete(w.held, id)
				}
				w.mu.Unlock()
			}
		}
	}
}

// post sends one JSON request under the retry policy. 4xx responses are
// permanent (auth/protocol/validation rejections do not improve by
// resending); transport errors and 5xx retry with backoff.
func (w *worker) post(path string, reqBody any, out any) error {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	url := w.base + path
	return w.cfg.Retry.Do("fleet: "+w.name+" POST "+url, func() error {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return obs.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		obs.AuthHeader(req, w.cfg.AuthToken)
		resp, err := w.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			err := fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
			if resp.StatusCode >= 400 && resp.StatusCode < 500 {
				return obs.Permanent(err)
			}
			return err
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}
