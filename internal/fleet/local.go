package fleet

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"rtopex/internal/obs"
	"rtopex/internal/sweep"
)

// LocalResult is what RunLocal hands back: the coordinator's ledger plus
// the artifacts, ready for rendering or a baseline gate.
type LocalResult struct {
	Summary Summary
	Records []*sweep.Record
	Workers []*WorkerResult
	Wall    time.Duration
}

// RunLocal runs a coordinator and n in-process workers over a real
// loopback HTTP listener — the single-machine form of a fleet sweep, the
// harness the fault tests drive, and a quick way to check a spec before
// renting a fleet. worker is the per-worker template; its Coordinator and
// Name are filled in per worker (w0, w1, …). The coordinator's auth token
// (if any) must already be set in worker.AuthToken; RunLocal wraps the
// handler in obs.BearerAuth with that token so the loopback path exercises
// auth too.
func RunLocal(cfg Config, n int, worker WorkerConfig) (*LocalResult, error) {
	if n <= 0 {
		n = 1
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: obs.BearerAuth(worker.AuthToken, coord.Handler())}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	start := time.Now()
	results := make([]*WorkerResult, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		wcfg := worker
		wcfg.Coordinator = ln.Addr().String()
		if wcfg.Name == "" {
			wcfg.Name = fmt.Sprintf("w%d", i)
		} else {
			wcfg.Name = fmt.Sprintf("%s-%d", wcfg.Name, i)
		}
		go func() {
			results[i], errs[i] = RunWorker(wcfg)
			done <- i
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	var firstErr error
	for _, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	res := &LocalResult{
		Summary: coord.Summary(),
		Records: coord.Records(),
		Workers: results,
		Wall:    time.Since(start),
	}
	if err := coord.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return res, firstErr
}
