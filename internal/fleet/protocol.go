// Package fleet distributes a sweep across worker processes: a
// coordinator expands a sweep spec into the same (experiment × replica)
// units sweep.Run schedules, leases them to workers over HTTP, renews
// leases via heartbeat, re-leases units whose worker dies or goes silent,
// and funnels every finished unit's artifact record through the same
// content-hash-deduping store ingest that -resume uses — so a fleet
// sweep's JSON-lines store is byte-identical (modulo line order) to a
// serial sweep.Run of the same spec, and a crashed-and-re-leased unit
// yields exactly one record.
//
// The protocol (JSON over HTTP, versioned by ProtocolVersion) and its
// TTL/heartbeat rules are documented in internal/fleet/README.md.
package fleet

import (
	"encoding/json"

	"rtopex/internal/harness"
)

// ProtocolVersion tags the lease wire protocol. A coordinator rejects
// requests stamped with a different version (HTTP 400, which clients treat
// as permanent): seeds, unit keys and artifact bytes must all be computed
// by the same code on both sides, so a version-skewed worker must not be
// allowed to contribute records.
const ProtocolVersion = 1

// Endpoint paths of the coordinator's HTTP surface.
const (
	LeasePath     = "/lease"      // POST LeaseRequest → LeaseResponse
	HeartbeatPath = "/heartbeat"  // POST HeartbeatRequest → HeartbeatResponse
	CompletePath  = "/complete"   // POST CompleteRequest → CompleteResponse
	FailPath      = "/fail"       // POST FailRequest → FailResponse
	StatePath     = "/state.json" // GET coordinator state summary
)

// LeaseRequest asks the coordinator for one unit to execute.
type LeaseRequest struct {
	Protocol int    `json:"protocol"`
	Worker   string `json:"worker"`
}

// Lease statuses a LeaseResponse can carry.
const (
	StatusLease = "lease" // a unit was granted
	StatusWait  = "wait"  // nothing leasable now; retry after RetryMillis
	StatusDone  = "done"  // every unit is resolved; the worker may exit
)

// WireLease is one granted unit: everything a worker needs to reproduce
// the unit bit-for-bit (the resolved options embed the derived seed) plus
// the lease's liveness contract.
type WireLease struct {
	// ID names this grant; heartbeats, completions and failures quote it.
	ID string `json:"id"`
	// Key is the unit's artifact key. The worker recomputes it locally and
	// refuses the lease on mismatch — the cheap cross-version guard.
	Key        string                  `json:"key"`
	Experiment string                  `json:"experiment"`
	Shard      int                     `json:"shard"`
	Replica    int                     `json:"replica,omitempty"`
	Config     harness.ResolvedOptions `json:"config"`
	// TTLMillis is the lease's time-to-live: a worker must heartbeat well
	// inside it (the client heartbeats every TTL/3) or the unit is
	// reclaimed and re-leased.
	TTLMillis int64 `json:"ttl_ms"`
	// TimeoutMillis, when > 0, bounds the unit's compute; a worker reports
	// a timed-out unit as failed with TimedOut set, releasing the unit for
	// re-lease.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	Status      string     `json:"status"`
	Lease       *WireLease `json:"lease,omitempty"`
	RetryMillis int64      `json:"retry_ms,omitempty"`
}

// HeartbeatRequest renews every lease the worker still holds.
type HeartbeatRequest struct {
	Protocol int      `json:"protocol"`
	Worker   string   `json:"worker"`
	LeaseIDs []string `json:"lease_ids"`
}

// HeartbeatResponse lists the lease ids the coordinator no longer honors
// (expired and reclaimed, or completed): the worker drops them from its
// heartbeat set. Work already in flight may still be completed — the
// coordinator dedups by content hash.
type HeartbeatResponse struct {
	Rejected []string `json:"rejected,omitempty"`
}

// CompleteRequest delivers one finished unit's artifact record (the
// sweep.Record JSON, exactly the store line bytes modulo whitespace).
type CompleteRequest struct {
	Protocol int             `json:"protocol"`
	Worker   string          `json:"worker"`
	LeaseID  string          `json:"lease_id"`
	Record   json.RawMessage `json:"record"`
}

// Complete statuses.
const (
	StatusOK        = "ok"        // record accepted and stored
	StatusDuplicate = "duplicate" // unit already had a byte-identical record
)

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	Status string `json:"status"`
}

// FailRequest reports a unit the worker could not finish.
type FailRequest struct {
	Protocol int    `json:"protocol"`
	Worker   string `json:"worker"`
	LeaseID  string `json:"lease_id"`
	Key      string `json:"key"`
	Err      string `json:"err"`
	// TimedOut marks a compute-budget expiry: the unit is released for
	// re-lease (until the attempt cap) rather than failed permanently.
	TimedOut bool `json:"timed_out,omitempty"`
}

// Fail statuses.
const (
	StatusFailed   = "failed"   // recorded as a permanent unit failure
	StatusReleased = "released" // unit returned to the pending queue
	StatusIgnored  = "ignored"  // stale report (unit already resolved)
)

// FailResponse reports what the coordinator did with the failure.
type FailResponse struct {
	Status string `json:"status"`
}
