package phy

import (
	"fmt"
	"math"

	"rtopex/internal/bits"
	"rtopex/internal/fft"
	"rtopex/internal/modulation"
	"rtopex/internal/sequence"
	"rtopex/internal/turbo"
)

// Transmitter synthesizes one PUSCH subframe of baseband samples from a
// transport block, for driving the receiver and the C-RAN testbed emulation.
type Transmitter struct {
	cfg    Config
	layout *codingLayout
	plan   *fft.Plan
	pilot  []complex128
}

// NewTransmitter validates the configuration and precomputes the coding
// layout, FFT plan and pilot sequence.
func NewTransmitter(cfg Config) (*Transmitter, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	layout, err := newCodingLayout(cfg)
	if err != nil {
		return nil, err
	}
	plan, err := fft.NewPlan(cfg.Bandwidth.FFTSize)
	if err != nil {
		return nil, err
	}
	return &Transmitter{
		cfg:    cfg,
		layout: layout,
		plan:   plan,
		pilot:  pilotSequence(cfg.CellID, cfg.Bandwidth.Subcarriers()),
	}, nil
}

// TBS returns the transport block size in bits.
func (tx *Transmitter) TBS() int { return tx.layout.tbs }

// CodeBlocks returns the number of turbo code blocks C.
func (tx *Transmitter) CodeBlocks() int { return tx.layout.seg.C }

// Transmit encodes payload (TBS bits, 0/1 values) into one subframe of
// baseband samples at redundancy version 0.
func (tx *Transmitter) Transmit(payload []byte) ([]complex128, error) {
	return tx.TransmitRV(payload, 0)
}

// TransmitRV encodes payload at the given redundancy version (0..3) — the
// HARQ retransmission path: each rv starts bit selection at a different
// point of the circular buffer, so retransmissions carry fresh parity
// (incremental redundancy).
func (tx *Transmitter) TransmitRV(payload []byte, rv int) ([]complex128, error) {
	if len(payload) != tx.layout.tbs {
		return nil, fmt.Errorf("phy: payload %d bits, want TBS %d", len(payload), tx.layout.tbs)
	}
	if rv < 0 || rv > 3 {
		return nil, fmt.Errorf("phy: redundancy version %d out of 0..3", rv)
	}
	codeword, err := tx.encodeCodeword(payload, rv)
	if err != nil {
		return nil, err
	}
	// Scramble.
	scr := sequence.NewScrambler(sequence.PUSCHInit(tx.cfg.RNTI, 0, tx.cfg.Subframe, tx.cfg.CellID), len(codeword))
	scr.Apply(codeword)
	// Modulate: G/Qm symbols = 12 data symbols × M subcarriers.
	return tx.buildWaveform(codeword)
}

// encodeCodeword runs CRC attachment, segmentation, turbo encoding and rate
// matching at the given redundancy version, returning G codeword bits.
func (tx *Transmitter) encodeCodeword(payload []byte, rv int) ([]byte, error) {
	tb := bits.AppendCRC(append([]byte(nil), payload...), bits.CRC24A(payload), 24)
	blocks, err := tx.layout.seg.Split(tb)
	if err != nil {
		return nil, err
	}
	codeword := make([]byte, 0, tx.layout.g)
	for r, blk := range blocks {
		streams, err := turbo.EncodeStreams(blk)
		if err != nil {
			return nil, err
		}
		rm, err := turbo.NewRateMatcher(len(blk))
		if err != nil {
			return nil, err
		}
		matched, err := rm.Match(streams, tx.layout.es[r], rv)
		if err != nil {
			return nil, err
		}
		codeword = append(codeword, matched...)
	}
	return codeword, nil
}

// buildWaveform maps the codeword onto the SC-FDMA subframe.
func (tx *Transmitter) buildWaveform(codeword []byte) ([]complex128, error) {
	bw := tx.cfg.Bandwidth
	m := bw.Subcarriers()
	n := bw.FFTSize
	syms := modulation.Map(tx.layout.scheme, codeword)
	if len(syms) != m*len(dataSymbolIndices) {
		return nil, fmt.Errorf("phy: %d modulation symbols for %d REs", len(syms), m*len(dataSymbolIndices))
	}

	out := make([]complex128, 0, bw.SamplesPerSubframe())
	sqrtM := math.Sqrt(float64(m))
	sqrtN := math.Sqrt(float64(n))
	dataIdx := 0
	for l := 0; l < 14; l++ {
		grid := make([]complex128, n)
		switch l {
		case dmrsSymbol1, dmrsSymbol2:
			for k := 0; k < m; k++ {
				grid[subcarrierBin(k, m, n)] = tx.pilot[k]
			}
		default:
			// SC-FDMA transform precoding: DFT of the symbol's M
			// constellation points, normalized to unit subcarrier power.
			block := syms[dataIdx*m : (dataIdx+1)*m]
			pre := fft.DFT(block)
			for k := 0; k < m; k++ {
				grid[subcarrierBin(k, m, n)] = pre[k] / complex(sqrtM, 0)
			}
			dataIdx++
		}
		// OFDM modulation with √N scaling so the receiver's FFT/√N
		// recovers unit-power subcarriers.
		tdom := make([]complex128, n)
		copy(tdom, grid)
		tx.plan.Inverse(tdom)
		for i := range tdom {
			tdom[i] *= complex(sqrtN, 0)
		}
		cp := bw.CPLen(l)
		out = append(out, tdom[n-cp:]...)
		out = append(out, tdom...)
	}
	return out, nil
}
