package phy

import (
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/stats"
)

func TestTransmitRVValidation(t *testing.T) {
	tx, _ := NewTransmitter(testConfig(5, 1))
	p := make([]byte, tx.TBS())
	if _, err := tx.TransmitRV(p, 4); err == nil {
		t.Fatal("rv=4 accepted")
	}
	if _, err := tx.TransmitRV(p, -1); err == nil {
		t.Fatal("rv=-1 accepted")
	}
}

func TestRedundancyVersionsDiffer(t *testing.T) {
	tx, _ := NewTransmitter(testConfig(21, 1))
	r := stats.NewRNG(1)
	p := make([]byte, tx.TBS())
	bits.RandomBits(p, r.Uint64)
	w0, err := tx.TransmitRV(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := tx.TransmitRV(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range w0 {
		if w0[i] != w2[i] {
			diff++
		}
	}
	if diff < len(w0)/4 {
		t.Fatalf("rv 0 and 2 waveforms differ in only %d/%d samples", diff, len(w0))
	}
}

func TestEachRVDecodesStandalone(t *testing.T) {
	// At a moderate code rate every redundancy version is self-decodable
	// at high SNR.
	cfg := testConfig(10, 2) // QPSK, rate ~0.6
	tx, _ := NewTransmitter(cfg)
	r := stats.NewRNG(2)
	p := make([]byte, tx.TBS())
	bits.RandomBits(p, r.Uint64)
	for _, rv := range RVSequence {
		wave, err := tx.TransmitRV(p, rv)
		if err != nil {
			t.Fatal(err)
		}
		ch, _ := channel.New(30, 2, uint64(10+rv))
		iq, _ := ch.Apply(wave)
		h, err := NewHARQReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Receive(iq, ch.N0(), rv)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK || bits.HammingDistance(res.Payload, p) != 0 {
			t.Fatalf("rv=%d did not decode standalone at 30 dB", rv)
		}
	}
}

// harqTrial runs up to maxTx HARQ rounds at one SNR and reports how many
// transmissions the decode needed (0 = never decoded).
func harqTrial(t *testing.T, cfg Config, snrDB float64, maxTx int, seed uint64) int {
	t.Helper()
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(seed)
	p := make([]byte, tx.TBS())
	bits.RandomBits(p, r.Uint64)
	h, err := NewHARQReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(snrDB, cfg.Antennas, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < maxTx; n++ {
		rv := RVSequence[n%len(RVSequence)]
		wave, err := tx.TransmitRV(p, rv)
		if err != nil {
			t.Fatal(err)
		}
		iq, _ := ch.Apply(wave)
		res, err := h.Receive(iq, ch.N0(), rv)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK {
			if bits.HammingDistance(res.Payload, p) != 0 {
				t.Fatal("HARQ CRC passed on corrupted payload")
			}
			return n + 1
		}
	}
	return 0
}

func TestHARQIncrementalRedundancyGain(t *testing.T) {
	// Pick an SNR where the first transmission fails but IR combining
	// succeeds within the 4-rv cycle.
	cfg := testConfig(17, 2) // 16-QAM, rate ~0.64
	cfg.MaxIterations = 6
	succeededLater := false
	for seed := uint64(100); seed < 106; seed++ {
		n := harqTrial(t, cfg, 5.0, 4, seed)
		if n == 1 {
			continue // channel got lucky; try another seed
		}
		if n > 1 {
			succeededLater = true
			break
		}
	}
	if !succeededLater {
		t.Fatal("IR combining never rescued a failed first transmission")
	}
}

func TestHARQChaseCombiningGain(t *testing.T) {
	// Repeating rv=0 adds +3 dB per repeat: a link that fails single-shot
	// at low SNR must close after a few repeats.
	cfg := testConfig(13, 1)
	cfg.MaxIterations = 6
	tx, _ := NewTransmitter(cfg)
	r := stats.NewRNG(3)
	p := make([]byte, tx.TBS())
	bits.RandomBits(p, r.Uint64)
	h, _ := NewHARQReceiver(cfg)
	ch, _ := channel.New(2, 1, 4) // far below the single-shot threshold
	decodedAt := 0
	for n := 1; n <= 6; n++ {
		wave, _ := tx.TransmitRV(p, 0)
		iq, _ := ch.Apply(wave)
		res, err := h.Receive(iq, ch.N0(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if n == 1 && res.OK {
			t.Skip("single shot decoded at 2 dB — seed too lucky")
		}
		if res.OK {
			decodedAt = n
			break
		}
	}
	if decodedAt == 0 {
		t.Fatal("chase combining never closed the link")
	}
	if h.Transmissions != decodedAt {
		t.Fatalf("transmission count %d, want %d", h.Transmissions, decodedAt)
	}
}

func TestHARQReset(t *testing.T) {
	cfg := testConfig(13, 1)
	h, _ := NewHARQReceiver(cfg)
	tx, _ := NewTransmitter(cfg)
	r := stats.NewRNG(5)
	p1 := make([]byte, tx.TBS())
	bits.RandomBits(p1, r.Uint64)
	ch, _ := channel.New(30, 1, 6)
	wave, _ := tx.TransmitRV(p1, 0)
	iq, _ := ch.Apply(wave)
	if _, err := h.Receive(iq, ch.N0(), 0); err != nil {
		t.Fatal(err)
	}
	// Without Reset, a different payload would combine against stale soft
	// bits; with Reset it decodes cleanly.
	h.Reset()
	if h.Transmissions != 0 {
		t.Fatal("Reset did not clear the transmission count")
	}
	p2 := make([]byte, tx.TBS())
	bits.RandomBits(p2, r.Uint64)
	wave2, _ := tx.TransmitRV(p2, 0)
	iq2, _ := ch.Apply(wave2)
	res, err := h.Receive(iq2, ch.N0(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || bits.HammingDistance(res.Payload, p2) != 0 {
		t.Fatal("decode after Reset failed")
	}
}

func TestHARQRejectsBadRV(t *testing.T) {
	cfg := testConfig(5, 1)
	h, _ := NewHARQReceiver(cfg)
	iq := [][]complex128{make([]complex128, cfg.Bandwidth.SamplesPerSubframe())}
	if _, err := h.Receive(iq, 0.01, 7); err == nil {
		t.Fatal("rv=7 accepted")
	}
}

func TestSoftBitsLength(t *testing.T) {
	cfg := testConfig(21, 2)
	tx, _ := NewTransmitter(cfg)
	rx, _ := NewReceiver(cfg)
	p := make([]byte, tx.TBS())
	wave, _ := tx.Transmit(p)
	ch, _ := channel.New(30, 2, 7)
	iq, _ := ch.Apply(wave)
	llrs, err := rx.SoftBits(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := lteCodewordBits(cfg)
	if len(llrs) != g {
		t.Fatalf("%d soft bits, want %d", len(llrs), g)
	}
}

func lteCodewordBits(cfg Config) (int, error) {
	l, err := newCodingLayout(cfg)
	if err != nil {
		return 0, err
	}
	return l.g, nil
}
