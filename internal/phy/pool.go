package phy

import (
	"runtime"
	"sync/atomic"
)

// Pool executes the subtasks of a pipeline stage on a bounded set of
// persistent workers. It implements the paper's parallel subtask model: the
// subtasks of one stage are mutually independent (per antenna-symbol FFT,
// per antenna channel estimate, per data-symbol demod, per code-block
// decode), so they fan out across workers, and Run's return is the stage
// barrier that enforces Fig. 5's precedence constraint.
//
// The pool keeps workers parked between stages instead of spawning
// goroutines per subtask — at one stage every ~100 µs, goroutine churn
// would otherwise dominate the fan-out cost. The calling goroutine
// participates in the work, so a 1-worker pool degenerates to the serial
// loop with no synchronization at all. Run itself does not allocate.
//
// A single Pool can execute stages for several subframes at once: each
// concurrent caller drives its own Lane, and the shared workers drain one
// work queue, so an idle moment in one subframe's stage is spent on
// another's — the work-conserving core of the paper's scheduling argument.
type Pool struct {
	workers int
	work    chan poolTask
	stop    chan struct{} // closed by Close
	closed  atomic.Bool
	main    Lane // the lane Run uses
}

// poolTask is one queued subtask tagged with the stage barrier it belongs to.
type poolTask struct {
	f  func()
	ln *Lane
}

// Lane is one caller's stage barrier on a shared Pool. RunOn calls on
// distinct lanes may run concurrently; a single lane must only be driven by
// one goroutine at a time. The zero Lane is not usable — get one from
// NewLane.
type Lane struct {
	pending atomic.Int64  // subtasks of the lane's current stage not yet finished
	done    chan struct{} // barrier: signalled when pending hits zero
}

// poolQueueCap bounds the queued subtasks across all lanes. The largest
// stage is FFT with antennas × symbols subtasks (56 at 4 antennas); even a
// deep cross-subframe pipeline stays well under the cap, so sends from
// RunOn all but never block.
const poolQueueCap = 256

// NewPool builds an execution pool with the given concurrency. workers <= 0
// selects GOMAXPROCS. The pool spawns workers-1 goroutines; the caller of
// Run is the remaining worker.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		work:    make(chan poolTask, poolQueueCap),
		stop:    make(chan struct{}),
	}
	p.main.done = make(chan struct{}, 1)
	for i := 1; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's concurrency (including the calling goroutine).
func (p *Pool) Workers() int { return p.workers }

// NewLane returns a fresh stage barrier for use with RunOn. Lanes are cheap;
// give each concurrent pipeline driver its own.
func (p *Pool) NewLane() *Lane {
	return &Lane{done: make(chan struct{}, 1)}
}

// Run executes every subtask of the stage and returns when all completed —
// the stage barrier. Subtasks run concurrently on up to Workers()
// goroutines; they must be mutually independent. Run must not be called
// concurrently with itself on the same Pool; concurrent callers use RunOn
// with private lanes.
func (p *Pool) Run(subtasks []func()) {
	p.RunOn(&p.main, subtasks)
}

// RunOn is Run with an explicit stage barrier, so several goroutines can
// drive stages through one shared Pool concurrently. While waiting for its
// own stage, the caller helps execute whatever is queued — including other
// lanes' subtasks — so no worker (caller or pooled) idles while any lane has
// runnable work.
func (p *Pool) RunOn(ln *Lane, subtasks []func()) {
	n := len(subtasks)
	if n == 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for _, sub := range subtasks {
			sub()
		}
		return
	}
	ln.pending.Store(int64(n))
	for _, sub := range subtasks[1:] {
		p.work <- poolTask{f: sub, ln: ln}
	}
	// The caller is a worker too: run the first subtask, then keep executing
	// queued work until this lane's barrier releases.
	p.finish(poolTask{f: subtasks[0], ln: ln})
	for {
		select {
		case <-ln.done:
			return
		case t := <-p.work:
			p.finish(t)
		}
	}
}

// finish runs one subtask and releases its lane's barrier if it was the last.
func (p *Pool) finish(t poolTask) {
	t.f()
	if t.ln.pending.Add(-1) == 0 {
		t.ln.done <- struct{}{}
	}
}

func (p *Pool) worker() {
	for {
		select {
		case <-p.stop:
			return
		case t := <-p.work:
			p.finish(t)
		}
	}
}

// Close terminates the pool's worker goroutines. The pool must be idle (no
// Run in flight). Close is idempotent and safe to call from several
// goroutines at once: exactly one caller wins the flag and closes the stop
// channel.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.stop)
	}
}

// RunStages executes a staged pipeline in order, with each stage's subtasks
// fanned out across the pool — the paper's per-subframe execution model.
func (p *Pool) RunStages(stages []Stage) {
	for _, st := range stages {
		p.Run(st.Subtasks)
	}
}

// ProcessParallel runs one subframe through rx with the pipeline stages
// executed on the pool. It is the parallel counterpart of rx.Process and
// produces a bit-identical Result.
func (p *Pool) ProcessParallel(rx *Receiver, iq [][]complex128, n0 float64) (Result, error) {
	stages, err := rx.Pipeline(iq, n0)
	if err != nil {
		return Result{}, err
	}
	p.RunStages(stages)
	return rx.Result(), nil
}
