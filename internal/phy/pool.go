package phy

import (
	"runtime"
	"sync/atomic"
)

// Pool executes the subtasks of a pipeline stage on a bounded set of
// persistent workers. It implements the paper's parallel subtask model: the
// subtasks of one stage are mutually independent (per antenna-symbol FFT,
// per antenna channel estimate, per data-symbol demod, per code-block
// decode), so they fan out across workers, and Run's return is the stage
// barrier that enforces Fig. 5's precedence constraint.
//
// The pool keeps workers parked between stages instead of spawning
// goroutines per subtask — at one stage every ~100 µs, goroutine churn
// would otherwise dominate the fan-out cost. The calling goroutine
// participates in the work, so a 1-worker pool degenerates to the serial
// loop with no synchronization at all. Run itself does not allocate.
type Pool struct {
	workers int
	work    chan func()
	pending atomic.Int64  // subtasks of the current stage not yet finished
	done    chan struct{} // barrier: signalled when pending hits zero
	stop    chan struct{} // closed by Close
	closed  bool
}

// poolQueueCap bounds the queued subtasks of one stage. The largest stage is
// FFT with antennas × symbols subtasks (56 at 4 antennas), so sends from Run
// never block in practice even with every worker busy.
const poolQueueCap = 256

// NewPool builds an execution pool with the given concurrency. workers <= 0
// selects GOMAXPROCS. The pool spawns workers-1 goroutines; the caller of
// Run is the remaining worker.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		work:    make(chan func(), poolQueueCap),
		done:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	for i := 1; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's concurrency (including the calling goroutine).
func (p *Pool) Workers() int { return p.workers }

// Run executes every subtask of the stage and returns when all completed —
// the stage barrier. Subtasks run concurrently on up to Workers()
// goroutines; they must be mutually independent. Run must not be called
// concurrently with itself on the same Pool.
func (p *Pool) Run(subtasks []func()) {
	n := len(subtasks)
	if n == 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for _, sub := range subtasks {
			sub()
		}
		return
	}
	p.pending.Store(int64(n))
	for _, sub := range subtasks[1:] {
		p.work <- sub
	}
	// The caller is a worker too: run the first subtask, then help drain
	// the queue until it is empty, then wait out the stragglers.
	p.finish(subtasks[0])
	for {
		select {
		case f := <-p.work:
			p.finish(f)
		default:
			<-p.done
			return
		}
	}
}

// finish runs one subtask and releases the barrier if it was the last.
func (p *Pool) finish(f func()) {
	f()
	if p.pending.Add(-1) == 0 {
		p.done <- struct{}{}
	}
}

func (p *Pool) worker() {
	for {
		select {
		case <-p.stop:
			return
		case f := <-p.work:
			p.finish(f)
		}
	}
}

// Close terminates the pool's worker goroutines. The pool must be idle (no
// Run in flight). Close is idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.stop)
}

// RunStages executes a staged pipeline in order, with each stage's subtasks
// fanned out across the pool — the paper's per-subframe execution model.
func (p *Pool) RunStages(stages []Stage) {
	for _, st := range stages {
		p.Run(st.Subtasks)
	}
}

// ProcessParallel runs one subframe through rx with the pipeline stages
// executed on the pool. It is the parallel counterpart of rx.Process and
// produces a bit-identical Result.
func (p *Pool) ProcessParallel(rx *Receiver, iq [][]complex128, n0 float64) (Result, error) {
	stages, err := rx.Pipeline(iq, n0)
	if err != nil {
		return Result{}, err
	}
	p.RunStages(stages)
	return rx.Result(), nil
}
