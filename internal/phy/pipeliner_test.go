package phy

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
)

// TestPoolCloseConcurrent is the regression for the unsynchronized closed
// flag: many goroutines racing Close (plus repeated serial calls) must leave
// the pool cleanly stopped. Under -race the pre-fix code fails here.
func TestPoolCloseConcurrent(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := NewPool(4)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Close()
			}()
		}
		wg.Wait()
		p.Close() // still idempotent after the race
	}
}

// TestPoolLanesConcurrent drives several independent stage pipelines through
// one shared pool at once. Each driver alternates a fill stage and a verify
// stage on its own lane; the verify stage only sums correctly if RunOn's
// barrier held for that lane regardless of the others' traffic.
func TestPoolLanesConcurrent(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const drivers = 6
	var wg sync.WaitGroup
	errs := make(chan string, drivers)
	for d := 0; d < drivers; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			ln := p.NewLane()
			buf := make([]int, 48)
			fill := make([]func(), len(buf))
			var sum atomic.Int64
			verify := make([]func(), len(buf))
			for i := range buf {
				i := i
				fill[i] = func() { buf[i] = i + 1 }
				verify[i] = func() { sum.Add(int64(buf[i])) }
			}
			want := int64(len(buf) * (len(buf) + 1) / 2)
			for round := 0; round < 30; round++ {
				for i := range buf {
					buf[i] = 0
				}
				sum.Store(0)
				p.RunOn(ln, fill)
				p.RunOn(ln, verify)
				if got := sum.Load(); got != want {
					errs <- "driver barrier leaked"
					return
				}
			}
			_ = d
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPipelinerMatchesSerial: every subframe pushed through a depth-3
// pipelined window must decode to exactly the serial Process result, with
// OnStart/OnStage/OnDone firing the right number of times.
func TestPipelinerMatchesSerial(t *testing.T) {
	cfg := testConfig(13, 2)
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(14, 2, 700)
	if err != nil {
		t.Fatal(err)
	}

	const n = 9
	type subframe struct {
		iq      [][]complex128
		n0      float64
		payload []byte
		want    Result
	}
	subs := make([]subframe, n)
	for i := range subs {
		payload := randomPayload(t, tx, uint64(710+i))
		wave, err := tx.Transmit(payload)
		if err != nil {
			t.Fatal(err)
		}
		iq, _ := ch.Apply(wave)
		want, err := serial.Process(iq, ch.N0())
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = subframe{
			iq: iq, n0: ch.N0(), payload: payload,
			want: Result{
				OK:         want.OK,
				Iterations: want.Iterations,
				Payload:    append([]byte(nil), want.Payload...),
			},
		}
	}

	type outcome struct {
		ok         bool
		iterations int
		payload    []byte
		err        error
	}
	var mu sync.Mutex
	got := make(map[uint64]outcome, n)
	var starts, stages atomic.Int64
	pool := NewPool(4)
	defer pool.Close()
	pl, err := NewPipeliner(PipelinerConfig{
		Arena:   NewArena(),
		Pool:    pool,
		Depth:   3,
		OnStart: func(tag uint64) { starts.Add(1) },
		OnStage: func(tag uint64, stage TaskName, elapsed time.Duration) {
			if elapsed < 0 {
				t.Errorf("negative stage time for %v", stage)
			}
			stages.Add(1)
		},
		OnDone: func(tag uint64, res Result, err error) {
			mu.Lock()
			defer mu.Unlock()
			got[tag] = outcome{
				ok:         res.OK,
				iterations: res.Iterations,
				payload:    append([]byte(nil), res.Payload...), // res dies with the callback
				err:        err,
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, sf := range subs {
		if err := pl.Submit(uint64(i), cfg, sf.iq, sf.n0); err != nil {
			t.Fatal(err)
		}
	}
	pl.Close()

	if len(got) != n {
		t.Fatalf("completions: %d, want %d", len(got), n)
	}
	if starts.Load() != n {
		t.Fatalf("OnStart fired %d times, want %d", starts.Load(), n)
	}
	if want := int64(n * len(serial.stages)); stages.Load() != want {
		t.Fatalf("OnStage fired %d times, want %d", stages.Load(), want)
	}
	for i, sf := range subs {
		o, ok := got[uint64(i)]
		if !ok {
			t.Fatalf("subframe %d never completed", i)
		}
		if o.err != nil {
			t.Fatalf("subframe %d: %v", i, o.err)
		}
		if o.ok != sf.want.OK || o.iterations != sf.want.Iterations {
			t.Fatalf("subframe %d: pipelined (ok=%v it=%d) vs serial (ok=%v it=%d)",
				i, o.ok, o.iterations, sf.want.OK, sf.want.Iterations)
		}
		if bits.HammingDistance(o.payload, sf.want.Payload) != 0 {
			t.Fatalf("subframe %d: payload differs from serial decode", i)
		}
	}
}

// TestPipelinerLifecycle covers the construction and shutdown edges: missing
// arena, config errors surfacing through OnDone, Submit-after-Close, and
// double Close.
func TestPipelinerLifecycle(t *testing.T) {
	if _, err := NewPipeliner(PipelinerConfig{}); err == nil {
		t.Fatal("pipeliner without arena accepted")
	}

	var mu sync.Mutex
	var errs []error
	pl, err := NewPipeliner(PipelinerConfig{
		Arena: NewArena(),
		OnDone: func(tag uint64, res Result, err error) {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Depth() != 1 {
		t.Fatalf("Depth() = %d, want clamped 1", pl.Depth())
	}
	// Invalid config: the error must arrive via OnDone, not hang the window.
	if err := pl.Submit(0, Config{}, nil, 0); err != nil {
		t.Fatal(err)
	}
	pl.Close()
	pl.Close() // idempotent
	if len(errs) != 1 || errs[0] == nil {
		t.Fatalf("invalid config outcome = %v, want one error", errs)
	}
	if err := pl.Submit(1, Config{}, nil, 0); err == nil {
		t.Fatal("Submit after Close accepted")
	}
}
