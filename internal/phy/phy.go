// Package phy implements the LTE uplink (PUSCH) physical layer: a
// transmitter used to synthesize decodable IQ subframes and a receiver whose
// processing is decomposed exactly as the paper's Fig. 5 — sequential tasks
// (FFT, demod, decode), each broken into independent subtasks that can run
// concurrently and, under RT-OPEX, be migrated to idle cores.
//
// The receive chain is: per-antenna, per-symbol FFT with cyclic-prefix
// removal → per-antenna channel estimation from the two DM-RS symbols →
// per-data-symbol MRC equalization, SC-FDMA de-precoding, soft demapping and
// descrambling → per-code-block rate dematching and turbo decoding with CRC
// early termination.
//
// Substitution note (see DESIGN.md): the DM-RS uses a unit-magnitude QPSK
// pilot derived from the Gold sequence instead of the standard's Zadoff-Chu
// base sequences. Both are constant-magnitude known references; channel
// estimation quality and — critically for the paper — the compute shape of
// the chain are unchanged.
package phy

import (
	"fmt"
	"math"

	"rtopex/internal/lte"
	"rtopex/internal/modulation"
	"rtopex/internal/sequence"
	"rtopex/internal/turbo"
)

// Config describes one basestation's uplink configuration.
type Config struct {
	Bandwidth lte.Bandwidth
	MCS       int
	Antennas  int // receive antennas, the paper's N
	RNTI      uint16
	CellID    uint16
	Subframe  int // subframe index 0..9, enters the scrambling init
	// MaxIterations is the turbo decoder's iteration cap (the paper's Lm,
	// default 4 when zero).
	MaxIterations int
	// DecoderPath selects the turbo decode arithmetic: the int16 quantized
	// fast path (zero value, the default) or turbo.PathFloat64 for the
	// float64 reference.
	DecoderPath turbo.Path
	// DecoderRadix selects the quantized trellis stepping: radix-4 fused
	// SIMD stepping (zero value, the default) or turbo.Radix2 for the
	// scalar reference. Outputs are bit-identical either way.
	DecoderRadix turbo.Radix
	// DecodeCheckCadence is the turbo decoder's CRC early-termination
	// cadence: run the check every Nth half-iteration instead of every one.
	// 0 (and 1) keep the measured optimum for the int16 path — a CRC pass
	// costs ~1% of a constituent pass there, so checking every half
	// iteration is essentially free and terminates earliest. The knob
	// exists for profiling the trade on other hardware.
	DecodeCheckCadence int
	// DecodeBatch groups this many code blocks into each decode subtask,
	// decoded together through turbo.Batch under a shared half-iteration
	// schedule (kernel tables stay hot across blocks). 0 or 1 keeps the
	// one-subtask-per-block layout; values ≥ C collapse decode to a single
	// batched subtask. Results are bit-identical to per-block decoding —
	// only the grouping (and so the available decode-stage parallelism)
	// changes. Serial consumers (Pipeliner lanes, Process) want all blocks
	// in one batch; a Pool splitting decode across workers wants groups
	// sized near C/workers.
	DecodeBatch int
}

func (c Config) maxIter() int {
	if c.MaxIterations <= 0 {
		return 4
	}
	return c.MaxIterations
}

func (c Config) validate() error {
	if c.Antennas < 1 {
		return fmt.Errorf("phy: need at least 1 antenna, got %d", c.Antennas)
	}
	if c.Bandwidth.FFTSize == 0 || c.Bandwidth.PRB == 0 {
		return fmt.Errorf("phy: incomplete bandwidth configuration %+v", c.Bandwidth)
	}
	if _, err := lte.MCSTable(c.MCS); err != nil {
		return err
	}
	if c.MCS > lte.MaxMCS {
		return fmt.Errorf("phy: MCS %d above supported maximum %d", c.MCS, lte.MaxMCS)
	}
	if !c.DecoderPath.Valid() {
		return fmt.Errorf("phy: unknown decoder path %v", c.DecoderPath)
	}
	if c.DecodeBatch < 0 {
		return fmt.Errorf("phy: negative DecodeBatch %d", c.DecodeBatch)
	}
	return nil
}

// dataSymbolIndices are the 12 PUSCH data symbols (DM-RS occupies symbol 3
// of each slot, i.e. subframe symbols 3 and 10).
var dataSymbolIndices = []int{0, 1, 2, 4, 5, 6, 7, 8, 9, 11, 12, 13}

const (
	dmrsSymbol1 = 3
	dmrsSymbol2 = 10
)

// subcarrierBin maps occupied-subcarrier index k (0..M-1) to an FFT bin,
// centering the allocation around DC.
func subcarrierBin(k, m, fftSize int) int {
	return (k - m/2 + fftSize) % fftSize
}

// pilotSequence returns the unit-magnitude QPSK DM-RS for a cell: one entry
// per subcarrier, shared by both DM-RS symbols.
func pilotSequence(cellID uint16, m int) []complex128 {
	bits := sequence.Gold(uint32(cellID)<<9|0x7, 2*m)
	p := make([]complex128, m)
	s := 1 / math.Sqrt2
	for k := 0; k < m; k++ {
		re, im := s, s
		if bits[2*k] == 1 {
			re = -s
		}
		if bits[2*k+1] == 1 {
			im = -s
		}
		p[k] = complex(re, im)
	}
	return p
}

// codingLayout captures the deterministic per-MCS coding geometry shared by
// transmitter and receiver.
type codingLayout struct {
	tbs    int // transport block bits (before CRC24A)
	g      int // codeword bits
	scheme modulation.Scheme
	seg    *turbo.Segmentation
	es     []int // per-block rate-matching output sizes
	offs   []int // per-block codeword bit offsets
}

func newCodingLayout(cfg Config) (*codingLayout, error) {
	tbs, scheme, err := lte.TransportBlockSize(cfg.MCS, cfg.Bandwidth.PRB)
	if err != nil {
		return nil, err
	}
	g, err := lte.CodewordBits(cfg.MCS, cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	seg, err := turbo.Segment(tbs + 24) // TB + CRC24A
	if err != nil {
		return nil, err
	}
	es, err := turbo.PerBlockE(g, seg.C, scheme.Order())
	if err != nil {
		return nil, err
	}
	offs := make([]int, seg.C)
	pos := 0
	for r := range es {
		offs[r] = pos
		pos += es[r]
	}
	if pos != g {
		return nil, fmt.Errorf("phy: E accounting %d != G %d", pos, g)
	}
	return &codingLayout{tbs: tbs, g: g, scheme: scheme, seg: seg, es: es, offs: offs}, nil
}
