package phy

import (
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/stats"
	"rtopex/internal/turbo"
)

// TestDecodeVariantsBitIdentical drives the full receive chain once per
// (MCS, SNR) cell and decodes the same IQ under every decode configuration
// the PR adds — radix-2 scalar, radix-4 fused, per-block and batched in two
// group sizes. All variants must report identical transport-block verdicts,
// per-block CRC outcomes and iteration counts: the stepping and the
// batching change only the schedule, never the arithmetic. The low-SNR
// cells make some blocks fail and others terminate at different iteration
// counts, so the comparison also covers per-block dropout inside a batch.
func TestDecodeVariantsBitIdentical(t *testing.T) {
	type variant struct {
		name  string
		tweak func(*Config)
	}
	variants := []variant{
		{"radix4-per-block", func(c *Config) {}},
		{"radix2-per-block", func(c *Config) { c.DecoderRadix = turbo.Radix2 }},
		{"radix4-batch-all", func(c *Config) { c.DecodeBatch = 64 }},
		{"radix4-batch-2", func(c *Config) { c.DecodeBatch = 2 }},
		{"radix2-batch-all", func(c *Config) { c.DecoderRadix = turbo.Radix2; c.DecodeBatch = 64 }},
	}
	for _, mcs := range []int{0, 13, 27} {
		for _, snr := range []float64{30, 3} {
			base := testConfig(mcs, 2)
			tx, err := NewTransmitter(base)
			if err != nil {
				t.Fatal(err)
			}
			payload := randomPayload(t, tx, uint64(1000+mcs))
			wave, err := tx.Transmit(payload)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := channel.New(snr, base.Antennas, uint64(7+mcs))
			if err != nil {
				t.Fatal(err)
			}
			iq, _ := ch.Apply(wave)

			var ref Result
			var refName string
			for vi, v := range variants {
				cfg := base
				v.tweak(&cfg)
				rx, err := NewReceiver(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := rx.Process(iq, ch.N0())
				if err != nil {
					t.Fatal(err)
				}
				if vi == 0 {
					// Deep-copy: Result aliases receiver scratch.
					ref = res
					ref.Payload = append([]byte(nil), res.Payload...)
					ref.BlockOK = append([]bool(nil), res.BlockOK...)
					ref.BlockIterations = append([]int(nil), res.BlockIterations...)
					refName = v.name
					continue
				}
				if res.OK != ref.OK || res.Iterations != ref.Iterations {
					t.Fatalf("MCS=%d SNR=%v %s: (OK=%v it=%d) vs %s (OK=%v it=%d)",
						mcs, snr, v.name, res.OK, res.Iterations, refName, ref.OK, ref.Iterations)
				}
				for r := range ref.BlockOK {
					if res.BlockOK[r] != ref.BlockOK[r] || res.BlockIterations[r] != ref.BlockIterations[r] {
						t.Fatalf("MCS=%d SNR=%v %s block %d: (ok=%v it=%d) vs %s (ok=%v it=%d)",
							mcs, snr, v.name, r, res.BlockOK[r], res.BlockIterations[r],
							refName, ref.BlockOK[r], ref.BlockIterations[r])
					}
				}
				if ref.OK {
					if d := bits.HammingDistance(res.Payload, ref.Payload); d != 0 {
						t.Fatalf("MCS=%d SNR=%v %s: payload differs from %s in %d bits",
							mcs, snr, v.name, refName, d)
					}
				}
			}
		}
	}
}

// TestBatchedDecodeStageShape: DecodeBatch regroups only the decode stage —
// group boundaries partition the blocks, and a batched receiver stays
// allocation-free in steady state like the per-block one.
func TestBatchedDecodeStageShape(t *testing.T) {
	cfg := testConfig(27, 2) // C = 6 blocks
	cfg.DecodeBatch = 4      // groups of 4 and 2
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := NewTransmitter(cfg)
	payload := randomPayload(t, tx, 3)
	wave, _ := tx.Transmit(payload)
	ch, _ := channel.New(30, 2, 5)
	iq, _ := ch.Apply(wave)
	stages, err := rx.Pipeline(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stages {
		if st.Name == TaskDecode {
			if got := len(st.Subtasks); got != 2 {
				t.Fatalf("decode stage has %d subtasks with DecodeBatch=4 over 6 blocks, want 2", got)
			}
		}
	}
	if res, err := rx.Process(iq, ch.N0()); err != nil || !res.OK {
		t.Fatalf("batched decode failed: res.OK=%v err=%v", res.OK, err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := rx.Process(iq, ch.N0()); err != nil {
			t.Fatal(err)
		}
		rx.Result()
	})
	if allocs > 0 {
		t.Fatalf("batched receiver allocates %.1f objects per subframe, want 0", allocs)
	}
}

// TestDescrambleSigns pins the ±1 descrambling representation against the
// generating sequence: an LLR passes through unchanged where the scrambler
// bit is 0 and flips sign where it is 1.
func TestDescrambleSigns(t *testing.T) {
	cfg := testConfig(13, 1)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(9)
	ones, flips := 0, 0
	for i, s := range rx.descramb {
		if s != 1 && s != -1 {
			t.Fatalf("descramb[%d] = %v, want ±1", i, s)
		}
		v := r.NormFloat64()
		if got := v * s; (s == -1) != (got == -v) && v != 0 {
			t.Fatalf("descramb[%d]: %v·%v = %v", i, v, s, got)
		}
		if s == -1 {
			ones++
		} else {
			flips++
		}
	}
	// The Gold sequence is balanced; both signs must actually occur.
	if ones == 0 || flips == 0 {
		t.Fatalf("degenerate scrambling signs: %d minus, %d plus", ones, flips)
	}
}
