package phy

import (
	"fmt"
	"math"

	"rtopex/internal/bits"
	"rtopex/internal/fft"
	"rtopex/internal/lte"
	"rtopex/internal/modulation"
	"rtopex/internal/sequence"
	"rtopex/internal/turbo"
)

// TaskName identifies a receive-chain task. ChEst is folded into the
// paper's "demod" task; it is kept as a separate barrier stage because the
// per-symbol demod subtasks all read the channel estimate.
type TaskName string

// The receive tasks in dependency order.
const (
	TaskFFT    TaskName = "fft"
	TaskChEst  TaskName = "chest"
	TaskDemod  TaskName = "demod"
	TaskDecode TaskName = "decode"
)

// Stage is one task of the receive chain: its subtasks are mutually
// independent and may execute concurrently, but a stage must fully complete
// before the next begins (Fig. 5's precedence constraint).
type Stage struct {
	Name     TaskName
	Subtasks []func()
}

// Result reports the outcome of decoding one subframe.
//
// Its slices (and Payload) alias receiver scratch that is reused by the next
// Pipeline/Process call on the same Receiver; callers that retain a Result
// across subframes must copy what they need.
type Result struct {
	Payload         []byte // TBS decoded bits (only meaningful when OK)
	OK              bool   // transport-block CRC24A passed
	BlockOK         []bool // per-code-block CRC outcome
	BlockIterations []int  // turbo iterations per code block
	Iterations      int    // max over blocks — the paper's L
}

// Receiver decodes PUSCH subframes. A Receiver processes one subframe at a
// time (its scratch state is reused between subframes); within a subframe,
// the subtasks of one stage may run concurrently on multiple goroutines.
//
// The steady-state hot path (Pipeline, the subtasks, Result, Process) is
// allocation-free: the stage decomposition is built once at construction and
// every subtask owns preallocated scratch indexed by its subtask identity.
type Receiver struct {
	cfg    Config
	layout *codingLayout
	plan   *fft.Plan
	pilot  []complex128

	rms        []*turbo.RateMatcher
	decoders   []*turbo.Decoder
	rawCovered []bool    // [block] rate matching covers all systematic bits at rv 0
	descramb   []float64 // scrambling sequence as ±1 LLR sign multipliers

	// Batched decode grouping (cfg.DecodeBatch > 1): group g covers blocks
	// groups[g]..groups[g+1] and owns batches[g], so concurrent group
	// subtasks never share scratch.
	groups   []int
	batches  []*turbo.Batch
	groupIdx [][]int // [group] scratch: block ids added to the batch

	// Cached stage decomposition. The subtask closures read the per-call
	// inputs from curIQ/curN0, which Pipeline sets before returning stages.
	stages      []Stage
	symbolStart []int // sample offset of each symbol past its CP
	curIQ       [][]complex128
	curN0       float64

	// Per-subtask scratch. Buffers are indexed by subtask identity
	// (antenna×symbol, antenna, data symbol, code block), so concurrent
	// subtasks of one stage never share a buffer.
	fftBufs  [][]complex128      // [antenna·symbols+l] FFT working buffer
	chRaw    [][]complex128      // [antenna] raw pre-smoothing estimate
	eqBufs   [][]complex128      // [data symbol] MRC/de-precode buffer
	denBufs  [][]float64         // [data symbol] per-subcarrier MRC weight
	idftWork [][]complex128      // [data symbol] Bluestein scratch
	soft     [][3][]float64      // [block] dematched d0/d1/d2 streams
	checks   []func([]byte) bool // [block] CRC early-termination hook

	// per-subframe scratch
	grid   [][][]complex128 // [antenna][symbol][subcarrier]
	chEst  [][]complex128   // [antenna][subcarrier]
	llrs   []float64        // codeword LLRs
	blocks [][]byte         // decoded code blocks
	tb     []byte           // joined transport block
	res    Result
}

// NewReceiver builds a receiver for cfg.
func NewReceiver(cfg Config) (*Receiver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	layout, err := newCodingLayout(cfg)
	if err != nil {
		return nil, err
	}
	plan, err := fft.NewPlan(cfg.Bandwidth.FFTSize)
	if err != nil {
		return nil, err
	}
	m := cfg.Bandwidth.Subcarriers()
	rx := &Receiver{
		cfg:    cfg,
		layout: layout,
		plan:   plan,
		pilot:  pilotSequence(cfg.CellID, m),
	}
	for i, k := range layout.seg.Sizes {
		rm, err := turbo.NewRateMatcher(k)
		if err != nil {
			return nil, err
		}
		dec, err := turbo.NewDecoder(k)
		if err != nil {
			return nil, err
		}
		dec.MaxIterations = cfg.maxIter()
		dec.Path = cfg.DecoderPath
		dec.Radix = cfg.DecoderRadix
		dec.CheckCadence = cfg.DecodeCheckCadence
		rx.rms = append(rx.rms, rm)
		rx.decoders = append(rx.decoders, dec)
		// The iteration-0 raw-hard-decision pre-check only ever pays when
		// the initial transmission observes every systematic bit; decide
		// once here instead of sweeping K bits per subframe for nothing.
		rx.rawCovered = append(rx.rawCovered, rm.CoversSystematic(layout.es[i], 0))
	}
	scr := sequence.NewScrambler(sequence.PUSCHInit(cfg.RNTI, 0, cfg.Subframe, cfg.CellID), layout.g)
	// Stored as ±1.0 multipliers rather than bits: descrambling then is a
	// branch-free multiply (an exact IEEE sign flip) instead of a
	// data-dependent branch per LLR, which mispredicts half the time on the
	// pseudo-random sequence.
	rx.descramb = make([]float64, layout.g)
	for i := range rx.descramb {
		rx.descramb[i] = 1 - 2*float64(scr.Bit(i))
	}
	rx.grid = make([][][]complex128, cfg.Antennas)
	for a := range rx.grid {
		rx.grid[a] = make([][]complex128, lte.SymbolsPerSubframe)
		for l := range rx.grid[a] {
			rx.grid[a][l] = make([]complex128, m)
		}
	}
	rx.chEst = make([][]complex128, cfg.Antennas)
	for a := range rx.chEst {
		rx.chEst[a] = make([]complex128, m)
	}
	rx.llrs = make([]float64, layout.g)
	rx.allocScratch()
	rx.buildStages()
	return rx, nil
}

// allocScratch sizes the per-subtask buffers and the reusable result state.
func (rx *Receiver) allocScratch() {
	bw := rx.cfg.Bandwidth
	m := bw.Subcarriers()
	seg := rx.layout.seg

	rx.fftBufs = make([][]complex128, rx.cfg.Antennas*lte.SymbolsPerSubframe)
	for i := range rx.fftBufs {
		rx.fftBufs[i] = make([]complex128, bw.FFTSize)
	}
	rx.chRaw = make([][]complex128, rx.cfg.Antennas)
	for a := range rx.chRaw {
		rx.chRaw[a] = make([]complex128, m)
	}
	rx.eqBufs = make([][]complex128, len(dataSymbolIndices))
	rx.denBufs = make([][]float64, len(dataSymbolIndices))
	rx.idftWork = make([][]complex128, len(dataSymbolIndices))
	for ds := range rx.eqBufs {
		rx.eqBufs[ds] = make([]complex128, m)
		rx.denBufs[ds] = make([]float64, m)
		rx.idftWork[ds] = make([]complex128, fft.WorkLen(m))
	}

	rx.soft = make([][3][]float64, seg.C)
	rx.checks = make([]func([]byte) bool, seg.C)
	rx.blocks = make([][]byte, seg.C)
	for r, k := range seg.Sizes {
		d := k + 4
		rx.soft[r] = [3][]float64{
			make([]float64, d), make([]float64, d), make([]float64, d),
		}
		rx.blocks[r] = make([]byte, k)
		rx.checks[r] = func(b []byte) bool {
			if seg.C > 1 {
				return bits.CheckCRC24B(b)
			}
			// Single block: the transport-block CRC24A serves as the check,
			// computed past any filler bits.
			return bits.CheckCRC24A(b[seg.F:])
		}
	}
	rx.tb = make([]byte, seg.B)
	rx.res = Result{
		BlockOK:         make([]bool, seg.C),
		BlockIterations: make([]int, seg.C),
	}

	rx.symbolStart = make([]int, lte.SymbolsPerSubframe)
	pos := 0
	for l := 0; l < lte.SymbolsPerSubframe; l++ {
		rx.symbolStart[l] = pos + bw.CPLen(l) // skip CP
		pos += bw.CPLen(l) + bw.FFTSize
	}
}

// buildStages constructs the staged subtask decomposition once. The closures
// read the current subframe's inputs from rx.curIQ / rx.curN0.
func (rx *Receiver) buildStages() {
	// Stage 1: FFT — one subtask per (antenna, symbol).
	fftStage := Stage{Name: TaskFFT}
	for a := 0; a < rx.cfg.Antennas; a++ {
		for l := 0; l < lte.SymbolsPerSubframe; l++ {
			a, l := a, l
			fftStage.Subtasks = append(fftStage.Subtasks, func() { rx.fftSymbol(a, l) })
		}
	}

	// Stage 2: channel estimation — one subtask per antenna.
	chestStage := Stage{Name: TaskChEst}
	for a := 0; a < rx.cfg.Antennas; a++ {
		a := a
		chestStage.Subtasks = append(chestStage.Subtasks, func() { rx.estimateChannel(a) })
	}

	// Stage 3: demod — one subtask per data symbol. Each subtask derives
	// its effective noise power locally (computing it once up front would
	// race with concurrent subtask execution); they agree by construction.
	// A non-positive n0 requests blind estimation from the DM-RS, resolved
	// lazily so it observes the completed FFT stage.
	demodStage := Stage{Name: TaskDemod}
	noise := func() float64 {
		if rx.curN0 > 0 {
			return rx.curN0
		}
		return rx.EstimateNoise()
	}
	for ds := range dataSymbolIndices {
		ds := ds
		demodStage.Subtasks = append(demodStage.Subtasks, func() { rx.demodSymbol(ds, noise()) })
	}

	// Stage 4: decode — one subtask per code block, or per group of
	// cfg.DecodeBatch blocks decoded together through turbo.Batch.
	decodeStage := Stage{Name: TaskDecode}
	c := rx.layout.seg.C
	if b := rx.cfg.DecodeBatch; b > 1 {
		for lo := 0; lo < c; lo += b {
			hi := min(lo+b, c)
			rx.groups = append(rx.groups, lo)
			rx.batches = append(rx.batches, turbo.NewBatch(hi-lo))
			rx.groupIdx = append(rx.groupIdx, make([]int, 0, hi-lo))
			g := len(rx.batches) - 1
			decodeStage.Subtasks = append(decodeStage.Subtasks, func() { rx.decodeGroup(g) })
		}
		rx.groups = append(rx.groups, c)
	} else {
		for r := 0; r < c; r++ {
			r := r
			decodeStage.Subtasks = append(decodeStage.Subtasks, func() { rx.decodeBlock(r) })
		}
	}

	rx.stages = []Stage{fftStage, chestStage, demodStage, decodeStage}
}

// TBS returns the transport block size in bits.
func (rx *Receiver) TBS() int { return rx.layout.tbs }

// CodeBlocks returns the number of turbo code blocks C — the decode task's
// subtask count.
func (rx *Receiver) CodeBlocks() int { return rx.layout.seg.C }

// Pipeline stages the subtask decomposition for one received subframe. iq
// holds one sample slice per antenna; n0 is the complex noise power per
// subcarrier. Stages must run in order; subtasks within a stage are
// independent. Call Result only after every subtask of every stage ran.
//
// The returned stages are cached on the Receiver (Pipeline does not
// allocate); the receiver retains iq until the next Pipeline call.
func (rx *Receiver) Pipeline(iq [][]complex128, n0 float64) ([]Stage, error) {
	bw := rx.cfg.Bandwidth
	if len(iq) != rx.cfg.Antennas {
		return nil, fmt.Errorf("phy: %d antenna streams, want %d", len(iq), rx.cfg.Antennas)
	}
	for a, s := range iq {
		if len(s) != bw.SamplesPerSubframe() {
			return nil, fmt.Errorf("phy: antenna %d has %d samples, want %d", a, len(s), bw.SamplesPerSubframe())
		}
	}
	rx.curIQ = iq
	rx.curN0 = n0
	rx.res.OK = false
	rx.res.Payload = nil
	rx.res.Iterations = 0
	for r := range rx.res.BlockOK {
		rx.res.BlockOK[r] = false
		rx.res.BlockIterations[r] = 0
	}
	return rx.stages, nil
}

// fftSymbol demodulates OFDM symbol l of antenna a into the subcarrier grid.
func (rx *Receiver) fftSymbol(a, l int) {
	bw := rx.cfg.Bandwidth
	n := bw.FFTSize
	m := bw.Subcarriers()
	start := rx.symbolStart[l]
	buf := rx.fftBufs[a*lte.SymbolsPerSubframe+l]
	copy(buf, rx.curIQ[a][start:start+n])
	rx.plan.Forward(buf)
	scale := complex(1/math.Sqrt(float64(n)), 0)
	dst := rx.grid[a][l]
	for k := 0; k < m; k++ {
		dst[k] = buf[subcarrierBin(k, m, n)] * scale
	}
}

// chEstSmoothing is the one-sided width of the frequency-domain boxcar
// applied to the raw per-subcarrier channel estimate (total window 9
// subcarriers). The DM-RS gives two noisy observations per subcarrier;
// averaging across neighbors trades a little frequency resolution — safe
// while the window stays well inside the channel's coherence bandwidth
// (~26 subcarriers even for EVA at 10 MHz) — for an ~6.5 dB cleaner
// estimate, which is what keeps low-SNR HARQ combining effective.
const chEstSmoothing = 4

// estimateChannel averages the two DM-RS symbols of antenna a and smooths
// the estimate across frequency.
func (rx *Receiver) estimateChannel(a int) {
	m := rx.cfg.Bandwidth.Subcarriers()
	y1 := rx.grid[a][dmrsSymbol1]
	y2 := rx.grid[a][dmrsSymbol2]
	raw := rx.chRaw[a]
	for k := 0; k < m; k++ {
		raw[k] = (y1[k] + y2[k]) / (2 * rx.pilot[k])
	}
	for k := 0; k < m; k++ {
		lo, hi := k-chEstSmoothing, k+chEstSmoothing
		if lo < 0 {
			lo = 0
		}
		if hi >= m {
			hi = m - 1
		}
		var acc complex128
		for i := lo; i <= hi; i++ {
			acc += raw[i]
		}
		rx.chEst[a][k] = acc / complex(float64(hi-lo+1), 0)
	}
}

// demodSymbol equalizes (MRC), de-precodes and demaps data symbol ds,
// writing LLRs into the codeword buffer and descrambling them in place.
func (rx *Receiver) demodSymbol(ds int, n0 float64) {
	bw := rx.cfg.Bandwidth
	m := bw.Subcarriers()
	l := dataSymbolIndices[ds]
	eq := rx.eqBufs[ds][:m]
	den := rx.denBufs[ds][:m]
	// Antenna-major accumulation: each pass streams one channel-estimate row
	// and one grid row with the indexing hoisted out of the subcarrier loop,
	// instead of re-resolving rx.chEst[a][k] / rx.grid[a][l][k] per element.
	for a := 0; a < rx.cfg.Antennas; a++ {
		h := rx.chEst[a][:m]
		y := rx.grid[a][l][:m]
		if a == 0 {
			for k := 0; k < m; k++ {
				hk, yk := h[k], y[k]
				eq[k] = complex(real(hk), -imag(hk)) * yk
				den[k] = real(hk)*real(hk) + imag(hk)*imag(hk)
			}
		} else {
			for k := 0; k < m; k++ {
				hk, yk := h[k], y[k]
				eq[k] += complex(real(hk), -imag(hk)) * yk
				den[k] += real(hk)*real(hk) + imag(hk)*imag(hk)
			}
		}
	}
	var invDenSum float64
	for k := 0; k < m; k++ {
		d := den[k]
		if d < 1e-12 {
			d = 1e-12
		}
		// d is real, so equalization is a real reciprocal and scale —
		// avoids the full complex-division algorithm in the hot loop.
		inv := 1 / d
		eq[k] = complex(real(eq[k])*inv, imag(eq[k])*inv)
		invDenSum += inv
	}
	// SC-FDMA de-precoding: IDFT scaled by √M inverts the transmitter's
	// DFT/√M. The per-sample noise power afterwards is the mean of the
	// per-subcarrier post-MRC powers.
	fft.IDFTInto(eq, eq, rx.idftWork[ds])
	sqrtM := math.Sqrt(float64(m))
	for i := range eq {
		eq[i] = complex(real(eq[i])*sqrtM, imag(eq[i])*sqrtM)
	}
	n0Eff := n0 * invDenSum / float64(m)
	qm := rx.layout.scheme.Order()
	base := ds * m * qm
	dst := rx.llrs[base : base+m*qm]
	modulation.DemapInto(dst, rx.layout.scheme, eq, n0Eff)
	for i, s := range rx.descramb[base : base+m*qm] {
		dst[i] *= s
	}
}

// dematchBlock clears and refills code block r's soft streams from the
// codeword LLRs, reporting whether the block is decodable. The failure arm
// is unreachable by construction (E > 0 always); it marks the block failed.
func (rx *Receiver) dematchBlock(r int) bool {
	e := rx.layout.es[r]
	off := rx.layout.offs[r]
	s0, s1, s2 := rx.soft[r][0], rx.soft[r][1], rx.soft[r][2]
	clear(s0)
	clear(s1)
	clear(s2)
	if err := rx.rms[r].DematchInto(s0, s1, s2, rx.llrs[off:off+e], 0); err != nil {
		rx.res.BlockOK[r] = false
		rx.res.BlockIterations[r] = rx.cfg.maxIter()
		return false
	}
	return true
}

func (rx *Receiver) storeBlockResult(r int, res turbo.Result) {
	copy(rx.blocks[r], res.Bits)
	rx.res.BlockOK[r] = res.OK
	rx.res.BlockIterations[r] = res.Iterations
}

// decodeBlock rate-dematches and turbo-decodes code block r.
func (rx *Receiver) decodeBlock(r int) {
	if !rx.dematchBlock(r) {
		return
	}
	dec := rx.decoders[r]
	dec.PrecheckRaw = rx.rawCovered[r] // HARQ shares these decoders and re-enables it
	rx.storeBlockResult(r, dec.Decode(rx.soft[r][0], rx.soft[r][1], rx.soft[r][2], rx.checks[r]))
}

// decodeGroup rate-dematches block group g and decodes it as one
// turbo.Batch: every block's half-iterations interleave under the shared
// schedule, with per-block CRC termination. Bit-identical to decodeBlock
// per block.
func (rx *Receiver) decodeGroup(g int) {
	lo, hi := rx.groups[g], rx.groups[g+1]
	b := rx.batches[g]
	b.Reset()
	ids := rx.groupIdx[g][:0]
	for r := lo; r < hi; r++ {
		if !rx.dematchBlock(r) {
			continue
		}
		dec := rx.decoders[r]
		dec.PrecheckRaw = rx.rawCovered[r] // HARQ shares these decoders and re-enables it
		b.Add(dec, rx.soft[r][0], rx.soft[r][1], rx.soft[r][2], rx.checks[r])
		ids = append(ids, r)
	}
	b.Run()
	for i, r := range ids {
		rx.storeBlockResult(r, b.Result(i))
	}
}

// Result assembles the transport block after all stages completed. The
// returned Result aliases receiver scratch — see the Result type docs.
func (rx *Receiver) Result() Result {
	res := rx.res
	for _, it := range res.BlockIterations {
		if it > res.Iterations {
			res.Iterations = it
		}
	}
	tb, err := rx.layout.seg.JoinInto(rx.tb, rx.blocks)
	if err == nil && bits.CheckCRC24A(tb) {
		res.OK = true
		res.Payload = tb[:len(tb)-24]
	}
	rx.res = res
	return res
}

// Process is the convenience single-threaded path: it runs every stage
// serially and returns the result.
func (rx *Receiver) Process(iq [][]complex128, n0 float64) (Result, error) {
	stages, err := rx.Pipeline(iq, n0)
	if err != nil {
		return Result{}, err
	}
	for _, st := range stages {
		for _, sub := range st.Subtasks {
			sub()
		}
	}
	return rx.Result(), nil
}

// EstimateNoise measures the post-FFT noise power from the DM-RS symbols:
// the two pilot observations of each subcarrier share the channel, so half
// the power of their difference is the per-component noise power. A real
// receiver uses this in place of an externally supplied n0; Process and
// Pipeline accept n0 <= 0 to request it.
func (rx *Receiver) EstimateNoise() float64 {
	m := rx.cfg.Bandwidth.Subcarriers()
	var acc float64
	n := 0
	for a := 0; a < rx.cfg.Antennas; a++ {
		y1 := rx.grid[a][dmrsSymbol1]
		y2 := rx.grid[a][dmrsSymbol2]
		for k := 0; k < m; k++ {
			d := y1[k] - y2[k]
			acc += real(d)*real(d) + imag(d)*imag(d)
			n++
		}
	}
	if n == 0 {
		return 1e-12
	}
	// Var(y1-y2) = 2·n0; the estimate is per complex sample.
	est := acc / (2 * float64(n))
	if est < 1e-12 {
		est = 1e-12
	}
	return est
}
