package phy

import (
	"fmt"

	"rtopex/internal/bits"
	"rtopex/internal/lte"
)

// RVSequence is the LTE redundancy-version cycling order for HARQ
// retransmissions (TS 36.321): rv 0 first (systematic-heavy), then the
// parity-heavy versions.
var RVSequence = [4]int{0, 2, 3, 1}

// HARQReceiver wraps a Receiver with per-code-block soft buffers that
// accumulate across retransmissions: repeats of the same redundancy version
// chase-combine (+3 dB per repeat), different versions add fresh parity
// (incremental redundancy). This is the mechanism behind the paper's 3 ms
// ACK/NACK loop — a NACKed subframe returns, combined, 8 ms later.
type HARQReceiver struct {
	rx   *Receiver
	soft [][3][]float64 // per block: accumulated d0/d1/d2 streams
	// Transmissions counts the combined transmissions so far.
	Transmissions int
}

// NewHARQReceiver builds a HARQ-combining receiver for cfg.
func NewHARQReceiver(cfg Config) (*HARQReceiver, error) {
	rx, err := NewReceiver(cfg)
	if err != nil {
		return nil, err
	}
	h := &HARQReceiver{rx: rx}
	h.Reset()
	return h, nil
}

// Reset clears the soft buffers for a new transport block (after an ACK or
// when the HARQ process is reassigned).
func (h *HARQReceiver) Reset() {
	h.Transmissions = 0
	h.soft = make([][3][]float64, h.rx.layout.seg.C)
	for r, k := range h.rx.layout.seg.Sizes {
		d := k + 4
		h.soft[r] = [3][]float64{
			make([]float64, d), make([]float64, d), make([]float64, d),
		}
	}
}

// Receive demodulates one (re)transmission at redundancy version rv,
// accumulates its soft bits into the HARQ buffers, and attempts to decode
// from the combined evidence.
func (h *HARQReceiver) Receive(iq [][]complex128, n0 float64, rv int) (Result, error) {
	if rv < 0 || rv > 3 {
		return Result{}, fmt.Errorf("phy: redundancy version %d out of 0..3", rv)
	}
	llrs, err := h.rx.SoftBits(iq, n0)
	if err != nil {
		return Result{}, err
	}
	h.Transmissions++
	seg := h.rx.layout.seg
	res := Result{
		BlockOK:         make([]bool, seg.C),
		BlockIterations: make([]int, seg.C),
	}
	blocks := make([][]byte, seg.C)
	for r := 0; r < seg.C; r++ {
		e := h.rx.layout.es[r]
		off := h.rx.layout.offs[r]
		if err := h.rx.rms[r].DematchInto(h.soft[r][0], h.soft[r][1], h.soft[r][2], llrs[off:off+e], rv); err != nil {
			return Result{}, err
		}
		check := func(b []byte) bool {
			if seg.C > 1 {
				return bits.CheckCRC24B(b)
			}
			return bits.CheckCRC24A(b[seg.F:])
		}
		// Combined retransmissions can fill systematic punctures, so the
		// raw pre-check may genuinely pass here even when the first rv
		// could not cover it; always leave it on for HARQ decodes.
		h.rx.decoders[r].PrecheckRaw = true
		dres := h.rx.decoders[r].Decode(h.soft[r][0], h.soft[r][1], h.soft[r][2], check)
		blocks[r] = append([]byte(nil), dres.Bits...)
		res.BlockOK[r] = dres.OK
		res.BlockIterations[r] = dres.Iterations
		if dres.Iterations > res.Iterations {
			res.Iterations = dres.Iterations
		}
	}
	tb, err := seg.Join(blocks)
	if err == nil && bits.CheckCRC24A(tb) {
		res.OK = true
		res.Payload = tb[:len(tb)-24]
	}
	return res, nil
}

// SoftBits runs the front half of the receive chain (FFT, channel
// estimation, demod) serially and returns a copy of the descrambled
// codeword LLRs — the input to rate dematching. HARQ uses it to combine
// across transmissions; it is also the natural seam for external decoders.
func (rx *Receiver) SoftBits(iq [][]complex128, n0 float64) ([]float64, error) {
	stages, err := rx.Pipeline(iq, n0)
	if err != nil {
		return nil, err
	}
	for _, st := range stages {
		if st.Name == TaskDecode {
			break
		}
		for _, sub := range st.Subtasks {
			sub()
		}
	}
	out := make([]float64, len(rx.llrs))
	copy(out, rx.llrs)
	return out, nil
}

// HARQBudgetSubframes is the earliest retransmission distance: the NACK
// leaves in downlink subframe N+4 and the retransmission arrives 4
// subframes later (8 ms round trip), per the §2.4 timeline.
const HARQBudgetSubframes = 2 * lte.HARQDeadlineSubframes
