package phy

import (
	"fmt"
	"math"

	"rtopex/internal/bits"
	"rtopex/internal/fft"
	"rtopex/internal/lte"
	"rtopex/internal/modulation"
	"rtopex/internal/sequence"
	"rtopex/internal/turbo"
)

// Downlink (PDSCH) chain — the Tx-processing side of the paper's Fig. 8
// timeline: the C-RAN node must encode the response subframe (carrying the
// ACK/NACK and downlink data) starting 1 ms before its over-the-air
// transmission. The chain shares the coding stack with the uplink but uses
// plain OFDM (no SC-FDMA transform precoding) and cell-specific reference
// signals (CRS) scattered through the grid instead of full DM-RS symbols.

// crsSymbols are the OFDM symbols carrying CRS for antenna port 0
// (symbols 0 and 4 of each slot).
var crsSymbols = []int{0, 4, 7, 11}

// crsSpacing is the CRS frequency stride (one pilot every 6 subcarriers).
const crsSpacing = 6

// crsShift returns the cell-specific frequency shift of the CRS on symbol
// l: ports alternate a 3-subcarrier offset between the slot's two CRS
// symbols, rotated by the cell identity.
func crsShift(cellID uint16, l int) int {
	base := int(cellID) % crsSpacing
	if l == 4 || l == 11 {
		return (base + 3) % crsSpacing
	}
	return base
}

// isCRS reports whether (symbol l, subcarrier k) carries a CRS pilot.
func isCRS(cellID uint16, l, k int) bool {
	for _, cl := range crsSymbols {
		if cl == l {
			return k%crsSpacing == crsShift(cellID, l)
		}
	}
	return false
}

// dlDataREs counts PDSCH data REs per subframe for a bandwidth.
func dlDataREs(cellID uint16, bw lte.Bandwidth) int {
	m := bw.Subcarriers()
	n := m * lte.SymbolsPerSubframe
	for _, l := range crsSymbols {
		_ = l
		n -= m / crsSpacing
	}
	return n
}

// dlCodingLayout mirrors codingLayout for the downlink RE budget.
func newDLCodingLayout(cfg Config) (*codingLayout, error) {
	tbs, scheme, err := lte.TransportBlockSize(cfg.MCS, cfg.Bandwidth.PRB)
	if err != nil {
		return nil, err
	}
	g := dlDataREs(cfg.CellID, cfg.Bandwidth) * scheme.Order()
	seg, err := turbo.Segment(tbs + 24)
	if err != nil {
		return nil, err
	}
	es, err := turbo.PerBlockE(g, seg.C, scheme.Order())
	if err != nil {
		return nil, err
	}
	offs := make([]int, seg.C)
	pos := 0
	for r := range es {
		offs[r] = pos
		pos += es[r]
	}
	return &codingLayout{tbs: tbs, g: g, scheme: scheme, seg: seg, es: es, offs: offs}, nil
}

// DLTransmitter encodes PDSCH subframes — the C-RAN node's Tx processing.
type DLTransmitter struct {
	cfg    Config
	layout *codingLayout
	plan   *fft.Plan
	crs    []complex128 // pilot values, one per (symbol, pilot index)
}

// NewDLTransmitter validates cfg and precomputes the downlink layout.
func NewDLTransmitter(cfg Config) (*DLTransmitter, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	layout, err := newDLCodingLayout(cfg)
	if err != nil {
		return nil, err
	}
	plan, err := fft.NewPlan(cfg.Bandwidth.FFTSize)
	if err != nil {
		return nil, err
	}
	return &DLTransmitter{
		cfg:    cfg,
		layout: layout,
		plan:   plan,
		crs:    pilotSequence(cfg.CellID^0x2a5, crsPilotCount(cfg.Bandwidth)),
	}, nil
}

func crsPilotCount(bw lte.Bandwidth) int {
	return len(crsSymbols) * bw.Subcarriers() / crsSpacing
}

// TBS returns the downlink transport block size in bits.
func (tx *DLTransmitter) TBS() int { return tx.layout.tbs }

// CodeBlocks returns the number of turbo code blocks.
func (tx *DLTransmitter) CodeBlocks() int { return tx.layout.seg.C }

// Transmit encodes a downlink transport block into one OFDM subframe.
func (tx *DLTransmitter) Transmit(payload []byte) ([]complex128, error) {
	if len(payload) != tx.layout.tbs {
		return nil, fmt.Errorf("phy: payload %d bits, want TBS %d", len(payload), tx.layout.tbs)
	}
	// Coding: identical stack to the uplink.
	tb := bits.AppendCRC(append([]byte(nil), payload...), bits.CRC24A(payload), 24)
	blocks, err := tx.layout.seg.Split(tb)
	if err != nil {
		return nil, err
	}
	codeword := make([]byte, 0, tx.layout.g)
	for r, blk := range blocks {
		streams, err := turbo.EncodeStreams(blk)
		if err != nil {
			return nil, err
		}
		rm, err := turbo.NewRateMatcher(len(blk))
		if err != nil {
			return nil, err
		}
		matched, err := rm.Match(streams, tx.layout.es[r], 0)
		if err != nil {
			return nil, err
		}
		codeword = append(codeword, matched...)
	}
	scr := sequence.NewScrambler(sequence.PUSCHInit(tx.cfg.RNTI, 0, tx.cfg.Subframe, tx.cfg.CellID), len(codeword))
	scr.Apply(codeword)
	syms := modulation.Map(tx.layout.scheme, codeword)

	// OFDM mapping: walk the grid in (symbol, subcarrier) order, placing
	// CRS pilots at their positions and data everywhere else.
	bw := tx.cfg.Bandwidth
	m := bw.Subcarriers()
	n := bw.FFTSize
	sqrtN := math.Sqrt(float64(n))
	out := make([]complex128, 0, bw.SamplesPerSubframe())
	si, pi := 0, 0
	for l := 0; l < lte.SymbolsPerSubframe; l++ {
		grid := make([]complex128, n)
		for k := 0; k < m; k++ {
			bin := subcarrierBin(k, m, n)
			if isCRS(tx.cfg.CellID, l, k) {
				grid[bin] = tx.crs[pi]
				pi++
			} else {
				grid[bin] = syms[si]
				si++
			}
		}
		tdom := make([]complex128, n)
		copy(tdom, grid)
		tx.plan.Inverse(tdom)
		for i := range tdom {
			tdom[i] *= complex(sqrtN, 0)
		}
		cp := bw.CPLen(l)
		out = append(out, tdom[n-cp:]...)
		out = append(out, tdom...)
	}
	if si != len(syms) {
		return nil, fmt.Errorf("phy: mapped %d of %d data symbols", si, len(syms))
	}
	return out, nil
}

// DLReceiver is the UE-side PDSCH receiver used to validate the node's Tx
// processing end to end: CRS-based channel estimation with frequency
// interpolation, MRC equalization, demapping and turbo decoding.
type DLReceiver struct {
	cfg    Config
	layout *codingLayout
	plan   *fft.Plan
	crs    []complex128

	rms      []*turbo.RateMatcher
	decoders []*turbo.Decoder
	descramb []byte
}

// NewDLReceiver builds a UE-side receiver for cfg.
func NewDLReceiver(cfg Config) (*DLReceiver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	layout, err := newDLCodingLayout(cfg)
	if err != nil {
		return nil, err
	}
	plan, err := fft.NewPlan(cfg.Bandwidth.FFTSize)
	if err != nil {
		return nil, err
	}
	rx := &DLReceiver{
		cfg:    cfg,
		layout: layout,
		plan:   plan,
		crs:    pilotSequence(cfg.CellID^0x2a5, crsPilotCount(cfg.Bandwidth)),
	}
	for i, k := range layout.seg.Sizes {
		rm, err := turbo.NewRateMatcher(k)
		if err != nil {
			return nil, err
		}
		dec, err := turbo.NewDecoder(k)
		if err != nil {
			return nil, err
		}
		dec.MaxIterations = cfg.maxIter()
		dec.Path = cfg.DecoderPath
		dec.PrecheckRaw = rm.CoversSystematic(layout.es[i], 0)
		rx.rms = append(rx.rms, rm)
		rx.decoders = append(rx.decoders, dec)
	}
	scr := sequence.NewScrambler(sequence.PUSCHInit(cfg.RNTI, 0, cfg.Subframe, cfg.CellID), layout.g)
	rx.descramb = make([]byte, layout.g)
	for i := range rx.descramb {
		rx.descramb[i] = scr.Bit(i)
	}
	return rx, nil
}

// TBS returns the downlink transport block size in bits.
func (rx *DLReceiver) TBS() int { return rx.layout.tbs }

// Process decodes one downlink subframe from per-antenna samples.
func (rx *DLReceiver) Process(iq [][]complex128, n0 float64) (Result, error) {
	bw := rx.cfg.Bandwidth
	if len(iq) != rx.cfg.Antennas {
		return Result{}, fmt.Errorf("phy: %d antenna streams, want %d", len(iq), rx.cfg.Antennas)
	}
	m := bw.Subcarriers()
	n := bw.FFTSize

	// OFDM demodulation into the grid.
	grid := make([][][]complex128, rx.cfg.Antennas)
	for a := range grid {
		if len(iq[a]) != bw.SamplesPerSubframe() {
			return Result{}, fmt.Errorf("phy: antenna %d has %d samples", a, len(iq[a]))
		}
		grid[a] = make([][]complex128, lte.SymbolsPerSubframe)
		pos := 0
		scale := complex(1/math.Sqrt(float64(n)), 0)
		for l := 0; l < lte.SymbolsPerSubframe; l++ {
			pos += bw.CPLen(l)
			buf := make([]complex128, n)
			copy(buf, iq[a][pos:pos+n])
			rx.plan.Forward(buf)
			row := make([]complex128, m)
			for k := 0; k < m; k++ {
				row[k] = buf[subcarrierBin(k, m, n)] * scale
			}
			grid[a][l] = row
			pos += n
		}
	}

	// CRS channel estimation: least squares at pilot positions, averaged
	// across the four CRS symbols, linearly interpolated in frequency.
	chEst := make([][]complex128, rx.cfg.Antennas)
	for a := 0; a < rx.cfg.Antennas; a++ {
		chEst[a] = rx.estimateFromCRS(grid[a])
	}

	// Equalize data REs in grid order, demap and descramble.
	llrs := make([]float64, 0, rx.layout.g)
	for l := 0; l < lte.SymbolsPerSubframe; l++ {
		var eq []complex128
		var invDenSum float64
		for k := 0; k < m; k++ {
			if isCRS(rx.cfg.CellID, l, k) {
				continue
			}
			var num complex128
			var den float64
			for a := 0; a < rx.cfg.Antennas; a++ {
				h := chEst[a][k]
				y := grid[a][l][k]
				num += complex(real(h), -imag(h)) * y
				den += real(h)*real(h) + imag(h)*imag(h)
			}
			if den < 1e-12 {
				den = 1e-12
			}
			eq = append(eq, num/complex(den, 0))
			invDenSum += 1 / den
		}
		n0Eff := n0 * invDenSum / float64(len(eq))
		llrs = append(llrs, modulation.Demap(rx.layout.scheme, eq, n0Eff)...)
	}
	if len(llrs) != rx.layout.g {
		return Result{}, fmt.Errorf("phy: %d LLRs, want %d", len(llrs), rx.layout.g)
	}
	for i := range llrs {
		if rx.descramb[i] == 1 {
			llrs[i] = -llrs[i]
		}
	}

	// Decode per code block.
	seg := rx.layout.seg
	res := Result{BlockOK: make([]bool, seg.C), BlockIterations: make([]int, seg.C)}
	blocks := make([][]byte, seg.C)
	for r := 0; r < seg.C; r++ {
		e := rx.layout.es[r]
		off := rx.layout.offs[r]
		s0, s1, s2, err := rx.rms[r].Dematch(llrs[off:off+e], 0)
		if err != nil {
			return Result{}, err
		}
		check := func(b []byte) bool {
			if seg.C > 1 {
				return bits.CheckCRC24B(b)
			}
			return bits.CheckCRC24A(b[seg.F:])
		}
		dres := rx.decoders[r].Decode(s0, s1, s2, check)
		blocks[r] = append([]byte(nil), dres.Bits...)
		res.BlockOK[r] = dres.OK
		res.BlockIterations[r] = dres.Iterations
		if dres.Iterations > res.Iterations {
			res.Iterations = dres.Iterations
		}
	}
	tb, err := seg.Join(blocks)
	if err == nil && bits.CheckCRC24A(tb) {
		res.OK = true
		res.Payload = tb[:len(tb)-24]
	}
	return res, nil
}

// estimateFromCRS produces a per-subcarrier channel estimate from the
// scattered pilots: LS at each pilot, time-averaged over the CRS symbols
// that share a frequency offset, then linear interpolation across
// frequency (with edge extrapolation held constant).
func (rx *DLReceiver) estimateFromCRS(sym [][]complex128) []complex128 {
	m := rx.cfg.Bandwidth.Subcarriers()
	type obs struct {
		sum complex128
		n   int
	}
	at := make(map[int]*obs)
	pi := 0
	for _, l := range crsSymbols {
		shift := crsShift(rx.cfg.CellID, l)
		for k := shift; k < m; k += crsSpacing {
			ls := sym[l][k] / rx.crs[pi]
			pi++
			o := at[k]
			if o == nil {
				o = &obs{}
				at[k] = o
			}
			o.sum += ls
			o.n++
		}
	}
	// Collect pilot subcarriers in order.
	var ks []int
	for k := 0; k < m; k++ {
		if at[k] != nil {
			ks = append(ks, k)
		}
	}
	est := make([]complex128, m)
	for i := 0; i < len(ks); i++ {
		k := ks[i]
		est[k] = at[k].sum / complex(float64(at[k].n), 0)
	}
	// Interpolate between pilots; hold edges.
	for i := 0; i+1 < len(ks); i++ {
		k0, k1 := ks[i], ks[i+1]
		for k := k0 + 1; k < k1; k++ {
			t := float64(k-k0) / float64(k1-k0)
			est[k] = est[k0]*complex(1-t, 0) + est[k1]*complex(t, 0)
		}
	}
	for k := 0; k < ks[0]; k++ {
		est[k] = est[ks[0]]
	}
	for k := ks[len(ks)-1] + 1; k < m; k++ {
		est[k] = est[ks[len(ks)-1]]
	}
	return est
}
