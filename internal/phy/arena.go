package phy

import (
	"sync"
	"sync/atomic"

	"rtopex/internal/obs"
)

// Arena lends out Receivers keyed by their Config, backed by sync.Pool so
// that steady-state operation recycles fully warmed receivers (FFT plans,
// interleaver/rate-matcher tables, decoder trellis scratch) instead of
// rebuilding them — construction at MCS 27 touches several megabytes of
// tables, far too much for a per-subframe path. Distinct configs get
// distinct pools; a Get after a same-config Put is a hit.
//
// An Arena is safe for concurrent use. Receivers themselves are not: a
// receiver is owned exclusively by its borrower between Get and Put.
type Arena struct {
	mu    sync.Mutex
	pools map[Config]*sync.Pool

	hits   atomic.Int64
	misses atomic.Int64

	// optional published counters (set by PublishTo)
	hitCtr  atomic.Pointer[obs.Counter]
	missCtr atomic.Pointer[obs.Counter]
}

// NewArena builds an empty receiver arena.
func NewArena() *Arena {
	return &Arena{pools: make(map[Config]*sync.Pool)}
}

// Get borrows a receiver for cfg, constructing one only when the pool is
// empty (a miss) or when cfg is invalid (the error mirrors NewReceiver's).
func (a *Arena) Get(cfg Config) (*Receiver, error) {
	a.mu.Lock()
	p := a.pools[cfg]
	if p == nil {
		p = &sync.Pool{}
		a.pools[cfg] = p
	}
	a.mu.Unlock()
	if v := p.Get(); v != nil {
		a.hits.Add(1)
		if c := a.hitCtr.Load(); c != nil {
			c.Inc()
		}
		return v.(*Receiver), nil
	}
	rx, err := NewReceiver(cfg)
	if err != nil {
		return nil, err
	}
	a.misses.Add(1)
	if c := a.missCtr.Load(); c != nil {
		c.Inc()
	}
	return rx, nil
}

// Put returns a borrowed receiver to the arena. The caller must not use rx
// (or any Result it produced) afterwards.
func (a *Arena) Put(rx *Receiver) {
	if rx == nil {
		return
	}
	a.mu.Lock()
	p := a.pools[rx.cfg]
	if p == nil {
		p = &sync.Pool{}
		a.pools[rx.cfg] = p
	}
	a.mu.Unlock()
	p.Put(rx)
}

// Stats reports how many Gets were served from the pool (hits) versus by
// constructing a new receiver (misses).
func (a *Arena) Stats() (hits, misses int64) {
	return a.hits.Load(), a.misses.Load()
}

// PublishTo mirrors the arena's hit/miss counters into reg as
// rtopex_phy_arena_{hits,misses}_total. Call before handing the arena to
// workers; already-accumulated counts are carried over.
func (a *Arena) PublishTo(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp("rtopex_phy_arena_hits_total", "Receiver arena gets served from the pool.")
	reg.SetHelp("rtopex_phy_arena_misses_total", "Receiver arena gets that built a new receiver.")
	hit := reg.Counter("rtopex_phy_arena_hits_total")
	miss := reg.Counter("rtopex_phy_arena_misses_total")
	hit.Add(a.hits.Load())
	miss.Add(a.misses.Load())
	a.hitCtr.Store(hit)
	a.missCtr.Store(miss)
}
