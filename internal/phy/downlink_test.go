package phy

import (
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/lte"
	"rtopex/internal/stats"
)

func runDLLink(t *testing.T, cfg Config, snrDB float64, seed uint64) (payload []byte, res Result) {
	t.Helper()
	tx, err := NewDLTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload = make([]byte, tx.TBS())
	r := stats.NewRNG(seed)
	bits.RandomBits(payload, r.Uint64)
	wave, err := tx.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(snrDB, cfg.Antennas, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	iq, _ := ch.Apply(wave)
	rx, err := NewDLReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = rx.Process(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	return payload, res
}

func TestDownlinkLinkAcrossMCS(t *testing.T) {
	for _, mcs := range []int{0, 9, 15, 21, 27} {
		cfg := testConfig(mcs, 2)
		payload, res := runDLLink(t, cfg, 30, uint64(500+mcs))
		if !res.OK {
			t.Fatalf("MCS %d: downlink decode failed at 30 dB", mcs)
		}
		if bits.HammingDistance(res.Payload, payload) != 0 {
			t.Fatalf("MCS %d: payload corrupted", mcs)
		}
	}
}

func TestDownlinkSingleAntennaAnd5MHz(t *testing.T) {
	cfg := testConfig(13, 1)
	if payload, res := runDLLink(t, cfg, 30, 600); !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("single-antenna downlink failed")
	}
	cfg5 := testConfig(10, 2)
	cfg5.Bandwidth = lte.BW5MHz
	if payload, res := runDLLink(t, cfg5, 30, 601); !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("5 MHz downlink failed")
	}
}

func TestDownlinkOverMultipath(t *testing.T) {
	// Scattered CRS with frequency interpolation must track a selective
	// channel.
	cfg := testConfig(10, 2)
	tx, _ := NewDLTransmitter(cfg)
	payload := make([]byte, tx.TBS())
	r := stats.NewRNG(602)
	bits.RandomBits(payload, r.Uint64)
	wave, _ := tx.Transmit(payload)
	ch, err := channel.NewMultipath(30, 2, channel.EPA, 603)
	if err != nil {
		t.Fatal(err)
	}
	iq, _ := ch.Apply(wave)
	rx, _ := NewDLReceiver(cfg)
	res, err := rx.Process(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("downlink EPA link failed")
	}
}

func TestDownlinkREAccounting(t *testing.T) {
	// 10 MHz: 8400 total REs minus 4 CRS symbols × 100 pilots = 8000.
	if got := dlDataREs(42, lte.BW10MHz); got != 8000 {
		t.Fatalf("data REs = %d, want 8000", got)
	}
	if got := dlDataREs(42, lte.BW5MHz); got != 25*12*14-4*50 {
		t.Fatalf("5 MHz data REs = %d", got)
	}
}

func TestCRSPattern(t *testing.T) {
	// Pilot stride 6, cell-dependent shift, offset by 3 on the second CRS
	// symbol of each slot.
	cell := uint16(7) // shift 1
	if !isCRS(cell, 0, 1) || isCRS(cell, 0, 2) {
		t.Fatal("symbol 0 pattern wrong")
	}
	if !isCRS(cell, 4, 4) || isCRS(cell, 4, 1) {
		t.Fatal("symbol 4 pattern wrong (3-offset)")
	}
	if isCRS(cell, 1, 1) || isCRS(cell, 13, 1) {
		t.Fatal("non-CRS symbol carries pilots")
	}
	count := 0
	for l := 0; l < lte.SymbolsPerSubframe; l++ {
		for k := 0; k < lte.BW10MHz.Subcarriers(); k++ {
			if isCRS(cell, l, k) {
				count++
			}
		}
	}
	if count != 400 {
		t.Fatalf("%d CRS REs, want 400", count)
	}
}

func TestDownlinkValidation(t *testing.T) {
	if _, err := NewDLTransmitter(Config{Bandwidth: lte.BW10MHz, MCS: 0}); err == nil {
		t.Fatal("0 antennas accepted")
	}
	tx, _ := NewDLTransmitter(testConfig(5, 1))
	if _, err := tx.Transmit(make([]byte, 3)); err == nil {
		t.Fatal("wrong payload size accepted")
	}
	rx, _ := NewDLReceiver(testConfig(5, 2))
	if _, err := rx.Process([][]complex128{make([]complex128, 100)}, 0.01); err == nil {
		t.Fatal("wrong antenna count accepted")
	}
	if _, err := rx.Process([][]complex128{make([]complex128, 9), make([]complex128, 9)}, 0.01); err == nil {
		t.Fatal("short samples accepted")
	}
}

func TestDownlinkFailsAtLowSNR(t *testing.T) {
	cfg := testConfig(27, 2)
	_, res := runDLLink(t, cfg, -5, 604)
	if res.OK {
		t.Fatal("downlink CRC passed at -5 dB")
	}
}

func BenchmarkDownlinkTransmitMCS27(b *testing.B) {
	tx, _ := NewDLTransmitter(testConfig(27, 2))
	r := stats.NewRNG(605)
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = tx.Transmit(payload)
	}
}
