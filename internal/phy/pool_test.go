package phy

import (
	"sync/atomic"
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/obs"
	"rtopex/internal/stats"
)

func TestPoolRunsEverySubtaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		var counts [100]atomic.Int64
		tasks := make([]func(), len(counts))
		for i := range tasks {
			i := i
			tasks[i] = func() { counts[i].Add(1) }
		}
		for round := 0; round < 50; round++ {
			p.Run(tasks)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 50 {
				t.Fatalf("workers=%d: task %d ran %d times, want 50", workers, i, got)
			}
		}
		p.Close()
	}
}

func TestPoolBarrierBetweenStages(t *testing.T) {
	// Stage N+1 must observe every write of stage N.
	p := NewPool(4)
	defer p.Close()
	buf := make([]int, 64)
	fill := make([]func(), len(buf))
	var sum atomic.Int64
	verify := make([]func(), len(buf))
	for i := range buf {
		i := i
		fill[i] = func() { buf[i] = i + 1 }
		verify[i] = func() { sum.Add(int64(buf[i])) }
	}
	want := int64(len(buf) * (len(buf) + 1) / 2)
	for round := 0; round < 25; round++ {
		for i := range buf {
			buf[i] = 0
		}
		sum.Store(0)
		p.RunStages([]Stage{{Name: "fill", Subtasks: fill}, {Name: "verify", Subtasks: verify}})
		if got := sum.Load(); got != want {
			t.Fatalf("round %d: stage barrier leaked: sum %d, want %d", round, got, want)
		}
	}
}

func TestPoolZeroAndSingleWork(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.Run(nil)
	ran := false
	p.Run([]func(){func() { ran = true }})
	if !ran {
		t.Fatal("single subtask did not run")
	}
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	if NewPool(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
}

// TestParallelMatchesSerialGrid is the bit-exactness regression for the
// parallel fast path: across random seeds × MCS × antenna configs × SNRs,
// ProcessParallel must produce exactly the Result of the serial Process —
// payload bits, CRC verdicts, and per-block iteration counts. Run under
// -race in CI, this also shakes out data races between stage subtasks.
func TestParallelMatchesSerialGrid(t *testing.T) {
	type gridPoint struct {
		mcs, antennas int
		snrDB         float64
	}
	grid := []gridPoint{
		{0, 1, 10}, {0, 2, 0}, {5, 2, 12}, {5, 4, 4},
		{13, 1, 22}, {13, 2, 8}, {16, 2, 14}, {21, 2, 25},
		{21, 4, 10}, {27, 1, 30}, {27, 2, 18}, {27, 4, 12},
	}
	pool := NewPool(8)
	defer pool.Close()
	seeds := 2 // per grid point → 24 cases ≥ the required 20
	if testing.Short() {
		seeds = 1
	}
	for _, g := range grid {
		cfg := testConfig(g.mcs, g.antennas)
		tx, err := NewTransmitter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := NewReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < seeds; s++ {
			seed := uint64(1000 + 17*g.mcs + 3*g.antennas + s)
			payload := make([]byte, tx.TBS())
			r := stats.NewRNG(seed)
			bits.RandomBits(payload, r.Uint64)
			wave, err := tx.Transmit(payload)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := channel.New(g.snrDB, g.antennas, seed+1)
			if err != nil {
				t.Fatal(err)
			}
			iq, _ := ch.Apply(wave)

			want, err := serial.Process(iq, ch.N0())
			if err != nil {
				t.Fatal(err)
			}
			got, err := pool.ProcessParallel(par, iq, ch.N0())
			if err != nil {
				t.Fatal(err)
			}

			if got.OK != want.OK || got.Iterations != want.Iterations {
				t.Fatalf("mcs=%d ant=%d snr=%v seed=%d: parallel (ok=%v it=%d) vs serial (ok=%v it=%d)",
					g.mcs, g.antennas, g.snrDB, seed, got.OK, got.Iterations, want.OK, want.Iterations)
			}
			if bits.HammingDistance(got.Payload, want.Payload) != 0 {
				t.Fatalf("mcs=%d ant=%d snr=%v seed=%d: payload bits differ", g.mcs, g.antennas, g.snrDB, seed)
			}
			for r := range want.BlockOK {
				if got.BlockOK[r] != want.BlockOK[r] || got.BlockIterations[r] != want.BlockIterations[r] {
					t.Fatalf("mcs=%d ant=%d snr=%v seed=%d block %d: (ok=%v it=%d) vs (ok=%v it=%d)",
						g.mcs, g.antennas, g.snrDB, seed, r,
						got.BlockOK[r], got.BlockIterations[r], want.BlockOK[r], want.BlockIterations[r])
				}
			}
		}
	}
}

// TestProcessAllocFree: the steady-state serial hot path must not allocate.
func TestProcessAllocFree(t *testing.T) {
	cfg := testConfig(27, 2)
	tx, _ := NewTransmitter(cfg)
	wave, _ := tx.Transmit(randomPayload(t, tx, 600))
	ch, _ := channel.New(30, 2, 601)
	iq, _ := ch.Apply(wave)
	rx, _ := NewReceiver(cfg)
	if _, err := rx.Process(iq, ch.N0()); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := rx.Process(iq, ch.N0()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Process allocates %.1f objects per subframe, want 0", allocs)
	}
}

func TestArenaHitsAndMisses(t *testing.T) {
	a := NewArena()
	reg := obs.NewRegistry()
	a.PublishTo(reg)
	cfg := testConfig(13, 2)

	rx1, err := a.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := a.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first Get: hits=%d misses=%d, want 0/1", h, m)
	}
	// sync.Pool may drop a Put (it deliberately does so at random under the
	// race detector), so loop until a recycle is observed.
	recycled := false
	for try := 0; try < 50 && !recycled; try++ {
		a.Put(rx1)
		rx2, err := a.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		recycled = rx2 == rx1
		rx1 = rx2
	}
	if !recycled {
		t.Fatal("pool never recycled the receiver")
	}
	hits, misses := a.Stats()
	if hits < 1 {
		t.Fatalf("hits = %d, want >= 1", hits)
	}

	// A different config is its own pool.
	other := testConfig(5, 1)
	if _, err := a.Get(other); err != nil {
		t.Fatal(err)
	}
	if _, m := a.Stats(); m != misses+1 {
		t.Fatalf("second config misses = %d, want %d", m, misses+1)
	}
	hits, misses = a.Stats()

	if got := reg.Counter("rtopex_phy_arena_hits_total").Value(); got != hits {
		t.Fatalf("published hit counter = %d, stats say %d", got, hits)
	}
	if got := reg.Counter("rtopex_phy_arena_misses_total").Value(); got != misses {
		t.Fatalf("published miss counter = %d, stats say %d", got, misses)
	}

	if _, err := a.Get(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	a.Put(nil) // must not panic
}

// TestArenaRecycledReceiverDecodes: a receiver that went through the arena
// must keep decoding correctly (its scratch is reset per subframe).
func TestArenaRecycledReceiverDecodes(t *testing.T) {
	a := NewArena()
	cfg := testConfig(21, 2)
	tx, _ := NewTransmitter(cfg)
	ch, _ := channel.New(30, 2, 650)
	for round := 0; round < 3; round++ {
		payload := randomPayload(t, tx, uint64(660+round))
		wave, _ := tx.Transmit(payload)
		iq, _ := ch.Apply(wave)
		rx, err := a.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rx.Process(iq, ch.N0())
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
			t.Fatalf("round %d: recycled receiver failed to decode", round)
		}
		a.Put(rx)
	}
	if h, _ := a.Stats(); h < 1 {
		t.Fatal("no arena hits across rounds")
	}
}
