package phy

import (
	"testing"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/lte"
	"rtopex/internal/stats"
)

func testConfig(mcs, antennas int) Config {
	return Config{
		Bandwidth: lte.BW10MHz,
		MCS:       mcs,
		Antennas:  antennas,
		RNTI:      0x1234,
		CellID:    42,
		Subframe:  0,
	}
}

func randomPayload(t *testing.T, tx *Transmitter, seed uint64) []byte {
	t.Helper()
	p := make([]byte, tx.TBS())
	r := stats.NewRNG(seed)
	bits.RandomBits(p, r.Uint64)
	return p
}

// runLink encodes, passes through the channel and decodes one subframe.
func runLink(t *testing.T, cfg Config, snrDB float64, seed uint64) (payload []byte, res Result) {
	t.Helper()
	tx, err := NewTransmitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload = randomPayload(t, tx, seed)
	wave, err := tx.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(snrDB, cfg.Antennas, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	iq, _ := ch.Apply(wave)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = rx.Process(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	return payload, res
}

func TestLinkHighSNRAllMCSClasses(t *testing.T) {
	// One MCS per modulation class at 30 dB (the paper's evaluation SNR)
	// must decode cleanly end to end.
	for _, mcs := range []int{0, 5, 13, 21, 27} {
		payload, res := runLink(t, testConfig(mcs, 2), 30, uint64(100+mcs))
		if !res.OK {
			t.Fatalf("MCS %d: decode failed at 30 dB", mcs)
		}
		if bits.HammingDistance(res.Payload, payload) != 0 {
			t.Fatalf("MCS %d: payload corrupted", mcs)
		}
	}
}

func TestLinkSingleAntenna(t *testing.T) {
	payload, res := runLink(t, testConfig(10, 1), 30, 7)
	if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("single-antenna link failed")
	}
}

func TestLinkFourAntennas(t *testing.T) {
	payload, res := runLink(t, testConfig(27, 4), 25, 8)
	if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("4-antenna link failed")
	}
}

func TestLink5MHz(t *testing.T) {
	cfg := testConfig(16, 2)
	cfg.Bandwidth = lte.BW5MHz
	payload, res := runLink(t, cfg, 30, 9)
	if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("5 MHz link failed")
	}
}

func TestLinkFailsAtVeryLowSNR(t *testing.T) {
	// MCS 27 at -5 dB cannot decode; the CRC must catch it (OK=false), and
	// the decoder must have burned its full iteration budget.
	_, res := runLink(t, testConfig(27, 2), -5, 10)
	if res.OK {
		t.Fatal("CRC passed at -5 dB — impossible")
	}
	if res.Iterations != 4 {
		t.Fatalf("iterations = %d, want Lm=4 when decoding fails", res.Iterations)
	}
}

func TestIterationCountRisesAsSNRFalls(t *testing.T) {
	// The paper's Fig. 3(b) mechanism: lower SNR ⇒ more turbo iterations.
	cfg := testConfig(21, 2)
	cfg.MaxIterations = 8
	avg := func(snr float64) float64 {
		sum := 0
		const trials = 5
		for i := 0; i < trials; i++ {
			_, res := runLink(t, cfg, snr, uint64(200+i))
			sum += res.Iterations
		}
		return float64(sum) / trials
	}
	hi, lo := avg(30), avg(11)
	if lo < hi {
		t.Fatalf("iterations at 11 dB (%v) below 30 dB (%v)", lo, hi)
	}
}

func TestCodeBlockCount(t *testing.T) {
	// The paper: "at MCS 27, LTE utilizes 6 code-blocks".
	tx, err := NewTransmitter(testConfig(27, 2))
	if err != nil {
		t.Fatal(err)
	}
	if tx.CodeBlocks() != 6 {
		t.Fatalf("MCS 27 code blocks = %d, want 6", tx.CodeBlocks())
	}
	tx0, _ := NewTransmitter(testConfig(0, 2))
	if tx0.CodeBlocks() != 1 {
		t.Fatalf("MCS 0 code blocks = %d, want 1", tx0.CodeBlocks())
	}
}

func TestPipelineSubtaskCounts(t *testing.T) {
	cfg := testConfig(27, 2)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := NewTransmitter(cfg)
	wave, _ := tx.Transmit(randomPayload(t, tx, 11))
	ch, _ := channel.New(30, 2, 12)
	iq, _ := ch.Apply(wave)
	stages, err := rx.Pipeline(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("%d stages, want 4", len(stages))
	}
	wants := map[TaskName]int{
		TaskFFT:    2 * 14, // antennas × symbols
		TaskChEst:  2,
		TaskDemod:  12,
		TaskDecode: 6,
	}
	for _, st := range stages {
		if got := len(st.Subtasks); got != wants[st.Name] {
			t.Errorf("stage %s has %d subtasks, want %d", st.Name, got, wants[st.Name])
		}
	}
}

func TestPipelineSubtasksRunConcurrently(t *testing.T) {
	// Running each stage's subtasks on goroutines must give the same result
	// as serial execution — this is what migration relies on.
	cfg := testConfig(27, 2)
	tx, _ := NewTransmitter(cfg)
	payload := randomPayload(t, tx, 13)
	wave, _ := tx.Transmit(payload)
	ch, _ := channel.New(30, 2, 14)
	iq, _ := ch.Apply(wave)

	rx, _ := NewReceiver(cfg)
	stages, err := rx.Pipeline(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stages {
		done := make(chan struct{}, len(st.Subtasks))
		for _, sub := range st.Subtasks {
			sub := sub
			go func() {
				sub()
				done <- struct{}{}
			}()
		}
		for range st.Subtasks {
			<-done
		}
	}
	res := rx.Result()
	if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("concurrent pipeline produced a wrong result")
	}
}

func TestReceiverReuseAcrossSubframes(t *testing.T) {
	cfg := testConfig(13, 2)
	tx, _ := NewTransmitter(cfg)
	rx, _ := NewReceiver(cfg)
	ch, _ := channel.New(30, 2, 15)
	for sf := 0; sf < 3; sf++ {
		payload := randomPayload(t, tx, uint64(300+sf))
		wave, _ := tx.Transmit(payload)
		iq, _ := ch.Apply(wave)
		res, err := rx.Process(iq, ch.N0())
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
			t.Fatalf("subframe %d failed on reused receiver", sf)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Bandwidth: lte.BW10MHz, MCS: 0, Antennas: 0},
		{Bandwidth: lte.Bandwidth{}, MCS: 0, Antennas: 1},
		{Bandwidth: lte.BW10MHz, MCS: 29, Antennas: 1},
		{Bandwidth: lte.BW10MHz, MCS: -1, Antennas: 1},
		{Bandwidth: lte.BW10MHz, MCS: 28, Antennas: 1}, // above paper max 27
	}
	for i, cfg := range bad {
		if _, err := NewReceiver(cfg); err == nil {
			t.Errorf("config %d accepted by receiver", i)
		}
		if _, err := NewTransmitter(cfg); err == nil {
			t.Errorf("config %d accepted by transmitter", i)
		}
	}
}

func TestTransmitRejectsWrongPayloadSize(t *testing.T) {
	tx, _ := NewTransmitter(testConfig(5, 1))
	if _, err := tx.Transmit(make([]byte, 10)); err == nil {
		t.Fatal("wrong payload size accepted")
	}
}

func TestPipelineRejectsWrongIQ(t *testing.T) {
	rx, _ := NewReceiver(testConfig(5, 2))
	if _, err := rx.Pipeline([][]complex128{make([]complex128, 15360)}, 0.001); err == nil {
		t.Fatal("1 antenna stream accepted for 2-antenna config")
	}
	if _, err := rx.Pipeline([][]complex128{make([]complex128, 100), make([]complex128, 100)}, 0.001); err == nil {
		t.Fatal("short sample stream accepted")
	}
}

func TestWaveformLength(t *testing.T) {
	tx, _ := NewTransmitter(testConfig(13, 1))
	wave, err := tx.Transmit(randomPayload(t, tx, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != lte.BW10MHz.SamplesPerSubframe() {
		t.Fatalf("waveform has %d samples, want %d", len(wave), lte.BW10MHz.SamplesPerSubframe())
	}
}

func TestRayleighChannel(t *testing.T) {
	cfg := testConfig(13, 4)
	tx, _ := NewTransmitter(cfg)
	payload := randomPayload(t, tx, 17)
	wave, _ := tx.Transmit(payload)
	ch, _ := channel.New(25, 4, 18)
	ch.Rayleigh = true
	iq, _ := ch.Apply(wave)
	rx, _ := NewReceiver(cfg)
	res, err := rx.Process(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("Rayleigh 4-antenna link failed at 25 dB")
	}
}

func TestChannelValidation(t *testing.T) {
	if _, err := channel.New(10, 0, 1); err == nil {
		t.Fatal("0 antennas accepted")
	}
}

func BenchmarkTransmitMCS27(b *testing.B) {
	tx, _ := NewTransmitter(testConfig(27, 2))
	r := stats.NewRNG(19)
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = tx.Transmit(payload)
	}
}

func BenchmarkReceiveMCS27N2(b *testing.B) {
	benchReceive(b, 27, 2)
}

func BenchmarkReceiveMCS0N2(b *testing.B) {
	benchReceive(b, 0, 2)
}

func benchReceive(b *testing.B, mcs, antennas int) {
	cfg := testConfig(mcs, antennas)
	tx, _ := NewTransmitter(cfg)
	r := stats.NewRNG(20)
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)
	wave, _ := tx.Transmit(payload)
	ch, _ := channel.New(30, antennas, 21)
	iq, _ := ch.Apply(wave)
	rx, _ := NewReceiver(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rx.Process(iq, ch.N0())
		if err != nil || !res.OK {
			b.Fatal("decode failed in benchmark")
		}
	}
}

func TestLinkOverMultipathChannel(t *testing.T) {
	// Frequency-selective EPA channel: per-subcarrier estimation and MRC
	// must still close the link at moderate MCS.
	cfg := testConfig(13, 2)
	tx, _ := NewTransmitter(cfg)
	payload := randomPayload(t, tx, 50)
	wave, _ := tx.Transmit(payload)
	ch, err := channel.NewMultipath(30, 2, channel.EPA, 51)
	if err != nil {
		t.Fatal(err)
	}
	iq, _ := ch.Apply(wave)
	rx, _ := NewReceiver(cfg)
	res, err := rx.Process(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("EPA multipath link failed at 30 dB")
	}
}

func TestLinkOverHarderMultipath(t *testing.T) {
	// EVA has 5x the delay spread; 4 antennas of diversity should still
	// close the link at a robust MCS.
	cfg := testConfig(8, 4)
	tx, _ := NewTransmitter(cfg)
	payload := randomPayload(t, tx, 52)
	wave, _ := tx.Transmit(payload)
	ch, err := channel.NewMultipath(25, 4, channel.EVA, 53)
	if err != nil {
		t.Fatal(err)
	}
	iq, _ := ch.Apply(wave)
	rx, _ := NewReceiver(cfg)
	res, err := rx.Process(iq, ch.N0())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("EVA multipath link failed")
	}
}

func TestBlindNoiseEstimation(t *testing.T) {
	// Passing n0 <= 0 makes the receiver estimate the noise power from the
	// DM-RS; the link must still close and the estimate must be near truth.
	cfg := testConfig(13, 2)
	tx, _ := NewTransmitter(cfg)
	payload := randomPayload(t, tx, 700)
	wave, _ := tx.Transmit(payload)
	ch, _ := channel.New(20, 2, 701)
	iq, _ := ch.Apply(wave)
	rx, _ := NewReceiver(cfg)
	res, err := rx.Process(iq, 0) // blind
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || bits.HammingDistance(res.Payload, payload) != 0 {
		t.Fatal("blind-noise link failed at 20 dB")
	}
	est := rx.EstimateNoise()
	truth := ch.N0()
	if est < truth/2 || est > truth*2 {
		t.Fatalf("noise estimate %v vs truth %v", est, truth)
	}
}
