package phy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeliner overlaps the processing of consecutive subframes — the paper's
// Fig. 5 pipelining: stage N of subframe j runs concurrently with stage N−1
// of subframe j+1, because the precedence constraints are per subframe, not
// global. Depth receivers are in flight at once, each borrowed from an
// Arena; when a shared Pool is supplied, every in-flight subframe drives its
// stages through a private Lane so their subtasks interleave on the same
// workers and no core idles while any subframe has runnable work.
//
// Submit blocks while the in-flight window is full, which is the
// backpressure bound: at most Depth subframes hold receivers (and their
// megabytes of decoder scratch) at any instant.
type Pipeliner struct {
	pc     PipelinerConfig
	jobs   chan pipeJob
	wg     sync.WaitGroup
	closed atomic.Bool
}

// PipelinerConfig configures a Pipeliner.
type PipelinerConfig struct {
	// Arena lends the in-flight receivers. Required.
	Arena *Arena
	// Pool, when non-nil with more than one worker, fans each stage's
	// subtasks out across the shared workers (each in-flight subframe on its
	// own Lane). Nil runs each subframe's stages serially on its pipeline
	// goroutine — cross-subframe overlap still happens, intra-stage fan-out
	// does not.
	Pool *Pool
	// Depth is the in-flight window: how many subframes may be processing
	// at once. Values below 1 mean 1 (serial, but still asynchronous).
	Depth int
	// OnStart, when non-nil, is called as a subframe leaves the Submit
	// queue and begins processing.
	OnStart func(tag uint64)
	// OnStage, when non-nil, is called after each pipeline stage completes.
	OnStage func(tag uint64, stage TaskName, elapsed time.Duration)
	// OnDone, when non-nil, is called with the subframe's outcome. res is
	// only valid during the call: it aliases the receiver's scratch, which
	// returns to the arena when OnDone does. Callbacks run on the pipeline
	// goroutines; a slow OnDone stalls that lane.
	OnDone func(tag uint64, res Result, err error)
}

// pipeJob is one submitted subframe.
type pipeJob struct {
	tag uint64
	cfg Config
	iq  [][]complex128
	n0  float64
}

// NewPipeliner starts a pipeliner with Depth worker goroutines.
func NewPipeliner(pc PipelinerConfig) (*Pipeliner, error) {
	if pc.Arena == nil {
		return nil, fmt.Errorf("phy: pipeliner requires an arena")
	}
	if pc.Depth < 1 {
		pc.Depth = 1
	}
	pl := &Pipeliner{pc: pc, jobs: make(chan pipeJob)}
	for i := 0; i < pc.Depth; i++ {
		pl.wg.Add(1)
		go pl.worker()
	}
	return pl, nil
}

// Depth returns the in-flight window.
func (pl *Pipeliner) Depth() int { return pl.pc.Depth }

// Submit hands one subframe to the pipeline, blocking while Depth subframes
// are already in flight. The caller must not mutate iq until the subframe's
// OnDone fires. Tags are opaque; completions are reported per tag and may
// fire out of submission order once Depth > 1. Submit must not be called
// concurrently with Close.
func (pl *Pipeliner) Submit(tag uint64, cfg Config, iq [][]complex128, n0 float64) error {
	if pl.closed.Load() {
		return fmt.Errorf("phy: pipeliner is closed")
	}
	pl.jobs <- pipeJob{tag: tag, cfg: cfg, iq: iq, n0: n0}
	return nil
}

// Close drains the in-flight window and stops the pipeline goroutines. It
// returns once every submitted subframe's OnDone has fired. Idempotent.
func (pl *Pipeliner) Close() {
	if pl.closed.CompareAndSwap(false, true) {
		close(pl.jobs)
	}
	pl.wg.Wait()
}

func (pl *Pipeliner) worker() {
	defer pl.wg.Done()
	var ln *Lane
	if pl.pc.Pool != nil {
		ln = pl.pc.Pool.NewLane()
	}
	for j := range pl.jobs {
		if f := pl.pc.OnStart; f != nil {
			f(j.tag)
		}
		rx, res, err := pl.process(ln, j)
		if f := pl.pc.OnDone; f != nil {
			f(j.tag, res, err)
		}
		// After OnDone: res aliases rx's scratch, so the receiver may only
		// recirculate once the callback has consumed it.
		pl.pc.Arena.Put(rx)
	}
}

// process runs one subframe start to finish on the calling goroutine,
// returning the borrowed receiver for release.
func (pl *Pipeliner) process(ln *Lane, j pipeJob) (*Receiver, Result, error) {
	rx, err := pl.pc.Arena.Get(j.cfg)
	if err != nil {
		return nil, Result{}, err
	}
	stages, err := rx.Pipeline(j.iq, j.n0)
	if err != nil {
		return rx, Result{}, err
	}
	for _, stg := range stages {
		var start time.Time
		if pl.pc.OnStage != nil {
			start = time.Now()
		}
		if pl.pc.Pool != nil {
			pl.pc.Pool.RunOn(ln, stg.Subtasks)
		} else {
			for _, sub := range stg.Subtasks {
				sub()
			}
		}
		if pl.pc.OnStage != nil {
			pl.pc.OnStage(j.tag, stg.Name, time.Since(start))
		}
	}
	return rx, rx.Result(), nil
}
