package sequence

import (
	"testing"
	"testing/quick"
)

func TestGoldLength(t *testing.T) {
	for _, n := range []int{0, 1, 100, 10000} {
		c := Gold(0x1234, n)
		if n <= 0 && c != nil {
			t.Fatalf("Gold(%d) returned non-nil", n)
		}
		if n > 0 && len(c) != n {
			t.Fatalf("Gold length = %d, want %d", len(c), n)
		}
	}
}

func TestGoldBitsAreBinary(t *testing.T) {
	for _, b := range Gold(0xACE1, 5000) {
		if b > 1 {
			t.Fatalf("non-binary output %d", b)
		}
	}
}

func TestGoldBalance(t *testing.T) {
	// A PN sequence should be near-balanced over long windows.
	c := Gold(0x7F3, 100000)
	ones := 0
	for _, b := range c {
		ones += int(b)
	}
	if ones < 49000 || ones > 51000 {
		t.Fatalf("ones = %d / 100000, not balanced", ones)
	}
}

func TestGoldDistinctInits(t *testing.T) {
	a := Gold(1, 1000)
	b := Gold(2, 1000)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff < 300 {
		t.Fatalf("sequences for distinct inits differ in only %d/1000 bits", diff)
	}
}

func TestGoldPrefixConsistency(t *testing.T) {
	// Generating a longer sequence must not change the earlier bits.
	short := Gold(0xBEEF, 100)
	long := Gold(0xBEEF, 1000)
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("prefix mismatch at %d", i)
		}
	}
}

func TestGoldLowAutocorrelation(t *testing.T) {
	c := Gold(0x5A5A, 20000)
	for _, lag := range []int{1, 7, 31, 100} {
		agree := 0
		n := len(c) - lag
		for i := 0; i < n; i++ {
			if c[i] == c[i+lag] {
				agree++
			}
		}
		frac := float64(agree) / float64(n)
		if frac < 0.45 || frac > 0.55 {
			t.Fatalf("autocorrelation at lag %d: agreement %.3f", lag, frac)
		}
	}
}

func TestPUSCHInitFields(t *testing.T) {
	got := PUSCHInit(0x003D, 0, 0, 1)
	want := uint32(0x003D)<<14 + 1
	if got != want {
		t.Fatalf("PUSCHInit = %#x, want %#x", got, want)
	}
	// Subframe advances the ⌊ns/2⌋ field by 1 per subframe.
	if PUSCHInit(1, 0, 3, 0) != uint32(1)<<14+3<<9 {
		t.Fatal("subframe field wrong")
	}
	// Codeword q sets bit 13.
	if PUSCHInit(0, 1, 0, 0) != 1<<13 {
		t.Fatal("codeword field wrong")
	}
}

func TestScramblerInvolution(t *testing.T) {
	f := func(seed uint32, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]byte, len(raw))
		for i := range raw {
			data[i] = raw[i] & 1
		}
		orig := append([]byte(nil), data...)
		s := NewScrambler(seed, len(data))
		s.Apply(data)
		s.Apply(data)
		for i := range data {
			if data[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScramblerSoftMatchesHard(t *testing.T) {
	// Descrambling LLRs then hard-slicing equals hard-slicing then
	// descrambling bits.
	s := NewScrambler(0xC0DE, 64)
	llrs := make([]float64, 64)
	hard := make([]byte, 64)
	for i := range llrs {
		if i%3 == 0 {
			llrs[i] = 2.5 // bit 0 (positive LLR convention)
			hard[i] = 0
		} else {
			llrs[i] = -1.5 // bit 1
			hard[i] = 1
		}
	}
	s.ApplySoft(llrs)
	s.Apply(hard)
	for i := range llrs {
		var sliced byte
		if llrs[i] < 0 {
			sliced = 1
		}
		if sliced != hard[i] {
			t.Fatalf("soft/hard descrambling disagree at %d", i)
		}
	}
}

func TestScramblerPanicsOnOverrun(t *testing.T) {
	s := NewScrambler(1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when data exceeds sequence")
		}
	}()
	s.Apply(make([]byte, 5))
}

func BenchmarkGold10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Gold(0x1234, 10000)
	}
}
