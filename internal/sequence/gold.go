// Package sequence implements the length-31 Gold pseudo-random sequence of
// 3GPP TS 36.211 §7.2 and the PUSCH scrambling built on it.
//
// The generator is defined by two m-sequences:
//
//	x1(n+31) = (x1(n+3) + x1(n)) mod 2
//	x2(n+31) = (x2(n+3) + x2(n+2) + x2(n+1) + x2(n)) mod 2
//	c(n)     = (x1(n+Nc) + x2(n+Nc)) mod 2,  Nc = 1600
//
// with x1 initialized to the unit impulse and x2 to the binary expansion of
// the initialization value c_init.
package sequence

// Nc is the standard sequence warm-up offset.
const Nc = 1600

// Gold generates n bits of the Gold sequence c(0..n-1) for the given c_init.
// Output bits are 0/1 valued bytes.
func Gold(cInit uint32, n int) []byte {
	if n <= 0 {
		return nil
	}
	total := Nc + n + 31
	x1 := make([]byte, total)
	x2 := make([]byte, total)
	x1[0] = 1
	for i := 0; i < 31; i++ {
		x2[i] = byte((cInit >> uint(i)) & 1)
	}
	for i := 0; i+31 < total; i++ {
		x1[i+31] = (x1[i+3] + x1[i]) & 1
		x2[i+31] = (x2[i+3] + x2[i+2] + x2[i+1] + x2[i]) & 1
	}
	c := make([]byte, n)
	for i := 0; i < n; i++ {
		c[i] = (x1[i+Nc] + x2[i+Nc]) & 1
	}
	return c
}

// PUSCHInit computes c_init for PUSCH scrambling per TS 36.211 §5.3.1:
//
//	c_init = nRNTI·2^14 + q·2^13 + ⌊ns/2⌋·2^9 + N_cell_ID
//
// where ns is the slot number within the frame (two slots per subframe) and
// q is the codeword index (0 for single-codeword uplink).
func PUSCHInit(rnti uint16, q int, subframe int, cellID uint16) uint32 {
	ns := 2 * subframe
	return uint32(rnti)<<14 + uint32(q&1)<<13 + uint32(ns/2)<<9 + uint32(cellID)
}

// Scrambler applies (and removes — scrambling is an involution) the Gold
// scrambling sequence for one codeword.
type Scrambler struct {
	seq []byte
}

// NewScrambler precomputes n scrambling bits for c_init.
func NewScrambler(cInit uint32, n int) *Scrambler {
	return &Scrambler{seq: Gold(cInit, n)}
}

// Apply XORs the scrambling sequence into data in place and returns data.
// It panics if data is longer than the precomputed sequence.
func (s *Scrambler) Apply(data []byte) []byte {
	if len(data) > len(s.seq) {
		panic("sequence: scrambler sequence shorter than data")
	}
	for i := range data {
		data[i] = (data[i] ^ s.seq[i]) & 1
	}
	return data
}

// ApplySoft flips the signs of soft bits (LLRs) where the scrambling bit is 1,
// which is the descrambling operation on the receive side before decoding.
// It panics if llrs is longer than the precomputed sequence.
func (s *Scrambler) ApplySoft(llrs []float64) []float64 {
	if len(llrs) > len(s.seq) {
		panic("sequence: scrambler sequence shorter than LLRs")
	}
	for i := range llrs {
		if s.seq[i] == 1 {
			llrs[i] = -llrs[i]
		}
	}
	return llrs
}

// Len reports the number of precomputed scrambling bits.
func (s *Scrambler) Len() int { return len(s.seq) }

// Bit returns scrambling bit i.
func (s *Scrambler) Bit(i int) byte { return s.seq[i] }
