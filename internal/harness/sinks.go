package harness

// This file is the per-run trace and metrics sink layer: run one workload
// under one scheduler with the event-trace layer attached, then export what
// happened (metrics, engine statistics, per-event trace) as JSON or CSV for
// offline analysis and for cmd/rtoptrace's timeline rendering.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rtopex/internal/flight"
	"rtopex/internal/obs"
	"rtopex/internal/platform"
	"rtopex/internal/sched"
	"rtopex/internal/trace"
)

// EngineStats counts discrete-event engine activity over one run (via the
// platform hook): how many events were scheduled and executed, and the
// final simulation clock.
type EngineStats struct {
	Scheduled int64   `json:"scheduled"`
	Executed  int64   `json:"executed"`
	EndTimeUS float64 `json:"end_time_us"`
}

// OnAt implements platform.Hook.
func (s *EngineStats) OnAt(at, now float64) { s.Scheduled++ }

// OnStep implements platform.Hook.
func (s *EngineStats) OnStep(now float64) { s.Executed++; s.EndTimeUS = now }

var _ platform.Hook = (*EngineStats)(nil)

// RunResult bundles one traced run's outputs.
type RunResult struct {
	Metrics *sched.Metrics
	Engine  EngineStats
	Log     *trace.EventLog
	// Utilization is the per-core busy/migration/idle accounting derived
	// from the same event stream the log retains.
	Utilization []obs.CoreReport
}

// TracedRun executes one workload under one scheduler with an event ring of
// the given capacity attached (ringCap ≤ 0 retains every event) and engine
// instrumentation enabled.
func TracedRun(w *sched.Workload, s sched.Scheduler, cores, ringCap int) (*RunResult, error) {
	return TracedRunObserved(w, s, cores, ringCap, nil, nil)
}

// TracedRunObserved is TracedRun with an optional live registry and an
// optional flight recorder: the run's trace stream additionally drives a
// per-core utilization accountant, the engine hook fans out to the
// registry's event counters, and the finished metrics are published under
// the scheduler's label. reg may be nil, which skips the registry
// publishing but still computes Utilization. rec, when non-nil, arms the
// deadline-miss flight recorder; the run's own accountant supplies the
// dossiers' core fractions, so arming adds no second accounting pass.
func TracedRunObserved(w *sched.Workload, s sched.Scheduler, cores, ringCap int, reg *obs.Registry, rec *flight.Recorder) (*RunResult, error) {
	ring := trace.NewRing(ringCap)
	acct := obs.NewCoreAccountant()
	res := &RunResult{}
	hook := platform.Hooks(&res.Engine)
	if reg != nil {
		hook = platform.Hooks(&res.Engine, obs.NewEngineHook(reg))
	}
	rc := sched.RunConfig{
		Cores:      cores,
		Tracer:     trace.Tee(ring, acct),
		EngineHook: hook,
	}
	if rec != nil {
		rc.Flight = rec
		rc.FlightReports = func(endUS float64) []obs.CoreReport {
			return acct.Reports(cores, endUS)
		}
	}
	m, err := sched.RunConfigured(w, s, rc)
	if err != nil {
		return nil, err
	}
	res.Metrics = m
	res.Log = &trace.EventLog{
		Scheduler: m.Scheduler,
		Cores:     cores,
		Dropped:   ring.Dropped(),
		Events:    ring.Events(),
	}
	res.Utilization = acct.Reports(cores, res.Engine.EndTimeUS)
	if reg != nil {
		sched.PublishMetrics(reg, m)
		acct.Publish(reg, cores, res.Engine.EndTimeUS)
	}
	return res, nil
}

// metricsDoc is the exported metrics document: run metrics plus engine
// statistics and per-core utilization.
type metricsDoc struct {
	Metrics     *sched.Metrics   `json:"metrics"`
	Engine      EngineStats      `json:"engine"`
	Utilization []obs.CoreReport `json:"utilization,omitempty"`
}

// WriteMetricsJSON exports the run's metrics and engine statistics.
func (r *RunResult) WriteMetricsJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(metricsDoc{Metrics: r.Metrics, Engine: r.Engine, Utilization: r.Utilization})
}

// WriteTraceJSON exports the run's event trace.
func (r *RunResult) WriteTraceJSON(w io.Writer) error { return r.Log.WriteJSON(w) }

// Sink saves traced runs into a directory, one metrics and one trace file
// per run.
type Sink struct {
	// Dir is the output directory (created if missing).
	Dir string
	// CSV switches the export format from JSON (default) to CSV.
	CSV bool
}

// Save writes <name>-metrics.<ext> and <name>-trace.<ext> and returns their
// paths.
func (s *Sink) Save(name string, r *RunResult) (metricsPath, tracePath string, err error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", "", err
	}
	ext := "json"
	if s.CSV {
		ext = "csv"
	}
	metricsPath = filepath.Join(s.Dir, fmt.Sprintf("%s-metrics.%s", name, ext))
	tracePath = filepath.Join(s.Dir, fmt.Sprintf("%s-trace.%s", name, ext))
	if err := writeFile(metricsPath, func(w io.Writer) error {
		if s.CSV {
			return r.Metrics.WriteCSV(w)
		}
		return r.WriteMetricsJSON(w)
	}); err != nil {
		return "", "", err
	}
	if err := writeFile(tracePath, func(w io.Writer) error {
		if s.CSV {
			return r.Log.WriteCSV(w)
		}
		return r.WriteTraceJSON(w)
	}); err != nil {
		return "", "", err
	}
	return metricsPath, tracePath, nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
