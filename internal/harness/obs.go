package harness

import (
	"math"
	"strconv"
	"strings"

	"rtopex/internal/obs"
)

// missColumnHints are scheduler-name columns whose cells are miss rates in
// the paper's figures (miss-rate-vs-X tables put one scheduler per column).
var missColumnHints = map[string]bool{
	"partitioned":      true,
	"global":           true,
	"global-8":         true,
	"global-16":        true,
	"rt-opex":          true,
	"semi-partitioned": true,
	"static-parallel":  true,
	"pran":             true,
}

// isMissColumn reports whether a column holds deadline-miss rates, by the
// naming conventions of the experiment registry.
func isMissColumn(name string) bool {
	return strings.Contains(strings.ToLower(name), "miss") || missColumnHints[name]
}

// PublishTable exposes a finished experiment table on a live registry:
// per-column means as gauges, and every miss-rate column additionally as
// rtopex_experiment_miss_rate (the series the ISSUE's sweep-progress
// dashboard scrapes). Non-numeric cells are skipped. A nil registry is a
// no-op.
func PublishTable(reg *obs.Registry, tb *Table) {
	if reg == nil || tb == nil {
		return
	}
	reg.SetHelp("rtopex_experiment_rows", "Rows produced by the experiment.")
	reg.Gauge("rtopex_experiment_rows", obs.L("experiment", tb.ID)).Set(float64(len(tb.Rows)))
	// A counter (not a gauge) so the fleet-wide total stays exact when many
	// sweep workers' registries merge on a collector.
	reg.SetHelp("rtopex_experiment_done_total", "Completed runs of the experiment (sums across sweep workers).")
	reg.Counter("rtopex_experiment_done_total", obs.L("experiment", tb.ID)).Inc()
	reg.SetHelp("rtopex_experiment_column_mean", "Mean of the experiment column's numeric cells.")
	reg.SetHelp("rtopex_experiment_miss_rate", "Mean deadline-miss rate of the experiment's miss column.")
	for col, stats := range columnStats(tb) {
		name := tb.Columns[col]
		ls := []obs.Label{obs.L("experiment", tb.ID), obs.L("column", name)}
		mean := stats.sum / float64(stats.n)
		reg.Gauge("rtopex_experiment_column_mean", ls...).Set(mean)
		if isMissColumn(name) {
			reg.Gauge("rtopex_experiment_miss_rate", ls...).Set(mean)
		}
	}
}

// TableSnapshot converts a finished table into a standalone obs snapshot:
// a row counter plus, per numeric column, a value histogram and mean gauge.
// It is derived from the table alone — no clocks, no environment — so for a
// given table the snapshot is deterministic, which lets sweep records embed
// it without breaking the byte-identical parallel-equals-serial guarantee.
func TableSnapshot(tb *Table) *obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Counter("rtopex_table_rows", obs.L("experiment", tb.ID)).Add(int64(len(tb.Rows)))
	for col, stats := range columnStats(tb) {
		name := tb.Columns[col]
		ls := []obs.Label{obs.L("experiment", tb.ID), obs.L("column", name)}
		h := reg.Histogram("rtopex_table_value", ls...)
		for _, v := range stats.values {
			h.Observe(v)
		}
		reg.Gauge("rtopex_table_mean", ls...).Set(stats.sum / float64(stats.n))
		if isMissColumn(name) {
			reg.Gauge("rtopex_table_miss_rate", ls...).Set(stats.sum / float64(stats.n))
		}
	}
	return reg.Snapshot()
}

type colStats struct {
	n      int
	sum    float64
	values []float64
}

// columnStats extracts the numeric cells of each column (column index →
// stats); columns with no numeric cells are absent.
func columnStats(tb *Table) map[int]colStats {
	out := map[int]colStats{}
	for _, row := range tb.Rows {
		for col, cell := range row {
			if col >= len(tb.Columns) {
				break
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				// Non-numeric and non-finite cells (a zero-miss run's log
				// column renders -Inf) are skipped: snapshots embed in JSON,
				// which cannot carry non-finite numbers.
				continue
			}
			s := out[col]
			s.n++
			s.sum += v
			s.values = append(s.values, v)
			out[col] = s
		}
	}
	return out
}
