// Package harness defines one runnable experiment per table and figure of
// the paper's evaluation, plus the ablations called out in DESIGN.md. Each
// experiment regenerates the rows/series the paper reports; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Table is the result of one experiment: a titled grid of cells plus notes
// tying it back to the paper's claims.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are Sprintf'd with %v unless they
// are already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tune experiment scale. The zero value requests paper-scale runs;
// Quick shrinks sample counts for tests and smoke runs.
type Options struct {
	// Subframes per basestation for scheduler experiments (default 30000,
	// the paper's trace length).
	Subframes int
	// Samples for distribution experiments (default 1e6; the paper's model
	// fit uses 4e6).
	Samples int
	// Seed makes every experiment deterministic.
	Seed uint64
	// Quick shrinks all scales ~10× for fast runs.
	Quick bool
}

func (o Options) subframes() int {
	n := o.Subframes
	if n <= 0 {
		n = 30000
	}
	if o.Quick && n > 3000 {
		n = 3000
	}
	return n
}

func (o Options) samples() int {
	n := o.Samples
	if n <= 0 {
		n = 1_000_000
	}
	if o.Quick && n > 100_000 {
		n = 100_000
	}
	return n
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 0xC0FFEE
	}
	return o.Seed
}

// ResolvedOptions is the machine-readable form of Options after all
// defaulting and Quick-mode clamping: the exact scales an experiment run
// will use. It is what sweep artifact stores key on, so its JSON encoding
// is part of the artifact schema (see internal/sweep/README.md).
type ResolvedOptions struct {
	Subframes int    `json:"subframes"`
	Samples   int    `json:"samples"`
	Seed      uint64 `json:"seed"`
	Quick     bool   `json:"quick,omitempty"`
}

// Resolve applies defaults and Quick clamping, yielding the effective
// configuration of a run with these options.
func (o Options) Resolve() ResolvedOptions {
	return ResolvedOptions{
		Subframes: o.subframes(),
		Samples:   o.samples(),
		Seed:      o.seed(),
		Quick:     o.Quick,
	}
}

// Options converts back to runnable Options. Resolve∘Options is the
// identity on resolved values, so a stored configuration replays exactly.
func (r ResolvedOptions) Options() Options {
	return Options{Subframes: r.Subframes, Samples: r.Samples, Seed: r.Seed, Quick: r.Quick}
}

// Experiment is a registered, runnable reproduction unit.
type Experiment struct {
	ID    string
	Title string
	// Measured marks experiments whose output depends on wall-clock
	// measurement of this machine (fig4 times the real Go PHY): their
	// tables are not reproducible bit-for-bit and are exempt from the
	// sweep determinism guarantee and baseline comparison.
	Measured bool
	Run      func(Options) (*Table, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Options) (*Table, error)) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// registerMeasured registers a wall-clock-dependent experiment.
func registerMeasured(id, title string, run func(Options) (*Table, error)) {
	registry[id] = Experiment{ID: id, Title: title, Measured: true, Run: run}
}

// IDs lists all registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Spec is the machine-readable registry entry of one experiment.
type Spec struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Measured bool   `json:"measured,omitempty"`
}

// Specs lists the registry in sorted id order — the sweep engine's shard
// order, so an experiment's shard index is its position in this list.
func Specs() []Spec {
	specs := make([]Spec, 0, len(registry))
	for _, id := range IDs() {
		e := registry[id]
		specs = append(specs, Spec{ID: e.ID, Title: e.Title, Measured: e.Measured})
	}
	return specs
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Table, error) {
	e, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return e.Run(o)
}

// CSV renders the table as RFC-4180-style CSV (header row first, notes as
// trailing comment lines), for feeding plots without parsing the aligned
// text format.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
