package harness

import (
	"fmt"
	"runtime"
	"slices"
	"testing"
	"time"

	"rtopex/internal/obs"
	"rtopex/internal/sched"
)

// benchHistory builds a fleet-scale registry (the series mix a livebench or
// sweep worker actually exposes: labeled counters, gauges, histograms) plus
// a TSDB and SLO engine over it, with a deterministic advancing clock.
func benchHistory(b *testing.B) (*obs.Registry, *obs.Scraper, func()) {
	b.Helper()
	reg := obs.NewRegistry()
	for i := 0; i < 32; i++ {
		reg.Counter("rtopex_bench_events_total", obs.L("core", fmt.Sprint(i))).Add(int64(i))
	}
	reg.Counter("rtopex_live_subframes_total")
	reg.Counter("rtopex_live_missed_total")
	for i := 0; i < 8; i++ {
		reg.Gauge("rtopex_bench_load", obs.L("core", fmt.Sprint(i))).Set(float64(i))
	}
	for i := 0; i < 8; i++ {
		h := reg.Histogram("rtopex_bench_latency_us", obs.L("stage", fmt.Sprint(i)))
		for j := 0; j < 64; j++ {
			h.Observe(float64(j%17) * 3.5)
		}
	}
	// 60 s retention keeps the rings small enough that a short warm-up
	// reaches steady state (full rings, eviction on every step) — without
	// it the timed region measures lazy ring growth, which is noisy.
	db := obs.NewTSDB(obs.TSDBConfig{Step: time.Second, Retention: time.Minute})
	o, err := obs.ParseObjective("miss_rate: rtopex_live_missed_total / rtopex_live_subframes_total <= 0.1% over 1m")
	if err != nil {
		b.Fatal(err)
	}
	slo := obs.NewSLOEngine(db, o)
	now := time.UnixMilli(1_700_000_000_000)
	scraper := obs.NewScraper(obs.ScraperConfig{
		DB:       db,
		Snapshot: reg.Snapshot,
		SLO:      slo,
		Now: func() time.Time {
			return now
		},
	})
	advance := func() { now = now.Add(time.Second) }
	return reg, scraper, advance
}

// BenchmarkScrapeEvaluate is the history plane's pure cost: one scraper
// tick — registry snapshot, TSDB observe across every series, and a full
// SLO evaluation (two burn windows) — over a fleet-scale registry, under a
// deterministic clock. ns/op is the per-step cost a daemon pays at its
// -history-step cadence; tracked in BENCH_sweep.json.
func BenchmarkScrapeEvaluate(b *testing.B) {
	reg, scraper, advance := benchHistory(b)
	subframes := reg.Counter("rtopex_live_subframes_total")
	missed := reg.Counter("rtopex_live_missed_total")
	tick := func(i int) {
		subframes.Add(1000)
		missed.Add(int64(i % 3))
		scraper.Tick()
		advance()
	}
	// Warm past ring capacity so the timed region measures steady state
	// (full rings, one eviction per step), not lazy ring growth.
	for i := 0; i < 70; i++ {
		tick(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick(i)
	}
}

// BenchmarkScrapeEvaluateOverhead is the history plane's overhead gate:
// each iteration interleaves a registry-observed traced run with no history
// (timer stopped) and the identical run plus scrape-and-evaluate ticks
// (timer running). One tick against a ~15ms run is a cadence ~60x denser
// than the production 1 Hz step, so the gate bounds a conservative
// overestimate. The reported history/disabled ratio is a
// median over same-process pairs (immune to machine drift between runs);
// bench-check holds it to ±5% of its committed ~1.0x baseline — the
// "history is nearly free next to the workload" contract.
func BenchmarkScrapeEvaluateOverhead(b *testing.B) {
	const ticksPerRun = 1
	w := benchWorkload(b, 400)
	reg, scraper, advance := benchHistory(b)
	disabled := make([]time.Duration, 0, b.N)
	withHist := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	var ms runtime.MemStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// StartTimer below reads memstats right before the history run; read
		// them here too so both sides of the pair start from the same
		// allocator state.
		runtime.ReadMemStats(&ms)
		t0 := time.Now()
		if _, err := TracedRunObserved(w, sched.NewRTOPEX(2), 8, 0, reg, nil); err != nil {
			b.Fatal(err)
		}
		disabled = append(disabled, time.Since(t0))
		b.StartTimer()
		t0 = time.Now()
		if _, err := TracedRunObserved(w, sched.NewRTOPEX(2), 8, 0, reg, nil); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < ticksPerRun; k++ {
			scraper.Tick()
			advance()
		}
		withHist = append(withHist, time.Since(t0))
	}
	b.StopTimer()
	ratios := make([]float64, 0, len(withHist))
	for i := range withHist {
		if disabled[i] > 0 {
			ratios = append(ratios, float64(withHist[i])/float64(disabled[i]))
		}
	}
	if len(ratios) > 0 {
		slices.Sort(ratios)
		b.ReportMetric(ratios[len(ratios)/2], "history/disabled")
	}
}
