package harness

import (
	"fmt"

	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

func init() {
	register("fig1", "Variations in cellular load traces (50 ms window)", fig1)
	register("table1", "Linear model parameter estimates and r²", table1)
	register("fig3a", "Processing time vs MCS for L = 1..4 (N = 2)", fig3a)
	register("fig3b", "Processing time vs MCS for SNR 10/20/30 dB (N = 2)", fig3b)
	register("fig3c", "Processing time vs antennas", fig3c)
	register("fig3d", "Platform error distribution vs stress-test latency", fig3d)
	register("fig14", "Basestation load distribution (CDF quantiles)", fig14)
}

// fig1 reproduces the 50 ms load snapshot of two basestations.
func fig1(o Options) (*Table, error) {
	t := &Table{ID: "fig1", Title: "Normalized load, 1 ms granularity",
		Columns: []string{"time_ms", "BS1", "BS2"}}
	g1 := trace.NewGenerator(trace.DefaultProfiles[0], o.seed())
	g2 := trace.NewGenerator(trace.DefaultProfiles[1], o.seed()+1)
	a := g1.Generate(50)
	b := g2.Generate(50)
	for i := 0; i < 50; i++ {
		t.AddRow(i+1, a[i], b[i])
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean |Δload| per ms: BS1 %.3f, BS2 %.3f (the paper's point: consecutive subframes vary strongly)",
			a.StepVariation(), b.StepVariation()))
	return t, nil
}

// table1 regenerates the Table 1 fit: synthesize processing-time
// measurements from the calibrated model across the paper's sweep (MCS
// 0–27, SNR 0–30 dB, N = 1..4, Lm = 4) and refit by least squares.
func table1(o Options) (*Table, error) {
	r := stats.NewRNG(o.seed())
	il := model.DefaultIterationLaw
	n := o.samples()
	obs := make([]model.Observation, 0, n)
	for i := 0; i < n; i++ {
		mcs := r.Intn(28)
		info, err := lte.MCSTable(mcs)
		if err != nil {
			return nil, err
		}
		d, err := lte.SubcarrierLoad(mcs, lte.BW10MHz)
		if err != nil {
			return nil, err
		}
		ants := 1 + r.Intn(4)
		snr := 30 * r.Float64()
		l := il.Sample(r, mcs, snr, 4)
		tt := model.PaperGPP.Predict(ants, info.Scheme.Order(), d, l) + model.DefaultJitter.Sample(r)
		obs = append(obs, model.Observation{N: ants, K: info.Scheme.Order(), D: d, L: l, T: tt})
	}
	fit, r2, err := model.Fit(obs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "table1", Title: "Model parameter estimates (µs)",
		Columns: []string{"source", "w0", "w1", "w2", "w3", "r2"}}
	t.AddRow("paper (Table 1)", model.PaperGPP.W0, model.PaperGPP.W1, model.PaperGPP.W2, model.PaperGPP.W3, 0.992)
	t.AddRow("refit (this run)", fit.W0, fit.W1, fit.W2, fit.W3, r2)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d synthetic measurements (paper: 4e6); regression recovers the generator within noise", n),
		"run `phyprof` for the measured-mode fit of this repository's own Go PHY")
	return t, nil
}

// fig3a sweeps MCS at fixed iteration counts.
func fig3a(o Options) (*Table, error) {
	t := &Table{ID: "fig3a", Title: "Total processing time (µs) vs MCS and iterations, N = 2",
		Columns: []string{"mcs", "L=1", "L=2", "L=3", "L=4"}}
	for mcs := 0; mcs <= 27; mcs++ {
		info, _ := lte.MCSTable(mcs)
		d, err := lte.SubcarrierLoad(mcs, lte.BW10MHz)
		if err != nil {
			return nil, err
		}
		row := []interface{}{mcs}
		for l := 1; l <= 4; l++ {
			row = append(row, model.PaperGPP.Predict(2, info.Scheme.Order(), d, l))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper anchors: ~0.5 ms at MCS 0 and ~1.4 ms at MCS 27 (L=2); each iteration at MCS 27 adds ~345 µs")
	return t, nil
}

// fig3b sweeps MCS at fixed SNRs, sampling the iteration law.
func fig3b(o Options) (*Table, error) {
	r := stats.NewRNG(o.seed())
	il := model.DefaultIterationLaw
	t := &Table{ID: "fig3b", Title: "Mean processing time (µs) vs MCS and SNR, N = 2, Lm = 4",
		Columns: []string{"mcs", "snr10", "snr20", "snr30"}}
	trials := 2000
	if o.Quick {
		trials = 300
	}
	for mcs := 0; mcs <= 27; mcs++ {
		info, _ := lte.MCSTable(mcs)
		d, err := lte.SubcarrierLoad(mcs, lte.BW10MHz)
		if err != nil {
			return nil, err
		}
		row := []interface{}{mcs}
		for _, snr := range []float64{10, 20, 30} {
			var sum float64
			for i := 0; i < trials; i++ {
				l := il.Sample(r, mcs, snr, 4)
				sum += model.PaperGPP.Predict(2, info.Scheme.Order(), d, l)
			}
			row = append(row, sum/float64(trials))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: dropping SNR 20→10 dB inflates processing >50% between MCS 13 and 25")
	return t, nil
}

// fig3c sweeps the antenna count.
func fig3c(o Options) (*Table, error) {
	t := &Table{ID: "fig3c", Title: "Processing time (µs) vs antennas (MCS 27, L = 2)",
		Columns: []string{"antennas", "time_us"}}
	d, err := lte.SubcarrierLoad(27, lte.BW10MHz)
	if err != nil {
		return nil, err
	}
	for n := 1; n <= 4; n++ {
		t.AddRow(n, model.PaperGPP.Predict(n, 6, d, 2))
	}
	t.Notes = append(t.Notes, "paper: each additional antenna adds ~169 µs; going to 2 antennas adds ~200 µs at fixed post-processing SNR")
	return t, nil
}

// fig3d samples the platform-error model and reports its tail, next to the
// cyclictest/hackbench-style stress distribution the paper uses to show the
// error is platform- not model-induced.
func fig3d(o Options) (*Table, error) {
	r := stats.NewRNG(o.seed())
	n := o.samples()
	var over50, over150, over250, over400 int
	w := stats.Welford{}
	for i := 0; i < n; i++ {
		e := model.DefaultJitter.Sample(r)
		w.Add(e)
		switch {
		case e > 400:
			over400++
			fallthrough
		case e > 250:
			over250++
			fallthrough
		case e > 150:
			over150++
			fallthrough
		case e > 50:
			over50++
		}
	}
	t := &Table{ID: "fig3d", Title: "Platform error tail (model residual E)",
		Columns: []string{"threshold_us", "ccdf"}}
	t.AddRow(50, float64(over50)/float64(n))
	t.AddRow(150, float64(over150)/float64(n))
	t.AddRow(250, float64(over250)/float64(n))
	t.AddRow(400, float64(over400)/float64(n))
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d, mean %.2f µs, max %.0f µs", n, w.Mean(), w.Max()),
		"paper: 99.9%% of errors < 0.15 ms; ~1 in 1e5 above a few hundred µs; extremes ~0.7 ms")
	return t, nil
}

// fig14 reports the per-basestation load CDF quantiles.
func fig14(o Options) (*Table, error) {
	t := &Table{ID: "fig14", Title: "Basestation load distribution",
		Columns: []string{"bs", "p10", "p25", "p50", "p75", "p90", "mean"}}
	n := o.subframes()
	for i, p := range trace.DefaultProfiles {
		tr := trace.NewGenerator(p, o.seed()+uint64(i)).Generate(n)
		c := stats.NewCDF([]float64(tr))
		t.AddRow(p.Name, c.Quantile(0.10), c.Quantile(0.25), c.Quantile(0.50),
			c.Quantile(0.75), c.Quantile(0.90), tr.Mean())
	}
	t.Notes = append(t.Notes,
		"substitute for the paper's USRP captures of 4 live towers: four distinct marginal distributions spanning light to heavy load")
	return t, nil
}
