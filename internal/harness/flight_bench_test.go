package harness

import (
	"runtime"
	"slices"
	"testing"
	"time"

	"rtopex/internal/flight"
	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/sched"
	"rtopex/internal/trace"
)

// benchWorkload is jitteryWorkload without the testing.T plumbing: a
// 4-BS run under transport jitter aggressive enough to produce deadline
// misses, so the armed benchmark pays the recorder's trigger path, not
// just its ring stores.
func benchWorkload(b *testing.B, subframes int) *sched.Workload {
	b.Helper()
	w, err := sched.BuildWorkload(sched.WorkloadConfig{
		Basestations: 4, Subframes: subframes, Antennas: 2, Bandwidth: lte.BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: model.PaperGPP, Jitter: model.DefaultJitter, IterLaw: model.DefaultIterationLaw,
		Profiles: trace.DefaultProfiles, FixedMCS: -1,
		Transport:      uniformTransport{mean: 650, spread: 160},
		ExpectedRTT2US: 650,
		Seed:           7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkFlightRecorderDisabled is the baseline: the traced run with no
// recorder armed.
func BenchmarkFlightRecorderDisabled(b *testing.B) {
	w := benchWorkload(b, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TracedRunObserved(w, sched.NewRTOPEX(2), 8, 0, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlightRecorderArmed is the armed-overhead gate: the identical
// workload with the flight recorder armed — per-event ring stores plus
// trigger classification on the hot path, captures rate-limited to the
// recorder's default budget. Each iteration interleaves a disabled run
// (timer stopped) with an armed run (timer running), so ns/op is the armed
// cost and the reported armed/disabled ratio is a same-process paired
// measurement immune to machine-level drift between separate benchmark
// invocations. The ratio is median-over-median so a stray GC cycle landing
// in one iteration cannot skew the gate. bench-check holds it to ±5% of
// its committed baseline (≈1.0) — the recorder's bounded-overhead
// contract.
func BenchmarkFlightRecorderArmed(b *testing.B) {
	w := benchWorkload(b, 400)
	rec := flight.New(flight.Config{})
	defer rec.Close()
	disabled := make([]time.Duration, 0, b.N)
	armed := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	var ms runtime.MemStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// StartTimer below reads memstats (flushing allocator caches) right
		// before the armed run; read them here too so both sides of the
		// pair start from the same allocator state.
		runtime.ReadMemStats(&ms)
		t0 := time.Now()
		if _, err := TracedRunObserved(w, sched.NewRTOPEX(2), 8, 0, nil, nil); err != nil {
			b.Fatal(err)
		}
		disabled = append(disabled, time.Since(t0))
		b.StartTimer()
		t0 = time.Now()
		if _, err := TracedRunObserved(w, sched.NewRTOPEX(2), 8, 0, nil, rec); err != nil {
			b.Fatal(err)
		}
		armed = append(armed, time.Since(t0))
	}
	b.StopTimer()
	ratios := make([]float64, 0, len(armed))
	for i := range armed {
		if disabled[i] > 0 {
			ratios = append(ratios, float64(armed[i])/float64(disabled[i]))
		}
	}
	if len(ratios) > 0 {
		slices.Sort(ratios)
		b.ReportMetric(ratios[len(ratios)/2], "armed/disabled")
	}
}
