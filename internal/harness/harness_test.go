package harness

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Quick: true, Subframes: 2000, Samples: 50_000}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "table1", "table2", "fig3a", "fig3b", "fig3c", "fig3d",
		"fig4", "fig6", "fig7", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"ablation-alg1", "ablation-delta", "ablation-granularity", "ablation-cache",
		"ablation-dispatch", "ablation-task-migration",
		"ext-parallel", "ext-hetero", "ext-transport", "ext-pooling", "ext-duplex",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := Run("nope", quick); err == nil {
		t.Fatal("unknown run accepted")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tb, err := Run(id, quick)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows produced")
			}
			if len(tb.Columns) == 0 {
				t.Fatal("no columns")
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Fatalf("ragged row %v", row)
				}
			}
			if !strings.Contains(tb.String(), tb.ID) {
				t.Fatal("rendering missing id")
			}
		})
	}
}

func parseCell(t *testing.T, tb *Table, row int, col string) float64 {
	t.Helper()
	ci := -1
	for i, c := range tb.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no column %q in %v", col, tb.Columns)
	}
	v, err := strconv.ParseFloat(tb.Rows[row][ci], 64)
	if err != nil {
		t.Fatalf("cell %d/%s = %q: %v", row, col, tb.Rows[row][ci], err)
	}
	return v
}

func TestFig15ReproducesHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := Run("fig15", Options{Subframes: 10000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		part := parseCell(t, tb, i, "partitioned")
		rt := parseCell(t, tb, i, "rt-opex")
		g8 := parseCell(t, tb, i, "global-8")
		rtt := parseCell(t, tb, i, "rtt2_us")
		// RT-OPEX must be at least ~8× better wherever partitioned misses.
		if part > 1e-3 && rt > part/8 {
			t.Errorf("rtt2=%v: rt-opex %v not ≥8× below partitioned %v", rtt, rt, part)
		}
		// Global must not beat partitioned meaningfully.
		if g8 < part*0.7 {
			t.Errorf("rtt2=%v: global-8 %v well below partitioned %v", rtt, g8, part)
		}
		// RT-OPEX virtually zero below 500 µs.
		if rtt < 500 && rt > 1e-3 {
			t.Errorf("rtt2=%v: rt-opex %v not ~zero", rtt, rt)
		}
	}
}

func TestFig17SupportedLoadGain(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := Run("fig17", Options{Subframes: 8000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	part := parseCell(t, tb, last, "partitioned")
	rt := parseCell(t, tb, last, "rt-opex")
	// Partitioned must be over the paper's 1e-2 threshold at peak load
	// while RT-OPEX stays well below it (the +15% supported-load claim).
	if part < 1e-2 {
		t.Errorf("partitioned at MCS 27 misses only %v, want > 1e-2", part)
	}
	if rt > part/2 {
		t.Errorf("rt-opex %v not well below partitioned %v at peak load", rt, part)
	}
	if rt > 1e-2 {
		t.Errorf("rt-opex %v above the 1e-2 threshold at 31.7 Mbps; paper supports this load", rt)
	}
}

func TestFig19Saturation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := Run("fig19", Options{Subframes: 8000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Find the 8- and 16-core rows.
	var miss8, miss16 float64
	for i := range tb.Rows {
		switch tb.Rows[i][0] {
		case "8":
			miss8 = parseCell(t, tb, i, "miss_rate")
		case "16":
			miss16 = parseCell(t, tb, i, "miss_rate")
		}
	}
	if miss16 < miss8*0.7 {
		t.Errorf("global-16 (%v) substantially better than global-8 (%v)", miss16, miss8)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("s", 0.0001)
	tb.Notes = append(tb.Notes, "n1")
	out := tb.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "note: n1", "0.0001"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.subframes() != 30000 || o.samples() != 1_000_000 || o.seed() == 0 {
		t.Fatal("defaults wrong")
	}
	q := Options{Quick: true}
	if q.subframes() != 3000 || q.samples() != 100_000 {
		t.Fatal("quick scaling wrong")
	}
	small := Options{Subframes: 10, Samples: 5}
	if small.subframes() != 10 || small.samples() != 5 {
		t.Fatal("explicit small values not honored")
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Columns: []string{"a", "b,c"}}
	tb.AddRow("v\"1", 2)
	tb.Notes = append(tb.Notes, "note here")
	csv := tb.CSV()
	for _, want := range []string{"a,\"b,c\"\n", "\"v\"\"1\",2\n", "# note here\n"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
}

func TestExtPoolingSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := Run("ext-pooling", Options{Subframes: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		savings := parseCell(t, tb, i, "savings")
		if savings <= 0 || savings >= 1 {
			t.Errorf("row %d: implausible pooling savings %v", i, savings)
		}
	}
	// Savings grow with the multiplexed population.
	first := parseCell(t, tb, 0, "savings")
	last := parseCell(t, tb, len(tb.Rows)-1, "savings")
	if last <= first {
		t.Errorf("pooling savings did not grow: %v -> %v", first, last)
	}
}

func TestExtDuplexOrderingPreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := Run("ext-duplex", Options{Subframes: 6000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		part := parseCell(t, tb, i, "partitioned")
		rt := parseCell(t, tb, i, "rt-opex")
		if rt >= part {
			t.Errorf("row %d: RT-OPEX (%v) not below partitioned (%v)", i, rt, part)
		}
	}
	// Duplex load must not reduce RT-OPEX's migration supply to zero.
	mig := parseCell(t, tb, 1, "rt-opex_decode_migrated")
	if mig <= 0.05 {
		t.Errorf("duplex decode migration collapsed to %v", mig)
	}
}

func TestAblationTaskMigrationEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := Run("ablation-task-migration", Options{Subframes: 6000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is the paper's provisioning: semi == partitioned exactly.
	p := parseCell(t, tb, 0, "partitioned")
	s := parseCell(t, tb, 0, "semi-partitioned")
	if p != s {
		t.Errorf("provisioned semi-partitioned %v != partitioned %v", s, p)
	}
	// Row 1 is under-provisioned: semi must now beat partitioned.
	p1 := parseCell(t, tb, 1, "partitioned")
	s1 := parseCell(t, tb, 1, "semi-partitioned")
	if s1 >= p1 {
		t.Errorf("under-provisioned semi-partitioned %v not below partitioned %v", s1, p1)
	}
}
