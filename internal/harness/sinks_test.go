package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/sched"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

// uniformTransport mirrors the jittery-transport acceptance scenario:
// arrivals deviate from the schedulers' expectation in both directions, so
// hosted migration batches get preempted and recomputed.
type uniformTransport struct{ mean, spread float64 }

func (u uniformTransport) Sample(r *stats.RNG) float64 {
	return u.mean + (r.Float64()-0.5)*2*u.spread
}

func jitteryWorkload(t *testing.T, subframes int, seed uint64) *sched.Workload {
	t.Helper()
	w, err := sched.BuildWorkload(sched.WorkloadConfig{
		Basestations: 4, Subframes: subframes, Antennas: 2, Bandwidth: lte.BW10MHz,
		SNRdB: 30, Lm: 4,
		Params: model.PaperGPP, Jitter: model.DefaultJitter, IterLaw: model.DefaultIterationLaw,
		Profiles: trace.DefaultProfiles, FixedMCS: -1,
		Transport:      uniformTransport{mean: 550, spread: 120},
		ExpectedRTT2US: 550,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestTracedRunCapturesMigrationLifecycle is the acceptance scenario: a
// 1000-subframe RT-OPEX run under transport jitter must export a trace
// containing at least one preempted and one recomputed migration batch.
func TestTracedRunCapturesMigrationLifecycle(t *testing.T) {
	res, err := TracedRun(jitteryWorkload(t, 1000, 7), sched.NewRTOPEX(2), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Jobs() != 4000 {
		t.Fatalf("jobs %d", res.Metrics.Jobs())
	}
	counts := map[trace.Kind]int{}
	for _, e := range res.Log.Events {
		counts[e.Event]++
	}
	for _, k := range []trace.Kind{
		trace.EvArrive, trace.EvStart, trace.EvFinish,
		trace.EvMigPlan, trace.EvMigComplete, trace.EvMigPreempt, trace.EvMigRecompute,
	} {
		if counts[k] == 0 {
			t.Errorf("trace has no %s events", k)
		}
	}
	if res.Engine.Executed == 0 || res.Engine.Scheduled < res.Engine.Executed {
		t.Fatalf("engine stats implausible: %+v", res.Engine)
	}
	if res.Engine.EndTimeUS < 999*1000 {
		t.Fatalf("run ended at %v µs, want ≈1000 subframes worth", res.Engine.EndTimeUS)
	}
}

func TestTracedRunRingBounded(t *testing.T) {
	res, err := TracedRun(jitteryWorkload(t, 200, 7), sched.NewRTOPEX(2), 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log.Events) != 64 {
		t.Fatalf("retained %d events, want ring capacity 64", len(res.Log.Events))
	}
	if res.Log.Dropped == 0 {
		t.Fatal("bounded ring reported no overwritten events")
	}
}

// TestTracedRunDeterministicExports: two identical runs must produce
// byte-identical metrics and trace documents.
func TestTracedRunDeterministicExports(t *testing.T) {
	export := func() ([]byte, []byte) {
		res, err := TracedRun(jitteryWorkload(t, 300, 5), sched.NewRTOPEX(2), 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		var mbuf, tbuf bytes.Buffer
		if err := res.WriteMetricsJSON(&mbuf); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteTraceJSON(&tbuf); err != nil {
			t.Fatal(err)
		}
		return mbuf.Bytes(), tbuf.Bytes()
	}
	m1, t1 := export()
	m2, t2 := export()
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics exports differ between identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("trace exports differ between identical runs")
	}
}

func TestSinkSaveRoundTrip(t *testing.T) {
	res, err := TracedRun(jitteryWorkload(t, 100, 7), sched.NewRTOPEX(2), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, csv := range []bool{false, true} {
		s := &Sink{Dir: filepath.Join(dir, map[bool]string{false: "json", true: "csv"}[csv]), CSV: csv}
		mPath, tPath, err := s.Save("demo", res)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{mPath, tPath} {
			fi, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() == 0 {
				t.Fatalf("%s is empty", p)
			}
		}
		if csv {
			continue
		}
		// The JSON trace must parse back into the same event count.
		f, err := os.Open(tPath)
		if err != nil {
			t.Fatal(err)
		}
		log, err := trace.ReadEventLog(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Events) != len(res.Log.Events) {
			t.Fatalf("reloaded %d events, want %d", len(log.Events), len(res.Log.Events))
		}
	}
}
