package harness

import (
	"rtopex/internal/sched"
)

func init() {
	register("ablation-alg1", "Algorithm 1 constraints: default vs greedy vs no-wait recovery", ablationAlg1)
	register("ablation-delta", "Migration overhead δ sweep", ablationDelta)
	register("ablation-granularity", "Subtask granularity: FFT/decode migration toggles", ablationGranularity)
	register("ablation-cache", "Global scheduler with and without the cache-thrashing model", ablationCache)
	register("ablation-dispatch", "Global scheduler EDF dispatch overhead sweep", ablationDispatch)
}

// ablationAlg1 compares the shipped RT-OPEX against variants that drop
// Algorithm 1's balancing requirements or the wait-if-cheaper recovery.
func ablationAlg1(o Options) (*Table, error) {
	t := &Table{ID: "ablation-alg1", Title: "RT-OPEX variants, miss rate vs RTT/2",
		Columns: []string{"rtt2_us", "default", "greedy(no R2/R3)", "no-wait recovery", "per-subtask δ"}}
	for _, rtt2 := range []float64{450, 550, 650} {
		w, err := paperWorkload(o, rtt2, -1, 10)
		if err != nil {
			return nil, err
		}
		def, err := sched.Run(w, sched.NewRTOPEX(2), 8)
		if err != nil {
			return nil, err
		}
		greedy := sched.NewRTOPEX(2)
		greedy.GreedyAll = true
		g, err := sched.Run(w, greedy, 8)
		if err != nil {
			return nil, err
		}
		nowait := sched.NewRTOPEX(2)
		nowait.NoWait = true
		nw, err := sched.Run(w, nowait, 8)
		if err != nil {
			return nil, err
		}
		perSub := sched.NewRTOPEX(2)
		perSub.PerSubtaskDelta = true
		ps, err := sched.Run(w, perSub, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(rtt2, def.MissRate(), g.MissRate(), nw.MissRate(), ps.MissRate())
	}
	t.Notes = append(t.Notes,
		"greedy offloads everything the windows admit, so the local thread idles while the big remote batch finishes — per-task completion is later, and the miss-rate penalty emerges as budgets tighten (high RTT)",
		"no-wait forces the paper-literal recovery (always recompute), costing a little when a batch is microseconds from done")
	return t, nil
}

// ablationDelta sweeps the migration overhead.
func ablationDelta(o Options) (*Table, error) {
	t := &Table{ID: "ablation-delta", Title: "RT-OPEX miss rate vs migration overhead δ (RTT/2 = 600 µs)",
		Columns: []string{"delta_us", "miss_rate", "decode_migrated", "fft_migrated"}}
	w, err := paperWorkload(o, 600, -1, 11)
	if err != nil {
		return nil, err
	}
	for _, delta := range []float64{0, 10, 20, 40, 80, 160} {
		r := sched.NewRTOPEX(2)
		r.DeltaUS = delta
		m, err := sched.Run(w, r, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(delta, m.MissRate(), m.MigratedDecodeFraction(), m.MigratedFFTFraction())
	}
	t.Notes = append(t.Notes,
		"Algorithm 1 charges δ against each idle window, so larger overheads shrink what fits and migration tapers off gracefully")
	return t, nil
}

// ablationGranularity toggles which task types may migrate.
func ablationGranularity(o Options) (*Table, error) {
	t := &Table{ID: "ablation-granularity", Title: "RT-OPEX task-type migration toggles, miss rate vs RTT/2",
		Columns: []string{"rtt2_us", "both", "decode-only", "fft-only", "none(=partitioned)"}}
	for _, rtt2 := range []float64{450, 550, 650} {
		w, err := paperWorkload(o, rtt2, -1, 12)
		if err != nil {
			return nil, err
		}
		run := func(fft, dec bool) (float64, error) {
			r := sched.NewRTOPEX(2)
			r.MigrateFFT = fft
			r.MigrateDecode = dec
			m, err := sched.Run(w, r, 8)
			if err != nil {
				return 0, err
			}
			return m.MissRate(), nil
		}
		both, err := run(true, true)
		if err != nil {
			return nil, err
		}
		deconly, err := run(false, true)
		if err != nil {
			return nil, err
		}
		fftonly, err := run(true, false)
		if err != nil {
			return nil, err
		}
		none, err := run(false, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(rtt2, both, deconly, fftonly, none)
	}
	t.Notes = append(t.Notes,
		"decode migration carries nearly all of the gain (the decode task dominates Trxproc); with both disabled RT-OPEX degenerates to its underlying partitioned schedule")
	return t, nil
}

// ablationCache isolates the Fig. 19 explanation.
func ablationCache(o Options) (*Table, error) {
	t := &Table{ID: "ablation-cache", Title: "Global scheduler ± cache model (RTT/2 = 550 µs)",
		Columns: []string{"cores", "with_cache", "without_cache"}}
	w, err := paperWorkload(o, 550, -1, 13)
	if err != nil {
		return nil, err
	}
	for _, cores := range []int{8, 16} {
		withC, err := sched.Run(w, sched.NewGlobal(), cores)
		if err != nil {
			return nil, err
		}
		g := sched.NewGlobal()
		g.Cache.Enabled = false
		withoutC, err := sched.Run(w, g, cores)
		if err != nil {
			return nil, err
		}
		t.AddRow(cores, withC.MissRate(), withoutC.MissRate())
	}
	t.Notes = append(t.Notes,
		"the paper attributes global's underperformance to cache thrashing when cores switch basestations; removing the model recovers most of the gap to partitioned")
	return t, nil
}

// ablationDispatch sweeps the global scheduler's per-dispatch overhead.
func ablationDispatch(o Options) (*Table, error) {
	t := &Table{ID: "ablation-dispatch", Title: "Global scheduler vs dispatch overhead (RTT/2 = 550 µs, 8 cores)",
		Columns: []string{"dispatch_us", "miss_rate"}}
	w, err := paperWorkload(o, 550, -1, 14)
	if err != nil {
		return nil, err
	}
	for _, d := range []float64{0, 15, 30, 60, 120} {
		g := sched.NewGlobal()
		g.DispatchOverheadUS = d
		m, err := sched.Run(w, g, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(d, m.MissRate())
	}
	return t, nil
}

func init() {
	register("ablation-task-migration", "Task-level vs subtask-level migration", ablationTaskMigration)
}

// ablationTaskMigration isolates the paper's central design choice: the
// granularity of migration. Whole-job pushing (semi-partitioned) is shown
// to gain nothing under the paper's provisioning — the job's own deadline
// binds — while subtask migration keeps winning; under-provisioning flips
// the picture for whole jobs but still favors RT-OPEX.
func ablationTaskMigration(o Options) (*Table, error) {
	t := &Table{ID: "ablation-task-migration", Title: "Migration granularity, miss rate (RTT/2 = 600 µs)",
		Columns: []string{"provisioning", "partitioned", "semi-partitioned", "rt-opex"}}
	w, err := paperWorkload(o, 600, -1, 15)
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name       string
		coresPerBS int
		cores      int
	}{
		{"2 cores/BS on 8 (paper)", 2, 8},
		{"1 core/BS on 8 (under-provisioned + spares)", 1, 8},
	} {
		p, err := sched.Run(w, sched.NewPartitioned(row.coresPerBS), row.cores)
		if err != nil {
			return nil, err
		}
		sp, err := sched.Run(w, sched.NewSemiPartitioned(row.coresPerBS), row.cores)
		if err != nil {
			return nil, err
		}
		r, err := sched.Run(w, sched.NewRTOPEX(row.coresPerBS), row.cores)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.name, p.MissRate(), sp.MissRate(), r.MissRate())
	}
	t.Notes = append(t.Notes,
		"with ⌈Tmax⌉ cores per basestation the home core is always free at arrival, so pushing whole jobs cannot relax the binding deadline — semi-partitioned equals partitioned exactly",
		"subtask migration shortens the critical path itself, which no task-level scheme can")
	return t, nil
}
