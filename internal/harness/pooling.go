package harness

import (
	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/sched"
	"rtopex/internal/trace"
	"rtopex/internal/transport"
)

func init() {
	register("ext-pooling", "Resource pooling: cores needed, partitioned vs shared pool", extPooling)
}

// extPooling quantifies the intro's resource-pooling motivation (CloudIQ's
// "22% reduction in compute resources"): for growing basestation counts,
// how many cores does a shared-pool (global) scheduler need to stay under
// the 1e-2 miss threshold, versus the 2-per-basestation WCET provisioning
// of the partitioned schedule?
func extPooling(o Options) (*Table, error) {
	t := &Table{ID: "ext-pooling", Title: "Cores required at the 1e-2 miss threshold (RTT/2 = 450 µs)",
		Columns: []string{"basestations", "partitioned_cores", "pooled_cores", "savings"}}
	const rtt2 = 450
	for _, m := range []int{4, 8, 12, 16} {
		profiles := make([]trace.Profile, m)
		for i := range profiles {
			profiles[i] = trace.DefaultProfiles[i%len(trace.DefaultProfiles)]
		}
		w, err := sched.BuildWorkload(sched.WorkloadConfig{
			Basestations:   m,
			Subframes:      o.subframes(),
			Antennas:       2,
			Bandwidth:      lte.BW10MHz,
			SNRdB:          30,
			Lm:             4,
			Params:         model.PaperGPP,
			Jitter:         model.DefaultJitter,
			IterLaw:        model.DefaultIterationLaw,
			Profiles:       profiles,
			FixedMCS:       -1,
			Transport:      transport.FixedPath{OneWay: rtt2},
			ExpectedRTT2US: rtt2,
			Seed:           o.seed() + uint64(30+m),
		})
		if err != nil {
			return nil, err
		}
		partCores := 2 * m
		pooled, err := minPooledCores(w, partCores)
		if err != nil {
			return nil, err
		}
		savings := 1 - float64(pooled)/float64(partCores)
		t.AddRow(m, partCores, pooled, savings)
	}
	t.Notes = append(t.Notes,
		"pooled = smallest core count at which the shared-queue scheduler stays at or under a 1e-2 miss rate",
		"paper intro cites CloudIQ's ~22% compute reduction from pooling; the saving grows with the number of pooled basestations (statistical multiplexing)")
	return t, nil
}

// minPooledCores binary-searches the smallest core count keeping the
// global scheduler at or under the 1e-2 threshold.
func minPooledCores(w *sched.Workload, hi int) (int, error) {
	const threshold = 1e-2
	feasible := func(cores int) (bool, error) {
		m, err := sched.Run(w, sched.NewGlobal(), cores)
		if err != nil {
			return false, err
		}
		return m.MissRate() <= threshold, nil
	}
	lo := 1
	// Ensure the upper bound is feasible; widen once if not (cache
	// overheads can push global past partitioned provisioning).
	for {
		ok, err := feasible(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		hi *= 2
		if hi > 256 {
			return 0, nil
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, nil
}
