package harness

import (
	"fmt"

	"rtopex/internal/lte"
	"rtopex/internal/stats"
	"rtopex/internal/transport"
)

func init() {
	register("fig6", "Distribution of cloud network delay (1 vs 10 GbE)", fig6)
	register("fig7", "One-way transport latency vs antennas (5/10 MHz)", fig7)
}

// fig6 samples the one-way cloud latency at 1000 packets/s worth of draws.
func fig6(o Options) (*Table, error) {
	t := &Table{ID: "fig6", Title: "One-way cloud network latency (µs)",
		Columns: []string{"link", "mean", "p50", "p99", "p99.99", "P(>250us)"}}
	n := o.samples()
	for _, rate := range []float64{1, 10} {
		c := transport.NewCloud(rate)
		r := stats.NewRNG(o.seed() + uint64(rate))
		xs := make([]float64, n)
		over := 0
		for i := range xs {
			xs[i] = c.Sample(r)
			if xs[i] > 250 {
				over++
			}
		}
		s := stats.Summarize(xs)
		t.AddRow(fmt.Sprintf("%.0fGbE", rate), s.Mean, s.P50, s.P99, s.P9999, float64(over)/float64(n))
	}
	t.Notes = append(t.Notes,
		"paper: mean ≈0.15 ms with a long tail — about 1 in 1e4 packets above 0.25 ms on both links")
	return t, nil
}

// fig7 computes the radio→GPP one-way latency across antenna counts.
func fig7(o Options) (*Table, error) {
	t := &Table{ID: "fig7", Title: "One-way IQ transport latency (µs) vs antennas",
		Columns: []string{"antennas", "5MHz", "10MHz"}}
	tr := transport.DefaultIQTransport
	for _, n := range []int{1, 2, 4, 8, 12, 16} {
		l5, err := tr.OneWayUS(lte.BW5MHz, n)
		if err != nil {
			return nil, err
		}
		l10, err := tr.OneWayUS(lte.BW10MHz, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, l5, l10)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max antennas within the 1 ms subframe budget: %d at 10 MHz (paper: 8), %d at 5 MHz",
			tr.MaxAntennas(lte.BW10MHz, 1000), tr.MaxAntennas(lte.BW5MHz, 1000)),
		"paper anchors: ≈620 µs max at 5 MHz; >1000 µs at 10 MHz with 16 antennas; ≈0.9 ms at 8")
	return t, nil
}
