package harness

import (
	"fmt"

	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/sched"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
	"rtopex/internal/transport"
)

func init() {
	register("fig15", "Deadline-miss comparison of schedulers vs RTT/2", fig15)
	register("fig16", "Gaps and migrations in RT-OPEX vs RTT/2", fig16)
	register("fig17", "Deadline-misses vs offered load (RTT/2 = 500 µs)", fig17)
	register("fig19", "Global scheduler vs core count; MCS-27 processing times", fig19)
}

// paperWorkload is the evaluation setup of §4.2: 4 basestations, N = 2,
// 10 MHz, 100% PRB, SNR 30 dB, Lm = 4, fixed transport delay.
func paperWorkload(o Options, rtt2 float64, fixedMCS int, seedOff uint64) (*sched.Workload, error) {
	return sched.BuildWorkload(sched.WorkloadConfig{
		Basestations:   4,
		Subframes:      o.subframes(),
		Antennas:       2,
		Bandwidth:      lte.BW10MHz,
		SNRdB:          30,
		Lm:             4,
		Params:         model.PaperGPP,
		Jitter:         model.DefaultJitter,
		IterLaw:        model.DefaultIterationLaw,
		Profiles:       trace.DefaultProfiles,
		FixedMCS:       fixedMCS,
		Transport:      transport.FixedPath{OneWay: rtt2},
		ExpectedRTT2US: rtt2,
		Seed:           o.seed() + seedOff,
	})
}

// rttSweep is the Fig. 15/16 x-axis.
var rttSweep = []float64{400, 450, 500, 550, 600, 650, 700}

// fig15 runs the four schedulers across the transport-delay sweep.
func fig15(o Options) (*Table, error) {
	t := &Table{ID: "fig15", Title: "Deadline-miss rate vs RTT/2 (µs)",
		Columns: []string{"rtt2_us", "partitioned", "global-8", "global-16", "rt-opex"}}
	for _, rtt2 := range rttSweep {
		w, err := paperWorkload(o, rtt2, -1, 0)
		if err != nil {
			return nil, err
		}
		p, err := sched.Run(w, sched.NewPartitioned(2), 8)
		if err != nil {
			return nil, err
		}
		g8, err := sched.Run(w, sched.NewGlobal(), 8)
		if err != nil {
			return nil, err
		}
		g16, err := sched.Run(w, sched.NewGlobal(), 16)
		if err != nil {
			return nil, err
		}
		r, err := sched.Run(w, sched.NewRTOPEX(2), 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(rtt2, p.MissRate(), g8.MissRate(), g16.MissRate(), r.MissRate())
	}
	t.Notes = append(t.Notes,
		"paper claims: RT-OPEX ~zero below 500 µs and ≥10× lower miss rate than partitioned/global; global slightly worse than partitioned; global-16 no better than global-8")
	return t, nil
}

// fig16 reports partitioned gaps and RT-OPEX migration statistics.
func fig16(o Options) (*Table, error) {
	t := &Table{ID: "fig16", Title: "Partitioned gaps and RT-OPEX migrations vs RTT/2",
		Columns: []string{"rtt2_us", "gap>500us", "gap_p50_us", "fft_migrated", "decode_migrated", "decode_batch_size", "recoveries"}}
	for _, rtt2 := range rttSweep {
		w, err := paperWorkload(o, rtt2, -1, 1)
		if err != nil {
			return nil, err
		}
		p, err := sched.Run(w, sched.NewPartitioned(2), 8)
		if err != nil {
			return nil, err
		}
		r, err := sched.Run(w, sched.NewRTOPEX(2), 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(rtt2, p.GapFractionAbove(500), stats.Quantile(p.Gaps, 0.5),
			r.MigratedFFTFraction(), r.MigratedDecodeFraction(), r.MeanDecodeBatchSize(), r.Recoveries)
	}
	t.Notes = append(t.Notes,
		"paper: at RTT/2 < 500 µs, >60% of subframes leave gaps above 500 µs; decode migrations shrink as gaps narrow while small FFT subtasks keep migrating")
	return t, nil
}

// fig17 fixes RTT/2 = 500 µs and sweeps the offered load via fixed MCS.
func fig17(o Options) (*Table, error) {
	t := &Table{ID: "fig17", Title: "Deadline-miss rate vs offered load, RTT/2 = 500 µs",
		Columns: []string{"mcs", "load_mbps", "partitioned", "global-8", "rt-opex"}}
	const rtt2 = 500
	var supportedPart, supportedRT float64
	for _, mcs := range []int{0, 5, 9, 13, 17, 20, 22, 24, 25, 26, 27} {
		mbps, err := lte.ThroughputMbps(mcs, lte.BW10MHz)
		if err != nil {
			return nil, err
		}
		w, err := paperWorkload(o, rtt2, mcs, 2)
		if err != nil {
			return nil, err
		}
		p, err := sched.Run(w, sched.NewPartitioned(2), 8)
		if err != nil {
			return nil, err
		}
		g, err := sched.Run(w, sched.NewGlobal(), 8)
		if err != nil {
			return nil, err
		}
		r, err := sched.Run(w, sched.NewRTOPEX(2), 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(mcs, mbps, p.MissRate(), g.MissRate(), r.MissRate())
		if p.MissRate() <= 1e-2 {
			supportedPart = mbps
		}
		if r.MissRate() <= 1e-2 {
			supportedRT = mbps
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("supported load at the 1e-2 miss threshold: partitioned %.1f Mbps, RT-OPEX %.1f Mbps (+%.0f%%)",
			supportedPart, supportedRT, 100*(supportedRT-supportedPart)/maxf(supportedPart, 1)),
		"paper: RT-OPEX sustains ~15% higher load (31 vs 27 Mbps) at the 1e-2 threshold")
	return t, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// fig19 sweeps the global scheduler's core count and contrasts the MCS-27
// processing-time distribution at 8 vs 16 cores.
func fig19(o Options) (*Table, error) {
	t := &Table{ID: "fig19", Title: "Global scheduler vs cores (RTT/2 = 550 µs)",
		Columns: []string{"cores", "miss_rate", "mcs27_proc_p50", "mcs27_proc_p90", "mcs27_proc_p99"}}
	const rtt2 = 550
	w, err := paperWorkload(o, rtt2, -1, 3)
	if err != nil {
		return nil, err
	}
	for _, cores := range []int{4, 6, 8, 10, 12, 16} {
		res, err := runGlobalWithProcMCS(w, sched.NewGlobal(), cores, 27)
		if err != nil {
			return nil, err
		}
		t.AddRow(cores, res.MissRate(),
			stats.Quantile(res.ProcTimes, 0.50),
			stats.Quantile(res.ProcTimes, 0.90),
			stats.Quantile(res.ProcTimes, 0.99))
	}
	t.Notes = append(t.Notes,
		"paper: performance saturates around 8 cores and worsens beyond (cache thrashing); at 16 cores >10% of MCS-27 subframes take ~80 µs longer")
	return t, nil
}

// runGlobalWithProcMCS mirrors sched.Run but installs an MCS filter on the
// processing-time samples before arrivals fire.
func runGlobalWithProcMCS(w *sched.Workload, s sched.Scheduler, cores, mcs int) (*sched.Metrics, error) {
	return sched.RunWithMetricsSetup(w, s, cores, func(m *sched.Metrics) {
		m.RecordProcMCS = mcs
	})
}
