package harness

import (
	"fmt"
	"runtime"
	"time"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/phy"
	"rtopex/internal/stats"
)

func init() {
	registerMeasured("fig4", "Task execution times on one vs two cores (measured, Go PHY)", fig4)
	register("fig18", "Local vs migrated task processing times", fig18)
}

// measuredPipeline builds one decodable MCS-27 subframe and returns the
// receiver plus its staged pipeline, for wall-clock task measurements on
// this repository's own PHY (the paper's Fig. 4 measures OAI's). Receivers
// come from the arena so repeated trials reuse warmed scratch.
func measuredPipeline(arena *phy.Arena, seed uint64) (*phy.Receiver, [][]complex128, float64, error) {
	cfg := phy.Config{
		Bandwidth: lte.BW10MHz,
		MCS:       27,
		Antennas:  2,
		RNTI:      0x1001,
		CellID:    7,
	}
	tx, err := phy.NewTransmitter(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	r := stats.NewRNG(seed)
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)
	wave, err := tx.Transmit(payload)
	if err != nil {
		return nil, nil, 0, err
	}
	ch, err := channel.New(30, cfg.Antennas, seed+1)
	if err != nil {
		return nil, nil, 0, err
	}
	iq, _ := ch.Apply(wave)
	rx, err := arena.Get(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	return rx, iq, ch.N0(), nil
}

// runStage executes a stage's subtasks on the pool (nil runs them serially)
// and returns the wall-clock duration.
func runStage(st phy.Stage, pool *phy.Pool) time.Duration {
	start := time.Now()
	if pool == nil {
		for _, sub := range st.Subtasks {
			sub()
		}
		return time.Since(start)
	}
	pool.Run(st.Subtasks)
	return time.Since(start)
}

// fig4 measures the FFT and decode tasks of the real Go chain on one vs two
// workers. Absolute times differ from the paper's SSE-optimized OAI build;
// the reproduced claim is the ~2× speedup with small overhead.
func fig4(o Options) (*Table, error) {
	trials := 20
	if o.Quick {
		trials = 5
	}
	arena := phy.NewArena()
	t := &Table{ID: "fig4", Title: "Measured Go-PHY task times (ms), MCS 27, N = 2",
		Columns: []string{"task", "cores", "p50_ms", "min_ms"}}
	for _, task := range []phy.TaskName{phy.TaskFFT, phy.TaskDecode} {
		for _, workers := range []int{1, 2} {
			var pool *phy.Pool
			if workers > 1 {
				pool = phy.NewPool(workers)
			}
			var samples []float64
			for i := 0; i < trials; i++ {
				rx, iq, n0, err := measuredPipeline(arena, o.seed()+uint64(i))
				if err != nil {
					return nil, err
				}
				stages, err := rx.Pipeline(iq, n0)
				if err != nil {
					return nil, err
				}
				for _, st := range stages {
					if st.Name == task {
						samples = append(samples, runStage(st, pool).Seconds()*1000)
						break
					}
					runStage(st, nil) // earlier stages feed this one
				}
				arena.Put(rx)
			}
			if pool != nil {
				pool.Close()
			}
			t.AddRow(string(task), workers,
				stats.Quantile(samples, 0.5), stats.Summarize(samples).Min)
		}
	}
	t.Notes = append(t.Notes,
		"paper (OAI, Xeon): FFT over 2 cores nearly halves with ≤6 µs overhead; decode drops 980→670 µs",
		"this chain is pure Go without SIMD, so absolute values are larger; the parallel speedup is the claim under test",
		fmt.Sprintf("measured on %d CPU(s) — the 2-worker rows only show a speedup when ≥2 CPUs are available", runtime.NumCPU()))
	return t, nil
}

// fig18 contrasts local and migrated task processing times using the
// calibrated model: migration adds the measured δ ≈ 20 µs context-fetch
// overhead for both task types.
func fig18(o Options) (*Table, error) {
	const delta = 20.0
	d27, err := lte.SubcarrierLoad(27, lte.BW10MHz)
	if err != nil {
		return nil, err
	}
	tasks := model.PaperGPP.Tasks(2, 6, d27, 2)
	t := &Table{ID: "fig18", Title: "Local vs migrated task processing time (µs)",
		Columns: []string{"task", "local_p50", "migrated_p50", "overhead"}}
	t.AddRow("fft", tasks.FFT, tasks.FFT+delta, delta)
	t.AddRow("decode(1 subtask)", tasks.Decode/6, tasks.Decode/6+delta, delta)
	t.AddRow("decode(task)", tasks.Decode, tasks.Decode+delta, delta)
	t.Notes = append(t.Notes,
		"paper: FFT median 108 → 126 µs when migrated (+18 µs); decode overhead ≈20 µs; the cost is a fixed context fetch, independent of subtask type")
	return t, nil
}
