package harness

import (
	"fmt"

	"rtopex/internal/lte"
	"rtopex/internal/model"
	"rtopex/internal/sched"
	"rtopex/internal/trace"
	"rtopex/internal/transport"
)

func init() {
	register("table2", "Qualitative comparison of C-RAN scheduling approaches", table2)
	register("ext-parallel", "Static parallelism (BigStation-style) vs RT-OPEX", extParallel)
	register("ext-hetero", "Heterogeneous basestations (§5.D generality)", extHetero)
	register("ext-transport", "Jittery transport path instead of fixed delays", extTransport)
}

// table2 renders the paper's Table 2, extended with this repository's
// quantitative backing where the comparator is implemented.
func table2(Options) (*Table, error) {
	t := &Table{ID: "table2", Title: "Related scheduling approaches in C-RAN",
		Columns: []string{"system", "migration", "compute_resources", "granularity", "implemented_as"}}
	t.AddRow("PRAN", "planned", "dynamic", "subtask", "sched.PRAN")
	t.AddRow("CloudIQ", "no", "fixed", "task", "sched.Partitioned")
	t.AddRow("WiBench", "no", "fixed", "subtask", "—")
	t.AddRow("BigStation", "no", "fixed", "subtask", "sched.StaticParallel")
	t.AddRow("RT-OPEX", "yes", "fixed/dynamic", "subtask", "sched.RTOPEX")
	t.Notes = append(t.Notes,
		"Table 2 is qualitative in the paper; run ext-parallel for the quantitative BigStation-style comparison")
	return t, nil
}

// extParallel compares RT-OPEX against static subtask parallelism at equal
// and at matched-resource core counts.
func extParallel(o Options) (*Table, error) {
	t := &Table{ID: "ext-parallel", Title: "RT-OPEX vs static parallelism and PRAN, miss rate vs RTT/2",
		Columns: []string{"rtt2_us", "rt-opex(8c)", "static-2(8c)", "static-4(16c)", "pran(8c)", "partitioned(8c)"}}
	for _, rtt2 := range []float64{450, 550, 650} {
		w, err := paperWorkload(o, rtt2, -1, 20)
		if err != nil {
			return nil, err
		}
		r, err := sched.Run(w, sched.NewRTOPEX(2), 8)
		if err != nil {
			return nil, err
		}
		s2, err := sched.Run(w, sched.NewStaticParallel(2), 8)
		if err != nil {
			return nil, err
		}
		s4, err := sched.Run(w, sched.NewStaticParallel(4), 16)
		if err != nil {
			return nil, err
		}
		pr, err := sched.Run(w, sched.NewPRAN(), 8)
		if err != nil {
			return nil, err
		}
		p, err := sched.Run(w, sched.NewPartitioned(2), 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(rtt2, r.MissRate(), s2.MissRate(), s4.MissRate(), pr.MissRate(), p.MissRate())
	}
	t.Notes = append(t.Notes,
		"static parallelism is strong when the chain is restructured for it (the paper's Fig. 4 shows the split itself is cheap), but its fan-out is fixed at design time: static-4 needs 16 cores for the same 4 basestations, and any loss of cores breaks the schedule outright (§5.B)",
		"RT-OPEX reaches within a small factor of static-2 from an unmodified serial chain, and unlike the static split it automatically exploits whatever cores happen to be idle")
	return t, nil
}

// extHetero mixes a heavy macro cell with light IoT-style cells.
func extHetero(o Options) (*Table, error) {
	w, err := sched.BuildWorkload(sched.WorkloadConfig{
		Basestations: 4,
		Subframes:    o.subframes(),
		Antennas:     2,
		// BS1 is a 4-antenna macro cell; BS3/BS4 are single-antenna
		// small cells — §5.D's heterogeneous pool.
		PerBSAntennas: []int{4, 2, 1, 1},
		Bandwidth:     lte.BW10MHz,
		SNRdB:         30,
		Lm:            4,
		Params:        model.PaperGPP,
		Jitter:        model.DefaultJitter,
		IterLaw:       model.DefaultIterationLaw,
		Profiles: []trace.Profile{
			trace.DefaultProfiles[3], // heavy load on the macro
			trace.DefaultProfiles[2],
			trace.DefaultProfiles[0], // light IoT-ish cells
			trace.DefaultProfiles[0],
		},
		FixedMCS:       -1,
		Transport:      transport.FixedPath{OneWay: 550},
		ExpectedRTT2US: 550,
		Seed:           o.seed() + 21,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "ext-hetero", Title: "Heterogeneous basestations (4/2/1/1 antennas), RTT/2 = 550 µs",
		Columns: []string{"scheduler", "miss_total", "miss_bs1(macro)", "miss_bs3(small)", "decode_migrated"}}
	for _, s := range []sched.Scheduler{sched.NewPartitioned(2), sched.NewGlobal(), sched.NewRTOPEX(2)} {
		m, err := sched.Run(w, s, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Scheduler, m.MissRate(), m.PerBS[0].MissRate(), m.PerBS[2].MissRate(),
			m.MigratedDecodeFraction())
	}
	t.Notes = append(t.Notes,
		"the paper argues RT-OPEX shines when traffic and channel conditions vary widely across basestations: the lightly loaded small cells donate their idle cycles to the macro cell")
	return t, nil
}

// extTransport swaps the fixed delays for a sampled fronthaul+cloud path,
// exercising the preemption/recovery machinery that fixed delays never
// trigger.
func extTransport(o Options) (*Table, error) {
	t := &Table{ID: "ext-transport", Title: "Jittery transport (fronthaul + cloud tail) vs fixed delay",
		Columns: []string{"fronthaul_km", "e[rtt2]_us", "partitioned", "rt-opex", "preemptions", "recoveries"}}
	for _, km := range []float64{20, 40, 60, 80} {
		path := transport.Path{
			Fronthaul: transport.Fronthaul{DistanceKm: km, SwitchUS: 10},
			Cloud:     transport.NewCloud(10),
		}
		expected := path.Fronthaul.OneWayUS() + path.Cloud.Mean()
		w, err := sched.BuildWorkload(sched.WorkloadConfig{
			Basestations: 4, Subframes: o.subframes(), Antennas: 2,
			Bandwidth: lte.BW10MHz, SNRdB: 30, Lm: 4,
			Params: model.PaperGPP, Jitter: model.DefaultJitter,
			IterLaw:  model.DefaultIterationLaw,
			Profiles: trace.DefaultProfiles, FixedMCS: -1,
			Transport: path, ExpectedRTT2US: expected,
			Seed: o.seed() + 22,
		})
		if err != nil {
			return nil, err
		}
		p, err := sched.Run(w, sched.NewPartitioned(2), 8)
		if err != nil {
			return nil, err
		}
		r, err := sched.Run(w, sched.NewRTOPEX(2), 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(km, expected, p.MissRate(), r.MissRate(), r.Preemptions, r.Recoveries)
	}
	t.Notes = append(t.Notes,
		"with sampled transport, RT-OPEX's arrival predictions are sometimes wrong: early arrivals preempt hosted batches and the recovery path recomputes them — the §3.2 guarantee keeps the result no worse than partitioned",
		fmt.Sprintf("cloud segment: %s", "10 GbE, Fig. 6 calibration"))
	return t, nil
}

func init() {
	register("ext-duplex", "Full-duplex node: uplink decoding + downlink encoding on the same cores", extDuplex)
}

// extDuplex adds the Fig. 8 timeline's Tx-processing jobs: every downlink
// subframe must be encoded in the 1 ms before its transmission, on the
// same partitioned cores that decode the uplink. The downlink load eats
// into the idle gaps RT-OPEX harvests.
func extDuplex(o Options) (*Table, error) {
	t := &Table{ID: "ext-duplex", Title: "Uplink misses with and without downlink co-processing (RTT/2 = 550 µs)",
		Columns: []string{"workload", "partitioned", "rt-opex", "rt-opex_decode_migrated", "tx_miss(rt-opex)"}}
	for _, duplex := range []bool{false, true} {
		cfg := sched.WorkloadConfig{
			Basestations: 4, Subframes: o.subframes(), Antennas: 2,
			Bandwidth: lte.BW10MHz, SNRdB: 30, Lm: 4,
			Params: model.PaperGPP, Jitter: model.DefaultJitter,
			IterLaw:  model.DefaultIterationLaw,
			Profiles: trace.DefaultProfiles, FixedMCS: -1,
			Transport: transport.FixedPath{OneWay: 550}, ExpectedRTT2US: 550,
			Seed:            o.seed() + 23,
			IncludeDownlink: duplex,
		}
		w, err := sched.BuildWorkload(cfg)
		if err != nil {
			return nil, err
		}
		p, err := sched.Run(w, sched.NewPartitioned(2), 8)
		if err != nil {
			return nil, err
		}
		r, err := sched.Run(w, sched.NewRTOPEX(2), 8)
		if err != nil {
			return nil, err
		}
		name := "uplink only"
		if duplex {
			name = "uplink + downlink"
		}
		t.AddRow(name, p.MissRate(), r.MissRate(), r.MigratedDecodeFraction(), r.TxMissRate())
	}
	t.Notes = append(t.Notes,
		"downlink encoding (modeled at 0.4× the single-iteration uplink cost) occupies the partitioned gaps, raising uplink misses for every scheduler and shrinking RT-OPEX's migration windows — yet the ordering is preserved",
		"RT-OPEX's preemption/recovery machinery also fires here: hosted batches are preempted by the host core's own downlink jobs, which its window predictor does not model")
	return t, nil
}
