package benchparse

import (
	"strings"
	"testing"
)

func doc(bs ...Benchmark) Doc { return Doc{Benchmarks: bs} }

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Procs: 1, Iters: 1, Metrics: metrics}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := doc(bench("BenchmarkX", map[string]float64{"ns/op": 1000, "allocs/op": 10}))
	fresh := doc(bench("BenchmarkX", map[string]float64{"ns/op": 1400, "allocs/op": 10}))
	drifts := Compare(base, fresh, CompareOptions{Default: 0.5})
	if len(drifts) != 0 {
		t.Fatalf("drifts = %v, want none", drifts)
	}
}

func TestCompareFlagsExceededTolerance(t *testing.T) {
	base := doc(bench("BenchmarkX", map[string]float64{"ns/op": 1000, "allocs/op": 10}))
	fresh := doc(bench("BenchmarkX", map[string]float64{"ns/op": 1400, "allocs/op": 13}))
	drifts := Compare(base, fresh, CompareOptions{
		Default:    0.5,
		Tolerances: map[string]float64{"allocs/op": 0.1},
	})
	if len(drifts) != 1 || drifts[0].Metric != "allocs/op" {
		t.Fatalf("drifts = %v, want one allocs/op drift", drifts)
	}
	s := drifts[0].String()
	if !strings.Contains(s, "allocs/op") || !strings.Contains(s, "±10%") {
		t.Fatalf("drift rendering: %s", s)
	}
}

// The relative bound uses the larger magnitude, so improvements and
// regressions gate symmetrically: 1000→1400 and 1400→1000 both measure
// 28.6% drift.
func TestCompareSymmetric(t *testing.T) {
	a := doc(bench("BenchmarkX", map[string]float64{"ns/op": 1000}))
	b := doc(bench("BenchmarkX", map[string]float64{"ns/op": 1400}))
	opts := CompareOptions{Default: 0.25}
	if got := len(Compare(a, b, opts)); got != 1 {
		t.Fatalf("a→b drifts = %d, want 1", got)
	}
	if got := len(Compare(b, a, opts)); got != 1 {
		t.Fatalf("b→a drifts = %d, want 1", got)
	}
}

func TestCompareMissingBenchmarkAndMetric(t *testing.T) {
	base := doc(
		bench("BenchmarkGone", map[string]float64{"ns/op": 5}),
		bench("BenchmarkKept", map[string]float64{"ns/op": 5, "shards/s": 100}),
	)
	fresh := doc(
		bench("BenchmarkKept", map[string]float64{"ns/op": 5}),
		bench("BenchmarkNew", map[string]float64{"ns/op": 1}),
	)
	drifts := Compare(base, fresh, CompareOptions{Default: 0.5})
	if len(drifts) != 2 {
		t.Fatalf("drifts = %v, want missing benchmark + missing metric", drifts)
	}
	if !drifts[0].Missing || drifts[0].Benchmark != "BenchmarkGone" || drifts[0].Metric != "" {
		t.Fatalf("drift 0 = %+v, want whole-benchmark missing", drifts[0])
	}
	if !drifts[1].Missing || drifts[1].Metric != "shards/s" {
		t.Fatalf("drift 1 = %+v, want shards/s missing", drifts[1])
	}
	// New benchmarks in the fresh run are not regressions.
	for _, d := range drifts {
		if d.Benchmark == "BenchmarkNew" {
			t.Fatalf("new benchmark flagged: %+v", d)
		}
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := doc(bench("BenchmarkX", map[string]float64{"allocs/op": 0}))
	same := doc(bench("BenchmarkX", map[string]float64{"allocs/op": 0}))
	grew := doc(bench("BenchmarkX", map[string]float64{"allocs/op": 3}))
	if drifts := Compare(base, same, CompareOptions{Default: 0.1}); len(drifts) != 0 {
		t.Fatalf("0→0 drifted: %v", drifts)
	}
	// 0→3 is 100% relative drift against the larger magnitude: flagged.
	if drifts := Compare(base, grew, CompareOptions{Default: 0.5}); len(drifts) != 1 {
		t.Fatalf("0→3 drifts = %v, want 1", drifts)
	}
}
