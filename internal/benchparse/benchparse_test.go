package benchparse

import "testing"

func TestParseStandardOutput(t *testing.T) {
	doc := Parse([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: rtopex/internal/sweep",
		"BenchmarkSweepWorkerPool-8   \t     100\t  11055194 ns/op\t     144 B/op\t       3 allocs/op\t       361.8 shards/s",
		"BenchmarkPHYEndToEnd-8       \t       1\t  48211000 ns/op\t   48211 us/subframe",
		"BenchmarkSchedulerThroughput/rt-opex-8 \t 2 \t 500 ns/op",
		"PASS",
		"ok  \trtopex/internal/sweep\t1.23s",
	})
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}

	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkSweepWorkerPool" || b.Procs != 8 || b.Iters != 100 {
		t.Fatalf("bad header parse: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 11055194, "B/op": 144, "allocs/op": 3, "shards/s": 361.8,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %v, want %v", unit, got, want)
		}
	}

	if got := doc.Benchmarks[1].Metrics["us/subframe"]; got != 48211 {
		t.Fatalf("us/subframe = %v", got)
	}
	// Sub-benchmark keeps its slash path; the -8 suffix is still stripped.
	if doc.Benchmarks[2].Name != "BenchmarkSchedulerThroughput/rt-opex" {
		t.Fatalf("sub-benchmark name %q", doc.Benchmarks[2].Name)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",                  // no iters
		"BenchmarkX-8 abc 1 ns/op",      // non-numeric iters
		"BenchmarkX-8 10 1 ns/op extra", // dangling field
		"BenchmarkX-8 10 one ns/op",     // non-numeric value
		"NotABenchmark 10 1 ns/op",
	} {
		if doc := Parse([]string{line}); len(doc.Benchmarks) != 0 {
			t.Fatalf("accepted malformed line %q: %+v", line, doc.Benchmarks)
		}
	}
}

func TestParseNoSuffix(t *testing.T) {
	doc := Parse([]string{"BenchmarkPlain 5 20 ns/op"})
	if len(doc.Benchmarks) != 1 {
		t.Fatal("missed suffix-free line")
	}
	if b := doc.Benchmarks[0]; b.Name != "BenchmarkPlain" || b.Procs != 1 {
		t.Fatalf("bad parse: %+v", b)
	}
}
