package benchparse

import (
	"fmt"
	"math"
	"sort"
)

// CompareOptions configure the bench-regression gate. Benchmarks are noisy
// — especially single-iteration CI runs — so the gate speaks in relative
// tolerances per metric unit, not exact equality like the sweep gate.
type CompareOptions struct {
	// Tolerances maps metric unit (e.g. "ns/op", "shards/s") to the allowed
	// relative drift; metrics not listed use Default.
	Tolerances map[string]float64
	// Default is the relative tolerance for unlisted metrics.
	Default float64
}

func (o CompareOptions) tolerance(metric string) float64 {
	if t, ok := o.Tolerances[metric]; ok {
		return t
	}
	return o.Default
}

// Drift is one metric outside its tolerance, or a benchmark/metric the
// fresh run no longer reports.
type Drift struct {
	Benchmark string
	// Metric is empty when the whole benchmark is missing from the fresh run.
	Metric    string
	Base, Got float64
	// Rel is the observed relative drift |got−base| / max(|base|,|got|);
	// Tol is the bound it exceeded.
	Rel, Tol float64
	Missing  bool
}

func (d Drift) String() string {
	if d.Missing && d.Metric == "" {
		return fmt.Sprintf("%s: missing from fresh run", d.Benchmark)
	}
	if d.Missing {
		return fmt.Sprintf("%s %s: missing from fresh run (baseline %g)", d.Benchmark, d.Metric, d.Base)
	}
	return fmt.Sprintf("%s %s: baseline %g, got %g (%+.1f%%, tolerance ±%.0f%%)",
		d.Benchmark, d.Metric, d.Base, d.Got, 100*relDelta(d.Base, d.Got), 100*d.Tol)
}

// relDelta is the signed relative change from base to got, scaled by the
// larger magnitude (symmetric, finite for base = 0 unless both are 0).
func relDelta(base, got float64) float64 {
	den := math.Max(math.Abs(base), math.Abs(got))
	if den == 0 {
		return 0
	}
	return (got - base) / den
}

// Compare diffs a fresh benchmark run against a baseline document under
// per-metric relative tolerances: a metric passes when
// |got−base| ≤ tol·max(|base|,|got|). Like sweep.Compare, benchmarks or
// metrics present only in the fresh run are ignored (adding coverage is not
// a regression), but baseline entries missing from the fresh run are drifts
// — a silently dropped benchmark must not pass the gate. Results are sorted
// by (benchmark, metric).
func Compare(base, fresh Doc, o CompareOptions) []Drift {
	freshBy := make(map[string]Benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}
	var drifts []Drift
	for _, b := range base.Benchmarks {
		f, ok := freshBy[b.Name]
		if !ok {
			drifts = append(drifts, Drift{Benchmark: b.Name, Missing: true})
			continue
		}
		for metric, bv := range b.Metrics {
			gv, ok := f.Metrics[metric]
			if !ok {
				drifts = append(drifts, Drift{Benchmark: b.Name, Metric: metric, Base: bv, Missing: true})
				continue
			}
			tol := o.tolerance(metric)
			if math.Abs(gv-bv) > tol*math.Max(math.Abs(bv), math.Abs(gv)) {
				drifts = append(drifts, Drift{
					Benchmark: b.Name, Metric: metric,
					Base: bv, Got: gv,
					Rel: math.Abs(relDelta(bv, gv)), Tol: tol,
				})
			}
		}
	}
	sort.Slice(drifts, func(i, j int) bool {
		if drifts[i].Benchmark != drifts[j].Benchmark {
			return drifts[i].Benchmark < drifts[j].Benchmark
		}
		return drifts[i].Metric < drifts[j].Metric
	})
	return drifts
}
