// Package benchparse turns the text that `go test -bench` prints into a
// structured document. It understands the standard result-line grammar —
//
//	BenchmarkName-8    100    11055194 ns/op    144 B/op    3 allocs/op    361.8 shards/s
//
// a name (with the trailing -GOMAXPROCS suffix), an iteration count, then
// any number of "value unit" metric pairs, including custom metrics added
// with testing.B.ReportMetric. Everything else (PASS, ok, goos headers) is
// ignored.
package benchparse

import (
	"strconv"
	"strings"
)

// Benchmark is one result line.
type Benchmark struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix
	// (sub-benchmarks keep their /slash path).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 when absent.
	Procs int `json:"procs"`
	// Iters is the iteration count (b.N).
	Iters int64 `json:"iters"`
	// Metrics maps unit → value, e.g. "ns/op": 11055194, "shards/s": 361.8.
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole run.
type Doc struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse extracts every benchmark result line. Lines that do not match the
// grammar are skipped, so raw `go test` output can be fed in unfiltered.
func Parse(lines []string) Doc {
	var doc Doc
	for _, line := range lines {
		if b, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc
}

func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	// Shortest valid line: name, iters, value, unit.
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndex(f[0], "-"); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = f[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil || iters < 0 {
		return Benchmark{}, false
	}
	b.Iters = iters
	// Remaining fields come in (value, unit) pairs.
	rest := f[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true
}
