// Package stats provides the deterministic random-number generation,
// distribution sampling, and summary-statistics primitives shared by the
// simulator, the workload generator, and the experiment harness.
//
// Everything in this package is seeded explicitly: the same seed yields the
// same sample path on every platform, which is what makes the discrete-event
// experiments in internal/harness reproducible.
package stats

import "math"

// RNG is a xoshiro256** pseudo-random generator. It is small, fast, has a
// 2^256-1 period, and — unlike math/rand's global state — is safe to embed
// one-per-simulation-entity so that adding a new consumer of randomness does
// not perturb existing sample paths.
//
// RNG is not safe for concurrent use; give each goroutine its own instance
// (see Split).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which guarantees
// a well-mixed nonzero state even for small or zero seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from the parent by mixing a fresh draw through SplitMix64.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Float64 returns a uniform sample in [0,1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul128(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// NormFloat64 returns a standard normal sample (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an Exp(1) sample.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a sample of exp(N(mu, sigma^2)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a sample from a Pareto distribution with scale xm > 0 and
// shape alpha > 0 — the canonical heavy-tailed latency model.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Perm returns a uniformly random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
