package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and order statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
	P999, P9999   float64
}

// Summarize computes a Summary of xs. It copies xs before sorting, so the
// caller's slice is left untouched. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sq float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	for _, x := range sorted {
		d := x - mean
		sq += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq / float64(len(sorted)-1))
	}
	return Summary{
		N:     len(sorted),
		Mean:  mean,
		Std:   std,
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   quantileSorted(sorted, 0.50),
		P90:   quantileSorted(sorted, 0.90),
		P99:   quantileSorted(sorted, 0.99),
		P999:  quantileSorted(sorted, 0.999),
		P9999: quantileSorted(sorted, 0.9999),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g p50=%.3g p90=%.3g p99=%.3g p99.9=%.3g max=%.3g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.P999, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts internally.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDF is an empirical cumulative distribution function over a sorted sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied and sorted).
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Advance past equal values so At is right-continuous (<=, not <).
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the inverse CDF at q.
func (c *CDF) Quantile(q float64) float64 { return quantileSorted(c.sorted, q) }

// Len reports the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// Points returns up to n (x, F(x)) pairs evenly spaced in probability,
// suitable for plotting the CDF as a line series.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if n < 2 || len(c.sorted) == 0 {
		return nil, nil
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		xs[i] = quantileSorted(c.sorted, q)
		ps[i] = q
	}
	return xs, ps
}

// Histogram is a fixed-width-bin histogram.
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	Total    int
	binWidth float64
}

// NewHistogram creates a histogram with bins bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // guard against float rounding at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}

// Fraction returns the fraction of *all* recorded samples falling in bin i.
// The denominator is Total, which includes Under and Over, so the bin
// fractions sum to 1 − (Under+Over)/Total, not to 1, when samples fell
// outside [Lo, Hi). That is the right normalization for plots whose x-axis
// covers the full data range (the paper's figures); for a distribution over
// the in-range samples only, use InRangeFraction.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// InRangeFraction returns the fraction of in-range samples (Total − Under −
// Over) falling in bin i; the bin fractions sum to 1 whenever any sample
// landed in range.
func (h *Histogram) InRangeFraction(i int) float64 {
	in := h.Total - h.Under - h.Over
	if in == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(in)
}

// Mean of all recorded in-range samples cannot be recovered from a histogram;
// use Welford for streaming moments instead.

// Welford accumulates streaming mean and variance without storing samples.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples recorded.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest recorded sample (0 if none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest recorded sample (0 if none).
func (w *Welford) Max() float64 { return w.max }
