package stats

import (
	"math"
	"testing"
)

func TestFractionDenominatorIncludesOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(-1) // under
	h.Add(2)  // bin 0
	h.Add(7)  // bin 1
	h.Add(7)  // bin 1
	h.Add(12) // over

	// Fraction divides by Total (5), including Under and Over.
	if got := h.Fraction(1); got != 2.0/5 {
		t.Fatalf("Fraction(1) = %v, want 2/5", got)
	}
	if sum := h.Fraction(0) + h.Fraction(1); math.Abs(sum-3.0/5) > 1e-15 {
		t.Fatalf("bin fractions sum to %v, want 3/5 (out-of-range samples dilute)", sum)
	}

	// InRangeFraction divides by the in-range count (3) and sums to 1.
	if got := h.InRangeFraction(1); got != 2.0/3 {
		t.Fatalf("InRangeFraction(1) = %v, want 2/3", got)
	}
	if sum := h.InRangeFraction(0) + h.InRangeFraction(1); sum != 1.0 {
		t.Fatalf("in-range fractions sum to %v, want 1", sum)
	}
}

func TestFractionEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Fraction(0) != 0 || h.InRangeFraction(0) != 0 {
		t.Fatal("empty histogram fractions should be 0")
	}
	h.Add(-5)
	h.Add(9)
	if h.InRangeFraction(0) != 0 {
		t.Fatal("all-out-of-range histogram should report 0 in-range fraction")
	}
}

// TestAddTopEdgeRounding pins the guard in Add: a sample x < Hi whose
// (x−Lo)/binWidth rounds up to len(Counts) must land in the last bin, not
// out of bounds. lo=0, hi=0.7, bins=7 gives binWidth = 0.7/7 = 0.0999…96;
// the largest float below 0.7 divided by that width exceeds 7.
func TestAddTopEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 0.7, 7)
	x := math.Nextafter(0.7, 0)
	if x >= h.Hi {
		t.Fatal("test setup: x should be in range")
	}
	if idx := (x - h.Lo) / ((h.Hi - h.Lo) / 7); int(idx) < 7 {
		// The parameters no longer trigger the rounding hazard (e.g. the
		// binWidth computation changed); search for a triggering case so
		// the guard stays pinned.
		found := false
		for bins := 3; bins <= 64 && !found; bins++ {
			for _, hi := range []float64{0.7, 0.3, 1.3, 2.1, 4.9} {
				w := hi / float64(bins)
				v := math.Nextafter(hi, 0)
				if v < hi && int(v/w) >= bins {
					h = NewHistogram(0, hi, bins)
					x = v
					found = true
					break
				}
			}
		}
		if !found {
			t.Skip("no float-rounding trigger found for the top-edge guard")
		}
	}
	h.Add(x)
	if h.Over != 0 || h.Under != 0 {
		t.Fatalf("in-range sample counted out of range: under=%d over=%d", h.Under, h.Over)
	}
	if got := h.Counts[len(h.Counts)-1]; got != 1 {
		t.Fatalf("top-edge sample should land in the last bin; counts=%v", h.Counts)
	}
}

func TestTCrit95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {9, 2.262}, {30, 2.042},
		{35, 2.021}, {50, 2.000}, {100, 1.980}, {1000, 1.960},
	}
	for _, c := range cases {
		if got := TCrit95(c.df); got != c.want {
			t.Errorf("TCrit95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsNaN(TCrit95(0)) {
		t.Error("TCrit95(0) should be NaN")
	}
}

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{2, 4, 6})
	if mean != 4 {
		t.Fatalf("mean = %v, want 4", mean)
	}
	// s = 2, n = 3, t(2) = 4.303 → half = 4.303·2/√3.
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(half-want) > 1e-9 {
		t.Fatalf("half = %v, want %v", half, want)
	}

	if m, h := MeanCI95([]float64{7}); m != 7 || h != 0 {
		t.Fatalf("single sample: (%v, %v), want (7, 0)", m, h)
	}
	if m, h := MeanCI95(nil); !math.IsNaN(m) || h != 0 {
		t.Fatalf("empty: (%v, %v), want (NaN, 0)", m, h)
	}
}
