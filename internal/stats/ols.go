package stats

import (
	"errors"
	"fmt"
	"math"
)

// OLS fits y = X·beta by ordinary least squares via the normal equations,
// solved with Gaussian elimination and partial pivoting. It returns the
// coefficient vector and the coefficient of determination r².
//
// X is row-major: len(X) observations, each of the same length p (include a
// leading 1 column yourself for an intercept). This is exactly the fitting
// procedure the paper applies to its 4×10⁶ processing-time measurements to
// obtain Table 1.
func OLS(x [][]float64, y []float64) (beta []float64, r2 float64, err error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, 0, errors.New("stats: OLS needs matching non-empty X and y")
	}
	p := len(x[0])
	if p == 0 {
		return nil, 0, errors.New("stats: OLS needs at least one regressor")
	}
	if n < p {
		return nil, 0, fmt.Errorf("stats: OLS underdetermined: %d observations for %d coefficients", n, p)
	}
	// Accumulate XtX (p×p) and Xty (p).
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r := 0; r < n; r++ {
		row := x[r]
		if len(row) != p {
			return nil, 0, fmt.Errorf("stats: OLS row %d has %d columns, want %d", r, len(row), p)
		}
		for i := 0; i < p; i++ {
			xi := row[i]
			xty[i] += xi * y[r]
			for j := i; j < p; j++ {
				xtx[i][j] += xi * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	beta, err = solveLinear(xtx, xty)
	if err != nil {
		return nil, 0, err
	}
	// r² = 1 - SS_res/SS_tot.
	var ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		var pred float64
		for i := 0; i < p; i++ {
			pred += beta[i] * x[r][i]
		}
		d := y[r] - pred
		ssRes += d * d
		t := y[r] - ybar
		ssTot += t * t
	}
	if ssTot == 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return beta, r2, nil
}

// solveLinear solves A·x = b in place with partial pivoting. A and b are
// consumed.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	p := len(b)
	for col := 0; col < p; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < p; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, errors.New("stats: singular design matrix (collinear regressors?)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		inv := 1 / a[col][col]
		for r := col + 1; r < p; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < p; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	x := make([]float64, p)
	for r := p - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < p; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
