package stats

import "math"

// This file provides the Student-t machinery behind the sweep's replica
// aggregation: -replicas runs the same experiment under different derived
// seeds, and the summary rows report mean ± the 95% confidence half-width
// t(df)·s/√n. Only the two-sided 95% level is tabulated — it is the only
// level the reports use, and a table avoids reimplementing the incomplete
// beta function.

// tCrit95 holds the two-sided 95% critical values t_{0.975,df} for df 1–30.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for df degrees
// of freedom. df ≤ 0 returns NaN. Between tabulated points (df > 30) the
// standard coarse table steps are used, converging to the normal 1.960.
func TCrit95(df int) float64 {
	switch {
	case df <= 0:
		return math.NaN()
	case df <= len(tCrit95):
		return tCrit95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval, t_{0.975,n−1}·s/√n. Fewer than two samples yield a
// zero half-width (no dispersion estimate exists).
func MeanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return math.NaN(), 0
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if n < 2 {
		return w.Mean(), 0
	}
	return w.Mean(), TCrit95(n-1) * w.Std() / math.Sqrt(float64(n))
}
