package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRNGZeroSeedIsUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want about %d", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	w := Welford{}
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", w.Mean())
	}
	if math.Abs(w.Std()-1) > 0.02 {
		t.Fatalf("normal std = %v, want ~1", w.Std())
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	w := Welford{}
	for i := 0; i < 200000; i++ {
		w.Add(r.ExpFloat64())
	}
	if math.Abs(w.Mean()-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", w.Mean())
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(15)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.LogNormal(1.5, 0.7)
	}
	med := Quantile(xs, 0.5)
	if math.Abs(med-math.Exp(1.5)) > 0.15*math.Exp(1.5) {
		t.Fatalf("lognormal median = %v, want ~%v", med, math.Exp(1.5))
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(17)
	const xm, alpha = 2.0, 1.5
	exceed := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		x := r.Pareto(xm, alpha)
		if x < xm {
			t.Fatalf("Pareto sample %v below scale %v", x, xm)
		}
		if x > 10 {
			exceed++
		}
	}
	// P(X > 10) = (xm/10)^alpha.
	want := math.Pow(xm/10, alpha)
	got := float64(exceed) / draws
	if got < want/2 || got > want*2 {
		t.Fatalf("Pareto tail P(X>10) = %v, want ~%v", got, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	// Input must not be reordered.
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Fatalf("median of {0,10} = %v, want 5", q)
	}
	if q := Quantile(xs, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	xs, ps := c.Points(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("Points returned %d,%d entries", len(xs), len(ps))
	}
	if ps[0] != 0 || ps[4] != 1 {
		t.Fatalf("Points probabilities %v", ps)
	}
}

func TestCDFQuantileRoundTrip(t *testing.T) {
	r := NewRNG(23)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	c := NewCDF(xs)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := c.Quantile(q)
		if p := c.At(x); math.Abs(p-q) > 0.01 {
			t.Errorf("At(Quantile(%v)) = %v", q, p)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	h.Add(10) // boundary: at Hi counts as Over
	if h.Under != 1 || h.Over != 2 || h.Total != 13 {
		t.Fatalf("under=%d over=%d total=%d", h.Under, h.Over, h.Total)
	}
	for i := range h.Counts {
		if h.Counts[i] != 1 {
			t.Fatalf("bin %d count %d, want 1", i, h.Counts[i])
		}
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
	if f := h.Fraction(0); math.Abs(f-1.0/13) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", f)
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi <= lo")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestWelfordMatchesSummarize(t *testing.T) {
	r := NewRNG(29)
	xs := make([]float64, 5000)
	w := Welford{}
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	s := Summarize(xs)
	if math.Abs(w.Mean()-s.Mean) > 1e-9 {
		t.Fatalf("Welford mean %v vs Summarize %v", w.Mean(), s.Mean)
	}
	if math.Abs(w.Std()-s.Std) > 1e-9 {
		t.Fatalf("Welford std %v vs Summarize %v", w.Std(), s.Std)
	}
	if w.Min() != s.Min || w.Max() != s.Max {
		t.Fatal("Welford min/max mismatch")
	}
}

func TestOLSRecoversKnownCoefficients(t *testing.T) {
	r := NewRNG(31)
	const n = 4000
	// y = 31.4 + 169.1*a + 49.7*b + 93.0*c + noise — the paper's Table 1 shape.
	truth := []float64{31.4, 169.1, 49.7, 93.0}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := float64(r.Intn(4) + 1)
		b := float64(2 * (r.Intn(3) + 1))
		c := r.Float64() * 15
		x[i] = []float64{1, a, b, c}
		y[i] = truth[0] + truth[1]*a + truth[2]*b + truth[3]*c + r.NormFloat64()*5
	}
	beta, r2, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(beta[i]-truth[i]) > 2 {
			t.Fatalf("beta[%d] = %v, want ~%v", i, beta[i], truth[i])
		}
	}
	if r2 < 0.99 {
		t.Fatalf("r² = %v, want >= 0.99", r2)
	}
}

func TestOLSExactFit(t *testing.T) {
	// Noise-free data must give r² == 1 and exact coefficients.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11} // y = 2 + 3x
	beta, r2, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-9 || math.Abs(beta[1]-3) > 1e-9 {
		t.Fatalf("beta = %v", beta)
	}
	if math.Abs(r2-1) > 1e-12 {
		t.Fatalf("r² = %v", r2)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, _, err := OLS(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := OLS([][]float64{{1, 2}}, []float64{3}); err == nil {
		t.Error("underdetermined system accepted")
	}
	// Collinear columns: x2 = 2*x1.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, _, err := OLS(x, y); err == nil {
		t.Error("singular design matrix accepted")
	}
	// Ragged row.
	if _, _, err := OLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged X accepted")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matched parent %d/1000 times", same)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGNormFloat64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
