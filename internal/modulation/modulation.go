// Package modulation implements the LTE uplink constellation mappers and
// max-log-MAP soft demappers for QPSK, 16-QAM and 64-QAM per
// 3GPP TS 36.211 §7.1.
//
// Mapping follows the standard's Gray-coded tables with unit average symbol
// energy. The demappers produce log-likelihood ratios with the convention
// LLR > 0 ⇒ bit 0 more likely, which is what the turbo decoder and the
// descrambler in this chain expect.
package modulation

import (
	"fmt"
	"math"
)

// Scheme identifies a modulation order.
type Scheme int

// Supported modulation schemes. The numeric value is the modulation order
// K = bits per symbol, matching the K regressor of the paper's Eq. (1).
const (
	QPSK  Scheme = 2
	QAM16 Scheme = 4
	QAM64 Scheme = 6
)

// Order returns bits per symbol.
func (s Scheme) Order() int { return int(s) }

func (s Scheme) String() string {
	switch s {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Valid reports whether s is a supported scheme.
func (s Scheme) Valid() bool { return s == QPSK || s == QAM16 || s == QAM64 }

// Normalization factors giving unit average energy (TS 36.211 tables).
var (
	qpskScale  = 1 / math.Sqrt2
	qam16Scale = 1 / math.Sqrt(10)
	qam64Scale = 1 / math.Sqrt(42)
)

// pamLevel maps Gray-coded amplitude bits to the PAM level used by the
// 36.211 tables: for 16-QAM, bits (b) -> 1 or 3; for 64-QAM, bits (b1 b2) ->
// 3, 1, 5, 7 pattern. Expressed here via the standard's per-axis rules.
func pam4Level(b byte) float64 { // one bit selects |level| ∈ {1,3}
	if b == 0 {
		return 1
	}
	return 3
}

func pam8Level(b1, b2 byte) float64 { // two bits select |level| ∈ {1,3,5,7}
	switch b1<<1 | b2 {
	case 0b00:
		return 3
	case 0b01:
		return 1
	case 0b10:
		return 5
	default:
		return 7
	}
}

// Map modulates a 0/1 bit slice into complex symbols. The bit count must be
// a multiple of the modulation order; Map panics otherwise because the rate
// matcher always produces an exact multiple.
func Map(scheme Scheme, bitSlice []byte) []complex128 {
	k := scheme.Order()
	if !scheme.Valid() {
		panic(fmt.Sprintf("modulation: unsupported scheme %d", scheme))
	}
	if len(bitSlice)%k != 0 {
		panic(fmt.Sprintf("modulation: %d bits not a multiple of order %d", len(bitSlice), k))
	}
	out := make([]complex128, len(bitSlice)/k)
	switch scheme {
	case QPSK:
		for i := range out {
			b0, b1 := bitSlice[2*i], bitSlice[2*i+1]
			out[i] = complex(qpskSign(b0)*qpskScale, qpskSign(b1)*qpskScale)
		}
	case QAM16:
		for i := range out {
			b := bitSlice[4*i : 4*i+4]
			re := qpskSign(b[0]) * pam4Level(b[2]) * qam16Scale
			im := qpskSign(b[1]) * pam4Level(b[3]) * qam16Scale
			out[i] = complex(re, im)
		}
	case QAM64:
		for i := range out {
			b := bitSlice[6*i : 6*i+6]
			re := qpskSign(b[0]) * pam8Level(b[2], b[4]) * qam64Scale
			im := qpskSign(b[1]) * pam8Level(b[3], b[5]) * qam64Scale
			out[i] = complex(re, im)
		}
	}
	return out
}

func qpskSign(b byte) float64 {
	if b == 0 {
		return 1
	}
	return -1
}

// Demap computes max-log LLRs for each received symbol given the per-symbol
// noise variance n0 (complex noise power). Positive LLR means bit 0. The
// result has Order() entries per symbol, in transmission order.
//
// For the Gray mappings above the max-log LLRs have closed forms in the
// I and Q components, which keeps the demapper O(1) per bit.
func Demap(scheme Scheme, symbols []complex128, n0 float64) []float64 {
	out := make([]float64, len(symbols)*scheme.Order())
	DemapInto(out, scheme, symbols, n0)
	return out
}

// DemapInto is Demap into a caller-provided buffer of exactly
// len(symbols)·Order() entries — the allocation-free hot path of the
// receive chain. Results are bit-identical to Demap.
func DemapInto(dst []float64, scheme Scheme, symbols []complex128, n0 float64) {
	if n0 <= 0 {
		n0 = 1e-12
	}
	k := scheme.Order()
	if len(dst) != len(symbols)*k {
		panic(fmt.Sprintf("modulation: DemapInto dst length %d, want %d", len(dst), len(symbols)*k))
	}
	// 4/n0 · component is the exact QPSK LLR; the same scaling applies to the
	// piecewise-linear higher-order expressions below.
	g := 4 / n0
	switch scheme {
	case QPSK:
		for i, s := range symbols {
			dst[2*i] = g * real(s) * qpskScale
			dst[2*i+1] = g * imag(s) * qpskScale
		}
	case QAM16:
		a := qam16Scale
		for i, s := range symbols {
			re, im := real(s), imag(s)
			// Transmission order b0..b3 = sign(I), sign(Q), amp(I), amp(Q).
			// Amplitude bit is 0 ⇔ |x| < 2a (inner column).
			dst[4*i] = g * a * softSign16(re, a)
			dst[4*i+1] = g * a * softSign16(im, a)
			dst[4*i+2] = g * a * (2*a - math.Abs(re))
			dst[4*i+3] = g * a * (2*a - math.Abs(im))
		}
	case QAM64:
		a := qam64Scale
		for i, s := range symbols {
			re, im := real(s), imag(s)
			dst[6*i] = g * a * softSign64(re, a)
			dst[6*i+1] = g * a * softSign64(im, a)
			dst[6*i+2] = g * a * (4*a - math.Abs(re))
			dst[6*i+3] = g * a * (4*a - math.Abs(im))
			dst[6*i+4] = g * a * (2*a - math.Abs(math.Abs(re)-4*a))
			dst[6*i+5] = g * a * (2*a - math.Abs(math.Abs(im)-4*a))
		}
	default:
		panic(fmt.Sprintf("modulation: unsupported scheme %d", scheme))
	}
}

// softSign16 is the max-log LLR kernel for the 16-QAM sign bit: linear near
// zero, slope doubles past the inner constellation column.
func softSign16(x, a float64) float64 {
	switch {
	case x > 2*a:
		return 2 * (x - a)
	case x < -2*a:
		return 2 * (x + a)
	default:
		return x
	}
}

// softSign64 is the max-log LLR kernel for the 64-QAM sign bit.
func softSign64(x, a float64) float64 {
	ax := math.Abs(x)
	var v float64
	switch {
	case ax <= 2*a:
		v = x
	case ax <= 4*a:
		v = 2 * (x - signOf(x)*a)
	case ax <= 6*a:
		v = 3 * (x - signOf(x)*2*a)
	default:
		v = 4 * (x - signOf(x)*3*a)
	}
	return v
}

func signOf(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// HardDecision slices LLRs into bits: bit = 1 iff LLR < 0.
func HardDecision(llrs []float64) []byte {
	out := make([]byte, len(llrs))
	for i, l := range llrs {
		if l < 0 {
			out[i] = 1
		}
	}
	return out
}
