package modulation

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"rtopex/internal/stats"
)

func allSchemes() []Scheme { return []Scheme{QPSK, QAM16, QAM64} }

func TestSchemeBasics(t *testing.T) {
	if QPSK.Order() != 2 || QAM16.Order() != 4 || QAM64.Order() != 6 {
		t.Fatal("orders wrong")
	}
	if !QPSK.Valid() || Scheme(3).Valid() {
		t.Fatal("validity wrong")
	}
	if QPSK.String() != "QPSK" || QAM16.String() != "16QAM" || QAM64.String() != "64QAM" {
		t.Fatal("names wrong")
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Fatal("unknown scheme name wrong")
	}
}

func TestUnitAverageEnergy(t *testing.T) {
	r := stats.NewRNG(1)
	for _, s := range allSchemes() {
		n := s.Order() * 4096
		bitsIn := make([]byte, n)
		for i := range bitsIn {
			bitsIn[i] = byte(r.Intn(2))
		}
		syms := Map(s, bitsIn)
		var e float64
		for _, x := range syms {
			e += real(x)*real(x) + imag(x)*imag(x)
		}
		e /= float64(len(syms))
		if math.Abs(e-1) > 0.05 {
			t.Errorf("%v average energy = %v, want ~1", s, e)
		}
	}
}

func TestConstellationSize(t *testing.T) {
	for _, s := range allSchemes() {
		k := s.Order()
		seen := map[complex128]bool{}
		// Enumerate all bit patterns of one symbol.
		for pat := 0; pat < 1<<uint(k); pat++ {
			bitsIn := make([]byte, k)
			for i := 0; i < k; i++ {
				bitsIn[i] = byte((pat >> uint(k-1-i)) & 1)
			}
			sym := Map(s, bitsIn)[0]
			if seen[sym] {
				t.Fatalf("%v: duplicate constellation point for pattern %b", s, pat)
			}
			seen[sym] = true
		}
		if len(seen) != 1<<uint(k) {
			t.Fatalf("%v: %d distinct points, want %d", s, len(seen), 1<<uint(k))
		}
	}
}

func TestGrayMappingNeighbors(t *testing.T) {
	// In a Gray mapping, constellation points at minimum distance differ in
	// exactly one bit. Verify for 16-QAM by scanning all pairs.
	s := QAM16
	k := s.Order()
	type pt struct {
		sym complex128
		pat int
	}
	var pts []pt
	for pat := 0; pat < 1<<uint(k); pat++ {
		bitsIn := make([]byte, k)
		for i := 0; i < k; i++ {
			bitsIn[i] = byte((pat >> uint(k-1-i)) & 1)
		}
		pts = append(pts, pt{Map(s, bitsIn)[0], pat})
	}
	minD := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := cmplx.Abs(pts[i].sym - pts[j].sym); d < minD {
				minD = d
			}
		}
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := cmplx.Abs(pts[i].sym - pts[j].sym)
			if d < minD*1.001 {
				if popcount(pts[i].pat^pts[j].pat) != 1 {
					t.Fatalf("nearest neighbors %04b and %04b differ in >1 bit",
						pts[i].pat, pts[j].pat)
				}
			}
		}
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestMapDemapRoundTripNoiseless(t *testing.T) {
	r := stats.NewRNG(2)
	for _, s := range allSchemes() {
		n := s.Order() * 1000
		bitsIn := make([]byte, n)
		for i := range bitsIn {
			bitsIn[i] = byte(r.Intn(2))
		}
		llrs := Demap(s, Map(s, bitsIn), 0.01)
		got := HardDecision(llrs)
		for i := range bitsIn {
			if got[i] != bitsIn[i] {
				t.Fatalf("%v: bit %d flipped without noise", s, i)
			}
		}
	}
}

func TestDemapUnderModerateNoise(t *testing.T) {
	// At 15 dB SNR even 64-QAM should have a low (but nonzero) raw BER.
	r := stats.NewRNG(3)
	const snrDB = 15.0
	n0 := math.Pow(10, -snrDB/10)
	sigma := math.Sqrt(n0 / 2)
	for _, s := range allSchemes() {
		n := s.Order() * 20000
		bitsIn := make([]byte, n)
		for i := range bitsIn {
			bitsIn[i] = byte(r.Intn(2))
		}
		syms := Map(s, bitsIn)
		for i := range syms {
			syms[i] += complex(sigma*r.NormFloat64(), sigma*r.NormFloat64())
		}
		errs := 0
		for i, b := range HardDecision(Demap(s, syms, n0)) {
			if b != bitsIn[i] {
				errs++
			}
		}
		ber := float64(errs) / float64(n)
		limit := map[Scheme]float64{QPSK: 1e-4, QAM16: 5e-3, QAM64: 8e-2}[s]
		if ber > limit {
			t.Errorf("%v BER at 15 dB = %v, want < %v", s, ber, limit)
		}
	}
}

func TestLLRMagnitudeScalesWithSNR(t *testing.T) {
	bitsIn := []byte{0, 1}
	sym := Map(QPSK, bitsIn)
	loud := Demap(QPSK, sym, 0.01)
	quiet := Demap(QPSK, sym, 1.0)
	if math.Abs(loud[0]) <= math.Abs(quiet[0]) {
		t.Fatal("LLR confidence did not grow with SNR")
	}
}

func TestDemapZeroNoiseGuard(t *testing.T) {
	// n0 <= 0 must not produce NaN/Inf-free... it clamps internally.
	llrs := Demap(QPSK, []complex128{complex(0.7, -0.7)}, 0)
	for _, l := range llrs {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("non-finite LLR %v with n0=0", l)
		}
	}
}

func TestMapPanicsOnBadInput(t *testing.T) {
	mustPanic(t, func() { Map(QPSK, []byte{1}) })
	mustPanic(t, func() { Map(Scheme(5), []byte{1, 0}) })
	mustPanic(t, func() { Demap(Scheme(5), []complex128{0}, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestHardDecision(t *testing.T) {
	got := HardDecision([]float64{1.5, -0.1, 0, -9})
	want := []byte{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HardDecision[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	r := stats.NewRNG(4)
	f := func(raw []byte, schemeSel uint8) bool {
		s := allSchemes()[int(schemeSel)%3]
		n := (len(raw)/s.Order() + 1) * s.Order()
		bitsIn := make([]byte, n)
		for i := range bitsIn {
			bitsIn[i] = byte(r.Intn(2))
		}
		got := HardDecision(Demap(s, Map(s, bitsIn), 0.001))
		for i := range bitsIn {
			if got[i] != bitsIn[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMap64QAM(b *testing.B) {
	r := stats.NewRNG(5)
	bitsIn := make([]byte, 6*7200) // one 50-PRB subframe of 64-QAM REs
	for i := range bitsIn {
		bitsIn[i] = byte(r.Intn(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Map(QAM64, bitsIn)
	}
}

func BenchmarkDemap64QAM(b *testing.B) {
	r := stats.NewRNG(6)
	bitsIn := make([]byte, 6*7200)
	for i := range bitsIn {
		bitsIn[i] = byte(r.Intn(2))
	}
	syms := Map(QAM64, bitsIn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Demap(QAM64, syms, 0.01)
	}
}

func TestDemapIntoBitIdentical(t *testing.T) {
	r := stats.NewRNG(77)
	for _, scheme := range allSchemes() {
		syms := make([]complex128, 100)
		for i := range syms {
			syms[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		for _, n0 := range []float64{0.5, 1e-3, 0} {
			want := Demap(scheme, syms, n0)
			dst := make([]float64, len(syms)*scheme.Order())
			DemapInto(dst, scheme, syms, n0)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("%v n0=%v: DemapInto[%d] = %v, Demap %v", scheme, n0, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestDemapIntoAllocFreeAndChecksLength(t *testing.T) {
	syms := make([]complex128, 50)
	dst := make([]float64, 50*QAM64.Order())
	allocs := testing.AllocsPerRun(5, func() { DemapInto(dst, QAM64, syms, 0.1) })
	if allocs != 0 {
		t.Fatalf("DemapInto allocates %.1f objects per call, want 0", allocs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	DemapInto(dst[:10], QAM64, syms, 0.1)
}
