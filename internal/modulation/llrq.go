package modulation

import "math"

// LLR Q-format for the fixed-point decode path.
//
// The quantized turbo decoder operates on int16 LLRs in Q9.6: a soft value x
// is represented as round(x · 2^LLRQFracBits), saturated to ±LLRQMax. The
// format is fixed here — at the boundary where LLRs are born (the demapper's
// output convention, positive ⇒ bit 0) — so every quantized consumer agrees
// on the scale without carrying it around.
//
// The numbers are chosen against the demapper's dynamic range:
//
//   - 6 fractional bits keep the quantization step (1/64 ≈ 0.016 LLR) far
//     below the soft resolution that matters near the decoding threshold,
//     where useful LLR magnitudes are a few units.
//   - The ±LLRQMax rail (≈ ±128 in LLR units, 13 value bits) is where
//     certainty saturates: an LLR of 128 is an error probability of e⁻¹²⁸ —
//     clipping above it cannot change any max-log decision. Keeping the rail
//     at 2¹³−1 instead of int16's full range leaves two bits of headroom so
//     the decoder's branch metrics (sums of a systematic LLR, an a-priori
//     LLR of the same rail, and a parity LLR) still fit in int16.
const (
	// LLRQFracBits is the number of fractional bits in the Q-format.
	LLRQFracBits = 6
	// LLRQScale converts LLR units to quantized units (2^LLRQFracBits).
	LLRQScale = 1 << LLRQFracBits
	// LLRQMax is the saturation rail: quantized LLRs lie in [-LLRQMax, LLRQMax].
	LLRQMax = 1<<13 - 1
)

// QuantizeLLR converts one float64 LLR to the fixed Q-format, rounding to
// nearest (half away from zero) and saturating at the rails. NaN maps to 0
// (no information). Rounding is add-half-then-truncate rather than
// math.Round — same result on every representable half-step, an order of
// magnitude cheaper, and this runs once per received LLR. The saturation
// uses the min/max builtins rather than compares: received LLRs mix railed
// and in-range values unpredictably, so saturation branches would
// mispredict constantly in the hottest per-LLR loop of the chain.
func QuantizeLLR(x float64) int16 {
	v := x * LLRQScale
	v = min(max(v+math.Copysign(0.5, v), -LLRQMax), LLRQMax)
	if math.IsNaN(v) { // min/max propagate NaN, so one cold branch suffices
		return 0
	}
	return int16(v)
}

// QuantizeLLRsInto quantizes src into dst (same length), element-wise per
// QuantizeLLR. It is the allocation-free boundary between the float64 soft
// chain (demap, descramble, HARQ combining) and the int16 decode path.
func QuantizeLLRsInto(dst []int16, src []float64) {
	if len(dst) != len(src) {
		panic("modulation: QuantizeLLRsInto length mismatch")
	}
	for i, x := range src {
		dst[i] = QuantizeLLR(x)
	}
}
