package modulation

import (
	"math"
	"testing"
)

// TestQuantizeLLREdges pins the Q9.6 boundary behavior: rounding away from
// zero, symmetric saturation at ±LLRQMax, and the non-finite inputs a noisy
// demapper can emit (±Inf from a zero-noise guard miss, NaN from 0/0).
func TestQuantizeLLREdges(t *testing.T) {
	cases := []struct {
		in   float64
		want int16
	}{
		{0, 0},
		{1, LLRQScale}, // 1 LLR unit = 2^6
		{-1, -LLRQScale},
		{1.0 / LLRQScale, 1}, // one quantization step
		{-1.0 / LLRQScale, -1},
		{0.5 / LLRQScale, 1}, // half a step rounds away from zero
		{-0.5 / LLRQScale, -1},
		{0.49 / LLRQScale, 0}, // just under half a step truncates
		{-0.49 / LLRQScale, 0},
		{127, 127 * LLRQScale}, // near the rail, still exact
		{128, LLRQMax},         // 128·64 = 8192 saturates to 8191
		{-128, -LLRQMax},
		{1e6, LLRQMax},
		{-1e6, -LLRQMax},
		{math.Inf(1), LLRQMax},
		{math.Inf(-1), -LLRQMax},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := QuantizeLLR(c.in); got != c.want {
			t.Errorf("QuantizeLLR(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestQuantizeLLRMonotone: quantization must preserve ordering (and in
// particular the sign), or soft decisions would flip through the quantizer.
func TestQuantizeLLRMonotone(t *testing.T) {
	prev := int16(math.MinInt16)
	for x := -200.0; x <= 200.0; x += 0.0625 {
		q := QuantizeLLR(x)
		if q < prev {
			t.Fatalf("QuantizeLLR not monotone at %v: %d < %d", x, q, prev)
		}
		if x > 0 && q < 0 || x < 0 && q > 0 {
			t.Fatalf("QuantizeLLR(%v) = %d flips sign", x, q)
		}
		prev = q
	}
}

func TestQuantizeLLRsInto(t *testing.T) {
	src := []float64{0, 1, -1, math.Inf(1), math.NaN(), 1e9}
	dst := make([]int16, len(src))
	QuantizeLLRsInto(dst, src)
	want := []int16{0, LLRQScale, -LLRQScale, LLRQMax, 0, LLRQMax}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	QuantizeLLRsInto(make([]int16, 2), src)
}
