package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"rtopex/internal/obs"
)

// Tolerance bounds the allowed numeric drift of one cell: a candidate
// value v passes against baseline b when |v−b| ≤ Abs + Rel·max(|v|,|b|).
// The zero Tolerance demands exact equality — the right default for a
// deterministic simulation, where any drift means the code changed
// behavior.
type Tolerance struct {
	Rel float64
	Abs float64
}

func (t Tolerance) ok(base, got float64) bool {
	if base == got { // covers ±Inf and exact matches
		return true
	}
	if math.IsNaN(base) && math.IsNaN(got) {
		return true
	}
	return math.Abs(base-got) <= t.Abs+t.Rel*math.Max(math.Abs(base), math.Abs(got))
}

// ParseTolerances parses command-line tolerance specs of the form
// "column=rel" or "experiment/column=rel" or "column=rel,abs" into the
// PerColumn map CompareOptions takes. Rel and Abs are plain floats
// (e.g. "gap_p50=0.001" allows 0.1% relative drift on every gap_p50 cell).
// The split is at the LAST '=', so column names containing '=' (fig3a's
// "L=1", ablation-granularity's "none(=partitioned)") stay addressable.
func ParseTolerances(specs []string) (map[string]Tolerance, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make(map[string]Tolerance, len(specs))
	for _, spec := range specs {
		i := strings.LastIndex(spec, "=")
		var col, vals string
		ok := i >= 0
		if ok {
			col, vals = spec[:i], spec[i+1:]
		}
		if !ok || col == "" || vals == "" {
			return nil, fmt.Errorf("sweep: tolerance %q: want column=rel or column=rel,abs", spec)
		}
		var t Tolerance
		rel, abs, hasAbs := strings.Cut(vals, ",")
		v, err := strconv.ParseFloat(rel, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: tolerance %q: bad relative bound: %v", spec, err)
		}
		t.Rel = v
		if hasAbs {
			v, err := strconv.ParseFloat(abs, 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: tolerance %q: bad absolute bound: %v", spec, err)
			}
			t.Abs = v
		}
		out[col] = t
	}
	return out, nil
}

// CompareOptions configure the regression gate.
type CompareOptions struct {
	// Default applies to every numeric cell without a more specific entry.
	Default Tolerance
	// PerColumn overrides by "<experiment>/<column>" first, then by bare
	// "<column>".
	PerColumn map[string]Tolerance
	// IncludeMeasured also diffs wall-clock-dependent artifacts (normally
	// skipped: their values are not reproducible).
	IncludeMeasured bool
	// IgnoreNotes skips the free-text notes (which may embed derived
	// numbers) and gates on table cells only.
	IgnoreNotes bool
}

func (o CompareOptions) tolerance(experiment, column string) Tolerance {
	if t, ok := o.PerColumn[experiment+"/"+column]; ok {
		return t
	}
	if t, ok := o.PerColumn[column]; ok {
		return t
	}
	return o.Default
}

// Drift is one detected divergence between a baseline and a fresh sweep.
type Drift struct {
	Experiment string
	// Replica distinguishes drifts when a sweep ran replicas.
	Replica int
	// Where locates the divergence: "missing", "config", "shape",
	// "cell <row>/<column>", or "note <i>".
	Where    string
	Baseline string
	Fresh    string
}

func (d Drift) String() string {
	id := d.Experiment
	if d.Replica > 0 {
		id = fmt.Sprintf("%s#%d", id, d.Replica)
	}
	return fmt.Sprintf("%s: %s: baseline %q, got %q", id, d.Where, d.Baseline, d.Fresh)
}

// Compare diffs a fresh sweep against a baseline store and returns every
// drift. Records are matched by (experiment, replica); fresh experiments
// with no baseline are ignored (adding an experiment is not a regression),
// but baseline records missing from the fresh sweep are drifts — the gate
// must notice a silently skipped experiment.
func Compare(baseline, fresh []*Record, o CompareOptions) []Drift {
	type rkey struct {
		id      string
		replica int
	}
	freshBy := make(map[rkey]*Record, len(fresh))
	for _, r := range fresh {
		freshBy[rkey{r.Experiment, r.Replica}] = r
	}
	var drifts []Drift
	for _, b := range baseline {
		if b.Measured && !o.IncludeMeasured {
			continue
		}
		f, ok := freshBy[rkey{b.Experiment, b.Replica}]
		if !ok {
			drifts = append(drifts, Drift{Experiment: b.Experiment, Replica: b.Replica,
				Where: "missing", Baseline: b.Key, Fresh: "(no record)"})
			continue
		}
		drifts = append(drifts, compareRecord(b, f, o)...)
	}
	return drifts
}

func compareRecord(b, f *Record, o CompareOptions) []Drift {
	d := func(where, base, got string) Drift {
		return Drift{Experiment: b.Experiment, Replica: b.Replica, Where: where, Baseline: base, Fresh: got}
	}
	// A key mismatch means the configurations differ (seed, scale or
	// schema): cell values are incomparable, so report the config drift
	// alone.
	if b.Key != f.Key {
		return []Drift{d("config", fmt.Sprintf("%s %+v", b.Key, b.Config), fmt.Sprintf("%s %+v", f.Key, f.Config))}
	}
	bt, ft := b.Table, f.Table
	if bt == nil || ft == nil {
		if bt == ft {
			return nil
		}
		return []Drift{d("shape", fmt.Sprintf("table=%v", bt != nil), fmt.Sprintf("table=%v", ft != nil))}
	}
	if fmt.Sprint(bt.Columns) != fmt.Sprint(ft.Columns) {
		return []Drift{d("shape", fmt.Sprint(bt.Columns), fmt.Sprint(ft.Columns))}
	}
	if len(bt.Rows) != len(ft.Rows) {
		return []Drift{d("shape", fmt.Sprintf("%d rows", len(bt.Rows)), fmt.Sprintf("%d rows", len(ft.Rows)))}
	}
	var drifts []Drift
	for i := range bt.Rows {
		if len(bt.Rows[i]) != len(ft.Rows[i]) {
			drifts = append(drifts, d(fmt.Sprintf("shape row %d", i),
				fmt.Sprintf("%d cells", len(bt.Rows[i])), fmt.Sprintf("%d cells", len(ft.Rows[i]))))
			continue
		}
		for c := range bt.Rows[i] {
			col := fmt.Sprintf("col%d", c)
			if c < len(bt.Columns) {
				col = bt.Columns[c]
			}
			if !cellEqual(bt.Rows[i][c], ft.Rows[i][c], o.tolerance(b.Experiment, col)) {
				drifts = append(drifts, d(fmt.Sprintf("cell %d/%s", i, col), bt.Rows[i][c], ft.Rows[i][c]))
			}
		}
	}
	if !o.IgnoreNotes {
		if len(bt.Notes) != len(ft.Notes) {
			drifts = append(drifts, d("note count",
				fmt.Sprint(len(bt.Notes)), fmt.Sprint(len(ft.Notes))))
		} else {
			for i := range bt.Notes {
				if bt.Notes[i] != ft.Notes[i] {
					drifts = append(drifts, d(fmt.Sprintf("note %d", i), bt.Notes[i], ft.Notes[i]))
				}
			}
		}
	}
	drifts = append(drifts, compareObs(b, f, o)...)
	return drifts
}

// compareObs gates the embedded observability snapshots: counters must
// match exactly, gauges within the experiment's tolerance, histograms on
// exact count plus sum/p50/p99 within tolerance. Records without snapshots
// (schema 1 baselines, or only one side carrying one) are skipped — the
// gate tightens only when both sides speak the same schema.
func compareObs(b, f *Record, o CompareOptions) []Drift {
	if b.Obs == nil || f.Obs == nil {
		return nil
	}
	d := func(where, base, got string) Drift {
		return Drift{Experiment: b.Experiment, Replica: b.Replica, Where: where, Baseline: base, Fresh: got}
	}
	var drifts []Drift
	tol := func(name string) Tolerance { return o.tolerance(b.Experiment, name) }

	fc := make(map[string]int64, len(f.Obs.Counters))
	for _, c := range f.Obs.Counters {
		fc[obs.SeriesID(c.Name, c.Labels)] = c.Value
	}
	for _, c := range b.Obs.Counters {
		id := obs.SeriesID(c.Name, c.Labels)
		if got, ok := fc[id]; !ok || got != c.Value {
			fresh := "(no series)"
			if ok {
				fresh = fmt.Sprint(got)
			}
			drifts = append(drifts, d("obs counter "+id, fmt.Sprint(c.Value), fresh))
		}
	}

	fg := make(map[string]float64, len(f.Obs.Gauges))
	for _, g := range f.Obs.Gauges {
		fg[obs.SeriesID(g.Name, g.Labels)] = g.Value
	}
	for _, g := range b.Obs.Gauges {
		id := obs.SeriesID(g.Name, g.Labels)
		got, ok := fg[id]
		if !ok || !tol(g.Name).ok(g.Value, got) {
			fresh := "(no series)"
			if ok {
				fresh = fmt.Sprint(got)
			}
			drifts = append(drifts, d("obs gauge "+id, fmt.Sprint(g.Value), fresh))
		}
	}

	fh := make(map[string]obs.HistogramValue, len(f.Obs.Histograms))
	for _, h := range f.Obs.Histograms {
		fh[obs.SeriesID(h.Name, h.Labels)] = h.Value
	}
	for _, h := range b.Obs.Histograms {
		id := obs.SeriesID(h.Name, h.Labels)
		got, ok := fh[id]
		if !ok {
			drifts = append(drifts, d("obs histogram "+id, fmt.Sprintf("count=%d", h.Value.Count), "(no series)"))
			continue
		}
		t := tol(h.Name)
		switch {
		case got.Count != h.Value.Count:
			drifts = append(drifts, d("obs histogram "+id+" count",
				fmt.Sprint(h.Value.Count), fmt.Sprint(got.Count)))
		case !t.ok(h.Value.Sum, got.Sum):
			drifts = append(drifts, d("obs histogram "+id+" sum",
				fmt.Sprint(h.Value.Sum), fmt.Sprint(got.Sum)))
		case h.Value.Count > 0 && !t.ok(h.Value.Quantile(0.5), got.Quantile(0.5)):
			drifts = append(drifts, d("obs histogram "+id+" p50",
				fmt.Sprint(h.Value.Quantile(0.5)), fmt.Sprint(got.Quantile(0.5))))
		case h.Value.Count > 0 && !t.ok(h.Value.Quantile(0.99), got.Quantile(0.99)):
			drifts = append(drifts, d("obs histogram "+id+" p99",
				fmt.Sprint(h.Value.Quantile(0.99)), fmt.Sprint(got.Quantile(0.99))))
		}
	}
	return drifts
}

// cellEqual compares one cell: numerically under the tolerance when both
// sides parse as floats, exactly otherwise.
func cellEqual(base, got string, tol Tolerance) bool {
	if base == got {
		return true
	}
	bv, berr := strconv.ParseFloat(base, 64)
	gv, gerr := strconv.ParseFloat(got, 64)
	if berr != nil || gerr != nil {
		return false
	}
	return tol.ok(bv, gv)
}
