package sweep

import (
	"testing"

	"rtopex/internal/harness"
)

// BenchmarkSweepWorkerPool measures the orchestrator's own overhead —
// unit expansion, hashing, snapshot embedding, record assembly — with the
// experiment runner stubbed to a trivial table, so the shards/s figure is
// pure engine cost, not PHY cost.
func BenchmarkSweepWorkerPool(b *testing.B) {
	ids := []string{"fig15", "fig16", "fig17", "fig19"}
	const replicas = 4
	mk := func(id string, o harness.Options) (*harness.Table, error) {
		tb := &harness.Table{ID: id, Title: id, Columns: []string{"x", "miss_rate"}}
		tb.AddRow("150", 0.31)
		tb.AddRow("300", 0.35)
		return tb, nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			IDs:      ids,
			Workers:  4,
			Replicas: replicas,
			Options:  harness.Options{Quick: true, Seed: 11},
			runFn:    mk,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) != len(ids)*replicas {
			b.Fatalf("%d records, want %d", len(res.Records), len(ids)*replicas)
		}
	}
	b.ReportMetric(float64(len(ids)*replicas*b.N)/b.Elapsed().Seconds(), "shards/s")
}
