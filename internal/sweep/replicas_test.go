package sweep

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"rtopex/internal/harness"
)

func replicaRecord(id string, replica int, miss string) *Record {
	tb := &harness.Table{ID: id, Title: "t " + id, Columns: []string{"rtt2_us", "miss_rate"}}
	tb.AddRow("150", miss)
	cfg := harness.ResolvedOptions{Subframes: 10, Samples: 10, Seed: uint64(replica + 1)}
	return &Record{
		Schema: SchemaVersion, Key: Key(id, cfg), Experiment: id,
		Replica: replica, Config: cfg, Table: tb,
	}
}

func TestAggregateReplicas(t *testing.T) {
	recs := []*Record{
		replicaRecord("fig19", 0, "0.010"),
		replicaRecord("fig19", 1, "0.014"),
		replicaRecord("fig19", 2, "0.012"),
		replicaRecord("solo", 0, "0.5"), // single replica: skipped
	}
	aggs := AggregateReplicas(recs)
	if len(aggs) != 1 || aggs[0].ID != "fig19" {
		t.Fatalf("aggregated %d tables: %+v", len(aggs), aggs)
	}
	agg := aggs[0]
	if agg.Rows[0][0] != "150" {
		t.Fatalf("identical x-axis cell should pass through: %q", agg.Rows[0][0])
	}
	cell := agg.Rows[0][1]
	if !strings.Contains(cell, "±") || !strings.HasPrefix(cell, "0.012") {
		t.Fatalf("miss cell = %q, want mean 0.012 ± CI", cell)
	}
	if len(agg.Notes) == 0 || !strings.Contains(agg.Notes[0], "Student-t") {
		t.Fatalf("aggregation note missing: %v", agg.Notes)
	}
	if !strings.Contains(agg.Title, "3 replicas") {
		t.Fatalf("title = %q", agg.Title)
	}
}

func TestAggregateReplicasShapeMismatchSkipped(t *testing.T) {
	a := replicaRecord("fig19", 0, "0.01")
	b := replicaRecord("fig19", 1, "0.02")
	b.Table.Columns = []string{"only_one"}
	if aggs := AggregateReplicas([]*Record{a, b}); len(aggs) != 0 {
		t.Fatalf("mismatched shapes should not aggregate: %+v", aggs)
	}
}

// TestSweepReplicasAggregate runs a real replicated sweep (fake runner) and
// checks the replica records carry distinct seeds and aggregate cleanly.
func TestSweepReplicasAggregate(t *testing.T) {
	var runs atomic.Int64
	cfg := Config{
		IDs:      []string{"fig15"},
		Workers:  2,
		Replicas: 3,
		Options:  harness.Options{Quick: true, Subframes: 60, Samples: 100, Seed: 7},
		runFn: func(id string, o harness.Options) (*harness.Table, error) {
			runs.Add(1)
			tb := &harness.Table{ID: id, Title: id, Columns: []string{"x", "miss_rate"}}
			// Vary with the derived seed so the CI is nonzero.
			tb.AddRow("1", float64(o.Seed%100)/1000)
			return tb, nil
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 3 || len(res.Records) != 3 {
		t.Fatalf("runs=%d records=%d, want 3/3", runs.Load(), len(res.Records))
	}
	seeds := map[uint64]bool{}
	for _, r := range res.Records {
		seeds[r.Config.Seed] = true
	}
	if len(seeds) != 3 {
		t.Fatalf("replicas shared seeds: %v", seeds)
	}
	aggs := AggregateReplicas(res.Records)
	if len(aggs) != 1 {
		t.Fatalf("aggregated %d tables", len(aggs))
	}
	var buf bytes.Buffer
	buf.WriteString(aggs[0].String())
	if !strings.Contains(buf.String(), "±") {
		t.Fatalf("aggregate table has no CI column:\n%s", buf.String())
	}
}
