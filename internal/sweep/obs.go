package sweep

import (
	"time"

	"rtopex/internal/harness"
	"rtopex/internal/obs"
)

// sweepObs publishes the live progress of one sweep into a registry: the
// shards-done/running/failed counters and worker-pool occupancy the ISSUE's
// mid-sweep scrape shows, plus a per-unit wall-time histogram and each
// finished table's summary gauges. All methods are no-ops on a nil
// receiver, so the hot path stays branch-cheap when no registry is wired.
type sweepObs struct {
	reg     *obs.Registry
	running *obs.Gauge
	done    *obs.Counter
	failed  *obs.Counter
	seconds *obs.Histogram
	// pusher, when non-nil, streams the registry to a central collector
	// after every finished unit (the distributed-sweep live view). The
	// pusher serializes its own sends, so concurrent workers are safe.
	pusher *obs.Pusher
}

func newSweepObs(reg *obs.Registry, pusher *obs.Pusher, total, pending, reused, workers int) *sweepObs {
	if reg == nil {
		return nil
	}
	reg.SetHelp("rtopex_sweep_units_total", "Schedulable units in this sweep (experiments × replicas).")
	reg.SetHelp("rtopex_sweep_units_pending_total", "Units to run after resume reuse.")
	reg.SetHelp("rtopex_sweep_units_reused_total", "Units satisfied from the resumed store.")
	reg.SetHelp("rtopex_sweep_units_done_total", "Units finished (success or failure).")
	reg.SetHelp("rtopex_sweep_units_failed_total", "Units that panicked, errored or timed out.")
	reg.SetHelp("rtopex_sweep_workers", "Size of the sweep worker pool.")
	reg.SetHelp("rtopex_sweep_workers_busy", "Workers currently executing a unit.")
	reg.SetHelp("rtopex_sweep_unit_seconds", "Per-unit wall time.")
	reg.Counter("rtopex_sweep_units_total").Add(int64(total))
	reg.Counter("rtopex_sweep_units_pending_total").Add(int64(pending))
	reg.Counter("rtopex_sweep_units_reused_total").Add(int64(reused))
	reg.Gauge("rtopex_sweep_workers").Set(float64(workers))
	s := &sweepObs{
		reg:     reg,
		running: reg.Gauge("rtopex_sweep_workers_busy"),
		done:    reg.Counter("rtopex_sweep_units_done_total"),
		failed:  reg.Counter("rtopex_sweep_units_failed_total"),
		seconds: reg.Histogram("rtopex_sweep_unit_seconds"),
		pusher:  pusher,
	}
	s.running.Set(0)
	return s
}

func (s *sweepObs) unitStarted() {
	if s == nil {
		return
	}
	s.running.Add(1)
}

func (s *sweepObs) unitFinished(u Unit, rec *Record, fail *Failure, d time.Duration) {
	if s == nil {
		return
	}
	s.running.Add(-1)
	s.done.Inc()
	s.seconds.Observe(d.Seconds())
	if fail == nil {
		harness.PublishTable(s.reg, rec.Table)
	} else {
		s.failed.Inc()
	}
	// Per-unit pushes are best-effort: a transient failure is absorbed by
	// the next unit's push carrying strictly more state, and the sweep's
	// final push (which does gate the run) retries from the full registry.
	_ = s.pusher.Push(s.reg)
}

// finalPush flushes the registry's end-of-sweep state, marked final so the
// collector retains this source past the staleness window.
func (s *sweepObs) finalPush() error {
	if s == nil || s.pusher == nil {
		return nil
	}
	return s.pusher.PushFinal(s.reg)
}
