package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"rtopex/internal/harness"
)

// tinyOptions keeps the real experiments fast enough for a unit test while
// still exercising the full registry plumbing.
var tinyOptions = harness.Options{Subframes: 120, Samples: 3000, Seed: 11, Quick: true}

// tinyIDs is a cheap, diverse registry subset: trace statistics, model
// fitting, a transport distribution, a full scheduler sweep and a pure
// model table.
var tinyIDs = []string{"fig1", "fig14", "fig15", "fig18", "fig6", "table1"}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(7, "fig15", 3)
	if a != DeriveSeed(7, "fig15", 3) {
		t.Fatal("derivation not stable")
	}
	if a == DeriveSeed(7, "fig15", 4) || a == DeriveSeed(7, "fig16", 3) || a == DeriveSeed(8, "fig15", 3) {
		t.Fatal("derived seeds collide across inputs")
	}
	if DeriveSeed(0, "", 0) == 0 {
		t.Fatal("derived seed of zero would fall back to the harness default")
	}
}

// TestUnitsShardStability pins that a subset sweep derives the same seed
// and key for an experiment as a full-registry sweep: the shard index is
// the registry position, not the subset position.
func TestUnitsShardStability(t *testing.T) {
	full, err := Units(Config{Options: tinyOptions})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Units(Config{Options: tinyOptions, IDs: []string{"fig15"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 {
		t.Fatalf("%d units for one id", len(sub))
	}
	var fromFull *Unit
	for i := range full {
		if full[i].Spec.ID == "fig15" {
			fromFull = &full[i]
		}
	}
	if fromFull == nil {
		t.Fatal("fig15 missing from full unit list")
	}
	if sub[0].Key != fromFull.Key || sub[0].Options.Seed != fromFull.Options.Seed || sub[0].Shard != fromFull.Shard {
		t.Fatalf("subset unit %+v != full-registry unit %+v", sub[0], *fromFull)
	}
	if _, err := Units(Config{IDs: []string{"no-such-experiment"}}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestReplicasGetDistinctSeeds(t *testing.T) {
	units, err := Units(Config{Options: tinyOptions, IDs: []string{"fig18"}, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 3 {
		t.Fatalf("%d units, want 3", len(units))
	}
	seen := map[uint64]bool{}
	keys := map[string]bool{}
	for _, u := range units {
		seen[u.Options.Seed] = true
		keys[u.Key] = true
	}
	if len(seen) != 3 || len(keys) != 3 {
		t.Fatalf("replicas share seeds or keys: %v", units)
	}
}

// storeLines reads a store file and returns its non-empty lines sorted,
// for order-insensitive byte comparison.
func storeLines(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(b), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	sort.Strings(lines)
	return lines
}

// TestParallelMatchesSerial is the determinism guarantee: a parallel sweep
// and a serial sweep over the same registry subset produce byte-identical
// artifact stores modulo record order.
func TestParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.jsonl")
	parallel := filepath.Join(dir, "parallel.jsonl")

	sres, err := Run(Config{IDs: tinyIDs, Workers: 1, Options: tinyOptions, StorePath: serial})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Run(Config{IDs: tinyIDs, Workers: 8, Options: tinyOptions, StorePath: parallel})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Failures) > 0 || len(pres.Failures) > 0 {
		t.Fatalf("failures: serial %v, parallel %v", sres.Failures, pres.Failures)
	}
	sl, pl := storeLines(t, serial), storeLines(t, parallel)
	if len(sl) != len(tinyIDs) {
		t.Fatalf("serial store has %d records, want %d", len(sl), len(tinyIDs))
	}
	for i := range sl {
		if sl[i] != pl[i] {
			t.Fatalf("store line %d differs:\nserial:   %s\nparallel: %s", i, sl[i], pl[i])
		}
	}
}

// countingRun wraps a deterministic fake experiment runner that records how
// often each id executed.
func countingRun() (func(string, harness.Options) (*harness.Table, error), func(string) int) {
	var mu sync.Mutex
	counts := map[string]int{}
	run := func(id string, o harness.Options) (*harness.Table, error) {
		mu.Lock()
		counts[id]++
		mu.Unlock()
		tb := &harness.Table{ID: id, Title: "fake", Columns: []string{"seed"}}
		tb.AddRow(fmt.Sprint(o.Resolve().Seed))
		return tb, nil
	}
	count := func(id string) int {
		mu.Lock()
		defer mu.Unlock()
		return counts[id]
	}
	return run, count
}

// TestResumeAfterKill simulates a sweep killed mid-run: the store retains
// one finished shard plus a half-written record. The resumed sweep must
// reuse the finished shard byte-for-byte, drop the partial record, and
// recompute only the rest.
func TestResumeAfterKill(t *testing.T) {
	ids := []string{"fig1", "fig18", "table1"}
	store := filepath.Join(t.TempDir(), "store.jsonl")

	run, count := countingRun()
	if _, err := Run(Config{IDs: ids, Workers: 1, Options: tinyOptions, StorePath: store, runFn: run}); err != nil {
		t.Fatal(err)
	}
	lines := storeLines(t, store)
	if len(lines) != 3 {
		t.Fatalf("%d records, want 3", len(lines))
	}

	// Simulate the kill: keep the first record whole, truncate the second
	// mid-line, lose the third entirely.
	b, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	raw := strings.SplitAfter(string(b), "\n")
	mangled := raw[0] + raw[1][:len(raw[1])/2]
	if err := os.WriteFile(store, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	keptLine := strings.TrimSuffix(raw[0], "\n")
	keptID := ids[0] // serial run preserves unit order

	run2, count2 := countingRun()
	res, err := Run(Config{IDs: ids, Workers: 1, Options: tinyOptions, StorePath: store,
		Resume: true, runFn: run2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != 1 || res.Ran != 2 {
		t.Fatalf("reused=%d ran=%d, want 1 and 2", res.Reused, res.Ran)
	}
	if count2(keptID) != 0 {
		t.Fatalf("finished shard %s was recomputed", keptID)
	}
	for _, id := range ids[1:] {
		if count2(id) != 1 {
			t.Fatalf("shard %s ran %d times, want 1", id, count2(id))
		}
	}
	_ = count // first run's counts only validate the fixture
	if len(res.Records) != 3 {
		t.Fatalf("%d records after resume, want 3", len(res.Records))
	}

	// The store must now hold all three records, with the survivor's line
	// byte-identical to the original.
	final := storeLines(t, store)
	if len(final) != 3 {
		t.Fatalf("%d store lines after resume, want 3", len(final))
	}
	found := false
	for _, l := range final {
		if l == keptLine {
			found = true
		}
	}
	if !found {
		t.Fatal("surviving record's bytes changed across resume")
	}

	// A second resume recomputes nothing.
	run3, count3 := countingRun()
	res, err = Run(Config{IDs: ids, Workers: 1, Options: tinyOptions, StorePath: store,
		Resume: true, runFn: run3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != 3 || res.Ran != 0 {
		t.Fatalf("second resume: reused=%d ran=%d, want 3 and 0", res.Reused, res.Ran)
	}
	for _, id := range ids {
		if count3(id) != 0 {
			t.Fatalf("second resume recomputed %s", id)
		}
	}
}

// TestFaultIsolation pins that a panicking shard and a wedged shard degrade
// the sweep instead of killing it.
func TestFaultIsolation(t *testing.T) {
	ids := []string{"fig1", "fig18", "table1"}
	run := func(id string, o harness.Options) (*harness.Table, error) {
		switch id {
		case "fig1":
			panic("synthetic shard panic")
		case "fig18":
			time.Sleep(5 * time.Second)
			return &harness.Table{ID: id}, nil
		}
		tb := &harness.Table{ID: id, Columns: []string{"v"}}
		tb.AddRow("1")
		return tb, nil
	}
	res, err := Run(Config{IDs: ids, Workers: 2, Options: tinyOptions,
		Timeout: 100 * time.Millisecond, runFn: run})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].Experiment != "table1" {
		t.Fatalf("records: %+v", res.Records)
	}
	if len(res.Failures) != 2 {
		t.Fatalf("failures: %+v", res.Failures)
	}
	byID := map[string]Failure{}
	for _, f := range res.Failures {
		byID[f.Unit.Spec.ID] = f
	}
	if f := byID["fig1"]; f.TimedOut || !strings.Contains(f.Err, "panic") {
		t.Fatalf("panic failure: %+v", f)
	}
	if f := byID["fig18"]; !f.TimedOut {
		t.Fatalf("timeout failure: %+v", f)
	}
}

// TestTimeoutAbandonsKey is the regression test for the timed-out-unit
// contract: the abandoned goroutine's late result must never reach the
// store, the unit's key stays unwritten (so a resume recomputes it), and
// the resumed record is byte-identical to an untimed run's.
func TestTimeoutAbandonsKey(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	ids := []string{"fig18", "table1"}

	lateDone := make(chan struct{})
	slow := func(id string, o harness.Options) (*harness.Table, error) {
		tb := &harness.Table{ID: id, Title: "fake", Columns: []string{"seed"}}
		tb.AddRow(fmt.Sprint(o.Resolve().Seed))
		if id == "fig18" {
			defer close(lateDone)
			time.Sleep(300 * time.Millisecond)
		}
		return tb, nil
	}
	res, err := Run(Config{IDs: ids, Workers: 2, Options: tinyOptions,
		Timeout: 50 * time.Millisecond, StorePath: path, runFn: slow})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || !res.Failures[0].TimedOut || res.Failures[0].Unit.Spec.ID != "fig18" {
		t.Fatalf("failures: %+v, want fig18 timed out", res.Failures)
	}

	// Let the abandoned goroutine finish its sleep and deliver its late
	// result into the void, then check it never touched the store.
	<-lateDone
	time.Sleep(20 * time.Millisecond)
	recs, err := ReadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Experiment != "table1" {
		t.Fatalf("store after timeout holds %+v, want only table1", recs)
	}

	// The key is free: a resumed sweep recomputes fig18 (not reused) and
	// lands exactly one record for it, identical to an untimed run's.
	fast := func(id string, o harness.Options) (*harness.Table, error) {
		tb := &harness.Table{ID: id, Title: "fake", Columns: []string{"seed"}}
		tb.AddRow(fmt.Sprint(o.Resolve().Seed))
		return tb, nil
	}
	res2, err := Run(Config{IDs: ids, Workers: 2, Options: tinyOptions,
		StorePath: path, Resume: true, runFn: fast})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reused != 1 || res2.Ran != 1 || len(res2.Failures) != 0 {
		t.Fatalf("resume: reused %d ran %d failures %v", res2.Reused, res2.Ran, res2.Failures)
	}
	recs, err = ReadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	byKey := IndexByKey(recs)
	if len(recs) != 2 || len(byKey) != 2 {
		t.Fatalf("resumed store holds %d lines over %d keys, want 2/2", len(recs), len(byKey))
	}

	ref := filepath.Join(dir, "ref.jsonl")
	if _, err := Run(Config{IDs: ids, Workers: 1, Options: tinyOptions, StorePath: ref, runFn: fast}); err != nil {
		t.Fatal(err)
	}
	got, want := storeLines(t, path), storeLines(t, ref)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed store line %d differs from untimed run:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

func fakeRecord(id string, replica int, cells ...string) *Record {
	tb := &harness.Table{ID: id, Title: id, Columns: []string{"a", "b"}}
	tb.Rows = append(tb.Rows, cells)
	tb.Notes = []string{"note for " + id}
	cfg := harness.ResolvedOptions{Subframes: 10, Samples: 10, Seed: 1}
	return &Record{
		Schema: SchemaVersion, Key: Key(id, cfg), Experiment: id,
		Replica: replica, Config: cfg, Table: tb,
	}
}

func TestCompare(t *testing.T) {
	base := []*Record{fakeRecord("fig15", 0, "1.25", "x"), fakeRecord("fig16", 0, "3", "y")}
	exact := CompareOptions{}

	// Identical sweeps: no drift.
	fresh := []*Record{fakeRecord("fig16", 0, "3", "y"), fakeRecord("fig15", 0, "1.25", "x")}
	if d := Compare(base, fresh, exact); len(d) != 0 {
		t.Fatalf("identical sweeps drifted: %v", d)
	}

	// A perturbed numeric cell fails the exact gate...
	fresh = []*Record{fakeRecord("fig15", 0, "1.2500001", "x"), fakeRecord("fig16", 0, "3", "y")}
	d := Compare(base, fresh, exact)
	if len(d) != 1 || !strings.Contains(d[0].Where, "cell 0/a") {
		t.Fatalf("perturbed cell not caught: %v", d)
	}
	// ...but passes under a column tolerance, via both bare and
	// experiment-qualified names.
	for _, key := range []string{"a", "fig15/a"} {
		opts := CompareOptions{PerColumn: map[string]Tolerance{key: {Rel: 1e-3}}}
		if d := Compare(base, fresh, opts); len(d) != 0 {
			t.Fatalf("tolerance %q not applied: %v", key, d)
		}
	}

	// Non-numeric cells compare exactly regardless of tolerance.
	fresh = []*Record{fakeRecord("fig15", 0, "1.25", "z"), fakeRecord("fig16", 0, "3", "y")}
	if d := Compare(base, fresh, CompareOptions{Default: Tolerance{Rel: 1}}); len(d) != 1 {
		t.Fatalf("string drift not caught: %v", d)
	}

	// A missing experiment is a drift; an extra fresh one is not.
	fresh = []*Record{fakeRecord("fig15", 0, "1.25", "x"), fakeRecord("fig99", 0, "3", "y")}
	d = Compare(base, fresh, exact)
	if len(d) != 1 || d[0].Where != "missing" || d[0].Experiment != "fig16" {
		t.Fatalf("missing experiment not caught: %v", d)
	}

	// Measured records are skipped unless opted in.
	mbase := []*Record{fakeRecord("fig4", 0, "1", "x")}
	mbase[0].Measured = true
	mfresh := []*Record{fakeRecord("fig4", 0, "2", "x")}
	mfresh[0].Measured = true
	if d := Compare(mbase, mfresh, exact); len(d) != 0 {
		t.Fatalf("measured record gated: %v", d)
	}
	if d := Compare(mbase, mfresh, CompareOptions{IncludeMeasured: true}); len(d) != 1 {
		t.Fatalf("IncludeMeasured ignored: %v", d)
	}

	// A note change is a drift, silenced by IgnoreNotes.
	fresh = []*Record{fakeRecord("fig15", 0, "1.25", "x"), fakeRecord("fig16", 0, "3", "y")}
	fresh[0].Table.Notes = []string{"different note"}
	if d := Compare(base, fresh, exact); len(d) != 1 || !strings.Contains(d[0].Where, "note") {
		t.Fatalf("note drift not caught: %v", d)
	}
	if d := Compare(base, fresh, CompareOptions{IgnoreNotes: true}); len(d) != 0 {
		t.Fatalf("IgnoreNotes not applied: %v", d)
	}

	// Diverging configs report a single config drift, not a cell storm.
	fresh = []*Record{fakeRecord("fig15", 0, "9", "q"), fakeRecord("fig16", 0, "3", "y")}
	fresh[0].Config.Seed = 2
	fresh[0].Key = Key("fig15", fresh[0].Config)
	d = Compare(base, fresh, exact)
	if len(d) != 1 || d[0].Where != "config" {
		t.Fatalf("config drift not caught: %v", d)
	}
}

func TestParseTolerances(t *testing.T) {
	got, err := ParseTolerances([]string{
		"rtt2_us=0.02",
		"fig6/p99=0.05,0.5",
		"L=1=0.05,0.001",              // column name contains '='
		"none(=partitioned)=0.02,0.5", // ditto
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Tolerance{
		"rtt2_us":            {Rel: 0.02},
		"fig6/p99":           {Rel: 0.05, Abs: 0.5},
		"L=1":                {Rel: 0.05, Abs: 0.001},
		"none(=partitioned)": {Rel: 0.02, Abs: 0.5},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for col, tol := range want {
		if got[col] != tol {
			t.Fatalf("%s parsed as %+v, want %+v", col, got[col], tol)
		}
	}
	if nilMap, err := ParseTolerances(nil); err != nil || nilMap != nil {
		t.Fatalf("empty specs: %v %v", nilMap, err)
	}
	for _, bad := range []string{"nocolon", "=0.1", "x=", "x=notafloat", "x=0.1,notafloat"} {
		if _, err := ParseTolerances([]string{bad}); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestStoreReadTolerance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.jsonl")
	st, err := CreateStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := fakeRecord("fig15", 0, "1", "x"), fakeRecord("fig16", 0, "2", "y")
	if err := st.Append(r1); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(r2); err != nil {
		t.Fatal(err)
	}
	st.Close()

	recs, err := ReadStore(path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("read: %d records, err %v", len(recs), err)
	}
	if idx := IndexByKey(recs); idx[r1.Key] == nil || idx[r2.Key] == nil {
		t.Fatal("index misses keys")
	}

	// Partial trailing line: tolerated (mid-write kill).
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = ReadStore(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("truncated store: %d records, err %v", len(recs), err)
	}

	// Garbage mid-file: rejected.
	bad := append([]byte("not json\n"), b...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStore(path); err == nil {
		t.Fatal("mid-file garbage accepted")
	}

	// Wrong schema version: rejected. (Build the pattern from SchemaVersion
	// so this keeps biting after future bumps.)
	cur := []byte(fmt.Sprintf(`"schema":%d`, SchemaVersion))
	firstLine := b[:bytes.IndexByte(b, '\n')+1]
	if !bytes.Contains(firstLine, cur) {
		t.Fatalf("store line does not carry %s: %s", cur, firstLine)
	}
	line := bytes.Replace(firstLine, cur, []byte(`"schema":99`), 1)
	if err := os.WriteFile(path, line, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStore(path); err == nil {
		t.Fatal("future schema accepted")
	}

	// Prior schema (v1, no obs snapshot): still readable.
	v1 := bytes.Replace(firstLine, cur, []byte(`"schema":1`), 1)
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = ReadStore(path)
	if err != nil || len(recs) != 1 || recs[0].Schema != 1 {
		t.Fatalf("v1 record rejected: %d records, err %v", len(recs), err)
	}
}
