package sweep

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"rtopex/internal/harness"
	"rtopex/internal/stats"
)

// AggregateReplicas reduces a replicated sweep's records to one summary
// table per experiment: every numeric cell position becomes "mean±half"
// where half is the 95% confidence half-width over the replicas (Student-t,
// n−1 df), and cells that are identical strings across all replicas pass
// through unchanged. Experiments with fewer than two replicas, or whose
// replica tables disagree in shape, are skipped — there is nothing sound to
// aggregate. Output is sorted by experiment id.
func AggregateReplicas(records []*Record) []*harness.Table {
	byExp := map[string][]*Record{}
	for _, r := range records {
		if r.Table != nil {
			byExp[r.Experiment] = append(byExp[r.Experiment], r)
		}
	}
	ids := make([]string, 0, len(byExp))
	for id := range byExp {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var out []*harness.Table
	for _, id := range ids {
		recs := byExp[id]
		if len(recs) < 2 {
			continue
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Replica < recs[j].Replica })
		if agg := aggregateOne(id, recs); agg != nil {
			out = append(out, agg)
		}
	}
	return out
}

func aggregateOne(id string, recs []*Record) *harness.Table {
	first := recs[0].Table
	for _, r := range recs[1:] {
		t := r.Table
		if len(t.Columns) != len(first.Columns) || len(t.Rows) != len(first.Rows) {
			return nil
		}
		for i := range t.Rows {
			if len(t.Rows[i]) != len(first.Rows[i]) {
				return nil
			}
		}
	}
	agg := &harness.Table{
		ID:      id,
		Title:   fmt.Sprintf("%s (aggregated over %d replicas)", first.Title, len(recs)),
		Columns: append([]string(nil), first.Columns...),
	}
	for i := range first.Rows {
		row := make([]string, len(first.Rows[i]))
		for c := range first.Rows[i] {
			row[c] = aggregateCell(recs, i, c)
		}
		agg.Rows = append(agg.Rows, row)
	}
	agg.Notes = append(agg.Notes,
		fmt.Sprintf("numeric cells are mean ± 95%% CI half-width (Student-t, n=%d replicas)", len(recs)))
	return agg
}

// aggregateCell reduces one cell position across replicas. All-identical
// strings (row labels, x-axis values) pass through; all-numeric cells
// become mean±half; anything mixed is reported as such.
func aggregateCell(recs []*Record, row, col int) string {
	vals := make([]float64, 0, len(recs))
	first := recs[0].Table.Rows[row][col]
	identical := true
	numeric := true
	for _, r := range recs {
		cell := r.Table.Rows[row][col]
		if cell != first {
			identical = false
		}
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			numeric = false
			continue
		}
		vals = append(vals, v)
	}
	if identical {
		return first
	}
	if !numeric || len(vals) < 2 {
		return fmt.Sprintf("(varies: %s, …)", first)
	}
	mean, half := stats.MeanCI95(vals)
	return fmt.Sprintf("%.4g±%.2g", mean, half)
}
