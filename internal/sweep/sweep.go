// Package sweep is the experiment-sweep engine: it shards the harness
// registry into (experiment × replica) units, runs them on a bounded
// worker pool, and streams each finished table into a JSON-lines artifact
// store keyed by a content hash of the unit's resolved configuration.
//
// Determinism is the core contract. Every unit derives its seed from a
// stable hash of (root seed, experiment id, shard index), never from
// worker identity or completion order, so a parallel sweep produces
// byte-identical artifact records to a serial one — the store differs only
// in line order. That makes three things cheap:
//
//   - resume: a re-run skips every unit whose key already has a record
//     (checkpointing falls out of the store being content-addressed);
//   - regression gating: Compare diffs a fresh sweep against checked-in
//     golden baselines under per-column tolerances;
//   - fault isolation: a unit that panics or exceeds its timeout degrades
//     the sweep (reported as a Failure) instead of killing it.
package sweep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"runtime"
	"sort"
	"sync"
	"time"

	"rtopex/internal/harness"
	"rtopex/internal/obs"
)

// Config describes one sweep.
type Config struct {
	// IDs are the experiment ids to run; empty means the whole registry.
	IDs []string
	// Workers bounds the pool; ≤ 0 means runtime.NumCPU().
	Workers int
	// Options are the base scale knobs. Options.Seed (after defaulting) is
	// the sweep's root seed; each unit replaces it with a derived seed.
	Options harness.Options
	// Replicas runs every experiment this many times under distinct
	// derived seeds (≤ 0 means 1) — the (experiment × config) grid.
	Replicas int
	// Timeout bounds one unit's run; ≤ 0 disables. A timed-out unit is
	// reported as a Failure and its goroutine abandoned (experiments are
	// pure compute with no cancellation points); the abandoned goroutine
	// can never write the unit's store key, so a re-run — or a fleet
	// re-lease — is free to claim it (see ExecuteUnit).
	Timeout time.Duration
	// SkipMeasured excludes wall-clock-dependent experiments (fig4), whose
	// artifacts can never be byte-identical across runs.
	SkipMeasured bool
	// StorePath, when non-empty, streams records into a JSON-lines store.
	StorePath string
	// Resume skips units whose key already has a record in StorePath.
	Resume bool
	// Progress, when non-nil, receives one line per unit completion.
	Progress io.Writer
	// Obs, when non-nil, receives live sweep progress (units total/done/
	// failed/reused, worker occupancy, per-unit wall-time histogram) and
	// every finished table's summary gauges — the series `rtopex -http`
	// exposes for scraping mid-sweep.
	Obs *obs.Registry
	// Push, when non-nil (requires Obs), streams the live registry to a
	// central collector: one push after every finished unit plus a final
	// push when the sweep ends. Per-unit push failures are transient and
	// only logged (the next unit's push carries a superset of the state);
	// a failed final push is the sweep's error, since the collector's
	// merged view would silently miss this worker's results.
	Push *obs.Pusher

	// runFn substitutes the experiment runner in tests; nil means
	// harness.Run.
	runFn func(id string, o harness.Options) (*harness.Table, error)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

func (c Config) replicas() int {
	if c.Replicas > 0 {
		return c.Replicas
	}
	return 1
}

// DeriveSeed computes a unit's seed from the sweep's root seed, the
// experiment id and the unit's shard index. The hash (FNV-1a 64) is stable
// across processes, platforms and Go versions, and independent of worker
// scheduling — the root of the parallel-equals-serial guarantee. A zero
// result is mapped to 1 because harness.Options treats seed 0 as "use the
// default".
func DeriveSeed(root uint64, id string, shard int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], root)
	h.Write(b[:])
	io.WriteString(h, id)
	binary.LittleEndian.PutUint64(b[:], uint64(shard))
	h.Write(b[:])
	s := h.Sum64()
	if s == 0 {
		s = 1
	}
	return s
}

// Unit is one schedulable shard: one experiment under one resolved
// configuration.
type Unit struct {
	Spec    harness.Spec
	Shard   int // position in the full sorted registry (stable across subsets)
	Replica int
	Options harness.Options
	Key     string
}

// Units expands a config into its unit list, in deterministic (registry,
// replica) order. Unknown ids are an error.
func Units(cfg Config) ([]Unit, error) {
	specs := harness.Specs()
	shardOf := make(map[string]int, len(specs))
	specOf := make(map[string]harness.Spec, len(specs))
	for i, s := range specs {
		shardOf[s.ID] = i
		specOf[s.ID] = s
	}
	ids := cfg.IDs
	if len(ids) == 0 {
		ids = harness.IDs()
	} else {
		ids = append([]string(nil), ids...)
		sort.Strings(ids)
	}
	root := cfg.Options.Resolve().Seed
	nShards := len(specs)
	var units []Unit
	for _, id := range ids {
		spec, ok := specOf[id]
		if !ok {
			return nil, fmt.Errorf("sweep: unknown experiment %q", id)
		}
		if cfg.SkipMeasured && spec.Measured {
			continue
		}
		for rep := 0; rep < cfg.replicas(); rep++ {
			// Replicas extend the shard index past the registry so every
			// (experiment, replica) pair hashes to a distinct seed.
			shard := shardOf[id] + rep*nShards
			o := cfg.Options
			o.Seed = DeriveSeed(root, id, shard)
			units = append(units, Unit{
				Spec:    spec,
				Shard:   shard,
				Replica: rep,
				Options: o,
				Key:     Key(id, o.Resolve()),
			})
		}
	}
	return units, nil
}

// Failure reports one unit that did not produce an artifact.
type Failure struct {
	Unit     Unit
	Err      string
	TimedOut bool
}

// Result summarizes one sweep.
type Result struct {
	// Records holds every artifact available after the sweep: freshly
	// computed ones plus, on resume, the reused ones — everything a
	// baseline comparison needs. Order is completion order.
	Records []*Record
	// Reused counts units satisfied from the store without recomputation.
	Reused int
	// Ran counts units actually executed.
	Ran int
	// Failures lists units that panicked, errored or timed out.
	Failures []Failure
	// Wall is the sweep's elapsed time; Busy sums per-unit durations. On a
	// multicore machine Busy/Wall measures the worker-pool speedup.
	Wall, Busy time.Duration
}

// Speedup is the parallel efficiency ratio Busy/Wall.
func (r *Result) Speedup() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return r.Busy.Seconds() / r.Wall.Seconds()
}

// SortedRecords returns the records in deterministic (shard, replica)
// order, for rendering and for order-insensitive store comparison.
func (r *Result) SortedRecords() []*Record {
	out := append([]*Record(nil), r.Records...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Replica < out[j].Replica
	})
	return out
}

// Run executes the sweep.
func Run(cfg Config) (*Result, error) {
	if cfg.Push != nil && cfg.Obs == nil {
		return nil, errors.New("sweep: Config.Push requires Config.Obs (the registry being pushed)")
	}
	units, err := Units(cfg)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	var ingest *Ingest
	existing := map[string]*Record{}
	if cfg.StorePath != "" {
		var prior []*Record
		if cfg.Resume {
			recs, rerr := ReadStore(cfg.StorePath)
			if rerr != nil && !isNotExist(rerr) {
				return nil, rerr
			}
			existing = IndexByKey(recs)
			// Keep only each key's index winner (the freshest copy), in file
			// order, so the rewrite below never carries stale duplicates.
			for _, r := range recs {
				if existing[r.Key] == r {
					prior = append(prior, r)
				}
			}
		}
		store, err := CreateStore(cfg.StorePath)
		if err != nil {
			return nil, err
		}
		defer store.Close()
		// Rewrite the surviving records so a store truncated by a mid-write
		// kill is repaired (the partial trailing line is dropped) and fresh
		// appends start on a clean line boundary. All writes go through the
		// deduping Ingest, so a key can never gain a second record — the
		// guard that makes abandoning a timed-out unit safe.
		ingest, err = NewIngest(store, prior)
		if err != nil {
			return nil, err
		}
	}

	// Partition into reused and pending before launching workers, so the
	// progress denominator is stable.
	var pending []Unit
	for _, u := range units {
		if rec, ok := existing[u.Key]; ok && cfg.Resume {
			res.Records = append(res.Records, rec)
			res.Reused++
			continue
		}
		pending = append(pending, u)
	}

	sw := newSweepObs(cfg.Obs, cfg.Push, len(units), len(pending), res.Reused, cfg.workers())

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		done     int
		firstErr error
	)
	start := time.Now()
	jobs := make(chan Unit)
	progress := func(u Unit, status string, d time.Duration) {
		if cfg.Progress == nil {
			return
		}
		done++
		fmt.Fprintf(cfg.Progress, "[%*d/%d] %-22s %-8s %6.2fs\n",
			len(fmt.Sprint(len(pending))), done, len(pending), u.Spec.ID, status, d.Seconds())
	}
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				sw.unitStarted()
				t0 := time.Now()
				rec, fail := runUnit(cfg, u)
				d := time.Since(t0)
				sw.unitFinished(u, rec, fail, d)
				mu.Lock()
				res.Ran++
				res.Busy += d
				switch {
				case fail != nil:
					res.Failures = append(res.Failures, *fail)
					status := "FAIL"
					if fail.TimedOut {
						status = "TIMEOUT"
					}
					progress(u, status, d)
				default:
					res.Records = append(res.Records, rec)
					if ingest != nil {
						if _, err := ingest.Add(rec); err != nil && firstErr == nil {
							firstErr = err
						}
					}
					progress(u, "ok", d)
				}
				mu.Unlock()
			}
		}()
	}
	for _, u := range pending {
		jobs <- u
	}
	close(jobs)
	wg.Wait()
	res.Wall = time.Since(start)
	if err := sw.finalPush(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// runUnit executes one unit with panic recovery and an optional timeout.
func runUnit(cfg Config, u Unit) (*Record, *Failure) {
	return ExecuteUnit(u, cfg.Timeout, cfg.runFn)
}

// RunFunc is the experiment runner a unit execution is parameterized by;
// nil means harness.Run. Fleet workers and tests substitute it.
type RunFunc func(id string, o harness.Options) (*harness.Table, error)

// ExecuteUnit runs one unit with panic recovery and an optional timeout,
// producing either its artifact record or a failure. This is the only
// place records are built, so a worker process and an in-process sweep
// emit byte-identical artifacts for the same unit.
//
// Timeout semantics: a unit that exceeds the timeout is reported as a
// TimedOut failure and its goroutine abandoned (experiments are pure
// compute with no cancellation points). The abandoned goroutine delivers
// its late result into a buffered channel nobody reads — it holds no store
// or ingest reference, so a late finisher can never append a record. The
// unit's store key therefore stays unwritten, free for a re-run (or a
// fleet re-lease) to claim; if a zombie's copy of the record does surface
// later, Ingest dedups it by content hash.
func ExecuteUnit(u Unit, timeout time.Duration, runFn RunFunc) (*Record, *Failure) {
	if runFn == nil {
		runFn = harness.Run
	}
	type outcome struct {
		tb  *harness.Table
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("panic: %v", p)}
			}
		}()
		tb, err := runFn(u.Spec.ID, u.Options)
		ch <- outcome{tb: tb, err: err}
	}()
	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case o := <-ch:
		if o.err != nil {
			return nil, &Failure{Unit: u, Err: o.err.Error()}
		}
		return &Record{
			Schema:     SchemaVersion,
			Key:        u.Key,
			Experiment: u.Spec.ID,
			Shard:      u.Shard,
			Replica:    u.Replica,
			Config:     u.Options.Resolve(),
			Measured:   u.Spec.Measured,
			Table:      o.tb,
			// Derived from the table alone, so the record stays a pure
			// function of the unit (the byte-identity guarantee).
			Obs: harness.TableSnapshot(o.tb),
		}, nil
	case <-timeoutC:
		return nil, &Failure{
			Unit:     u,
			Err:      fmt.Sprintf("no result within %s (shard abandoned)", timeout),
			TimedOut: true,
		}
	}
}

func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
