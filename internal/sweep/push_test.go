package sweep

import (
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"

	"rtopex/internal/harness"
	"rtopex/internal/obs"
)

// pushRunFn is a deterministic fake experiment: the table depends only on
// (id, seed), like the real harness.
func pushRunFn(id string, o harness.Options) (*harness.Table, error) {
	tb := &harness.Table{ID: id, Title: id, Columns: []string{"x", "miss_rate"}}
	tb.AddRow("1", float64(o.Resolve().Seed%97)/100)
	tb.AddRow("2", float64(len(id))/10)
	return tb, nil
}

// TestDistributedSweepMergesToSerial is the tentpole's contract in
// miniature: two sweep processes splitting the experiment list and pushing
// to one collector must merge to exactly the registry a single sweep over
// the union builds — counters, gauges, and the per-experiment series, over
// the wire.
func TestDistributedSweepMergesToSerial(t *testing.T) {
	col := obs.NewCollector(obs.CollectorConfig{})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	splits := [][]string{{"fig15", "fig17"}, {"fig16", "fig19"}}
	for i, ids := range splits {
		pusher, err := obs.NewPusher(obs.PusherConfig{
			Addr:   srv.URL,
			Source: obs.Source{ID: fmt.Sprintf("worker-%d", i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(Config{
			IDs:     ids,
			Workers: 2,
			Options: harness.Options{Quick: true, Seed: 11},
			Obs:     obs.NewRegistry(),
			Push:    pusher,
			runFn:   pushRunFn,
		}); err != nil {
			t.Fatal(err)
		}
	}

	serial := obs.NewRegistry()
	if _, err := Run(Config{
		IDs:     []string{"fig15", "fig16", "fig17", "fig19"},
		Workers: 2,
		Options: harness.Options{Quick: true, Seed: 11},
		Obs:     serial,
		runFn:   pushRunFn,
	}); err != nil {
		t.Fatal(err)
	}

	want, got := serial.Snapshot(), col.Merged()

	// The per-unit wall-time histogram is the one wall-clock series — its
	// bucket layout can never match across runs. Counts must still agree.
	wantSec := dropHistogram(want, "rtopex_sweep_unit_seconds")
	gotSec := dropHistogram(got, "rtopex_sweep_unit_seconds")
	if wantSec.Count != gotSec.Count || wantSec.Count != 4 {
		t.Fatalf("unit_seconds counts: serial %d, merged %d, want 4", wantSec.Count, gotSec.Count)
	}
	if !reflect.DeepEqual(want.Counters, got.Counters) {
		t.Fatalf("merged counters differ from serial:\nserial %+v\nmerged %+v", want.Counters, got.Counters)
	}
	if !reflect.DeepEqual(want.Gauges, got.Gauges) {
		t.Fatalf("merged gauges differ from serial:\nserial %+v\nmerged %+v", want.Gauges, got.Gauges)
	}
	if !reflect.DeepEqual(want.Histograms, got.Histograms) {
		t.Fatalf("merged histograms differ from serial:\nserial %+v\nmerged %+v", want.Histograms, got.Histograms)
	}

	// Both workers pushed a final snapshot.
	srcs := col.Sources()
	if len(srcs) != 2 {
		t.Fatalf("sources = %d, want 2", len(srcs))
	}
	for _, s := range srcs {
		if !s.Final {
			t.Fatalf("source %s not final: %+v", s.Source.ID, s)
		}
	}
	// The fleet-wide per-experiment completion counters merged exactly.
	for _, id := range []string{"fig15", "fig16", "fig17", "fig19"} {
		if v, ok := got.CounterValue("rtopex_experiment_done_total", obs.L("experiment", id)); !ok || v != 1 {
			t.Fatalf("experiment_done_total{%s} = %d (ok=%v), want 1", id, v, ok)
		}
	}
}

// dropHistogram removes one histogram family from the snapshot in place and
// returns its value (zero when absent).
func dropHistogram(s *obs.Snapshot, name string) obs.HistogramValue {
	var out obs.HistogramValue
	kept := s.Histograms[:0]
	for _, h := range s.Histograms {
		if h.Name == name {
			out = h.Value
			continue
		}
		kept = append(kept, h)
	}
	s.Histograms = kept
	return out
}

// TestSweepPushRequiresObs pins the config validation.
func TestSweepPushRequiresObs(t *testing.T) {
	p, err := obs.NewPusher(obs.PusherConfig{Addr: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{IDs: []string{"fig15"}, Push: p, runFn: pushRunFn}); err == nil {
		t.Fatal("Run accepted Push without Obs")
	}
}

// TestSweepFinalPushFailureIsError: a sweep that cannot deliver its final
// state to the collector must say so, not succeed silently.
func TestSweepFinalPushFailureIsError(t *testing.T) {
	// An address nothing listens on; tiny retry budget keeps the test fast.
	p, err := obs.NewPusher(obs.PusherConfig{Addr: "127.0.0.1:1", Retries: 1, Backoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{
		IDs:     []string{"fig15"},
		Workers: 1,
		Options: harness.Options{Quick: true, Seed: 3},
		Obs:     obs.NewRegistry(),
		Push:    p,
		runFn:   pushRunFn,
	})
	if err == nil {
		t.Fatal("sweep succeeded despite unreachable collector")
	}
}
