package sweep

import (
	"path/filepath"
	"testing"

	"rtopex/internal/flight"
	"rtopex/internal/sched"
)

// TestArmedRecorderKeepsArtifactsIdentical is the forensics-don't-perturb
// guarantee: a sweep with the process-wide flight recorder armed produces
// an artifact store byte-identical to a disarmed sweep. The recorder may
// observe and spool whatever it likes; the experiment records must not
// know it was there.
func TestArmedRecorderKeepsArtifactsIdentical(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.jsonl")
	armed := filepath.Join(dir, "armed.jsonl")

	if _, err := Run(Config{IDs: tinyIDs, Workers: 4, Options: tinyOptions, StorePath: plain}); err != nil {
		t.Fatal(err)
	}

	spool, err := flight.NewSpool(flight.SpoolConfig{Dir: filepath.Join(dir, "spool")})
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.Config{Spool: spool, MaxPerSec: -1})
	disarm := sched.ArmFlight(rec)
	_, rerr := Run(Config{IDs: tinyIDs, Workers: 4, Options: tinyOptions, StorePath: armed})
	disarm()
	rec.Close()
	if rerr != nil {
		t.Fatal(rerr)
	}
	t.Logf("armed sweep: %d trigger(s), %d dossier(s)", rec.Triggers(), rec.Written())

	pl, al := storeLines(t, plain), storeLines(t, armed)
	if len(pl) == 0 || len(pl) != len(al) {
		t.Fatalf("store sizes differ: plain %d, armed %d", len(pl), len(al))
	}
	for i := range pl {
		if pl[i] != al[i] {
			t.Fatalf("store line %d differs with recorder armed:\nplain: %s\narmed: %s", i, pl[i], al[i])
		}
	}
}
