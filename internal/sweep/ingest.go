package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Ingest wraps a Store with content-hash dedup: the merge point a
// distributed sweep funnels worker results through. The first record per
// key wins and is appended; a later record with the same key and identical
// canonical bytes is counted as a duplicate and dropped (the re-leased-
// then-zombie-completes case — records are deterministic, so both copies
// are byte-identical); a later record with the same key but different
// bytes is an error (two workers disagree on a deterministic artifact,
// which means version skew or corruption, never a race to tolerate).
//
// sweep.Run itself writes through an Ingest too, so a single-process sweep
// has the same structural guarantee: one record per key, no matter what a
// timed-out unit's abandoned goroutine does afterwards.
type Ingest struct {
	mu    sync.Mutex
	store *Store
	seen  map[string]string // artifact key → hex content hash
	dups  int64
}

// NewIngest wraps store. prior records (a resumed store's survivors) are
// registered and re-appended via Add, so the rewritten store starts on a
// clean line boundary with dedup state primed.
func NewIngest(store *Store, prior []*Record) (*Ingest, error) {
	in := &Ingest{store: store, seen: make(map[string]string, len(prior))}
	for _, r := range prior {
		if _, err := in.Add(r); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// Add appends r unless its key is already present. Returns whether the
// record was appended; a same-key-different-content collision is an error.
func (in *Ingest) Add(r *Record) (added bool, err error) {
	line, err := r.MarshalLine()
	if err != nil {
		return false, err
	}
	sum := sha256.Sum256(line)
	hash := hex.EncodeToString(sum[:8])
	in.mu.Lock()
	defer in.mu.Unlock()
	if prev, ok := in.seen[r.Key]; ok {
		if prev != hash {
			return false, fmt.Errorf("sweep: key %s (%s): conflicting record content (have hash %s, got %s)",
				r.Key, r.Experiment, prev, hash)
		}
		in.dups++
		return false, nil
	}
	if in.store != nil {
		if err := in.store.AppendLine(line); err != nil {
			return false, err
		}
	}
	in.seen[r.Key] = hash
	return true, nil
}

// Has reports whether a record with this key was already ingested.
func (in *Ingest) Has(key string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	_, ok := in.seen[key]
	return ok
}

// Duplicates counts records dropped as byte-identical repeats.
func (in *Ingest) Duplicates() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dups
}

// Len counts distinct keys ingested.
func (in *Ingest) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.seen)
}
