package sweep

import (
	"strings"
	"testing"

	"rtopex/internal/harness"
	"rtopex/internal/obs"
)

// TestSweepPublishesProgress checks the live-registry series a mid-sweep
// scrape sees: unit totals, done/failed counters, worker occupancy, and the
// per-experiment table gauges.
func TestSweepPublishesProgress(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		IDs:     []string{"fig15", "fig16"},
		Workers: 2,
		Obs:     reg,
		Options: harness.Options{Quick: true, Seed: 5},
		runFn: func(id string, o harness.Options) (*harness.Table, error) {
			tb := &harness.Table{ID: id, Title: id, Columns: []string{"x", "miss_rate"}}
			tb.AddRow("1", 0.25)
			return tb, nil
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("rtopex_sweep_units_total").Value(); got != 2 {
		t.Fatalf("units_total = %d, want 2", got)
	}
	if got := reg.Counter("rtopex_sweep_units_done_total").Value(); got != 2 {
		t.Fatalf("units_done = %d, want 2", got)
	}
	if got := reg.Counter("rtopex_sweep_units_failed_total").Value(); got != 0 {
		t.Fatalf("units_failed = %d, want 0", got)
	}
	if got := reg.Gauge("rtopex_sweep_workers_busy").Value(); got != 0 {
		t.Fatalf("workers_busy after completion = %v, want 0", got)
	}
	if got := reg.Histogram("rtopex_sweep_unit_seconds").Count(); got != 2 {
		t.Fatalf("unit_seconds count = %d, want 2", got)
	}
	miss := reg.Gauge("rtopex_experiment_miss_rate",
		obs.L("experiment", "fig15"), obs.L("column", "miss_rate"))
	if !miss.IsSet() || miss.Value() != 0.25 {
		t.Fatalf("experiment miss gauge = %v (set=%v), want 0.25", miss.Value(), miss.IsSet())
	}
}

// TestRecordObsDeterministic pins the embedded snapshot being a pure
// function of the table: two identical units yield byte-identical record
// lines including the obs section.
func TestRecordObsDeterministic(t *testing.T) {
	mk := func() *Record {
		cfg := Config{
			IDs:     []string{"fig15"},
			Workers: 1,
			Options: harness.Options{Quick: true, Seed: 9},
			runFn: func(id string, o harness.Options) (*harness.Table, error) {
				tb := &harness.Table{ID: id, Title: id, Columns: []string{"x", "partitioned", "rt-opex"}}
				tb.AddRow("150", 0.31, 0.0125)
				tb.AddRow("300", 0.35, 0.02)
				return tb, nil
			},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Records[0]
	}
	a, b := mk(), mk()
	if a.Obs == nil {
		t.Fatal("record missing obs snapshot")
	}
	la, err := a.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	if string(la) != string(lb) {
		t.Fatalf("identical units produced different record bytes:\n%s\nvs\n%s", la, lb)
	}
	if !strings.Contains(string(la), `"obs"`) {
		t.Fatalf("record line carries no obs section: %s", la)
	}
}

func TestCompareObs(t *testing.T) {
	mk := func(miss float64) *Record {
		r := fakeRecord("fig15", 0, "1.25", "x")
		tb := &harness.Table{ID: "fig15", Columns: []string{"x", "miss_rate"}}
		tb.AddRow("1", miss)
		r.Obs = harness.TableSnapshot(tb)
		return r
	}
	base := []*Record{mk(0.010)}

	// Identical snapshots: clean.
	if d := Compare(base, []*Record{mk(0.010)}, CompareOptions{}); len(d) != 0 {
		t.Fatalf("identical obs drifted: %v", d)
	}

	// Gauge drift caught, and released by tolerance.
	fresh := []*Record{mk(0.011)}
	d := Compare(base, fresh, CompareOptions{})
	found := false
	for _, dr := range d {
		if strings.Contains(dr.Where, "obs") {
			found = true
		}
	}
	if !found {
		t.Fatalf("obs drift not caught: %v", d)
	}
	if d := Compare(base, fresh, CompareOptions{Default: Tolerance{Rel: 0.2}}); len(d) != 0 {
		t.Fatalf("tolerance not applied to obs: %v", d)
	}

	// One side missing a snapshot (schema-1 baseline): no obs gating.
	old := []*Record{fakeRecord("fig15", 0, "1.25", "x")}
	old[0].Obs = nil
	if d := Compare(old, fresh, CompareOptions{}); len(d) != 0 {
		t.Fatalf("schema-1 baseline should skip obs gating: %v", d)
	}
}
