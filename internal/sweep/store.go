package sweep

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"rtopex/internal/harness"
	"rtopex/internal/obs"
)

// SchemaVersion tags the artifact-record layout. Bump it when Record's
// JSON shape changes, and keep readers for prior versions.
//
// History: v1 is the original layout; v2 adds the optional embedded obs
// snapshot. v1 records are still readable — a missing snapshot simply means
// no obs gating.
const SchemaVersion = 2

// readableSchemas are the record versions ReadStore accepts.
var readableSchemas = map[int]bool{1: true, 2: true}

// Record is one artifact: the full table an experiment produced under one
// resolved configuration, keyed by a content hash of that configuration.
// Records are stored one-per-line as JSON (a JSON-lines store), so a sweep
// can stream them out as shards finish and a killed sweep leaves a valid
// store behind.
type Record struct {
	Schema     int    `json:"schema"`
	Key        string `json:"key"`
	Experiment string `json:"experiment"`
	// Shard is the experiment's position in the full sorted registry;
	// Replica distinguishes repeated runs of the same experiment under
	// different derived seeds. (Shard, Replica) determine Config.Seed via
	// DeriveSeed, so they are stable across subset runs and resumes.
	Shard   int                     `json:"shard"`
	Replica int                     `json:"replica,omitempty"`
	Config  harness.ResolvedOptions `json:"config"`
	// Measured marks wall-clock-dependent artifacts (see harness.Spec):
	// they are stored for inspection but exempt from byte-identical
	// reproducibility and skipped by Compare.
	Measured bool           `json:"measured,omitempty"`
	Table    *harness.Table `json:"table"`
	// Obs is the observability snapshot derived deterministically from the
	// table (schema ≥ 2): per-column value histograms and means, usable as
	// extra Compare gates. Absent in v1 records and in failed conversions.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// Key computes the content hash an artifact is stored under: the first 16
// hex digits of SHA-256 over the canonical JSON of (experiment id,
// resolved configuration). Two runs agree on a key exactly when they would
// run the same experiment code path with the same inputs.
func Key(experiment string, cfg harness.ResolvedOptions) string {
	doc, err := json.Marshal(struct {
		Experiment string                  `json:"experiment"`
		Config     harness.ResolvedOptions `json:"config"`
	}{experiment, cfg})
	if err != nil {
		// Marshaling a plain struct of scalars cannot fail.
		panic(fmt.Sprintf("sweep: key marshal: %v", err))
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:8])
}

// MarshalLine renders the record as its canonical store line (JSON + '\n').
// The encoding is deterministic: identical records produce identical bytes,
// which is what the sweep determinism guarantee is stated over.
func (r *Record) MarshalLine() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("sweep: marshal record %s: %v", r.Key, err)
	}
	return append(b, '\n'), nil
}

// Store is an append-only JSON-lines artifact file. Append is safe for
// concurrent use by the sweep workers; every record is flushed to the OS
// before Append returns, so a killed sweep loses at most the record being
// written.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// CreateStore creates (or truncates) a store file, making parent
// directories as needed.
func CreateStore(path string) (*Store, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Store{f: f, path: path}, nil
}

// Append writes one record line and syncs it.
func (s *Store) Append(r *Record) error {
	line, err := r.MarshalLine()
	if err != nil {
		return err
	}
	return s.AppendLine(line)
}

// AppendLine writes one pre-marshaled record line (as produced by
// MarshalLine) and syncs it.
func (s *Store) AppendLine(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("sweep: append to %s: %v", s.path, err)
	}
	return s.f.Sync()
}

// Close closes the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// ReadStore loads every record of a JSON-lines store. Blank lines are
// skipped; a truncated or malformed trailing line (a sweep killed
// mid-write) is tolerated with a warning error only if it is the last
// line, otherwise the store is rejected.
func ReadStore(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []*Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var r Record
		if err := json.Unmarshal(text, &r); err != nil {
			// Defer the decision: only fatal if more lines follow.
			pendingErr = fmt.Errorf("sweep: %s line %d: %v", path, line, err)
			continue
		}
		if !readableSchemas[r.Schema] {
			return nil, fmt.Errorf("sweep: %s line %d: schema %d, this reader handles up to %d",
				path, line, r.Schema, SchemaVersion)
		}
		recs = append(recs, &r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// pendingErr on the final line means a mid-write kill: drop the
	// partial record so -resume recomputes it.
	return recs, nil
}

// IndexByKey maps records by artifact key; on duplicates the last wins
// (a resumed store may legitimately repeat a key only if a prior run was
// killed between write and sync, so later records are fresher).
func IndexByKey(recs []*Record) map[string]*Record {
	idx := make(map[string]*Record, len(recs))
	for _, r := range recs {
		idx[r.Key] = r
	}
	return idx
}
