package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"rtopex/internal/stats"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum
	}
	return out
}

func randSignal(r *stats.RNG, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNewPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) accepted", n)
		}
	}
}

func TestMustPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlan(3) did not panic")
		}
	}()
	MustPlan(3)
}

func TestForwardMatchesNaive(t *testing.T) {
	r := stats.NewRNG(1)
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randSignal(r, n)
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		MustPlan(n).Forward(got)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := stats.NewRNG(2)
	for _, n := range []int{2, 16, 1024, 2048} {
		p := MustPlan(n)
		x := randSignal(r, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if e := maxErr(x, y); e > 1e-9 {
			t.Errorf("n=%d: round-trip error %v", n, e)
		}
	}
}

func TestParseval(t *testing.T) {
	r := stats.NewRNG(3)
	n := 1024
	x := randSignal(r, n)
	var et float64
	for _, v := range x {
		et += real(v)*real(v) + imag(v)*imag(v)
	}
	y := append([]complex128(nil), x...)
	MustPlan(n).Forward(y)
	var ef float64
	for _, v := range y {
		ef += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(ef/float64(n)-et) > 1e-6*et {
		t.Fatalf("Parseval violated: time %v, freq/N %v", et, ef/float64(n))
	}
}

func TestImpulseResponse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	n := 64
	x := make([]complex128, n)
	x[0] = 1
	MustPlan(n).Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse DFT bin %d = %v", i, v)
		}
	}
}

func TestSingleToneBin(t *testing.T) {
	// A complex exponential at bin k concentrates all energy there.
	n, k := 128, 17
	x := make([]complex128, n)
	for j := range x {
		ang := 2 * math.Pi * float64(k) * float64(j) / float64(n)
		x[j] = complex(math.Cos(ang), math.Sin(ang))
	}
	MustPlan(n).Forward(x)
	for j, v := range x {
		want := complex128(0)
		if j == k {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-8 {
			t.Fatalf("bin %d = %v, want %v", j, v, want)
		}
	}
}

func TestForwardPanicsOnWrongLength(t *testing.T) {
	p := MustPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func TestBluesteinMatchesNaive(t *testing.T) {
	r := stats.NewRNG(4)
	// 600 = 12·50 PRBs is the size the SC-FDMA precoder actually uses;
	// include primes and other non-powers too.
	for _, n := range []int{3, 5, 7, 12, 60, 300, 600, 97} {
		x := randSignal(r, n)
		want := naiveDFT(x)
		got := DFT(x)
		if e := maxErr(got, want); e > 1e-7*float64(n) {
			t.Errorf("bluestein n=%d: max error %v", n, e)
		}
	}
}

func TestDFTPowerOfTwoAgreesWithPlan(t *testing.T) {
	r := stats.NewRNG(5)
	x := randSignal(r, 256)
	a := DFT(x)
	b := append([]complex128(nil), x...)
	MustPlan(256).Forward(b)
	if e := maxErr(a, b); e > 1e-12 {
		t.Fatalf("DFT dispatch mismatch: %v", e)
	}
}

func TestIDFTRoundTripArbitrarySize(t *testing.T) {
	r := stats.NewRNG(6)
	for _, n := range []int{1, 5, 600, 1024} {
		x := randSignal(r, n)
		y := IDFT(DFT(x))
		if e := maxErr(x, y); e > 1e-8 {
			t.Errorf("n=%d: IDFT(DFT) error %v", n, e)
		}
	}
}

func TestDFTEmpty(t *testing.T) {
	if DFT(nil) != nil || IDFT(nil) != nil {
		t.Fatal("empty transform should return nil")
	}
}

func TestDFTDoesNotMutateInput(t *testing.T) {
	r := stats.NewRNG(7)
	x := randSignal(r, 600)
	orig := append([]complex128(nil), x...)
	_ = DFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("DFT mutated its input")
		}
	}
}

func TestDFTLinearity(t *testing.T) {
	r := stats.NewRNG(8)
	n := 600
	x, y := randSignal(r, n), randSignal(r, n)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = x[i] + 2i*y[i]
	}
	want := make([]complex128, n)
	fx, fy := DFT(x), DFT(y)
	for i := range want {
		want[i] = fx[i] + 2i*fy[i]
	}
	if e := maxErr(DFT(sum), want); e > 1e-7 {
		t.Fatalf("linearity violated: %v", e)
	}
}

func TestCacheConcurrency(t *testing.T) {
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(seed uint64) {
			r := stats.NewRNG(seed)
			for i := 0; i < 20; i++ {
				_ = DFT(randSignal(r, 600))
				_ = DFT(randSignal(r, 1024))
			}
			done <- true
		}(uint64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func BenchmarkFFT1024(b *testing.B) {
	r := stats.NewRNG(9)
	p := MustPlan(1024)
	x := randSignal(r, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFT2048(b *testing.B) {
	r := stats.NewRNG(10)
	p := MustPlan(2048)
	x := randSignal(r, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkBluestein600(b *testing.B) {
	r := stats.NewRNG(11)
	x := randSignal(r, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DFT(x)
	}
}

func TestDFTShiftTheoremProperty(t *testing.T) {
	// Circular time shift multiplies bin k by e^{-2πi·k·s/N} — checked via
	// magnitude invariance across random shifts and sizes.
	r := stats.NewRNG(30)
	f := func(raw uint16) bool {
		sizes := []int{12, 60, 64, 600}
		n := sizes[int(raw)%len(sizes)]
		shift := 1 + int(raw/7)%(n-1)
		x := randSignal(r, n)
		shifted := make([]complex128, n)
		for i := range x {
			shifted[i] = x[(i+shift)%n]
		}
		a, b := DFT(x), DFT(shifted)
		for k := range a {
			if math.Abs(cmplx.Abs(a[k])-cmplx.Abs(b[k])) > 1e-6*(1+cmplx.Abs(a[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIntoVariantsBitIdentical(t *testing.T) {
	// DFTInto/IDFTInto must reproduce DFT/IDFT bit for bit, for both the
	// radix-2 and Bluestein paths, including when dst aliases src.
	r := stats.NewRNG(31)
	for _, n := range []int{8, 64, 600, 300, 1024} {
		x := randSignal(r, n)
		work := make([]complex128, WorkLen(n))

		wantF := DFT(x)
		dst := make([]complex128, n)
		DFTInto(dst, x, work)
		for i := range dst {
			if dst[i] != wantF[i] {
				t.Fatalf("n=%d: DFTInto[%d] = %v, DFT %v", n, i, dst[i], wantF[i])
			}
		}

		wantI := IDFT(x)
		IDFTInto(dst, x, work)
		for i := range dst {
			if dst[i] != wantI[i] {
				t.Fatalf("n=%d: IDFTInto[%d] = %v, IDFT %v", n, i, dst[i], wantI[i])
			}
		}

		// Aliased: transform in place.
		inPlace := append([]complex128(nil), x...)
		IDFTInto(inPlace, inPlace, work)
		for i := range inPlace {
			if inPlace[i] != wantI[i] {
				t.Fatalf("n=%d: aliased IDFTInto[%d] = %v, IDFT %v", n, i, inPlace[i], wantI[i])
			}
		}
	}
}

func TestIntoVariantsAllocFree(t *testing.T) {
	r := stats.NewRNG(32)
	for _, n := range []int{512, 600} {
		x := randSignal(r, n)
		dst := make([]complex128, n)
		work := make([]complex128, WorkLen(n))
		IDFTInto(dst, x, work) // warm the kernel caches
		allocs := testing.AllocsPerRun(5, func() {
			DFTInto(dst, x, work)
			IDFTInto(dst, x, work)
		})
		if allocs != 0 {
			t.Fatalf("n=%d: Into transforms allocate %.1f objects per call, want 0", n, allocs)
		}
	}
}

func TestIntoVariantsPanicOnBadLengths(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	x := make([]complex128, 600)
	expectPanic("short dst", func() { DFTInto(make([]complex128, 10), x, make([]complex128, WorkLen(600))) })
	expectPanic("short work", func() { DFTInto(make([]complex128, 600), x, nil) })
	expectPanic("short dst idft", func() { IDFTInto(make([]complex128, 10), x, make([]complex128, WorkLen(600))) })
}
