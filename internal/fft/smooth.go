package fft

import (
	"fmt"
	"math"
)

// smoothPlan is a mixed-radix decimation-in-time FFT for 5-smooth sizes
// (n = 2^a·3^b·5^c). LTE fixes the SC-FDMA transform-precoding length to
// 12·nPRB with 5-smooth nPRB (TS 36.211 §5.3.3), so every despreading size
// the uplink chain meets lands here instead of on Bluestein's three padded
// power-of-two transforms — for the 10 MHz chain's 600-point IDFT that is
// the difference between one 600-point pass and three 2048-point ones.
//
// The recursion is the textbook one: n = r·m splits the input into r
// sequences decimated by r, each transformed recursively, then an r-point
// butterfly with twiddles e^{-2πi·q·k/n} recombines them. Only the forward
// direction is implemented; the package-level inverse goes through the
// conjugation identity in IDFTInto, which is direction-agnostic.
type smoothPlan struct {
	n      int
	levels []smoothLevel
}

// smoothLevel describes one recursion depth: all sub-transforms at a depth
// share a length n_l = r·m and therefore one twiddle table.
type smoothLevel struct {
	r, m int
	// tw[q*m+k] = e^{-2πi·q·k/(r·m)} for q in [0,r), k in [0,m); the q=0 row
	// is all ones and skipped by the combine kernels.
	tw []complex128
}

// smoothFactors returns the radix schedule for a 5-smooth n, or nil if n has
// another prime factor. Fours are peeled before twos so the cheap radix-4
// kernel handles power-of-two parts.
func smoothFactors(n int) []int {
	if n < 2 {
		return nil
	}
	var fs []int
	for n%5 == 0 {
		fs = append(fs, 5)
		n /= 5
	}
	for n%4 == 0 {
		fs = append(fs, 4)
		n /= 4
	}
	for n%3 == 0 {
		fs = append(fs, 3)
		n /= 3
	}
	for n%2 == 0 {
		fs = append(fs, 2)
		n /= 2
	}
	if n != 1 {
		return nil
	}
	return fs
}

// isSmooth reports whether n is 5-smooth and at least 2. Unlike
// smoothFactors it never allocates — it runs on every DFTInto/WorkLen call.
func isSmooth(n int) bool {
	if n < 2 {
		return false
	}
	for n%2 == 0 {
		n /= 2
	}
	for n%3 == 0 {
		n /= 3
	}
	for n%5 == 0 {
		n /= 5
	}
	return n == 1
}

func newSmoothPlan(n int) *smoothPlan {
	fs := smoothFactors(n)
	if fs == nil {
		panic(fmt.Sprintf("fft: %d is not 5-smooth", n))
	}
	p := &smoothPlan{n: n}
	sub := n
	for _, r := range fs {
		m := sub / r
		lv := smoothLevel{r: r, m: m, tw: make([]complex128, r*m)}
		for q := 0; q < r; q++ {
			for k := 0; k < m; k++ {
				ang := -2 * math.Pi * float64(q) * float64(k) / float64(sub)
				lv.tw[q*m+k] = complex(math.Cos(ang), math.Sin(ang))
			}
		}
		p.levels = append(p.levels, lv)
		sub = m
	}
	return p
}

// forwardInto computes the DFT of the n strided samples src[0], src[stride],
// … into dst[0..n). dst must not alias src; the package-level entry points
// guarantee that by staging through scratch.
func (p *smoothPlan) forwardInto(dst, src []complex128, lvl, stride int) {
	L := p.levels[lvl]
	r, m := L.r, L.m
	if m == 1 {
		// Leaf: the combine below IS the r-point DFT (all twiddles are 1),
		// reading the strided sources directly.
		switch r {
		case 2:
			y0, y1 := src[0], src[stride]
			dst[0], dst[1] = y0+y1, y0-y1
		case 3:
			dft3(dst, 1, src[0], src[stride], src[2*stride])
		case 4:
			dft4(dst, 1, src[0], src[stride], src[2*stride], src[3*stride])
		case 5:
			dft5(dst, 1, src[0], src[stride], src[2*stride], src[3*stride], src[4*stride])
		}
		return
	}
	for q := 0; q < r; q++ {
		p.forwardInto(dst[q*m:(q+1)*m], src[q*stride:], lvl+1, stride*r)
	}
	tw := L.tw
	switch r {
	case 2:
		for k := 0; k < m; k++ {
			y0 := dst[k]
			y1 := dst[m+k] * tw[m+k]
			dst[k], dst[m+k] = y0+y1, y0-y1
		}
	case 3:
		for k := 0; k < m; k++ {
			dft3(dst[k:], m, dst[k], dst[m+k]*tw[m+k], dst[2*m+k]*tw[2*m+k])
		}
	case 4:
		for k := 0; k < m; k++ {
			dft4(dst[k:], m,
				dst[k], dst[m+k]*tw[m+k], dst[2*m+k]*tw[2*m+k], dst[3*m+k]*tw[3*m+k])
		}
	case 5:
		for k := 0; k < m; k++ {
			dft5(dst[k:], m,
				dst[k], dst[m+k]*tw[m+k], dst[2*m+k]*tw[2*m+k],
				dst[3*m+k]*tw[3*m+k], dst[4*m+k]*tw[4*m+k])
		}
	}
}

// Small-radix forward DFT codelets. Each writes r outputs at the given
// stride. Constants are the usual cos/sin(2πk/r) pairs; the forward twiddle
// sign convention (e^{-2πi…}) puts the minus on the imaginary parts.

func dft3(out []complex128, stride int, y0, y1, y2 complex128) {
	const (
		c3 = -0.5               // cos(2π/3)
		s3 = 0.8660254037844386 // sin(2π/3)
	)
	t := y1 + y2
	d := y1 - y2
	// i·d rotated: i·(a+bi) = -b + ai, scaled by sin term.
	rot := complex(imag(d)*s3, -real(d)*s3) // -i·s3·d
	u := y0 + complex(c3*real(t), c3*imag(t))
	out[0] = y0 + t
	out[stride] = u + rot
	out[2*stride] = u - rot
}

func dft4(out []complex128, stride int, y0, y1, y2, y3 complex128) {
	t0 := y0 + y2
	t1 := y0 - y2
	t2 := y1 + y3
	d := y1 - y3
	rot := complex(imag(d), -real(d)) // -i·d
	out[0] = t0 + t2
	out[stride] = t1 + rot
	out[2*stride] = t0 - t2
	out[3*stride] = t1 - rot
}

func dft5(out []complex128, stride int, y0, y1, y2, y3, y4 complex128) {
	const (
		c51 = 0.30901699437494745 // cos(2π/5)
		s51 = 0.9510565162951535  // sin(2π/5)
		c52 = -0.8090169943749475 // cos(4π/5)
		s52 = 0.5877852522924731  // sin(4π/5)
	)
	t1 := y1 + y4
	t2 := y2 + y3
	d1 := y1 - y4
	d2 := y2 - y3
	out[0] = y0 + t1 + t2

	a1 := y0 + complex(c51*real(t1)+c52*real(t2), c51*imag(t1)+c52*imag(t2))
	a2 := y0 + complex(c52*real(t1)+c51*real(t2), c52*imag(t1)+c51*imag(t2))
	// b1 = s51·d1 + s52·d2, b2 = s52·d1 − s51·d2; outputs pair as a ∓ i·b.
	b1 := complex(s51*real(d1)+s52*real(d2), s51*imag(d1)+s52*imag(d2))
	b2 := complex(s52*real(d1)-s51*real(d2), s52*imag(d1)-s51*imag(d2))
	r1 := complex(imag(b1), -real(b1)) // -i·b1
	r2 := complex(imag(b2), -real(b2)) // -i·b2
	out[stride] = a1 + r1
	out[2*stride] = a2 + r2
	out[3*stride] = a2 - r2
	out[4*stride] = a1 - r1
}
