// Package fft implements the discrete Fourier transforms needed by the LTE
// uplink chain: an iterative radix-2 FFT for the OFDM (de)modulation sizes
// (powers of two: 512, 1024, 2048) and Bluestein's chirp-z algorithm for the
// SC-FDMA transform precoding sizes (12·nPRB, e.g. 600 for 50 PRBs), which
// are not powers of two.
//
// Conventions: Forward computes X[k] = Σ x[n]·e^{-2πi kn/N} (no scaling);
// Inverse divides by N so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan caches the twiddle factors and bit-reversal permutation for a fixed
// power-of-two size. Plans are safe for concurrent use once built: Forward
// and Inverse write only to their argument.
type Plan struct {
	n       int
	rev     []int
	twiddle []complex128 // e^{-2πi k / n} for k in [0, n/2)
}

// NewPlan builds a plan for size n, which must be a power of two >= 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: size %d is not a positive power of two", n)
	}
	p := &Plan{n: n, rev: make([]int, n), twiddle: make([]complex128, n/2)}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error, for static sizes.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the transform length.
func (p *Plan) Size() int { return p.n }

// Forward computes the in-place DFT of x, which must have length Size().
func (p *Plan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT of x (scaled by 1/N).
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: input length %d, plan size %d", len(x), n))
	}
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[ti]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				u := x[k]
				v := x[k+half] * w
				x[k] = u + v
				x[k+half] = u - v
				ti += step
			}
		}
	}
}

// bluestein converts an arbitrary-size DFT into a convolution evaluated with
// power-of-two FFTs. Chirp tables and sub-plans are cached per DFT size.
type bluestein struct {
	n     int
	m     int // convolution FFT size, power of two >= 2n-1
	plan  *Plan
	chirp []complex128 // w[k] = e^{-iπ k²/n}
	bHat  []complex128 // FFT of the conjugate-chirp kernel
}

func newBluestein(n int) *bluestein {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := &bluestein{n: n, m: m, plan: MustPlan(m)}
	b.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n keeps the angle argument small and exact.
		kk := (k * k) % (2 * n)
		ang := -math.Pi * float64(kk) / float64(n)
		b.chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	bb := make([]complex128, m)
	for k := 0; k < n; k++ {
		c := complex(real(b.chirp[k]), -imag(b.chirp[k])) // conj chirp
		bb[k] = c
		if k > 0 {
			bb[m-k] = c
		}
	}
	b.plan.Forward(bb)
	b.bHat = bb
	return b
}

func (b *bluestein) forward(x []complex128) []complex128 {
	a := make([]complex128, b.m)
	for k := 0; k < b.n; k++ {
		a[k] = x[k] * b.chirp[k]
	}
	b.plan.Forward(a)
	for i := range a {
		a[i] *= b.bHat[i]
	}
	b.plan.Inverse(a)
	out := make([]complex128, b.n)
	for k := 0; k < b.n; k++ {
		out[k] = a[k] * b.chirp[k]
	}
	return out
}

// DFT computes the forward DFT of x at any length, choosing radix-2 when the
// length is a power of two and Bluestein otherwise. It allocates its result.
func DFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := append([]complex128(nil), x...)
		planCache(n).Forward(out)
		return out
	}
	return bluesteinCache(n).forward(x)
}

// IDFT computes the inverse DFT (scaled by 1/N) of x at any length.
func IDFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	// IDFT(x) = conj(DFT(conj(x)))/N.
	tmp := make([]complex128, n)
	for i, v := range x {
		tmp[i] = complex(real(v), -imag(v))
	}
	out := DFT(tmp)
	inv := 1 / float64(n)
	for i, v := range out {
		out[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return out
}

// The caches below are read-mostly maps guarded by copy-on-write semantics;
// the chain uses a handful of fixed sizes (600, 1024, 2048), so contention
// is not a concern, but we still guard with a mutex for safety.
