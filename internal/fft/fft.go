// Package fft implements the discrete Fourier transforms needed by the LTE
// uplink chain: an iterative radix-2 FFT for the OFDM (de)modulation sizes
// (powers of two: 512, 1024, 2048), a mixed-radix (2/3/4/5) FFT for the
// 5-smooth SC-FDMA transform precoding sizes (12·nPRB, e.g. 600 for
// 50 PRBs), and Bluestein's chirp-z algorithm as the fallback for any other
// length.
//
// Conventions: Forward computes X[k] = Σ x[n]·e^{-2πi kn/N} (no scaling);
// Inverse divides by N so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan caches the twiddle factors and bit-reversal permutation for a fixed
// power-of-two size. Plans are safe for concurrent use once built: Forward
// and Inverse write only to their argument.
type Plan struct {
	n          int
	rev        []int
	twiddle    []complex128 // e^{-2πi k / n} for k in [0, n/2)
	twiddleInv []complex128 // conjugates, so the inverse pass is branch-free
}

// NewPlan builds a plan for size n, which must be a power of two >= 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: size %d is not a positive power of two", n)
	}
	p := &Plan{n: n, rev: make([]int, n), twiddle: make([]complex128, n/2)}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	p.twiddleInv = make([]complex128, n/2)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(ang), math.Sin(ang))
		p.twiddleInv[k] = complex(math.Cos(ang), -math.Sin(ang))
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error, for static sizes.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the transform length.
func (p *Plan) Size() int { return p.n }

// Forward computes the in-place DFT of x, which must have length Size().
func (p *Plan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT of x (scaled by 1/N).
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: input length %d, plan size %d", len(x), n))
	}
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies, twiddle table chosen once per
	// direction (twiddleInv holds the conjugates the inverse pass needs).
	// Stages run two at a time: fusing a stage pair keeps the four involved
	// elements in registers and halves the passes over x, which dominates at
	// the OFDM sizes. An odd stage count peels the twiddle-free size-2 stage
	// first. The arithmetic per butterfly is unchanged, so results are
	// bit-identical to the single-stage schedule.
	tw := p.twiddle
	if inverse {
		tw = p.twiddleInv
	}
	size := 2
	if bits.TrailingZeros(uint(n))&1 == 1 {
		for k := 0; k < n; k += 2 {
			u, v := x[k], x[k+1]
			x[k], x[k+1] = u+v, u-v
		}
		size = 4
	}
	// Each pass covers stages size and 2·size over blocks of 2·size.
	for ; size < n; size <<= 2 {
		h := size >> 1
		stepA := n / size
		stepB := stepA >> 1
		for start := 0; start < n; start += size << 1 {
			for j := 0; j < h; j++ {
				i0 := start + j
				i1 := i0 + h
				i2 := i0 + size
				i3 := i2 + h
				wA := tw[j*stepA]
				u0, v0 := x[i0], x[i1]*wA
				u2, v2 := x[i2], x[i3]*wA
				y0, y1 := u0+v0, u0-v0
				t2 := (u2 + v2) * tw[j*stepB]
				t3 := (u2 - v2) * tw[(j+h)*stepB]
				x[i0], x[i2] = y0+t2, y0-t2
				x[i1], x[i3] = y1+t3, y1-t3
			}
		}
	}
}

// bluestein converts an arbitrary-size DFT into a convolution evaluated with
// power-of-two FFTs. Chirp tables and sub-plans are cached per DFT size.
type bluestein struct {
	n     int
	m     int // convolution FFT size, power of two >= 2n-1
	plan  *Plan
	chirp []complex128 // w[k] = e^{-iπ k²/n}
	bHat  []complex128 // FFT of the conjugate-chirp kernel
}

func newBluestein(n int) *bluestein {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := &bluestein{n: n, m: m, plan: MustPlan(m)}
	b.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n keeps the angle argument small and exact.
		kk := (k * k) % (2 * n)
		ang := -math.Pi * float64(kk) / float64(n)
		b.chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	bb := make([]complex128, m)
	for k := 0; k < n; k++ {
		c := complex(real(b.chirp[k]), -imag(b.chirp[k])) // conj chirp
		bb[k] = c
		if k > 0 {
			bb[m-k] = c
		}
	}
	b.plan.Forward(bb)
	b.bHat = bb
	return b
}

func (b *bluestein) forward(x []complex128) []complex128 {
	out := make([]complex128, b.n)
	b.forwardInto(out, x, make([]complex128, b.m))
	return out
}

// forwardInto is forward with caller-provided output and scratch (len m).
// dst may alias src: src is fully consumed before dst is written.
func (b *bluestein) forwardInto(dst, src, work []complex128) {
	a := work[:b.m]
	for k := 0; k < b.n; k++ {
		a[k] = src[k] * b.chirp[k]
	}
	for k := b.n; k < b.m; k++ {
		a[k] = 0
	}
	b.plan.Forward(a)
	for i := range a {
		a[i] *= b.bHat[i]
	}
	b.plan.Inverse(a)
	for k := 0; k < b.n; k++ {
		dst[k] = a[k] * b.chirp[k]
	}
}

// DFT computes the forward DFT of x at any length: radix-2 when the length
// is a power of two, mixed-radix when it is 5-smooth, Bluestein otherwise.
// It allocates its result.
func DFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := append([]complex128(nil), x...)
		planCache(n).Forward(out)
		return out
	}
	if isSmooth(n) {
		out := make([]complex128, n)
		smoothCache(n).forwardInto(out, x, 0, 1)
		return out
	}
	return bluesteinCache(n).forward(x)
}

// IDFT computes the inverse DFT (scaled by 1/N) of x at any length.
func IDFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	IDFTInto(out, x, make([]complex128, WorkLen(n)))
	return out
}

// WorkLen returns the scratch length DFTInto/IDFTInto require for size n:
// zero when n is a power of two (the transform runs in place), n itself for
// 5-smooth sizes (the mixed-radix recursion is out-of-place), otherwise the
// Bluestein convolution size.
func WorkLen(n int) int {
	if n <= 0 || n&(n-1) == 0 {
		return 0
	}
	if isSmooth(n) {
		return n
	}
	return bluesteinCache(n).m
}

// DFTInto computes the forward DFT of src into dst without allocating:
// dst and src must share length n, work must have WorkLen(n) entries, and
// dst may alias src. Results are bit-identical to DFT.
func DFTInto(dst, src, work []complex128) {
	n := len(src)
	if len(dst) != n {
		panic(fmt.Sprintf("fft: DFTInto dst length %d, src %d", len(dst), n))
	}
	if n == 0 {
		return
	}
	if n&(n-1) == 0 {
		copy(dst, src)
		planCache(n).Forward(dst)
		return
	}
	if isSmooth(n) {
		if len(work) < n {
			panic(fmt.Sprintf("fft: DFTInto work length %d, want %d", len(work), n))
		}
		// Stage through work: the recursion is out-of-place and dst may
		// alias src.
		smoothCache(n).forwardInto(work[:n], src, 0, 1)
		copy(dst, work)
		return
	}
	b := bluesteinCache(n)
	if len(work) < b.m {
		panic(fmt.Sprintf("fft: DFTInto work length %d, want %d", len(work), b.m))
	}
	b.forwardInto(dst, src, work)
}

// IDFTInto computes the inverse DFT (scaled by 1/N) of src into dst without
// allocating, under the same contract as DFTInto. Bit-identical to IDFT.
func IDFTInto(dst, src, work []complex128) {
	n := len(src)
	if len(dst) != n {
		panic(fmt.Sprintf("fft: IDFTInto dst length %d, src %d", len(dst), n))
	}
	if n == 0 {
		return
	}
	// IDFT(x) = conj(DFT(conj(x)))/N.
	for i, v := range src {
		dst[i] = complex(real(v), -imag(v))
	}
	DFTInto(dst, dst, work)
	inv := 1 / float64(n)
	for i, v := range dst {
		dst[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

// The caches below are read-mostly maps guarded by copy-on-write semantics;
// the chain uses a handful of fixed sizes (600, 1024, 2048), so contention
// is not a concern, but we still guard with a mutex for safety.
