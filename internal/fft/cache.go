package fft

import "sync"

var (
	cacheMu    sync.Mutex
	plans      = map[int]*Plan{}
	bluesteins = map[int]*bluestein{}
	smooths    = map[int]*smoothPlan{}
)

// planCache returns a shared Plan for power-of-two size n.
func planCache(n int) *Plan {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := plans[n]; ok {
		return p
	}
	p := MustPlan(n)
	plans[n] = p
	return p
}

// smoothCache returns a shared mixed-radix plan for 5-smooth size n.
func smoothCache(n int) *smoothPlan {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := smooths[n]; ok {
		return p
	}
	p := newSmoothPlan(n)
	smooths[n] = p
	return p
}

// bluesteinCache returns a shared Bluestein kernel for arbitrary size n.
func bluesteinCache(n int) *bluestein {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if b, ok := bluesteins[n]; ok {
		return b
	}
	b := newBluestein(n)
	bluesteins[n] = b
	return b
}
