package realtime

import (
	"errors"
	"testing"

	"rtopex/internal/obs"
	"rtopex/internal/phy"
	"rtopex/internal/trace"
)

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{Basestations: 1, Subframes: 1, CoresPerBS: 0, Antennas: 1},
		{Basestations: 1, Subframes: 1, CoresPerBS: 1, Antennas: 0},
		{Basestations: 1, Subframes: 1, CoresPerBS: 1, Antennas: 1, MCS: 99},
		{Basestations: 2, Subframes: 1, CoresPerBS: 1, Antennas: 1, MCS: -1,
			Profiles: trace.DefaultProfiles[:1]},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestLiveRunFixedMCS(t *testing.T) {
	if testing.Short() {
		t.Skip("live run is wall-clock bound")
	}
	// Tiny but real: 1 basestation, low MCS (fast decode), generous
	// dilation so even a loaded CI machine meets the deadlines.
	st, err := Run(Config{
		Basestations: 1,
		CoresPerBS:   2,
		Subframes:    10,
		Antennas:     1,
		SNRdB:        30,
		MCS:          0,
		Dilation:     30,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Subframes != 10 {
		t.Fatalf("accounted %d subframes, want 10", st.Subframes)
	}
	if st.Decoded == 0 {
		t.Fatal("nothing decoded in live mode")
	}
	if len(st.ProcUS) == 0 {
		t.Fatal("no processing-time samples")
	}
	for _, p := range st.ProcUS {
		if p <= 0 {
			t.Fatal("non-positive processing time")
		}
	}
}

func TestLiveRunTraceDriven(t *testing.T) {
	if testing.Short() {
		t.Skip("live run is wall-clock bound")
	}
	st, err := Run(Config{
		Basestations: 2,
		CoresPerBS:   2,
		Subframes:    8,
		Antennas:     1,
		SNRdB:        30,
		MCS:          -1,
		Profiles:     trace.DefaultProfiles,
		Dilation:     60,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Subframes != 16 {
		t.Fatalf("accounted %d subframes, want 16", st.Subframes)
	}
	// Tolerate misses (shared CI hardware) but decode must mostly work.
	if st.Decoded+st.Missed < st.Subframes/2 {
		t.Fatalf("too few completions: %+v", *st)
	}
}

func TestLiveRunTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("live run is wall-clock bound")
	}
	ring := trace.NewRing(0)
	st, err := Run(Config{
		Basestations: 1,
		CoresPerBS:   2,
		Subframes:    6,
		Antennas:     1,
		SNRdB:        30,
		MCS:          0,
		Dilation:     30,
		Seed:         3,
		Tracer:       ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	counts := map[trace.Kind]int{}
	phases := map[string]int{}
	for _, e := range events {
		if e.Time < 0 {
			t.Fatalf("event before epoch: %+v", e)
		}
		counts[e.Event]++
		if e.Event == trace.EvPhase {
			phases[e.Detail]++
		}
	}
	if counts[trace.EvArrive] != 6 {
		t.Fatalf("%d arrivals for 6 subframes", counts[trace.EvArrive])
	}
	// Every processed subframe gets a start, its pipeline phases, and a
	// finish; drops (queue-full) get neither.
	processed := st.Subframes - st.Dropped
	if counts[trace.EvStart] != processed || counts[trace.EvFinish] != processed {
		t.Fatalf("start=%d finish=%d for %d processed subframes",
			counts[trace.EvStart], counts[trace.EvFinish], processed)
	}
	if counts[trace.EvDrop] != st.Dropped {
		t.Fatalf("%d drop events for %d drops", counts[trace.EvDrop], st.Dropped)
	}
	for _, task := range []string{"fft", "chest", "demod", "decode"} {
		if phases[task] != processed {
			t.Fatalf("phase %q emitted %d times for %d processed subframes",
				task, phases[task], processed)
		}
	}
}

func TestLiveRunObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("live run is wall-clock bound")
	}
	reg := obs.NewRegistry()
	st, err := Run(Config{
		Basestations: 1,
		CoresPerBS:   2,
		Subframes:    6,
		Antennas:     1,
		SNRdB:        30,
		MCS:          0,
		Dilation:     30,
		Seed:         4,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The live registry must agree with the final Stats on every counter.
	if got := reg.Counter("rtopex_live_subframes_total").Value(); got != int64(st.Subframes) {
		t.Fatalf("live subframes = %d, stats %d", got, st.Subframes)
	}
	if got := reg.Counter("rtopex_live_decoded_total").Value(); got != int64(st.Decoded) {
		t.Fatalf("live decoded = %d, stats %d", got, st.Decoded)
	}
	if got := reg.Counter("rtopex_live_missed_total").Value(); got != int64(st.Missed) {
		t.Fatalf("live missed = %d, stats %d", got, st.Missed)
	}
	if got := reg.Counter("rtopex_live_dropped_total").Value(); got != int64(st.Dropped) {
		t.Fatalf("live dropped = %d, stats %d", got, st.Dropped)
	}
	h := reg.Histogram("rtopex_live_proc_us")
	if got := h.Count(); got != uint64(len(st.ProcUS)) {
		t.Fatalf("live proc histogram count = %d, stats %d", got, len(st.ProcUS))
	}
	if h.Count() > 0 && h.Quantile(0.5) <= 0 {
		t.Fatal("median processing time should be positive")
	}
}

// TestArenaFailureIsRecordedDrop is the regression for the silently-skipped
// subframe: when no receiver can be acquired, the subframe must still be
// counted, recorded as a drop, traced as EvDrop, and mirrored into the live
// registry — pre-fix code `continue`d and the subframe vanished from every
// ledger.
func TestArenaFailureIsRecordedDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("live run is wall-clock bound")
	}
	orig := arenaGet
	arenaGet = func(a *phy.Arena, cfg phy.Config) (*phy.Receiver, error) {
		return nil, errors.New("injected: receiver unavailable")
	}
	defer func() { arenaGet = orig }()

	ring := trace.NewRing(0)
	reg := obs.NewRegistry()
	const n = 5
	st, err := Run(Config{
		Basestations: 1,
		CoresPerBS:   2,
		Subframes:    n,
		Antennas:     1,
		SNRdB:        30,
		MCS:          0,
		Dilation:     20,
		Seed:         5,
		Tracer:       ring,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Subframes != n {
		t.Fatalf("accounted %d subframes, want %d (drops must still count)", st.Subframes, n)
	}
	if st.Dropped != n {
		t.Fatalf("dropped %d, want all %d", st.Dropped, n)
	}
	if st.Decoded != 0 || st.Missed != 0 || st.DecodeFail != 0 {
		t.Fatalf("unexpected outcomes: %+v", *st)
	}
	drops := 0
	for _, e := range ring.Events() {
		if e.Event == trace.EvDrop {
			drops++
			if e.Detail != "rx-unavailable" {
				t.Fatalf("drop detail %q, want rx-unavailable", e.Detail)
			}
		}
	}
	if drops != n {
		t.Fatalf("%d EvDrop events, want %d", drops, n)
	}
	if got := reg.Counter("rtopex_live_dropped_total").Value(); got != n {
		t.Fatalf("live dropped counter = %d, want %d", got, n)
	}
}

// TestLiveRunPipelined runs the cross-subframe window end to end: with
// PipelineDepth 2 every subframe must still be accounted exactly once and
// decode as in the serial mode.
func TestLiveRunPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("live run is wall-clock bound")
	}
	ring := trace.NewRing(0)
	const n = 8
	st, err := Run(Config{
		Basestations:  1,
		CoresPerBS:    2,
		Subframes:     n,
		Antennas:      1,
		SNRdB:         30,
		MCS:           0,
		Dilation:      30,
		Seed:          6,
		PipelineDepth: 2,
		Tracer:        ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Subframes != n {
		t.Fatalf("accounted %d subframes, want %d", st.Subframes, n)
	}
	if st.Decoded == 0 {
		t.Fatal("nothing decoded in pipelined mode")
	}
	counts := map[trace.Kind]int{}
	for _, e := range ring.Events() {
		counts[e.Event]++
	}
	processed := st.Subframes - st.Dropped
	if counts[trace.EvStart] != processed || counts[trace.EvFinish] != processed {
		t.Fatalf("start=%d finish=%d for %d processed subframes",
			counts[trace.EvStart], counts[trace.EvFinish], processed)
	}
	if counts[trace.EvPhase] != 4*processed {
		t.Fatalf("%d phase events for %d processed subframes", counts[trace.EvPhase], processed)
	}
}

func TestStatsMissRate(t *testing.T) {
	s := &Stats{Subframes: 10, Missed: 2, Dropped: 1}
	if s.MissRate() != 0.3 {
		t.Fatalf("miss rate %v", s.MissRate())
	}
	if (&Stats{}).MissRate() != 0 {
		t.Fatal("empty stats miss rate")
	}
}
