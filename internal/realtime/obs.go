package realtime

import (
	"rtopex/internal/obs"
	"rtopex/internal/phy"
)

// liveObs caches the registry handles the live run's hot paths update, so
// workers touch only atomics (and one histogram mutex), never the registry
// map lock. All methods are no-ops on a nil receiver.
type liveObs struct {
	subframes  *obs.Counter
	decoded    *obs.Counter
	decodeFail *obs.Counter
	missed     *obs.Counter
	dropped    *obs.Counter
	procUS     *obs.Histogram
	lateUS     *obs.Histogram
	stageUS    map[phy.TaskName]*obs.Histogram
}

func newLiveObs(reg *obs.Registry) *liveObs {
	if reg == nil {
		return nil
	}
	reg.SetHelp("rtopex_live_subframes_total", "Subframes released to the live PHY chain.")
	reg.SetHelp("rtopex_live_decoded_total", "Subframes decoded within the deadline.")
	reg.SetHelp("rtopex_live_decode_fail_total", "Subframes whose channel code failed to converge.")
	reg.SetHelp("rtopex_live_missed_total", "Subframes completed after the deadline.")
	reg.SetHelp("rtopex_live_dropped_total", "Subframes dropped because the core was still busy.")
	reg.SetHelp("rtopex_live_proc_us", "Per-subframe wall-clock processing time.")
	reg.SetHelp("rtopex_live_late_us", "Tardiness of subframes that missed the deadline.")
	reg.SetHelp("rtopex_live_stage_us", "Per-pipeline-stage wall-clock time, labelled by stage.")
	stageUS := make(map[phy.TaskName]*obs.Histogram, 4)
	for _, name := range []phy.TaskName{phy.TaskFFT, phy.TaskChEst, phy.TaskDemod, phy.TaskDecode} {
		stageUS[name] = reg.Histogram("rtopex_live_stage_us", obs.L("stage", string(name)))
	}
	return &liveObs{
		subframes:  reg.Counter("rtopex_live_subframes_total"),
		decoded:    reg.Counter("rtopex_live_decoded_total"),
		decodeFail: reg.Counter("rtopex_live_decode_fail_total"),
		missed:     reg.Counter("rtopex_live_missed_total"),
		dropped:    reg.Counter("rtopex_live_dropped_total"),
		procUS:     reg.Histogram("rtopex_live_proc_us"),
		lateUS:     reg.Histogram("rtopex_live_late_us"),
		stageUS:    stageUS,
	}
}

// stage books the wall-clock time of one pipeline stage of one subframe.
func (l *liveObs) stage(name phy.TaskName, us float64) {
	if l == nil {
		return
	}
	if h := l.stageUS[name]; h != nil {
		h.Observe(us)
	}
}

// processed books one completed subframe. outcome is the EvFinish detail
// ("ack"/"late"/"decodefail"); lateUS > 0 marks a deadline miss regardless
// of outcome (a decode failure can also be late, matching Stats).
func (l *liveObs) processed(outcome string, procUS, lateUS float64) {
	if l == nil {
		return
	}
	l.subframes.Inc()
	l.procUS.Observe(procUS)
	switch outcome {
	case "ack":
		l.decoded.Inc()
	case "decodefail":
		l.decodeFail.Inc()
	}
	if lateUS > 0 {
		l.missed.Inc()
		l.lateUS.Observe(lateUS)
	}
}

func (l *liveObs) drop() {
	if l == nil {
		return
	}
	l.subframes.Inc()
	l.dropped.Inc()
}
