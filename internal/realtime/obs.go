package realtime

import (
	"rtopex/internal/obs"
	"rtopex/internal/phy"
)

// liveObs caches the registry handles the live run's hot paths update, so
// workers touch only atomics (and one histogram mutex), never the registry
// map lock. All methods are no-ops on a nil receiver.
type liveObs struct {
	subframes  *obs.Counter
	decoded    *obs.Counter
	decodeFail *obs.Counter
	missed     *obs.Counter
	dropped    *obs.Counter
	procUS     *obs.Histogram
	lateUS     *obs.Histogram
	decodeIt   *obs.Histogram
	stageUS    map[phy.TaskName]*obs.Histogram
}

func newLiveObs(reg *obs.Registry) *liveObs {
	if reg == nil {
		return nil
	}
	reg.SetHelp("rtopex_live_subframes_total", "Subframes released to the live PHY chain.")
	reg.SetHelp("rtopex_live_decoded_total", "Subframes decoded within the deadline.")
	reg.SetHelp("rtopex_live_decode_fail_total", "Subframes whose channel code failed to converge.")
	reg.SetHelp("rtopex_live_missed_total", "Subframes completed after the deadline.")
	reg.SetHelp("rtopex_live_dropped_total", "Subframes dropped because the core was still busy.")
	reg.SetHelp("rtopex_live_proc_us", "Per-subframe wall-clock processing time.")
	reg.SetHelp("rtopex_live_late_us", "Tardiness of subframes that missed the deadline.")
	reg.SetHelp("rtopex_live_stage_us", "Per-pipeline-stage wall-clock time, labelled by stage.")
	reg.SetHelp("rtopex_phy_decode_iterations", "Turbo iterations per code block before CRC early termination (0 = raw-systematic precheck hit).")
	stageUS := make(map[phy.TaskName]*obs.Histogram, 4)
	for _, name := range []phy.TaskName{phy.TaskFFT, phy.TaskChEst, phy.TaskDemod, phy.TaskDecode} {
		stageUS[name] = reg.Histogram("rtopex_live_stage_us", obs.L("stage", string(name)))
	}
	return &liveObs{
		subframes:  reg.Counter("rtopex_live_subframes_total"),
		decoded:    reg.Counter("rtopex_live_decoded_total"),
		decodeFail: reg.Counter("rtopex_live_decode_fail_total"),
		missed:     reg.Counter("rtopex_live_missed_total"),
		dropped:    reg.Counter("rtopex_live_dropped_total"),
		procUS:     reg.Histogram("rtopex_live_proc_us"),
		lateUS:     reg.Histogram("rtopex_live_late_us"),
		decodeIt:   reg.Histogram("rtopex_phy_decode_iterations"),
		stageUS:    stageUS,
	}
}

// stage books the wall-clock time of one pipeline stage of one subframe.
func (l *liveObs) stage(name phy.TaskName, us float64) {
	if l == nil {
		return
	}
	if h := l.stageUS[name]; h != nil {
		h.Observe(us)
	}
}

// processed books one completed subframe. outcome is the EvFinish detail
// ("ack"/"late"/"decodefail"); lateUS > 0 marks a deadline miss regardless
// of outcome (a decode failure can also be late, matching Stats).
func (l *liveObs) processed(outcome string, procUS, lateUS float64) {
	if l == nil {
		return
	}
	l.subframes.Inc()
	l.procUS.Observe(procUS)
	switch outcome {
	case "ack":
		l.decoded.Inc()
	case "decodefail":
		l.decodeFail.Inc()
	}
	if lateUS > 0 {
		l.missed.Inc()
		l.lateUS.Observe(lateUS)
	}
}

// decodeIterations books the per-code-block turbo iteration counts of one
// decoded subframe — the early-termination shape the scheduler exploits
// (most blocks stop after one iteration at operating SNR; the histogram
// exposes the tail that runs to the cap).
func (l *liveObs) decodeIterations(blockIters []int) {
	if l == nil {
		return
	}
	for _, it := range blockIters {
		l.decodeIt.Observe(float64(it))
	}
}

func (l *liveObs) drop() {
	if l == nil {
		return
	}
	l.subframes.Inc()
	l.dropped.Inc()
}
