package realtime

import (
	"errors"
	"testing"

	"rtopex/internal/flight"
	"rtopex/internal/phy"
)

// TestFlightRecorderCapturesArenaFailure arms the live runner's flight
// recorder and injects a receiver-arena failure: every dropped subframe is
// a trigger, and at least one arena-failure dossier must be captured with
// the live run's label and queue-depth snapshot.
func TestFlightRecorderCapturesArenaFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("live run is wall-clock bound")
	}
	orig := arenaGet
	arenaGet = func(a *phy.Arena, cfg phy.Config) (*phy.Receiver, error) {
		return nil, errors.New("injected: receiver unavailable")
	}
	defer func() { arenaGet = orig }()

	spool, err := flight.NewSpool(flight.SpoolConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.Config{Spool: spool, MaxPerSec: -1, PostEvents: -1})
	const n = 5
	st, err := Run(Config{
		Basestations: 1,
		CoresPerBS:   2,
		Subframes:    n,
		Antennas:     1,
		SNRdB:        30,
		MCS:          0,
		Dilation:     20,
		Seed:         5,
		Flight:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()
	if st.Dropped != n {
		t.Fatalf("dropped %d, want all %d", st.Dropped, n)
	}
	if got := rec.Triggers(); got != n {
		t.Fatalf("recorder saw %d triggers, want %d", got, n)
	}
	if rec.Written() < 1 || spool.Len() < 1 {
		t.Fatalf("no dossiers captured (written %d, spooled %d)", rec.Written(), spool.Len())
	}
	d, err := flight.ReadDossierFile(spool.List()[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Trigger != flight.TriggerArenaFailure {
		t.Fatalf("trigger = %q, want %q", d.Trigger, flight.TriggerArenaFailure)
	}
	if d.Label != "realtime" {
		t.Fatalf("label = %q, want realtime", d.Label)
	}
	if d.Sched == nil || len(d.Sched.QueueDepths) == 0 {
		t.Fatalf("missing scheduler state snapshot: %+v", d.Sched)
	}
	if d.Runtime == nil {
		t.Fatal("missing runtime snapshot")
	}
}
