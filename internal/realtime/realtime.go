// Package realtime runs the actual Go PHY chain under wall-clock deadlines
// — the real-execution counterpart of the discrete-event simulator, and the
// closest analog of the paper's testbed this environment permits.
//
// Two honesty notes, both anticipated in DESIGN.md:
//
//   - Go is not a low-latency real-time kernel. The garbage collector and
//     goroutine scheduler inject milliseconds of jitter where the paper's
//     pinned pthreads see tens of microseconds. This package exists partly
//     to measure that gap.
//
//   - The pure-Go PHY is unvectorized: an MCS-27 subframe decodes in tens
//     of milliseconds, not ~1.4 ms. Runs therefore use a time-dilation
//     factor: with Dilation = 50, subframes arrive every 50 ms and the
//     processing budget scales identically, so the *scheduling geometry*
//     (utilization, slack ratios, partitioned core mapping) matches the
//     paper's while absolute times stretch uniformly.
package realtime

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rtopex/internal/bits"
	"rtopex/internal/channel"
	"rtopex/internal/flight"
	"rtopex/internal/lte"
	"rtopex/internal/obs"
	"rtopex/internal/phy"
	"rtopex/internal/stats"
	"rtopex/internal/trace"
)

// Config describes a live run.
type Config struct {
	Basestations int
	CoresPerBS   int // partitioned width (the paper's ⌈Tmax⌉)
	Subframes    int // per basestation
	Antennas     int
	SNRdB        float64
	// MCS fixes the modulation; < 0 draws per subframe from Profiles.
	MCS      int
	Profiles []trace.Profile
	// Dilation stretches the 1 ms subframe clock and the 2 ms budget by
	// the same factor (default 50).
	Dilation float64
	// Pool is how many distinct pre-encoded subframes to rotate through
	// per basestation (default 4). Pre-encoding keeps the feeder loop off
	// the transmit path.
	Pool int
	// PHYWorkers is the intra-subframe fan-out: each worker core executes
	// every pipeline stage's subtasks (per antenna-symbol FFTs, per
	// code-block decodes, …) on a phy.Pool of this many workers — the
	// paper's parallel subtask execution, layered on top of the partitioned
	// core map. ≤1 runs the stages serially with no pool.
	PHYWorkers int
	// PipelineDepth is the cross-subframe window per core: ≥2 lets stage N
	// of subframe j run concurrently with stage N−1 of subframe j+1 (the
	// paper's Fig. 5 precedence pipelining) through a phy.Pipeliner, with
	// receivers for the in-flight window borrowed from the shared arena.
	// ≤1 keeps the serial one-subframe-at-a-time loop.
	PipelineDepth int
	// DecodeBatch is phy.Config's knob of the same name: code blocks per
	// batched decode subtask. 0 selects automatically — all blocks decode
	// as one turbo.Batch when the stages run serially on their core
	// (PHYWorkers ≤ 1), while a phy.Pool fan-out keeps one subtask per
	// block so decode still spreads across the workers.
	DecodeBatch int
	Seed        uint64
	// Tracer, when non-nil, receives the run's event stream (arrivals,
	// starts, per-stage phases, drops, finishes) with times in microseconds
	// since the feeder epoch. The sink is wrapped with trace.Locked because
	// worker threads emit concurrently; a nil Tracer costs nothing — every
	// emit site guards on a single nil check.
	Tracer trace.Tracer
	// Obs, when non-nil, receives live progress while the run executes:
	// subframe/decode/miss/drop counters and the per-subframe processing-time
	// histogram, updated as workers finish — the series `livebench -http`
	// exposes mid-run.
	Obs *obs.Registry
	// Flight, when non-nil, arms the deadline-miss flight recorder: a tap
	// joins the (locked) event stream, and late finishes, queue-full drops
	// and receiver-arena failures freeze miss dossiers. Works with or
	// without Tracer.
	Flight *flight.Recorder
}

func (c Config) dilation() float64 {
	if c.Dilation <= 0 {
		return 50
	}
	return c.Dilation
}

func (c Config) pool() int {
	if c.Pool <= 0 {
		return 4
	}
	return c.Pool
}

// batchAll exceeds any LTE code-block count, collapsing decode to a single
// batched subtask.
const batchAll = 1 << 10

func (c Config) decodeBatch() int {
	if c.DecodeBatch != 0 {
		return c.DecodeBatch
	}
	if c.PHYWorkers > 1 {
		return 1
	}
	return batchAll
}

// rxConfig is the receiver-side phy configuration: phyConfig plus the
// decode batching the run's execution mode wants.
func (c Config) rxConfig(mcs int) phy.Config {
	pc := phyConfig(mcs, c.Antennas)
	pc.DecodeBatch = c.decodeBatch()
	return pc
}

func (c Config) validate() error {
	if c.Basestations < 1 || c.Subframes < 1 {
		return fmt.Errorf("realtime: need ≥1 basestation and subframe")
	}
	if c.CoresPerBS < 1 {
		return fmt.Errorf("realtime: need ≥1 core per basestation")
	}
	if c.Antennas < 1 {
		return fmt.Errorf("realtime: need ≥1 antenna")
	}
	if c.MCS > lte.MaxMCS {
		return fmt.Errorf("realtime: MCS %d out of range", c.MCS)
	}
	if c.MCS < 0 && len(c.Profiles) < c.Basestations {
		return fmt.Errorf("realtime: %d profiles for %d basestations", len(c.Profiles), c.Basestations)
	}
	return nil
}

// Stats aggregates a live run.
type Stats struct {
	Subframes  int
	Decoded    int
	DecodeFail int // CRC failures (channel, not schedule)
	Missed     int // completed after the deadline
	Dropped    int // core still busy when the next subframe arrived
	// ProcUS are per-subframe wall-clock processing times in µs.
	ProcUS []float64
	// LateUS are the tardiness values of missed subframes in µs.
	LateUS []float64
}

// MissRate is the deadline-miss fraction (missed + dropped).
func (s *Stats) MissRate() float64 {
	if s.Subframes == 0 {
		return 0
	}
	return float64(s.Missed+s.Dropped) / float64(s.Subframes)
}

// prebuilt is one encoded-and-channel-distorted subframe ready to decode.
type prebuilt struct {
	iq  [][]complex128
	n0  float64
	mcs int
}

// job is one released subframe on its way to a core.
type job struct {
	bs, idx int
	release time.Time
}

// arenaGet is how workers borrow receivers; tests swap it to inject
// acquisition failures and prove dropped subframes are recorded, not
// silently skipped.
var arenaGet = func(a *phy.Arena, cfg phy.Config) (*phy.Receiver, error) {
	return a.Get(cfg)
}

// Run executes the live partitioned schedule: CoresPerBS worker goroutines
// per basestation, each locked to an OS thread, fed every dilated
// millisecond in the paper's round-robin core mapping.
func Run(cfg Config) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dil := cfg.dilation()
	period := time.Duration(dil * float64(time.Millisecond))
	budget := 2 * period // the 2 ms Rx budget of §2.4, dilated

	// Pre-encode subframe pools per basestation (and per MCS draw).
	r := stats.NewRNG(cfg.Seed)
	pools := make([][]prebuilt, cfg.Basestations)
	mcsAt := make([][]int, cfg.Basestations)
	for bs := 0; bs < cfg.Basestations; bs++ {
		var loads trace.Trace
		if cfg.MCS < 0 {
			loads = trace.NewGenerator(cfg.Profiles[bs], r.Uint64()).Generate(cfg.Subframes)
		}
		mcsAt[bs] = make([]int, cfg.Subframes)
		seen := map[int]int{} // mcs -> pool index
		for j := 0; j < cfg.Subframes; j++ {
			mcs := cfg.MCS
			if mcs < 0 {
				mcs = trace.MCS(loads[j])
			}
			mcsAt[bs][j] = mcs
			if _, ok := seen[mcs]; !ok {
				pb, err := buildSubframe(r, mcs, cfg.Antennas, cfg.SNRdB)
				if err != nil {
					return nil, err
				}
				seen[mcs] = len(pools[bs])
				pools[bs] = append(pools[bs], pb)
			}
		}
		// Remap subframe index -> pool entry.
		for j := 0; j < cfg.Subframes; j++ {
			mcsAt[bs][j] = seen[mcsAt[bs][j]]
		}
		_ = cfg.pool() // pool size is bounded by distinct MCS values
	}

	nCores := cfg.Basestations * cfg.CoresPerBS
	queues := make([]chan job, nCores)
	for i := range queues {
		queues[i] = make(chan job, 4)
	}

	tr := cfg.Tracer
	if tr != nil && !tr.Enabled() {
		tr = nil
	}
	// epoch anchors every event time; the feeder reuses it as its clock so
	// traced times and release times share one origin.
	epoch := time.Now()
	var tap *flight.Tap
	if cfg.Flight != nil {
		budgetUS := budget.Seconds() * 1e6
		periodUS := period.Seconds() * 1e6
		tap = cfg.Flight.NewTap(flight.TapConfig{
			Label:    "realtime",
			BudgetUS: budgetUS,
			// The live schedule's release clock is exact: subframe j of every
			// basestation is released at j·period and must finish within the
			// dilated 2 ms budget.
			Job: func(bs, sf int) (float64, float64, bool) {
				arr := float64(sf) * periodUS
				return arr, arr + budgetUS, true
			},
			State: func() flight.SchedState {
				st := flight.SchedState{
					Scheduler:   "realtime",
					NowUS:       time.Since(epoch).Seconds() * 1e6,
					QueueDepths: make([]int, len(queues)),
				}
				for i, q := range queues {
					st.QueueDepths[i] = len(q)
				}
				return st
			},
		})
		// The tap joins the stream inside the Locked wrapper: worker
		// threads emit concurrently, and the tap — unsynchronized like
		// every other sink — relies on that lock for serialization.
		tr = trace.Tee(tr, tap)
	}
	if tr != nil {
		tr = trace.Locked(tr)
	}
	emit := func(at time.Time, core, bs, sf int, kind trace.Kind, detail string) {
		tr.Emit(trace.Event{
			Time: at.Sub(epoch).Seconds() * 1e6,
			Core: core, BS: bs, Subframe: sf, Event: kind, Detail: detail,
		})
	}

	st := &Stats{}
	lo := newLiveObs(cfg.Obs)
	// Receivers come from a shared arena so cores decoding the same config
	// recycle warmed scratch instead of each holding a private copy per MCS.
	arena := phy.NewArena()
	arena.PublishTo(cfg.Obs)
	var mu sync.Mutex

	// account settles one processed subframe against its deadline — shared
	// by the serial loop and the pipelined completion callback so both paths
	// classify outcomes identically.
	account := func(core, bs, idx int, release, start, done time.Time, res phy.Result, perr error) {
		outcome := "ack"
		procUS := done.Sub(start).Seconds() * 1e6
		lateUS := 0.0
		mu.Lock()
		st.Subframes++
		st.ProcUS = append(st.ProcUS, procUS)
		deadline := release.Add(budget)
		switch {
		case perr != nil || !res.OK:
			st.DecodeFail++
			outcome = "decodefail"
			if done.After(deadline) {
				lateUS = done.Sub(deadline).Seconds() * 1e6
				st.Missed++
				st.LateUS = append(st.LateUS, lateUS)
			}
		case done.After(deadline):
			lateUS = done.Sub(deadline).Seconds() * 1e6
			st.Missed++
			st.LateUS = append(st.LateUS, lateUS)
			outcome = "late"
		default:
			st.Decoded++
		}
		mu.Unlock()
		lo.processed(outcome, procUS, lateUS)
		if perr == nil {
			lo.decodeIterations(res.BlockIterations)
		}
		if tr != nil {
			emit(done, core, bs, idx, trace.EvFinish, outcome)
		}
	}
	// drop records a subframe that never got processing — the feeder found
	// the core's queue full, or no receiver could be acquired for it.
	drop := func(at time.Time, core, bs, idx int, why string) {
		mu.Lock()
		st.Subframes++
		st.Dropped++
		mu.Unlock()
		lo.drop()
		if tr != nil {
			emit(at, core, bs, idx, trace.EvDrop, why)
		}
	}

	var wg sync.WaitGroup
	for core := 0; core < nCores; core++ {
		core := core
		bs := core / cfg.CoresPerBS
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Intra-subframe fan-out: one phy.Pool per worker core, so a
			// core's stage subtasks spread over PHYWorkers goroutines.
			var pool *phy.Pool
			if cfg.PHYWorkers > 1 {
				pool = phy.NewPool(cfg.PHYWorkers)
				defer pool.Close()
			}
			if cfg.PipelineDepth >= 2 {
				runPipelined(cfg, core, bs, queues[core], pools[bs], mcsAt[bs],
					arena, pool, tr, emit, lo, account, drop)
				return
			}
			for j := range queues[core] {
				pb := pools[bs][mcsAt[bs][j.idx]]
				rx, err := arenaGet(arena, cfg.rxConfig(pb.mcs))
				if err != nil {
					// A subframe that cannot get a receiver is enforcement,
					// not silence: it counts, it drops, and it traces, so
					// the schedule's miss accounting stays truthful.
					drop(time.Now(), core, bs, j.idx, "rx-unavailable")
					continue
				}
				start := time.Now()
				if tr != nil {
					emit(start, core, bs, j.idx, trace.EvStart, "")
				}
				// Walk the pipeline stage by stage: each boundary gets an
				// EvPhase when traced and a per-stage histogram sample, and
				// each stage's subtasks fan out across the pool.
				var res phy.Result
				stages, err := rx.Pipeline(pb.iq, pb.n0)
				if err == nil {
					for _, stg := range stages {
						stageStart := time.Now()
						if tr != nil {
							emit(stageStart, core, bs, j.idx, trace.EvPhase, string(stg.Name))
						}
						if pool != nil {
							pool.Run(stg.Subtasks)
						} else {
							for _, sub := range stg.Subtasks {
								sub()
							}
						}
						lo.stage(stg.Name, time.Since(stageStart).Seconds()*1e6)
					}
					res = rx.Result()
				}
				done := time.Now()
				account(core, bs, j.idx, j.release, start, done, res, err)
				arena.Put(rx) // res (aliasing rx's scratch) is fully consumed
			}
		}()
	}

	// Feeder: the transport component, releasing one subframe per
	// basestation every dilated millisecond.
	runtime.LockOSThread()
	for j := 0; j < cfg.Subframes; j++ {
		release := epoch.Add(time.Duration(j) * period)
		if d := time.Until(release); d > 0 {
			time.Sleep(d)
		}
		for bs := 0; bs < cfg.Basestations; bs++ {
			core := bs*cfg.CoresPerBS + j%cfg.CoresPerBS
			if tr != nil {
				emit(release, -1, bs, j, trace.EvArrive, "")
			}
			select {
			case queues[core] <- job{bs: bs, idx: j, release: release}:
			default:
				// Core's queue full: the previous subframe overran its
				// whole window — a drop, as in the paper's enforcement.
				drop(release, core, bs, j, "queue-full")
			}
		}
	}
	runtime.UnlockOSThread()
	for i := range queues {
		close(queues[i])
	}
	wg.Wait()
	if tap != nil {
		tap.Close()
	}
	return st, nil
}

// runPipelined is one core's job loop with a cross-subframe window: up to
// cfg.PipelineDepth subframes of this core are in flight at once through a
// phy.Pipeliner, so stage N of one subframe overlaps stage N−1 of the next
// (the paper's Fig. 5 precedence pipelining) instead of serializing whole
// subframes. Outcome accounting flows through the same account/drop paths
// as the serial loop.
func runPipelined(cfg Config, core, bs int, queue chan job, pbs []prebuilt, mcsIdx []int,
	arena *phy.Arena, ppool *phy.Pool, tr trace.Tracer,
	emit func(at time.Time, core, bs, sf int, kind trace.Kind, detail string),
	lo *liveObs,
	account func(core, bs, idx int, release, start, done time.Time, res phy.Result, perr error),
	drop func(at time.Time, core, bs, idx int, why string)) {

	// In-flight bookkeeping: the pipeliner reports completions by tag (the
	// subframe index, unique per core) on its own goroutines.
	type inflight struct {
		idx     int
		release time.Time
		start   time.Time
	}
	var pmu sync.Mutex
	fl := make(map[uint64]*inflight)
	pl, err := phy.NewPipeliner(phy.PipelinerConfig{
		Arena: arena,
		Pool:  ppool,
		Depth: cfg.PipelineDepth,
		OnStart: func(tag uint64) {
			now := time.Now()
			pmu.Lock()
			f := fl[tag]
			f.start = now
			idx := f.idx
			pmu.Unlock()
			if tr != nil {
				emit(now, core, bs, idx, trace.EvStart, "")
			}
		},
		OnStage: func(tag uint64, stage phy.TaskName, elapsed time.Duration) {
			if tr != nil {
				pmu.Lock()
				idx := fl[tag].idx
				pmu.Unlock()
				// The hook fires at stage completion; date the phase event
				// back to the stage's start like the serial path does.
				emit(time.Now().Add(-elapsed), core, bs, idx, trace.EvPhase, string(stage))
			}
			lo.stage(stage, elapsed.Seconds()*1e6)
		},
		OnDone: func(tag uint64, res phy.Result, perr error) {
			done := time.Now()
			pmu.Lock()
			f := fl[tag]
			delete(fl, tag)
			pmu.Unlock()
			if perr != nil {
				// No receiver for this subframe: same enforcement as the
				// serial path — recorded, never silently skipped.
				drop(done, core, bs, f.idx, "rx-unavailable")
				return
			}
			account(core, bs, f.idx, f.release, f.start, done, res, perr)
		},
	})
	if err != nil {
		// Only reachable with a nil arena; drain the queue as drops so the
		// run still terminates with honest accounting.
		for j := range queue {
			drop(time.Now(), core, bs, j.idx, "pipeline-unavailable")
		}
		return
	}
	for j := range queue {
		pb := pbs[mcsIdx[j.idx]]
		tag := uint64(j.idx)
		pmu.Lock()
		fl[tag] = &inflight{idx: j.idx, release: j.release}
		pmu.Unlock()
		if err := pl.Submit(tag, cfg.rxConfig(pb.mcs), pb.iq, pb.n0); err != nil {
			pmu.Lock()
			delete(fl, tag)
			pmu.Unlock()
			drop(time.Now(), core, bs, j.idx, "rx-unavailable")
		}
	}
	pl.Close()
}

func phyConfig(mcs, antennas int) phy.Config {
	return phy.Config{
		Bandwidth: lte.BW10MHz,
		MCS:       mcs,
		Antennas:  antennas,
		RNTI:      0x3003,
		CellID:    17,
	}
}

// buildSubframe encodes one random transport block and passes it through
// the AWGN channel.
func buildSubframe(r *stats.RNG, mcs, antennas int, snrDB float64) (prebuilt, error) {
	tx, err := phy.NewTransmitter(phyConfig(mcs, antennas))
	if err != nil {
		return prebuilt{}, err
	}
	payload := make([]byte, tx.TBS())
	bits.RandomBits(payload, r.Uint64)
	wave, err := tx.Transmit(payload)
	if err != nil {
		return prebuilt{}, err
	}
	ch, err := channel.New(snrDB, antennas, r.Uint64())
	if err != nil {
		return prebuilt{}, err
	}
	iq, _ := ch.Apply(wave)
	return prebuilt{iq: iq, n0: ch.N0(), mcs: mcs}, nil
}
