// Package model implements the paper's end-to-end processing-time model
// (Eq. 1):
//
//	Trxproc = w0 + w1·N + w2·K + w3·D·L + E
//
// where N is the antenna count, K the modulation order, D the subcarrier
// load (bits/RE), L the turbo iteration count, and E a platform error term.
// The package provides the calibrated GPP parameters of Table 1, a
// long-tailed platform-jitter sampler matching Fig. 3(d), an SNR-dependent
// iteration law, least-squares fitting (the Table 1 procedure), and the
// FFT/demod/decode task decomposition the simulator and RT-OPEX use.
//
// All times are in microseconds.
package model

import (
	"errors"
	"math"

	"rtopex/internal/stats"
)

// Params are the linear-model coefficients (µs).
type Params struct {
	W0 float64 // fixed overhead
	W1 float64 // per antenna (symbol-level blocks: FFT, equalization, copies)
	W2 float64 // per modulation order (constellation-level blocks)
	W3 float64 // per D·L (decoder work: D bits per subcarrier per iteration)
}

// PaperGPP is Table 1: the parameters measured on the paper's Xeon E5-2660
// with r² = 0.992.
var PaperGPP = Params{W0: 31.4, W1: 169.1, W2: 49.7, W3: 93.0}

// Predict evaluates Eq. (1) without the error term.
func (p Params) Predict(n, k int, d float64, l int) float64 {
	return p.W0 + p.W1*float64(n) + p.W2*float64(k) + p.W3*d*float64(l)
}

// WCET is the worst-case execution time bound obtained by substituting the
// iteration cap Lm for L (§2.1).
func (p Params) WCET(n, k int, d float64, lm int) float64 {
	return p.Predict(n, k, d, lm)
}

// fftPerAntennaUS is the FFT task's share of the per-antenna coefficient:
// 54 µs per antenna gives the 108 µs two-antenna FFT task median the paper
// measures in Fig. 18. The remainder of w1·N (memory copies, channel
// estimation, equalization) belongs to the demod task.
const fftPerAntennaUS = 54.0

// TaskTimes decomposes a subframe's processing time into the paper's three
// sequential tasks (Fig. 5).
type TaskTimes struct {
	FFT    float64
	Demod  float64
	Decode float64
}

// Total returns the subframe processing time excluding platform error.
func (t TaskTimes) Total() float64 { return t.FFT + t.Demod + t.Decode }

// Tasks splits Predict into the three tasks: FFT scales with antennas,
// demod absorbs the fixed cost, the remaining antenna work and the
// modulation-order work, decode carries the D·L term.
func (p Params) Tasks(n, k int, d float64, l int) TaskTimes {
	fft := fftPerAntennaUS * float64(n)
	demodAnt := p.W1 - fftPerAntennaUS
	if demodAnt < 0 {
		demodAnt = 0
		fft = p.W1 * float64(n)
	}
	return TaskTimes{
		FFT:    fft,
		Demod:  p.W0 + demodAnt*float64(n) + p.W2*float64(k),
		Decode: p.W3 * d * float64(l),
	}
}

// FFTSubtaskCount and friends expose the subtask granularity of Fig. 5:
// one FFT subtask per (antenna, OFDM symbol) and one decode subtask per
// turbo code block. Subtask durations are the task time split evenly, which
// matches the paper's treatment of subtasks as fixed execution units.
const symbolsPerSubframe = 14

// FFTSubtaskCount returns the number of FFT subtasks for n antennas.
func FFTSubtaskCount(n int) int { return symbolsPerSubframe * n }

// FFTSubtaskTime returns the duration of one FFT subtask.
func (p Params) FFTSubtaskTime(n int) float64 {
	return p.Tasks(n, 2, 0, 1).FFT / float64(FFTSubtaskCount(n))
}

// DecodeSubtaskTime returns the duration of one decode subtask when the
// block splits into c code blocks.
func (p Params) DecodeSubtaskTime(n, k int, d float64, l, c int) float64 {
	if c < 1 {
		c = 1
	}
	return p.Tasks(n, k, d, l).Decode / float64(c)
}

// Jitter is the platform-error model: a Gaussian bulk plus a rare Pareto
// spike, calibrated so that P(E > 150 µs) ≈ 1e-3 and P(E > 400 µs) ≈ 1e-5
// with extreme values ~0.7 ms at the 1-in-10⁶ level — the order statistics
// of Fig. 3(d) and the cyclictest/hackbench stress test.
type Jitter struct {
	SigmaUS      float64 // Gaussian bulk σ
	SpikeProb    float64 // probability a sample carries a spike
	SpikeScaleUS float64 // Pareto scale xm
	SpikeAlpha   float64 // Pareto shape
}

// DefaultJitter is the Fig. 3(d) calibration.
var DefaultJitter = Jitter{SigmaUS: 12, SpikeProb: 0.01, SpikeScaleUS: 92, SpikeAlpha: 4.7}

// NoJitter disables the platform error term (for deterministic tests).
var NoJitter = Jitter{}

// Sample draws one platform error value (µs). The bulk is symmetric around
// zero (it is a model residual); spikes are strictly positive (preemptions
// only ever delay processing).
func (j Jitter) Sample(r *stats.RNG) float64 {
	e := 0.0
	if j.SigmaUS > 0 {
		e = j.SigmaUS * r.NormFloat64()
	}
	if j.SpikeProb > 0 && r.Float64() < j.SpikeProb {
		e += r.Pareto(j.SpikeScaleUS, j.SpikeAlpha)
	}
	return e
}

// IterationLaw models the turbo iteration count L ∈ [1, Lm] as a function
// of the SNR margin above the MCS's decoding threshold: each additional
// iteration is needed with probability q = clamp(exp(-margin/decay), floor,
// ceil), giving a truncated geometric distribution. The floor keeps a
// residual iteration tail even at high SNR — the paper observes that L "is
// in general non-deterministic (even for fixed SNR)".
type IterationLaw struct {
	ThresholdBaseDB   float64 // decoding threshold of MCS 0
	ThresholdPerMCSDB float64 // threshold slope per MCS step
	DecayDB           float64 // margin scale
	FloorProb         float64 // minimum per-step retry probability
	CeilProb          float64 // maximum per-step retry probability
}

// DefaultIterationLaw spans thresholds from ≈ -1 dB (MCS 0) to ≈ 20 dB
// (MCS 27), matching LTE link-adaptation tables.
// The floor of 0.15 reflects that even at 30 dB the high-rate MCSs retain a
// substantial multi-iteration tail (the paper's partitioned scheduler
// misses ~1e-2 of subframes at RTT/2 = 500–600 µs, which requires
// P(L ≥ 3 | MCS 27, 30 dB) of a few percent).
var DefaultIterationLaw = IterationLaw{
	ThresholdBaseDB:   -1,
	ThresholdPerMCSDB: 0.78,
	DecayDB:           2.5,
	FloorProb:         0.15,
	CeilProb:          0.95,
}

// RetryProb returns the per-step probability of needing one more iteration.
func (il IterationLaw) RetryProb(mcs int, snrDB float64) float64 {
	margin := snrDB - (il.ThresholdBaseDB + il.ThresholdPerMCSDB*float64(mcs))
	q := math.Exp(-margin / il.DecayDB)
	if q < il.FloorProb {
		q = il.FloorProb
	}
	if q > il.CeilProb {
		q = il.CeilProb
	}
	return q
}

// Sample draws an iteration count in [1, lm].
func (il IterationLaw) Sample(r *stats.RNG, mcs int, snrDB float64, lm int) int {
	if lm < 1 {
		lm = 1
	}
	q := il.RetryProb(mcs, snrDB)
	l := 1
	for l < lm && r.Float64() < q {
		l++
	}
	return l
}

// Decodable reports whether a subframe decodes successfully under the law:
// a decode fails when even Lm iterations would not converge, i.e. the
// geometric chain would continue past Lm.
func (il IterationLaw) Decodable(r *stats.RNG, mcs int, snrDB float64, lm, got int) bool {
	if got < lm {
		return true
	}
	return r.Float64() >= il.RetryProb(mcs, snrDB)
}

// Observation is one processing-time measurement for fitting.
type Observation struct {
	N int     // antennas
	K int     // modulation order
	D float64 // subcarrier load
	L int     // turbo iterations
	T float64 // measured total time (µs)
}

// Fit estimates Params from observations by ordinary least squares and
// returns the goodness of fit r², reproducing the Table 1 procedure.
func Fit(obs []Observation) (Params, float64, error) {
	if len(obs) < 4 {
		return Params{}, 0, errors.New("model: need at least 4 observations")
	}
	x := make([][]float64, len(obs))
	y := make([]float64, len(obs))
	for i, o := range obs {
		x[i] = []float64{1, float64(o.N), float64(o.K), o.D * float64(o.L)}
		y[i] = o.T
	}
	beta, r2, err := stats.OLS(x, y)
	if err != nil {
		return Params{}, 0, err
	}
	return Params{W0: beta[0], W1: beta[1], W2: beta[2], W3: beta[3]}, r2, nil
}
