package model

import (
	"math"
	"testing"

	"rtopex/internal/lte"
	"rtopex/internal/stats"
)

func TestPredictPaperAnchors(t *testing.T) {
	p := PaperGPP
	// "each additional antenna adds 169µs" (§2.1).
	if d := p.Predict(3, 6, 1, 1) - p.Predict(2, 6, 1, 1); math.Abs(d-169.1) > 1e-9 {
		t.Fatalf("antenna increment %v", d)
	}
	// "each Turbo iteration at MCS 27 adds 345µs": w3·D with D=3.71 ≈ 345.
	d27, _ := lte.SubcarrierLoad(27, lte.BW10MHz)
	inc := p.Predict(2, 6, d27, 3) - p.Predict(2, 6, d27, 2)
	if inc < 340 || inc < 0 || inc > 360 {
		t.Fatalf("per-iteration increment at MCS 27 = %v, want ~345", inc)
	}
	// Fig. 3(a): MCS 0 → 27 at L=2, N=2 goes from ~0.5 ms to ~1.4 ms.
	d0, _ := lte.SubcarrierLoad(0, lte.BW10MHz)
	t0 := p.Predict(2, 2, d0, 2)
	t27 := p.Predict(2, 6, d27, 2)
	if t0 < 400 || t0 > 600 {
		t.Fatalf("MCS 0 time %v, want ~500", t0)
	}
	if t27 < 1300 || t27 > 1500 {
		t.Fatalf("MCS 27 time %v, want ~1400", t27)
	}
	ratio := t27 / t0
	if ratio < 2.5 || ratio > 3.1 {
		t.Fatalf("MCS 0→27 factor %v, want ~2.8", ratio)
	}
}

func TestWCETUsesLm(t *testing.T) {
	p := PaperGPP
	d, _ := lte.SubcarrierLoad(27, lte.BW10MHz)
	if p.WCET(2, 6, d, 4) != p.Predict(2, 6, d, 4) {
		t.Fatal("WCET must substitute Lm")
	}
	if p.WCET(2, 6, d, 4) <= p.Predict(2, 6, d, 1) {
		t.Fatal("WCET not above best case")
	}
}

func TestTasksSumToPredict(t *testing.T) {
	p := PaperGPP
	for _, n := range []int{1, 2, 4} {
		for _, l := range []int{1, 4} {
			d, _ := lte.SubcarrierLoad(21, lte.BW10MHz)
			tt := p.Tasks(n, 6, d, l)
			if math.Abs(tt.Total()-p.Predict(n, 6, d, l)) > 1e-9 {
				t.Fatalf("task split does not sum: %v vs %v", tt.Total(), p.Predict(n, 6, d, l))
			}
			if tt.FFT <= 0 || tt.Demod <= 0 || tt.Decode <= 0 {
				t.Fatalf("non-positive task time %+v", tt)
			}
		}
	}
}

func TestFFTTaskMatchesFig18(t *testing.T) {
	// Two-antenna FFT task ≈ 108 µs (Fig. 18's local median).
	tt := PaperGPP.Tasks(2, 6, 3.7, 2)
	if math.Abs(tt.FFT-108) > 1 {
		t.Fatalf("FFT task = %v, want 108", tt.FFT)
	}
}

func TestDecodeTaskMagnitude(t *testing.T) {
	// Fig. 4(b): serial decode at high MCS ≈ 980 µs. At MCS 27, D = 3.774:
	// L=3 gives 1053; L∈[2,3] brackets the figure.
	d, _ := lte.SubcarrierLoad(27, lte.BW10MHz)
	lo := PaperGPP.Tasks(2, 6, d, 2).Decode
	hi := PaperGPP.Tasks(2, 6, d, 3).Decode
	if lo > 980 || hi < 980 {
		t.Fatalf("decode task [%v, %v] does not bracket 980", lo, hi)
	}
}

func TestSubtaskAccounting(t *testing.T) {
	p := PaperGPP
	n := 2
	if FFTSubtaskCount(n) != 28 {
		t.Fatalf("FFT subtasks = %d", FFTSubtaskCount(n))
	}
	total := p.FFTSubtaskTime(n) * float64(FFTSubtaskCount(n))
	if math.Abs(total-p.Tasks(n, 6, 3.7, 2).FFT) > 1e-9 {
		t.Fatal("FFT subtasks do not sum to task")
	}
	d, _ := lte.SubcarrierLoad(27, lte.BW10MHz)
	dt := p.DecodeSubtaskTime(n, 6, d, 2, 6)
	if math.Abs(dt*6-p.Tasks(n, 6, d, 2).Decode) > 1e-9 {
		t.Fatal("decode subtasks do not sum to task")
	}
	if p.DecodeSubtaskTime(n, 6, d, 2, 0) != p.Tasks(n, 6, d, 2).Decode {
		t.Fatal("c=0 should clamp to one subtask")
	}
}

func TestJitterTailCalibration(t *testing.T) {
	r := stats.NewRNG(1)
	const n = 2_000_000
	over150, over400 := 0, 0
	for i := 0; i < n; i++ {
		e := DefaultJitter.Sample(r)
		if e > 150 {
			over150++
		}
		if e > 400 {
			over400++
		}
	}
	p150 := float64(over150) / n
	p400 := float64(over400) / n
	if p150 < 3e-4 || p150 > 3e-3 {
		t.Fatalf("P(E>150µs) = %v, want ~1e-3", p150)
	}
	if p400 > 1e-4 {
		t.Fatalf("P(E>400µs) = %v, want ~1e-5", p400)
	}
}

func TestJitterBulkIsSmall(t *testing.T) {
	r := stats.NewRNG(2)
	w := stats.Welford{}
	for i := 0; i < 100000; i++ {
		w.Add(DefaultJitter.Sample(r))
	}
	if math.Abs(w.Mean()) > 5 {
		t.Fatalf("jitter mean %v µs, want near 0", w.Mean())
	}
}

func TestNoJitterIsZero(t *testing.T) {
	r := stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		if NoJitter.Sample(r) != 0 {
			t.Fatal("NoJitter produced a nonzero sample")
		}
	}
}

func TestIterationLawMonotoneInSNR(t *testing.T) {
	il := DefaultIterationLaw
	if il.RetryProb(27, 10) <= il.RetryProb(27, 30) {
		t.Fatal("retry prob not decreasing in SNR")
	}
	if il.RetryProb(27, 20) <= il.RetryProb(0, 20) {
		t.Fatal("retry prob not increasing in MCS")
	}
}

func TestIterationLawClamps(t *testing.T) {
	il := DefaultIterationLaw
	if q := il.RetryProb(0, 100); q != il.FloorProb {
		t.Fatalf("floor not applied: %v", q)
	}
	if q := il.RetryProb(27, -100); q != il.CeilProb {
		t.Fatalf("ceiling not applied: %v", q)
	}
}

func TestIterationSampleRange(t *testing.T) {
	r := stats.NewRNG(4)
	il := DefaultIterationLaw
	counts := map[int]int{}
	for i := 0; i < 50000; i++ {
		l := il.Sample(r, 27, 30, 4)
		if l < 1 || l > 4 {
			t.Fatalf("L = %d out of [1,4]", l)
		}
		counts[l]++
	}
	// At 30 dB most blocks take 1 iteration but a tail must exist.
	if counts[1] < 30000 {
		t.Fatalf("only %d single-iteration decodes at 30 dB", counts[1])
	}
	if counts[3]+counts[4] == 0 {
		t.Fatal("no high-iteration tail at 30 dB")
	}
	if il.Sample(r, 0, 30, 0) != 1 {
		t.Fatal("lm<1 should clamp to 1")
	}
}

func TestIterationMeanGrowsAsSNRFalls(t *testing.T) {
	r := stats.NewRNG(5)
	il := DefaultIterationLaw
	mean := func(snr float64) float64 {
		s := 0
		for i := 0; i < 20000; i++ {
			s += il.Sample(r, 25, snr, 4)
		}
		return float64(s) / 20000
	}
	m10, m20, m30 := mean(10), mean(20), mean(30)
	if !(m10 > m20 && m20 > m30) {
		t.Fatalf("iteration means not decreasing: %v %v %v", m10, m20, m30)
	}
}

func TestDecodable(t *testing.T) {
	r := stats.NewRNG(6)
	il := DefaultIterationLaw
	// Below Lm always decodable.
	for i := 0; i < 100; i++ {
		if !il.Decodable(r, 27, 0, 4, 3) {
			t.Fatal("got<lm must be decodable")
		}
	}
	// At Lm with terrible SNR, failures must occur.
	fails := 0
	for i := 0; i < 1000; i++ {
		if !il.Decodable(r, 27, 0, 4, 4) {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("no decode failures at 0 dB MCS 27")
	}
}

func TestFitRecoversTable1(t *testing.T) {
	// Generate synthetic measurements from PaperGPP + jitter and refit:
	// the Table 1 procedure must recover the parameters with r² ≈ 0.99.
	r := stats.NewRNG(7)
	il := DefaultIterationLaw
	var obs []Observation
	for i := 0; i < 40000; i++ {
		mcs := r.Intn(28)
		info, _ := lte.MCSTable(mcs)
		d, _ := lte.SubcarrierLoad(mcs, lte.BW10MHz)
		n := 1 + r.Intn(3)
		snr := 30 * r.Float64()
		l := il.Sample(r, mcs, snr, 4)
		tt := PaperGPP.Predict(n, info.Scheme.Order(), d, l) + DefaultJitter.Sample(r)
		obs = append(obs, Observation{N: n, K: info.Scheme.Order(), D: d, L: l, T: tt})
	}
	p, r2, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.W0-PaperGPP.W0) > 5 || math.Abs(p.W1-PaperGPP.W1) > 3 ||
		math.Abs(p.W2-PaperGPP.W2) > 3 || math.Abs(p.W3-PaperGPP.W3) > 3 {
		t.Fatalf("fit %+v far from %+v", p, PaperGPP)
	}
	if r2 < 0.98 {
		t.Fatalf("r² = %v, want ≥ 0.98 (paper: 0.992)", r2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, _, err := Fit(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	// Collinear observations (same N,K,D,L) cannot identify 4 parameters.
	obs := make([]Observation, 10)
	for i := range obs {
		obs[i] = Observation{N: 2, K: 6, D: 1, L: 2, T: 100}
	}
	if _, _, err := Fit(obs); err == nil {
		t.Fatal("degenerate design accepted")
	}
}

func BenchmarkJitterSample(b *testing.B) {
	r := stats.NewRNG(8)
	for i := 0; i < b.N; i++ {
		_ = DefaultJitter.Sample(r)
	}
}
