// Package bits implements the bit-level utilities of the LTE L1 chain:
// transport-block CRC attachment (CRC24A), code-block CRC (CRC24B), the
// 16-bit CRC used on control channels, and bit/byte packing helpers.
//
// All CRC generators follow 3GPP TS 36.212 §5.1.1: cyclic generator
// polynomials applied to the bit sequence MSB-first with zero initial state
// and no final XOR. Payloads and parity are represented as one bit per byte
// (values 0/1), which is how the rest of the chain (turbo coder, scrambler,
// modulator) consumes them.
package bits

// Generator polynomials from TS 36.212 §5.1.1, written without the leading
// x^L term (the engine shifts it out implicitly).
const (
	// polyCRC24A = x^24 + x^23 + x^18 + x^17 + x^14 + x^11 + x^10 + x^7 +
	// x^6 + x^5 + x^4 + x^3 + x + 1
	polyCRC24A = 0x864CFB
	// polyCRC24B = x^24 + x^23 + x^6 + x^5 + x + 1
	polyCRC24B = 0x800063
	// polyCRC16 = x^16 + x^12 + x^5 + 1
	polyCRC16 = 0x1021
)

// crcTables holds byte-at-a-time lookup tables for the three generators,
// built on first use. table[i] is the remainder of processing the 8 bits of
// i (MSB-first) through a zeroed register — CRC linearity over GF(2) makes
// the byte-wise update below produce exactly the bit-serial remainder.
var crcTables = map[uint32]*[256]uint32{
	polyCRC24A: buildCRCTable(polyCRC24A, 24),
	polyCRC24B: buildCRCTable(polyCRC24B, 24),
	polyCRC16:  buildCRCTable(polyCRC16, 16),
}

func buildCRCTable(poly uint32, width uint) *[256]uint32 {
	top := uint32(1) << (width - 1)
	mask := top | (top - 1)
	var tbl [256]uint32
	for i := 0; i < 256; i++ {
		reg := uint32(i) << (width - 8)
		for b := 0; b < 8; b++ {
			if reg&top != 0 {
				reg = (reg << 1) ^ poly
			} else {
				reg <<= 1
			}
			reg &= mask
		}
		tbl[i] = reg
	}
	return &tbl
}

// crcBits runs the generic MSB-first CRC over a 0/1-valued bit slice and
// returns the width-bit remainder. Bits are packed eight at a time through
// the lookup table; the sub-byte remainder falls back to the serial update.
func crcBits(data []byte, poly uint32, width uint) uint32 {
	var reg uint32
	top := uint32(1) << (width - 1)
	mask := top | (top - 1)
	tbl := crcTables[poly]
	i := 0
	for ; i+8 <= len(data); i += 8 {
		packed := uint32(data[i]&1)<<7 | uint32(data[i+1]&1)<<6 |
			uint32(data[i+2]&1)<<5 | uint32(data[i+3]&1)<<4 |
			uint32(data[i+4]&1)<<3 | uint32(data[i+5]&1)<<2 |
			uint32(data[i+6]&1)<<1 | uint32(data[i+7]&1)
		idx := byte(reg>>(width-8)) ^ byte(packed)
		reg = ((reg << 8) ^ tbl[idx]) & mask
	}
	for ; i < len(data); i++ {
		reg ^= uint32(data[i]&1) << (width - 1)
		if reg&top != 0 {
			reg = (reg << 1) ^ poly
		} else {
			reg <<= 1
		}
		reg &= mask
	}
	return reg
}

// CRC24A computes the 24-bit transport-block CRC of a 0/1 bit slice.
func CRC24A(data []byte) uint32 { return crcBits(data, polyCRC24A, 24) }

// CRC24B computes the 24-bit code-block CRC of a 0/1 bit slice.
func CRC24B(data []byte) uint32 { return crcBits(data, polyCRC24B, 24) }

// CRC16 computes the 16-bit CRC of a 0/1 bit slice.
func CRC16(data []byte) uint32 { return crcBits(data, polyCRC16, 16) }

// AppendCRC appends the width-bit value MSB-first to data as 0/1 bits and
// returns the extended slice.
func AppendCRC(data []byte, crc uint32, width uint) []byte {
	for i := int(width) - 1; i >= 0; i-- {
		data = append(data, byte((crc>>uint(i))&1))
	}
	return data
}

// CheckCRC24A verifies a bit sequence whose final 24 bits are a CRC24A over
// the preceding bits. It reports false for sequences shorter than 25 bits.
func CheckCRC24A(withCRC []byte) bool {
	if len(withCRC) <= 24 {
		return false
	}
	n := len(withCRC) - 24
	want := CRC24A(withCRC[:n])
	return extractCRC(withCRC[n:], 24) == want
}

// CheckCRC24B verifies a bit sequence whose final 24 bits are a CRC24B over
// the preceding bits.
func CheckCRC24B(withCRC []byte) bool {
	if len(withCRC) <= 24 {
		return false
	}
	n := len(withCRC) - 24
	want := CRC24B(withCRC[:n])
	return extractCRC(withCRC[n:], 24) == want
}

func extractCRC(tail []byte, width uint) uint32 {
	var v uint32
	for i := uint(0); i < width; i++ {
		v = v<<1 | uint32(tail[i]&1)
	}
	return v
}
