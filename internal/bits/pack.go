package bits

// BytesToBits expands packed bytes into one bit per byte, MSB first. The
// result has exactly 8*len(data) entries of value 0 or 1.
func BytesToBits(data []byte) []byte {
	out := make([]byte, 0, 8*len(data))
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, (b>>uint(i))&1)
		}
	}
	return out
}

// BitsToBytes packs a 0/1 bit slice MSB-first into bytes. If the length is
// not a multiple of 8, the final byte is zero-padded on the right.
func BitsToBytes(bitSlice []byte) []byte {
	out := make([]byte, (len(bitSlice)+7)/8)
	for i, b := range bitSlice {
		if b&1 != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// XORBits returns a ^ b elementwise over 0/1 slices. It panics if lengths
// differ, since a length mismatch in the chain is always a programming error.
func XORBits(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("bits: XORBits length mismatch")
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = (a[i] ^ b[i]) & 1
	}
	return out
}

// HammingDistance counts positions at which two 0/1 slices differ. It panics
// on length mismatch.
func HammingDistance(a, b []byte) int {
	if len(a) != len(b) {
		panic("bits: HammingDistance length mismatch")
	}
	d := 0
	for i := range a {
		if a[i]&1 != b[i]&1 {
			d++
		}
	}
	return d
}

// RandomBits fills dst with bits drawn from next, a function returning
// uniform uint64s (e.g. (*stats.RNG).Uint64). Keeping the dependency as a
// function avoids an import cycle and lets tests inject fixed patterns.
func RandomBits(dst []byte, next func() uint64) {
	var buf uint64
	var left uint
	for i := range dst {
		if left == 0 {
			buf = next()
			left = 64
		}
		dst[i] = byte(buf & 1)
		buf >>= 1
		left--
	}
}
