package bits

import (
	"testing"
	"testing/quick"

	"rtopex/internal/stats"
)

// randomPayload returns n random 0/1 bits from a seeded generator.
func randomPayload(r *stats.RNG, n int) []byte {
	p := make([]byte, n)
	RandomBits(p, r.Uint64)
	return p
}

func TestCRC24AKnownVector(t *testing.T) {
	// All-zero payload must give zero CRC (linear code property).
	if got := CRC24A(make([]byte, 40)); got != 0 {
		t.Fatalf("CRC24A(zeros) = %#x, want 0", got)
	}
	// A single 1 bit at the end of a 24-bit message equals the polynomial
	// remainder of x^24, which is the generator poly without the x^24 term.
	msg := make([]byte, 24)
	msg[23] = 1
	if got := CRC24A(msg); got != 0x864CFB {
		t.Fatalf("CRC24A(x^24 impulse) = %#x, want %#x", got, 0x864CFB)
	}
	if got := CRC24B(msg); got != 0x800063 {
		t.Fatalf("CRC24B(x^24 impulse) = %#x, want %#x", got, 0x800063)
	}
}

func TestCRC16Known(t *testing.T) {
	msg := make([]byte, 16)
	msg[15] = 1
	if got := CRC16(msg); got != 0x1021 {
		t.Fatalf("CRC16(x^16 impulse) = %#x, want %#x", got, 0x1021)
	}
}

func TestAppendAndCheckRoundTrip(t *testing.T) {
	r := stats.NewRNG(1)
	for _, n := range []int{1, 7, 40, 100, 1000, 6144} {
		p := randomPayload(r, n)
		withA := AppendCRC(append([]byte(nil), p...), CRC24A(p), 24)
		if !CheckCRC24A(withA) {
			t.Fatalf("CRC24A round-trip failed for n=%d", n)
		}
		withB := AppendCRC(append([]byte(nil), p...), CRC24B(p), 24)
		if !CheckCRC24B(withB) {
			t.Fatalf("CRC24B round-trip failed for n=%d", n)
		}
	}
}

func TestCheckRejectsShortInput(t *testing.T) {
	if CheckCRC24A(make([]byte, 24)) {
		t.Error("24-bit input (no payload) accepted")
	}
	if CheckCRC24B(nil) {
		t.Error("nil input accepted")
	}
}

func TestCRCDetectsAllSingleBitErrors(t *testing.T) {
	r := stats.NewRNG(2)
	p := randomPayload(r, 120)
	withCRC := AppendCRC(append([]byte(nil), p...), CRC24A(p), 24)
	for i := range withCRC {
		withCRC[i] ^= 1
		if CheckCRC24A(withCRC) {
			t.Fatalf("single-bit error at %d undetected", i)
		}
		withCRC[i] ^= 1
	}
}

func TestCRCDetectsAllDoubleBitErrors(t *testing.T) {
	r := stats.NewRNG(3)
	p := randomPayload(r, 64)
	withCRC := AppendCRC(append([]byte(nil), p...), CRC24B(p), 24)
	for i := 0; i < len(withCRC); i++ {
		for j := i + 1; j < len(withCRC); j++ {
			withCRC[i] ^= 1
			withCRC[j] ^= 1
			if CheckCRC24B(withCRC) {
				t.Fatalf("double-bit error at (%d,%d) undetected", i, j)
			}
			withCRC[i] ^= 1
			withCRC[j] ^= 1
		}
	}
}

func TestCRCDetectsBurstErrors(t *testing.T) {
	// A CRC of width w detects all burst errors of length <= w.
	r := stats.NewRNG(4)
	p := randomPayload(r, 200)
	withCRC := AppendCRC(append([]byte(nil), p...), CRC24A(p), 24)
	for burst := 2; burst <= 24; burst++ {
		for trial := 0; trial < 20; trial++ {
			start := r.Intn(len(withCRC) - burst)
			// A burst has nonzero first and last bits.
			withCRC[start] ^= 1
			withCRC[start+burst-1] ^= 1
			for k := 1; k < burst-1; k++ {
				if r.Float64() < 0.5 {
					withCRC[start+k] ^= 1
				}
			}
			if CheckCRC24A(withCRC) {
				t.Fatalf("burst of length %d at %d undetected", burst, start)
			}
			// Restore by recomputing from the pristine payload copy.
			copy(withCRC, p)
			withCRC = AppendCRC(withCRC[:len(p)], CRC24A(p), 24)
		}
	}
}

func TestCRCLinearity(t *testing.T) {
	// CRC(a^b) == CRC(a)^CRC(b) for equal-length messages.
	r := stats.NewRNG(5)
	f := func(seed uint32) bool {
		rr := stats.NewRNG(uint64(seed) ^ r.Uint64())
		a := randomPayload(rr, 96)
		b := randomPayload(rr, 96)
		return CRC24A(XORBits(a, b)) == CRC24A(a)^CRC24A(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bitSlice := BytesToBits(data)
		if len(bitSlice) != 8*len(data) {
			return false
		}
		back := BitsToBytes(bitSlice)
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsToBytesPadding(t *testing.T) {
	got := BitsToBytes([]byte{1, 0, 1}) // 101 -> 1010_0000
	if len(got) != 1 || got[0] != 0xA0 {
		t.Fatalf("BitsToBytes padding wrong: %#v", got)
	}
}

func TestXORBitsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	XORBits([]byte{1}, []byte{1, 0})
}

func TestHammingDistance(t *testing.T) {
	if d := HammingDistance([]byte{1, 0, 1, 1}, []byte{1, 1, 1, 0}); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
}

func BenchmarkCRC24A6144(b *testing.B) {
	r := stats.NewRNG(6)
	p := randomPayload(r, 6144)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CRC24A(p)
	}
}
