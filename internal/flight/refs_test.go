package flight_test

import (
	"sync"
	"testing"
	"time"

	"rtopex/internal/flight"
	"rtopex/internal/obs"
)

// waitWritten polls until the recorder's async writer has drained n
// dossiers (the capture timestamp is stamped at drain time).
func waitWritten(t *testing.T, rec *flight.Recorder, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rec.Written() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d written dossiers (have %d)", n, rec.Written())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDossierRefsSince: the recorder implements obs.DossierSource — recent
// dossiers become alert cross-link refs stamped with the injected capture
// clock, and the since cutoff filters on it.
func TestDossierRefsSince(t *testing.T) {
	var mu sync.Mutex
	now := time.UnixMilli(50_000)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	rec := flight.New(flight.Config{PostEvents: -1, MaxPerSec: -1, Now: clock})
	tap := rec.NewTap(flight.TapConfig{Label: "refs"})

	tap.Emit(miss(1, 0, 0, 1))
	waitWritten(t, rec, 1)
	mu.Lock()
	now = now.Add(5 * time.Second)
	mu.Unlock()
	tap.Emit(miss(2, 0, 0, 2))
	waitWritten(t, rec, 2)
	tap.Close()
	rec.Close()

	var _ obs.DossierSource = rec // compile-time interface check

	refs := rec.DossierRefsSince(time.UnixMilli(0))
	if len(refs) != 2 {
		t.Fatalf("refs = %+v, want 2", refs)
	}
	first := refs[0]
	if first.Source != "local" || first.ID != "seq:1" || first.Label != "refs" ||
		first.Trigger != "deadline-miss" || first.Seq != 1 || first.CapturedMS != 50_000 {
		t.Fatalf("first ref = %+v", first)
	}
	if refs[1].ID != "seq:2" || refs[1].CapturedMS != 55_000 {
		t.Fatalf("second ref = %+v", refs[1])
	}

	late := rec.DossierRefsSince(time.UnixMilli(51_000))
	if len(late) != 1 || late[0].Seq != 2 {
		t.Fatalf("since-filtered refs = %+v", late)
	}
}
