package flight_test

import (
	"testing"

	"rtopex/internal/flight"
	"rtopex/internal/trace"
)

// BenchmarkTapEmit is the armed per-event hot path in isolation: one ring
// store plus trigger classification for a non-trigger event. The run-level
// armed-overhead gate lives in internal/harness (BenchmarkFlightRecorderArmed).
func BenchmarkTapEmit(b *testing.B) {
	rec := flight.New(flight.Config{})
	defer rec.Close()
	tap := rec.NewTap(flight.TapConfig{})
	e := trace.Event{Time: 1, Core: 3, BS: 1, Subframe: 5, Event: trace.EvPhase, Detail: "fft"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Time = float64(i)
		tap.Emit(e)
	}
}

// BenchmarkCapture is the cost of one admitted trigger: merging nine full
// core rings into a time-ordered window and freezing the dossier. This is
// the price the MaxPerSec rate limiter budgets, paid per capture, never
// per event.
func BenchmarkCapture(b *testing.B) {
	rec := flight.New(flight.Config{MaxPerSec: -1, MaxDossiers: -1, PostEvents: -1, Keep: 1})
	defer rec.Close()
	tap := rec.NewTap(flight.TapConfig{})
	for c := -1; c < 8; c++ {
		for i := 0; i < 128; i++ {
			tap.Emit(trace.Event{Time: float64(i), Core: c, Event: trace.EvPhase, Detail: "fft"})
		}
	}
	miss := trace.Event{Time: 9999, Core: 3, BS: 1, Subframe: 5, Event: trace.EvFinish, Detail: "late"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tap.Emit(miss)
	}
}
