package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"

	"rtopex/internal/obs"
)

// Routes is the recorder's HTTP surface, for mounting on an obs server
// (obs.Serve(addr, reg, rec.Routes()...)):
//
//	/dossiers        JSON index: counters plus recent dossier summaries
//	/dossiers/<seq>  one full dossier (recent cache, then spool)
//	/events          SSE stream; each captured dossier arrives as one
//	                 "dossier" event carrying its summary JSON
func (r *Recorder) Routes() []obs.Route {
	return []obs.Route{
		{Pattern: "/dossiers", Handler: http.HandlerFunc(r.serveIndex)},
		{Pattern: "/dossiers/", Handler: http.HandlerFunc(r.serveDossier)},
		{Pattern: "/events", Handler: http.HandlerFunc(r.serveEvents)},
	}
}

// Index is the /dossiers payload.
type Index struct {
	Triggers   int64     `json:"triggers"`
	Written    int64     `json:"written"`
	Suppressed int64     `json:"suppressed"`
	Lost       int64     `json:"lost,omitempty"`
	Spooled    int       `json:"spooled,omitempty"`
	Dossiers   []Summary `json:"dossiers"`
}

func (r *Recorder) serveIndex(w http.ResponseWriter, req *http.Request) {
	idx := Index{
		Triggers:   r.Triggers(),
		Written:    r.Written(),
		Suppressed: r.Suppressed(),
		Lost:       r.Lost(),
		Dossiers:   r.Recent(),
	}
	if r.cfg.Spool != nil {
		idx.Spooled = r.cfg.Spool.Len()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(idx)
}

func (r *Recorder) serveDossier(w http.ResponseWriter, req *http.Request) {
	rest := strings.TrimPrefix(req.URL.Path, "/dossiers/")
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		http.Error(w, "bad dossier seq", http.StatusBadRequest)
		return
	}
	d, ok := r.Dossier(seq)
	if !ok && r.cfg.Spool != nil {
		prefix := fmt.Sprintf("dossier-%06d-", seq)
		for _, p := range r.cfg.Spool.List() {
			if strings.HasPrefix(filepath.Base(p), prefix) {
				if sd, err := ReadDossierFile(p); err == nil {
					d, ok = sd, true
				}
				break
			}
		}
	}
	if !ok {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = d.WriteJSON(w)
}

func (r *Recorder) serveEvents(w http.ResponseWriter, req *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprint(w, ": rtopex flight recorder event stream\n\n")
	fl.Flush()
	ch, cancel := r.subscribe()
	defer cancel()
	for {
		select {
		case <-req.Context().Done():
			return
		case <-r.done:
			return
		case sum := <-ch:
			fmt.Fprintf(w, "event: dossier\ndata: %s\n\n", sum)
			fl.Flush()
		}
	}
}
