package flight

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// SpoolConfig bounds an on-disk dossier spool.
type SpoolConfig struct {
	// Dir is the spool directory (created if missing).
	Dir string
	// MaxDossiers caps the file count (default 128; < 0 disables).
	MaxDossiers int
	// MaxBytes caps the spool's total size (default 64 MiB; < 0 disables).
	MaxBytes int64
}

// Spool is a capped directory of dossier files: writes evict the oldest
// dossiers once either cap is exceeded, so a long-running worker under a
// miss storm keeps the freshest forensics and a bounded disk footprint.
// File names are "dossier-<seq>-<trigger>.json"; the zero-padded sequence
// makes lexical order capture order.
type Spool struct {
	mu       sync.Mutex
	dir      string
	max      int
	maxBytes int64
	files    []spoolFile // oldest first
	bytes    int64
	evicted  int64
}

type spoolFile struct {
	name string
	size int64
}

// NewSpool opens (and, on restart, rescans) a spool directory.
func NewSpool(cfg SpoolConfig) (*Spool, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flight: spool needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Spool{dir: cfg.Dir, max: cfg.MaxDossiers, maxBytes: cfg.MaxBytes}
	if s.max == 0 {
		s.max = 128
	}
	if s.maxBytes == 0 {
		s.maxBytes = 64 << 20
	}
	// Resume: existing dossier files count against the caps, oldest first.
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "dossier-") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.files = append(s.files, spoolFile{name: e.Name(), size: info.Size()})
		s.bytes += info.Size()
	}
	sort.Slice(s.files, func(i, j int) bool { return s.files[i].name < s.files[j].name })
	return s, nil
}

// Dir returns the spool directory.
func (s *Spool) Dir() string { return s.dir }

// Write spools one dossier and returns its path, evicting the oldest
// dossiers as needed to respect the caps.
func (s *Spool) Write(d *Dossier) (string, error) {
	name := fmt.Sprintf("dossier-%06d-%s.json", d.Seq, d.Trigger)
	path := filepath.Join(s.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(path)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", err
	}
	info, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.files = append(s.files, spoolFile{name: name, size: info.Size()})
	s.bytes += info.Size()
	var evict []string
	for len(s.files) > 1 &&
		((s.max > 0 && len(s.files) > s.max) || (s.maxBytes > 0 && s.bytes > s.maxBytes)) {
		old := s.files[0]
		s.files = s.files[1:]
		s.bytes -= old.size
		s.evicted++
		evict = append(evict, filepath.Join(s.dir, old.name))
	}
	s.mu.Unlock()
	for _, p := range evict {
		os.Remove(p)
	}
	return path, nil
}

// Len reports the spooled dossier count.
func (s *Spool) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// Evicted reports how many dossiers the caps have pushed out.
func (s *Spool) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// List returns the spooled dossier paths, oldest first.
func (s *Spool) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.files))
	for i, f := range s.files {
		out[i] = filepath.Join(s.dir, f.name)
	}
	return out
}
