package flight

import (
	"fmt"
	"io"
	"strings"

	"rtopex/internal/trace"
)

// Stage is one pipeline phase of the triggering subframe, as reconstructed
// from the dossier window.
type Stage struct {
	Name    string
	StartUS float64
	DurUS   float64
}

// StageBreakdown reconstructs the triggering subframe's per-stage timing
// from the window: each EvPhase opens a stage that runs until the next
// phase (or the terminal finish/drop), so the stage durations sum exactly
// to the subframe's measured completion time (start → finish). ok is false
// when the window holds no phase events for the subframe (e.g. the ring
// had already overwritten them).
func StageBreakdown(d *Dossier) (stages []Stage, startUS, endUS float64, ok bool) {
	bs, sf := d.TriggerEvent.BS, d.TriggerEvent.Subframe
	startUS, endUS = -1, -1
	var phases []trace.Event
	for _, e := range d.Window {
		if e.BS != bs || e.Subframe != sf {
			continue
		}
		switch e.Event {
		case trace.EvStart:
			startUS = e.Time
		case trace.EvPhase:
			phases = append(phases, e)
		case trace.EvFinish, trace.EvDrop:
			endUS = e.Time
		}
	}
	if len(phases) == 0 || endUS < 0 {
		return nil, 0, 0, false
	}
	if startUS < 0 {
		// Ring overwrote the start; the first phase entry coincides with it
		// in the simulator's pipeline, so fall back to that.
		startUS = phases[0].Time
	}
	for i, p := range phases {
		end := endUS
		if i+1 < len(phases) {
			end = phases[i+1].Time
		}
		stages = append(stages, Stage{Name: p.Detail, StartUS: p.Time, DurUS: end - p.Time})
	}
	return stages, startUS, endUS, true
}

// WritePostMortem renders a dossier as a human-readable miss post-mortem:
// what tripped, the stage timeline against the budget, the scheduler and
// migration state at the trigger, core utilization, and the Go-runtime
// reading. This is the `rtoptrace -dossier` output.
func WritePostMortem(w io.Writer, d *Dossier) error {
	bw := &strings.Builder{}
	label := d.Label
	if label == "" {
		label = "?"
	}
	fmt.Fprintf(bw, "miss dossier #%d — %s at t=%.1f µs (run %q, bs %d sf %d, core %d)\n",
		d.Seq, d.Trigger, d.TriggerEvent.Time, label, d.TriggerEvent.BS, d.TriggerEvent.Subframe, d.TriggerEvent.Core)
	fmt.Fprintf(bw, "trigger event: %s %q\n", d.TriggerEvent.Event, d.TriggerEvent.Detail)

	if d.DeadlineUS > 0 || d.BudgetUS > 0 {
		bw.WriteString("\nbudget window:\n")
		if d.ArrivalUS > 0 || d.DeadlineUS > 0 {
			fmt.Fprintf(bw, "  arrival %.1f µs, deadline %.1f µs", d.ArrivalUS, d.DeadlineUS)
			if d.BudgetUS > 0 {
				fmt.Fprintf(bw, " (%.0f µs budget)", d.BudgetUS)
			}
			bw.WriteByte('\n')
		} else {
			fmt.Fprintf(bw, "  budget %.0f µs\n", d.BudgetUS)
		}
	}

	if stages, start, end, ok := StageBreakdown(d); ok {
		fmt.Fprintf(bw, "\nstage timeline (bs %d sf %d):\n", d.TriggerEvent.BS, d.TriggerEvent.Subframe)
		fmt.Fprintf(bw, "  %-8s %12s %12s", "stage", "start µs", "dur µs")
		if d.BudgetUS > 0 {
			fmt.Fprintf(bw, " %12s", "% of budget")
		}
		bw.WriteByte('\n')
		for _, s := range stages {
			fmt.Fprintf(bw, "  %-8s %12.1f %12.1f", s.Name, s.StartUS, s.DurUS)
			if d.BudgetUS > 0 {
				fmt.Fprintf(bw, " %11.1f%%", 100*s.DurUS/d.BudgetUS)
			}
			bw.WriteByte('\n')
		}
		fmt.Fprintf(bw, "  completion (start→end): %.1f µs\n", end-start)
		if d.DeadlineUS > 0 {
			if over := end - d.DeadlineUS; over > 0 {
				fmt.Fprintf(bw, "  overshot deadline by %.1f µs\n", over)
			} else {
				fmt.Fprintf(bw, "  slack remaining at end: %.1f µs\n", -over)
			}
		}
	} else {
		fmt.Fprintf(bw, "\nstage timeline: unavailable (no phase events for bs %d sf %d in window)\n",
			d.TriggerEvent.BS, d.TriggerEvent.Subframe)
	}

	if migs := migrationEvents(d); len(migs) > 0 {
		bw.WriteString("\nmigration activity in window (triggering subframe):\n")
		for _, e := range migs {
			fmt.Fprintf(bw, "  t=%.1f core %d %s %s\n", e.Time, e.Core, e.Event, e.Detail)
		}
	}

	if d.Sched != nil {
		bw.WriteString("\nscheduler state at trigger:\n")
		s := d.Sched
		fmt.Fprintf(bw, "  scheduler %q, t=%.1f µs\n", s.Scheduler, s.NowUS)
		if len(s.QueueDepths) > 0 {
			fmt.Fprintf(bw, "  queue depths %v\n", s.QueueDepths)
		}
		fmt.Fprintf(bw, "  running jobs %d, in-flight migration batches %d, pending engine events %d\n",
			s.RunningJobs, s.InFlightBatches, s.PendingEngineEvents)
	}

	if len(d.Cores) > 0 {
		bw.WriteString("\ncore accounting (run start → trigger):\n")
		for i, r := range d.Cores {
			fmt.Fprintf(bw, "  core %d: busy %5.1f%%  migration %5.1f%%  idle %5.1f%%\n",
				i, 100*r.Busy, 100*r.Migration, 100*r.Idle)
		}
	}

	if d.Runtime != nil {
		rt := d.Runtime
		fmt.Fprintf(bw, "\ngo runtime: heap %.1f MiB, gc cycles %d, goroutines %d, gc pause p50 %.0f µs p99 %.0f µs\n",
			float64(rt.HeapObjectsBytes)/(1<<20), rt.GCCycles, rt.Goroutines,
			rt.GCPauseP50S*1e6, rt.GCPauseP99S*1e6)
	}

	if n := len(d.Window); n > 0 {
		fmt.Fprintf(bw, "\nwindow: %d events (%d pre + %d post) spanning %.1f–%.1f µs",
			n, d.PreEvents, d.PostEvents, d.Window[0].Time, d.Window[n-1].Time)
		if d.RingDropped > 0 {
			fmt.Fprintf(bw, " (ring dropped %d older events)", d.RingDropped)
		}
		bw.WriteByte('\n')
	}
	_, err := io.WriteString(w, bw.String())
	return err
}

// migrationEvents filters the window down to migration-lifecycle events
// owned by the triggering subframe.
func migrationEvents(d *Dossier) []trace.Event {
	bs, sf := d.TriggerEvent.BS, d.TriggerEvent.Subframe
	var out []trace.Event
	for _, e := range d.Window {
		if e.BS != bs || e.Subframe != sf {
			continue
		}
		switch e.Event {
		case trace.EvMigPlan, trace.EvMigComplete, trace.EvMigPreempt,
			trace.EvMigConsume, trace.EvMigWait, trace.EvMigRecompute, trace.EvMigAbandon:
			out = append(out, e)
		}
	}
	return out
}
