// Package flight is the deadline-miss flight recorder: an always-on,
// allocation-bounded tap on the run-level trace.Tracer stream that, when a
// trigger event fires (deadline miss, drop, overrun, receiver-arena
// failure), freezes a bounded pre/post-trigger window of events — plus the
// scheduler state, per-core utilization fractions, Go-runtime GC/heap
// readings and an optional live registry snapshot — into a self-contained
// **miss dossier**, written as versioned JSON to a capped on-disk spool.
//
// The design splits into a process-wide Recorder (shared spool, rate
// limiter, sequence counter, HTTP/SSE surface) and per-run Taps (per-core
// event rings plus trigger classification). A Tap implements trace.Tracer,
// so arming a run is just teeing the tap into the run's existing event
// stream; a run without a tap pays nothing — the same nil-check contract
// every emit site already honors.
//
// See README.md in this directory for the dossier schema and the
// versioning/compatibility rules.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rtopex/internal/obs"
	"rtopex/internal/trace"
)

// DossierVersion is the dossier schema version. Readers accept exactly the
// versions they know; see README.md for the compatibility rules (mirroring
// the obs wire codec: unknown versions are a hard error, never a guess).
const DossierVersion = 1

// Trigger classifies what froze the window.
type Trigger string

// Trigger kinds, derived from the event stream itself: a late finish is a
// deadline miss; a drop whose detail names a pipeline phase is a slack-check
// drop; "queue-full" means the previous subframe overran its whole window;
// "rx-unavailable" (and the pipelined variant) is a receiver-arena failure.
const (
	TriggerDeadlineMiss Trigger = "deadline-miss"
	TriggerDrop         Trigger = "drop"
	TriggerOverrun      Trigger = "overrun"
	TriggerArenaFailure Trigger = "arena-failure"
)

// Classify maps one trace event to its trigger kind. The second return is
// false for events that do not trigger dossier capture.
func Classify(e trace.Event) (Trigger, bool) {
	switch e.Event {
	case trace.EvFinish:
		if e.Detail == "late" {
			return TriggerDeadlineMiss, true
		}
	case trace.EvDrop:
		switch e.Detail {
		case "rx-unavailable", "pipeline-unavailable":
			return TriggerArenaFailure, true
		case "queue-full":
			return TriggerOverrun, true
		default:
			return TriggerDrop, true
		}
	}
	return "", false
}

// SchedState is the scheduler's own account of itself at the trigger
// instant: how deep the per-core backlogs are, whether migration batches
// were mid-flight, and how busy the discrete-event engine was. Schedulers
// opt in by implementing StateProvider; fields a provider cannot know stay
// zero.
type SchedState struct {
	// Scheduler names the scheduler (or live-run loop) that produced it.
	Scheduler string `json:"scheduler,omitempty"`
	// NowUS is the engine clock (or wall clock since epoch) in µs.
	NowUS float64 `json:"now_us,omitempty"`
	// QueueDepths is the pending-job backlog per core.
	QueueDepths []int `json:"queue_depths,omitempty"`
	// RunningJobs counts cores mid-subframe.
	RunningJobs int `json:"running_jobs,omitempty"`
	// InFlightBatches counts cores hosting a migrated batch (Fig. 12
	// state 2) at the trigger.
	InFlightBatches int `json:"in_flight_batches,omitempty"`
	// PendingEngineEvents is the discrete-event engine's queue depth.
	PendingEngineEvents int `json:"pending_engine_events,omitempty"`
}

// StateProvider is the snapshot interface a scheduler implements to have
// its internal state (queue depths, in-flight migration batches) embedded
// in dossiers. Implementations are called synchronously from the emitting
// goroutine, so they may read scheduler internals without locking in the
// single-threaded simulation.
type StateProvider interface {
	FlightState() SchedState
}

// Dossier is one frozen miss: everything needed to explain a single
// deadline miss offline, with no access to the run that produced it.
//
// The trace-derived sections (window, scheduler state, core fractions) are
// deterministic for a seeded simulation run — no wall clock, hostnames or
// pointers; only the Runtime and Metrics sections read live process state.
type Dossier struct {
	// Version is the schema version (DossierVersion at write time).
	Version int `json:"flight_version"`
	// Seq numbers dossiers per recorder, in capture order.
	Seq uint64 `json:"seq"`
	// Label names the run (scheduler name, "realtime", an experiment id).
	Label string `json:"label,omitempty"`
	// Trigger classifies the capture cause.
	Trigger Trigger `json:"trigger"`
	// TriggerEvent is the event that froze the window.
	TriggerEvent trace.Event `json:"trigger_event"`

	// BudgetUS is the per-subframe processing budget (the 2 ms Rx share of
	// the 3 ms HARQ deadline; dilated for live runs). 0 when unknown.
	BudgetUS float64 `json:"budget_us,omitempty"`
	// ArrivalUS / DeadlineUS bound the triggering job's budget window,
	// when the run could resolve them exactly (simulation runs can; live
	// runs derive them from the release clock).
	ArrivalUS  float64 `json:"arrival_us,omitempty"`
	DeadlineUS float64 `json:"deadline_us,omitempty"`

	// Window holds the captured events, time-ordered: PreEvents retained
	// from the per-core rings up to and including the trigger, then
	// PostEvents observed after it.
	Window     []trace.Event `json:"window"`
	PreEvents  int           `json:"pre_events"`
	PostEvents int           `json:"post_events"`
	// RingDropped counts events the pre-trigger rings had already
	// overwritten: the window is the tail of the run when nonzero.
	RingDropped int64 `json:"ring_dropped,omitempty"`

	// Cores is the per-core busy/migration/idle accounting at the trigger
	// instant, from the obs accountant replaying the same stream.
	Cores []obs.CoreReport `json:"cores,omitempty"`
	// Sched is the scheduler's state snapshot at the trigger.
	Sched *SchedState `json:"sched,omitempty"`
	// Runtime is the Go-runtime reading (GC pauses, heap) at the trigger —
	// the jitter source the paper's pinned-pthread testbed does not have.
	Runtime *obs.RuntimeSnapshot `json:"runtime,omitempty"`
	// Metrics is the live registry snapshot at the trigger, when the
	// recorder was given one.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Subframe labels the triggering job as "bs:sf".
func (d *Dossier) Subframe() string {
	return fmt.Sprintf("%d:%d", d.TriggerEvent.BS, d.TriggerEvent.Subframe)
}

// WriteJSON serializes the dossier as one JSON document. Identical dossiers
// produce byte-identical documents.
func (d *Dossier) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(d)
}

// ReadDossier parses and version-gates one dossier document. Unknown
// versions are a hard error: a dossier is forensic evidence, and a reader
// guessing at fields it does not understand would fabricate conclusions.
func ReadDossier(r io.Reader) (*Dossier, error) {
	var d Dossier
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("flight: bad dossier: %v", err)
	}
	if d.Version != DossierVersion {
		return nil, fmt.Errorf("flight: unsupported flight_version %d (supported: %d)", d.Version, DossierVersion)
	}
	return &d, nil
}

// ReadDossierFile reads one spooled dossier.
func ReadDossierFile(path string) (*Dossier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDossier(f)
}

// Summary is the compact listing/streaming form of a dossier (the /dossiers
// index and the SSE /events payload).
type Summary struct {
	Seq      uint64  `json:"seq"`
	Label    string  `json:"label,omitempty"`
	Trigger  Trigger `json:"trigger"`
	TimeUS   float64 `json:"t_us"`
	Core     int     `json:"core"`
	BS       int     `json:"bs"`
	Subframe int     `json:"sf"`
	Events   int     `json:"events"`
	Path     string  `json:"path,omitempty"`
}

// Summarize extracts a dossier's summary. path may be empty (unspooled).
func (d *Dossier) Summarize(path string) Summary {
	return Summary{
		Seq:      d.Seq,
		Label:    d.Label,
		Trigger:  d.Trigger,
		TimeUS:   d.TriggerEvent.Time,
		Core:     d.TriggerEvent.Core,
		BS:       d.TriggerEvent.BS,
		Subframe: d.TriggerEvent.Subframe,
		Events:   len(d.Window),
		Path:     path,
	}
}
