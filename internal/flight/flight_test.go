package flight_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rtopex/internal/flight"
	"rtopex/internal/obs"
	"rtopex/internal/trace"
)

func ev(t float64, core, bs, sf int, kind trace.Kind, detail string) trace.Event {
	return trace.Event{Time: t, Core: core, BS: bs, Subframe: sf, Event: kind, Detail: detail}
}

func miss(t float64, core, bs, sf int) trace.Event {
	return ev(t, core, bs, sf, trace.EvFinish, "late")
}

func TestClassify(t *testing.T) {
	cases := []struct {
		e    trace.Event
		want flight.Trigger
		ok   bool
	}{
		{ev(1, 0, 0, 0, trace.EvFinish, "late"), flight.TriggerDeadlineMiss, true},
		{ev(1, 0, 0, 0, trace.EvFinish, "ack"), "", false},
		{ev(1, 0, 0, 0, trace.EvFinish, "decodefail"), "", false},
		{ev(1, 0, 0, 0, trace.EvDrop, "rx-unavailable"), flight.TriggerArenaFailure, true},
		{ev(1, 0, 0, 0, trace.EvDrop, "pipeline-unavailable"), flight.TriggerArenaFailure, true},
		{ev(1, 0, 0, 0, trace.EvDrop, "queue-full"), flight.TriggerOverrun, true},
		{ev(1, 0, 0, 0, trace.EvDrop, "slack"), flight.TriggerDrop, true},
		{ev(1, 0, 0, 0, trace.EvStart, ""), "", false},
		{ev(1, 0, 0, 0, trace.EvArrive, ""), "", false},
	}
	for _, c := range cases {
		got, ok := flight.Classify(c.e)
		if got != c.want || ok != c.ok {
			t.Errorf("Classify(%v/%s) = %q,%v; want %q,%v", c.e.Event, c.e.Detail, got, ok, c.want, c.ok)
		}
	}
}

// TestStormRateLimiting drives a burst of triggers far beyond the rate
// budget under an injected clock: the recorder must capture only the token
// budget, count everything else as suppressed, and never lose the
// triggers-observed total.
func TestStormRateLimiting(t *testing.T) {
	now := time.Unix(0, 0)
	rec := flight.New(flight.Config{
		PreEvents:  8,
		PostEvents: -1, // commit at the trigger: clean per-trigger accounting
		MaxPerSec:  2,
		Now:        func() time.Time { return now },
	})
	tap := rec.NewTap(flight.TapConfig{Label: "storm"})
	const storm = 20
	for i := 0; i < storm; i++ {
		tap.Emit(miss(float64(i), 0, 0, i))
	}
	tap.Close()
	rec.Close()
	if got := rec.Triggers(); got != storm {
		t.Fatalf("Triggers = %d, want %d", got, storm)
	}
	// burst(2) = 2 tokens, frozen clock: exactly two dossiers admitted.
	if got := rec.Written(); got != 2 {
		t.Fatalf("Written = %d, want 2 (token burst)", got)
	}
	if got := rec.Suppressed(); got != storm-2 {
		t.Fatalf("Suppressed = %d, want %d", got, storm-2)
	}
	if w, s := rec.Written(), rec.Suppressed(); w+s != storm {
		t.Fatalf("written(%d)+suppressed(%d) != triggers(%d)", w, s, storm)
	}
}

// TestRateLimitRefill checks the token bucket refills with the injected
// clock: after a dry burst, advancing time admits captures again.
func TestRateLimitRefill(t *testing.T) {
	now := time.Unix(0, 0)
	rec := flight.New(flight.Config{
		PostEvents: -1,
		MaxPerSec:  1,
		Now:        func() time.Time { return now },
	})
	tap := rec.NewTap(flight.TapConfig{})
	tap.Emit(miss(1, 0, 0, 0)) // takes the single token
	tap.Emit(miss(2, 0, 0, 1)) // suppressed
	now = now.Add(2 * time.Second)
	tap.Emit(miss(3, 0, 0, 2)) // refilled
	tap.Close()
	rec.Close()
	if got := rec.Written(); got != 2 {
		t.Fatalf("Written = %d, want 2 (one per refill)", got)
	}
	if got := rec.Suppressed(); got != 1 {
		t.Fatalf("Suppressed = %d, want 1", got)
	}
}

// TestLifetimeCap: MaxDossiers bounds captures over the recorder's life
// even with rate limiting disabled.
func TestLifetimeCap(t *testing.T) {
	rec := flight.New(flight.Config{PostEvents: -1, MaxPerSec: -1, MaxDossiers: 3})
	tap := rec.NewTap(flight.TapConfig{})
	for i := 0; i < 10; i++ {
		tap.Emit(miss(float64(i), 0, 0, i))
	}
	tap.Close()
	rec.Close()
	if got := rec.Written(); got != 3 {
		t.Fatalf("Written = %d, want 3 (lifetime cap)", got)
	}
	if got := rec.Suppressed(); got != 7 {
		t.Fatalf("Suppressed = %d, want 7", got)
	}
}

// TestRingWraparound: a long quiet stretch before the trigger must leave
// only the freshest PreEvents per core in the window, with the overwritten
// prefix counted in RingDropped.
func TestRingWraparound(t *testing.T) {
	rec := flight.New(flight.Config{PreEvents: 4, PostEvents: -1, MaxPerSec: -1})
	tap := rec.NewTap(flight.TapConfig{Label: "wrap"})
	const quiet = 100
	for i := 0; i < quiet; i++ {
		tap.Emit(ev(float64(i), 0, 0, 0, trace.EvPhase, "fft"))
	}
	tap.Emit(miss(float64(quiet), 0, 0, 0))
	tap.Close()
	rec.Close()
	d, ok := rec.Dossier(1)
	if !ok {
		t.Fatal("dossier 1 not retained")
	}
	if len(d.Window) != 4 {
		t.Fatalf("window has %d events, want 4 (ring capacity)", len(d.Window))
	}
	// The freshest events survive — the trigger itself is the newest.
	last := d.Window[len(d.Window)-1]
	if last.Event != trace.EvFinish || last.Detail != "late" {
		t.Fatalf("window tail is %v/%s, want the trigger", last.Event, last.Detail)
	}
	if d.RingDropped != quiet+1-4 {
		t.Fatalf("RingDropped = %d, want %d", d.RingDropped, quiet+1-4)
	}
}

// TestPostTriggerWindow: with PostEvents set, the dossier stays pending
// until the post-trigger tail arrives, and a tap closed mid-window still
// flushes the partial dossier.
func TestPostTriggerWindow(t *testing.T) {
	rec := flight.New(flight.Config{PreEvents: 8, PostEvents: 2, MaxPerSec: -1})
	tap := rec.NewTap(flight.TapConfig{})
	tap.Emit(ev(1, 0, 0, 0, trace.EvStart, ""))
	tap.Emit(miss(2, 0, 0, 0))
	tap.Emit(ev(3, 1, 0, 1, trace.EvStart, ""))
	tap.Emit(ev(4, 1, 0, 1, trace.EvPhase, "fft"))
	tap.Emit(ev(5, 1, 0, 1, trace.EvPhase, "demod")) // beyond the window
	tap.Close()
	rec.Close()
	d, ok := rec.Dossier(1)
	if !ok {
		t.Fatal("dossier not committed after post window filled")
	}
	if d.PreEvents != 2 || d.PostEvents != 2 {
		t.Fatalf("pre/post = %d/%d, want 2/2", d.PreEvents, d.PostEvents)
	}
	if len(d.Window) != 4 {
		t.Fatalf("window has %d events, want 4", len(d.Window))
	}

	// Partial flush on Close.
	rec2 := flight.New(flight.Config{PostEvents: 8, MaxPerSec: -1})
	tap2 := rec2.NewTap(flight.TapConfig{})
	tap2.Emit(miss(1, 0, 0, 0))
	tap2.Emit(ev(2, 0, 0, 1, trace.EvStart, ""))
	tap2.Close() // window still open: must flush
	rec2.Close()
	d2, ok := rec2.Dossier(1)
	if !ok {
		t.Fatal("partial dossier lost on Close")
	}
	if d2.PostEvents != 1 {
		t.Fatalf("partial PostEvents = %d, want 1", d2.PostEvents)
	}
}

// TestTriggerInsideWindow: a second trigger during an open post window is
// counted but opens no second capture.
func TestTriggerInsideWindow(t *testing.T) {
	rec := flight.New(flight.Config{PostEvents: 4, MaxPerSec: -1})
	tap := rec.NewTap(flight.TapConfig{})
	tap.Emit(miss(1, 0, 0, 0))
	tap.Emit(miss(2, 0, 0, 1)) // rides along in the open window
	tap.Emit(ev(3, 0, 0, 2, trace.EvStart, ""))
	tap.Emit(ev(4, 0, 0, 2, trace.EvPhase, "fft"))
	tap.Emit(ev(5, 0, 0, 2, trace.EvPhase, "demod"))
	tap.Close()
	rec.Close()
	if got := rec.Triggers(); got != 2 {
		t.Fatalf("Triggers = %d, want 2", got)
	}
	if got := rec.Written(); got != 1 {
		t.Fatalf("Written = %d, want 1 (second trigger rode along)", got)
	}
}

// TestDossierRoundTrip: WriteJSON → ReadDossier is lossless, and the
// version gate rejects documents from the future.
func TestDossierRoundTrip(t *testing.T) {
	d := &flight.Dossier{
		Version:      flight.DossierVersion,
		Seq:          7,
		Label:        "rtopex",
		Trigger:      flight.TriggerDeadlineMiss,
		TriggerEvent: miss(2650, 3, 1, 42),
		BudgetUS:     2000,
		ArrivalUS:    42000,
		DeadlineUS:   44000,
		Window: []trace.Event{
			ev(42000, -1, 1, 42, trace.EvArrive, ""),
			ev(42010, 3, 1, 42, trace.EvStart, ""),
			miss(44100, 3, 1, 42),
		},
		PreEvents:   3,
		RingDropped: 5,
		Cores:       []obs.CoreReport{{Core: 3, BusyUS: 1500, Busy: 0.75, Idle: 0.25}},
		Sched: &flight.SchedState{
			Scheduler:       "rtopex",
			NowUS:           44100,
			QueueDepths:     []int{0, 2, 1, 0},
			RunningJobs:     2,
			InFlightBatches: 1,
		},
		Runtime: &obs.RuntimeSnapshot{GCCycles: 3, Goroutines: 9},
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := flight.ReadDossier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}

	// Version gate: a future schema is a hard error, not a guess.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	raw["flight_version"] = flight.DossierVersion + 1
	future, _ := json.Marshal(raw)
	if _, err := flight.ReadDossier(bytes.NewReader(future)); err == nil {
		t.Fatal("future flight_version accepted")
	} else if !strings.Contains(err.Error(), "unsupported flight_version") {
		t.Fatalf("wrong version-gate error: %v", err)
	}
}

// TestSpoolCapsAndResume: the spool evicts oldest-first under its caps and
// rescans surviving dossiers on reopen.
func TestSpoolCapsAndResume(t *testing.T) {
	dir := t.TempDir()
	sp, err := flight.NewSpool(flight.SpoolConfig{Dir: dir, MaxDossiers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		d := &flight.Dossier{
			Version: flight.DossierVersion, Seq: uint64(i),
			Trigger: flight.TriggerDeadlineMiss, TriggerEvent: miss(float64(i), 0, 0, i),
		}
		if _, err := sp.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	if sp.Len() != 3 || sp.Evicted() != 2 {
		t.Fatalf("Len/Evicted = %d/%d, want 3/2", sp.Len(), sp.Evicted())
	}
	if _, err := os.Stat(filepath.Join(dir, "dossier-000001-deadline-miss.json")); !os.IsNotExist(err) {
		t.Fatal("oldest dossier not evicted from disk")
	}
	list := sp.List()
	if len(list) != 3 || filepath.Base(list[0]) != "dossier-000003-deadline-miss.json" {
		t.Fatalf("unexpected surviving list: %v", list)
	}

	// Reopen: the rescan must account the survivors against the caps.
	sp2, err := flight.NewSpool(flight.SpoolConfig{Dir: dir, MaxDossiers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Len() != 3 {
		t.Fatalf("resumed Len = %d, want 3", sp2.Len())
	}
	d := &flight.Dossier{Version: flight.DossierVersion, Seq: 6,
		Trigger: flight.TriggerOverrun, TriggerEvent: miss(6, 0, 0, 6)}
	if _, err := sp2.Write(d); err != nil {
		t.Fatal(err)
	}
	if sp2.Len() != 3 || sp2.Evicted() != 1 {
		t.Fatalf("post-resume Len/Evicted = %d/%d, want 3/1", sp2.Len(), sp2.Evicted())
	}
}

// TestRecorderSpoolsAndRenders is the integration spine: trigger → spool →
// read back → post-mortem render, with the stage breakdown summing to the
// subframe's completion time.
func TestRecorderSpoolsAndRenders(t *testing.T) {
	dir := t.TempDir()
	sp, err := flight.NewSpool(flight.SpoolConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.Config{PostEvents: -1, MaxPerSec: -1, Spool: sp})
	tap := rec.NewTap(flight.TapConfig{
		Label:    "rtopex",
		BudgetUS: 2000,
		Job: func(bs, sf int) (float64, float64, bool) {
			return 0, 2000, true
		},
		State: func() flight.SchedState {
			return flight.SchedState{Scheduler: "rtopex", QueueDepths: []int{1}}
		},
	})
	// EvPhase marks each stage's start; the first phase coincides with
	// EvStart, so stage durations sum exactly to start→finish.
	tap.Emit(ev(0, -1, 0, 0, trace.EvArrive, ""))
	tap.Emit(ev(10, 0, 0, 0, trace.EvStart, ""))
	tap.Emit(ev(10, 0, 0, 0, trace.EvPhase, "fft"))
	tap.Emit(ev(510, 0, 0, 0, trace.EvPhase, "demod"))
	tap.Emit(miss(2100, 0, 0, 0))
	tap.Close()
	rec.Close()
	if sp.Len() != 1 {
		t.Fatalf("spooled %d dossiers, want 1", sp.Len())
	}
	d, err := flight.ReadDossierFile(sp.List()[0])
	if err != nil {
		t.Fatal(err)
	}
	stages, start, end, ok := flight.StageBreakdown(d)
	if !ok {
		t.Fatal("no stage breakdown")
	}
	var sum float64
	for _, s := range stages {
		sum += s.DurUS
	}
	if got, want := sum, end-start; got != want {
		t.Fatalf("stage durations sum to %.1f, completion is %.1f", got, want)
	}
	var out bytes.Buffer
	if err := flight.WritePostMortem(&out, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deadline-miss", "fft", "demod", "overshot deadline"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("post-mortem missing %q:\n%s", want, out.String())
		}
	}
}
