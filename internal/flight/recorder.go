package flight

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"rtopex/internal/obs"
	"rtopex/internal/trace"
)

// Config bounds a Recorder. The zero value is usable: every field has a
// production default chosen so an armed recorder is always allocation- and
// rate-bounded no matter how pathological the run.
type Config struct {
	// PreEvents is the per-core pre-trigger ring capacity (default 128).
	PreEvents int
	// PostEvents is how many events after the trigger complete the window
	// (default 32; a tap flushes a shorter tail when its run ends first).
	PostEvents int
	// MaxPerSec rate-limits dossier capture (default 5/s; < 0 disables).
	// Triggers beyond the budget are counted as suppressed, never queued:
	// a miss storm costs one counter increment per miss, not a capture.
	MaxPerSec float64
	// MaxDossiers caps total captures over the recorder's lifetime
	// (default 256; < 0 disables).
	MaxDossiers int
	// Keep is how many recent dossiers stay in memory for /dossiers and
	// rendering (default 32).
	Keep int
	// Spool, when non-nil, persists every captured dossier.
	Spool *Spool
	// Registry, when non-nil, receives rtopex_flight_* counters and is
	// snapshotted into each dossier's Metrics section.
	Registry *obs.Registry
	// Now substitutes the rate limiter's clock (tests); nil means time.Now.
	// It is consulted only on trigger events, never on the per-event path.
	Now func() time.Time
}

func (c *Config) defaults() {
	if c.PreEvents == 0 {
		c.PreEvents = 128
	}
	if c.PostEvents == 0 {
		c.PostEvents = 32
	}
	if c.MaxPerSec == 0 {
		c.MaxPerSec = 5
	}
	if c.MaxDossiers == 0 {
		c.MaxDossiers = 256
	}
	if c.Keep == 0 {
		c.Keep = 32
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Recorder is the process-wide side of the flight recorder: the spool, the
// trigger rate limiter, the dossier sequence, the recent-dossier cache and
// the HTTP/SSE surface. Runs attach through NewTap; many concurrent taps
// (a parallel sweep's units) share one recorder safely.
type Recorder struct {
	cfg Config

	mu         sync.Mutex
	tokens     float64
	lastRefill time.Time
	seq        uint64
	admitted   int64
	triggers   int64
	suppressed int64
	lost       int64 // admitted but dropped on a full write queue
	written    int64
	recent     []recentDossier
	subs       map[chan []byte]struct{}
	closed     bool

	writeQ chan *Dossier
	done   chan struct{}
	wg     sync.WaitGroup
}

type recentDossier struct {
	d    *Dossier
	path string
	// capturedAt is the writer's wall clock (cfg.Now) when the dossier
	// landed — dossiers themselves carry only sim time, and the SLO
	// engine's alert windows live in wall time.
	capturedAt time.Time
}

// New creates a recorder and starts its background writer. Close it after
// every tap is closed.
func New(cfg Config) *Recorder {
	cfg.defaults()
	r := &Recorder{
		cfg:        cfg,
		tokens:     burst(cfg.MaxPerSec),
		lastRefill: cfg.Now(),
		subs:       map[chan []byte]struct{}{},
		writeQ:     make(chan *Dossier, 64),
		done:       make(chan struct{}),
	}
	r.wg.Add(1)
	go r.writer()
	return r
}

func burst(perSec float64) float64 {
	if perSec <= 0 {
		return 1
	}
	b := perSec
	if b < 1 {
		b = 1
	}
	return b
}

// writer drains captured dossiers to the spool and fans summaries out to
// SSE subscribers, off the emitting goroutines.
func (r *Recorder) writer() {
	defer r.wg.Done()
	for d := range r.writeQ {
		path := ""
		if r.cfg.Spool != nil {
			if p, err := r.cfg.Spool.Write(d); err == nil {
				path = p
			}
		}
		sum, _ := json.Marshal(d.Summarize(path))
		r.mu.Lock()
		r.written++
		r.recent = append(r.recent, recentDossier{d: d, path: path, capturedAt: r.cfg.Now()})
		if over := len(r.recent) - r.cfg.Keep; over > 0 {
			r.recent = append(r.recent[:0], r.recent[over:]...)
		}
		if r.cfg.Registry != nil {
			r.cfg.Registry.Counter("rtopex_flight_dossiers_total").Inc()
		}
		for ch := range r.subs {
			select {
			case ch <- sum:
			default: // slow subscriber: drop, never block capture
			}
		}
		r.mu.Unlock()
	}
}

// Close flushes the write queue and stops the writer. Close every tap
// first; triggers after Close are counted as suppressed.
func (r *Recorder) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.writeQ)
	r.wg.Wait()
	close(r.done)
}

// noteTrigger counts one trigger event (captured or not).
func (r *Recorder) noteTrigger(trig Trigger) {
	r.mu.Lock()
	r.triggers++
	reg := r.cfg.Registry
	r.mu.Unlock()
	if reg != nil {
		reg.Counter("rtopex_flight_triggers_total", obs.L("trigger", string(trig))).Inc()
	}
}

// admit decides whether one trigger may capture a dossier, charging the
// rate limiter and the lifetime cap. Denied triggers count as suppressed.
func (r *Recorder) admit(trig Trigger) bool {
	r.mu.Lock()
	r.triggers++
	reg := r.cfg.Registry
	ok := !r.closed &&
		(r.cfg.MaxDossiers < 0 || r.admitted < int64(r.cfg.MaxDossiers)) &&
		r.takeToken()
	if ok {
		r.admitted++
	} else {
		r.suppressed++
	}
	r.mu.Unlock()
	if reg != nil {
		reg.Counter("rtopex_flight_triggers_total", obs.L("trigger", string(trig))).Inc()
		if !ok {
			reg.Counter("rtopex_flight_suppressed_total").Inc()
		}
	}
	return ok
}

// takeToken is the MaxPerSec token bucket (caller holds r.mu).
func (r *Recorder) takeToken() bool {
	if r.cfg.MaxPerSec < 0 {
		return true
	}
	now := r.cfg.Now()
	if dt := now.Sub(r.lastRefill).Seconds(); dt > 0 {
		r.tokens += dt * r.cfg.MaxPerSec
		if b := burst(r.cfg.MaxPerSec); r.tokens > b {
			r.tokens = b
		}
	}
	r.lastRefill = now
	if r.tokens < 1 {
		return false
	}
	r.tokens--
	return true
}

func (r *Recorder) nextSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return r.seq
}

// commit hands one finalized dossier to the writer. The send never blocks:
// an admitted dossier arriving into a saturated queue is lost (counted),
// keeping the emitting hot path wait-free.
func (r *Recorder) commit(d *Dossier) {
	r.mu.Lock()
	if r.closed {
		r.lost++
		r.mu.Unlock()
		return
	}
	select {
	case r.writeQ <- d:
	default:
		r.lost++
	}
	r.mu.Unlock()
}

// Written reports dossiers fully captured (spooled when a spool is set).
func (r *Recorder) Written() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.written
}

// Triggers reports all trigger events observed.
func (r *Recorder) Triggers() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.triggers
}

// Suppressed reports triggers denied by the rate limiter, the lifetime cap
// or a closed recorder.
func (r *Recorder) Suppressed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suppressed
}

// Lost reports admitted dossiers dropped on a saturated write queue.
func (r *Recorder) Lost() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lost
}

// Recent lists the in-memory dossier summaries, oldest first.
func (r *Recorder) Recent() []Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, len(r.recent))
	for i, rd := range r.recent {
		out[i] = rd.d.Summarize(rd.path)
	}
	return out
}

// DossierRefsSince implements obs.DossierSource: recent dossiers captured
// at or after since, oldest first, as SLO alert cross-link refs. The ref
// ID is the spool path when spooled, else "seq:<n>".
func (r *Recorder) DossierRefsSince(since time.Time) []obs.DossierRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []obs.DossierRef
	for _, rd := range r.recent {
		if rd.capturedAt.Before(since) {
			continue
		}
		id := rd.path
		if id == "" {
			id = fmt.Sprintf("seq:%d", rd.d.Seq)
		}
		out = append(out, obs.DossierRef{
			ID:         id,
			Source:     "local",
			Label:      rd.d.Label,
			Trigger:    string(rd.d.Trigger),
			Seq:        rd.d.Seq,
			CapturedMS: rd.capturedAt.UnixMilli(),
		})
	}
	return out
}

// Dossier retrieves one recent dossier by sequence number.
func (r *Recorder) Dossier(seq uint64) (*Dossier, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rd := range r.recent {
		if rd.d.Seq == seq {
			return rd.d, true
		}
	}
	return nil, false
}

// subscribe registers an SSE subscriber channel.
func (r *Recorder) subscribe() (ch chan []byte, cancel func()) {
	ch = make(chan []byte, 8)
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	return ch, func() {
		r.mu.Lock()
		delete(r.subs, ch)
		r.mu.Unlock()
	}
}

// TapConfig describes one run's attachment to the recorder. Everything is
// optional except that a tap without Job/State/Reports simply produces
// dossiers with those sections empty.
type TapConfig struct {
	// Label names the run in its dossiers (scheduler name, "realtime").
	Label string
	// BudgetUS is the run's per-subframe processing budget in µs.
	BudgetUS float64
	// Job resolves a subframe's exact arrival and deadline (µs), when the
	// run knows them (the simulator's workload does; the live runner's
	// release clock does).
	Job func(bs, sf int) (arrivalUS, deadlineUS float64, ok bool)
	// State snapshots the scheduler at the trigger instant. Called
	// synchronously from the emitting goroutine.
	State func() SchedState
	// Reports supplies per-core utilization at the trigger. When nil the
	// tap feeds its own obs.CoreAccountant from the stream; a run that
	// already runs an accountant (harness.TracedRunObserved) shares it
	// here instead, halving the armed per-event cost.
	Reports func(endUS float64) []obs.CoreReport
}

// Tap is one run's flight-recorder attachment: fixed per-core event rings
// plus trigger classification. It implements trace.Tracer — arm a run by
// teeing the tap into its event stream. Like the other sinks in the trace
// package (Ring, Tee, the obs accountant), a Tap is unsynchronized:
// concurrent emitters must serialize it externally (trace.Locked), which
// every in-repo attachment point already does — the discrete-event
// simulator emits from one goroutine, and the realtime layer tees the tap
// inside its Locked wrapper. Keeping the per-event path lock-free is what
// holds the armed overhead inside its budget. The Recorder behind the tap
// stays fully locked, so many taps still share one recorder safely.
type Tap struct {
	rec *Recorder
	cfg TapConfig

	rings    []*evring // indexed by core+1 (-1 holds pre-placement events)
	maxCore  int
	acct     *obs.CoreAccountant
	pending  *Dossier
	postLeft int
	closed   bool
}

// NewTap attaches one run to the recorder.
func (r *Recorder) NewTap(cfg TapConfig) *Tap {
	t := &Tap{rec: r, cfg: cfg, maxCore: -1}
	if cfg.Reports == nil {
		t.acct = obs.NewCoreAccountant()
	}
	return t
}

// Enabled implements trace.Tracer.
func (t *Tap) Enabled() bool { return true }

// Emit implements trace.Tracer: ring the event, feed the utilization
// accountant, and classify. The common (non-trigger) path is one ring
// store and one switch — lock-free, bounded, and allocation-free after the
// rings warm up; capture and post-trigger collection live in the out-of-
// line slow paths.
func (t *Tap) Emit(e trace.Event) {
	if t.closed {
		return
	}
	if t.acct != nil {
		t.acct.Emit(e)
	}
	t.ring(e.Core).push(e)
	if t.pending != nil {
		t.collectPost(e)
		return
	}
	if trig, ok := Classify(e); ok {
		t.trigger(e, trig)
	}
}

// collectPost appends one event to the open post-trigger window and commits
// the dossier once the window is full.
func (t *Tap) collectPost(e trace.Event) {
	t.pending.Window = append(t.pending.Window, e)
	t.pending.PostEvents++
	t.postLeft--
	if trig, ok := Classify(e); ok {
		// A trigger inside an open window rides along in the dossier
		// being collected; it is counted but opens no second capture.
		t.rec.noteTrigger(trig)
	}
	if t.postLeft <= 0 {
		d := t.pending
		t.pending = nil
		t.rec.commit(d)
	}
}

// trigger runs one classified trigger through the recorder's admission
// control and, when admitted, freezes the dossier.
func (t *Tap) trigger(e trace.Event, trig Trigger) {
	if !t.rec.admit(trig) {
		return
	}
	d := t.capture(e, trig)
	if t.rec.cfg.PostEvents > 0 {
		t.pending = d
		t.postLeft = t.rec.cfg.PostEvents
		return
	}
	t.rec.commit(d)
}

// mergeRings drains every core ring into one time-ordered window. Emission
// order is nondecreasing in time, so each ring is already
// sorted and a k-way merge suffices — a general sort here (reflect-based
// swaps over a thousand-event window) would dominate the capture cost.
// Ties keep lower-indexed rings first, matching a stable sort over the
// concatenation.
func (t *Tap) mergeRings() (window []trace.Event, ringDropped int64) {
	total := 0
	for _, r := range t.rings {
		if r == nil {
			continue
		}
		total += r.n
		ringDropped += r.dropped
	}
	if total == 0 {
		return nil, ringDropped
	}
	window = make([]trace.Event, 0, total)
	// next[i] counts how many events ring i has already contributed.
	next := make([]int, len(t.rings))
	for len(window) < total {
		best, bestIdx := -1, 0
		var bestTime float64
		for i, r := range t.rings {
			if r == nil || next[i] >= r.n {
				continue
			}
			idx := r.head + next[i]
			if idx >= len(r.buf) {
				idx -= len(r.buf)
			}
			if best < 0 || r.buf[idx].Time < bestTime {
				best, bestIdx, bestTime = i, idx, r.buf[idx].Time
			}
		}
		window = append(window, t.rings[best].buf[bestIdx])
		next[best]++
	}
	return window, ringDropped
}

// ring returns (allocating on first use) the ring of one core. maxCore
// tracking lives here, on the allocation branch, so the per-event path is
// just the bounds check.
func (t *Tap) ring(core int) *evring {
	idx := core + 1
	for idx >= len(t.rings) {
		t.rings = append(t.rings, nil)
	}
	if t.rings[idx] == nil {
		t.rings[idx] = newEvring(t.rec.cfg.PreEvents)
		if core > t.maxCore {
			t.maxCore = core
		}
	}
	return t.rings[idx]
}

// capture freezes the pre-trigger state into a new dossier.
func (t *Tap) capture(e trace.Event, trig Trigger) *Dossier {
	window, ringDropped := t.mergeRings()
	d := &Dossier{
		Version:      DossierVersion,
		Seq:          t.rec.nextSeq(),
		Label:        t.cfg.Label,
		Trigger:      trig,
		TriggerEvent: e,
		BudgetUS:     t.cfg.BudgetUS,
		Window:       window,
		PreEvents:    len(window),
		RingDropped:  ringDropped,
	}
	if t.cfg.Job != nil {
		if arr, dl, ok := t.cfg.Job(e.BS, e.Subframe); ok {
			d.ArrivalUS, d.DeadlineUS = arr, dl
		}
	}
	if t.cfg.Reports != nil {
		d.Cores = t.cfg.Reports(e.Time)
	} else if t.acct != nil {
		d.Cores = t.acct.Reports(t.maxCore+1, e.Time)
	}
	if t.cfg.State != nil {
		st := t.cfg.State()
		d.Sched = &st
	}
	rt := obs.CaptureRuntime()
	d.Runtime = &rt
	if t.rec.cfg.Registry != nil {
		d.Metrics = t.rec.cfg.Registry.Snapshot()
	}
	return d
}

// Close flushes a partially collected window (a miss at the very end of a
// run still produces a dossier) and detaches the tap. Close from the same
// serialization domain as Emit — after the run's emitters have stopped.
func (t *Tap) Close() {
	if t.closed {
		return
	}
	t.closed = true
	d := t.pending
	t.pending = nil
	if d != nil {
		t.rec.commit(d)
	}
}

var _ trace.Tracer = (*Tap)(nil)

// evring is a fixed-capacity event ring (the Tap-internal analog of
// trace.Ring, sized once and reused so the armed hot path stays
// allocation-free).
type evring struct {
	buf     []trace.Event
	head, n int
	dropped int64
}

func newEvring(capacity int) *evring {
	if capacity < 1 {
		capacity = 1
	}
	return &evring{buf: make([]trace.Event, capacity)}
}

func (r *evring) push(e trace.Event) {
	if r.n < len(r.buf) {
		// head is 0 until the ring first fills, so the write index never
		// needs more than one wrap. Conditional wrap, not %: push is on the
		// armed per-event hot path.
		i := r.head + r.n
		if i >= len(r.buf) {
			i -= len(r.buf)
		}
		r.buf[i] = e
		r.n++
		return
	}
	r.buf[r.head] = e
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.dropped++
}

// appendTo appends the retained events, oldest first.
func (r *evring) appendTo(dst []trace.Event) []trace.Event {
	i := r.head
	for k := 0; k < r.n; k++ {
		dst = append(dst, r.buf[i])
		if i++; i == len(r.buf) {
			i = 0
		}
	}
	return dst
}
