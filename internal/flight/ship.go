package flight

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rtopex/internal/obs"
)

// ShipperConfig configures dossier shipping from a worker's spool to a
// fleet daemon's dossier store.
type ShipperConfig struct {
	// Addr is the daemon's address ("host:port" or "http://host:port");
	// the shipper POSTs to obs.DossierPushPath on it.
	Addr string
	// Source identifies this worker (the X-Rtopex-Dossier-Source header).
	Source string
	// AuthToken, when non-empty, is sent as a bearer Authorization header.
	AuthToken string
	// Timeout bounds one HTTP attempt (default 5s).
	Timeout time.Duration
	// Retry is the per-dossier retry schedule (zero value: 3 attempts).
	Retry obs.RetryPolicy
	// Client substitutes the HTTP client (tests).
	Client *http.Client
	// Logf, when non-nil, receives ship warnings.
	Logf func(format string, args ...any)
}

// Shipper pushes spooled dossiers to a fleet daemon over the existing
// authed push plane. It remembers what it has shipped, so periodic
// ShipNew calls send each dossier once; a dossier the daemon rejects
// permanently (4xx) is marked shipped and never resent.
type Shipper struct {
	cfg    ShipperConfig
	url    string
	client *http.Client

	mu      sync.Mutex
	shipped map[string]struct{} // spool file base names
	sent    int64
	failed  int64
}

// NewShipper builds a shipper for the daemon at cfg.Addr.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("flight: shipper needs a daemon address")
	}
	base := cfg.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Retry.Attempts < 1 {
		cfg.Retry.Attempts = 3
	}
	if cfg.Retry.Logf == nil {
		cfg.Retry.Logf = cfg.Logf
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	return &Shipper{
		cfg:     cfg,
		url:     base + obs.DossierPushPath,
		client:  client,
		shipped: map[string]struct{}{},
	}, nil
}

// ShipNew ships every not-yet-shipped dossier in the spool, oldest first,
// and returns how many were sent. A transport failure leaves the dossier
// unshipped for the next call; a permanent rejection consumes it.
func (s *Shipper) ShipNew(spool *Spool) (int, error) {
	if s == nil || spool == nil {
		return 0, nil
	}
	var firstErr error
	sent := 0
	for _, path := range spool.List() {
		name := filepath.Base(path)
		s.mu.Lock()
		_, done := s.shipped[name]
		s.mu.Unlock()
		if done {
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			// Evicted between List and read: gone for good.
			if os.IsNotExist(err) {
				s.mark(name)
			}
			continue
		}
		// RetryPolicy.Do returns permanent errors unwrapped, so record
		// permanence where the attempt still carries the marker.
		permanent := false
		err = s.cfg.Retry.Do(fmt.Sprintf("flight: ship %s to %s", name, s.url), func() error {
			err := s.attempt(raw)
			if obs.IsPermanent(err) {
				permanent = true
			}
			return err
		})
		switch {
		case err == nil:
			s.mark(name)
			sent++
			s.mu.Lock()
			s.sent++
			s.mu.Unlock()
		case permanent:
			// The daemon rejected the document; resending cannot help.
			s.mark(name)
			s.noteFail(name, err)
		default:
			s.noteFail(name, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return sent, firstErr
}

func (s *Shipper) mark(name string) {
	s.mu.Lock()
	s.shipped[name] = struct{}{}
	s.mu.Unlock()
}

func (s *Shipper) noteFail(name string, err error) {
	s.mu.Lock()
	s.failed++
	s.mu.Unlock()
	if s.cfg.Logf != nil {
		s.cfg.Logf("flight: ship %s: %v", name, err)
	}
}

// Sent reports dossiers successfully shipped.
func (s *Shipper) Sent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

func (s *Shipper) attempt(raw []byte) error {
	req, err := http.NewRequest(http.MethodPost, s.url, bytes.NewReader(raw))
	if err != nil {
		return obs.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if s.cfg.Source != "" {
		req.Header.Set(obs.DossierSourceHeader, s.cfg.Source)
	}
	obs.AuthHeader(req, s.cfg.AuthToken)
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return obs.Permanent(err)
		}
		return err
	}
	return nil
}

// StartPeriodic ships new dossiers every interval until the returned stop
// func is called; stop performs one final ship.
func (s *Shipper) StartPeriodic(spool *Spool, interval time.Duration) (stop func()) {
	if s == nil || spool == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_, _ = s.ShipNew(spool)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			_, _ = s.ShipNew(spool)
		})
	}
}
