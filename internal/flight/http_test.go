package flight_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rtopex/internal/flight"
	"rtopex/internal/obs"
)

func routesMux(rec *flight.Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	for _, rt := range rec.Routes() {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}

func TestDossierRoutes(t *testing.T) {
	sp, err := flight.NewSpool(flight.SpoolConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.Config{PostEvents: -1, MaxPerSec: -1, Spool: sp})
	tap := rec.NewTap(flight.TapConfig{Label: "http"})
	tap.Emit(miss(100, 0, 0, 7))
	tap.Close()
	rec.Close()

	srv := httptest.NewServer(routesMux(rec))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/dossiers")
	if err != nil {
		t.Fatal(err)
	}
	var idx flight.Index
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if idx.Written != 1 || idx.Triggers != 1 || len(idx.Dossiers) != 1 || idx.Spooled != 1 {
		t.Fatalf("unexpected index: %+v", idx)
	}
	if idx.Dossiers[0].Subframe != 7 {
		t.Fatalf("summary subframe = %d, want 7", idx.Dossiers[0].Subframe)
	}

	resp, err = http.Get(srv.URL + "/dossiers/1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := flight.ReadDossier(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 1 || d.Trigger != flight.TriggerDeadlineMiss {
		t.Fatalf("unexpected dossier: %+v", d)
	}

	resp, err = http.Get(srv.URL + "/dossiers/99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing dossier: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestEventStream: an SSE subscriber receives each captured dossier's
// summary as one "dossier" event.
func TestEventStream(t *testing.T) {
	rec := flight.New(flight.Config{PostEvents: -1, MaxPerSec: -1})
	srv := httptest.NewServer(routesMux(rec))
	defer srv.Close()
	defer rec.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	// The initial comment confirms the subscription is live before we
	// trigger, so the fanout cannot race the subscribe.
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ":") {
		t.Fatalf("no SSE preamble (got %q)", sc.Text())
	}

	tap := rec.NewTap(flight.TapConfig{Label: "sse"})
	tap.Emit(miss(42, 1, 0, 3))
	tap.Close()

	var data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if data == "" {
		t.Fatalf("no dossier event on the stream (scan err: %v)", sc.Err())
	}
	var sum flight.Summary
	if err := json.Unmarshal([]byte(data), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Seq != 1 || sum.Core != 1 || sum.Subframe != 3 {
		t.Fatalf("unexpected summary: %+v", sum)
	}
}

// TestShipper: spooled dossiers reach a daemon's DossierStore once each,
// through the bearer-authed push path; permanent rejections are consumed,
// not retried forever.
func TestShipper(t *testing.T) {
	sp, err := flight.NewSpool(flight.SpoolConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.Config{PostEvents: -1, MaxPerSec: -1, Spool: sp})
	tap := rec.NewTap(flight.TapConfig{Label: "ship"})
	tap.Emit(miss(1, 0, 0, 0))
	tap.Emit(miss(2, 0, 1, 1))
	tap.Close()
	rec.Close()
	if sp.Len() != 2 {
		t.Fatalf("spooled %d, want 2", sp.Len())
	}

	store := obs.NewDossierStore(obs.DossierStoreConfig{})
	srv := httptest.NewServer(obs.BearerAuth("sekrit", store.Handler()))
	defer srv.Close()

	ship, err := flight.NewShipper(flight.ShipperConfig{
		Addr:      srv.URL,
		Source:    "worker-1",
		AuthToken: "sekrit",
		Retry:     obs.RetryPolicy{Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sent, err := ship.ShipNew(sp)
	if err != nil || sent != 2 {
		t.Fatalf("ShipNew = %d,%v; want 2,nil", sent, err)
	}
	if store.Len() != 2 {
		t.Fatalf("store has %d dossiers, want 2", store.Len())
	}
	metas := store.List()
	if metas[0].Source != "worker-1" || metas[0].Trigger != "deadline-miss" {
		t.Fatalf("unexpected meta: %+v", metas[0])
	}
	// Idempotence: nothing new, nothing resent.
	if sent, err := ship.ShipNew(sp); err != nil || sent != 0 {
		t.Fatalf("second ShipNew = %d,%v; want 0,nil", sent, err)
	}
	if ship.Sent() != 2 {
		t.Fatalf("Sent = %d, want 2", ship.Sent())
	}

	// A wrong token is a 4xx: permanent, consumed after one round.
	var rejects int
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rejects++
		http.Error(w, "no", http.StatusForbidden)
	}))
	defer rejecting.Close()
	ship2, err := flight.NewShipper(flight.ShipperConfig{Addr: rejecting.URL, Retry: obs.RetryPolicy{Attempts: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if sent, _ := ship2.ShipNew(sp); sent != 0 {
		t.Fatalf("rejected ship sent %d, want 0", sent)
	}
	if rejects != 2 {
		t.Fatalf("server saw %d requests, want 2 (one per dossier, no retry on 4xx)", rejects)
	}
	if sent, _ := ship2.ShipNew(sp); sent != 0 || rejects != 2 {
		t.Fatalf("permanently rejected dossiers were resent (requests %d)", rejects)
	}
}

// TestShipperTransient: a transient failure leaves the dossier unshipped
// for the next call, which then succeeds.
func TestShipperTransient(t *testing.T) {
	sp, err := flight.NewSpool(flight.SpoolConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.Config{PostEvents: -1, MaxPerSec: -1, Spool: sp})
	tap := rec.NewTap(flight.TapConfig{})
	tap.Emit(miss(1, 0, 0, 0))
	tap.Close()
	rec.Close()

	store := obs.NewDossierStore(obs.DossierStoreConfig{})
	fail := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		store.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()
	ship, err := flight.NewShipper(flight.ShipperConfig{
		Addr:  srv.URL,
		Retry: obs.RetryPolicy{Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sent, err := ship.ShipNew(sp); sent != 0 || err == nil {
		t.Fatalf("ShipNew under 503 = %d,%v; want 0,error", sent, err)
	}
	fail = false
	if sent, err := ship.ShipNew(sp); sent != 1 || err != nil {
		t.Fatalf("retry ShipNew = %d,%v; want 1,nil", sent, err)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d, want 1", store.Len())
	}
}
