package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The SLO engine: declarative objectives over counter ratios stored in a
// TSDB, evaluated with multi-window burn-rate rules (the Google SRE
// workbook's fast+slow pattern), driving a pending → firing → resolved
// alert state machine. Firing alerts cross-link the flight dossiers
// captured inside the alert window, turning "the SLO is burning" into
// "here are the dossiers explaining why".
//
// Everything is deterministic under an injected clock: Evaluate(now) reads
// only the TSDB (itself fed by explicit-time Observe calls) and the
// dossier source, so a seeded run replays identical alert transitions.

// SLOVersion versions the alert/objective JSON schema. Consumers must
// ignore unknown fields; a breaking change (renamed field, changed state
// set) bumps this and is called out in internal/obs/README.md.
const SLOVersion = 1

// Objective is one declarative service-level objective: the ratio of two
// counter sums must stay at or below Target over Window. The error budget
// is derived, not declared: budget = Target × (denominator increase over
// Window).
type Objective struct {
	// Name identifies the objective in /api/slo and alert payloads.
	Name string `json:"name"`
	// Numerator is the set of counter series IDs summed into the error
	// count (e.g. missed + dropped).
	Numerator []string `json:"numerator"`
	// Denominator is the set of counter series IDs summed into the total.
	Denominator []string `json:"denominator"`
	// Target is the maximum acceptable error ratio (0.001 = 0.1%).
	Target float64 `json:"target"`
	// Window is the SLO compliance window (the budget's horizon).
	Window time.Duration `json:"-"`
	// FastWindow is the short burn-rate window (default Window/12, the
	// SRE-workbook ratio: 5m fast for a 1h slow).
	FastWindow time.Duration `json:"-"`
	// SlowWindow is the long burn-rate window (default Window).
	SlowWindow time.Duration `json:"-"`
	// BurnThreshold is the burn-rate multiple both windows must exceed to
	// trip the alert (default 1: burning budget faster than allotted).
	BurnThreshold float64 `json:"burn_threshold"`
	// Pending is how long both windows must stay above threshold before
	// the alert fires (default 0: fire on the first evaluation).
	Pending time.Duration `json:"-"`
	// MaxDossierLinks caps the dossiers cross-linked onto one alert
	// (default 8; newest kept).
	MaxDossierLinks int `json:"-"`
}

func (o *Objective) defaults() {
	if o.SlowWindow <= 0 {
		o.SlowWindow = o.Window
	}
	if o.FastWindow <= 0 {
		o.FastWindow = o.Window / 12
	}
	if o.FastWindow <= 0 {
		o.FastWindow = time.Minute
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 1
	}
	if o.MaxDossierLinks <= 0 {
		o.MaxDossierLinks = 8
	}
}

// ParseObjective parses the compact declarative form
//
//	name: numA+numB / den <= 0.1% over 1h
//
// Numerator and denominator are '+'-joined series IDs (canonical
// SeriesID form, no spaces inside an ID). The target accepts a percentage
// ("0.1%") or a plain ratio ("0.001"). Burn windows, threshold, and
// pending duration take their defaults and can be adjusted on the
// returned Objective.
func ParseObjective(spec string) (Objective, error) {
	var o Objective
	name, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return o, fmt.Errorf("obs: objective %q: missing \"name:\" prefix", spec)
	}
	o.Name = strings.TrimSpace(name)
	if o.Name == "" {
		return o, fmt.Errorf("obs: objective %q: empty name", spec)
	}
	expr, overPart, ok := strings.Cut(rest, " over ")
	if !ok {
		return o, fmt.Errorf("obs: objective %q: missing \"over <window>\"", spec)
	}
	w, err := ParseWindow(strings.TrimSpace(overPart))
	if err != nil {
		return o, fmt.Errorf("obs: objective %q: %v", spec, err)
	}
	o.Window = w
	ratio, targetPart, ok := strings.Cut(expr, "<=")
	if !ok {
		return o, fmt.Errorf("obs: objective %q: missing \"<= <target>\"", spec)
	}
	target := strings.TrimSpace(targetPart)
	if pct, isPct := strings.CutSuffix(target, "%"); isPct {
		v, err := strconv.ParseFloat(strings.TrimSpace(pct), 64)
		if err != nil {
			return o, fmt.Errorf("obs: objective %q: bad target %q", spec, target)
		}
		o.Target = v / 100
	} else {
		v, err := strconv.ParseFloat(target, 64)
		if err != nil {
			return o, fmt.Errorf("obs: objective %q: bad target %q", spec, target)
		}
		o.Target = v
	}
	if o.Target <= 0 || o.Target >= 1 {
		return o, fmt.Errorf("obs: objective %q: target must be in (0,1)", spec)
	}
	num, den, ok := strings.Cut(ratio, "/")
	if !ok {
		return o, fmt.Errorf("obs: objective %q: missing \"num / den\" ratio", spec)
	}
	o.Numerator = splitSeries(num)
	o.Denominator = splitSeries(den)
	if len(o.Numerator) == 0 || len(o.Denominator) == 0 {
		return o, fmt.Errorf("obs: objective %q: empty numerator or denominator", spec)
	}
	o.defaults()
	return o, nil
}

func splitSeries(s string) []string {
	var out []string
	for _, part := range strings.Split(s, "+") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// AlertState is the alert lifecycle position.
type AlertState string

// Alert lifecycle: Inactive → Pending (burn above threshold, waiting out
// the pending duration) → Firing → Resolved (burn subsided; the alert
// stays visible with its dossier links until the objective trips again).
const (
	AlertInactive AlertState = "inactive"
	AlertPending  AlertState = "pending"
	AlertFiring   AlertState = "firing"
	AlertResolved AlertState = "resolved"
)

// DossierRef is a cross-link from an alert to one flight dossier captured
// inside the alert window. It lives in obs (not flight) so both
// flight.Recorder (process-local spool) and DossierStore (fleet ingest)
// can produce refs without an import cycle.
type DossierRef struct {
	// ID is the dossier's identity at its source: a spool path for a
	// local recorder, a store ID for fleet ingest.
	ID string `json:"id"`
	// Source is the emitting process ("local" for an in-process recorder,
	// the pusher source name for fleet dossiers).
	Source string `json:"source,omitempty"`
	Label  string `json:"label,omitempty"`
	// Trigger is the miss classification that froze the dossier.
	Trigger string `json:"trigger,omitempty"`
	Seq     uint64 `json:"seq"`
	// CapturedMS is the wall-clock capture/ingest time (Unix ms) used to
	// decide window membership.
	CapturedMS int64 `json:"captured_ms"`
}

// DossierSource lists dossiers captured at or after a wall-clock instant,
// newest last. flight.Recorder and DossierStore both implement it.
type DossierSource interface {
	DossierRefsSince(since time.Time) []DossierRef
}

// MultiDossierSource merges several sources (e.g. a local recorder plus a
// fleet store) into one, sorted by capture time then source.
type MultiDossierSource []DossierSource

// DossierRefsSince implements DossierSource.
func (m MultiDossierSource) DossierRefsSince(since time.Time) []DossierRef {
	var out []DossierRef
	for _, s := range m {
		out = append(out, s.DossierRefsSince(since)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CapturedMS != out[j].CapturedMS {
			return out[i].CapturedMS < out[j].CapturedMS
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Alert is the JSON surface of one objective's alert state.
type Alert struct {
	SLOVersion int        `json:"slo_version"`
	Objective  string     `json:"objective"`
	State      AlertState `json:"state"`
	// SinceMS is when the current state began (Unix ms).
	SinceMS int64 `json:"since_ms"`
	// PendingSinceMS / FiringSinceMS / ResolvedMS trace the current cycle
	// (zero when the phase was not reached).
	PendingSinceMS int64 `json:"pending_since_ms,omitempty"`
	FiringSinceMS  int64 `json:"firing_since_ms,omitempty"`
	ResolvedMS     int64 `json:"resolved_ms,omitempty"`
	// FastBurn / SlowBurn are the burn-rate multiples at the last
	// evaluation (error ratio over window ÷ target).
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// Dossiers cross-links the flight dossiers captured inside the alert
	// window (from pending-start − fast-window, while pending/firing).
	Dossiers []DossierRef `json:"dossiers,omitempty"`
	// DossierCount duplicates len(Dossiers) so shell smoke tests can grep
	// it without a JSON parser.
	DossierCount int `json:"dossier_count"`
}

// ObjectiveStatus is the JSON surface of one objective's live evaluation.
type ObjectiveStatus struct {
	SLOVersion int       `json:"slo_version"`
	Objective  Objective `json:"objective"`
	// WindowMS / FastWindowMS / SlowWindowMS export the durations in ms.
	WindowMS     int64 `json:"window_ms"`
	FastWindowMS int64 `json:"fast_window_ms"`
	SlowWindowMS int64 `json:"slow_window_ms"`
	// ErrorRatio is the ratio over the full SLO window.
	ErrorRatio float64 `json:"error_ratio"`
	// Errors / Total are the window's numerator and denominator increases.
	Errors float64 `json:"errors"`
	Total  float64 `json:"total"`
	// BudgetUsed is the fraction of the window's error budget consumed
	// (>1 means the SLO is violated over the window).
	BudgetUsed float64    `json:"budget_used"`
	FastBurn   float64    `json:"fast_burn"`
	SlowBurn   float64    `json:"slow_burn"`
	State      AlertState `json:"state"`
	// Ready reports whether the store held enough history to evaluate
	// both burn windows.
	Ready bool `json:"ready"`
}

// alertTrack is one objective's mutable alert state.
type alertTrack struct {
	state        AlertState
	sinceMS      int64
	pendingSince time.Time
	firingSince  time.Time
	resolvedAt   time.Time
	lastLinkScan time.Time
	fastBurn     float64
	slowBurn     float64
	dossiers     []DossierRef
	seen         map[string]bool // dossier ID+source dedup
}

// SLOEngine evaluates objectives against a TSDB and maintains per-objective
// alert state. Evaluate is driven by the scraper (or called directly in
// tests); all methods are safe for concurrent use.
type SLOEngine struct {
	mu       sync.Mutex
	db       *TSDB
	objs     []Objective
	tracks   map[string]*alertTrack
	dossiers DossierSource
}

// NewSLOEngine builds an engine over db with the given objectives
// (defaults applied).
func NewSLOEngine(db *TSDB, objs ...Objective) *SLOEngine {
	e := &SLOEngine{db: db, tracks: map[string]*alertTrack{}}
	for _, o := range objs {
		o.defaults()
		e.objs = append(e.objs, o)
		e.tracks[o.Name] = &alertTrack{state: AlertInactive, seen: map[string]bool{}}
	}
	return e
}

// SetDossierSource attaches the dossier source consulted when alerts enter
// or remain in the pending/firing window.
func (e *SLOEngine) SetDossierSource(s DossierSource) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dossiers = s
}

// ratioOver sums the objective's counter increases over the window.
// ok requires every denominator series to answer and the total to be
// positive; missing numerator series count as zero errors (a source that
// never missed never creates the series).
func (e *SLOEngine) ratioOver(o *Objective, w time.Duration) (ratio, errs, total float64, ok bool) {
	for _, id := range o.Denominator {
		d, _, dok := e.db.Increase(id, w)
		if !dok {
			return 0, 0, 0, false
		}
		total += d
	}
	if total <= 0 {
		return 0, 0, 0, false
	}
	for _, id := range o.Numerator {
		d, _, nok := e.db.Increase(id, w)
		if nok {
			errs += d
		}
	}
	return errs / total, errs, total, true
}

// Evaluate advances every objective's alert state machine to now.
func (e *SLOEngine) Evaluate(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.objs {
		e.evaluate(&e.objs[i], now)
	}
}

func (e *SLOEngine) evaluate(o *Objective, now time.Time) {
	t := e.tracks[o.Name]
	fastRatio, _, _, fastOK := e.ratioOver(o, o.FastWindow)
	slowRatio, _, _, slowOK := e.ratioOver(o, o.SlowWindow)
	t.fastBurn, t.slowBurn = 0, 0
	if fastOK {
		t.fastBurn = fastRatio / o.Target
	}
	if slowOK {
		t.slowBurn = slowRatio / o.Target
	}
	burning := fastOK && slowOK &&
		t.fastBurn >= o.BurnThreshold && t.slowBurn >= o.BurnThreshold

	transition := func(s AlertState) {
		t.state = s
		t.sinceMS = now.UnixMilli()
	}
	switch t.state {
	case AlertInactive, AlertResolved:
		if burning {
			// New alert cycle: reset the dossier links and start the link
			// window one fast-window early, so the misses that *caused*
			// the burn are captured, not just those after detection.
			t.pendingSince = now
			t.firingSince = time.Time{}
			t.resolvedAt = time.Time{}
			t.dossiers = nil
			t.seen = map[string]bool{}
			t.lastLinkScan = now.Add(-o.FastWindow)
			transition(AlertPending)
			e.linkDossiers(o, t)
			if o.Pending <= 0 {
				t.firingSince = now
				transition(AlertFiring)
			}
		}
	case AlertPending:
		if !burning {
			transition(AlertInactive)
			break
		}
		e.linkDossiers(o, t)
		if now.Sub(t.pendingSince) >= o.Pending {
			t.firingSince = now
			transition(AlertFiring)
		}
	case AlertFiring:
		if !burning {
			t.resolvedAt = now
			transition(AlertResolved)
			break
		}
		e.linkDossiers(o, t)
	}
}

// linkDossiers appends dossiers captured since the last scan, deduped and
// capped at MaxDossierLinks (newest kept).
func (e *SLOEngine) linkDossiers(o *Objective, t *alertTrack) {
	if e.dossiers == nil {
		return
	}
	refs := e.dossiers.DossierRefsSince(t.lastLinkScan)
	for _, r := range refs {
		key := r.Source + "\x00" + r.ID
		if t.seen[key] {
			continue
		}
		t.seen[key] = true
		t.dossiers = append(t.dossiers, r)
		if cap := o.MaxDossierLinks; len(t.dossiers) > cap {
			t.dossiers = t.dossiers[len(t.dossiers)-cap:]
		}
		if r.CapturedMS > t.lastLinkScan.UnixMilli() {
			t.lastLinkScan = time.UnixMilli(r.CapturedMS)
		}
	}
}

// Alerts returns every objective's alert surface, sorted by objective
// name. Inactive alerts are included (state machine visibility beats
// payload minimalism at this scale).
func (e *SLOEngine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.objs))
	for i := range e.objs {
		o := &e.objs[i]
		t := e.tracks[o.Name]
		a := Alert{
			SLOVersion: SLOVersion,
			Objective:  o.Name,
			State:      t.state,
			SinceMS:    t.sinceMS,
			FastBurn:   t.fastBurn,
			SlowBurn:   t.slowBurn,
			Dossiers:   append([]DossierRef(nil), t.dossiers...),
		}
		a.DossierCount = len(a.Dossiers)
		if !t.pendingSince.IsZero() {
			a.PendingSinceMS = t.pendingSince.UnixMilli()
		}
		if !t.firingSince.IsZero() {
			a.FiringSinceMS = t.firingSince.UnixMilli()
		}
		if !t.resolvedAt.IsZero() {
			a.ResolvedMS = t.resolvedAt.UnixMilli()
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objective < out[j].Objective })
	return out
}

// Status returns every objective's live evaluation for /api/slo, sorted by
// objective name.
func (e *SLOEngine) Status() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(e.objs))
	for i := range e.objs {
		o := &e.objs[i]
		t := e.tracks[o.Name]
		st := ObjectiveStatus{
			SLOVersion:   SLOVersion,
			Objective:    *o,
			WindowMS:     o.Window.Milliseconds(),
			FastWindowMS: o.FastWindow.Milliseconds(),
			SlowWindowMS: o.SlowWindow.Milliseconds(),
			FastBurn:     t.fastBurn,
			SlowBurn:     t.slowBurn,
			State:        t.state,
		}
		ratio, errs, total, ok := e.ratioOver(o, o.Window)
		_, _, _, fastOK := e.ratioOver(o, o.FastWindow)
		st.Ready = ok && fastOK
		if ok {
			st.ErrorRatio = ratio
			st.Errors = errs
			st.Total = total
			st.BudgetUsed = errs / (o.Target * total)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Objective.Name < out[j].Objective.Name
	})
	return out
}
