package obs

import (
	"fmt"
	"testing"
	"time"
)

// TestParseObjective: the compact declarative form round-trips into an
// Objective with derived defaults.
func TestParseObjective(t *testing.T) {
	o, err := ParseObjective("miss: rtopex_live_missed_total+rtopex_live_dropped_total / rtopex_live_subframes_total <= 0.1% over 1h")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "miss" || o.Target != 0.001 || o.Window != time.Hour {
		t.Fatalf("parsed %+v", o)
	}
	if len(o.Numerator) != 2 || o.Numerator[0] != "rtopex_live_missed_total" || o.Numerator[1] != "rtopex_live_dropped_total" {
		t.Fatalf("numerator = %v", o.Numerator)
	}
	if len(o.Denominator) != 1 || o.Denominator[0] != "rtopex_live_subframes_total" {
		t.Fatalf("denominator = %v", o.Denominator)
	}
	// Derived defaults: fast = window/12 (the SRE-workbook ratio), slow =
	// window, threshold 1, 8 dossier links.
	if o.FastWindow != 5*time.Minute || o.SlowWindow != time.Hour || o.BurnThreshold != 1 || o.MaxDossierLinks != 8 {
		t.Fatalf("defaults = %+v", o)
	}

	if o, err := ParseObjective("e: a / b <= 0.05 over 10m"); err != nil || o.Target != 0.05 {
		t.Fatalf("ratio target: %+v, %v", o, err)
	}

	for _, bad := range []string{
		"no-colon a / b <= 1% over 1h",
		"x: a / b <= 1%",          // missing over
		"x: a / b over 1h",        // missing <=
		"x: a b <= 1% over 1h",    // missing /
		"x: a / b <= pct over 1h", // bad target
		"x: a / b <= 150% over 1h",
		"x: a / b <= 0 over 1h",
		"x: / b <= 1% over 1h",
		": a / b <= 1% over 1h",
		"x: a / b <= 1% over -5m",
	} {
		if _, err := ParseObjective(bad); err == nil {
			t.Fatalf("ParseObjective(%q) should fail", bad)
		}
	}
}

// sloHarness drives a TSDB + SLOEngine pair on an injected clock: one tick
// observes a hand-built snapshot and evaluates the engine, exactly what the
// scraper does in production.
type sloHarness struct {
	db     *TSDB
	eng    *SLOEngine
	now    time.Time
	errs   int64
	total  int64
	ticked int
}

func newSLOHarness(o Objective) *sloHarness {
	db := NewTSDB(TSDBConfig{Step: time.Second, Retention: time.Hour})
	return &sloHarness{
		db:  db,
		eng: NewSLOEngine(db, o),
		now: time.UnixMilli(1_700_000_000_000),
	}
}

// tick advances one second with the given per-step increments and runs one
// scrape-and-evaluate step.
func (h *sloHarness) tick(errs, total int64) {
	h.errs += errs
	h.total += total
	snap := &Snapshot{Counters: []CounterValue{
		{Name: "errs_total", Value: h.errs},
		{Name: "total_total", Value: h.total},
	}}
	h.db.Observe(h.now, snap)
	h.eng.Evaluate(h.now)
	h.ticked++
	h.now = h.now.Add(time.Second)
}

func (h *sloHarness) alert(t *testing.T) Alert {
	t.Helper()
	as := h.eng.Alerts()
	if len(as) != 1 {
		t.Fatalf("alerts = %+v, want exactly one", as)
	}
	return as[0]
}

// testObjective is the lifecycle tests' tight objective: 1% miss budget,
// 5s fast / 15s slow burn windows.
func testObjective(pending time.Duration) Objective {
	return Objective{
		Name:        "miss",
		Numerator:   []string{"errs_total"},
		Denominator: []string{"total_total"},
		Target:      0.01,
		Window:      15 * time.Second,
		FastWindow:  5 * time.Second,
		SlowWindow:  15 * time.Second,
		Pending:     pending,
	}
}

// TestAlertLifecycle walks one objective through the full state machine on
// an injected clock — inactive → pending → firing → resolved → (re-trip)
// pending — asserting dossier cross-links at each stage, including the
// fast-window lookback that captures the misses that caused the burn.
func TestAlertLifecycle(t *testing.T) {
	h := newSLOHarness(testObjective(3 * time.Second))

	// The dossier source is the fleet store with the same injected clock.
	store := NewDossierStore(DossierStoreConfig{Now: func() time.Time { return h.now }})
	h.eng.SetDossierSource(store)
	ingest := func(label string) {
		t.Helper()
		doc := fmt.Sprintf(`{"flight_version":1,"label":%q,"trigger":"deadline-miss","seq":1}`, label)
		if err := store.Ingest("worker-1", []byte(doc)); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy baseline: 100 subframes/s, no misses. Long enough that both
	// burn windows are answerable.
	for i := 0; i < 20; i++ {
		h.tick(0, 100)
	}
	if a := h.alert(t); a.State != AlertInactive || a.FastBurn != 0 || a.SlowBurn != 0 {
		t.Fatalf("baseline alert = %+v, want inactive at zero burn", a)
	}

	// A dossier lands 2s before the burn is detected: the fast-window
	// lookback must still link it to the coming alert.
	ingest("pre-burn")
	h.tick(0, 100)
	h.tick(0, 100)

	// Misses start: 20% per tick. Fast burn = 20/500/0.01 = 4, slow burn =
	// 20/1500/0.01 ≈ 1.33 — both over threshold on the onset tick.
	h.tick(20, 100)
	a := h.alert(t)
	if a.State != AlertPending {
		t.Fatalf("after burn onset: state = %s, want pending", a.State)
	}
	if a.PendingSinceMS != h.now.Add(-time.Second).UnixMilli() {
		t.Fatalf("pending_since = %d, want the onset tick", a.PendingSinceMS)
	}
	if a.DossierCount != 1 || a.Dossiers[0].Label != "pre-burn" || a.Dossiers[0].Source != "worker-1" {
		t.Fatalf("pending dossiers = %+v, want the pre-burn dossier via lookback", a.Dossiers)
	}

	// Another dossier lands while pending; burn persists through Pending.
	ingest("mid-burn")
	h.tick(20, 100)
	if a := h.alert(t); a.State != AlertPending {
		t.Fatalf("1s into pending: state = %s", a.State)
	}
	h.tick(20, 100)
	h.tick(20, 100) // 3s elapsed since pendingSince → fires
	a = h.alert(t)
	if a.State != AlertFiring {
		t.Fatalf("after pending duration: state = %s, want firing", a.State)
	}
	if a.FiringSinceMS == 0 || a.FiringSinceMS < a.PendingSinceMS {
		t.Fatalf("firing_since = %d (pending_since %d)", a.FiringSinceMS, a.PendingSinceMS)
	}
	if a.DossierCount != 2 || a.Dossiers[1].Label != "mid-burn" {
		t.Fatalf("firing dossiers = %+v, want pre-burn + mid-burn", a.Dossiers)
	}
	if a.FastBurn < 1 || a.SlowBurn < 1 {
		t.Fatalf("burns = %v/%v, want ≥ 1 while firing", a.FastBurn, a.SlowBurn)
	}

	// Misses stop. Once the fast window drains (5s), burning=false resolves
	// the alert; the dossier links survive for the post-mortem.
	for i := 0; i < 7; i++ {
		h.tick(0, 100)
	}
	a = h.alert(t)
	if a.State != AlertResolved {
		t.Fatalf("after recovery: state = %s, want resolved", a.State)
	}
	if a.ResolvedMS == 0 || a.DossierCount != 2 {
		t.Fatalf("resolved alert = %+v, want resolved_ms set and dossiers kept", a)
	}

	// A second burn starts a new cycle: dossier links reset, the old cycle's
	// refs are not re-linked (their capture times predate the new lookback).
	for i := 0; i < 20; i++ {
		h.tick(0, 100) // drain the slow window to a clean baseline
	}
	ingest("second-cycle")
	h.tick(20, 100)
	a = h.alert(t)
	if a.State != AlertPending {
		t.Fatalf("second burn: state = %s, want pending", a.State)
	}
	if a.DossierCount != 1 || a.Dossiers[0].Label != "second-cycle" {
		t.Fatalf("second-cycle dossiers = %+v, want only the new dossier", a.Dossiers)
	}
	if a.ResolvedMS != 0 {
		t.Fatalf("new cycle kept resolved_ms = %d", a.ResolvedMS)
	}
}

// TestAlertFiresImmediatelyWithoutPending: Pending=0 fires on the first
// burning evaluation (pending and firing in the same tick).
func TestAlertFiresImmediatelyWithoutPending(t *testing.T) {
	h := newSLOHarness(testObjective(0))
	for i := 0; i < 20; i++ {
		h.tick(0, 100)
	}
	h.tick(50, 100)
	if a := h.alert(t); a.State != AlertFiring || a.PendingSinceMS == 0 {
		t.Fatalf("alert = %+v, want firing immediately", a)
	}
}

// TestAlertPendingAborts: burn that subsides before the pending duration
// never fires; the alert returns to inactive.
func TestAlertPendingAborts(t *testing.T) {
	h := newSLOHarness(testObjective(10 * time.Second))
	for i := 0; i < 20; i++ {
		h.tick(0, 100)
	}
	h.tick(20, 100)
	if a := h.alert(t); a.State != AlertPending {
		t.Fatalf("state = %s, want pending", a.State)
	}
	for i := 0; i < 7; i++ {
		h.tick(0, 100) // fast window drains before 10s of pending elapse
	}
	if a := h.alert(t); a.State != AlertInactive {
		t.Fatalf("state = %s, want inactive (pending aborted)", a.State)
	}
}

// fakeDossiers is a hand-rolled DossierSource for link-policy tests.
type fakeDossiers struct{ refs []DossierRef }

func (f *fakeDossiers) DossierRefsSince(since time.Time) []DossierRef {
	var out []DossierRef
	for _, r := range f.refs {
		if r.CapturedMS >= since.UnixMilli() {
			out = append(out, r)
		}
	}
	return out
}

// TestDossierLinkDedupAndCap: refs are deduped by (source, id) across
// evaluations and capped at MaxDossierLinks keeping the newest.
func TestDossierLinkDedupAndCap(t *testing.T) {
	o := testObjective(time.Hour) // stay pending: every tick re-links
	o.MaxDossierLinks = 3
	h := newSLOHarness(o)
	src := &fakeDossiers{}
	h.eng.SetDossierSource(src)

	for i := 0; i < 20; i++ {
		h.tick(0, 100)
	}
	// Six dossiers captured at burn onset; the same slice is returned on
	// every scan, so dedup must hold the set stable.
	for i := 0; i < 6; i++ {
		src.refs = append(src.refs, DossierRef{
			ID:         fmt.Sprintf("d%d", i),
			Source:     "w",
			Seq:        uint64(i),
			CapturedMS: h.now.UnixMilli(),
		})
	}
	// Burn ramps: slow crosses threshold on the third tick (15/1500 = 1×);
	// the fourth re-scans the same refs, exercising dedup across evals.
	h.tick(5, 100)
	h.tick(5, 100)
	h.tick(5, 100)
	h.tick(5, 100)
	a := h.alert(t)
	if a.State != AlertPending {
		t.Fatalf("state = %s, want pending under the 1h pending duration", a.State)
	}
	if a.DossierCount != 3 {
		t.Fatalf("dossier_count = %d, want cap 3", a.DossierCount)
	}
	for i, want := range []string{"d3", "d4", "d5"} {
		if a.Dossiers[i].ID != want {
			t.Fatalf("dossiers = %+v, want newest three in order", a.Dossiers)
		}
	}
}

// TestMultiDossierSource: refs merge sorted by capture time, then source,
// then seq.
func TestMultiDossierSource(t *testing.T) {
	a := &fakeDossiers{refs: []DossierRef{
		{ID: "a2", Source: "a", Seq: 2, CapturedMS: 300},
		{ID: "a1", Source: "a", Seq: 1, CapturedMS: 100},
	}}
	b := &fakeDossiers{refs: []DossierRef{
		{ID: "b1", Source: "b", Seq: 1, CapturedMS: 100},
	}}
	got := MultiDossierSource{a, b}.DossierRefsSince(time.UnixMilli(0))
	if len(got) != 3 || got[0].ID != "a1" || got[1].ID != "b1" || got[2].ID != "a2" {
		t.Fatalf("merged refs = %+v", got)
	}
	if got := (MultiDossierSource{a, b}).DossierRefsSince(time.UnixMilli(200)); len(got) != 1 || got[0].ID != "a2" {
		t.Fatalf("since-filtered refs = %+v", got)
	}
}

// TestObjectiveStatus: the /api/slo numbers — error ratio, derived budget
// consumption, readiness — follow directly from the window's increases.
func TestObjectiveStatus(t *testing.T) {
	h := newSLOHarness(testObjective(0))

	// Not ready until both burn windows hold ≥ 2 samples.
	h.tick(0, 100)
	if st := h.eng.Status(); len(st) != 1 || st[0].Ready {
		t.Fatalf("status after one sample = %+v, want not ready", st)
	}

	for i := 0; i < 15; i++ {
		h.tick(1, 100)
	}
	st := h.eng.Status()[0]
	if !st.Ready || st.State != AlertFiring {
		t.Fatalf("status = %+v, want ready and firing (1%% ratio at 1%% target)", st)
	}
	// Over the 15s window: 15 errors / 1500 total = 1% ratio; budget used =
	// errs / (target × total) = 15 / 15 = 100%.
	approx := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	if st.Errors != 15 || st.Total != 1500 || !approx(st.ErrorRatio, 0.01) || !approx(st.BudgetUsed, 1) {
		t.Fatalf("window math = errors %v total %v ratio %v budget %v", st.Errors, st.Total, st.ErrorRatio, st.BudgetUsed)
	}
	if st.WindowMS != 15000 || st.FastWindowMS != 5000 || st.SlowWindowMS != 15000 {
		t.Fatalf("window export = %+v", st)
	}
}

// TestSLOMissingSeries: an absent denominator keeps the objective
// unevaluated (no burn, no alert); an absent numerator counts zero errors.
func TestSLOMissingSeries(t *testing.T) {
	db := NewTSDB(TSDBConfig{Step: time.Second})
	o := testObjective(0)
	eng := NewSLOEngine(db, o)
	now := time.UnixMilli(0)

	// Only the numerator exists: denominator can't answer → no state change.
	for i := 0; i < 10; i++ {
		db.Observe(now, &Snapshot{Counters: []CounterValue{{Name: "errs_total", Value: int64(i) * 10}}})
		eng.Evaluate(now)
		now = now.Add(time.Second)
	}
	if a := eng.Alerts()[0]; a.State != AlertInactive {
		t.Fatalf("denominator-less alert = %+v, want inactive", a)
	}

	// Denominator without numerator: zero errors, zero burn, inactive.
	db2 := NewTSDB(TSDBConfig{Step: time.Second})
	eng2 := NewSLOEngine(db2, o)
	now = time.UnixMilli(0)
	for i := 0; i < 10; i++ {
		db2.Observe(now, &Snapshot{Counters: []CounterValue{{Name: "total_total", Value: int64(i) * 100}}})
		eng2.Evaluate(now)
		now = now.Add(time.Second)
	}
	st := eng2.Status()[0]
	if !st.Ready || st.Errors != 0 || st.State != AlertInactive {
		t.Fatalf("numerator-less status = %+v, want ready with zero errors", st)
	}
}
