package obs

import (
	"fmt"
	"sort"
	"sync"

	"rtopex/internal/platform"
	"rtopex/internal/trace"
)

// CoreAccountant derives per-core utilization from the run-level trace
// events PR 1/2 already emit: time between EvStart and EvFinish/EvDrop is
// the core running its *own* subframe; time between EvMigPlan and
// EvMigComplete/EvMigPreempt/EvMigAbandon is the core hosting a *migrated*
// batch (the paper's migration overhead); everything else is idle. It
// implements trace.Tracer, so it attaches anywhere a Ring does — typically
// fanned out beside one via trace.Tee — and it is safe for concurrent
// emitters (the realtime layer's workers).
//
// The replay mirrors cmd/rtoptrace's timeline painter, so the fractions it
// reports are, by construction, the ink ('#' and 'm' columns) of the ASCII
// timeline divided by the window.
type CoreAccountant struct {
	mu    sync.Mutex
	cores map[int]*coreAcct
	end   float64
}

type coreAcct struct {
	busyUS    float64
	hostUS    float64
	jobOpen   float64
	batchOpen float64
	inJob     bool
	inBatch   bool
}

// NewCoreAccountant creates an empty accountant.
func NewCoreAccountant() *CoreAccountant {
	return &CoreAccountant{cores: map[int]*coreAcct{}}
}

// Enabled implements trace.Tracer.
func (a *CoreAccountant) Enabled() bool { return true }

// Emit implements trace.Tracer.
func (a *CoreAccountant) Emit(e trace.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e.Time > a.end {
		a.end = e.Time
	}
	if e.Core < 0 {
		return
	}
	c, ok := a.cores[e.Core]
	if !ok {
		c = &coreAcct{}
		a.cores[e.Core] = c
	}
	switch e.Event {
	case trace.EvStart:
		c.jobOpen, c.inJob = e.Time, true
	case trace.EvFinish, trace.EvDrop:
		if c.inJob {
			c.busyUS += span(c.jobOpen, e.Time)
			c.inJob = false
		}
	case trace.EvMigPlan:
		c.batchOpen, c.inBatch = e.Time, true
	case trace.EvMigComplete, trace.EvMigPreempt, trace.EvMigAbandon:
		if c.inBatch {
			c.hostUS += span(c.batchOpen, e.Time)
			c.inBatch = false
		}
	}
}

// span guards against a close that lands (by float arithmetic) before its
// open: a zero-length interval, not negative busy time.
func span(from, to float64) float64 {
	if to < from {
		return 0
	}
	return to - from
}

// End returns the largest event time seen (the natural window end when the
// caller has no engine clock).
func (a *CoreAccountant) End() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.end
}

// CoreReport is one core's utilization over a run window.
type CoreReport struct {
	Core        int     `json:"core"`
	BusyUS      float64 `json:"busy_us"`      // running its own subframes
	MigrationUS float64 `json:"migration_us"` // hosting migrated batches
	IdleUS      float64 `json:"idle_us"`
	Busy        float64 `json:"busy"` // fractions of the window; sum to 1
	Migration   float64 `json:"migration"`
	Idle        float64 `json:"idle"`
}

// Reports returns per-core utilization over [0, end]. Intervals still open
// at the window end are closed there. cores ≤ 0 sizes the report to the
// highest core seen; end ≤ 0 uses the last event time. The three fractions
// sum to exactly 1.0 per core (idle is computed as the complement).
func (a *CoreAccountant) Reports(cores int, end float64) []CoreReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	if end <= 0 {
		end = a.end
	}
	if cores <= 0 {
		for c := range a.cores {
			if c+1 > cores {
				cores = c + 1
			}
		}
	}
	out := make([]CoreReport, cores)
	for i := range out {
		r := CoreReport{Core: i}
		if c, ok := a.cores[i]; ok {
			r.BusyUS, r.MigrationUS = c.busyUS, c.hostUS
			if c.inJob {
				r.BusyUS += span(c.jobOpen, end)
			}
			if c.inBatch {
				r.MigrationUS += span(c.batchOpen, end)
			}
		}
		r.IdleUS = end - r.BusyUS - r.MigrationUS
		if r.IdleUS < 0 {
			r.IdleUS = 0
		}
		if end > 0 {
			r.Busy = r.BusyUS / end
			r.Migration = r.MigrationUS / end
			// Parenthesized so busy + migration + idle sums to exactly 1.0
			// in float arithmetic (idle complements the rounded busy+mig).
			r.Idle = 1 - (r.Busy + r.Migration)
			if r.Idle < 0 {
				r.Idle = 0
			}
		}
		out[i] = r
	}
	return out
}

// Publish writes the per-core fractions into reg as gauges
// (rtopex_core_{busy,migration,idle}_fraction{core="i"} plus the raw busy
// microseconds).
func (a *CoreAccountant) Publish(reg *Registry, cores int, end float64) {
	reg.SetHelp("rtopex_core_busy_fraction", "Fraction of the run window the core ran its own subframes.")
	reg.SetHelp("rtopex_core_migration_fraction", "Fraction of the run window the core hosted migrated batches.")
	reg.SetHelp("rtopex_core_idle_fraction", "Fraction of the run window the core was idle.")
	for _, r := range a.Reports(cores, end) {
		l := L("core", fmt.Sprint(r.Core))
		reg.Gauge("rtopex_core_busy_fraction", l).Set(r.Busy)
		reg.Gauge("rtopex_core_migration_fraction", l).Set(r.Migration)
		reg.Gauge("rtopex_core_idle_fraction", l).Set(r.Idle)
		reg.Gauge("rtopex_core_busy_us", l).Set(r.BusyUS)
	}
}

// AccountantFromLog replays a stored event log (time-sorted, stable) into a
// fresh accountant — the offline path cmd/rtoptrace uses on -in traces.
func AccountantFromLog(log *trace.EventLog) *CoreAccountant {
	evs := make([]trace.Event, len(log.Events))
	copy(evs, log.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	a := NewCoreAccountant()
	for _, e := range evs {
		a.Emit(e)
	}
	return a
}

// EngineHook counts discrete-event engine activity into a registry: events
// scheduled, events executed, and the simulation clock as a gauge. It
// composes with other hooks via platform.Hooks.
type EngineHook struct {
	scheduled *Counter
	executed  *Counter
	clock     *Gauge
}

// NewEngineHook creates an engine hook publishing into reg.
func NewEngineHook(reg *Registry) *EngineHook {
	reg.SetHelp("rtopex_engine_events_scheduled_total", "Discrete-event engine events scheduled.")
	reg.SetHelp("rtopex_engine_events_executed_total", "Discrete-event engine events executed.")
	reg.SetHelp("rtopex_engine_clock_us", "Current simulation clock in microseconds.")
	return &EngineHook{
		scheduled: reg.Counter("rtopex_engine_events_scheduled_total"),
		executed:  reg.Counter("rtopex_engine_events_executed_total"),
		clock:     reg.Gauge("rtopex_engine_clock_us"),
	}
}

// OnAt implements platform.Hook.
func (h *EngineHook) OnAt(at, now float64) { h.scheduled.Inc() }

// OnStep implements platform.Hook.
func (h *EngineHook) OnStep(now float64) {
	h.executed.Inc()
	h.clock.Set(now)
}

var (
	_ trace.Tracer  = (*CoreAccountant)(nil)
	_ platform.Hook = (*EngineHook)(nil)
)
