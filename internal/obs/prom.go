package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// This file is the Prometheus text-format v0.0.4 exposition writer. It
// depends only on the standard library: the format is a stable, line-based
// contract (https://prometheus.io/docs/instrumenting/exposition_formats/),
// and the writer is pinned by a golden test so any drift in the rendering
// is caught in CI.
//
// Counters and gauges map directly. Histograms are exposed as summaries
// (quantile series plus _sum and _count): the log-linear buckets are an
// internal merge representation, while the quantiles are what dashboards
// and the paper's tail-latency claims consume.

// promQuantiles are the quantile series exposed per histogram.
var promQuantiles = []float64{0.5, 0.9, 0.99}

// ContentType is the HTTP Content-Type of the exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders the registry in Prometheus text format v0.0.4. Families
// are sorted by name and series by canonical label string, so the output
// for a given registry state is byte-deterministic.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)

	type flatSeries struct {
		labelKey string
		s        *series
	}
	type flatFamily struct {
		name, help string
		k          kind
		series     []flatSeries
	}
	fams := make([]flatFamily, 0, len(names))
	for _, name := range names {
		f := r.fams[name]
		ff := flatFamily{name: f.name, help: f.help, k: f.k}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if f.k == gaugeKind && !s.g.IsSet() {
				continue // match Snapshot: unset gauges are not exposed
			}
			ff.series = append(ff.series, flatSeries{labelKey: k, s: s})
		}
		fams = append(fams, ff)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		typ := "untyped"
		switch f.k {
		case counterKind:
			typ = "counter"
		case gaugeKind:
			typ = "gauge"
		case histogramKind:
			typ = "summary"
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, typ)
		for _, fs := range f.series {
			switch f.k {
			case counterKind:
				fmt.Fprintf(bw, "%s %d\n", promSeries(f.name, fs.labelKey), fs.s.c.Value())
			case gaugeKind:
				fmt.Fprintf(bw, "%s %s\n", promSeries(f.name, fs.labelKey), formatFloat(fs.s.g.Value()))
			case histogramKind:
				v := fs.s.h.Value()
				for _, q := range promQuantiles {
					fmt.Fprintf(bw, "%s %s\n",
						promSeries(f.name, appendLabelKey(fs.labelKey, fmt.Sprintf(`quantile="%s"`, formatFloat(q)))),
						formatFloat(v.Quantile(q)))
				}
				fmt.Fprintf(bw, "%s %s\n", promSeries(f.name+"_sum", fs.labelKey), formatFloat(v.Sum))
				fmt.Fprintf(bw, "%s %d\n", promSeries(f.name+"_count", fs.labelKey), v.Count)
			}
		}
	}
	return bw.Flush()
}

// promSeries renders `name` or `name{labels}`.
func promSeries(name, labelKey string) string {
	if labelKey == "" {
		return name
	}
	return name + "{" + labelKey + "}"
}

// appendLabelKey joins a canonical label string with one extra rendered
// label pair.
func appendLabelKey(labelKey, extra string) string {
	if labelKey == "" {
		return extra
	}
	return labelKey + "," + extra
}
