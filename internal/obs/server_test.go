package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("up_total", "Liveness.")
	reg.Counter("up_total").Inc()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if got := hdr.Get("Content-Type"); got != ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", got, ContentType)
	}
	if !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	code, body, _ = get(t, srv, "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars: status=%d body=%q", code, body)
	}

	code, _, _ = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", code)
	}

	code, body, _ = get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status=%d body=%q", code, body)
	}
	code, _, _ = get(t, srv, "/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", code)
	}
}

func TestServeBindsAndStops(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total").Inc()
	addr, stop, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "served_total 1") {
		t.Fatalf("scrape body:\n%s", body)
	}
}

// TestExpvarTracksLatestRegistry is the regression test for the stale
// /debug/vars bug: the expvar closure used to capture the first registry
// ever served for the process lifetime, so a second Serve kept exposing the
// old one. The published closure must follow the latest registry.
func TestExpvarTracksLatestRegistry(t *testing.T) {
	first := NewRegistry()
	first.Counter("expvar_first_total").Inc()
	publishExpvar(first)

	second := NewRegistry()
	second.Counter("expvar_second_total").Add(2)
	addr, stop, err := Serve("127.0.0.1:0", second)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "expvar_second_total") {
		t.Fatalf("/debug/vars missing the latest registry's series:\n%s", body)
	}
	if strings.Contains(string(body), "expvar_first_total") {
		t.Fatalf("/debug/vars still serving the first registry:\n%s", body)
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeSampler(reg, time.Hour) // immediate sample only
	defer stop()
	if !reg.Gauge("rtopex_go_goroutines").IsSet() {
		t.Fatal("rtopex_go_goroutines not sampled")
	}
	if reg.Gauge("rtopex_go_heap_objects_bytes").Value() <= 0 {
		t.Fatal("heap bytes should be positive")
	}
	stop()
	stop() // idempotent
}
