package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("jobs_total"); same != c {
		t.Fatal("Counter should return the same handle for the same series")
	}

	g := r.Gauge("occupancy")
	if g.IsSet() {
		t.Fatal("fresh gauge should be unset")
	}
	g.Set(0.25)
	g.Add(0.5)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
	if !g.IsSet() {
		t.Fatal("gauge should be set after Set")
	}
}

func TestNegativeCounterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) should panic")
		}
	}()
	NewRegistry().Counter("x").Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter family as a gauge should panic")
		}
	}()
	r.Gauge("dual")
}

func TestLabelsDistinguishSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("miss_total", L("sched", "partitioned"))
	b := r.Counter("miss_total", L("sched", "rt-opex"))
	if a == b {
		t.Fatal("different label values must be different series")
	}
	a.Inc()
	// Label order must not matter.
	c := r.Counter("miss_total", L("core", "1"), L("sched", "x"))
	d := r.Counter("miss_total", L("sched", "x"), L("core", "1"))
	if c != d {
		t.Fatal("label order changed series identity")
	}
}

func TestSeriesID(t *testing.T) {
	if got := SeriesID("up", nil); got != "up" {
		t.Fatalf("SeriesID = %q", got)
	}
	got := SeriesID("m", []Label{L("b", "2"), L("a", `x"y\z`)})
	want := `m{a="x\"y\\z",b="2"}`
	if got != want {
		t.Fatalf("SeriesID = %q, want %q", got, want)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("n").Add(3)
	b.Counter("n").Add(4)
	b.Counter("only_b").Inc()
	a.Gauge("g").Set(1)
	b.Gauge("g").Set(2)
	b.Gauge("unset") // never Set: must not clobber on merge
	a.Histogram("h").Observe(10)
	b.Histogram("h").Observe(20)

	a.Merge(b)
	if got := a.Counter("n").Value(); got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("only_b").Value(); got != 1 {
		t.Fatalf("merged new counter = %d, want 1", got)
	}
	if got := a.Gauge("g").Value(); got != 2 {
		t.Fatalf("merged gauge = %v, want 2 (set gauges overwrite)", got)
	}
	if got := a.Histogram("h").Count(); got != 2 {
		t.Fatalf("merged histogram count = %d, want 2", got)
	}
}

func TestSnapshotDeterministicAndMergeable(t *testing.T) {
	fill := func() *Registry {
		r := NewRegistry()
		r.Counter("z_total").Add(2)
		r.Counter("a_total", L("k", "v")).Add(1)
		r.Gauge("mid").Set(3.5)
		r.Histogram("lat").Observe(7)
		return r
	}
	s1, s2 := fill().Snapshot(), fill().Snapshot()
	var b1, b2 strings.Builder
	if err := s1.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("identical registries rendered differently:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	// Series must come out sorted by id.
	if len(s1.Counters) != 2 || s1.Counters[0].Name != "a_total" {
		t.Fatalf("counters not sorted: %+v", s1.Counters)
	}

	merged := s1.Merge(s2)
	if merged.Counters[1].Value != 4 {
		t.Fatalf("snapshot merge: z_total = %d, want 4", merged.Counters[1].Value)
	}
	if merged.Histograms[0].Value.Count != 2 {
		t.Fatalf("snapshot merge: histogram count = %d, want 2", merged.Histograms[0].Value.Count)
	}
}
