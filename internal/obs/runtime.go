package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSamples maps runtime/metrics names to the gauge names we expose.
// Kept small on purpose: the point is catching GC interference (the README's
// caveat) while it happens, not mirroring the whole runtime.
var runtimeSamples = []struct {
	src, dst string
	help     string
}{
	{"/memory/classes/heap/objects:bytes", "rtopex_go_heap_objects_bytes", "Bytes of live heap objects."},
	{"/gc/cycles/total:gc-cycles", "rtopex_go_gc_cycles_total", "Completed GC cycles."},
	{"/sched/goroutines:goroutines", "rtopex_go_goroutines", "Live goroutines."},
	{"/gc/pauses:seconds", "rtopex_go_gc_pause_seconds", "Distribution of GC stop-the-world pause times."},
}

// RuntimeSnapshot is one point-in-time Go runtime reading: the GC/heap
// state a miss dossier embeds to answer "did a GC pause land in the
// window?" — the jitter source the paper's pinned-pthread testbed does not
// have. Field order and names are part of the dossier schema.
type RuntimeSnapshot struct {
	// HeapObjectsBytes is the live heap object footprint.
	HeapObjectsBytes uint64 `json:"heap_objects_bytes"`
	// GCCycles counts completed GC cycles since process start.
	GCCycles uint64 `json:"gc_cycles"`
	// Goroutines is the live goroutine count.
	Goroutines uint64 `json:"goroutines"`
	// GCPauseP50S / GCPauseP99S are stop-the-world pause quantiles in
	// seconds, over the process-lifetime pause distribution.
	GCPauseP50S float64 `json:"gc_pause_p50_s"`
	GCPauseP99S float64 `json:"gc_pause_p99_s"`
}

// CaptureRuntime reads the runtime metrics behind the rtopex_go_* series
// into one snapshot. It is cheap enough to call per miss dossier, not per
// event.
func CaptureRuntime() RuntimeSnapshot {
	samples := readRuntime()
	var snap RuntimeSnapshot
	for i, s := range samples {
		switch runtimeSamples[i].src {
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				snap.HeapObjectsBytes = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				snap.GCCycles = s.Value.Uint64()
			}
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				snap.Goroutines = s.Value.Uint64()
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				snap.GCPauseP50S = histQuantile(h, 0.5)
				snap.GCPauseP99S = histQuantile(h, 0.99)
			}
		}
	}
	return snap
}

func readRuntime() []metrics.Sample {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.src
	}
	metrics.Read(samples)
	return samples
}

// SampleRuntime reads one round of Go runtime metrics into reg: heap bytes,
// GC cycles and goroutines as gauges, and the GC pause distribution as
// p50/p99 gauges (rtopex_go_gc_pause_seconds{q="0.5"} …).
func SampleRuntime(reg *Registry) {
	samples := readRuntime()
	for i, s := range samples {
		rs := runtimeSamples[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			reg.SetHelp(rs.dst, rs.help)
			reg.Gauge(rs.dst).Set(float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			reg.SetHelp(rs.dst, rs.help)
			reg.Gauge(rs.dst).Set(s.Value.Float64())
		case metrics.KindFloat64Histogram:
			reg.SetHelp(rs.dst, rs.help)
			h := s.Value.Float64Histogram()
			for _, q := range []float64{0.5, 0.99} {
				reg.Gauge(rs.dst, L("q", formatFloat(q))).Set(histQuantile(h, q))
			}
		default:
			// KindBad: metric absent on this Go version — skip.
		}
	}
}

// histQuantile pulls an approximate quantile out of a runtime
// Float64Histogram (bucket lower-bound convention; ±Inf edges clamped to
// the neighbouring finite bound).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if lo < -1e300 || lo != lo {
				lo = hi
			}
			if hi > 1e300 || hi != hi {
				hi = lo
			}
			return (lo + hi) / 2
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RuntimeSampler periodically publishes the rtopex_go_* series into a
// registry. Every binary shares this one implementation; the flight
// recorder reads the same metrics through CaptureRuntime.
type RuntimeSampler struct {
	done chan struct{}
	once sync.Once
}

// StartRuntime samples the runtime into reg every interval until Stop. One
// immediate sample is taken before the ticker starts, so short runs still
// report.
func StartRuntime(reg *Registry, interval time.Duration) *RuntimeSampler {
	SampleRuntime(reg)
	s := &RuntimeSampler{done: make(chan struct{})}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				SampleRuntime(reg)
			}
		}
	}()
	return s
}

// Stop halts the sampler. Safe to call more than once.
func (s *RuntimeSampler) Stop() {
	s.once.Do(func() { close(s.done) })
}

// StartRuntimeSampler is the closure form of StartRuntime.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	return StartRuntime(reg, interval).Stop
}
