package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSamples maps runtime/metrics names to the gauge names we expose.
// Kept small on purpose: livebench is a wall-clock benchmark, and the point
// is catching GC interference (the README's caveat) while it happens, not
// mirroring the whole runtime.
var runtimeSamples = []struct {
	src, dst string
	help     string
}{
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes of live heap objects."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles."},
	{"/sched/goroutines:goroutines", "go_goroutines", "Live goroutines."},
	{"/gc/pauses:seconds", "go_gc_pause_seconds", "Distribution of GC stop-the-world pause times."},
}

// SampleRuntime reads one round of Go runtime metrics into reg: heap bytes,
// GC cycles and goroutines as gauges, and the GC pause distribution as
// p50/p99/max gauges (go_gc_pause_seconds{q="0.5"} …).
func SampleRuntime(reg *Registry) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.src
	}
	metrics.Read(samples)
	for i, s := range samples {
		rs := runtimeSamples[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			reg.SetHelp(rs.dst, rs.help)
			reg.Gauge(rs.dst).Set(float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			reg.SetHelp(rs.dst, rs.help)
			reg.Gauge(rs.dst).Set(s.Value.Float64())
		case metrics.KindFloat64Histogram:
			reg.SetHelp(rs.dst, rs.help)
			h := s.Value.Float64Histogram()
			for _, q := range []float64{0.5, 0.99} {
				reg.Gauge(rs.dst, L("q", formatFloat(q))).Set(histQuantile(h, q))
			}
		default:
			// KindBad: metric absent on this Go version — skip.
		}
	}
}

// histQuantile pulls an approximate quantile out of a runtime
// Float64Histogram (bucket lower-bound convention; ±Inf edges clamped to
// the neighbouring finite bound).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if lo < -1e300 || lo != lo {
				lo = hi
			}
			if hi > 1e300 || hi != hi {
				hi = lo
			}
			return (lo + hi) / 2
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// StartRuntimeSampler samples the runtime into reg every interval until the
// returned stop func is called. One immediate sample is taken before the
// ticker starts, so short runs still report.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	SampleRuntime(reg)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				SampleRuntime(reg)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
	}
}
