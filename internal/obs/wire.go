package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file is the wire codec of the distributed observability plane: the
// versioned envelope a worker process pushes its registry snapshot in, and
// the decoder a collector reads it with. The payload is the deterministic
// Snapshot JSON (series sorted by canonical id, buckets by index, help keys
// by name), so encoding the same registry state twice yields identical
// bytes, and MergeSnapshot after a decode is bit-identical to an in-process
// merge — counters and bucket counts are integers, and gauges/sums are
// float64s that survive JSON exactly (Go renders them in shortest
// round-trip form). See internal/obs/README.md for the format and its
// version/compat rules.

// WireVersion is the envelope version this package writes. Bump it when the
// envelope or Snapshot JSON changes incompatibly, and add the old version
// to readableWireVersions if a decoder for it is kept.
const WireVersion = 1

// readableWireVersions are the envelope versions DecodeWire accepts.
var readableWireVersions = map[int]bool{1: true}

// maxWireBytes bounds one decoded push (64 MiB) so a stray client cannot
// balloon a collector.
const maxWireBytes = 64 << 20

// Source identifies one pushing process. ID is the dedup key the collector
// tracks sources by; Host/PID/Labels are descriptive (shard range, role, …)
// and surfaced on the collector's dashboard.
type Source struct {
	ID     string  `json:"id"`
	Host   string  `json:"host,omitempty"`
	PID    int     `json:"pid,omitempty"`
	Labels []Label `json:"labels,omitempty"`
}

// String renders the source for logs and dashboards.
func (s Source) String() string {
	if len(s.Labels) == 0 {
		return s.ID
	}
	return s.ID + "{" + canonicalLabels(s.Labels) + "}"
}

// DefaultSource derives a Source for this process (hostname-pid), with
// optional descriptive labels.
func DefaultSource(labels ...Label) Source {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown"
	}
	pid := os.Getpid()
	return Source{ID: fmt.Sprintf("%s-%d", host, pid), Host: host, PID: pid, Labels: labels}
}

// WireSnapshot is the push envelope: one full registry snapshot from one
// source. Pushes carry full state, not deltas, so the collector's per-source
// slot is replaced on every accepted push and a lost or repeated push never
// double-counts. Seq orders pushes from one source; the collector keeps the
// highest seen and drops the rest (retry idempotence). Final marks the
// source's last push: the process is exiting and its state is complete.
type WireSnapshot struct {
	Version  int       `json:"version"`
	Source   Source    `json:"source"`
	Seq      uint64    `json:"seq"`
	Final    bool      `json:"final,omitempty"`
	Snapshot *Snapshot `json:"snapshot"`
}

// Validate checks the envelope's invariants (after defaulting Version 0 is
// invalid — encoders always stamp one).
func (ws *WireSnapshot) Validate() error {
	if ws == nil {
		return fmt.Errorf("obs: nil wire snapshot")
	}
	if !readableWireVersions[ws.Version] {
		return fmt.Errorf("obs: wire version %d not supported (this build reads %v, writes %d)",
			ws.Version, sortedWireVersions(), WireVersion)
	}
	if ws.Source.ID == "" {
		return fmt.Errorf("obs: wire snapshot without source id")
	}
	if ws.Snapshot == nil {
		return fmt.Errorf("obs: wire snapshot without payload")
	}
	return nil
}

func sortedWireVersions() []int {
	out := make([]int, 0, len(readableWireVersions))
	for v := range readableWireVersions {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ { // tiny insertion sort; the set is tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// EncodeWire writes the envelope as one JSON document. The version is
// stamped; the encoding of a given snapshot state is deterministic.
func EncodeWire(w io.Writer, ws *WireSnapshot) error {
	stamped := *ws
	stamped.Version = WireVersion
	if err := stamped.Validate(); err != nil {
		return err
	}
	b, err := json.Marshal(&stamped)
	if err != nil {
		return fmt.Errorf("obs: encode wire snapshot: %v", err)
	}
	_, err = w.Write(b)
	return err
}

// DecodeWire reads one envelope, enforcing the version set and the size
// bound. A decode error leaves nothing half-applied: callers only see a
// fully validated envelope or an error.
func DecodeWire(r io.Reader) (*WireSnapshot, error) {
	b, err := io.ReadAll(io.LimitReader(r, maxWireBytes+1))
	if err != nil {
		return nil, fmt.Errorf("obs: read wire snapshot: %v", err)
	}
	if len(b) > maxWireBytes {
		return nil, fmt.Errorf("obs: wire snapshot exceeds %d bytes", maxWireBytes)
	}
	var ws WireSnapshot
	if err := json.Unmarshal(b, &ws); err != nil {
		return nil, fmt.Errorf("obs: decode wire snapshot: %v", err)
	}
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	return &ws, nil
}
