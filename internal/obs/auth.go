package obs

import (
	"crypto/subtle"
	"net/http"
	"os"
	"strings"
)

// Bearer-token authentication shared by every HTTP surface of the fleet:
// the obscollect collector and the sweep-fleet coordinator both wrap their
// handlers in BearerAuth, and the push/lease clients send the matching
// header. A token is a shared secret for keeping stray processes out of a
// lab fleet, not a substitute for TLS — run real deployments behind a
// TLS-terminating proxy.

// AuthEnvVar is the environment variable clients and servers read for a
// default token, so a fleet can be secured without threading the secret
// through every flag.
const AuthEnvVar = "RTOPEX_AUTH_TOKEN"

// AuthTokenFromEnv resolves an auth token: an explicit flag value wins,
// otherwise the AuthEnvVar environment variable; empty means no auth.
func AuthTokenFromEnv(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	return os.Getenv(AuthEnvVar)
}

// AuthHeader sets the bearer Authorization header on req when token is
// non-empty.
func AuthHeader(req *http.Request, token string) {
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
}

// BearerAuth wraps h, rejecting every request that does not carry
// `Authorization: Bearer <token>` with 401. The comparison is
// constant-time. An empty token disables the check (h is returned as-is),
// so call sites can wire the flag unconditionally.
func BearerAuth(token string, h http.Handler) http.Handler {
	if token == "" {
		return h
	}
	want := []byte(token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="rtopex"`)
			http.Error(w, "missing or invalid bearer token", http.StatusUnauthorized)
			return
		}
		h.ServeHTTP(w, r)
	})
}
